// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI), plus ablations of the design choices documented in
// DESIGN.md. Each benchmark reports the headline quantities of its
// experiment as custom metrics, so `go test -bench=. -benchmem` is the
// reproduction harness; `go run ./cmd/etbench` prints the full tables.
//
// Large case studies run shrunk (experiments.BenchScale — the factor is
// part of the dataset name and the reported metrics); run
// `cmd/etbench -scale full` for paper-size instances.
package etransform_test

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/experiments"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/simplex"
	"github.com/etransform/etransform/internal/stepwise"
)

// benchScale bounds each solve so a full -bench=. pass stays inside a
// laptop budget.
func benchScale() experiments.Scale {
	sc := experiments.BenchScale()
	sc.MaxNodes = 400
	sc.TimeLimit = 20 * time.Second
	return sc
}

// --- Table II ----------------------------------------------------------

func BenchmarkTableII_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range []datagen.CaseStudyConfig{
			datagen.Enterprise1(), datagen.Florida(), datagen.Federal().Scaled(0.25),
		} {
			s, err := cfg.Generate()
			if err != nil {
				b.Fatal(err)
			}
			if len(s.Groups) == 0 {
				b.Fatal("empty dataset")
			}
		}
	}
}

// --- Figure 4 / Tables 4(d,e): non-DR case studies ----------------------

func benchCaseStudy(b *testing.B, cfg datagen.CaseStudyConfig, dr bool) {
	b.Helper()
	sc := benchScale()
	var res *experiments.CaseStudyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.CaseStudy(cfg, sc, dr)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(-res.Reduction("ETRANSFORM")*100, "etransform_reduction_%")
	b.ReportMetric(-res.Reduction("GREEDY")*100, "greedy_reduction_%")
	b.ReportMetric(-res.Reduction("MANUAL")*100, "manual_reduction_%")
	b.ReportMetric(float64(res.Violations("ETRANSFORM")), "etransform_violations")
	b.ReportMetric(float64(res.Violations("GREEDY")), "greedy_violations")
	b.ReportMetric(float64(res.Violations("MANUAL")), "manual_violations")
	b.ReportMetric(res.Stats.Gap*100, "milp_gap_%")
}

func BenchmarkFig4_NonDR_Enterprise1(b *testing.B) { benchCaseStudy(b, datagen.Enterprise1(), false) }
func BenchmarkFig4_NonDR_Florida(b *testing.B)     { benchCaseStudy(b, datagen.Florida(), false) }
func BenchmarkFig4_NonDR_Federal(b *testing.B)     { benchCaseStudy(b, datagen.Federal(), false) }

// --- Figure 6 / Tables 6(d,e): DR case studies --------------------------

func BenchmarkFig6_DR_Enterprise1(b *testing.B) { benchCaseStudy(b, datagen.Enterprise1(), true) }
func BenchmarkFig6_DR_Florida(b *testing.B)     { benchCaseStudy(b, datagen.Florida(), true) }
func BenchmarkFig6_DR_Federal(b *testing.B)     { benchCaseStudy(b, datagen.Federal(), true) }

// --- Figure 7: latency-penalty sweep ------------------------------------

func BenchmarkFig7_LatencyPenalty(b *testing.B) {
	sc := benchScale()
	var res *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure7(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: with all users far away (split 0), the top penalty drives
	// latency below threshold while space cost rises.
	lat := res.MeanLatMs[0]
	space := res.SpaceCost[0]
	b.ReportMetric(lat[0], "lat_ms_at_penalty0")
	b.ReportMetric(lat[len(lat)-1], "lat_ms_at_penalty120")
	b.ReportMetric(space[len(space)-1]/space[0], "space_cost_growth_x")
}

// --- Figure 8: DR server cost sweep --------------------------------------

func BenchmarkFig8_DRServerCost(b *testing.B) {
	sc := benchScale()
	var res *experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure8(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := len(res.DRServerCost)
	b.ReportMetric(float64(res.DCsUsed[0]), "dcs_at_cheap_dr")
	b.ReportMetric(float64(res.DCsUsed[n-1]), "dcs_at_costly_dr")
	b.ReportMetric(float64(res.DRServers[0]), "drsrv_at_cheap_dr")
	b.ReportMetric(float64(res.DRServers[n-1]), "drsrv_at_costly_dr")
}

// --- Figure 9: space vs WAN tradeoff -------------------------------------

func BenchmarkFig9_SpaceWANTradeoff(b *testing.B) {
	var res *experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CheapestLocation), "argmin_location")
	b.ReportMetric(res.Spread, "cost_spread_x")
}

// --- Figure 10: placement growth -----------------------------------------

func BenchmarkFig10_PlacementGrowth(b *testing.B) {
	sc := benchScale()
	var res *experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure10(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DCsUsed[0]), "dcs_at_100_groups")
	b.ReportMetric(float64(res.DCsUsed[len(res.DCsUsed)-1]), "dcs_at_700_groups")
}

// --- Ablations ------------------------------------------------------------

// drState is a shared small DR instance for formulation ablations.
func drState(b *testing.B) *model.AsIsState {
	b.Helper()
	cfg := datagen.Enterprise1().Scaled(0.1)
	s, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchFormulation(b *testing.B, form core.Formulation) {
	s := drState(b)
	var plan *model.Plan
	for i := 0; i < b.N; i++ {
		p, err := core.New(s, core.Options{
			DR: true, Formulation: form,
			Solver: milp.Options{GapTol: 5e-3, MaxNodes: 200, TimeLimit: 15 * time.Second},
		})
		if err != nil {
			b.Fatal(err)
		}
		plan, err = p.Solve()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plan.Stats.Rows), "rows")
	b.ReportMetric(float64(plan.Stats.Cols), "cols")
	b.ReportMetric(plan.Cost.Total(), "plan_cost_$")
}

// DESIGN.md: pair formulation has M+N+N²+N rows; the paper's literal
// J-linearization has M·N² linking rows. Same optimum, very different
// scaling.
func BenchmarkAblation_DRFormulation_Pair(b *testing.B)  { benchFormulation(b, core.FormulationPair) }
func BenchmarkAblation_DRFormulation_Paper(b *testing.B) { benchFormulation(b, core.FormulationPaper) }

// DESIGN.md: aggregating identical groups is an exact reformulation that
// shrinks synthetic estates.
func benchAggregation(b *testing.B, aggregate bool) {
	cfg := datagen.Florida()
	s, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	var plan *model.Plan
	for i := 0; i < b.N; i++ {
		p, err := core.New(s, core.Options{
			Aggregate: aggregate,
			Solver:    milp.Options{GapTol: 2e-3, MaxNodes: 400, TimeLimit: 20 * time.Second},
		})
		if err != nil {
			b.Fatal(err)
		}
		plan, err = p.Solve()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plan.Stats.Cols), "cols")
	b.ReportMetric(plan.Cost.Total(), "plan_cost_$")
}

func BenchmarkAblation_Aggregation_On(b *testing.B)  { benchAggregation(b, true) }
func BenchmarkAblation_Aggregation_Off(b *testing.B) { benchAggregation(b, false) }

// DESIGN.md: candidate pruning trades a little optimality for model size
// on very large estates; the retry path guards feasibility.
func benchCandidateK(b *testing.B, k int) {
	s, err := datagen.Federal().Scaled(0.25).Generate()
	if err != nil {
		b.Fatal(err)
	}
	var plan *model.Plan
	for i := 0; i < b.N; i++ {
		p, err := core.New(s, core.Options{
			Aggregate: true, CandidateK: k,
			Solver: milp.Options{GapTol: 5e-3, MaxNodes: 200, TimeLimit: 20 * time.Second},
		})
		if err != nil {
			b.Fatal(err)
		}
		plan, err = p.Solve()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plan.Stats.Cols), "cols")
	b.ReportMetric(plan.Cost.Total(), "plan_cost_$")
}

func BenchmarkAblation_CandidateK_All(b *testing.B) { benchCandidateK(b, 0) }
func BenchmarkAblation_CandidateK_8(b *testing.B)   { benchCandidateK(b, 8) }

// DESIGN.md: the DR warm starts close most of the primal gap that the
// weak LP pool bound leaves open.
func benchWarmStarts(b *testing.B, disable bool) {
	s, err := datagen.Enterprise1().Scaled(0.25).Generate()
	if err != nil {
		b.Fatal(err)
	}
	var plan *model.Plan
	for i := 0; i < b.N; i++ {
		opts := core.Options{
			DR: true, Aggregate: true,
			Solver: milp.Options{GapTol: 5e-3, MaxNodes: 100, TimeLimit: 10 * time.Second},
		}
		p, err := core.New(s, opts)
		if err != nil {
			b.Fatal(err)
		}
		if disable {
			// The paper formulation takes no warm starts (and no
			// aggregation), so it serves as the no-warm-start reference.
			opts.Formulation = core.FormulationPaper
			opts.Aggregate = false
			p, err = core.New(s, opts)
			if err != nil {
				b.Fatal(err)
			}
		}
		plan, err = p.Solve()
		if err != nil {
			// Finding no incumbent at all within the budget IS the
			// no-warm-start result; report it instead of failing.
			b.Logf("no feasible plan within limits: %v", err)
			b.ReportMetric(0, "plan_cost_$")
			b.ReportMetric(100, "milp_gap_%")
			return
		}
	}
	b.ReportMetric(plan.Cost.Total(), "plan_cost_$")
	b.ReportMetric(plan.Stats.Gap*100, "milp_gap_%")
}

func BenchmarkAblation_DRWarmStarts_On(b *testing.B)  { benchWarmStarts(b, false) }
func BenchmarkAblation_DRWarmStarts_Off(b *testing.B) { benchWarmStarts(b, true) }

// --- Solver micro-benchmarks ----------------------------------------------

func BenchmarkSimplex_MediumAssignmentLP(b *testing.B) {
	s, err := datagen.Enterprise1().Generate()
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.New(s, core.Options{Aggregate: true})
	if err != nil {
		b.Fatal(err)
	}
	m, err := p.BuildModel()
	if err != nil {
		b.Fatal(err)
	}
	relaxed := m.Relax()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := simplex.Solve(relaxed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkMILP_Enterprise1NonDR(b *testing.B) {
	s, err := datagen.Enterprise1().Generate()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		p, err := core.New(s, core.Options{
			Aggregate: true,
			Solver:    milp.Options{GapTol: 1e-3, TimeLimit: 30 * time.Second},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchObsSimplex solves the medium assignment LP with a given
// observability configuration; the off/metrics/trace spread is the
// instrumentation overhead quoted in DESIGN.md's Observability chapter
// (acceptance bar: tracer off must stay within 2% of the pre-obs hot
// path — a nil Tracer/Metrics costs one pointer compare per fold site).
func benchObsSimplex(b *testing.B, opts *simplex.Options) {
	s, err := datagen.Enterprise1().Generate()
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.New(s, core.Options{Aggregate: true})
	if err != nil {
		b.Fatal(err)
	}
	m, err := p.BuildModel()
	if err != nil {
		b.Fatal(err)
	}
	relaxed := m.Relax()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := simplex.Solve(relaxed, opts)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
		b.ReportMetric(float64(sol.Iterations), "pivots")
	}
}

func BenchmarkObs_Simplex_Off(b *testing.B) { benchObsSimplex(b, nil) }

func BenchmarkObs_Simplex_Metrics(b *testing.B) {
	benchObsSimplex(b, &simplex.Options{Metrics: obs.NewMetrics()})
}

func BenchmarkObs_Simplex_Trace(b *testing.B) {
	benchObsSimplex(b, &simplex.Options{
		Metrics: obs.NewMetrics(),
		Trace:   obs.New(obs.NewJSONLSink(io.Discard)),
	})
}

func BenchmarkLPFormat_WriteParse(b *testing.B) {
	s, err := datagen.Enterprise1().Generate()
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.New(s, core.Options{Aggregate: true})
	if err != nil {
		b.Fatal(err)
	}
	m, err := p.BuildModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := m.WriteLP(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := lp.ParseLP(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// DESIGN.md: volume discounts drive consolidation; flattening every curve
// to its list price removes the segment binaries and changes the packing.
func benchVolumeDiscount(b *testing.B, flat bool) {
	s, err := datagen.Enterprise1().Generate()
	if err != nil {
		b.Fatal(err)
	}
	if flat {
		for j := range s.Target.DCs {
			s.Target.DCs[j].SpaceCost = stepwise.Flat(s.Target.DCs[j].SpaceCost.UnitCostAt(0))
		}
	}
	var plan *model.Plan
	for i := 0; i < b.N; i++ {
		p, err := core.New(s, core.Options{
			Aggregate: true,
			Solver:    milp.Options{GapTol: 1e-3, TimeLimit: 30 * time.Second},
		})
		if err != nil {
			b.Fatal(err)
		}
		plan, err = p.Solve()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plan.Stats.Integral), "integral_vars")
	b.ReportMetric(float64(plan.Cost.DCsUsed), "dcs_used")
	b.ReportMetric(plan.Cost.Space, "space_cost_$")
}

func BenchmarkAblation_VolumeDiscount_Tiered(b *testing.B) { benchVolumeDiscount(b, false) }
func BenchmarkAblation_VolumeDiscount_Flat(b *testing.B)   { benchVolumeDiscount(b, true) }

// DESIGN.md: Dantzig pricing vs the cycle-proof Bland rule on the same LP.
func benchPricing(b *testing.B, bland bool) {
	s, err := datagen.Enterprise1().Generate()
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.New(s, core.Options{Aggregate: true})
	if err != nil {
		b.Fatal(err)
	}
	m, err := p.BuildModel()
	if err != nil {
		b.Fatal(err)
	}
	relaxed := m.Relax()
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		sol, err := simplex.Solve(relaxed, &simplex.Options{Bland: bland})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
		iters = sol.Iterations
	}
	b.ReportMetric(float64(iters), "simplex_iters")
}

func BenchmarkAblation_Pricing_Dantzig(b *testing.B) { benchPricing(b, false) }
func BenchmarkAblation_Pricing_Bland(b *testing.B)   { benchPricing(b, true) }
