package robust

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/stepwise"
	"github.com/etransform/etransform/internal/tol"
)

var update = flag.Bool("update", false, "regenerate the golden robustness report")

// testState generates the small scaled enterprise1 state every harness
// test runs against (the same dataset scripts/check.sh smokes).
func testState(t *testing.T) *model.AsIsState {
	t.Helper()
	s, err := datagen.Enterprise1().Scaled(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tightState is a deliberately capacity-tight instance whose LP
// relaxation is fractional (three 10-server groups all prefer the
// 25-server cheap site), so the exact stage genuinely branches — the
// only way the node-claim (panic) and budget-check (deadline) fault
// sites ever fire. The enterprise1 smoke dataset solves integrally at
// the root and would exercise neither.
func tightState(t *testing.T) *model.AsIsState {
	t.Helper()
	mkDC := func(id string, cap int, space, power, labor, wan float64) model.DataCenter {
		return model.DataCenter{
			ID:                id,
			Location:          geo.Location{ID: "loc-" + id, Region: geo.RegionNorthAmerica},
			CapacityServers:   cap,
			SpaceCost:         stepwise.Flat(space),
			PowerCostPerKWh:   power,
			LaborCostPerAdmin: labor,
			WANCostPerMb:      wan,
		}
	}
	s := &model.AsIsState{
		Name: "tight",
		Groups: []model.AppGroup{
			{ID: "g1", Servers: 10, DataMbPerMonth: 900, UsersByLocation: []int{40, 10}, CurrentDC: "old"},
			{ID: "g2", Servers: 10, DataMbPerMonth: 700, UsersByLocation: []int{10, 40}, CurrentDC: "old"},
			{ID: "g3", Servers: 10, DataMbPerMonth: 500, UsersByLocation: []int{25, 25}, CurrentDC: "old"},
		},
		UserLocations: []geo.Location{{ID: "u0"}, {ID: "u1"}},
		Current: model.Estate{
			DCs:       []model.DataCenter{mkDC("old", 100, 300, 0.25, 9500, 0.06)},
			LatencyMs: [][]float64{{12}, {12}},
		},
		Target: model.Estate{
			DCs: []model.DataCenter{
				mkDC("cheap", 25, 40, 0.04, 4500, 0.008),
				mkDC("dear", 100, 180, 0.18, 9000, 0.04),
			},
			LatencyMs: [][]float64{{8, 20}, {20, 8}},
		},
		Params: model.DefaultParams(),
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// testSpec perturbs all four uncertain input families.
func testSpec() *model.UncertaintySpec {
	return &model.UncertaintySpec{
		Schema:          model.UncertaintySpecSchema,
		PowerPrice:      &model.Distribution{Dist: model.DistLognormal, Mean: 0, StdDev: 0.25, Corr: 0.5},
		TrafficScale:    &model.Distribution{Dist: model.DistTriangular, Min: 0.5, Mode: 1, Max: 2, Corr: 0.3},
		WANTariff:       &model.Distribution{Dist: model.DistUniform, Min: 0.7, Max: 1.5, Corr: 0.8},
		LatencyJitterMs: &model.Distribution{Dist: model.DistNormal, Mean: 0, StdDev: 6, Corr: 0.6},
	}
}

func runBatch(t *testing.T, workers, samples int, seed int64) *Result {
	t.Helper()
	res, err := Run(context.Background(), testState(t), testSpec(), Options{
		Samples:   samples,
		Seed:      seed,
		Workers:   workers,
		CVaRAlpha: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func reportBytes(t *testing.T, r *obs.RobustReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteRobustReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunDeterministicAcrossWorkers is the replay contract: one (state,
// spec, seed, N, α) tuple must produce a byte-identical report whether
// the harness fans out over 1 worker or 8. Run under -race this also
// stress-tests the pool.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	a := runBatch(t, 1, 8, 42)
	b := runBatch(t, 8, 8, 42)
	ba, bb := reportBytes(t, a.Report), reportBytes(t, b.Report)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("workers=1 and workers=8 reports differ:\n--- w1\n%s\n--- w8\n%s", ba, bb)
	}
	// And the ranked-plan outcome specifically.
	if a.Report.Chosen != b.Report.Chosen {
		t.Fatalf("chosen plan differs: %q vs %q", a.Report.Chosen, b.Report.Chosen)
	}
	ja, _ := json.Marshal(a.Chosen)
	jb, _ := json.Marshal(b.Chosen)
	if !bytes.Equal(ja, jb) {
		t.Fatal("chosen plan JSON differs across worker counts")
	}
	// A different seed must change the sample set.
	c := runBatch(t, 1, 8, 43)
	if bytes.Equal(ba, reportBytes(t, c.Report)) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestSampledModelsDeterministic locks the sampler itself at the model
// level: the exact sampled states, not just the aggregate report, must
// replay per (seed, index) — the property the phase-2 candidate scoring
// relies on when it regenerates states instead of retaining them.
func TestSampledModelsDeterministic(t *testing.T) {
	s := testState(t)
	spec := testSpec()
	for i := 0; i < 8; i++ {
		a, err := s.Perturb(spec, rand.New(rand.NewSource(sampleSeed(42, i))))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Perturb(spec, rand.New(rand.NewSource(sampleSeed(42, i))))
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("sample %d replayed differently", i)
		}
	}
}

// TestNominalRegretNonNegative is the core optimality property: every
// solved sample's certified optimum is at least as cheap as the nominal
// plan re-costed under that sample, so regret ≥ 0 up to the solver's
// objective tolerance.
func TestNominalRegretNonNegative(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		res := runBatch(t, 4, 6, seed)
		r := res.Report
		if r.SamplesSolved == 0 {
			t.Fatalf("seed %d: no samples solved", seed)
		}
		eps := tol.Objective * math.Max(1, r.NominalCost)
		if !tol.Geq(r.Regret.Min, 0, eps) {
			t.Errorf("seed %d: min nominal regret %v < 0 beyond tolerance %v", seed, r.Regret.Min, eps)
		}
		// The chosen plan can only improve on the nominal plan's scores.
		var nomRank, chosenRank *obs.RankedPlan
		for i := range r.Plans {
			if r.Plans[i].Chosen {
				chosenRank = &r.Plans[i]
			}
			if r.Plans[i].Source == "nominal" {
				nomRank = &r.Plans[i]
			}
		}
		if chosenRank == nil {
			t.Fatalf("seed %d: no chosen plan", seed)
		}
		if nomRank != nil && !tol.Leq(chosenRank.CVaRRegret, nomRank.CVaRRegret, eps) {
			t.Errorf("seed %d: chosen CVaR regret %v worse than nominal %v", seed, chosenRank.CVaRRegret, nomRank.CVaRRegret)
		}
		if chosenRank.Certificate == "" {
			t.Errorf("seed %d: chosen plan has no certificate", seed)
		}
	}
}

// TestFaultedBatchStillReports is the failure-isolation satellite:
// persistently panicking and deadline-expired sample solves must be
// excluded one by one — with their degradation stage and reason — and
// the batch must still emit a valid report with the nominal plan
// standing as the chosen candidate.
func TestFaultedBatchStillReports(t *testing.T) {
	for _, spec := range []string{"panicxall", "deadlinexall"} {
		t.Run(spec, func(t *testing.T) {
			res, err := Run(context.Background(), tightState(t), testSpec(), Options{
				Samples:   4,
				Seed:      42,
				Workers:   4,
				CVaRAlpha: 0.9,
				Faults:    spec,
				FaultSeed: 1,
			})
			if err != nil {
				t.Fatalf("faulted batch aborted: %v", err)
			}
			r := res.Report
			if err := r.Validate(); err != nil {
				t.Fatalf("faulted batch report invalid: %v", err)
			}
			if r.SamplesExcluded != r.Samples {
				t.Fatalf("%d/%d faulted samples excluded, want all", r.SamplesExcluded, r.Samples)
			}
			if len(r.Excluded) != r.Samples {
				t.Fatalf("excluded detail lists %d samples, want %d", len(r.Excluded), r.Samples)
			}
			if r.SamplesDegraded != r.Samples {
				t.Errorf("%d/%d samples marked degraded, want all (the pipeline recovers every fault via a fallback stage)", r.SamplesDegraded, r.Samples)
			}
			for _, ex := range r.Excluded {
				if ex.Stage == "" || ex.Reason == "" {
					t.Errorf("excluded sample %d misses its degradation stage/reason: %+v", ex.Index, ex)
				}
			}
			if len(r.Plans) != 1 || r.Plans[0].Source != "nominal" || !r.Plans[0].Chosen {
				t.Fatalf("faulted batch should rank exactly the nominal plan, got %+v", r.Plans)
			}
			if res.Chosen != res.Nominal {
				t.Error("faulted batch chose a non-nominal plan")
			}
		})
	}
}

// TestRunRecordsMetrics checks the harness counters land in the shared
// registry.
func TestRunRecordsMetrics(t *testing.T) {
	met := obs.NewMetrics()
	opts := Options{Samples: 4, Seed: 42, Workers: 2, CVaRAlpha: 0.9}
	opts.Planner.Solver.Metrics = met
	if _, err := Run(context.Background(), testState(t), testSpec(), opts); err != nil {
		t.Fatal(err)
	}
	if got := met.Counter(obs.MetricRobustSamples); got != 4 {
		t.Errorf("robust.samples = %d, want 4", got)
	}
	solved := met.Counter(obs.MetricRobustSamplesSolved)
	excluded := met.Counter(obs.MetricRobustSamplesExcluded)
	if solved+excluded != 4 {
		t.Errorf("solved %d + excluded %d != 4", solved, excluded)
	}
	if met.Counter(obs.MetricRobustCandidates) < 1 {
		t.Error("no candidates counted")
	}
}

// TestRunRejectsBadOptions covers the argument contract.
func TestRunRejectsBadOptions(t *testing.T) {
	s := testState(t)
	spec := testSpec()
	ctx := context.Background()
	if _, err := Run(ctx, s, spec, Options{Samples: 0}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := Run(ctx, s, spec, Options{Samples: 1, CVaRAlpha: 1}); err == nil {
		t.Error("cvar alpha 1 accepted")
	}
	if _, err := Run(ctx, s, nil, Options{Samples: 1}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := Run(ctx, s, spec, Options{Samples: 1, Faults: "bogus"}); err == nil {
		t.Error("bad fault spec accepted")
	}
	if _, err := Run(ctx, s, &model.UncertaintySpec{}, Options{Samples: 1}); err == nil {
		t.Error("empty spec accepted")
	}
}

// TestGoldenRobustReport locks a 16-sample deterministic-mode report
// byte for byte. Regenerate deliberately with:
//
//	go test ./internal/robust -run TestGoldenRobustReport -update
func TestGoldenRobustReport(t *testing.T) {
	res := runBatch(t, 4, 16, 1)
	got := reportBytes(t, res.Report)
	golden := filepath.Join("testdata", "golden_report.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("robust report drifted from golden fixture (run with -update if intentional)\n--- got\n%s", got)
	}
}
