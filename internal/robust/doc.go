// Package robust is the Monte Carlo robustness harness: it answers "how
// good is a consolidation plan when the inputs are distributions, not
// point estimates?"
//
// A batch perturbs the as-is state N times under a declared
// model.UncertaintySpec (power price, traffic, WAN tariffs, latency
// jitter — each a normal/lognormal/uniform/triangular marginal with
// optional cross-data-center correlation), solves every sampled scenario
// to a certified optimum through the resilient pipeline, and reports
// three views of plan stability:
//
//   - the nominal plan's regret distribution — its cost under each
//     sample minus that sample's own certified optimum;
//   - per-decision flip frequencies — which group→DC placements the
//     sampled optima move, how often, and to where;
//   - a robustness-ranked plan selection — the nominal plan and every
//     distinct per-sample optimum, re-scored across all samples and
//     ranked by CVaR-α regret (expected regret, then nominal cost, as
//     tie-breaks), each candidate independently re-certified against
//     the nominal MILP before it may be chosen.
//
// Replay is a hard guarantee, in the same spirit as the warm/cold and
// dense/sparse equivalence suites: sample i's inputs come from a
// dedicated RNG seeded by mix(seed, i), per-sample solves run the
// deterministic Workers=1 branch & bound, and results are folded in
// sample-index order. The harness worker count only schedules work, so
// one (state, spec, seed, N, α) tuple produces a byte-identical report
// at any -workers value. The report schema (obs.RobustReport,
// "etransform-robust/v1") carries no clocks or host fields for exactly
// this reason.
//
// Failure isolation: a sample whose solve panics, degrades to a
// fallback stage, or exhausts its budget is recorded with its
// degradation stage/reason and excluded from the regret statistics —
// it can never abort the batch or silently pollute the distribution.
package robust
