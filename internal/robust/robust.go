package robust

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/experiments"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/resilience/faultinject"
)

// Options configure one robustness batch.
type Options struct {
	// Samples is N, the number of sampled scenarios (≥ 1).
	Samples int
	// Seed drives every sample's RNG: sample i draws from a stream
	// seeded by mix(Seed, i), so the sample set is a pure function of
	// (Seed, spec) at any worker count.
	Seed int64
	// Workers bounds the harness fan-out (0 = all CPUs). It schedules
	// sample solves only; each solve itself runs the deterministic
	// Workers=1 branch & bound regardless.
	Workers int
	// CVaRAlpha is the tail level α of every CVaR figure: CVaR is the
	// mean of the worst ceil((1−α)·n) regrets. 0 averages the whole
	// distribution (CVaR = expected regret); must lie in [0, 1).
	CVaRAlpha float64
	// Faults, when non-empty, arms a deterministic fault injector for
	// every sample solve (spec grammar of internal/resilience/faultinject,
	// seeded FaultSeed+index per sample). The nominal solve never runs
	// with faults: it is the reference. Testing only.
	Faults    string
	FaultSeed int64
	// Planner carries the planner/solver options every solve runs with.
	// The harness forces Solver.Workers=1, drops Solver.Trace and
	// Solver.Inject, and disables shadow prices for sample solves; the
	// nominal solve keeps tracing and shadow prices but is also pinned
	// to one solver worker so the reference plan is replayable.
	Planner core.Options
}

// Result is a completed batch: the machine-readable report plus the two
// plans a caller usually wants in hand.
type Result struct {
	// Report is the validated etransform-robust/v1 report.
	Report *obs.RobustReport
	// Nominal is the plan solved from the unperturbed state.
	Nominal *model.Plan
	// Chosen is the robustness-ranked selection, costed under the
	// nominal inputs and carrying its re-certification summary. It
	// aliases Nominal when the nominal plan won the ranking.
	Chosen *model.Plan
}

// sampleOutcome is the phase-1 record of one sample, indexed by sample
// number so folds are deterministic.
type sampleOutcome struct {
	excluded bool
	degraded bool
	stage    string
	reason   string
	limit    string
	plan     *model.Plan // the sample's own certified optimal plan
	opt      float64     // plan.Cost.Total() under the sampled inputs
	nom      float64     // nominal plan re-costed under the sampled inputs
}

func (o *sampleOutcome) exclude(stage, reason, limit string, degraded bool) {
	o.excluded = true
	o.degraded = degraded
	o.stage = stage
	o.reason = reason
	o.limit = limit
	o.plan = nil
}

// candidate is one entry of the robustness ranking under construction.
type candidate struct {
	key     string // full assignment signature (dedup key)
	sig     string // FNV-64a hex of key (reported form)
	plan    *model.Plan
	source  string
	count   int     // solved samples whose optimum had this signature
	nomCost float64 // cost under nominal inputs
	cert    string
	exp     float64
	cvar    float64
}

// Run executes one robustness batch: solve the nominal plan, fan N
// sampled scenarios through the worker pool, and assemble the stability
// report. See the package comment for the replay and failure-isolation
// contracts.
func Run(ctx context.Context, state *model.AsIsState, spec *model.UncertaintySpec, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if state == nil {
		return nil, fmt.Errorf("robust: nil state")
	}
	if spec == nil {
		return nil, fmt.Errorf("robust: nil uncertainty spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Samples < 1 {
		return nil, fmt.Errorf("robust: samples %d, want >= 1", opts.Samples)
	}
	if opts.CVaRAlpha < 0 || opts.CVaRAlpha >= 1 {
		return nil, fmt.Errorf("robust: cvar alpha %v, want [0, 1)", opts.CVaRAlpha)
	}
	if _, err := faultinject.ParseSpec(opts.Faults, opts.FaultSeed); err != nil {
		return nil, fmt.Errorf("robust: fault spec: %w", err)
	}
	met := opts.Planner.Solver.Metrics

	// Nominal reference solve: deterministic, fault-free.
	nomOpts := opts.Planner
	nomOpts.Solver.Workers = 1
	nomOpts.Solver.Inject = nil
	nomPlanner, err := core.New(state, nomOpts)
	if err != nil {
		return nil, err
	}
	nominal, err := nomPlanner.SolveContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("robust: nominal solve: %w", err)
	}

	// Phase 1: fan the sampled scenarios through the bounded pool. Each
	// sample perturbs from its own seeded RNG, solves at one solver
	// worker, and records its outcome at its own index — the pool's
	// scheduling order can never reach the report.
	n := opts.Samples
	outcomes := make([]sampleOutcome, n)
	err = experiments.ForEachContext(ctx, n, opts.Workers, func(i int) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		o := &outcomes[i]
		ps, perr := state.Perturb(spec, rand.New(rand.NewSource(sampleSeed(opts.Seed, i))))
		if perr != nil {
			o.exclude("perturb", perr.Error(), "", false)
			return nil
		}
		plan, serr := solveSample(ctx, ps, samplePlanner(&opts, i))
		if serr != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			o.exclude("", serr.Error(), "", false)
			return nil
		}
		if d := plan.Stats.Degradation; d != nil && d.Degraded {
			o.exclude(d.Stage, d.Reason, d.Limit, true)
			return nil
		}
		bd, eerr := model.EvaluatePlan(ps, nominal)
		if eerr != nil {
			o.exclude("", fmt.Sprintf("re-costing nominal plan under the sample: %v", eerr), "", false)
			return nil
		}
		o.plan = plan
		o.opt = plan.Cost.Total()
		o.nom = bd.Total()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("robust: sample batch: %w", err)
	}

	// Candidate set: the nominal plan first, then each distinct
	// per-sample optimum in first-seen (index) order.
	nomBD, err := model.EvaluatePlan(state, nominal)
	if err != nil {
		return nil, fmt.Errorf("robust: costing nominal plan: %w", err)
	}
	cands := []*candidate{{
		key: planKey(state, nominal), sig: sigHash(planKey(state, nominal)),
		plan: nominal, source: "nominal", nomCost: nomBD.Total(),
	}}
	byKey := map[string]*candidate{cands[0].key: cands[0]}
	solved := 0
	for i := range outcomes {
		o := &outcomes[i]
		if o.excluded {
			continue
		}
		solved++
		key := planKey(state, o.plan)
		if c, ok := byKey[key]; ok {
			c.count++
			continue
		}
		bd, eerr := model.EvaluatePlan(state, o.plan)
		if eerr != nil {
			// The sample's optimum does not translate to the nominal
			// inputs (should be impossible: perturbation never changes
			// the feasible set). Keep the batch alive without it.
			continue
		}
		c := &candidate{key: key, sig: sigHash(key), plan: o.plan, source: "sample", count: 1, nomCost: bd.Total()}
		byKey[key] = c
		cands = append(cands, c)
	}

	// Phase 2: score every candidate under every solved sample by
	// regenerating the sampled states from their seeds — replay instead
	// of retention, so a 10k-sample batch never holds 10k estates.
	rows := make([][]float64, n)
	err = experiments.ForEachContext(ctx, n, opts.Workers, func(i int) error {
		if outcomes[i].excluded {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		ps, perr := state.Perturb(spec, rand.New(rand.NewSource(sampleSeed(opts.Seed, i))))
		if perr != nil {
			return fmt.Errorf("robust: sample %d replay: %w", i, perr)
		}
		row := make([]float64, len(cands))
		for c, cand := range cands {
			bd, eerr := model.EvaluatePlan(ps, cand.plan)
			if eerr != nil {
				row[c] = math.NaN()
				continue
			}
			row[c] = bd.Total()
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Fold regrets in index order, score and certify candidates, rank.
	regrets := make([]float64, 0, solved)
	for i := range outcomes {
		if !outcomes[i].excluded {
			regrets = append(regrets, outcomes[i].nom-outcomes[i].opt)
		}
	}
	rejected := 0
	kept := cands[:0]
	for c, cand := range cands {
		vals := make([]float64, 0, solved)
		bad := false
		for i := range outcomes {
			if outcomes[i].excluded {
				continue
			}
			v := rows[i][c]
			if math.IsNaN(v) {
				bad = true
				break
			}
			vals = append(vals, v-outcomes[i].opt)
		}
		if bad {
			rejected++
			continue
		}
		summary, cerr := nomPlanner.CertifyPlan(cand.plan)
		if cerr != nil {
			rejected++
			continue
		}
		cand.cert = summary
		cand.exp = mean(vals)
		sort.Float64s(vals)
		cand.cvar = tailMean(vals, opts.CVaRAlpha)
		kept = append(kept, cand)
	}
	cands = kept
	if len(cands) == 0 {
		return nil, fmt.Errorf("robust: no candidate plan survived certification")
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.cvar < cb.cvar {
			return true
		}
		if cb.cvar < ca.cvar {
			return false
		}
		if ca.exp < cb.exp {
			return true
		}
		if cb.exp < ca.exp {
			return false
		}
		if ca.nomCost < cb.nomCost {
			return true
		}
		if cb.nomCost < ca.nomCost {
			return false
		}
		return ca.sig < cb.sig
	})

	report, err := assembleReport(state, spec, &opts, nominal, nomBD.Total(), outcomes, regrets, cands)
	if err != nil {
		return nil, err
	}

	met.Add(obs.MetricRobustSamples, int64(n))
	met.Add(obs.MetricRobustSamplesSolved, int64(report.SamplesSolved))
	met.Add(obs.MetricRobustSamplesDegraded, int64(report.SamplesDegraded))
	met.Add(obs.MetricRobustSamplesExcluded, int64(report.SamplesExcluded))
	met.Add(obs.MetricRobustCandidates, int64(len(cands)))
	met.Add(obs.MetricRobustCandidatesRejected, int64(rejected))
	met.Add(obs.MetricRobustDecisionsFlipped, int64(len(report.Flips)))

	chosen := cands[0]
	chosenPlan := nominal
	if chosen.plan != nominal {
		bd, eerr := model.EvaluatePlan(state, chosen.plan)
		if eerr != nil {
			return nil, fmt.Errorf("robust: costing chosen plan: %w", eerr)
		}
		chosenPlan = &model.Plan{
			Assignments:   chosen.plan.Assignments,
			BackupServers: chosen.plan.BackupServers,
			Cost:          bd,
			Stats:         model.SolveStats{Certificate: chosen.cert},
		}
	}
	return &Result{Report: report, Nominal: nominal, Chosen: chosenPlan}, nil
}

// assembleReport folds outcomes and ranked candidates into the
// validated schema struct.
func assembleReport(state *model.AsIsState, spec *model.UncertaintySpec, opts *Options,
	nominal *model.Plan, nominalCost float64, outcomes []sampleOutcome,
	regrets []float64, cands []*candidate) (*obs.RobustReport, error) {

	rawSpec, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("robust: encoding spec: %w", err)
	}
	r := &obs.RobustReport{
		Schema:      obs.RobustSchema,
		Dataset:     state.Name,
		Seed:        opts.Seed,
		Samples:     opts.Samples,
		CVaRAlpha:   opts.CVaRAlpha,
		Spec:        rawSpec,
		NominalCost: nominalCost,
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.excluded {
			r.SamplesExcluded++
			if o.degraded {
				r.SamplesDegraded++
			}
			r.Excluded = append(r.Excluded, obs.ExcludedSample{
				Index: i, Stage: o.stage, Reason: o.reason, Limit: o.limit, Degraded: o.degraded,
			})
		} else {
			r.SamplesSolved++
		}
	}
	if r.SamplesSolved > 0 {
		sorted := append([]float64(nil), regrets...)
		sort.Float64s(sorted)
		r.Regret = &obs.RegretStats{
			Count: len(sorted),
			Mean:  mean(regrets),
			Min:   sorted[0],
			Max:   sorted[len(sorted)-1],
			P50:   percentile(sorted, 0.5),
			P90:   percentile(sorted, 0.9),
			CVaR:  tailMean(sorted, opts.CVaRAlpha),
		}
	}
	r.Flips = decisionFlips(state, nominal, outcomes, opts.Planner.Solver.Metrics)
	for rank, c := range cands {
		p := obs.RankedPlan{
			Signature:      c.sig,
			Source:         c.source,
			SampleCount:    c.count,
			NominalCost:    c.nomCost,
			ExpectedRegret: c.exp,
			CVaRRegret:     c.cvar,
			Certificate:    c.cert,
			Chosen:         rank == 0,
		}
		r.Plans = append(r.Plans, p)
	}
	r.Chosen = cands[0].sig
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("robust: internal: assembled report invalid: %w", err)
	}
	return r, nil
}

// decisionFlips computes, for every application group, how often the
// sampled optima moved it off its nominal primary site. Stable groups
// are omitted from the report but still observed into the flip
// histogram (count 0), so the histogram covers the whole estate.
func decisionFlips(state *model.AsIsState, nominal *model.Plan, outcomes []sampleOutcome, met *obs.Metrics) []obs.DecisionFlip {
	solved := 0
	counts := make([]map[string]int, len(state.Groups))
	for g := range counts {
		counts[g] = make(map[string]int)
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.excluded {
			continue
		}
		solved++
		at := primaries(o.plan)
		for g := range state.Groups {
			counts[g][at[state.Groups[g].ID]]++
		}
	}
	if solved == 0 {
		return nil
	}
	nomAt := primaries(nominal)
	var flips []obs.DecisionFlip
	for g := range state.Groups {
		id := state.Groups[g].ID
		nom := nomAt[id]
		flipped := solved - counts[g][nom]
		met.Observe(obs.MetricHistRobustFlips, float64(flipped))
		if flipped == 0 {
			continue
		}
		dcs := make([]string, 0, len(counts[g]))
		for dc := range counts[g] {
			dcs = append(dcs, dc)
		}
		sort.Strings(dcs)
		alts := make([]obs.DCShare, 0, len(dcs))
		for _, dc := range dcs {
			if dc == nom {
				continue
			}
			alts = append(alts, obs.DCShare{DC: dc, Count: counts[g][dc]})
		}
		sort.SliceStable(alts, func(a, b int) bool { return alts[a].Count > alts[b].Count })
		flips = append(flips, obs.DecisionFlip{
			GroupID:      id,
			NominalDC:    nom,
			FlipRate:     float64(flipped) / float64(solved),
			Alternatives: alts,
		})
	}
	return flips
}

// primaries maps group ID → primary DC ID for one plan.
func primaries(p *model.Plan) map[string]string {
	at := make(map[string]string, len(p.Assignments))
	for i := range p.Assignments {
		at[p.Assignments[i].GroupID] = p.Assignments[i].PrimaryDC
	}
	return at
}

// samplePlanner derives the per-sample planner options: one solver
// worker (bit-for-bit deterministic solves), no tracing (events would
// interleave across the pool), no shadow prices (dead weight at batch
// scale), and a per-sample fault injector when the batch runs under
// fault testing.
func samplePlanner(opts *Options, i int) core.Options {
	po := opts.Planner
	po.Solver.Workers = 1
	po.Solver.Trace = nil
	po.Solver.Inject = nil
	po.ComputeShadowPrices = false
	if opts.Faults != "" {
		// ParseSpec was validated up front; a per-sample seed keeps any
		// probabilistic fault schedule replayable at any worker count.
		inj, err := faultinject.ParseSpec(opts.Faults, opts.FaultSeed+int64(i))
		if err == nil {
			po.Solver.Inject = inj
		}
	}
	return po
}

// solveSample builds and solves one sampled scenario, converting a
// panicking solve into an excludable error so a poisoned sample can
// never abort the batch.
func solveSample(ctx context.Context, ps *model.AsIsState, po core.Options) (plan *model.Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, fmt.Errorf("sample solve panicked: %v", r)
		}
	}()
	planner, err := core.New(ps, po)
	if err != nil {
		return nil, err
	}
	return planner.SolveContext(ctx)
}

// planKey renders a plan's full assignment vector in state group order:
// the dedup identity of a candidate. Backup pool sizes are implied by
// the assignments, so they are not part of the key.
func planKey(state *model.AsIsState, p *model.Plan) string {
	var b strings.Builder
	for i := range state.Groups {
		a := p.AssignmentFor(state.Groups[i].ID)
		if a == nil {
			b.WriteString(state.Groups[i].ID)
			b.WriteString("=?;")
			continue
		}
		b.WriteString(a.GroupID)
		b.WriteByte('=')
		b.WriteString(a.PrimaryDC)
		if a.SecondaryDC != "" {
			b.WriteByte('+')
			b.WriteString(a.SecondaryDC)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// sigHash is the reported (short) form of a plan key.
func sigHash(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x", h.Sum64())
}

// sampleSeed derives sample i's RNG seed from the batch seed with a
// splitmix64-style mix, so neighboring indices share no low-bit
// structure.
func sampleSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1) // keep it non-negative for rand.NewSource hygiene
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// percentile returns the nearest-rank p-quantile of an ascending slice.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(p * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return sorted[k-1]
}

// tailMean returns CVaR_α of an ascending slice: the mean of the worst
// ceil((1−α)·n) values.
func tailMean(sorted []float64, alpha float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	k := int(math.Ceil((1 - alpha) * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	s := 0.0
	for _, v := range sorted[n-k:] {
		s += v
	}
	return s / float64(k)
}
