package model

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"regexp"
	"sort"
	"testing"
)

// permuteJSON re-serializes a JSON document with every object's keys in
// a random order (arrays keep theirs), plus random indentation choices —
// a formatting-only transformation of the same value. Numbers pass
// through as their original text via json.Number, so no precision is
// gained or lost in the shuffle.
func permuteJSON(t *testing.T, raw []byte, rng *rand.Rand) []byte {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	writePermuted(t, &buf, v, rng)
	return buf.Bytes()
}

func writePermuted(t *testing.T, buf *bytes.Buffer, v any, rng *rand.Rand) {
	t.Helper()
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic base order, then shuffle
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			if rng.Intn(2) == 0 {
				buf.WriteString("\n  ")
			}
			kb, err := json.Marshal(k)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(kb)
			buf.WriteString(": ")
			writePermuted(t, buf, x[k], rng)
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			writePermuted(t, buf, e, rng)
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(x.String())
	default:
		b, err := json.Marshal(x)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
}

// TestCanonicalHashIgnoresEncodingOrder is the cache-key soundness
// property: shuffling every object's key order (and whitespace) in the
// serialized state and re-decoding it must produce the identical hash,
// across many shuffle seeds. A hash that depended on source field order
// or map iteration would split one logical model across cache entries.
func TestCanonicalHashIgnoresEncodingOrder(t *testing.T) {
	s := testState(t)
	want, err := CanonicalHash(s)
	if err != nil {
		t.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := WriteState(&pretty, s); err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shuffled := permuteJSON(t, pretty.Bytes(), rng)
		got, err := ReadState(bytes.NewReader(shuffled))
		if err != nil {
			t.Fatalf("seed %d: shuffled state no longer decodes: %v\n%s", seed, err, shuffled)
		}
		h, err := CanonicalHash(got)
		if err != nil {
			t.Fatal(err)
		}
		if h != want {
			t.Fatalf("seed %d: hash %s after key shuffle, want %s", seed, h, want)
		}
	}
}

// TestCanonicalHashSeesEveryField mutates the state one field at a time
// and requires a different key each time — a hash blind to any of these
// would serve a stale plan for a genuinely different model.
func TestCanonicalHashSeesEveryField(t *testing.T) {
	base, err := CanonicalHash(testState(t))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{"": base}
	for _, mut := range []struct {
		name string
		fn   func(*AsIsState)
	}{
		{"name", func(s *AsIsState) { s.Name = "other" }},
		{"group servers", func(s *AsIsState) { s.Groups[0].Servers++ }},
		{"group data", func(s *AsIsState) { s.Groups[1].DataMbPerMonth *= 2 }},
		{"group users", func(s *AsIsState) { s.Groups[0].UsersByLocation[0]++ }},
		{"group pin", func(s *AsIsState) { s.Groups[2].PinnedDC = s.Target.DCs[0].ID }},
		{"dc capacity", func(s *AsIsState) { s.Target.DCs[0].CapacityServers++ }},
		{"dc power", func(s *AsIsState) { s.Target.DCs[1].PowerCostPerKWh += 0.01 }},
		{"latency cell", func(s *AsIsState) { s.Target.LatencyMs[0][0]++ }},
		{"params beta", func(s *AsIsState) { s.Params.ServersPerAdmin++ }},
	} {
		s := testState(t)
		mut.fn(s)
		h, err := CanonicalHash(s)
		if err != nil {
			t.Fatalf("%s: %v", mut.name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q collides with %q (hash %s)", mut.name, prev, h)
		}
		seen[h] = mut.name
	}
}

// TestCanonicalBytesCompact pins the canonical form itself: compact
// (no newlines or indent), so hashes computed by different callers agree
// byte for byte, and stable across two encodings of the same state.
func TestCanonicalBytesCompact(t *testing.T) {
	s := testState(t)
	a, err := CanonicalBytes(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalBytes(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two canonical encodings of one state differ")
	}
	if bytes.ContainsAny(a, "\n\t") || bytes.Contains(a, []byte(": ")) {
		t.Fatalf("canonical bytes are not compact: %.120s", a)
	}
	h, err := CanonicalHash(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := regexp.MatchString(`^[0-9a-f]{16}$`, h); !ok {
		t.Fatalf("hash %q is not 16 lowercase hex digits", h)
	}
}
