package model

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
)

// This file defines the input-uncertainty model behind the Monte Carlo
// robustness harness (internal/robust): a declarative distribution spec
// over the model quantities the paper treats as point estimates — power
// price, traffic volume, WAN tariffs, latency — and a deterministic
// perturbation operator that applies one correlated draw of the spec to
// an AsIsState. Everything is driven by a caller-supplied *rand.Rand
// with a fixed draw order, so a (seed, spec) pair replays to the exact
// same sampled state on any machine and at any harness worker count.

// UncertaintySpecSchema identifies the uncertainty-spec JSON format; the
// optional "schema" field, when present, must match it.
const UncertaintySpecSchema = "etransform-uncertainty/v1"

// Distribution kinds accepted by Distribution.Dist.
const (
	DistNormal     = "normal"
	DistLognormal  = "lognormal"
	DistUniform    = "uniform"
	DistTriangular = "triangular"
)

// Distribution declares one marginal input distribution. The fields a
// kind reads:
//
//	normal      mean, stddev            → mean + stddev·Z
//	lognormal   mean, stddev (log-space)→ exp(mean + stddev·Z)
//	uniform     min, max                → quantile of U = Φ(Z)
//	triangular  min, mode, max          → quantile of U = Φ(Z)
//
// Corr, in [0, 1], correlates the draws of one application of the
// distribution (e.g. the per-data-center power-price factors of a single
// sample) through a Gaussian copula: each draw's standard normal is
// √Corr·Z_shared + √(1−Corr)·Z_own, so Corr = 0 is independent and
// Corr = 1 moves every data center together (a market-wide price swing
// rather than site-local noise).
type Distribution struct {
	Dist   string  `json:"dist"`
	Mean   float64 `json:"mean,omitempty"`
	StdDev float64 `json:"stddev,omitempty"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
	Mode   float64 `json:"mode,omitempty"`
	Corr   float64 `json:"corr,omitempty"`
}

// Validate checks the distribution, naming errors by the JSON field path
// rooted at path.
func (d *Distribution) Validate(path string) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"mean", d.Mean}, {"stddev", d.StdDev}, {"min", d.Min},
		{"max", d.Max}, {"mode", d.Mode}, {"corr", d.Corr},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("model: %s.%s = %v: must be finite", path, f.name, f.v)
		}
	}
	switch d.Dist {
	case DistNormal, DistLognormal:
		if d.StdDev < 0 {
			return fmt.Errorf("model: %s.stddev = %v: must not be negative", path, d.StdDev)
		}
	case DistUniform:
		if d.Max < d.Min {
			return fmt.Errorf("model: %s: max %v < min %v", path, d.Max, d.Min)
		}
	case DistTriangular:
		if d.Max <= d.Min {
			return fmt.Errorf("model: %s: triangular needs min < max, have [%v, %v]", path, d.Min, d.Max)
		}
		if d.Mode < d.Min || d.Mode > d.Max {
			return fmt.Errorf("model: %s.mode = %v: must lie in [%v, %v]", path, d.Mode, d.Min, d.Max)
		}
	case "":
		return fmt.Errorf("model: %s.dist is empty; want normal, lognormal, uniform or triangular", path)
	default:
		return fmt.Errorf("model: %s.dist = %q: want normal, lognormal, uniform or triangular", path, d.Dist)
	}
	if d.Corr < 0 || d.Corr > 1 {
		return fmt.Errorf("model: %s.corr = %v: must lie in [0, 1]", path, d.Corr)
	}
	return nil
}

// stdNormalCDF is Φ, the standard normal CDF, used to push copula
// normals through the uniform/triangular quantile functions.
func stdNormalCDF(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

// value maps one standard-normal copula draw to the distribution's
// scale. Validate must have accepted the distribution first.
func (d *Distribution) value(z float64) float64 {
	switch d.Dist {
	case DistNormal:
		return d.Mean + d.StdDev*z
	case DistLognormal:
		return math.Exp(d.Mean + d.StdDev*z)
	case DistUniform:
		return d.Min + (d.Max-d.Min)*stdNormalCDF(z)
	case DistTriangular:
		return d.triangularQuantile(stdNormalCDF(z))
	}
	return d.Mean
}

// triangularQuantile is the closed-form inverse CDF of the triangular
// distribution on [Min, Max] with mode Mode.
func (d *Distribution) triangularQuantile(u float64) float64 {
	span := d.Max - d.Min
	cut := (d.Mode - d.Min) / span
	if u <= cut {
		return d.Min + math.Sqrt(u*span*(d.Mode-d.Min))
	}
	return d.Max - math.Sqrt((1-u)*span*(d.Max-d.Mode))
}

// drawer starts one correlated application of the distribution: it
// consumes one shared normal immediately and then one normal per next()
// call, keeping the total draw count — and therefore the RNG stream
// layout — independent of Corr.
type drawer struct {
	d      *Distribution
	rng    *rand.Rand
	shared float64
	a, b   float64
}

func (d *Distribution) drawer(rng *rand.Rand) *drawer {
	return &drawer{
		d: d, rng: rng,
		shared: rng.NormFloat64(),
		a:      math.Sqrt(d.Corr),
		b:      math.Sqrt(1 - d.Corr),
	}
}

func (c *drawer) next() float64 {
	z := c.a*c.shared + c.b*c.rng.NormFloat64()
	return c.d.value(z)
}

// UncertaintySpec declares which model inputs are uncertain and how.
// Multiplicative factors (power, traffic, WAN) are clamped at zero;
// latency jitter is additive milliseconds, clamped so no latency goes
// negative. Only the target estate is perturbed: the current estate is
// the fixed as-is baseline, while the sampled quantities are the
// to-be-decision inputs the consolidation plan must be robust against.
type UncertaintySpec struct {
	// Schema, when present, must equal UncertaintySpecSchema.
	Schema string `json:"schema,omitempty"`
	// PowerPrice draws one multiplicative factor per target data center
	// applied to PowerCostPerKWh (Corr correlates data centers).
	PowerPrice *Distribution `json:"power_price,omitempty"`
	// TrafficScale draws one factor per group×user-location cell; each
	// group's DataMbPerMonth is scaled by its user-share-weighted average
	// factor (Corr correlates the locations of one group).
	TrafficScale *Distribution `json:"traffic_scale,omitempty"`
	// WANTariff draws one multiplicative factor per target data center
	// applied to WANCostPerMb and, when present, the data center's
	// VPNLinkMonthly row (Corr correlates data centers).
	WANTariff *Distribution `json:"wan_tariff,omitempty"`
	// LatencyJitterMs draws additive milliseconds per (user location,
	// target data center) pair (Corr correlates the data centers seen
	// from one location).
	LatencyJitterMs *Distribution `json:"latency_jitter_ms,omitempty"`
}

// Validate checks the spec: a known schema tag, at least one declared
// distribution, and each distribution internally consistent.
func (u *UncertaintySpec) Validate() error {
	if u.Schema != "" && u.Schema != UncertaintySpecSchema {
		return fmt.Errorf("model: uncertainty spec schema %q, want %q", u.Schema, UncertaintySpecSchema)
	}
	n := 0
	for _, f := range []struct {
		path string
		d    *Distribution
	}{
		{"power_price", u.PowerPrice},
		{"traffic_scale", u.TrafficScale},
		{"wan_tariff", u.WANTariff},
		{"latency_jitter_ms", u.LatencyJitterMs},
	} {
		if f.d == nil {
			continue
		}
		n++
		if err := f.d.Validate(f.path); err != nil {
			return err
		}
	}
	if n == 0 {
		return fmt.Errorf("model: uncertainty spec declares no distributions")
	}
	return nil
}

// ReadUncertaintySpec parses and validates a spec stream. Unknown fields
// are rejected: a typo in a field name must not silently mean "no
// uncertainty there".
func ReadUncertaintySpec(r io.Reader) (*UncertaintySpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	u := &UncertaintySpec{}
	if err := dec.Decode(u); err != nil {
		return nil, fmt.Errorf("model: parsing uncertainty spec: %w", err)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// LoadUncertaintySpec reads a spec from a file.
func LoadUncertaintySpec(path string) (*UncertaintySpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	u, err := ReadUncertaintySpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return u, nil
}

// Clone deep-copies the state: every slice the perturbation operator (or
// a caller) may mutate gets its own backing array. Stepwise curves and
// latency-penalty functions are shared — they are immutable by API
// (their segment slices are unexported and only copied out).
func (s *AsIsState) Clone() *AsIsState {
	c := *s
	c.Groups = append([]AppGroup(nil), s.Groups...)
	for i := range c.Groups {
		g := &c.Groups[i]
		g.UsersByLocation = append([]int(nil), g.UsersByLocation...)
		if g.AllowedRegions != nil {
			g.AllowedRegions = append(g.AllowedRegions[:0:0], g.AllowedRegions...)
		}
		if g.ForbiddenDCs != nil {
			g.ForbiddenDCs = append([]string(nil), g.ForbiddenDCs...)
		}
	}
	c.UserLocations = append(s.UserLocations[:0:0], s.UserLocations...)
	c.Current = s.Current.clone()
	c.Target = s.Target.clone()
	return &c
}

func (e *Estate) clone() Estate {
	c := *e
	c.DCs = append([]DataCenter(nil), e.DCs...)
	c.LatencyMs = cloneMatrix(e.LatencyMs)
	c.VPNLinkMonthly = cloneMatrix(e.VPNLinkMonthly)
	return c
}

func cloneMatrix(m [][]float64) [][]float64 {
	if m == nil {
		return nil
	}
	c := make([][]float64, len(m))
	for i, row := range m {
		c[i] = append([]float64(nil), row...)
	}
	return c
}

// Perturb returns one sampled copy of the state under the spec, leaving
// the receiver untouched. The draw order is fixed — power factors per
// target DC, traffic factors per group×location, WAN factors per target
// DC, latency jitter per (location, DC) — so a given (spec, rng seed)
// pair always produces the same sampled state. The sampled state is
// re-validated before it is returned: clamping keeps every perturbed
// quantity in its legal domain, so a failure here means the input state
// was already inconsistent.
func (s *AsIsState) Perturb(spec *UncertaintySpec, rng *rand.Rand) (*AsIsState, error) {
	if spec == nil {
		return nil, fmt.Errorf("model: nil uncertainty spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := s.Clone()
	t := &c.Target

	if d := spec.PowerPrice; d != nil {
		dr := d.drawer(rng)
		for j := range t.DCs {
			t.DCs[j].PowerCostPerKWh *= clampFactor(dr.next())
		}
	}
	if d := spec.TrafficScale; d != nil {
		for i := range c.Groups {
			g := &c.Groups[i]
			dr := d.drawer(rng)
			total := g.TotalUsers()
			factor := 0.0
			for r := range g.UsersByLocation {
				f := clampFactor(dr.next())
				if total > 0 {
					factor += f * float64(g.UsersByLocation[r]) / float64(total)
				} else {
					factor += f / float64(len(g.UsersByLocation))
				}
			}
			g.DataMbPerMonth *= factor
		}
	}
	if d := spec.WANTariff; d != nil {
		dr := d.drawer(rng)
		for j := range t.DCs {
			f := clampFactor(dr.next())
			t.DCs[j].WANCostPerMb *= f
			if j < len(t.VPNLinkMonthly) {
				row := t.VPNLinkMonthly[j]
				for r := range row {
					row[r] *= f
				}
			}
		}
	}
	if d := spec.LatencyJitterMs; d != nil {
		for r := range t.LatencyMs {
			dr := d.drawer(rng)
			row := t.LatencyMs[r]
			for j := range row {
				row[j] = math.Max(0, row[j]+dr.next())
			}
		}
	}

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("model: perturbed state invalid: %w", err)
	}
	return c, nil
}

// clampFactor keeps a multiplicative factor in the model's legal domain:
// a heavy-tailed draw may go negative (normal with large stddev), and a
// negative price or traffic volume is meaningless, not "very cheap".
func clampFactor(f float64) float64 { return math.Max(0, f) }
