package model

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReadState decodes an AsIsState from JSON and validates it.
func ReadState(r io.Reader) (*AsIsState, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s AsIsState
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decoding as-is state: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadState reads an AsIsState from a JSON file.
func LoadState(path string) (*AsIsState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	s, err := ReadState(f)
	if err != nil {
		return nil, fmt.Errorf("model: %s: %w", path, err)
	}
	return s, nil
}

// WriteState encodes the state as indented JSON.
func WriteState(w io.Writer, s *AsIsState) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("model: encoding as-is state: %w", err)
	}
	return nil
}

// SaveState writes the state to a JSON file.
func SaveState(path string, s *AsIsState) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: %w", err)
	}
	if err := WriteState(f, s); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("model: closing %s: %w", path, err)
	}
	return nil
}

// WritePlan encodes a plan as indented JSON.
func WritePlan(w io.Writer, p *Plan) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("model: encoding plan: %w", err)
	}
	return nil
}

// ReadPlan decodes a plan from JSON.
func ReadPlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("model: decoding plan: %w", err)
	}
	return &p, nil
}
