package model

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/etransform/etransform/internal/tol"
)

// testSpec returns a spec touching all four uncertain inputs.
func testSpec() *UncertaintySpec {
	return &UncertaintySpec{
		Schema:          UncertaintySpecSchema,
		PowerPrice:      &Distribution{Dist: DistLognormal, Mean: 0, StdDev: 0.2, Corr: 0.5},
		TrafficScale:    &Distribution{Dist: DistTriangular, Min: 0.6, Mode: 1.0, Max: 1.8, Corr: 0.3},
		WANTariff:       &Distribution{Dist: DistUniform, Min: 0.8, Max: 1.3},
		LatencyJitterMs: &Distribution{Dist: DistNormal, Mean: 0, StdDev: 4, Corr: 0.7},
	}
}

func TestPerturbDeterministicReplay(t *testing.T) {
	s := testState(t)
	spec := testSpec()
	a, err := s.Perturb(spec, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Perturb(spec, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same seed produced different sampled states")
	}
	c, err := s.Perturb(spec, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical sampled states")
	}
}

func TestPerturbLeavesReceiverUntouched(t *testing.T) {
	s := testState(t)
	before, _ := json.Marshal(s)
	if _, err := s.Perturb(testSpec(), rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	after, _ := json.Marshal(s)
	if string(before) != string(after) {
		t.Fatal("Perturb mutated the receiver state")
	}
}

func TestPerturbRespectsDistributionSupports(t *testing.T) {
	s := testState(t)
	spec := &UncertaintySpec{
		PowerPrice: &Distribution{Dist: DistUniform, Min: 0.8, Max: 1.2},
		WANTariff:  &Distribution{Dist: DistTriangular, Min: 0.5, Mode: 1, Max: 1.5, Corr: 1},
	}
	for seed := int64(0); seed < 50; seed++ {
		p, err := s.Perturb(spec, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for j := range p.Target.DCs {
			pf := p.Target.DCs[j].PowerCostPerKWh / s.Target.DCs[j].PowerCostPerKWh
			if !tol.Geq(pf, 0.8, tol.Accept) || !tol.Leq(pf, 1.2, tol.Accept) {
				t.Fatalf("seed %d: power factor %v outside uniform [0.8, 1.2]", seed, pf)
			}
			wf := p.Target.DCs[j].WANCostPerMb / s.Target.DCs[j].WANCostPerMb
			if !tol.Geq(wf, 0.5, tol.Accept) || !tol.Leq(wf, 1.5, tol.Accept) {
				t.Fatalf("seed %d: WAN factor %v outside triangular [0.5, 1.5]", seed, wf)
			}
		}
		// Full correlation moves every data center by the same factor.
		wf0 := p.Target.DCs[0].WANCostPerMb / s.Target.DCs[0].WANCostPerMb
		wf1 := p.Target.DCs[1].WANCostPerMb / s.Target.DCs[1].WANCostPerMb
		if !tol.Eq(wf0, wf1, tol.Accept) {
			t.Fatalf("seed %d: corr=1 WAN factors diverge: %v vs %v", seed, wf0, wf1)
		}
	}
}

func TestPerturbClampsAtZero(t *testing.T) {
	s := testState(t)
	// A wildly negative-prone normal: factors must clamp to 0, never go
	// negative, and the sampled state must still validate.
	spec := &UncertaintySpec{
		PowerPrice:      &Distribution{Dist: DistNormal, Mean: 0.1, StdDev: 50},
		TrafficScale:    &Distribution{Dist: DistNormal, Mean: 0.1, StdDev: 50},
		LatencyJitterMs: &Distribution{Dist: DistNormal, Mean: -1000, StdDev: 1},
	}
	for seed := int64(0); seed < 20; seed++ {
		p, err := s.Perturb(spec, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for j := range p.Target.DCs {
			if p.Target.DCs[j].PowerCostPerKWh < 0 {
				t.Fatal("negative power price survived clamping")
			}
		}
		for i := range p.Groups {
			if p.Groups[i].DataMbPerMonth < 0 {
				t.Fatal("negative traffic survived clamping")
			}
		}
		for _, row := range p.Target.LatencyMs {
			for _, v := range row {
				if v < 0 {
					t.Fatal("negative latency survived clamping")
				}
			}
		}
	}
}

func TestPerturbScalesVPNRows(t *testing.T) {
	s := testState(t)
	s.Target.VPNLinkMonthly = [][]float64{{200, 400}, {300, 100}}
	s.Params.VPNLinkCapacityMb = 100
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	spec := &UncertaintySpec{WANTariff: &Distribution{Dist: DistUniform, Min: 2, Max: 2}}
	p, err := s.Perturb(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for j, row := range p.Target.VPNLinkMonthly {
		for r, v := range row {
			if !tol.EqScaled(v, 2*s.Target.VPNLinkMonthly[j][r], tol.Accept) {
				t.Fatalf("VPN[%d][%d] = %v, want doubled %v", j, r, v, 2*s.Target.VPNLinkMonthly[j][r])
			}
		}
	}
}

func TestDistributionValidation(t *testing.T) {
	bad := []struct {
		name string
		d    Distribution
		want string
	}{
		{"unknown-kind", Distribution{Dist: "beta"}, "spec.dist"},
		{"empty-kind", Distribution{}, "spec.dist"},
		{"nan-mean", Distribution{Dist: DistNormal, Mean: math.NaN()}, "spec.mean"},
		{"neg-stddev", Distribution{Dist: DistNormal, StdDev: -1}, "spec.stddev"},
		{"uniform-flipped", Distribution{Dist: DistUniform, Min: 2, Max: 1}, "max"},
		{"triangular-flat", Distribution{Dist: DistTriangular, Min: 1, Max: 1, Mode: 1}, "min < max"},
		{"triangular-mode-out", Distribution{Dist: DistTriangular, Min: 0, Max: 1, Mode: 2}, "spec.mode"},
		{"corr-out-of-range", Distribution{Dist: DistNormal, StdDev: 1, Corr: 1.5}, "spec.corr"},
		{"neg-corr", Distribution{Dist: DistNormal, StdDev: 1, Corr: -0.1}, "spec.corr"},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.d.Validate("spec")
			if err == nil {
				t.Fatal("Validate accepted a broken distribution")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
	good := Distribution{Dist: DistTriangular, Min: 0.5, Mode: 1, Max: 2, Corr: 1}
	if err := good.Validate("spec"); err != nil {
		t.Errorf("Validate rejected a valid distribution: %v", err)
	}
}

func TestReadUncertaintySpec(t *testing.T) {
	if _, err := ReadUncertaintySpec(strings.NewReader(`{"power_price":{"dist":"normal","mean":1,"stddev":0.1},"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadUncertaintySpec(strings.NewReader(`{"schema":"etransform-robust/v1","power_price":{"dist":"normal","mean":1}}`)); err == nil {
		t.Error("wrong schema tag accepted")
	}
	if _, err := ReadUncertaintySpec(strings.NewReader(`{}`)); err == nil {
		t.Error("empty spec accepted")
	}
	u, err := ReadUncertaintySpec(strings.NewReader(`{"schema":"etransform-uncertainty/v1","wan_tariff":{"dist":"uniform","min":0.9,"max":1.1,"corr":0.25}}`))
	if err != nil {
		t.Fatal(err)
	}
	if u.WANTariff == nil || !tol.Same(u.WANTariff.Corr, 0.25) {
		t.Errorf("spec round-trip lost fields: %+v", u)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := testState(t)
	s.Target.VPNLinkMonthly = [][]float64{{1, 2}, {3, 4}}
	s.Params.VPNLinkCapacityMb = 100
	c := s.Clone()
	c.Groups[0].UsersByLocation[0] = 999
	c.Groups[0].ForbiddenDCs = append(c.Groups[0].ForbiddenDCs, "t2")
	c.Target.DCs[0].PowerCostPerKWh = 99
	c.Target.LatencyMs[0][0] = 99
	c.Target.VPNLinkMonthly[0][0] = 99
	c.UserLocations[0].ID = "mutated"
	if s.Groups[0].UsersByLocation[0] == 999 || len(s.Groups[0].ForbiddenDCs) != 0 {
		t.Error("group mutation leaked into the original")
	}
	if tol.Same(s.Target.DCs[0].PowerCostPerKWh, 99) || tol.Same(s.Target.LatencyMs[0][0], 99) || tol.Same(s.Target.VPNLinkMonthly[0][0], 99) {
		t.Error("estate mutation leaked into the original")
	}
	if s.UserLocations[0].ID == "mutated" {
		t.Error("user-location mutation leaked into the original")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("original state broken after clone mutation: %v", err)
	}
}
