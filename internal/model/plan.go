package model

import (
	"fmt"
	"math"
	"sort"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/obs"
)

// Assignment places one application group: a primary data center and,
// under disaster-recovery planning, a secondary one.
type Assignment struct {
	GroupID string `json:"group_id"`
	// PrimaryDC is the target data center the group runs in.
	PrimaryDC string `json:"primary_dc"`
	// SecondaryDC is the DR failover site; empty when DR is not planned.
	SecondaryDC string `json:"secondary_dc,omitempty"`
}

// DCCost is the cost breakdown of one data center in a plan, in monthly
// dollars (backup server purchases are one-time and reported separately).
type DCCost struct {
	Servers       int     `json:"servers"`
	BackupServers int     `json:"backup_servers"`
	Space         float64 `json:"space"`
	Power         float64 `json:"power"`
	Labor         float64 `json:"labor"`
	WAN           float64 `json:"wan"`
	Latency       float64 `json:"latency_penalty"`
	BackupCapital float64 `json:"backup_capital"`
}

// Total returns the all-in cost of the data center.
func (c DCCost) Total() float64 {
	return c.Space + c.Power + c.Labor + c.WAN + c.Latency + c.BackupCapital
}

// CostBreakdown aggregates the cost of an entire plan.
type CostBreakdown struct {
	Space         float64 `json:"space"`
	Power         float64 `json:"power"`
	Labor         float64 `json:"labor"`
	WAN           float64 `json:"wan"`
	Latency       float64 `json:"latency_penalty"`
	BackupCapital float64 `json:"backup_capital"`
	// PerDC maps data center ID to its share. Only DCs that host servers
	// or backups appear.
	PerDC map[string]DCCost `json:"per_dc"`
	// LatencyViolations counts placements (primary, plus secondary when
	// DR is planned) whose average latency triggers a non-zero penalty —
	// the quantity reported in the paper's Tables 4(e) and 6(e).
	LatencyViolations int `json:"latency_violations"`
	// SharedRiskViolations counts co-located pairs of groups that share a
	// risk domain (SharedRiskGroup): plans from the LP planner always
	// score 0; manual plans may not.
	SharedRiskViolations int `json:"shared_risk_violations,omitempty"`
	// DCsUsed counts data centers hosting at least one primary server.
	DCsUsed int `json:"dcs_used"`
	// TotalBackupServers is Σ_j G_j.
	TotalBackupServers int `json:"total_backup_servers"`
}

// OperationalCost is space + power + labor + WAN (no penalties, no
// capital): the paper's "operational cost" whose reduction Figures 4(d)
// and 6(d) report.
func (b *CostBreakdown) OperationalCost() float64 {
	return b.Space + b.Power + b.Labor + b.WAN
}

// Total is the planner's objective: operational cost plus latency
// penalties plus backup-server capital.
func (b *CostBreakdown) Total() float64 {
	return b.OperationalCost() + b.Latency + b.BackupCapital
}

// SolveStats records how the optimization went.
type SolveStats struct {
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	Integral    int     `json:"integral"`
	Nonzeros    int     `json:"nonzeros"`
	Iterations  int     `json:"iterations"`
	Nodes       int     `json:"nodes"`
	Gap         float64 `json:"gap"`
	CandidatesK int     `json:"candidates_k,omitempty"`
	Aggregated  bool    `json:"aggregated,omitempty"`
	Formulation string  `json:"formulation,omitempty"`
	// Workers is the number of branch & bound worker goroutines the solve
	// ran with; PeakQueueDepth is the largest number of simultaneously
	// open nodes. WallMillis and WorkMillis are the solve's elapsed
	// wall-clock time and the summed per-worker busy time — their ratio
	// approximates the effective parallelism achieved.
	Workers        int   `json:"workers,omitempty"`
	PeakQueueDepth int   `json:"peak_queue_depth,omitempty"`
	WallMillis     int64 `json:"wall_millis,omitempty"`
	WorkMillis     int64 `json:"work_millis,omitempty"`
	// Certificate is the independent feasibility certificate produced by
	// internal/certify after the solve (empty for plans that were not
	// certified, e.g. heuristic baselines).
	Certificate string `json:"certificate,omitempty"`
	// Degradation, when non-nil, is the resilient solve pipeline's account
	// of how this plan was produced: which fallback stage delivered it and
	// why earlier stages failed. nil means the exact MILP stage succeeded
	// on its first attempt with no budget pressure.
	Degradation *lp.DegradationReport `json:"degradation,omitempty"`
	// Metrics, when metrics collection was enabled on the solver options,
	// is the observability registry's snapshot taken after the solve:
	// pivot counts, per-worker node throughput, per-stage wall clock and
	// the rest of the taxonomy in internal/obs. nil whenever collection
	// is off, so default plan output is unchanged byte for byte.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Plan is a complete "to-be" state: placements, backup pools and costs.
type Plan struct {
	Assignments []Assignment `json:"assignments"`
	// BackupServers maps target DC ID to the shared backup pool size G_j.
	BackupServers map[string]int `json:"backup_servers,omitempty"`
	Cost          CostBreakdown  `json:"cost"`
	Stats         SolveStats     `json:"stats"`
	// CapacityShadow, when shadow-price computation was requested, maps
	// target DC ID to the marginal monthly value of one additional server
	// slot there (the LP dual of the capacity row at the final plan):
	// where to expand next, and what it is worth.
	CapacityShadow map[string]float64 `json:"capacity_shadow,omitempty"`
}

// AssignmentFor returns the assignment of the given group, or nil.
func (p *Plan) AssignmentFor(groupID string) *Assignment {
	for i := range p.Assignments {
		if p.Assignments[i].GroupID == groupID {
			return &p.Assignments[i]
		}
	}
	return nil
}

// Evaluate scores a set of placements against an estate using the shared
// cost accounting. placement[i] is the estate DC index of group i's
// primary; secondary[i] (when secondaries is non-nil) is the DR site
// index; backups[j] is the backup pool size at DC j (nil for non-DR).
// The same function scores as-is states, baseline plans and LP plans.
func Evaluate(s *AsIsState, e *Estate, placement []int, secondary []int, backups []int) (CostBreakdown, error) {
	if len(placement) != len(s.Groups) {
		return CostBreakdown{}, fmt.Errorf("model: placement has %d entries for %d groups", len(placement), len(s.Groups))
	}
	if secondary != nil && len(secondary) != len(s.Groups) {
		return CostBreakdown{}, fmt.Errorf("model: secondary has %d entries for %d groups", len(secondary), len(s.Groups))
	}
	if backups != nil && len(backups) != len(e.DCs) {
		return CostBreakdown{}, fmt.Errorf("model: backups has %d entries for %d DCs", len(backups), len(e.DCs))
	}

	bd := CostBreakdown{PerDC: make(map[string]DCCost)}
	serversAt := make([]int, len(e.DCs))
	p := &s.Params

	for i := range s.Groups {
		g := &s.Groups[i]
		j := placement[i]
		if j < 0 || j >= len(e.DCs) {
			return CostBreakdown{}, fmt.Errorf("model: group %q placed at invalid DC index %d", g.ID, j)
		}
		serversAt[j] += g.Servers
		dc := &e.DCs[j]
		dcCost := bd.PerDC[dc.ID]
		dcCost.Servers += g.Servers

		perServer := ServerMonthlyCost(dc, p)
		power := p.ServerPowerKW * dc.PowerCostPerKWh * p.HoursPerMonth * float64(g.Servers)
		labor := perServer*float64(g.Servers) - power
		wan := WANCostAt(g, e, p, j)
		lat := LatencyPenaltyAt(g, e, p, j)
		bd.Power += power
		bd.Labor += labor
		bd.WAN += wan
		bd.Latency += lat
		dcCost.Power += power
		dcCost.Labor += labor
		dcCost.WAN += wan
		dcCost.Latency += lat
		if lat > 0 {
			bd.LatencyViolations++
		}

		if secondary != nil {
			sj := secondary[i]
			if sj < 0 || sj >= len(e.DCs) {
				return CostBreakdown{}, fmt.Errorf("model: group %q has invalid secondary DC index %d", g.ID, sj)
			}
			if sj == j {
				return CostBreakdown{}, fmt.Errorf("model: group %q has identical primary and secondary DC %q", g.ID, dc.ID)
			}
			w := p.SecondaryLatencyWeight
			if w > 0 {
				slat := LatencyPenaltyAt(g, e, p, sj) * w
				bd.Latency += slat
				sdc := bd.PerDC[e.DCs[sj].ID]
				sdc.Latency += slat
				bd.PerDC[e.DCs[sj].ID] = sdc
				if slat > 0 {
					bd.LatencyViolations++
				}
			}
		}
		bd.PerDC[dc.ID] = dcCost
	}

	// Backup pools: space/power/labor at the hosting DC plus purchase
	// capital.
	if backups != nil {
		for j, gj := range backups {
			if gj < 0 {
				return CostBreakdown{}, fmt.Errorf("model: negative backup pool at DC %d", j)
			}
			if gj == 0 {
				continue
			}
			dc := &e.DCs[j]
			dcCost := bd.PerDC[dc.ID]
			dcCost.BackupServers += gj
			power := p.ServerPowerKW * dc.PowerCostPerKWh * p.HoursPerMonth * float64(gj)
			labor := dc.LaborCostPerAdmin / p.ServersPerAdmin * float64(gj)
			capital := p.DRServerCost * float64(gj)
			bd.Power += power
			bd.Labor += labor
			bd.BackupCapital += capital
			dcCost.Power += power
			dcCost.Labor += labor
			dcCost.BackupCapital += capital
			bd.PerDC[dc.ID] = dcCost
			bd.TotalBackupServers += gj
			serversAt[j] += gj
		}
	}

	// Space with tiered (volume-discount) pricing evaluated on the DC's
	// total occupancy, including backups.
	for j, n := range serversAt {
		if n == 0 {
			continue
		}
		dc := &e.DCs[j]
		if n > dc.CapacityServers {
			return CostBreakdown{}, fmt.Errorf("model: DC %q holds %d servers, capacity %d", dc.ID, n, dc.CapacityServers)
		}
		space, err := dc.SpaceCost.Eval(float64(n))
		if err != nil {
			return CostBreakdown{}, fmt.Errorf("model: DC %q space cost: %w", dc.ID, err)
		}
		bd.Space += space
		dcCost := bd.PerDC[dc.ID]
		dcCost.Space += space
		bd.PerDC[dc.ID] = dcCost
	}
	usedPrimary := make([]bool, len(e.DCs))
	for i := range s.Groups {
		usedPrimary[placement[i]] = true
	}
	for _, u := range usedPrimary {
		if u {
			bd.DCsUsed++
		}
	}

	// Shared-risk accounting: each extra co-located member of a risk
	// domain at the same primary site is one violation.
	riskAt := make(map[[2]string]int)
	for i := range s.Groups {
		if l := s.Groups[i].SharedRiskGroup; l != "" {
			key := [2]string{l, e.DCs[placement[i]].ID}
			riskAt[key]++
			if riskAt[key] > 1 {
				bd.SharedRiskViolations++
			}
		}
	}
	return bd, nil
}

// EvaluateAsIs scores the current placement in the current estate: the
// paper's "as-is" operational cost and latency violations.
func EvaluateAsIs(s *AsIsState) (CostBreakdown, error) {
	placement := make([]int, len(s.Groups))
	for i := range s.Groups {
		g := &s.Groups[i]
		j := s.Current.DCIndex(g.CurrentDC)
		if j < 0 {
			return CostBreakdown{}, fmt.Errorf("model: group %q has no current DC", g.ID)
		}
		placement[i] = j
	}
	return Evaluate(s, &s.Current, placement, nil, nil)
}

// EvaluatePlan scores a Plan against the target estate.
func EvaluatePlan(s *AsIsState, p *Plan) (CostBreakdown, error) {
	placement := make([]int, len(s.Groups))
	var secondary []int
	hasDR := false
	for i := range s.Groups {
		a := p.AssignmentFor(s.Groups[i].ID)
		if a == nil {
			return CostBreakdown{}, fmt.Errorf("model: plan misses group %q", s.Groups[i].ID)
		}
		j := s.Target.DCIndex(a.PrimaryDC)
		if j < 0 {
			return CostBreakdown{}, fmt.Errorf("model: plan places group %q at unknown DC %q", a.GroupID, a.PrimaryDC)
		}
		placement[i] = j
		if a.SecondaryDC != "" {
			hasDR = true
		}
	}
	if hasDR {
		secondary = make([]int, len(s.Groups))
		for i := range s.Groups {
			a := p.AssignmentFor(s.Groups[i].ID)
			sj := s.Target.DCIndex(a.SecondaryDC)
			if sj < 0 {
				return CostBreakdown{}, fmt.Errorf("model: plan gives group %q unknown secondary DC %q", a.GroupID, a.SecondaryDC)
			}
			secondary[i] = sj
		}
	}
	var backups []int
	if len(p.BackupServers) > 0 {
		backups = make([]int, len(s.Target.DCs))
		for id, n := range p.BackupServers {
			j := s.Target.DCIndex(id)
			if j < 0 {
				return CostBreakdown{}, fmt.Errorf("model: plan has backup pool at unknown DC %q", id)
			}
			backups[j] = n
		}
	}
	return Evaluate(s, &s.Target, placement, secondary, backups)
}

// RequiredBackups computes the single-failure shared backup pool implied
// by a set of primary/secondary placements: G_b = max_a Σ_{i: primary=a,
// secondary=b} S_i (§IV-B). The result is the minimum pool satisfying
// every single-DC failure.
func RequiredBackups(s *AsIsState, numDCs int, placement, secondary []int) []int {
	demand := make(map[[2]int]int)
	for i := range s.Groups {
		key := [2]int{placement[i], secondary[i]}
		demand[key] += s.Groups[i].Servers
	}
	// G_b must cover the worst single primary-DC failure routed to b:
	// the max over primaries a of the (a→b) demand.
	backups := make([]int, numDCs)
	for key, servers := range demand {
		if b := key[1]; servers > backups[b] {
			backups[b] = servers
		}
	}
	return backups
}

// RequiredBackupsDedicated sizes per-group dedicated backup pools: when
// planning for more than one concurrent failure, backup servers cannot be
// shared (§IV-A), so G_b is the sum of all server demand routed to b.
func RequiredBackupsDedicated(s *AsIsState, numDCs int, placement, secondary []int) []int {
	backups := make([]int, numDCs)
	for i := range s.Groups {
		backups[secondary[i]] += s.Groups[i].Servers
	}
	return backups
}

// Summary renders a compact multi-line description of the breakdown.
func (b *CostBreakdown) Summary() string {
	ids := make([]string, 0, len(b.PerDC))
	for id := range b.PerDC {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := fmt.Sprintf("total $%.0f (op $%.0f, latency $%.0f, backup capital $%.0f), %d DCs, %d violations\n",
		b.Total(), b.OperationalCost(), b.Latency, b.BackupCapital, b.DCsUsed, b.LatencyViolations)
	for _, id := range ids {
		c := b.PerDC[id]
		out += fmt.Sprintf("  %-12s srv %5d (+%d bak): space $%.0f power $%.0f labor $%.0f wan $%.0f lat $%.0f\n",
			id, c.Servers, c.BackupServers, c.Space, c.Power, c.Labor, c.WAN, c.Latency)
	}
	return out
}

// approxEqual reports near-equality scaled by magnitude, used by tests
// and the planner's self-check comparing LP objective to evaluator cost.
func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// CheckObjectiveMatches verifies that an LP objective and an evaluator
// total agree within tol (relative); the planner calls this as a
// self-check that its model encodes the same economics as the evaluator.
func CheckObjectiveMatches(lpObjective, evaluated, tol float64) error {
	if !approxEqual(lpObjective, evaluated, tol) {
		return fmt.Errorf("model: LP objective %v disagrees with evaluated cost %v", lpObjective, evaluated)
	}
	return nil
}
