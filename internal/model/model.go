// Package model defines the enterprise IT estate domain for eTransform:
// application groups, data centers, user populations, cost schedules, the
// "as-is" input state (Table I of the paper) and the "to-be" plan, plus a
// single cost evaluator used to score every plan — whether produced by the
// LP planner, a baseline heuristic, or the current as-is placement — so
// all comparisons share one accounting.
package model

import (
	"fmt"
	"math"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/stepwise"
	"github.com/etransform/etransform/internal/tol"
)

// AppGroup is a clustered application group (§II): applications that
// interact closely or share data, placed as a unit because splitting the
// group would turn LAN traffic into WAN traffic. It is the atomic unit of
// placement.
type AppGroup struct {
	// ID is unique within the estate.
	ID string `json:"id"`
	// Name is a human-readable label.
	Name string `json:"name,omitempty"`
	// Servers is S_i, the number of physical servers the group runs on.
	// The planner preserves this count: repacking never shrinks the
	// resources an application group had (§III-A).
	Servers int `json:"servers"`
	// DataMbPerMonth is D_i, the monthly data exchanged between the group
	// and its users, in megabits.
	DataMbPerMonth float64 `json:"data_mb_per_month"`
	// UsersByLocation is C_ir: the number of users in each user location
	// (indexed like AsIsState.UserLocations).
	UsersByLocation []int `json:"users_by_location"`
	// LatencyPenalty is the group's latency penalty step function.
	LatencyPenalty stepwise.LatencyPenalty `json:"latency_penalty"`
	// CurrentDC is the ID of the data center the group runs in today.
	CurrentDC string `json:"current_dc"`
	// AllowedRegions, when non-empty, restricts target placement to data
	// centers in the listed regions (legal/jurisdictional constraints).
	AllowedRegions []geo.Region `json:"allowed_regions,omitempty"`
	// PinnedDC, when set, forces the group's primary placement (admin
	// iterative-modification interface).
	PinnedDC string `json:"pinned_dc,omitempty"`
	// ForbiddenDCs lists target data centers the group must not use
	// (for either primary or secondary placement).
	ForbiddenDCs []string `json:"forbidden_dcs,omitempty"`
	// SharedRiskGroup, when set, names a risk domain: application groups
	// carrying the same label must not share a primary data center
	// (the paper's "Shared Risk" constraint, §I), so one site failure
	// cannot take out more than one of them.
	SharedRiskGroup string `json:"shared_risk_group,omitempty"`
}

// TotalUsers returns Σ_r C_ir.
func (g *AppGroup) TotalUsers() int {
	n := 0
	for _, c := range g.UsersByLocation {
		n += c
	}
	return n
}

// DataCenter is one data center location, either current or target.
type DataCenter struct {
	// ID is unique within its estate.
	ID string `json:"id"`
	// Name is a human-readable label.
	Name string `json:"name,omitempty"`
	// Location places the data center geographically.
	Location geo.Location `json:"location"`
	// CapacityServers is O_j, the maximum servers the site can hold.
	CapacityServers int `json:"capacity_servers"`
	// SpaceCost is Q_j: monthly space cost per server, possibly tiered
	// with volume discounts (economies of scale, §III-B).
	SpaceCost stepwise.Curve `json:"space_cost"`
	// PowerCostPerKWh is E_j, the electricity price in $ per kilowatt-hour.
	PowerCostPerKWh float64 `json:"power_cost_per_kwh"`
	// LaborCostPerAdmin is T_j, the monthly fully-loaded cost of one
	// administrator at this location.
	LaborCostPerAdmin float64 `json:"labor_cost_per_admin"`
	// WANCostPerMb is W_j, the metered wide-area network price per megabit.
	WANCostPerMb float64 `json:"wan_cost_per_mb"`
}

// Estate is one side of the transformation: a set of data centers with
// the latency and (optionally) VPN link pricing toward the user
// locations.
type Estate struct {
	// DCs are the data centers.
	DCs []DataCenter `json:"dcs"`
	// LatencyMs[r][j] is the average latency between user location r and
	// data center j, in milliseconds. Dimensions: R × len(DCs).
	LatencyMs [][]float64 `json:"latency_ms"`
	// VPNLinkMonthly[j][r], when present, is F_jr: the monthly lease cost
	// of one dedicated VPN link between data center j and user location r.
	// When set, WAN costs use the paper's dedicated-link model instead of
	// metered per-megabit pricing.
	VPNLinkMonthly [][]float64 `json:"vpn_link_monthly,omitempty"`
}

// DCIndex returns the index of the data center with the given ID, or -1.
func (e *Estate) DCIndex(id string) int {
	for j := range e.DCs {
		if e.DCs[j].ID == id {
			return j
		}
	}
	return -1
}

// CostParams are the estate-wide cost constants of Table I and §VI-B.
type CostParams struct {
	// ServerPowerKW is α: average power draw of one server in kilowatts.
	ServerPowerKW float64 `json:"server_power_kw"`
	// ServersPerAdmin is β: servers one administrator can handle.
	ServersPerAdmin float64 `json:"servers_per_admin"`
	// HoursPerMonth converts kW to monthly kWh (≈730).
	HoursPerMonth float64 `json:"hours_per_month"`
	// VPNLinkCapacityMb is γ: monthly megabits one dedicated link carries.
	// Required when any estate provides VPNLinkMonthly pricing.
	VPNLinkCapacityMb float64 `json:"vpn_link_capacity_mb,omitempty"`
	// DRServerCost is ζ: the cost of buying one backup server.
	DRServerCost float64 `json:"dr_server_cost,omitempty"`
	// SecondaryLatencyWeight scales the latency penalty applied to the
	// secondary (DR) placement of each group. 1 demands full latency
	// compliance after failover; 0 ignores secondary latency.
	SecondaryLatencyWeight float64 `json:"secondary_latency_weight,omitempty"`
	// AverageLatencyPenalty switches the latency penalty to the paper's
	// §III-B textual definition — charge every user when the group's
	// user-weighted AVERAGE latency exceeds a threshold. The default
	// (false) charges each user location by its own latency, which is
	// what the paper's Figure 7 behavior actually exhibits (mixed user
	// populations migrate toward their majority as penalties grow, which
	// a group-average step cannot produce) and is the more natural
	// per-user reading of L_ij.
	AverageLatencyPenalty bool `json:"average_latency_penalty,omitempty"`
}

// DefaultParams returns the paper's evaluation constants (§VI-B): 350 W
// servers, 130 servers per administrator, $1000 DR servers.
func DefaultParams() CostParams {
	return CostParams{
		ServerPowerKW:          0.35,
		ServersPerAdmin:        130,
		HoursPerMonth:          730,
		VPNLinkCapacityMb:      1e6,
		DRServerCost:           1000,
		SecondaryLatencyWeight: 1,
	}
}

// AsIsState is the full input to the planner: the current estate, the
// candidate target estate, the application groups and the cost constants.
type AsIsState struct {
	// Name labels the dataset (e.g. "enterprise1").
	Name string `json:"name"`
	// Groups are the application groups to place.
	Groups []AppGroup `json:"groups"`
	// UserLocations are the R user locations referenced by
	// AppGroup.UsersByLocation and the latency matrices.
	UserLocations []geo.Location `json:"user_locations"`
	// Current is the as-is estate (used for as-is cost accounting).
	Current Estate `json:"current"`
	// Target is the candidate target estate the planner packs into.
	Target Estate `json:"target"`
	// Params are the cost constants.
	Params CostParams `json:"params"`
}

// NumUserLocations returns R.
func (s *AsIsState) NumUserLocations() int { return len(s.UserLocations) }

// Validate checks the state for structural consistency. It returns the
// first problem found.
func (s *AsIsState) Validate() error {
	if len(s.Groups) == 0 {
		return fmt.Errorf("model: no application groups")
	}
	if len(s.Target.DCs) == 0 {
		return fmt.Errorf("model: no target data centers")
	}
	r := len(s.UserLocations)
	if r == 0 {
		return fmt.Errorf("model: no user locations")
	}
	if err := s.validateEstate("current", &s.Current, r, false); err != nil {
		return err
	}
	if err := s.validateEstate("target", &s.Target, r, true); err != nil {
		return err
	}
	for _, f := range []struct {
		path     string
		v        float64
		positive bool // must be strictly positive, not merely non-negative
	}{
		{"params.server_power_kw", s.Params.ServerPowerKW, false},
		{"params.servers_per_admin", s.Params.ServersPerAdmin, true},
		{"params.hours_per_month", s.Params.HoursPerMonth, true},
		{"params.vpn_link_capacity_mb", s.Params.VPNLinkCapacityMb, false},
		{"params.dr_server_cost", s.Params.DRServerCost, false},
		{"params.secondary_latency_weight", s.Params.SecondaryLatencyWeight, false},
	} {
		if err := checkFinite(f.path, f.v); err != nil {
			return err
		}
		if f.positive && f.v <= 0 {
			return fmt.Errorf("model: %s = %v: must be positive", f.path, f.v)
		}
	}
	seen := make(map[string]bool, len(s.Groups))
	maxCap := 0
	for _, dc := range s.Target.DCs {
		if dc.CapacityServers > maxCap {
			maxCap = dc.CapacityServers
		}
	}
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.ID == "" {
			return fmt.Errorf("model: group %d has empty ID", i)
		}
		if seen[g.ID] {
			return fmt.Errorf("model: duplicate group ID %q", g.ID)
		}
		seen[g.ID] = true
		if g.Servers <= 0 {
			return fmt.Errorf("model: group %q has %d servers", g.ID, g.Servers)
		}
		if g.Servers > maxCap {
			return fmt.Errorf("model: group %q needs %d servers but the largest target data center holds %d; split it first (see §II)",
				g.ID, g.Servers, maxCap)
		}
		if err := checkFinite(fmt.Sprintf("groups[%d].data_mb_per_month", i), g.DataMbPerMonth); err != nil {
			return fmt.Errorf("%w (group %q)", err, g.ID)
		}
		if len(g.UsersByLocation) != r {
			return fmt.Errorf("model: group %q has %d user-location entries, want %d", g.ID, len(g.UsersByLocation), r)
		}
		for loc, c := range g.UsersByLocation {
			if c < 0 {
				return fmt.Errorf("model: group %q has negative users at location %d", g.ID, loc)
			}
		}
		if g.CurrentDC != "" && s.Current.DCIndex(g.CurrentDC) < 0 {
			return fmt.Errorf("model: group %q references unknown current DC %q", g.ID, g.CurrentDC)
		}
		if g.PinnedDC != "" && s.Target.DCIndex(g.PinnedDC) < 0 {
			return fmt.Errorf("model: group %q pinned to unknown target DC %q", g.ID, g.PinnedDC)
		}
		for _, f := range g.ForbiddenDCs {
			if s.Target.DCIndex(f) < 0 {
				return fmt.Errorf("model: group %q forbids unknown target DC %q", g.ID, f)
			}
			if f == g.PinnedDC {
				return fmt.Errorf("model: group %q both pins and forbids DC %q", g.ID, f)
			}
		}
	}
	if s.hasVPN(&s.Target) || s.hasVPN(&s.Current) {
		if s.Params.VPNLinkCapacityMb <= 0 {
			return fmt.Errorf("model: VPN link pricing present but VPNLinkCapacityMb (γ) is not set")
		}
	}
	riskSizes := make(map[string]int)
	for i := range s.Groups {
		if l := s.Groups[i].SharedRiskGroup; l != "" {
			riskSizes[l]++
		}
	}
	for label, n := range riskSizes {
		if n > len(s.Target.DCs) {
			return fmt.Errorf("model: shared-risk group %q has %d members but only %d target data centers exist to separate them",
				label, n, len(s.Target.DCs))
		}
	}
	return nil
}

func (s *AsIsState) hasVPN(e *Estate) bool { return len(e.VPNLinkMonthly) > 0 }

// checkFinite rejects NaN, ±Inf and negative values, naming the field by
// its JSON path so a bad record in a large dataset can be located
// directly. NaN needs the explicit check: NaN < 0 is false, so a plain
// negativity test silently admits it — and one NaN cost poisons every
// objective coefficient it touches downstream.
func checkFinite(path string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("model: %s = %v: must be finite", path, v)
	}
	if v < 0 {
		return fmt.Errorf("model: %s = %v: must not be negative", path, v)
	}
	return nil
}

func (s *AsIsState) validateEstate(label string, e *Estate, r int, required bool) error {
	if len(e.DCs) == 0 {
		if required {
			return fmt.Errorf("model: %s estate has no data centers", label)
		}
		// An absent estate must be absent throughout: stray latency or VPN
		// rows against zero data centers would be silently ignored by the
		// cost evaluator but index-panic in anything that trusts the
		// declared dimensions.
		if len(e.LatencyMs) != 0 {
			return fmt.Errorf("model: %s.latency_ms has %d rows but the %s estate has no data centers", label, len(e.LatencyMs), label)
		}
		if len(e.VPNLinkMonthly) != 0 {
			return fmt.Errorf("model: %s.vpn_link_monthly has %d rows but the %s estate has no data centers", label, len(e.VPNLinkMonthly), label)
		}
		return nil
	}
	seen := make(map[string]bool, len(e.DCs))
	for j := range e.DCs {
		dc := &e.DCs[j]
		if dc.ID == "" {
			return fmt.Errorf("model: %s DC %d has empty ID", label, j)
		}
		if seen[dc.ID] {
			return fmt.Errorf("model: duplicate %s DC ID %q", label, dc.ID)
		}
		seen[dc.ID] = true
		if dc.CapacityServers <= 0 {
			return fmt.Errorf("model: %s DC %q has capacity %d", label, dc.ID, dc.CapacityServers)
		}
		for _, f := range []struct {
			field string
			v     float64
		}{
			{"power_cost_per_kwh", dc.PowerCostPerKWh},
			{"labor_cost_per_admin", dc.LaborCostPerAdmin},
			{"wan_cost_per_mb", dc.WANCostPerMb},
		} {
			if err := checkFinite(fmt.Sprintf("%s.dcs[%d].%s", label, j, f.field), f.v); err != nil {
				return fmt.Errorf("%w (DC %q)", err, dc.ID)
			}
		}
	}
	if len(e.LatencyMs) != r {
		return fmt.Errorf("model: %s.latency_ms has %d rows, want %d (one per user location)", label, len(e.LatencyMs), r)
	}
	for u, row := range e.LatencyMs {
		if len(row) != len(e.DCs) {
			return fmt.Errorf("model: %s.latency_ms[%d] has %d entries, want %d (one per %s data center)", label, u, len(row), len(e.DCs), label)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("model: %s.latency_ms[%d][%d] = %v: must be finite and non-negative", label, u, j, v)
			}
		}
	}
	if len(e.VPNLinkMonthly) > 0 {
		if len(e.VPNLinkMonthly) != len(e.DCs) {
			return fmt.Errorf("model: %s.vpn_link_monthly has %d rows, want %d (one per %s data center)", label, len(e.VPNLinkMonthly), len(e.DCs), label)
		}
		for j, row := range e.VPNLinkMonthly {
			if len(row) != r {
				return fmt.Errorf("model: %s.vpn_link_monthly[%d] has %d entries, want %d (one per user location)", label, j, len(row), r)
			}
			for u, v := range row {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("model: %s.vpn_link_monthly[%d][%d] = %v: must be finite and non-negative", label, j, u, v)
				}
			}
		}
	}
	return nil
}

// AvgLatencyMs returns the user-weighted average latency of group g when
// placed at data center j of estate e (the quantity the latency penalty
// function is evaluated on, §III-B). Groups with no users see zero
// latency.
func AvgLatencyMs(g *AppGroup, e *Estate, j int) float64 {
	total := g.TotalUsers()
	if total == 0 {
		return 0
	}
	sum := 0.0
	for r, c := range g.UsersByLocation {
		if c > 0 {
			sum += float64(c) * e.LatencyMs[r][j]
		}
	}
	return sum / float64(total)
}

// LatencyPenaltyAt returns L_ij: the total latency penalty of placing
// group g at data center j of estate e. In the default per-user-location
// mode each user location is charged by its own latency; in
// group-average mode (CostParams.AverageLatencyPenalty) every user is
// charged when the group's average latency exceeds a threshold, as
// §III-B's text describes.
func LatencyPenaltyAt(g *AppGroup, e *Estate, p *CostParams, j int) float64 {
	if g.LatencyPenalty.IsZero() {
		return 0
	}
	if p.AverageLatencyPenalty {
		return g.LatencyPenalty.PerUser(AvgLatencyMs(g, e, j)) * float64(g.TotalUsers())
	}
	total := 0.0
	for r, c := range g.UsersByLocation {
		if c > 0 {
			total += float64(c) * g.LatencyPenalty.PerUser(e.LatencyMs[r][j])
		}
	}
	return total
}

// WANCostAt returns the monthly WAN cost of group g served from data
// center j of estate e: D_i·W_j under metered pricing, or the paper's
// dedicated-VPN-link formula Σ_r (C_ir·D_i)/(γ·ΣC_i)·F_jr when the estate
// has VPN link pricing (§III-B).
func WANCostAt(g *AppGroup, e *Estate, p *CostParams, j int) float64 {
	if len(e.VPNLinkMonthly) == 0 {
		return g.DataMbPerMonth * e.DCs[j].WANCostPerMb
	}
	total := g.TotalUsers()
	if total == 0 || tol.IsZero(g.DataMbPerMonth) {
		return 0
	}
	cost := 0.0
	for r, c := range g.UsersByLocation {
		if c == 0 {
			continue
		}
		links := (float64(c) * g.DataMbPerMonth) / (p.VPNLinkCapacityMb * float64(total))
		cost += links * e.VPNLinkMonthly[j][r]
	}
	return cost
}

// ServerMonthlyCost returns the per-server monthly power + labor cost at
// data center j of estate e: α·E_j·hours + T_j/β. Space is excluded
// because it may be tiered (see Evaluate).
func ServerMonthlyCost(dc *DataCenter, p *CostParams) float64 {
	power := p.ServerPowerKW * dc.PowerCostPerKWh * p.HoursPerMonth
	labor := dc.LaborCostPerAdmin / p.ServersPerAdmin
	return power + labor
}
