package model

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/stepwise"
)

// testState builds a small valid two-DC, three-group state used across
// the package tests.
func testState(t *testing.T) *AsIsState {
	t.Helper()
	pen, err := stepwise.SingleThreshold(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	mkDC := func(id string, cap int, space, power, labor, wan float64) DataCenter {
		return DataCenter{
			ID:                id,
			Location:          geo.Location{ID: "loc-" + id, Region: geo.RegionNorthAmerica},
			CapacityServers:   cap,
			SpaceCost:         stepwise.Flat(space),
			PowerCostPerKWh:   power,
			LaborCostPerAdmin: labor,
			WANCostPerMb:      wan,
		}
	}
	s := &AsIsState{
		Name: "test",
		Groups: []AppGroup{
			{ID: "g1", Servers: 10, DataMbPerMonth: 1000, UsersByLocation: []int{50, 0}, LatencyPenalty: pen, CurrentDC: "old1"},
			{ID: "g2", Servers: 5, DataMbPerMonth: 500, UsersByLocation: []int{0, 30}, CurrentDC: "old1"},
			{ID: "g3", Servers: 8, DataMbPerMonth: 0, UsersByLocation: []int{10, 10}, LatencyPenalty: pen, CurrentDC: "old2"},
		},
		UserLocations: []geo.Location{{ID: "u0"}, {ID: "u1"}},
		Current: Estate{
			DCs: []DataCenter{
				mkDC("old1", 100, 100, 0.10, 6500, 0.02),
				mkDC("old2", 100, 120, 0.12, 7000, 0.03),
			},
			LatencyMs: [][]float64{{5, 20}, {20, 5}},
		},
		Target: Estate{
			DCs: []DataCenter{
				mkDC("t1", 50, 80, 0.08, 6000, 0.01),
				mkDC("t2", 50, 90, 0.09, 6200, 0.015),
			},
			LatencyMs: [][]float64{{5, 25}, {25, 5}},
		},
		Params: DefaultParams(),
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("test state invalid: %v", err)
	}
	return s
}

func TestValidateCatchesProblems(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*AsIsState)
	}{
		{"no-groups", func(s *AsIsState) { s.Groups = nil }},
		{"no-targets", func(s *AsIsState) { s.Target.DCs = nil }},
		{"no-users", func(s *AsIsState) { s.UserLocations = nil }},
		{"dup-group", func(s *AsIsState) { s.Groups[1].ID = "g1" }},
		{"empty-group-id", func(s *AsIsState) { s.Groups[0].ID = "" }},
		{"zero-servers", func(s *AsIsState) { s.Groups[0].Servers = 0 }},
		{"group-too-big", func(s *AsIsState) { s.Groups[0].Servers = 51 }},
		{"negative-data", func(s *AsIsState) { s.Groups[0].DataMbPerMonth = -1 }},
		{"wrong-user-dims", func(s *AsIsState) { s.Groups[0].UsersByLocation = []int{1} }},
		{"negative-users", func(s *AsIsState) { s.Groups[0].UsersByLocation[0] = -1 }},
		{"unknown-current", func(s *AsIsState) { s.Groups[0].CurrentDC = "nope" }},
		{"unknown-pin", func(s *AsIsState) { s.Groups[0].PinnedDC = "nope" }},
		{"unknown-forbid", func(s *AsIsState) { s.Groups[0].ForbiddenDCs = []string{"nope"} }},
		{"pin-and-forbid", func(s *AsIsState) {
			s.Groups[0].PinnedDC = "t1"
			s.Groups[0].ForbiddenDCs = []string{"t1"}
		}},
		{"dup-dc", func(s *AsIsState) { s.Target.DCs[1].ID = "t1" }},
		{"zero-capacity", func(s *AsIsState) { s.Target.DCs[0].CapacityServers = 0 }},
		{"negative-power", func(s *AsIsState) { s.Target.DCs[0].PowerCostPerKWh = -1 }},
		{"latency-dims", func(s *AsIsState) { s.Target.LatencyMs = s.Target.LatencyMs[:1] }},
		{"latency-ragged", func(s *AsIsState) { s.Target.LatencyMs[0] = []float64{1} }},
		{"latency-negative", func(s *AsIsState) { s.Target.LatencyMs[0][0] = -2 }},
		{"bad-params", func(s *AsIsState) { s.Params.ServersPerAdmin = 0 }},
		{"vpn-no-gamma", func(s *AsIsState) {
			s.Target.VPNLinkMonthly = [][]float64{{1, 2}, {3, 4}}
			s.Params.VPNLinkCapacityMb = 0
		}},
		{"vpn-dims", func(s *AsIsState) {
			s.Target.VPNLinkMonthly = [][]float64{{1, 2}}
			s.Params.VPNLinkCapacityMb = 10
		}},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			s := testState(t)
			tt.mut(s)
			if err := s.Validate(); err == nil {
				t.Error("Validate accepted a broken state")
			}
		})
	}
}

// TestValidateMatrixFieldPaths locks the latency/VPN dimension checks to
// JSON field paths: a ragged or mis-sized matrix in a perturbed or
// hand-edited state must be reported by the exact row that is wrong, not
// by a later index panic or a silent mis-costing.
func TestValidateMatrixFieldPaths(t *testing.T) {
	cases := []struct {
		name     string
		mut      func(*AsIsState)
		wantPath string
	}{
		{"latency-missing-row", func(s *AsIsState) { s.Target.LatencyMs = s.Target.LatencyMs[:1] }, "target.latency_ms"},
		{"latency-extra-row", func(s *AsIsState) {
			s.Current.LatencyMs = append(s.Current.LatencyMs, []float64{1, 1})
		}, "current.latency_ms"},
		{"latency-ragged-row", func(s *AsIsState) { s.Target.LatencyMs[1] = []float64{1} }, "target.latency_ms[1]"},
		{"latency-wide-row", func(s *AsIsState) { s.Current.LatencyMs[0] = []float64{1, 2, 3} }, "current.latency_ms[0]"},
		{"latency-nan-cell", func(s *AsIsState) { s.Target.LatencyMs[1][0] = math.NaN() }, "target.latency_ms[1][0]"},
		{"latency-negative-cell", func(s *AsIsState) { s.Target.LatencyMs[0][1] = -3 }, "target.latency_ms[0][1]"},
		{"vpn-missing-row", func(s *AsIsState) {
			s.Target.VPNLinkMonthly = [][]float64{{1, 2}}
			s.Params.VPNLinkCapacityMb = 10
		}, "target.vpn_link_monthly"},
		{"vpn-ragged-row", func(s *AsIsState) {
			s.Target.VPNLinkMonthly = [][]float64{{1, 2}, {3}}
			s.Params.VPNLinkCapacityMb = 10
		}, "target.vpn_link_monthly[1]"},
		{"vpn-inf-cell", func(s *AsIsState) {
			s.Target.VPNLinkMonthly = [][]float64{{1, 2}, {3, math.Inf(1)}}
			s.Params.VPNLinkCapacityMb = 10
		}, "target.vpn_link_monthly[1][1]"},
		{"latency-without-dcs", func(s *AsIsState) {
			s.Current.DCs = nil
			s.Groups[0].CurrentDC = ""
			s.Groups[1].CurrentDC = ""
			s.Groups[2].CurrentDC = ""
		}, "current.latency_ms"},
		{"vpn-without-dcs", func(s *AsIsState) {
			s.Current.DCs = nil
			s.Current.LatencyMs = nil
			s.Current.VPNLinkMonthly = [][]float64{{1, 2}}
			s.Params.VPNLinkCapacityMb = 10
			s.Groups[0].CurrentDC = ""
			s.Groups[1].CurrentDC = ""
			s.Groups[2].CurrentDC = ""
		}, "current.vpn_link_monthly"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			s := testState(t)
			tt.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted a mis-dimensioned matrix")
			}
			if !strings.Contains(err.Error(), tt.wantPath) {
				t.Errorf("error %q does not name field path %q", err, tt.wantPath)
			}
		})
	}
}

// TestValidateRejectsNonFinite covers the NaN/Inf/negative hardening:
// every numeric cost or capacity field must reject non-finite values, and
// the error must carry the JSON field path so the offending record in a
// large dataset can be located without a debugger.
func TestValidateRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name     string
		mut      func(*AsIsState)
		wantPath string
	}{
		{"nan-power", func(s *AsIsState) { s.Target.DCs[0].PowerCostPerKWh = nan }, "target.dcs[0].power_cost_per_kwh"},
		{"inf-power", func(s *AsIsState) { s.Target.DCs[1].PowerCostPerKWh = inf }, "target.dcs[1].power_cost_per_kwh"},
		{"nan-labor", func(s *AsIsState) { s.Current.DCs[0].LaborCostPerAdmin = nan }, "current.dcs[0].labor_cost_per_admin"},
		{"neg-labor", func(s *AsIsState) { s.Target.DCs[0].LaborCostPerAdmin = -1 }, "target.dcs[0].labor_cost_per_admin"},
		{"inf-wan", func(s *AsIsState) { s.Target.DCs[0].WANCostPerMb = inf }, "target.dcs[0].wan_cost_per_mb"},
		{"nan-wan", func(s *AsIsState) { s.Current.DCs[1].WANCostPerMb = nan }, "current.dcs[1].wan_cost_per_mb"},
		{"inf-data", func(s *AsIsState) { s.Groups[1].DataMbPerMonth = inf }, "groups[1].data_mb_per_month"},
		{"nan-data", func(s *AsIsState) { s.Groups[0].DataMbPerMonth = nan }, "groups[0].data_mb_per_month"},
		{"nan-server-power", func(s *AsIsState) { s.Params.ServerPowerKW = nan }, "params.server_power_kw"},
		{"neg-server-power", func(s *AsIsState) { s.Params.ServerPowerKW = -0.1 }, "params.server_power_kw"},
		{"inf-servers-per-admin", func(s *AsIsState) { s.Params.ServersPerAdmin = inf }, "params.servers_per_admin"},
		{"zero-servers-per-admin", func(s *AsIsState) { s.Params.ServersPerAdmin = 0 }, "params.servers_per_admin"},
		{"nan-hours", func(s *AsIsState) { s.Params.HoursPerMonth = nan }, "params.hours_per_month"},
		{"zero-hours", func(s *AsIsState) { s.Params.HoursPerMonth = 0 }, "params.hours_per_month"},
		{"inf-vpn-capacity", func(s *AsIsState) { s.Params.VPNLinkCapacityMb = inf }, "params.vpn_link_capacity_mb"},
		{"neg-dr-cost", func(s *AsIsState) { s.Params.DRServerCost = -5 }, "params.dr_server_cost"},
		{"nan-dr-cost", func(s *AsIsState) { s.Params.DRServerCost = nan }, "params.dr_server_cost"},
		{"neg-secondary-weight", func(s *AsIsState) { s.Params.SecondaryLatencyWeight = -1 }, "params.secondary_latency_weight"},
		{"inf-secondary-weight", func(s *AsIsState) { s.Params.SecondaryLatencyWeight = inf }, "params.secondary_latency_weight"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			s := testState(t)
			tt.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted a non-finite or negative value")
			}
			if !strings.Contains(err.Error(), tt.wantPath) {
				t.Errorf("error %q does not name field path %q", err, tt.wantPath)
			}
		})
	}
}

func TestAvgLatency(t *testing.T) {
	s := testState(t)
	g := &s.Groups[2] // 10 users at each location
	// Target t1: lat 5 from u0, 25 from u1 → avg 15.
	if got := AvgLatencyMs(g, &s.Target, 0); got != 15 {
		t.Errorf("AvgLatencyMs = %v, want 15", got)
	}
	// A group with no users has zero latency.
	empty := AppGroup{UsersByLocation: []int{0, 0}}
	if got := AvgLatencyMs(&empty, &s.Target, 0); got != 0 {
		t.Errorf("no-user latency = %v", got)
	}
}

func TestLatencyPenaltyAt(t *testing.T) {
	s := testState(t)
	// g1: all 50 users at u0. At t1 (5ms): no penalty. At t2 (25ms): $100×50.
	g := &s.Groups[0]
	if got := LatencyPenaltyAt(g, &s.Target, &s.Params, 0); got != 0 {
		t.Errorf("penalty at t1 = %v, want 0", got)
	}
	if got := LatencyPenaltyAt(g, &s.Target, &s.Params, 1); got != 5000 {
		t.Errorf("penalty at t2 = %v, want 5000", got)
	}
	// g2 has no penalty function.
	if got := LatencyPenaltyAt(&s.Groups[1], &s.Target, &s.Params, 0); got != 0 {
		t.Errorf("insensitive group penalty = %v", got)
	}
	// g3: 10 users at each location. At t1 the u1 users see 25ms (penalty)
	// and the u0 users 5ms (fine): per-user-location mode charges only the
	// far half.
	if got := LatencyPenaltyAt(&s.Groups[2], &s.Target, &s.Params, 0); got != 1000 {
		t.Errorf("per-user penalty = %v, want 1000", got)
	}
	// Group-average mode: avg 15ms > 10 → everyone pays.
	avg := s.Params
	avg.AverageLatencyPenalty = true
	if got := LatencyPenaltyAt(&s.Groups[2], &s.Target, &avg, 0); got != 2000 {
		t.Errorf("average-mode penalty = %v, want 2000", got)
	}
}

func TestWANCostMetered(t *testing.T) {
	s := testState(t)
	g := &s.Groups[0] // 1000 Mb/month
	if got := WANCostAt(g, &s.Target, &s.Params, 0); got != 10 {
		t.Errorf("metered WAN = %v, want 1000×0.01 = 10", got)
	}
}

func TestWANCostVPN(t *testing.T) {
	s := testState(t)
	s.Target.VPNLinkMonthly = [][]float64{{200, 400}, {300, 100}}
	s.Params.VPNLinkCapacityMb = 100
	// g1: 50 users all at u0, D=1000. Links to u0 = (50×1000)/(100×50) = 10.
	// Cost at t1 = 10×200 = 2000.
	g := &s.Groups[0]
	if got := WANCostAt(g, &s.Target, &s.Params, 0); got != 2000 {
		t.Errorf("VPN WAN = %v, want 2000", got)
	}
	// g3: D=0 → no links.
	if got := WANCostAt(&s.Groups[2], &s.Target, &s.Params, 0); got != 0 {
		t.Errorf("zero-data VPN WAN = %v", got)
	}
}

func TestServerMonthlyCost(t *testing.T) {
	s := testState(t)
	dc := &s.Target.DCs[0]
	want := 0.35*0.08*730 + 6000.0/130
	if got := ServerMonthlyCost(dc, &s.Params); math.Abs(got-want) > 1e-9 {
		t.Errorf("ServerMonthlyCost = %v, want %v", got, want)
	}
}

func TestEvaluateSimplePlacement(t *testing.T) {
	s := testState(t)
	// Everything in t1 (10+5+8 = 23 ≤ 50).
	bd, err := Evaluate(s, &s.Target, []int{0, 0, 0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bd.DCsUsed != 1 {
		t.Errorf("DCsUsed = %d", bd.DCsUsed)
	}
	wantSpace := 23 * 80.0
	if math.Abs(bd.Space-wantSpace) > 1e-9 {
		t.Errorf("space = %v, want %v", bd.Space, wantSpace)
	}
	wantPower := 0.35 * 0.08 * 730 * 23
	if math.Abs(bd.Power-wantPower) > 1e-6 {
		t.Errorf("power = %v, want %v", bd.Power, wantPower)
	}
	wantLabor := 6000.0 / 130 * 23
	if math.Abs(bd.Labor-wantLabor) > 1e-6 {
		t.Errorf("labor = %v, want %v", bd.Labor, wantLabor)
	}
	wantWAN := 1500 * 0.01
	if math.Abs(bd.WAN-wantWAN) > 1e-9 {
		t.Errorf("wan = %v, want %v", bd.WAN, wantWAN)
	}
	// g2's users are all at u1 but g2 is latency-insensitive; g3's far
	// half (10 users at u1, 25ms) pays 100 each; g1 fine.
	if bd.LatencyViolations != 1 {
		t.Errorf("violations = %d, want 1", bd.LatencyViolations)
	}
	if math.Abs(bd.Latency-1000) > 1e-9 {
		t.Errorf("latency penalty = %v, want 1000", bd.Latency)
	}
	if got := bd.Total(); math.Abs(got-(bd.OperationalCost()+1000)) > 1e-9 {
		t.Errorf("total = %v inconsistent", got)
	}
}

func TestEvaluateCapacityViolation(t *testing.T) {
	s := testState(t)
	s.Groups[0].Servers = 45
	s.Groups[1].Servers = 45 // 45+45+8 > 50
	if _, err := Evaluate(s, &s.Target, []int{0, 0, 0}, nil, nil); err == nil {
		t.Error("capacity violation accepted")
	}
}

func TestEvaluateErrors(t *testing.T) {
	s := testState(t)
	if _, err := Evaluate(s, &s.Target, []int{0}, nil, nil); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := Evaluate(s, &s.Target, []int{0, 0, 9}, nil, nil); err == nil {
		t.Error("bad index accepted")
	}
	if _, err := Evaluate(s, &s.Target, []int{0, 0, 0}, []int{0, 1, 0}, nil); err == nil {
		t.Error("secondary == primary accepted")
	}
	if _, err := Evaluate(s, &s.Target, []int{0, 0, 0}, []int{1, 1, 1}, []int{-1, 0}); err == nil {
		t.Error("negative backups accepted")
	}
}

func TestEvaluateWithDR(t *testing.T) {
	s := testState(t)
	placement := []int{0, 0, 0}
	secondary := []int{1, 1, 1}
	backups := RequiredBackups(s, 2, placement, secondary)
	// All primaries at DC0 with secondary DC1: demand (0→1) = 23 servers.
	if backups[1] != 23 || backups[0] != 0 {
		t.Fatalf("backups = %v, want [0 23]", backups)
	}
	bd, err := Evaluate(s, &s.Target, placement, secondary, backups)
	if err != nil {
		t.Fatal(err)
	}
	if bd.TotalBackupServers != 23 {
		t.Errorf("TotalBackupServers = %d", bd.TotalBackupServers)
	}
	if bd.BackupCapital != 23*1000 {
		t.Errorf("capital = %v", bd.BackupCapital)
	}
	// Space now includes 23 backup servers at t2.
	wantSpace := 23*80.0 + 23*90.0
	if math.Abs(bd.Space-wantSpace) > 1e-9 {
		t.Errorf("space = %v, want %v", bd.Space, wantSpace)
	}
	// Secondary latency violations: g1 at t2 sees 25ms → violation;
	// g3 at t2 sees 15ms → violation; plus g3's primary violation.
	if bd.LatencyViolations != 3 {
		t.Errorf("violations = %d, want 3", bd.LatencyViolations)
	}
}

func TestRequiredBackupsSharing(t *testing.T) {
	s := testState(t)
	// g1 (10 srv) primary 0 → secondary 1; g2 (5) primary 1 → secondary 0;
	// g3 (8) primary 0 → secondary 1.
	backups := RequiredBackups(s, 2, []int{0, 1, 0}, []int{1, 0, 1})
	// DC1 backs up groups from DC0 only: 10+8 = 18. DC0 backs up 5.
	if backups[0] != 5 || backups[1] != 18 {
		t.Errorf("backups = %v, want [5 18]", backups)
	}
}

func TestRequiredBackupsMaxOverPrimaries(t *testing.T) {
	s := testState(t)
	s.Groups = append(s.Groups, AppGroup{
		ID: "g4", Servers: 12, UsersByLocation: []int{0, 0}, CurrentDC: "old1",
	})
	s.Target.DCs = append(s.Target.DCs, DataCenter{
		ID: "t3", Location: geo.Location{ID: "loc-t3"}, CapacityServers: 50,
		SpaceCost: stepwise.Flat(70),
	})
	s.Target.LatencyMs = [][]float64{{5, 25, 15}, {25, 5, 15}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// g1 (10) and g3 (8) primary at 0 → secondary 2: demand(0→2) = 18.
	// g2 (5) and g4 (12) primary at 1 → secondary 2: demand(1→2) = 17.
	// Shared pool at 2 = max(18, 17) = 18, NOT 35: single-failure sharing.
	backups := RequiredBackups(s, 3, []int{0, 1, 0, 1}, []int{2, 2, 2, 2})
	if backups[2] != 18 {
		t.Errorf("shared pool = %d, want 18", backups[2])
	}
}

func TestEvaluateAsIs(t *testing.T) {
	s := testState(t)
	bd, err := EvaluateAsIs(s)
	if err != nil {
		t.Fatal(err)
	}
	if bd.DCsUsed != 2 {
		t.Errorf("as-is DCs used = %d, want 2", bd.DCsUsed)
	}
	// g1 at old1: users at u0, lat 5 → fine. g3 at old2: avg (20+5)/2 =
	// 12.5 → violation.
	if bd.LatencyViolations != 1 {
		t.Errorf("as-is violations = %d, want 1", bd.LatencyViolations)
	}
}

func TestEvaluatePlanAndJSON(t *testing.T) {
	s := testState(t)
	plan := &Plan{
		Assignments: []Assignment{
			{GroupID: "g1", PrimaryDC: "t1", SecondaryDC: "t2"},
			{GroupID: "g2", PrimaryDC: "t1", SecondaryDC: "t2"},
			{GroupID: "g3", PrimaryDC: "t2", SecondaryDC: "t1"},
		},
		BackupServers: map[string]int{"t1": 8, "t2": 15},
	}
	bd, err := EvaluatePlan(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	if bd.DCsUsed != 2 || bd.TotalBackupServers != 23 {
		t.Errorf("DCsUsed %d backups %d", bd.DCsUsed, bd.TotalBackupServers)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Assignments) != 3 || back.BackupServers["t2"] != 15 {
		t.Errorf("plan round-trip mismatch: %+v", back)
	}
}

func TestEvaluatePlanErrors(t *testing.T) {
	s := testState(t)
	cases := []struct {
		name string
		plan *Plan
	}{
		{"missing-group", &Plan{Assignments: []Assignment{{GroupID: "g1", PrimaryDC: "t1"}}}},
		{"unknown-dc", &Plan{Assignments: []Assignment{
			{GroupID: "g1", PrimaryDC: "bad"}, {GroupID: "g2", PrimaryDC: "t1"}, {GroupID: "g3", PrimaryDC: "t1"},
		}}},
		{"unknown-secondary", &Plan{Assignments: []Assignment{
			{GroupID: "g1", PrimaryDC: "t1", SecondaryDC: "bad"},
			{GroupID: "g2", PrimaryDC: "t1", SecondaryDC: "t2"},
			{GroupID: "g3", PrimaryDC: "t1", SecondaryDC: "t2"},
		}}},
		{"unknown-backup-dc", &Plan{
			Assignments: []Assignment{
				{GroupID: "g1", PrimaryDC: "t1"}, {GroupID: "g2", PrimaryDC: "t1"}, {GroupID: "g3", PrimaryDC: "t1"},
			},
			BackupServers: map[string]int{"bad": 3},
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := EvaluatePlan(s, tt.plan); err == nil {
				t.Error("EvaluatePlan accepted a broken plan")
			}
		})
	}
}

func TestStateJSONRoundTrip(t *testing.T) {
	s := testState(t)
	s.Target.VPNLinkMonthly = [][]float64{{1, 2}, {3, 4}}
	s.Params.VPNLinkCapacityMb = 100
	var buf bytes.Buffer
	if err := WriteState(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || len(back.Groups) != len(s.Groups) || len(back.Target.DCs) != len(s.Target.DCs) {
		t.Fatalf("round-trip mismatch")
	}
	// Spot-check a tiered curve and penalty survive.
	if got := back.Groups[0].LatencyPenalty.PerUser(11); got != 100 {
		t.Errorf("penalty after round-trip = %v", got)
	}
	if got := back.Target.DCs[0].SpaceCost.MustEval(10); got != 800 {
		t.Errorf("space curve after round-trip = %v", got)
	}
	if back.Target.VPNLinkMonthly[1][0] != 3 {
		t.Errorf("VPN matrix lost")
	}
}

func TestReadStateRejectsUnknownFields(t *testing.T) {
	if _, err := ReadState(strings.NewReader(`{"name":"x","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestSummaryRendering(t *testing.T) {
	s := testState(t)
	bd, err := Evaluate(s, &s.Target, []int{0, 0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := bd.Summary()
	for _, want := range []string{"total $", "t1", "t2", "violations"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestCheckObjectiveMatches(t *testing.T) {
	if err := CheckObjectiveMatches(1000, 1000.0000001, 1e-6); err != nil {
		t.Errorf("near-equal rejected: %v", err)
	}
	if err := CheckObjectiveMatches(1000, 1100, 1e-6); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestTotalUsers(t *testing.T) {
	g := AppGroup{UsersByLocation: []int{3, 0, 7}}
	if g.TotalUsers() != 10 {
		t.Errorf("TotalUsers = %d", g.TotalUsers())
	}
}

func TestDCIndex(t *testing.T) {
	s := testState(t)
	if s.Target.DCIndex("t2") != 1 || s.Target.DCIndex("zzz") != -1 {
		t.Error("DCIndex wrong")
	}
}
