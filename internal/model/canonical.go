package model

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// CanonicalBytes returns the canonical encoding of a state: the compact
// JSON produced by marshaling the in-memory struct. Two states that are
// semantically identical — however their source documents ordered
// fields, indented lines, or escaped strings — decode to the same
// struct and therefore canonicalize to the same bytes: encoding/json
// emits struct fields in declaration order and sorts any map keys, so
// the output carries no trace of the input's formatting. This is the
// byte string behind CanonicalHash; callers that persist it should
// treat it as opaque.
func CanonicalBytes(s *AsIsState) ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("model: canonical encoding: %w", err)
	}
	return b, nil
}

// CanonicalHash returns a content hash of the state: FNV-64a over
// CanonicalBytes, rendered as 16 lowercase hex digits. Equal states hash
// equal regardless of how their JSON was laid out; any one-field change
// yields a different key with the usual 64-bit collision odds. It is a
// cache key, not a cryptographic commitment.
func CanonicalHash(s *AsIsState) (string, error) {
	b, err := CanonicalBytes(s)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(b) // fnv never errors
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
