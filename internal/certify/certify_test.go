package certify_test

import (
	"math"
	"strings"
	"testing"

	"github.com/etransform/etransform/internal/certify"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp"
)

// knapsack builds a small MILP with a known optimum: maximize value
// (as min of negated cost) of 3 binary items under one capacity row.
func knapsack(t *testing.T) *lp.Model {
	t.Helper()
	m := lp.NewModel("ks")
	m.AddBinary("a", -6)
	m.AddBinary("b", -5)
	m.AddBinary("c", -4)
	m.AddRow("cap", []lp.Term{{Var: 0, Coef: 3}, {Var: 1, Coef: 2}, {Var: 2, Coef: 2}}, lp.LE, 5)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCertifyAcceptsOptimalSolution(t *testing.T) {
	m := knapsack(t)
	sol, err := milp.Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	cert, err := certify.CheckSolution(m, sol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("optimal solution failed certification: %s", cert.Summary())
	}
	if cert.Err() != nil {
		t.Fatalf("Err() = %v on feasible certificate", cert.Err())
	}
	if cert.Rows != m.NumRows() || cert.Vars != m.NumVars() {
		t.Errorf("checked %d rows / %d vars, want %d / %d", cert.Rows, cert.Vars, m.NumRows(), m.NumVars())
	}
	if !strings.Contains(cert.Summary(), "feasible") {
		t.Errorf("summary = %q, want it to say feasible", cert.Summary())
	}
}

func TestCertifyRejectsPerturbedInfeasible(t *testing.T) {
	m := knapsack(t)
	sol, err := milp.Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Force every item into the knapsack: total weight 7 > capacity 5.
	x := append([]float64(nil), sol.X...)
	for j := range x {
		x[j] = 1
	}
	cert, err := certify.Check(m, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Feasible {
		t.Fatal("over-capacity point certified feasible")
	}
	found := false
	for _, v := range cert.Violations {
		if v.Kind == "row" && v.Name == "cap" {
			found = true
			if v.Amount < 1.9 || v.Amount > 2.1 {
				t.Errorf("cap violation amount = %v, want ≈2", v.Amount)
			}
		}
	}
	if !found {
		t.Errorf("no row violation for cap in %+v", cert.Violations)
	}
	if cert.Err() == nil {
		t.Error("Err() = nil on infeasible certificate")
	}
}

func TestCertifyRejectsFractionalInteger(t *testing.T) {
	m := knapsack(t)
	cert, err := certify.Check(m, []float64{0.5, 0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Feasible {
		t.Fatal("fractional binary certified feasible")
	}
	found := false
	for _, v := range cert.Violations {
		if v.Kind == "integrality" && v.Name == "a" {
			found = true
		}
	}
	if !found {
		t.Errorf("no integrality violation for a in %+v", cert.Violations)
	}
}

func TestCertifyRejectsBoundViolationAndNaN(t *testing.T) {
	m := knapsack(t)
	cases := []struct {
		name string
		x    []float64
		kind string
	}{
		{"above-upper", []float64{2, 0, 0}, "bound"},
		{"below-lower", []float64{-1, 0, 0}, "bound"},
		{"nan", []float64{math.NaN(), 0, 0}, "bound"},
		{"inf", []float64{math.Inf(1), 0, 0}, "bound"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			cert, err := certify.Check(m, tt.x, nil)
			if err != nil {
				t.Fatal(err)
			}
			if cert.Feasible {
				t.Fatal("bad point certified feasible")
			}
			found := false
			for _, v := range cert.Violations {
				if v.Kind == tt.kind {
					found = true
				}
			}
			if !found {
				t.Errorf("no %q violation in %+v", tt.kind, cert.Violations)
			}
		})
	}
}

func TestCertifyObjectiveMismatch(t *testing.T) {
	m := knapsack(t)
	sol, err := milp.Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	claimed := *sol
	claimed.Objective = sol.Objective + 100 // lie about the objective
	cert, err := certify.CheckSolution(m, &claimed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Feasible {
		t.Fatal("objective lie certified feasible")
	}
	found := false
	for _, v := range cert.Violations {
		if v.Kind == "objective" {
			found = true
		}
	}
	if !found {
		t.Errorf("no objective violation in %+v", cert.Violations)
	}
}

func TestCertifyNonSolutionStatuses(t *testing.T) {
	m := knapsack(t)
	for _, status := range []lp.Status{lp.StatusInfeasible, lp.StatusUnbounded} {
		cert, err := certify.CheckSolution(m, &lp.Solution{Status: status}, nil)
		if err != nil {
			t.Fatalf("status %v: %v", status, err)
		}
		if cert != nil {
			t.Errorf("status %v: certificate = %+v, want nil (nothing to certify)", status, cert)
		}
	}
	// A solution-bearing status with no point is a structural error.
	if _, err := certify.CheckSolution(m, &lp.Solution{Status: lp.StatusOptimal}, nil); err == nil {
		t.Error("optimal status without X accepted")
	}
}

func TestCertifyStructuralErrors(t *testing.T) {
	m := knapsack(t)
	if _, err := certify.Check(m, []float64{0}, nil); err == nil {
		t.Error("wrong-length point accepted")
	}
	bad := lp.NewModel("bad")
	bad.AddContinuous("x", 5, 1, 0) // lower > upper: sticky model error
	if _, err := certify.Check(bad, []float64{0}, nil); err == nil {
		t.Error("broken model accepted")
	}
}

func TestCertifyViolationCap(t *testing.T) {
	m := lp.NewModel("cap")
	for j := 0; j < 10; j++ {
		m.AddBinary("", 0)
	}
	x := make([]float64, 10)
	for j := range x {
		x[j] = 0.5 // every variable fractional
	}
	cert, err := certify.Check(m, x, &certify.Options{MaxViolations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cert.TotalViolations != 10 {
		t.Errorf("TotalViolations = %d, want 10", cert.TotalViolations)
	}
	if len(cert.Violations) != 3 {
		t.Errorf("len(Violations) = %d, want capped at 3", len(cert.Violations))
	}
	if !strings.Contains(cert.Summary(), "10 violation(s)") {
		t.Errorf("summary = %q, want total count", cert.Summary())
	}
}
