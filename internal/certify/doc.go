// Package certify independently re-checks LP/MILP solutions. It walks
// the model itself — every row activity, every variable bound, every
// integrality requirement — using only the model data and the shared
// tolerances in package tol, so a bug in the simplex or branch & bound
// machinery cannot vouch for its own output. The planner certifies every
// plan after solving, and cmd/lpsolve certifies every solution it
// prints, so reported results always ship with a machine-checked
// feasibility certificate (the correctness layer consolidation-MILP work
// such as cut-and-solve stresses as a precondition for comparing
// solvers).
//
// # Invariants
//
//   - Check and CheckSolution never mutate the model or the point; both
//     are pure functions of their inputs.
//   - A Certificate with Feasible=true guarantees every bound, row and
//     integrality requirement holds within the configured tolerances —
//     independent of which solver (or how many worker goroutines)
//     produced the point. This is what makes the parallel branch & bound
//     in package milp safe to trust: whatever the schedule, the shipped
//     plan re-verifies from the model data alone.
//   - Statuses that carry no usable point (infeasible, unbounded,
//     canceled) certify to (nil, nil) from CheckSolution rather than a
//     vacuous "feasible".
//
// # Goroutine safety
//
// All functions in this package are safe for concurrent use; they share
// no state. The experiment sweeps certify many solutions in parallel
// from their fan-out workers.
package certify
