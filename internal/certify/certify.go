package certify

import (
	"fmt"
	"math"
	"strings"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/tol"
)

// Options configure a certification pass. The zero value applies the
// repository defaults from package tol.
type Options struct {
	// FeasTol is the bound/row feasibility tolerance (absolute; rows are
	// additionally scaled by max(1, |rhs|)). Default tol.Feas.
	FeasTol float64
	// IntTol is the integrality tolerance. Default tol.Int.
	IntTol float64
	// ObjTol, when a claimed objective is supplied to CheckSolution, is
	// the tolerance for the recomputed-vs-claimed comparison, scaled by
	// max(1, |claimed|). Default tol.Objective.
	ObjTol float64
	// MaxViolations caps the recorded violation list (the counts and
	// maxima still cover everything). Default 20; negative means
	// unlimited.
	MaxViolations int
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.FeasTol <= 0 {
		out.FeasTol = tol.Feas
	}
	if out.IntTol <= 0 {
		out.IntTol = tol.Int
	}
	if out.ObjTol <= 0 {
		out.ObjTol = tol.Objective
	}
	if out.MaxViolations == 0 {
		out.MaxViolations = 20
	}
	return out
}

// Violation is one requirement the point fails beyond tolerance.
type Violation struct {
	// Kind is "bound", "integrality", "row" or "objective".
	Kind string
	// Name is the variable or row name (or "objective").
	Name string
	// Index is the variable or row index within the model.
	Index int
	// Amount is the raw violation magnitude (distance past the bound,
	// distance from integrality, or |claimed − recomputed|).
	Amount float64
	// Detail is a human-readable description.
	Detail string
}

// Certificate is the result of re-checking one solution.
type Certificate struct {
	// Feasible reports that every bound, row and integrality requirement
	// holds within the configured tolerances.
	Feasible bool
	// Vars and Rows count what was checked.
	Vars, Rows int
	// Integral counts the integrality requirements checked.
	Integral int
	// MaxBoundViol, MaxIntViol and MaxRowViol are the largest raw
	// violations observed (0 when fully clean), regardless of whether
	// they exceed tolerance. MaxRowViol is pre-scaling (absolute).
	MaxBoundViol, MaxIntViol, MaxRowViol float64
	// Objective is the objective value recomputed from the model costs.
	Objective float64
	// Violations lists every requirement failed beyond tolerance, up to
	// Options.MaxViolations.
	Violations []Violation
	// TotalViolations counts all tolerance failures, including ones
	// dropped from Violations by the cap.
	TotalViolations int
}

// Err returns nil for a feasible certificate, or an error summarizing
// the violations.
func (c *Certificate) Err() error {
	if c.Feasible {
		return nil
	}
	return fmt.Errorf("certify: solution infeasible: %s", c.Summary())
}

// Summary renders a compact one-line description of the certificate.
func (c *Certificate) Summary() string {
	var sb strings.Builder
	if c.Feasible {
		fmt.Fprintf(&sb, "feasible (%d rows, %d bounds, %d integralities; max viol row %.3g bound %.3g int %.3g)",
			c.Rows, c.Vars, c.Integral, c.MaxRowViol, c.MaxBoundViol, c.MaxIntViol)
		return sb.String()
	}
	fmt.Fprintf(&sb, "%d violation(s)", c.TotalViolations)
	for i, v := range c.Violations {
		if i == 3 {
			fmt.Fprintf(&sb, "; … %d more", c.TotalViolations-i)
			break
		}
		fmt.Fprintf(&sb, "; %s", v.Detail)
	}
	return sb.String()
}

func (c *Certificate) addViolation(cap int, v Violation) {
	c.TotalViolations++
	if cap < 0 || len(c.Violations) < cap {
		c.Violations = append(c.Violations, v)
	}
}

// Check certifies the point x against every bound, integrality
// requirement and row of m. It returns an error only for structural
// problems (a broken model, wrong point length); an infeasible point
// yields a certificate with Feasible == false.
func Check(m *lp.Model, x []float64, opts *Options) (*Certificate, error) {
	o := opts.withDefaults()
	if err := m.Err(); err != nil {
		return nil, fmt.Errorf("certify: invalid model: %w", err)
	}
	if len(x) != m.NumVars() {
		return nil, fmt.Errorf("certify: point has %d entries, model has %d variables", len(x), m.NumVars())
	}
	c := &Certificate{Feasible: true, Vars: m.NumVars(), Rows: m.NumRows()}

	for j := 0; j < m.NumVars(); j++ {
		v := m.Var(lp.VarID(j))
		xi := x[j]
		if math.IsNaN(xi) || math.IsInf(xi, 0) {
			c.Feasible = false
			c.addViolation(o.MaxViolations, Violation{
				Kind: "bound", Name: v.Name, Index: j, Amount: math.Inf(1),
				Detail: fmt.Sprintf("variable %q = %v is not finite", v.Name, xi),
			})
			continue
		}
		var bv float64
		if xi < v.Lower {
			bv = v.Lower - xi
		} else if xi > v.Upper {
			bv = xi - v.Upper
		}
		if bv > c.MaxBoundViol {
			c.MaxBoundViol = bv
		}
		if tol.Pos(bv, o.FeasTol) {
			c.Feasible = false
			c.addViolation(o.MaxViolations, Violation{
				Kind: "bound", Name: v.Name, Index: j, Amount: bv,
				Detail: fmt.Sprintf("variable %q = %v outside [%v, %v] by %.3g", v.Name, xi, v.Lower, v.Upper, bv),
			})
		}
		if v.Type != lp.Continuous {
			c.Integral++
			iv := tol.Frac(xi)
			if iv > c.MaxIntViol {
				c.MaxIntViol = iv
			}
			if tol.Pos(iv, o.IntTol) {
				c.Feasible = false
				c.addViolation(o.MaxViolations, Violation{
					Kind: "integrality", Name: v.Name, Index: j, Amount: iv,
					Detail: fmt.Sprintf("variable %q = %v is %.3g from integral", v.Name, xi, iv),
				})
			}
		}
	}

	for r := 0; r < m.NumRows(); r++ {
		row := m.Row(lp.RowID(r))
		a := m.RowActivity(lp.RowID(r), x)
		var rv float64
		switch row.Sense {
		case lp.LE:
			rv = a - row.RHS
		case lp.GE:
			rv = row.RHS - a
		case lp.EQ:
			rv = math.Abs(a - row.RHS)
		}
		if rv < 0 {
			rv = 0
		}
		if rv > c.MaxRowViol {
			c.MaxRowViol = rv
		}
		scaled := o.FeasTol * math.Max(1, math.Abs(row.RHS))
		if tol.Pos(rv, scaled) {
			c.Feasible = false
			c.addViolation(o.MaxViolations, Violation{
				Kind: "row", Name: row.Name, Index: r, Amount: rv,
				Detail: fmt.Sprintf("row %q: activity %v %s %v violated by %.3g", row.Name, a, row.Sense, row.RHS, rv),
			})
		}
	}

	c.Objective = m.Objective(x)
	return c, nil
}

// CheckCut verifies that a candidate cutting plane preserves a stash of
// known integer-feasible points: a valid cut may never violate any of
// them. It returns nil when every point satisfies the inequality within
// FeasTol (scaled by max(1, |rhs|), matching row checks), and an error
// naming the first eliminated point otherwise. The MILP solver treats
// that error as fatal — a cut that kills a known solution is a solver
// bug, not a degradation.
func CheckCut(row lp.Row, points [][]float64, opts *Options) error {
	o := opts.withDefaults()
	scaled := o.FeasTol * math.Max(1, math.Abs(row.RHS))
	for i, x := range points {
		a := 0.0
		for _, t := range row.Terms {
			if int(t.Var) >= len(x) {
				return fmt.Errorf("certify: cut %q references variable %d beyond point %d (len %d)", row.Name, t.Var, i, len(x))
			}
			a += t.Coef * x[t.Var]
		}
		var rv float64
		switch row.Sense {
		case lp.LE:
			rv = a - row.RHS
		case lp.GE:
			rv = row.RHS - a
		case lp.EQ:
			rv = math.Abs(a - row.RHS)
		default:
			return fmt.Errorf("certify: cut %q has invalid sense %d", row.Name, int(row.Sense))
		}
		if tol.Pos(rv, scaled) {
			return fmt.Errorf("certify: cut %q eliminates feasible point %d: activity %v %s %v violated by %.3g",
				row.Name, i, a, row.Sense, row.RHS, rv)
		}
	}
	return nil
}

// CheckSolution certifies a solver result against the model: the primal
// point is checked like Check, and the solution's claimed objective must
// match the recomputed one within ObjTol (scaled). Solutions without a
// usable point (infeasible/unbounded statuses) certify trivially with a
// nil certificate and nil error only when the status carries no
// solution; a missing X on a solution-bearing status is an error.
func CheckSolution(m *lp.Model, sol *lp.Solution, opts *Options) (*Certificate, error) {
	if sol == nil {
		return nil, fmt.Errorf("certify: nil solution")
	}
	if !sol.Status.HasSolution() {
		return nil, nil
	}
	if sol.X == nil {
		return nil, fmt.Errorf("certify: status %v promises a solution but X is nil", sol.Status)
	}
	o := opts.withDefaults()
	c, err := Check(m, sol.X, &o)
	if err != nil {
		return nil, err
	}
	if d := math.Abs(sol.Objective - c.Objective); !tol.Leq(d, 0, o.ObjTol*math.Max(1, math.Abs(sol.Objective))) {
		c.Feasible = false
		c.addViolation(o.MaxViolations, Violation{
			Kind: "objective", Name: "objective", Index: -1, Amount: d,
			Detail: fmt.Sprintf("claimed objective %v differs from recomputed %v by %.3g", sol.Objective, c.Objective, d),
		})
	}
	return c, nil
}
