package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies a trace event. The set is small and stable: consumers
// switch on it, and DESIGN.md documents the fields each kind populates.
type Kind string

// Event kinds emitted by the instrumented solver layers.
const (
	// KindSolveStart opens a branch & bound solve (milp). Name carries
	// the model name, Detail its dimensions and worker count.
	KindSolveStart Kind = "solve_start"
	// KindSolveEnd closes a branch & bound solve with its terminal
	// Status/Limit, objective Value, Nodes, Iterations and Gap.
	KindSolveEnd Kind = "solve_end"
	// KindPhaseStart/KindPhaseEnd bracket one simplex phase (Phase 1 or
	// 2); the end event records the cumulative pivot count in Iterations.
	KindPhaseStart Kind = "phase_start"
	KindPhaseEnd   Kind = "phase_end"
	// KindIncumbent records a new best integer-feasible point: Value is
	// its objective, Worker the 1-based publisher, Nodes the node count
	// at install time.
	KindIncumbent Kind = "incumbent"
	// KindBound records an improvement of the proven global lower bound
	// (Value), with Nodes at the time of the improvement.
	KindBound Kind = "bound"
	// KindStageStart/KindStageEnd bracket one attempt of one fallback-
	// chain stage (core): Name is the stage, Attempt the 1-based try,
	// and the end event's Status carries the attempt outcome.
	KindStageStart Kind = "stage_start"
	KindStageEnd   Kind = "stage_end"
	// KindFault records a fired fault-injection: Name is the site,
	// Detail the fault class, Attempt the site hit count at firing.
	KindFault Kind = "fault"
)

// Event is one structured, timestamped solve event. Fields other than
// Seq and Kind are populated per kind; absent fields are omitted from
// the JSONL encoding so streams stay compact and — at Workers=1 with a
// deterministic tracer — byte-stable across runs.
//
// Value, Nodes and Gap are pointers because zero is a legitimate
// payload for each of them: an incumbent with objective exactly 0, a
// solve closed at the root (0 nodes), and a proven exactly-zero gap all
// must survive encoding distinguishably from "field not defined for
// this kind". Emitters set them with the Float64/Int helpers; nil means
// the kind (or this particular event) does not carry the quantity.
type Event struct {
	// Seq is the 1-based position in the tracer's total order.
	Seq int64 `json:"seq"`
	// TMicros is microseconds since the tracer started; omitted by
	// tracers built with NewDeterministic.
	TMicros int64 `json:"t_us,omitempty"`
	Kind    Kind  `json:"kind"`
	// Name identifies the subject: model name, phase name, stage name,
	// or fault site.
	Name string `json:"name,omitempty"`
	// Worker is the 1-based branch & bound worker behind the event; 0
	// (omitted) for events with no worker attribution.
	Worker int `json:"worker,omitempty"`
	// Phase is the simplex phase (1 or 2) for phase events.
	Phase int `json:"phase,omitempty"`
	// Attempt is the 1-based attempt (stage events) or site hit count
	// (fault events).
	Attempt int `json:"attempt,omitempty"`
	// Value is the kind's principal quantity: incumbent or terminal
	// objective, or improved bound. nil when the event carries none
	// (e.g. a solve_end with no feasible point).
	Value *float64 `json:"value,omitempty"`
	// Nodes and Iterations snapshot the search counters at emit time.
	Nodes      *int `json:"nodes,omitempty"`
	Iterations int  `json:"iterations,omitempty"`
	// Status and Limit mirror lp.Solution terminology on end events.
	Status string `json:"status,omitempty"`
	Limit  string `json:"limit,omitempty"`
	// Gap is the relative optimality gap on solve_end events (-1 when
	// no bound is known, mirroring the plan encoding); nil on kinds
	// that do not define it.
	Gap *float64 `json:"gap,omitempty"`
	// Detail is free-form context (dimensions, error text, fault class).
	Detail string `json:"detail,omitempty"`
}

// Float64 returns a pointer to v, for populating Event.Value and
// Event.Gap — the presence-aware fields where 0 is a real payload.
func Float64(v float64) *float64 { return &v }

// Int returns a pointer to v, for populating Event.Nodes.
func Int(v int) *int { return &v }

// Sink receives completed events from a Tracer. Implementations must
// tolerate concurrent Emit calls only if used by several tracers; a
// single Tracer serializes its emissions.
type Sink interface {
	Emit(Event)
}

// Tracer stamps and orders events into a Sink. All methods are safe on
// a nil *Tracer (the production default), reducing to one pointer
// comparison, so instrumented code never branches on a config flag.
type Tracer struct {
	mu    sync.Mutex
	sink  Sink  // immutable after construction
	seq   int64 // guarded by mu
	start time.Time
	stamp bool
}

// New returns a Tracer emitting wall-clock-stamped events into sink.
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink, start: time.Now(), stamp: true}
}

// NewDeterministic returns a Tracer that omits timestamps, so equal
// solves at Workers=1 produce byte-identical streams. Everything else
// matches New.
func NewDeterministic(sink Sink) *Tracer {
	return &Tracer{sink: sink}
}

// Emit assigns the next sequence number (and timestamp, unless the
// tracer is deterministic) and hands e to the sink. No-op on a nil
// tracer or nil sink.
func (t *Tracer) Emit(e Event) {
	if t == nil || t.sink == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if t.stamp {
		e.TMicros = time.Since(t.start).Microseconds()
	}
	t.sink.Emit(e)
	t.mu.Unlock()
}

// JSONLSink encodes events as JSON Lines: one object per event. Encode
// errors are sticky and reported by Err, so the hot path never returns
// one.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error // guarded by mu
}

// NewJSONLSink returns a sink writing JSONL to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err returns the first encode error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MemorySink buffers events in memory, for tests and replay assertions.
type MemorySink struct {
	mu     sync.Mutex
	events []Event // guarded by mu
}

// Emit implements Sink.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of everything emitted so far, in order.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Replay parses a JSONL event stream (as written through JSONLSink)
// back into events, verifying the sequence numbers are 1..n in order —
// the property that makes a Workers=1 trace replayable.
func Replay(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if e.Seq != int64(len(events)+1) {
			return nil, fmt.Errorf("obs: trace line %d: sequence %d, want %d", line, e.Seq, len(events)+1)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}

// Incumbents extracts the incumbent-objective sequence from an event
// stream — the quantity a deterministic replay must reproduce exactly.
func Incumbents(events []Event) []float64 {
	var seq []float64
	for _, e := range events {
		if e.Kind == KindIncumbent && e.Value != nil {
			seq = append(seq, *e.Value)
		}
	}
	return seq
}
