package obs

import (
	"errors"
	"fmt"
	"os"
)

// FileObserver is the CLI-facing bundle behind the -trace/-metrics/
// -profile flags: it owns the output files and the Tracer/Metrics
// handed into solver options, and flushes everything on Close. A nil
// *FileObserver (or one opened with all paths empty) carries nil
// Tracer/Metrics, so passing its fields through is always safe and
// keeps the instrumentation fully disabled.
type FileObserver struct {
	// Tracer is non-nil iff a trace path was given.
	Tracer *Tracer
	// Metrics is non-nil iff a metrics path was given.
	Metrics *Metrics

	traceFile   *os.File
	traceSink   *JSONLSink
	metricsPath string
	stopProfile func() error
}

// OpenFileObserver opens the requested outputs; every empty path
// disables its facility. deterministic selects a timestamp-free tracer
// (see NewDeterministic) so single-worker trace streams are byte-stable
// across runs.
func OpenFileObserver(tracePath, metricsPath, profileDir string, deterministic bool) (*FileObserver, error) {
	o := &FileObserver{}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		o.traceFile = f
		o.traceSink = NewJSONLSink(f)
		if deterministic {
			o.Tracer = NewDeterministic(o.traceSink)
		} else {
			o.Tracer = New(o.traceSink)
		}
	}
	if metricsPath != "" {
		o.Metrics = NewMetrics()
		o.metricsPath = metricsPath
	}
	if profileDir != "" {
		stop, err := StartProfiles(profileDir)
		if err != nil {
			o.Close()
			return nil, err
		}
		o.stopProfile = stop
	}
	return o, nil
}

// Close flushes and closes everything the observer opened: it surfaces
// any sticky trace encode error, writes the metrics snapshot, and stops
// the profiles. Safe on nil and idempotent.
func (o *FileObserver) Close() error {
	if o == nil {
		return nil
	}
	var errs []error
	if o.traceFile != nil {
		if err := o.traceSink.Err(); err != nil {
			errs = append(errs, fmt.Errorf("obs: writing trace: %w", err))
		}
		if err := o.traceFile.Close(); err != nil {
			errs = append(errs, err)
		}
		o.traceFile = nil
	}
	if o.metricsPath != "" {
		f, err := os.Create(o.metricsPath)
		if err != nil {
			errs = append(errs, err)
		} else {
			if err := o.Metrics.Snapshot().WriteJSON(f); err != nil {
				errs = append(errs, fmt.Errorf("obs: writing metrics: %w", err))
			}
			if err := f.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		o.metricsPath = ""
	}
	if o.stopProfile != nil {
		stop := o.stopProfile
		o.stopProfile = nil
		if err := stop(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
