package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerAndMetricsAreNoOps(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindIncumbent, Value: Float64(1)}) // must not panic

	var m *Metrics
	m.Add("x", 1)
	m.SetGauge("g", 2)
	m.MaxGauge("g", 3)
	m.Observe("h", 4)
	if m.Counter("x") != 0 {
		t.Fatalf("nil Metrics counter = %d, want 0", m.Counter("x"))
	}
	if _, ok := m.Gauge("g"); ok {
		t.Fatalf("nil Metrics gauge present")
	}
	if m.Snapshot() != nil {
		t.Fatalf("nil Metrics snapshot non-nil")
	}
}

func TestTracerSequencesAndStamps(t *testing.T) {
	sink := &MemorySink{}
	tr := New(sink)
	tr.Emit(Event{Kind: KindSolveStart, Name: "m"})
	tr.Emit(Event{Kind: KindIncumbent, Value: Float64(12.5)})
	tr.Emit(Event{Kind: KindSolveEnd, Status: "optimal"})
	evs := sink.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.TMicros < 0 {
			t.Fatalf("event %d has negative timestamp", i)
		}
	}
	if got := Incumbents(evs); len(got) != 1 || got[0] != 12.5 {
		t.Fatalf("Incumbents = %v, want [12.5]", got)
	}
}

func TestTracerConcurrentEmitTotalOrder(t *testing.T) {
	sink := &MemorySink{}
	tr := NewDeterministic(sink)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{Kind: KindBound, Worker: w + 1})
			}
		}(w)
	}
	wg.Wait()
	evs := sink.Events()
	if len(evs) != 800 {
		t.Fatalf("got %d events, want 800", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i+1) {
			t.Fatalf("seq gap at %d: %d", i, e.Seq)
		}
		if e.TMicros != 0 {
			t.Fatalf("deterministic tracer stamped event %d", i)
		}
	}
}

func TestJSONLRoundTripAndReplay(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewDeterministic(sink)
	tr.Emit(Event{Kind: KindSolveStart, Name: "knap", Detail: "rows=3 cols=5"})
	tr.Emit(Event{Kind: KindIncumbent, Value: Float64(-41), Worker: 1, Nodes: Int(2)})
	tr.Emit(Event{Kind: KindIncumbent, Value: Float64(-44), Worker: 1, Nodes: Int(7)})
	tr.Emit(Event{Kind: KindSolveEnd, Status: "optimal", Value: Float64(-44), Nodes: Int(9), Gap: Float64(0)})
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 4 {
		t.Fatalf("JSONL stream has %d lines, want 4", n)
	}
	evs, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(evs) != 4 {
		t.Fatalf("replayed %d events, want 4", len(evs))
	}
	if evs[0].Kind != KindSolveStart || evs[0].Name != "knap" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	want := []float64{-41, -44}
	got := Incumbents(evs)
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("incumbent sequence %v, want %v", got, want)
	}
}

// TestZeroValuesSurviveEncoding pins the bugfix for legitimate zero
// payloads: an incumbent with objective exactly 0, a solve_end with an
// exactly-zero certified gap, and a root-closed solve (0 nodes) must
// all encode their fields explicitly — a stream consumer must be able
// to tell "gap proven 0" apart from "gap not reported".
func TestZeroValuesSurviveEncoding(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewDeterministic(sink)
	tr.Emit(Event{Kind: KindIncumbent, Value: Float64(0), Worker: 1, Nodes: Int(0)})
	tr.Emit(Event{Kind: KindSolveEnd, Status: "optimal", Value: Float64(0), Nodes: Int(0), Gap: Float64(0)})
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, want := range []string{`"value":0`, `"nodes":0`} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("incumbent line %s misses %s", lines[0], want)
		}
	}
	for _, want := range []string{`"value":0`, `"nodes":0`, `"gap":0`} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("solve_end line %s misses %s", lines[1], want)
		}
	}

	// And absence stays absence: a solve_end that carries no feasible
	// point must not fabricate a zero objective.
	buf.Reset()
	sink2 := NewJSONLSink(&buf)
	NewDeterministic(sink2).Emit(Event{Kind: KindSolveEnd, Status: "error"})
	if strings.Contains(buf.String(), `"value"`) || strings.Contains(buf.String(), `"gap"`) {
		t.Fatalf("valueless solve_end fabricated a payload: %s", buf.String())
	}

	evs, err := Replay(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if got := Incumbents(evs); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Incumbents = %v, want [0]", got)
	}
	if evs[1].Gap == nil || *evs[1].Gap != 0 || evs[1].Nodes == nil || *evs[1].Nodes != 0 {
		t.Fatalf("zero gap/nodes lost in replay: %+v", evs[1])
	}
}

func TestReplayRejectsBadStreams(t *testing.T) {
	if _, err := Replay(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("Replay accepted malformed JSON")
	}
	// Out-of-order sequence numbers.
	if _, err := Replay(strings.NewReader(`{"seq":2,"kind":"bound"}` + "\n")); err == nil {
		t.Fatal("Replay accepted a stream starting at seq 2")
	}
	// Empty stream is fine.
	evs, err := Replay(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Fatalf("empty stream: %v, %d events", err, len(evs))
	}
}

func TestMetricsCountersGaugesHistograms(t *testing.T) {
	m := NewMetrics()
	m.Add(MetricSimplexPivots, 100)
	m.Add(MetricSimplexPivots, 23)
	m.SetGauge(MetricMILPWorkers, 4)
	m.MaxGauge(MetricMILPPeakQueue, 10)
	m.MaxGauge(MetricMILPPeakQueue, 3) // must not lower the high-water mark
	m.Observe(MetricHistPivotsPerSolve, 0)
	m.Observe(MetricHistPivotsPerSolve, 1)
	m.Observe(MetricHistPivotsPerSolve, 100)
	m.Observe(MetricHistPivotsPerSolve, -5)          // clamps to 0
	m.Observe(MetricHistPivotsPerSolve, math.NaN())  // clamps to 0
	m.Observe(MetricHistPivotsPerSolve, math.Inf(1)) // clamps to MaxFloat64

	if got := m.Counter(MetricSimplexPivots); got != 123 {
		t.Fatalf("counter = %d, want 123", got)
	}
	if v, ok := m.Gauge(MetricMILPPeakQueue); !ok || v != 10 {
		t.Fatalf("peak queue gauge = %v,%v want 10,true", v, ok)
	}
	s := m.Snapshot()
	if s == nil {
		t.Fatal("nil snapshot from live registry")
	}
	if s.Counters[MetricSimplexPivots] != 123 {
		t.Fatalf("snapshot counter = %d", s.Counters[MetricSimplexPivots])
	}
	h, ok := s.Histograms[MetricHistPivotsPerSolve]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if h.Count != 6 {
		t.Fatalf("hist count = %d, want 6", h.Count)
	}
	if h.Min != 0 || h.Max != math.MaxFloat64 {
		t.Fatalf("hist min/max = %g/%g", h.Min, h.Max)
	}
	var bucketed int64
	for _, b := range h.Buckets {
		if b.Count <= 0 {
			t.Fatalf("empty bucket emitted: %+v", b)
		}
		bucketed += b.Count
	}
	if bucketed != h.Count {
		t.Fatalf("bucket counts sum to %d, want %d", bucketed, h.Count)
	}
	names := s.CounterNames()
	if len(names) != 1 || names[0] != MetricSimplexPivots {
		t.Fatalf("CounterNames = %v", names)
	}
}

func TestSnapshotJSONIsDeterministicAndFinite(t *testing.T) {
	build := func() *Snapshot {
		m := NewMetrics()
		m.Add("b", 2)
		m.Add("a", 1)
		m.SetGauge("g", 1.5)
		m.Observe("h", 3)
		m.Observe("h", math.Inf(1))
		return m.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if b1.String() != b2.String() {
		t.Fatal("equal registries produced different JSON")
	}
	if !strings.Contains(b1.String(), `"a": 1`) {
		t.Fatalf("unexpected JSON: %s", b1.String())
	}
}

func TestBenchReportValidateAndRoundTrip(t *testing.T) {
	good := &BenchReport{
		Schema:    BenchSchema,
		PR:        4,
		GoVersion: "go1.23",
		CPUs:      8,
		CreatedAt: "2026-08-06T00:00:00Z",
		Scenarios: []BenchScenario{
			{Name: "fig4/enterprise1", Rows: 10, Cols: 20, Nodes: 5, Iterations: 100, Gap: 0, WallMillis: 12, Cost: 99.5},
			{Name: "fig4/enterprise1+warm", Rows: 10, Cols: 20, Nodes: 5, Iterations: 30, Gap: 0, WallMillis: 4, Cost: 99.5,
				Warm: true, WarmHits: 6, WarmMisses: 1, Phase1Skipped: 6},
			{Name: "fig6/federal", Rows: 9, Cols: 9, Iterations: 7, WallMillis: 1, GapUnknown: true},
		},
	}
	var buf bytes.Buffer
	if err := WriteBenchReport(&buf, good); err != nil {
		t.Fatalf("WriteBenchReport: %v", err)
	}
	back, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatalf("ReadBenchReport: %v", err)
	}
	if back.PR != 4 || len(back.Scenarios) != 3 || back.Scenarios[0].Name != "fig4/enterprise1" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if w := back.Scenarios[1]; !w.Warm || w.WarmHits != 6 || w.WarmMisses != 1 || w.Phase1Skipped != 6 {
		t.Fatalf("warm counters lost in round trip: %+v", w)
	}
	if !back.Scenarios[2].GapUnknown {
		t.Fatal("gap_unknown lost in round trip")
	}

	bad := []BenchReport{
		{PR: 4, GoVersion: "go1.23", CPUs: 8, Scenarios: good.Scenarios},                                                               // missing schema
		{Schema: BenchSchema, GoVersion: "go1.23", CPUs: 8, Scenarios: good.Scenarios},                                                 // PR 0
		{Schema: BenchSchema, PR: 4, CPUs: 8, Scenarios: good.Scenarios},                                                               // no go version
		{Schema: BenchSchema, PR: 4, GoVersion: "go1.23", Scenarios: good.Scenarios},                                                   // CPUs 0
		{Schema: BenchSchema, PR: 4, GoVersion: "go1.23", CPUs: 8},                                                                     // no scenarios
		{Schema: BenchSchema, PR: 4, GoVersion: "go1.23", CPUs: 8, Scenarios: []BenchScenario{{Rows: 1, Cols: 1}}},                     // unnamed scenario
		{Schema: BenchSchema, PR: 4, GoVersion: "go1.23", CPUs: 8, Scenarios: []BenchScenario{{Name: "x"}}},                            // empty model
		{Schema: BenchSchema, PR: 4, GoVersion: "go1.23", CPUs: 8, Scenarios: []BenchScenario{{Name: "x", Rows: 1, Cols: 1, Gap: -2}}}, // negative gap
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Fatalf("bad report %d validated", i)
		}
	}

	if _, err := ReadBenchReport(strings.NewReader(`{"schema":"etransform-bench/v1","bogus":1}`)); err == nil {
		t.Fatal("ReadBenchReport accepted unknown fields")
	}
}

func TestStartProfilesWritesBothProfiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prof")
	stop, err := StartProfiles(dir)
	if err != nil {
		t.Fatalf("StartProfiles: %v", err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0.0
	for i := 0; i < 1_000_00; i++ {
		x += math.Sqrt(float64(i))
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(failWriter{})
	tr := New(sink)
	tr.Emit(Event{Kind: KindBound})
	tr.Emit(Event{Kind: KindBound})
	if sink.Err() == nil {
		t.Fatal("JSONLSink swallowed the write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, os.ErrClosed
}
