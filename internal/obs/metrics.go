package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
)

// Metric names recorded by the instrumented solver layers. Centralizing
// them here keeps producers (simplex, milp, core, faultinject) and
// consumers (tests, BENCH reports, DESIGN.md) on one taxonomy.
const (
	// Counters folded once per simplex solve.
	MetricSimplexSolves     = "simplex.solves"
	MetricSimplexPivots     = "simplex.pivots"
	MetricSimplexPhase1     = "simplex.phase1_pivots"
	MetricSimplexDegenerate = "simplex.degenerate_pivots"
	MetricSimplexBland      = "simplex.bland_switches"
	MetricSimplexRefactors  = "simplex.refactorizations"

	// Warm-start counters (basis reuse across branch & bound nodes).
	// A hit is a solve completed from an inherited basis with phase 1
	// skipped; a miss is a solve that was offered a basis but fell back
	// to the cold two-phase path (stale, singular, or primal-infeasible
	// restoration). DualPivots counts the dual-simplex pivots spent
	// restoring primal feasibility; they are also included in
	// MetricSimplexPivots so pivot totals reconcile with iterations.
	MetricSimplexWarmHits      = "simplex.warm_hits"
	MetricSimplexWarmMisses    = "simplex.warm_misses"
	MetricSimplexPhase1Skipped = "simplex.phase1_skipped"
	MetricSimplexDualPivots    = "simplex.dual_pivots"

	// Sparse-engine counters. Factorizations counts every sparse-LU
	// build (initial, eta-cap, drift, tiny-pivot recovery) — a superset
	// of MetricSimplexRefactors, which keeps counting only the recovery/
	// policy refactorizations the dense engine also performs. EtaUpdates
	// counts product-form etas appended between factorizations, and
	// PricedCandidates the columns examined by (partial) pricing.
	// RefactorDriftMax is a high-water gauge of the relative primal
	// residual observed at the periodic drift checks.
	MetricSimplexFactorizations   = "simplex.factorizations"
	MetricSimplexEtaUpdates       = "simplex.eta_updates"
	MetricSimplexPricedCandidates = "simplex.priced_candidates"
	MetricSimplexRefactorDriftMax = "simplex.refactor_drift_max" // gauge (max)

	// Branch & bound counters and gauges.
	MetricMILPSolves       = "milp.solves"
	MetricMILPNodes        = "milp.nodes"
	MetricMILPIncumbents   = "milp.incumbents"
	MetricMILPBoundImprove = "milp.bound_improvements"
	MetricMILPWallMicros   = "milp.wall_us"
	MetricMILPWorkMicros   = "milp.work_us"
	MetricMILPPeakQueue    = "milp.peak_queue_depth" // gauge (max)
	MetricMILPWorkers      = "milp.workers"          // gauge

	// MetricMILPNodesWorkerPrefix + "<id>" counts nodes claimed by one
	// 1-based worker; the per-worker counters sum to MetricMILPNodes.
	MetricMILPNodesWorkerPrefix = "milp.nodes.worker."

	// Root cutting planes and the kernel-search heuristic (both opt-in
	// and root-sequential). CutsSeparated counts cuts accepted into the
	// pool across all root rounds, CutsActive the cuts still live (not
	// retired by activity aging) in the model handed to the tree search,
	// KernelIncumbents the incumbent improvements found by restricted
	// kernel solves.
	MetricMILPCutsSeparated    = "milp.cuts_separated"
	MetricMILPCutsActive       = "milp.cuts_active"
	MetricMILPKernelIncumbents = "milp.kernel_incumbents"

	// Fallback-chain wall-clock, microseconds. The per-stage counters
	// (prefix + stage name) sum to at most the pipeline total.
	MetricPipelineMicros    = "core.pipeline_us"
	MetricStageMicrosPrefix = "core.stage_us."
	MetricStageAttempts     = "core.stage_attempts"

	// Fault-injection firings: the total, and per-class with the prefix.
	MetricFaultFired       = "fault.fired"
	MetricFaultFiredPrefix = "fault.fired."

	// Monte Carlo robustness harness (internal/robust): sample outcomes
	// (solved + excluded = total; degraded is a subset of excluded) and
	// the candidate-plan funnel of the robustness ranking.
	MetricRobustSamples            = "robust.samples"
	MetricRobustSamplesSolved      = "robust.samples_solved"
	MetricRobustSamplesDegraded    = "robust.samples_degraded"
	MetricRobustSamplesExcluded    = "robust.samples_excluded"
	MetricRobustCandidates         = "robust.candidates"
	MetricRobustCandidatesRejected = "robust.candidates_rejected"
	MetricRobustDecisionsFlipped   = "robust.decisions_flipped"

	// Planning daemon (internal/serve): job lifecycle counts (submitted
	// = done + degraded + failed + still in flight; rejected jobs never
	// enter the queue and are counted separately), the solve cache's
	// hit/miss split, warm-seeded re-plans, and the live queue depth.
	MetricServeJobsSubmitted = "serve.jobs_submitted"
	MetricServeJobsDone      = "serve.jobs_done"
	MetricServeJobsDegraded  = "serve.jobs_degraded"
	MetricServeJobsFailed    = "serve.jobs_failed"
	MetricServeJobsRejected  = "serve.jobs_rejected"
	MetricServeCacheHits     = "serve.cache_hits"
	MetricServeCacheMisses   = "serve.cache_misses"
	MetricServeWarmSeeded    = "serve.warm_seeded"
	MetricServeQueueDepth    = "serve.queue_depth" // gauge

	// Histograms.
	MetricHistPivotsPerSolve = "simplex.pivots_per_solve"
	// MetricHistRobustFlips observes, per application group, the number
	// of samples whose optimal plan moved the group off its nominal site.
	MetricHistRobustFlips = "robust.flips_per_group"
)

// Metrics is a registry of named counters, gauges and histograms. All
// methods are safe for concurrent use and safe on a nil *Metrics (every
// operation is then a no-op costing one pointer comparison), so the
// solver layers carry their instrumentation unconditionally.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64   // guarded by mu
	gauges   map[string]float64 // guarded by mu
	hists    map[string]*hist   // guarded by mu
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*hist),
	}
}

// Add increments the named counter by delta.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// SetGauge records the gauge's current value, replacing any prior one.
func (m *Metrics) SetGauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// MaxGauge records v only if it exceeds the gauge's current value —
// high-water marks like peak queue depth.
func (m *Metrics) MaxGauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if cur, ok := m.gauges[name]; !ok || v > cur {
		m.gauges[name] = v
	}
	m.mu.Unlock()
}

// Observe adds one sample to the named histogram. Samples are bucketed
// by power of two; negative and non-finite samples clamp to 0.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &hist{}
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// Counter returns the named counter's current value (0 if absent).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Gauge returns the named gauge's current value and whether it was set.
func (m *Metrics) Gauge(name string) (float64, bool) {
	if m == nil {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.gauges[name]
	return v, ok
}

// hist is a power-of-two-bucket histogram: bucket i counts samples v
// with bits.Len64(uint64(v)) == i, i.e. v in [2^(i−1), 2^i). Integer
// bucketing keeps Observe free of float comparisons and math calls.
type hist struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [65]int64
}

func (h *hist) observe(v float64) {
	if !(v > 0) || math.IsInf(v, 1) { // NaN, negative and zero clamp to 0
		if math.IsInf(v, 1) {
			v = math.MaxFloat64
		} else {
			v = 0
		}
	}
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	u := uint64(0)
	if v >= 1 {
		if v >= math.MaxUint64 {
			u = math.MaxUint64
		} else {
			u = uint64(v)
		}
	}
	h.buckets[bits.Len64(u)]++
}

// HistBucket is one non-empty histogram bucket: Count samples with
// value ≤ Le (and greater than the previous bucket's Le).
type HistBucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistStats is a frozen histogram.
type HistStats struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a frozen, JSON-encodable view of a registry. Map keys
// encode sorted (encoding/json), so equal registries yield equal bytes.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]HistStats `json:"histograms,omitempty"`
}

// Snapshot freezes the registry. A nil registry snapshots to nil, which
// is what keeps Plan.Stats.Metrics (omitempty) out of default plans.
func (m *Metrics) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Snapshot{}
	if len(m.counters) > 0 {
		s.Counters = make(map[string]int64, len(m.counters))
		for k, v := range m.counters {
			s.Counters[k] = v
		}
	}
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(m.gauges))
		for k, v := range m.gauges {
			s.Gauges[k] = v
		}
	}
	if len(m.hists) > 0 {
		s.Histograms = make(map[string]HistStats, len(m.hists))
		for k, h := range m.hists {
			hs := HistStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
			for i, c := range h.buckets {
				if c == 0 {
					continue
				}
				// The overflow bucket's bound stays JSON-encodable
				// (encoding/json rejects +Inf).
				le := math.MaxFloat64
				if i < 64 {
					le = float64(uint64(1)<<uint(i)) - 1
				}
				hs.Buckets = append(hs.Buckets, HistBucket{Le: le, Count: c})
			}
			s.Histograms[k] = hs
		}
	}
	return s
}

// CounterNames returns the snapshot's counter names, sorted — handy for
// tests iterating a stable order.
func (s *Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON, the format the CLIs'
// -metrics flag dumps.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
