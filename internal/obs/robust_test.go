package obs

import (
	"bytes"
	"strings"
	"testing"
)

// validRobust builds a minimal valid report.
func validRobust() *RobustReport {
	return &RobustReport{
		Schema:          RobustSchema,
		Dataset:         "test",
		Seed:            42,
		Samples:         4,
		CVaRAlpha:       0.9,
		SamplesSolved:   3,
		SamplesDegraded: 1,
		SamplesExcluded: 1,
		NominalCost:     1000,
		Regret:          &RegretStats{Count: 3, Mean: 5, Min: 0, Max: 12, P50: 3, P90: 12, CVaR: 12},
		Flips: []DecisionFlip{{
			GroupID: "g1", NominalDC: "t1", FlipRate: 1.0 / 3,
			Alternatives: []DCShare{{DC: "t2", Count: 1}},
		}},
		Plans: []RankedPlan{
			{Signature: "a1b2", Source: "sample", SampleCount: 2, NominalCost: 1001, ExpectedRegret: 2, CVaRRegret: 4, Chosen: true},
			{Signature: "c3d4", Source: "nominal", SampleCount: 1, NominalCost: 1000, ExpectedRegret: 5, CVaRRegret: 12},
		},
		Chosen:   "a1b2",
		Excluded: []ExcludedSample{{Index: 2, Stage: "exact", Reason: "wall-clock budget", Limit: "wall-clock", Degraded: true}},
	}
}

func TestRobustReportRoundTrip(t *testing.T) {
	r := validRobust()
	var buf bytes.Buffer
	if err := WriteRobustReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRobustReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Chosen != r.Chosen || got.SamplesSolved != r.SamplesSolved || len(got.Plans) != len(r.Plans) {
		t.Errorf("round trip changed the report: %+v", got)
	}
	// Writing twice yields identical bytes: the schema has no clocks.
	var buf2 bytes.Buffer
	if err := WriteRobustReport(&buf2, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two writes of the same report differ")
	}
}

func TestRobustReportRejectsUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRobustReport(&buf, validRobust()); err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(buf.String(), `"dataset"`, `"wall_millis": 3, "dataset"`, 1)
	if _, err := ReadRobustReport(strings.NewReader(doctored)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestRobustReportValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RobustReport)
		want string
	}{
		{"bad-schema", func(r *RobustReport) { r.Schema = "etransform-bench/v1" }, "schema"},
		{"no-dataset", func(r *RobustReport) { r.Dataset = "" }, "dataset"},
		{"no-samples", func(r *RobustReport) { r.Samples = 0 }, "samples"},
		{"alpha-high", func(r *RobustReport) { r.CVaRAlpha = 1 }, "cvar_alpha"},
		{"alpha-negative", func(r *RobustReport) { r.CVaRAlpha = -0.1 }, "cvar_alpha"},
		{"accounting", func(r *RobustReport) { r.SamplesSolved = 4 }, "accounting"},
		{"degraded-overflow", func(r *RobustReport) { r.SamplesDegraded = 2 }, "degraded"},
		{"excluded-list", func(r *RobustReport) { r.Excluded = nil }, "excluded"},
		{"regret-missing", func(r *RobustReport) { r.Regret = nil }, "regret"},
		{"regret-count", func(r *RobustReport) { r.Regret.Count = 2 }, "regret"},
		{"regret-orphan", func(r *RobustReport) {
			r.SamplesSolved = 0
			r.SamplesExcluded = 4
			r.SamplesDegraded = 1
			r.Excluded = append(r.Excluded,
				ExcludedSample{Index: 0, Reason: "x"},
				ExcludedSample{Index: 1, Reason: "x"},
				ExcludedSample{Index: 3, Reason: "x"})
			r.Flips = nil
			r.Plans = []RankedPlan{{Signature: "a1b2", Source: "nominal", Chosen: true}}
			r.Chosen = "a1b2"
		}, "regret stats but no solved"},
		{"flip-no-group", func(r *RobustReport) { r.Flips[0].GroupID = "" }, "flip"},
		{"flip-rate-zero", func(r *RobustReport) { r.Flips[0].FlipRate = 0 }, "rate"},
		{"flip-rate-high", func(r *RobustReport) { r.Flips[0].FlipRate = 1.5 }, "rate"},
		{"flip-no-alternatives", func(r *RobustReport) { r.Flips[0].Alternatives = nil }, "alternative"},
		{"no-plans", func(r *RobustReport) { r.Plans = nil }, "plans"},
		{"plan-no-signature", func(r *RobustReport) { r.Plans[0].Signature = "" }, "signature"},
		{"plan-bad-source", func(r *RobustReport) { r.Plans[0].Source = "greedy" }, "source"},
		{"plan-count-overflow", func(r *RobustReport) { r.Plans[0].SampleCount = 5 }, "sample count"},
		{"chosen-mismatch", func(r *RobustReport) { r.Chosen = "c3d4" }, "chosen"},
		{"two-chosen", func(r *RobustReport) { r.Plans[1].Chosen = true }, "chosen"},
		{"no-chosen", func(r *RobustReport) {
			r.Plans[0].Chosen = false
			r.Chosen = ""
		}, "chosen"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			r := validRobust()
			tt.mut(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken report")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
	if err := validRobust().Validate(); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}
