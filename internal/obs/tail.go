package obs

import "sync"

// TailSink is a Sink that lets late readers stream a trace while the
// solve is still running: events accumulate in order, and any number of
// tailers read from an offset of their choosing, blocking on a
// broadcast channel until more arrive or the stream closes. It backs
// the planning daemon's per-job event feed (GET /v1/plans/{id}/events),
// where an HTTP client attaches mid-solve and follows the trace to the
// terminal solve_end.
//
// The zero value is NOT ready; use NewTailSink.
type TailSink struct {
	mu     sync.Mutex
	events []Event // guarded by mu, append-only
	closed bool    // guarded by mu
	change chan struct{}
}

// NewTailSink returns an open, empty sink.
func NewTailSink() *TailSink {
	return &TailSink{change: make(chan struct{})}
}

// Emit implements Sink. Emissions after Close are dropped: the producer
// has already announced the stream's end, and a tailer that observed
// done=true must never miss trailing events.
func (s *TailSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.events = append(s.events, e)
	s.broadcast()
}

// Close marks the stream complete, waking every blocked tailer.
// Idempotent.
func (s *TailSink) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.broadcast()
}

// broadcast wakes current waiters by closing the change channel and
// installing a fresh one. Callers hold mu.
func (s *TailSink) broadcast() {
	close(s.change)
	s.change = make(chan struct{})
}

// Since returns a copy of the events at positions ≥ from (0-based),
// whether the stream is complete, and a channel that is closed on the
// next change — so a tailer loops: consume, and if not done and nothing
// new, block on changed (or its own client-gone signal):
//
//	for {
//		evs, done, changed := sink.Since(from)
//		… write evs …
//		from += len(evs)
//		if done { return }
//		select { case <-changed: case <-ctx.Done(): return }
//	}
//
// A from beyond the current length yields no events and the same
// channel; a negative from is treated as 0.
func (s *TailSink) Since(from int) (events []Event, done bool, changed <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(s.events) {
		events = append([]Event(nil), s.events[from:]...)
	}
	return events, s.closed, s.change
}

// Len returns the number of events emitted so far.
func (s *TailSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}
