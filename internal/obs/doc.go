// Package obs is the solver stack's zero-dependency observability
// layer: structured event tracing, a metrics registry, and opt-in pprof
// capture. It exists so a live solve can be *watched* — which phase is
// running, how the incumbent and bound evolve, where wall-clock goes —
// instead of reconstructed from a final lp.Solution.
//
// The package follows the same nil-receiver idiom as
// internal/resilience/faultinject: every method on *Tracer and *Metrics
// is safe (and a no-op) on a nil pointer, so instrumented code carries
// its hooks permanently and the disabled cost is a single pointer
// comparison per site — nothing is allocated and no clock is read when
// observability is off. Hot loops (the simplex pivot loop) never call
// into this package per iteration even when armed: they keep local
// integer counters and fold them into the registry once per solve.
//
// # Tracing
//
// A Tracer serializes Events into a Sink. Events carry a monotone
// sequence number assigned under the Tracer's lock, so one solve yields
// one totally ordered stream even when branch & bound workers emit
// concurrently. At Workers=1 the stream is deterministic: the same
// model and options produce the same event sequence (timestamps aside —
// NewDeterministic omits them entirely for byte-stable golden streams).
// JSONLSink writes one JSON object per line, the format the CLIs'
// -trace flag dumps and Replay parses back.
//
// # Metrics
//
// Metrics is a small registry of named counters, gauges and power-of-
// two-bucket histograms. The instrumented layers record a fixed
// taxonomy (see DESIGN.md "Observability"): simplex.* fold per-solve
// pivot statistics, milp.* record node/incumbent/bound progress,
// core.stage_us.* meter the fallback chain, fault.* count injected
// firings. Snapshot freezes the registry into a JSON-encodable value
// that the planner attaches to Plan.Stats.Metrics when a registry is
// armed (nil otherwise, keeping default plan bytes unchanged).
//
// # Profiling and benchmark reports
//
// StartProfiles arms runtime/pprof CPU profiling and writes cpu.pprof +
// heap.pprof into a directory on stop — the CLIs' -profile flag.
// BenchReport is the schema of the repository's BENCH_<n>.json perf
// trajectory artifacts emitted by cmd/etbench -json via scripts/bench.sh.
package obs
