package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenFileObserverAllDisabled(t *testing.T) {
	o, err := OpenFileObserver("", "", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tracer != nil || o.Metrics != nil {
		t.Errorf("empty paths produced live instrumentation: %+v", o)
	}
	if err := o.Close(); err != nil {
		t.Errorf("Close on disabled observer: %v", err)
	}
	var nilObs *FileObserver
	if err := nilObs.Close(); err != nil {
		t.Errorf("Close on nil observer: %v", err)
	}
}

func TestOpenFileObserverWritesEverything(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")
	profDir := filepath.Join(dir, "prof")

	o, err := OpenFileObserver(tracePath, metricsPath, profDir, true)
	if err != nil {
		t.Fatal(err)
	}
	o.Tracer.Emit(Event{Kind: KindSolveStart, Name: "m"})
	o.Tracer.Emit(Event{Kind: KindSolveEnd, Name: "m", Status: "optimal"})
	o.Metrics.Add(MetricSimplexPivots, 7)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var kinds []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if e.TMicros != 0 {
			t.Errorf("deterministic trace carries a timestamp: %+v", e)
		}
		kinds = append(kinds, string(e.Kind))
	}
	if got := strings.Join(kinds, ","); got != "solve_start,solve_end" {
		t.Errorf("trace kinds = %q", got)
	}

	mb, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[MetricSimplexPivots] != 7 {
		t.Errorf("metrics file counters = %v", snap.Counters)
	}

	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(profDir, name))
		if err != nil {
			t.Errorf("missing profile %s: %v", name, err)
		} else if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

func TestOpenFileObserverErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFileObserver(filepath.Join(dir, "no", "such", "trace.jsonl"), "", "", false); err == nil {
		t.Error("unwritable trace path accepted")
	}
	// The metrics file is created at Close time; a path naming an
	// existing directory must surface there, not be swallowed.
	o, err := OpenFileObserver("", dir, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err == nil {
		t.Error("Close swallowed the unwritable metrics path")
	}
}
