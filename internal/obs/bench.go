package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchSchema identifies the BENCH_<n>.json format version. Bump only
// with a migration note in DESIGN.md; the perf-trajectory tooling
// refuses unknown schemas rather than guessing.
const BenchSchema = "etransform-bench/v1"

// BenchScenario is one benchmarked solve in a BenchReport.
type BenchScenario struct {
	// Name identifies the scenario (dataset plus variant, e.g.
	// "fig6/florida").
	Name string `json:"name"`
	// DR records whether disaster-recovery planning was on.
	DR bool `json:"dr,omitempty"`
	// Rows/Cols/Nodes/Iterations are the solved MILP's dimensions and
	// search effort; Workers the branch & bound worker count.
	Rows       int `json:"rows"`
	Cols       int `json:"cols"`
	Nodes      int `json:"nodes"`
	Iterations int `json:"iterations"`
	Workers    int `json:"workers,omitempty"`
	// Gap is the certified relative optimality gap at termination.
	// GapUnknown marks a solve whose plan came from a fallback stage
	// with no certified gap (the planner's internal −1 sentinel); Gap is
	// then written as 0 and must not be read as "proven optimal".
	Gap        float64 `json:"gap"`
	GapUnknown bool    `json:"gap_unknown,omitempty"`
	// WallMillis and WorkMillis are the solve's wall-clock and summed
	// worker-busy times.
	WallMillis int64 `json:"wall_millis"`
	WorkMillis int64 `json:"work_millis,omitempty"`
	// Cost is the plan's objective (total monthly cost), the quantity
	// the paper's figures track.
	Cost float64 `json:"cost,omitempty"`
	// Warm marks a solve that ran with parent-basis warm starts
	// (milp.Options.ReuseBasis); the companion cold scenario shares the
	// name minus the "+warm" suffix. WarmHits/WarmMisses count node LPs
	// that did and did not accept the parent basis, Phase1Skipped the
	// phase-1 runs the warm path avoided (equals WarmHits today; kept
	// separate so the invariant is visible in artifacts).
	Warm          bool  `json:"warm,omitempty"`
	WarmHits      int64 `json:"warm_hits,omitempty"`
	WarmMisses    int64 `json:"warm_misses,omitempty"`
	Phase1Skipped int64 `json:"phase1_skipped,omitempty"`
	// Sparse-engine factorization counters (zero on the dense reference
	// engine, hence omitempty): Factorizations counts sparse-LU builds,
	// EtaUpdates the product-form updates appended between them,
	// PricedCandidates the columns examined by partial pricing, and
	// RefactorDriftMax the worst relative primal residual seen at the
	// periodic drift checks (the refactorization policy's second
	// trigger, bounded by tol.Drift).
	Factorizations   int64   `json:"factorizations,omitempty"`
	EtaUpdates       int64   `json:"eta_updates,omitempty"`
	PricedCandidates int64   `json:"priced_candidates,omitempty"`
	RefactorDriftMax float64 `json:"refactor_drift_max,omitempty"`
	// CutsEnabled marks a solve that ran root-node cut separation
	// (milp.Options.Cuts); the companion baseline scenario shares the
	// name minus the "+cuts" suffix. CutsSeparated counts cuts accepted
	// into the root LP across all rounds, CutsActive the non-retired
	// ones handed to the tree search, KernelIncumbents the incumbents
	// the kernel-search heuristic installed. Every separated cut was
	// re-verified against the solve's stash of known feasible points
	// (internal/certify.CheckCut) — a bench artifact with these fields
	// nonzero is also a record that zero cuts were rejected.
	CutsEnabled      bool  `json:"cuts,omitempty"`
	CutsSeparated    int64 `json:"cuts_separated,omitempty"`
	CutsActive       int64 `json:"cuts_active,omitempty"`
	KernelIncumbents int64 `json:"kernel_incumbents,omitempty"`
}

// BenchReport is the schema of the repository's BENCH_<n>.json perf
// artifacts: one file per PR, written by scripts/bench.sh via
// cmd/etbench -json, accumulating a solver-performance trajectory
// across the repo's history.
type BenchReport struct {
	// Schema must equal BenchSchema.
	Schema string `json:"schema"`
	// PR is the pull-request number the artifact belongs to.
	PR int `json:"pr"`
	// GoVersion and CPUs record the build and host, so numbers are
	// never context-free.
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	// CreatedAt is an RFC 3339 UTC timestamp.
	CreatedAt string `json:"created_at,omitempty"`
	// Scenarios holds one entry per benchmarked solve, in run order.
	Scenarios []BenchScenario `json:"scenarios"`
}

// Validate checks the report against the schema contract.
func (r *BenchReport) Validate() error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("obs: bench report schema %q, want %q", r.Schema, BenchSchema)
	}
	if r.PR <= 0 {
		return fmt.Errorf("obs: bench report PR %d, want > 0", r.PR)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("obs: bench report missing go_version")
	}
	if r.CPUs <= 0 {
		return fmt.Errorf("obs: bench report CPUs %d, want > 0", r.CPUs)
	}
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("obs: bench report has no scenarios")
	}
	for i, s := range r.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("obs: bench scenario %d missing name", i)
		}
		if s.Rows <= 0 || s.Cols <= 0 {
			return fmt.Errorf("obs: bench scenario %q has empty model (%d rows × %d cols)", s.Name, s.Rows, s.Cols)
		}
		if s.WallMillis < 0 {
			return fmt.Errorf("obs: bench scenario %q has negative wall time", s.Name)
		}
		if s.Gap < 0 {
			return fmt.Errorf("obs: bench scenario %q has negative gap %g", s.Name, s.Gap)
		}
	}
	return nil
}

// WriteBenchReport validates and writes r as indented JSON.
func WriteBenchReport(w io.Writer, r *BenchReport) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport parses and validates a BENCH_<n>.json stream. Unknown
// fields are rejected: the schema is a contract, not a suggestion.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	r := &BenchReport{}
	if err := dec.Decode(r); err != nil {
		return nil, fmt.Errorf("obs: parsing bench report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}
