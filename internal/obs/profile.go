package obs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// StartProfiles arms CPU profiling into dir/cpu.pprof and returns a
// stop function that ends the CPU profile and writes a heap profile to
// dir/heap.pprof (after a GC, so the heap numbers reflect live memory).
// The directory is created if missing. Callers defer the stop function
// around the work they want profiled — the CLIs' -profile DIR flag.
func StartProfiles(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		errCPU := cpu.Close()
		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return errors.Join(errCPU, fmt.Errorf("obs: heap profile: %w", err))
		}
		runtime.GC()
		errHeap := pprof.WriteHeapProfile(heap)
		return errors.Join(errCPU, errHeap, heap.Close())
	}, nil
}
