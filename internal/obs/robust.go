package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// RobustSchema identifies the ROBUST_<n>.json format version: the
// machine-readable output of the Monte Carlo robustness harness
// (internal/robust). Like the bench schema, it is a contract — readers
// refuse unknown schemas and unknown fields.
//
// The report deliberately carries NO timing or host fields: every value
// in it is a pure function of (dataset, spec, seed, sample count, CVaR
// level, planner options), so rerunning the same configuration at any
// harness worker count must reproduce the file byte for byte. Wall
// clocks and worker counts belong in the metrics snapshot and on
// stdout, not here.
const RobustSchema = "etransform-robust/v1"

// RegretStats summarizes a regret distribution (monthly dollars vs each
// sample's own certified optimum) over the solved, non-degraded samples.
type RegretStats struct {
	// Count is the number of samples the statistics are over.
	Count int `json:"count"`
	// Mean/Min/Max are the distribution's moments and range; P50 and P90
	// are nearest-rank percentiles.
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	// CVaR is the conditional value at risk at the report's cvar_alpha:
	// the mean of the worst ceil((1−α)·count) regrets.
	CVaR float64 `json:"cvar"`
}

// DCShare is one alternative placement a flipping decision moved to.
type DCShare struct {
	// DC is the target data center ID.
	DC string `json:"dc"`
	// Count is the number of solved samples whose optimum used it.
	Count int `json:"count"`
}

// DecisionFlip records one unstable group→DC decision: a group whose
// per-sample optimal primary site differs from the nominal plan's in at
// least one solved sample. Stable groups are omitted.
type DecisionFlip struct {
	// GroupID names the application group; NominalDC its primary site in
	// the nominal plan.
	GroupID   string `json:"group_id"`
	NominalDC string `json:"nominal_dc"`
	// FlipRate is the fraction of solved samples whose optimum placed
	// the group elsewhere, in (0, 1].
	FlipRate float64 `json:"flip_rate"`
	// Alternatives lists the sites flipped to, most frequent first.
	Alternatives []DCShare `json:"alternatives"`
}

// RankedPlan is one candidate in the robustness ranking: the nominal
// plan or a deduplicated per-sample optimum, scored across all solved
// samples.
type RankedPlan struct {
	// Signature is the FNV-64a hash (hex) of the plan's full assignment
	// vector; two candidates with the same placements share it.
	Signature string `json:"signature"`
	// Source is "nominal" or "sample".
	Source string `json:"source"`
	// SampleCount is the number of solved samples whose own optimum had
	// this signature (the nominal candidate may score > 0 here too).
	SampleCount int `json:"sample_count"`
	// NominalCost is the plan's total monthly cost under the unperturbed
	// inputs.
	NominalCost float64 `json:"nominal_cost"`
	// ExpectedRegret and CVaRRegret are the plan's mean and tail regret
	// vs each sample's certified optimum, over the solved samples.
	ExpectedRegret float64 `json:"expected_regret"`
	CVaRRegret     float64 `json:"cvar_regret"`
	// Certificate is the internal/certify summary of the plan checked
	// against the nominal MILP.
	Certificate string `json:"certificate,omitempty"`
	// Chosen marks the plan the ranking selected (exactly one).
	Chosen bool `json:"chosen,omitempty"`
}

// ExcludedSample records one sample left out of the regret statistics:
// its solve degraded to a fallback stage, exhausted a budget, or failed
// outright.
type ExcludedSample struct {
	// Index is the sample's position in the batch (the sample's RNG
	// stream is derived from the batch seed and this index).
	Index int `json:"index"`
	// Stage/Reason/Limit come from the solve's lp.DegradationReport when
	// one exists; Reason alone when the solve failed before producing one.
	Stage  string `json:"stage,omitempty"`
	Reason string `json:"reason"`
	Limit  string `json:"limit,omitempty"`
	// Degraded marks a sample that produced a feasible-but-degraded plan
	// (excluded because its "optimum" carries no optimality certificate).
	Degraded bool `json:"degraded,omitempty"`
}

// RobustReport is the schema of a robustness-harness run.
type RobustReport struct {
	// Schema must equal RobustSchema.
	Schema string `json:"schema"`
	// Dataset names the as-is state; Seed and Samples the batch
	// configuration; CVaRAlpha the tail level of every CVaR figure.
	Dataset   string  `json:"dataset"`
	Seed      int64   `json:"seed"`
	Samples   int     `json:"samples"`
	CVaRAlpha float64 `json:"cvar_alpha"`
	// Spec echoes the uncertainty spec the batch ran under, verbatim.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Sample accounting: SamplesSolved + SamplesExcluded == Samples, and
	// SamplesDegraded ≤ SamplesExcluded (the degraded ones are excluded
	// with their degradation stage recorded).
	SamplesSolved   int `json:"samples_solved"`
	SamplesDegraded int `json:"samples_degraded"`
	SamplesExcluded int `json:"samples_excluded"`
	// NominalCost is the nominal plan's total under nominal inputs.
	NominalCost float64 `json:"nominal_cost"`
	// Regret is the nominal plan's regret distribution across solved
	// samples; nil when no sample solved.
	Regret *RegretStats `json:"regret,omitempty"`
	// Flips lists the unstable group→DC decisions (stable ones omitted).
	Flips []DecisionFlip `json:"flips,omitempty"`
	// Plans is the robustness ranking, best first. Chosen names the
	// selected plan's signature.
	Plans  []RankedPlan `json:"plans"`
	Chosen string       `json:"chosen"`
	// Excluded details each excluded sample, in index order.
	Excluded []ExcludedSample `json:"excluded,omitempty"`
}

// Validate checks the report against the schema contract.
func (r *RobustReport) Validate() error {
	if r.Schema != RobustSchema {
		return fmt.Errorf("obs: robust report schema %q, want %q", r.Schema, RobustSchema)
	}
	if r.Dataset == "" {
		return fmt.Errorf("obs: robust report missing dataset")
	}
	if r.Samples <= 0 {
		return fmt.Errorf("obs: robust report samples %d, want > 0", r.Samples)
	}
	if r.CVaRAlpha < 0 || r.CVaRAlpha >= 1 {
		return fmt.Errorf("obs: robust report cvar_alpha %v, want [0, 1)", r.CVaRAlpha)
	}
	if r.SamplesSolved < 0 || r.SamplesExcluded < 0 || r.SamplesSolved+r.SamplesExcluded != r.Samples {
		return fmt.Errorf("obs: robust report accounting: %d solved + %d excluded != %d samples",
			r.SamplesSolved, r.SamplesExcluded, r.Samples)
	}
	if r.SamplesDegraded < 0 || r.SamplesDegraded > r.SamplesExcluded {
		return fmt.Errorf("obs: robust report has %d degraded samples but only %d excluded",
			r.SamplesDegraded, r.SamplesExcluded)
	}
	if len(r.Excluded) != r.SamplesExcluded {
		return fmt.Errorf("obs: robust report lists %d excluded samples, header says %d",
			len(r.Excluded), r.SamplesExcluded)
	}
	if r.SamplesSolved > 0 {
		if r.Regret == nil {
			return fmt.Errorf("obs: robust report has %d solved samples but no regret stats", r.SamplesSolved)
		}
		if r.Regret.Count != r.SamplesSolved {
			return fmt.Errorf("obs: regret stats cover %d samples, want %d", r.Regret.Count, r.SamplesSolved)
		}
	} else if r.Regret != nil {
		return fmt.Errorf("obs: robust report has regret stats but no solved samples")
	}
	for i, f := range r.Flips {
		if f.GroupID == "" || f.NominalDC == "" {
			return fmt.Errorf("obs: flip %d missing group or nominal DC", i)
		}
		if f.FlipRate <= 0 || f.FlipRate > 1 {
			return fmt.Errorf("obs: flip %q rate %v, want (0, 1]", f.GroupID, f.FlipRate)
		}
		if len(f.Alternatives) == 0 {
			return fmt.Errorf("obs: flip %q lists no alternative sites", f.GroupID)
		}
	}
	if len(r.Plans) == 0 {
		return fmt.Errorf("obs: robust report ranks no plans")
	}
	chosen := 0
	for i, p := range r.Plans {
		if p.Signature == "" {
			return fmt.Errorf("obs: ranked plan %d missing signature", i)
		}
		if p.Source != "nominal" && p.Source != "sample" {
			return fmt.Errorf("obs: ranked plan %q source %q, want nominal or sample", p.Signature, p.Source)
		}
		if p.SampleCount < 0 || p.SampleCount > r.SamplesSolved {
			return fmt.Errorf("obs: ranked plan %q sample count %d outside [0, %d]", p.Signature, p.SampleCount, r.SamplesSolved)
		}
		if p.Chosen {
			chosen++
			if p.Signature != r.Chosen {
				return fmt.Errorf("obs: chosen plan %q disagrees with header %q", p.Signature, r.Chosen)
			}
		}
	}
	if chosen != 1 {
		return fmt.Errorf("obs: robust report marks %d chosen plans, want exactly 1", chosen)
	}
	return nil
}

// WriteRobustReport validates and writes r as indented JSON. The output
// is byte-deterministic: struct field order plus sorted slices, no
// timestamps, no durations.
func WriteRobustReport(w io.Writer, r *RobustReport) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRobustReport parses and validates a ROBUST_<n>.json stream.
// Unknown fields are rejected.
func ReadRobustReport(rd io.Reader) (*RobustReport, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	r := &RobustReport{}
	if err := dec.Decode(r); err != nil {
		return nil, fmt.Errorf("obs: parsing robust report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}
