package obs

import (
	"sync"
	"testing"
)

// TestTailSinkFollow drives the documented tail loop against a
// concurrent emitter: a reader starting from 0 must see every event
// exactly once, in order, and observe done only after Close.
func TestTailSinkFollow(t *testing.T) {
	const n = 500
	s := NewTailSink()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			s.Emit(Event{Seq: int64(i), Kind: KindBound})
		}
		s.Close()
	}()

	var got []Event
	from := 0
	for {
		evs, done, changed := s.Since(from)
		got = append(got, evs...)
		from += len(evs)
		if done {
			// Drain anything that raced between the last read and Close.
			evs, _, _ := s.Since(from)
			got = append(got, evs...)
			break
		}
		if len(evs) == 0 {
			<-changed
		}
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("tailed %d events, want %d", len(got), n)
	}
	for i, e := range got {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
}

// TestTailSinkMultipleReaders: two tailers at different offsets see
// consistent suffixes, and emissions after Close are dropped.
func TestTailSinkMultipleReaders(t *testing.T) {
	s := NewTailSink()
	for i := 1; i <= 10; i++ {
		s.Emit(Event{Seq: int64(i)})
	}
	all, done, _ := s.Since(0)
	if len(all) != 10 || done {
		t.Fatalf("Since(0) = %d events, done=%v", len(all), done)
	}
	tail, _, _ := s.Since(7)
	if len(tail) != 3 || tail[0].Seq != 8 {
		t.Fatalf("Since(7) = %+v", tail)
	}
	if evs, _, _ := s.Since(99); len(evs) != 0 {
		t.Fatalf("Since(beyond) = %d events", len(evs))
	}
	if evs, _, _ := s.Since(-5); len(evs) != 10 {
		t.Fatalf("Since(-5) = %d events, want all 10", len(evs))
	}
	s.Close()
	s.Close() // idempotent
	s.Emit(Event{Seq: 11})
	if got := s.Len(); got != 10 {
		t.Fatalf("emit after close leaked: len = %d", got)
	}
	if _, done, _ := s.Since(10); !done {
		t.Fatal("closed sink not reported done")
	}
}

// TestTailSinkWakesOnClose: a tailer blocked on the change channel with
// no pending events is released by Close alone.
func TestTailSinkWakesOnClose(t *testing.T) {
	s := NewTailSink()
	_, done, changed := s.Since(0)
	if done {
		t.Fatal("fresh sink already done")
	}
	go s.Close()
	<-changed // must not hang
	if _, done, _ := s.Since(0); !done {
		t.Fatal("sink not done after Close")
	}
}
