package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/stepwise"
)

func mkDC(id string, capacity int, space, power, labor, wan float64) model.DataCenter {
	return model.DataCenter{
		ID:                id,
		Location:          geo.Location{ID: "loc-" + id},
		CapacityServers:   capacity,
		SpaceCost:         stepwise.Flat(space),
		PowerCostPerKWh:   power,
		LaborCostPerAdmin: labor,
		WANCostPerMb:      wan,
	}
}

// smallState: 4 groups across 2 current DCs, 3 target DCs.
func smallState(t *testing.T) *model.AsIsState {
	t.Helper()
	pen, err := stepwise.SingleThreshold(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := &model.AsIsState{
		Name: "bl",
		Groups: []model.AppGroup{
			{ID: "g1", Servers: 10, DataMbPerMonth: 100, UsersByLocation: []int{40, 0}, LatencyPenalty: pen, CurrentDC: "c1"},
			{ID: "g2", Servers: 6, DataMbPerMonth: 50, UsersByLocation: []int{0, 25}, CurrentDC: "c1"},
			{ID: "g3", Servers: 14, DataMbPerMonth: 200, UsersByLocation: []int{10, 10}, LatencyPenalty: pen, CurrentDC: "c2"},
			{ID: "g4", Servers: 4, DataMbPerMonth: 20, UsersByLocation: []int{5, 5}, CurrentDC: "c2"},
		},
		UserLocations: []geo.Location{{ID: "u0"}, {ID: "u1"}},
		Current: model.Estate{
			DCs: []model.DataCenter{
				mkDC("c1", 100, 250, 0.18, 9500, 0.06),
				mkDC("c2", 100, 220, 0.16, 9000, 0.05),
			},
			LatencyMs: [][]float64{{6, 18}, {18, 6}},
		},
		Target: model.Estate{
			DCs: []model.DataCenter{
				mkDC("t1", 60, 60, 0.06, 5500, 0.02), // cheap, near u0
				mkDC("t2", 60, 80, 0.08, 6000, 0.02), // near u1
				mkDC("t3", 60, 70, 0.07, 5800, 0.02), // central
			},
			LatencyMs: [][]float64{{5, 20, 10}, {20, 5, 10}},
		},
		Params: model.DefaultParams(),
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestManualPlacesEveryGroup(t *testing.T) {
	s := smallState(t)
	plan, err := Manual(s, ManualOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != len(s.Groups) {
		t.Fatalf("placed %d of %d groups", len(plan.Assignments), len(s.Groups))
	}
	// Re-evaluating the plan must reproduce the embedded breakdown.
	bd, err := model.EvaluatePlan(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() != plan.Cost.Total() {
		t.Errorf("embedded cost %v != re-evaluated %v", plan.Cost.Total(), bd.Total())
	}
}

func TestManualFixedK(t *testing.T) {
	s := smallState(t)
	plan, err := Manual(s, ManualOptions{NumDCs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost.DCsUsed != 1 {
		t.Errorf("k=1 manual used %d DCs", plan.Cost.DCsUsed)
	}
	// t1 is the cheapest by the space rule of thumb.
	for _, a := range plan.Assignments {
		if a.PrimaryDC != "t1" {
			t.Errorf("group %q at %q, want t1", a.GroupID, a.PrimaryDC)
		}
	}
}

func TestManualClosenessRule(t *testing.T) {
	s := smallState(t)
	plan, err := Manual(s, ManualOptions{NumDCs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// c1's profile (6,18) is closest to t1 (5,20); c2's (18,6) to t2 (20,5).
	if got := plan.AssignmentFor("g1").PrimaryDC; got != "t1" {
		t.Errorf("g1 (from c1) at %q, want t1", got)
	}
	if got := plan.AssignmentFor("g3").PrimaryDC; got != "t2" {
		t.Errorf("g3 (from c2) at %q, want t2", got)
	}
}

func TestManualDR(t *testing.T) {
	s := smallState(t)
	plan, err := Manual(s, ManualOptions{DR: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.SecondaryDC == "" || a.SecondaryDC == a.PrimaryDC {
			t.Fatalf("bad DR assignment %+v", a)
		}
	}
	if plan.Cost.TotalBackupServers == 0 {
		t.Error("manual DR provisioned no backups")
	}
	if _, err := model.EvaluatePlan(s, plan); err != nil {
		t.Errorf("manual DR plan fails re-evaluation: %v", err)
	}
}

func TestGreedyPlacesByCost(t *testing.T) {
	s := smallState(t)
	plan, err := Greedy(s, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Latency-sensitive g1 (all users at u0) must avoid t2 (20ms).
	if got := plan.AssignmentFor("g1").PrimaryDC; got == "t2" {
		t.Errorf("greedy put latency-sensitive g1 at t2")
	}
	bd, err := model.EvaluatePlan(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() != plan.Cost.Total() {
		t.Errorf("embedded cost %v != re-evaluated %v", plan.Cost.Total(), bd.Total())
	}
}

func TestGreedyRespectsCapacity(t *testing.T) {
	s := smallState(t)
	for j := range s.Target.DCs {
		s.Target.DCs[j].CapacityServers = 16
	}
	plan, err := Greedy(s, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 34 servers across 16-cap DCs: at least 3 DCs.
	if plan.Cost.DCsUsed < 3 {
		t.Errorf("DCs used = %d", plan.Cost.DCsUsed)
	}
}

func TestGreedyInfeasible(t *testing.T) {
	s := smallState(t)
	for j := range s.Target.DCs {
		s.Target.DCs[j].CapacityServers = 14
	}
	// 34 total > 3×14 = 42 fits, but g3 (14) + g1 (10) + g2 (6) + g4 (4):
	// greedy order g3,g1,g2,g4 → g3 fills one DC completely; remaining
	// 20 into two 14s fits. Shrink further to force failure.
	for j := range s.Target.DCs {
		s.Target.DCs[j].CapacityServers = 11
	}
	// g3 needs 14 > 11 → impossible; Validate catches it first.
	if err := s.Validate(); err == nil {
		t.Fatal("validate should reject oversized group")
	}
	s.Target.DCs[0].CapacityServers = 14
	if _, err := Greedy(s, GreedyOptions{}); err == nil {
		// g3 takes DC0 (14); g1 (10) needs 11-cap DC: fits? 10 ≤ 11 yes…
		// then g2 (6) into remaining 11-cap: fits; g4 (4): 11-6=5 ≥ 4 or
		// DC0 0 left… may fit. Accept either outcome; just exercise path.
		t.Log("greedy found a packing under tight capacity")
	}
}

func TestGreedyDRDedicatedBackups(t *testing.T) {
	s := smallState(t)
	plan, err := Greedy(s, GreedyOptions{DR: true})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range s.Groups {
		total += s.Groups[i].Servers
	}
	// Greedy never shares: backup pool equals the whole estate.
	if plan.Cost.TotalBackupServers != total {
		t.Errorf("greedy DR backups = %d, want dedicated %d", plan.Cost.TotalBackupServers, total)
	}
	for _, a := range plan.Assignments {
		if a.SecondaryDC == "" || a.SecondaryDC == a.PrimaryDC {
			t.Fatalf("bad DR assignment %+v", a)
		}
	}
}

func TestAsIsPlusDR(t *testing.T) {
	s := smallState(t)
	asIs, err := model.EvaluateAsIs(s)
	if err != nil {
		t.Fatal(err)
	}
	withDR, err := AsIsPlusDR(s)
	if err != nil {
		t.Fatal(err)
	}
	if withDR.Total() <= asIs.Total() {
		t.Errorf("as-is+DR (%v) should exceed as-is (%v)", withDR.Total(), asIs.Total())
	}
	// The naive mirror backs up every server: 10+6+14+4 = 34.
	if withDR.TotalBackupServers != 34 {
		t.Errorf("pool = %d, want 34 (full mirror)", withDR.TotalBackupServers)
	}
	if withDR.BackupCapital != 34*s.Params.DRServerCost {
		t.Errorf("capital = %v", withDR.BackupCapital)
	}
}

func TestAsIsPlusDRUsesCheapestMarket(t *testing.T) {
	s := smallState(t)
	withDR, err := AsIsPlusDR(s)
	if err != nil {
		t.Fatal(err)
	}
	// t1 has the lowest rates; the mirror site must be priced there.
	c, ok := withDR.PerDC["t1"]
	if !ok || c.BackupServers != 34 {
		t.Errorf("mirror site not at t1: %+v", withDR.PerDC)
	}
}

// TestBaselinesNeverBeatOptimal is the key sanity property: on random
// instances the LP planner's cost is a lower bound for both heuristics.
// (Verified here structurally via the shared evaluator; the LP planner
// itself is exercised in package core and the experiments tests.)
func TestBaselinesProduceValidPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		s := randomState(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, dr := range []bool{false, true} {
			mp, err := Manual(s, ManualOptions{DR: dr})
			if err == nil {
				if _, err := model.EvaluatePlan(s, mp); err != nil {
					t.Fatalf("trial %d manual dr=%v: %v", trial, dr, err)
				}
			}
			gp, err := Greedy(s, GreedyOptions{DR: dr})
			if err == nil {
				if _, err := model.EvaluatePlan(s, gp); err != nil {
					t.Fatalf("trial %d greedy dr=%v: %v", trial, dr, err)
				}
			}
		}
	}
}

func randomState(rng *rand.Rand) *model.AsIsState {
	users := 2 + rng.Intn(2)
	s := &model.AsIsState{Name: "rand", Params: model.DefaultParams()}
	for u := 0; u < users; u++ {
		s.UserLocations = append(s.UserLocations, geo.Location{ID: fmt.Sprintf("u%d", u)})
	}
	curDCs := 2 + rng.Intn(2)
	for j := 0; j < curDCs; j++ {
		s.Current.DCs = append(s.Current.DCs, mkDC(fmt.Sprintf("c%d", j), 1000,
			float64(150+rng.Intn(150)), 0.1+rng.Float64()*0.1, float64(8000+rng.Intn(2000)), 0.05))
	}
	s.Current.LatencyMs = make([][]float64, users)
	for u := range s.Current.LatencyMs {
		row := make([]float64, curDCs)
		for j := range row {
			row[j] = float64(3 + rng.Intn(25))
		}
		s.Current.LatencyMs[u] = row
	}
	tgtDCs := 3 + rng.Intn(3)
	for j := 0; j < tgtDCs; j++ {
		s.Target.DCs = append(s.Target.DCs, mkDC(fmt.Sprintf("t%d", j), 80+rng.Intn(200),
			float64(40+rng.Intn(120)), 0.04+rng.Float64()*0.12, float64(4000+rng.Intn(5000)), 0.01+rng.Float64()*0.04))
	}
	s.Target.LatencyMs = make([][]float64, users)
	for u := range s.Target.LatencyMs {
		row := make([]float64, tgtDCs)
		for j := range row {
			row[j] = float64(3 + rng.Intn(25))
		}
		s.Target.LatencyMs[u] = row
	}
	groups := 4 + rng.Intn(6)
	for i := 0; i < groups; i++ {
		g := model.AppGroup{
			ID:              fmt.Sprintf("g%d", i),
			Servers:         1 + rng.Intn(12),
			DataMbPerMonth:  float64(rng.Intn(1500)),
			UsersByLocation: make([]int, users),
			CurrentDC:       fmt.Sprintf("c%d", rng.Intn(curDCs)),
		}
		for u := range g.UsersByLocation {
			g.UsersByLocation[u] = rng.Intn(30)
		}
		if rng.Intn(2) == 0 {
			pen, err := stepwise.SingleThreshold(10, float64(50+rng.Intn(150)))
			if err != nil {
				panic(err)
			}
			g.LatencyPenalty = pen
		}
		s.Groups = append(s.Groups, g)
	}
	return s
}
