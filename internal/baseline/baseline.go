// Package baseline implements the two comparison planners from the
// paper's evaluation (§VI-B/§VI-C): the state-of-the-practice *manual*
// consolidation heuristic and a *greedy* cost-based heuristic, each with
// a disaster-recovery variant, plus the "as-is + single backup data
// center" DR reference point. All plans are scored by the shared
// evaluator in package model, so comparisons against the LP planner use
// identical accounting.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"github.com/etransform/etransform/internal/model"
)

// ManualOptions tune the manual heuristic.
type ManualOptions struct {
	// NumDCs is the number of target data centers chosen a priori. When
	// 0, the smallest count whose summed capacity covers the estate's
	// servers (with 20% headroom) is used — the paper's "for instance,
	// say only two data centers" generalized to estates too large for
	// two.
	NumDCs int
	// DR adds the paired-backup-DC scheme of §VI-C.
	DR bool
}

// Manual runs the state-of-the-practice heuristic: choose a fixed set of
// target data centers up front by the cheapest-space rule of thumb, then
// place each application group into the chosen DC "closest" to its
// current location (measured by latency-profile similarity), spilling to
// the next-closest on capacity exhaustion. Latency constraints are never
// consulted — that is the point of the baseline.
func Manual(s *model.AsIsState, opts ManualOptions) (*model.Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	totalServers := 0
	for i := range s.Groups {
		totalServers += s.Groups[i].Servers
	}

	// Rank target DCs by flat space-cost rule of thumb (marginal price of
	// the first server), as a spreadsheet exercise would.
	rank := make([]int, len(s.Target.DCs))
	for j := range rank {
		rank[j] = j
	}
	sort.SliceStable(rank, func(a, b int) bool {
		return s.Target.DCs[rank[a]].SpaceCost.UnitCostAt(0) < s.Target.DCs[rank[b]].SpaceCost.UnitCostAt(0)
	})

	need := float64(totalServers) * 1.2
	if opts.DR {
		// Primaries and their paired backup sites both come from the
		// chosen prefix; backups replicate the largest primary DC load,
		// so reserve room.
		need = float64(totalServers) * 2.2
	}
	k := opts.NumDCs
	if k <= 0 {
		k = 2
		if opts.DR {
			k = 4
		}
		for cap := 0.0; k <= len(rank); k++ {
			cap = 0
			for _, j := range rank[:min(k, len(rank))] {
				cap += float64(s.Target.DCs[j].CapacityServers)
			}
			if cap >= need {
				break
			}
		}
	}
	if k > len(rank) {
		k = len(rank)
	}
	// The capacity rule of thumb can still miss (paired backup sites must
	// absorb whole primary loads); a practitioner would widen the DC set
	// and redo the spreadsheet, so retry with larger k when allowed.
	var lastErr error
	for ; k <= len(rank); k++ {
		plan, err := manualAttempt(s, opts, rank, k)
		if err == nil {
			return plan, nil
		}
		lastErr = err
		if opts.NumDCs > 0 {
			break // an explicit k is not widened
		}
	}
	return nil, lastErr
}

func manualAttempt(s *model.AsIsState, opts ManualOptions, rank []int, k int) (*model.Plan, error) {
	chosen := rank[:k]
	var primaries, backups []int
	if opts.DR {
		if k < 2 {
			return nil, fmt.Errorf("baseline: manual DR needs at least 2 chosen DCs")
		}
		// First half are primary sites, second half their paired backups.
		half := (k + 1) / 2
		primaries = chosen[:half]
		backups = chosen[half:]
	} else {
		primaries = chosen
	}

	placement := make([]int, len(s.Groups))
	free := make([]int, len(s.Target.DCs))
	for j := range free {
		free[j] = s.Target.DCs[j].CapacityServers
	}
	if opts.DR {
		// Reserve backup capacity: backup DC b mirrors its paired
		// primary, so hold back nothing up front; the pool is computed
		// after placement and verified against capacity.
		_ = backups
	}
	for i := range s.Groups {
		g := &s.Groups[i]
		cands := append([]int(nil), primaries...)
		sort.SliceStable(cands, func(a, b int) bool {
			return closeness(s, g, cands[a]) < closeness(s, g, cands[b])
		})
		placed := false
		for _, j := range cands {
			if free[j] >= g.Servers {
				placement[i] = j
				free[j] -= g.Servers
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("baseline: manual heuristic cannot fit group %q into its %d chosen data centers", g.ID, len(primaries))
		}
	}

	plan := &model.Plan{Assignments: make([]model.Assignment, len(s.Groups))}
	var secondary []int
	var pool []int
	if opts.DR {
		// Pair primaries with backups round-robin.
		pairOf := make(map[int]int, len(primaries))
		for idx, a := range primaries {
			pairOf[a] = backups[idx%len(backups)]
		}
		secondary = make([]int, len(s.Groups))
		for i := range s.Groups {
			secondary[i] = pairOf[placement[i]]
		}
		pool = model.RequiredBackups(s, len(s.Target.DCs), placement, secondary)
		for j, n := range pool {
			if n > 0 && n+usedAt(s, placement, j) > s.Target.DCs[j].CapacityServers {
				return nil, fmt.Errorf("baseline: manual DR overflows backup DC %q", s.Target.DCs[j].ID)
			}
		}
		plan.BackupServers = make(map[string]int)
		for j, n := range pool {
			if n > 0 {
				plan.BackupServers[s.Target.DCs[j].ID] = n
			}
		}
	}
	for i := range s.Groups {
		a := model.Assignment{GroupID: s.Groups[i].ID, PrimaryDC: s.Target.DCs[placement[i]].ID}
		if opts.DR {
			a.SecondaryDC = s.Target.DCs[secondary[i]].ID
		}
		plan.Assignments[i] = a
	}
	bd, err := model.Evaluate(s, &s.Target, placement, secondary, pool)
	if err != nil {
		return nil, fmt.Errorf("baseline: manual plan fails evaluation: %w", err)
	}
	plan.Cost = bd
	return plan, nil
}

func usedAt(s *model.AsIsState, placement []int, j int) int {
	n := 0
	for i, p := range placement {
		if p == j {
			n += s.Groups[i].Servers
		}
	}
	return n
}

// closeness measures how similar target DC j's latency profile is to the
// group's current DC — the manual rule "place into the new location
// closest to the current one".
func closeness(s *model.AsIsState, g *model.AppGroup, j int) float64 {
	cur := s.Current.DCIndex(g.CurrentDC)
	if cur < 0 {
		return 0
	}
	d := 0.0
	for r := range s.UserLocations {
		d += math.Abs(s.Current.LatencyMs[r][cur] - s.Target.LatencyMs[r][j])
	}
	return d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
