package baseline

import (
	"fmt"
	"sort"

	"github.com/etransform/etransform/internal/model"
)

// GreedyOptions tune the greedy heuristic.
type GreedyOptions struct {
	// DR places a dedicated backup copy of every group after the primary
	// pass (§VI-C: backup applications are placed like regular ones, with
	// the cost of buying their servers added — no pool sharing).
	DR bool
}

// Greedy runs the paper's greedy comparison algorithm (§VI-B): visit
// application groups in decreasing server count, compute the cost of
// placing each group in every target data center — including the marginal
// tiered space price at current occupancy and the latency penalty — and
// take the cheapest feasible choice. Unlike the LP it never revisits a
// decision, so tight capacities and conflicting latency demands degrade
// it.
func Greedy(s *model.AsIsState, opts GreedyOptions) (*model.Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	order := make([]int, len(s.Groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Groups[order[a]].Servers > s.Groups[order[b]].Servers
	})

	used := make([]int, len(s.Target.DCs))
	placement := make([]int, len(s.Groups))
	for _, i := range order {
		g := &s.Groups[i]
		best, bestCost := -1, 0.0
		for j := range s.Target.DCs {
			if used[j]+g.Servers > s.Target.DCs[j].CapacityServers {
				continue
			}
			c := placementCost(s, g, j, used[j])
			if best < 0 || c < bestCost {
				best, bestCost = j, c
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("baseline: greedy cannot fit group %q anywhere", g.ID)
		}
		placement[i] = best
		used[best] += g.Servers
	}

	var secondary []int
	var pool []int
	if opts.DR {
		secondary = make([]int, len(s.Groups))
		pool = make([]int, len(s.Target.DCs))
		for _, i := range order {
			g := &s.Groups[i]
			best, bestCost := -1, 0.0
			for j := range s.Target.DCs {
				if j == placement[i] {
					continue
				}
				if used[j]+g.Servers > s.Target.DCs[j].CapacityServers {
					continue
				}
				// Dedicated backups: site cost for S_i extra servers plus
				// the purchase price plus the failover latency penalty.
				c := placementCost(s, g, j, used[j]) -
					model.WANCostAt(g, &s.Target, &s.Params, j) + // backups carry no user WAN
					s.Params.DRServerCost*float64(g.Servers)
				if best < 0 || c < bestCost {
					best, bestCost = j, c
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("baseline: greedy DR cannot fit a backup of group %q", g.ID)
			}
			secondary[i] = best
			used[best] += g.Servers
			pool[best] += g.Servers
		}
	}

	plan := &model.Plan{Assignments: make([]model.Assignment, len(s.Groups))}
	for i := range s.Groups {
		a := model.Assignment{GroupID: s.Groups[i].ID, PrimaryDC: s.Target.DCs[placement[i]].ID}
		if opts.DR {
			a.SecondaryDC = s.Target.DCs[secondary[i]].ID
		}
		plan.Assignments[i] = a
	}
	if opts.DR {
		plan.BackupServers = make(map[string]int)
		for j, n := range pool {
			if n > 0 {
				plan.BackupServers[s.Target.DCs[j].ID] = n
			}
		}
	}
	bd, err := model.Evaluate(s, &s.Target, placement, secondary, pool)
	if err != nil {
		return nil, fmt.Errorf("baseline: greedy plan fails evaluation: %w", err)
	}
	plan.Cost = bd
	return plan, nil
}

// placementCost is the greedy's estimate for putting group g at DC j with
// `occupied` servers already there: marginal tiered space, power, labor,
// WAN and latency penalty.
func placementCost(s *model.AsIsState, g *model.AppGroup, j int, occupied int) float64 {
	dc := &s.Target.DCs[j]
	space := dc.SpaceCost.MustEval(float64(occupied+g.Servers)) - dc.SpaceCost.MustEval(float64(occupied))
	c := space + float64(g.Servers)*model.ServerMonthlyCost(dc, &s.Params)
	c += model.WANCostAt(g, &s.Target, &s.Params, j)
	c += model.LatencyPenaltyAt(g, &s.Target, &s.Params, j)
	return c
}
