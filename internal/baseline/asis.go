package baseline

import (
	"fmt"

	"github.com/etransform/etransform/internal/model"
)

// AsIsPlusDR prices the paper's DR reference point (§VI-C): keep the
// as-is placement untouched and add disaster recovery by building a
// single backup data center that acts as the backup of all other data
// centers. Without eTransform's coordinated single-failure analysis, the
// practice is to mirror the estate: every production server gets a
// backup server at the new site. The site is newly built, so it is
// priced at the cheapest target market's rates without a capacity limit;
// its space, power, labor and purchase capital — plus the failover
// latency penalties of every group evaluated there — are added to the
// as-is cost.
func AsIsPlusDR(s *model.AsIsState) (model.CostBreakdown, error) {
	bd, err := model.EvaluateAsIs(s)
	if err != nil {
		return model.CostBreakdown{}, err
	}

	pool := 0
	for i := range s.Groups {
		pool += s.Groups[i].Servers
	}
	if pool == 0 {
		return bd, nil
	}

	// Cheapest target market to build the mirror site in.
	best := -1
	bestCost := 0.0
	p := &s.Params
	for j := range s.Target.DCs {
		dc := &s.Target.DCs[j]
		c := dc.SpaceCost.MustEval(float64(pool)) +
			float64(pool)*(model.ServerMonthlyCost(dc, p)+p.DRServerCost)
		if best < 0 || c < bestCost {
			best, bestCost = j, c
		}
	}
	if best < 0 {
		return model.CostBreakdown{}, fmt.Errorf("baseline: no target data center rates available for the as-is backup site")
	}

	dc := &s.Target.DCs[best]
	space := dc.SpaceCost.MustEval(float64(pool))
	power := p.ServerPowerKW * dc.PowerCostPerKWh * p.HoursPerMonth * float64(pool)
	labor := dc.LaborCostPerAdmin / p.ServersPerAdmin * float64(pool)
	capital := p.DRServerCost * float64(pool)
	bd.Space += space
	bd.Power += power
	bd.Labor += labor
	bd.BackupCapital += capital
	bd.TotalBackupServers += pool

	dcCost := bd.PerDC[dc.ID]
	dcCost.BackupServers += pool
	dcCost.Space += space
	dcCost.Power += power
	dcCost.Labor += labor
	dcCost.BackupCapital += capital
	bd.PerDC[dc.ID] = dcCost

	// Failover latency: every group, if failed over to the mirror site.
	w := p.SecondaryLatencyWeight
	if w > 0 {
		for i := range s.Groups {
			g := &s.Groups[i]
			pen := model.LatencyPenaltyAt(g, &s.Target, &s.Params, best) * w
			if pen > 0 {
				bd.Latency += pen
				bd.LatencyViolations++
			}
		}
	}
	return bd, nil
}
