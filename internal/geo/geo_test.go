package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKmKnownPairs(t *testing.T) {
	nyc := Location{ID: "nyc", LatDeg: 40.7128, LonDeg: -74.0060}
	london := Location{ID: "lon", LatDeg: 51.5074, LonDeg: -0.1278}
	sf := Location{ID: "sfo", LatDeg: 37.7749, LonDeg: -122.4194}

	tests := []struct {
		name    string
		a, b    Location
		wantKm  float64
		tolFrac float64
	}{
		{"nyc-london", nyc, london, 5570, 0.01},
		{"nyc-sf", nyc, sf, 4130, 0.01},
		{"same-point", nyc, nyc, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := DistanceKm(tt.a, tt.b)
			if tt.wantKm == 0 {
				if got != 0 {
					t.Fatalf("DistanceKm = %v, want 0", got)
				}
				return
			}
			if diff := math.Abs(got-tt.wantKm) / tt.wantKm; diff > tt.tolFrac {
				t.Fatalf("DistanceKm = %v, want %v ± %v%%", got, tt.wantKm, tt.tolFrac*100)
			}
		})
	}
}

func TestDistanceKmProperties(t *testing.T) {
	// Symmetry and non-negativity over random coordinates.
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Location{LatDeg: math.Mod(lat1, 90), LonDeg: math.Mod(lon1, 180)}
		b := Location{LatDeg: math.Mod(lat2, 90), LonDeg: math.Mod(lon2, 180)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9 && d1 <= math.Pi*EarthRadiusKm+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewMatrixValidation(t *testing.T) {
	tests := []struct {
		name string
		in   [][]float64
		ok   bool
	}{
		{"valid", [][]float64{{1, 2}, {3, 4}}, true},
		{"empty", nil, false},
		{"empty-row", [][]float64{{}}, false},
		{"ragged", [][]float64{{1, 2}, {3}}, false},
		{"negative", [][]float64{{-1}}, false},
		{"nan", [][]float64{{math.NaN()}}, false},
		{"inf", [][]float64{{math.Inf(1)}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := NewMatrix(tt.in)
			if tt.ok && err != nil {
				t.Fatalf("NewMatrix error: %v", err)
			}
			if !tt.ok {
				if err == nil {
					t.Fatal("NewMatrix succeeded, want error")
				}
				return
			}
			if m.NumUserLocations() != len(tt.in) || m.NumDataCenters() != len(tt.in[0]) {
				t.Fatalf("dims = %d×%d, want %d×%d", m.NumUserLocations(), m.NumDataCenters(), len(tt.in), len(tt.in[0]))
			}
			for u, row := range tt.in {
				for d, v := range row {
					if m.LatencyMs(u, d) != v {
						t.Fatalf("LatencyMs(%d,%d) = %v, want %v", u, d, m.LatencyMs(u, d), v)
					}
				}
			}
		})
	}
}

func TestGeodesicLatency(t *testing.T) {
	nyc := Location{ID: "nyc", LatDeg: 40.7128, LonDeg: -74.0060}
	sf := Location{ID: "sfo", LatDeg: 37.7749, LonDeg: -122.4194}
	g, err := NewGeodesic([]Location{nyc}, []Location{sf, nyc})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-country RTT should be tens of ms; co-located should be just
	// the access overhead.
	cross := g.LatencyMs(0, 0)
	local := g.LatencyMs(0, 1)
	if cross < 30 || cross > 120 {
		t.Errorf("cross-country latency = %v ms, want within [30,120]", cross)
	}
	if local != g.AccessOverheadMs {
		t.Errorf("co-located latency = %v, want access overhead %v", local, g.AccessOverheadMs)
	}
	if g.NumUserLocations() != 1 || g.NumDataCenters() != 2 {
		t.Errorf("dims = %d×%d, want 1×2", g.NumUserLocations(), g.NumDataCenters())
	}
}

func TestNewGeodesicEmpty(t *testing.T) {
	if _, err := NewGeodesic(nil, []Location{{}}); err == nil {
		t.Error("NewGeodesic with no users succeeded, want error")
	}
	if _, err := NewGeodesic([]Location{{}}, nil); err == nil {
		t.Error("NewGeodesic with no DCs succeeded, want error")
	}
}

func TestPaperClassMatrix(t *testing.T) {
	classes := []DCClass{0, 1, 2, 3, PaperDCClassCentral}
	m, err := PaperClassMatrix(classes)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumUserLocations() != PaperUserLocations || m.NumDataCenters() != len(classes) {
		t.Fatalf("dims = %d×%d", m.NumUserLocations(), m.NumDataCenters())
	}
	for u := 0; u < PaperUserLocations; u++ {
		for j, c := range classes {
			got := m.LatencyMs(u, j)
			var want float64
			switch {
			case c == PaperDCClassCentral:
				want = PaperCentralLatencyMs
			case int(c) == u:
				want = PaperNearLatencyMs
			default:
				want = PaperFarLatencyMs
			}
			if got != want {
				t.Errorf("LatencyMs(%d,%d) = %v, want %v (class %v)", u, j, got, want, c)
			}
		}
	}
}

func TestPaperClassMatrixInvalid(t *testing.T) {
	if _, err := PaperClassMatrix(nil); err == nil {
		t.Error("empty classes succeeded, want error")
	}
	if _, err := PaperClassMatrix([]DCClass{DCClass(9)}); err == nil {
		t.Error("invalid class succeeded, want error")
	}
}

func TestDCClassString(t *testing.T) {
	if got := PaperDCClassCentral.String(); got != "central" {
		t.Errorf("central class String = %q", got)
	}
	if got := DCClass(2).String(); got != "near-loc2" {
		t.Errorf("class 2 String = %q", got)
	}
}

func TestLinearTopologyMatrix(t *testing.T) {
	m, err := LinearTopologyMatrix([]int{0, 9}, 10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumUserLocations() != 2 || m.NumDataCenters() != 10 {
		t.Fatalf("dims = %d×%d, want 2×10", m.NumUserLocations(), m.NumDataCenters())
	}
	// User anchored at 0: latency to DC d is 2 + 3d.
	for d := 0; d < 10; d++ {
		if got, want := m.LatencyMs(0, d), 2+3*float64(d); got != want {
			t.Errorf("LatencyMs(0,%d) = %v, want %v", d, got, want)
		}
		if got, want := m.LatencyMs(1, d), 2+3*float64(9-d); got != want {
			t.Errorf("LatencyMs(1,%d) = %v, want %v", d, got, want)
		}
	}
}

func TestLinearTopologyMatrixValidation(t *testing.T) {
	if _, err := LinearTopologyMatrix([]int{0}, 0, 1, 1); err == nil {
		t.Error("zero DCs succeeded, want error")
	}
	if _, err := LinearTopologyMatrix([]int{5}, 3, 1, 1); err == nil {
		t.Error("out-of-range anchor succeeded, want error")
	}
	if _, err := LinearTopologyMatrix([]int{0}, 3, -1, 1); err == nil {
		t.Error("negative base succeeded, want error")
	}
}

func TestLocationString(t *testing.T) {
	if got := (Location{ID: "x", Name: "Dallas"}).String(); got != "Dallas (x)" {
		t.Errorf("String = %q", got)
	}
	if got := (Location{ID: "x"}).String(); got != "x" {
		t.Errorf("String = %q", got)
	}
}
