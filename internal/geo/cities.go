package geo

// Cities is a small embedded gazetteer of metros commonly hosting
// enterprise data centers, for building realistic estates whose latencies
// come from the Geodesic model instead of synthetic class matrices.
var Cities = []Location{
	{ID: "nyc", Name: "New York", LatDeg: 40.7128, LonDeg: -74.0060, Region: RegionNorthAmerica},
	{ID: "chi", Name: "Chicago", LatDeg: 41.8781, LonDeg: -87.6298, Region: RegionNorthAmerica},
	{ID: "dfw", Name: "Dallas", LatDeg: 32.7767, LonDeg: -96.7970, Region: RegionNorthAmerica},
	{ID: "iad", Name: "Ashburn", LatDeg: 39.0438, LonDeg: -77.4874, Region: RegionNorthAmerica},
	{ID: "sjc", Name: "San Jose", LatDeg: 37.3382, LonDeg: -121.8863, Region: RegionNorthAmerica},
	{ID: "sea", Name: "Seattle", LatDeg: 47.6062, LonDeg: -122.3321, Region: RegionNorthAmerica},
	{ID: "atl", Name: "Atlanta", LatDeg: 33.7490, LonDeg: -84.3880, Region: RegionNorthAmerica},
	{ID: "yyz", Name: "Toronto", LatDeg: 43.6532, LonDeg: -79.3832, Region: RegionNorthAmerica},
	{ID: "gru", Name: "São Paulo", LatDeg: -23.5505, LonDeg: -46.6333, Region: RegionSouthAmerica},
	{ID: "scl", Name: "Santiago", LatDeg: -33.4489, LonDeg: -70.6693, Region: RegionSouthAmerica},
	{ID: "lhr", Name: "London", LatDeg: 51.5074, LonDeg: -0.1278, Region: RegionEurope},
	{ID: "fra", Name: "Frankfurt", LatDeg: 50.1109, LonDeg: 8.6821, Region: RegionEurope},
	{ID: "ams", Name: "Amsterdam", LatDeg: 52.3676, LonDeg: 4.9041, Region: RegionEurope},
	{ID: "cdg", Name: "Paris", LatDeg: 48.8566, LonDeg: 2.3522, Region: RegionEurope},
	{ID: "dub", Name: "Dublin", LatDeg: 53.3498, LonDeg: -6.2603, Region: RegionEurope},
	{ID: "mad", Name: "Madrid", LatDeg: 40.4168, LonDeg: -3.7038, Region: RegionEurope},
	{ID: "sin", Name: "Singapore", LatDeg: 1.3521, LonDeg: 103.8198, Region: RegionAsia},
	{ID: "hkg", Name: "Hong Kong", LatDeg: 22.3193, LonDeg: 114.1694, Region: RegionAsia},
	{ID: "nrt", Name: "Tokyo", LatDeg: 35.6762, LonDeg: 139.6503, Region: RegionAsia},
	{ID: "bom", Name: "Mumbai", LatDeg: 19.0760, LonDeg: 72.8777, Region: RegionAsia},
	{ID: "pnq", Name: "Pune", LatDeg: 18.5204, LonDeg: 73.8567, Region: RegionAsia},
	{ID: "icn", Name: "Seoul", LatDeg: 37.5665, LonDeg: 126.9780, Region: RegionAsia},
	{ID: "syd", Name: "Sydney", LatDeg: -33.8688, LonDeg: 151.2093, Region: RegionOceania},
	{ID: "akl", Name: "Auckland", LatDeg: -36.8509, LonDeg: 174.7645, Region: RegionOceania},
}

// CityByID returns the city with the given ID, or false.
func CityByID(id string) (Location, bool) {
	for _, c := range Cities {
		if c.ID == id {
			return c, true
		}
	}
	return Location{}, false
}

// CitiesInRegion returns the gazetteer's cities within a region.
func CitiesInRegion(r Region) []Location {
	var out []Location
	for _, c := range Cities {
		if c.Region == r {
			out = append(out, c)
		}
	}
	return out
}
