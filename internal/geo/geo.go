// Package geo provides the geographic substrate for eTransform: named
// locations, great-circle distances, and latency models that estimate the
// round-trip latency between user locations and candidate data centers.
//
// The planner consumes latency through the LatencyModel interface so that
// synthetic matrices (as used in the paper's evaluation, §VI-B) and
// distance-derived estimates are interchangeable.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0

// Region identifies a coarse geographic / jurisdictional area. Placement
// constraints such as "must stay within the EU" are expressed in terms of
// regions.
type Region string

// Common regions used by the synthetic datasets. The set is open: any
// string is a valid Region.
const (
	RegionNorthAmerica Region = "north-america"
	RegionSouthAmerica Region = "south-america"
	RegionEurope       Region = "europe"
	RegionAsia         Region = "asia"
	RegionOceania      Region = "oceania"
)

// Location is a point on the globe where users reside or where a data
// center can be built.
type Location struct {
	// ID is a stable identifier unique within a dataset.
	ID string `json:"id"`
	// Name is a human-readable label, e.g. "Dallas, TX".
	Name string `json:"name"`
	// LatDeg and LonDeg are WGS84 coordinates in degrees.
	LatDeg float64 `json:"lat_deg"`
	LonDeg float64 `json:"lon_deg"`
	// Region is the coarse area the location belongs to.
	Region Region `json:"region"`
}

// String implements fmt.Stringer.
func (l Location) String() string {
	if l.Name != "" {
		return fmt.Sprintf("%s (%s)", l.Name, l.ID)
	}
	return l.ID
}

// DistanceKm returns the great-circle distance between a and b using the
// haversine formula.
func DistanceKm(a, b Location) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.LatDeg * degToRad
	lat2 := b.LatDeg * degToRad
	dLat := (b.LatDeg - a.LatDeg) * degToRad
	dLon := (b.LonDeg - a.LonDeg) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	// Clamp to guard against floating-point drift pushing h past 1.
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// LatencyModel estimates round-trip latency in milliseconds between a user
// location (by index) and a data center location (by index). Index spaces
// are defined by the dataset that constructed the model.
type LatencyModel interface {
	// LatencyMs returns the round-trip latency between user location u
	// and data center d in milliseconds.
	LatencyMs(u, d int) float64
	// NumUserLocations and NumDataCenters report the model's dimensions.
	NumUserLocations() int
	NumDataCenters() int
}

// Matrix is a LatencyModel backed by an explicit user×DC latency matrix.
// The zero value is unusable; construct with NewMatrix.
type Matrix struct {
	ms    []float64
	users int
	dcs   int
}

var _ LatencyModel = (*Matrix)(nil)

// NewMatrix builds a Matrix from row-major latencies[u][d] data. It
// returns an error if rows are ragged, empty, or contain negative or
// non-finite values.
func NewMatrix(latencies [][]float64) (*Matrix, error) {
	if len(latencies) == 0 || len(latencies[0]) == 0 {
		return nil, fmt.Errorf("geo: latency matrix must be non-empty")
	}
	dcs := len(latencies[0])
	m := &Matrix{users: len(latencies), dcs: dcs, ms: make([]float64, 0, len(latencies)*dcs)}
	for u, row := range latencies {
		if len(row) != dcs {
			return nil, fmt.Errorf("geo: ragged latency matrix: row %d has %d entries, want %d", u, len(row), dcs)
		}
		for d, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("geo: invalid latency %v at [%d][%d]", v, u, d)
			}
			m.ms = append(m.ms, v)
		}
	}
	return m, nil
}

// LatencyMs implements LatencyModel.
func (m *Matrix) LatencyMs(u, d int) float64 { return m.ms[u*m.dcs+d] }

// NumUserLocations implements LatencyModel.
func (m *Matrix) NumUserLocations() int { return m.users }

// NumDataCenters implements LatencyModel.
func (m *Matrix) NumDataCenters() int { return m.dcs }

// Geodesic estimates latency from great-circle distance. Round-trip
// latency is modeled as a fixed access overhead plus distance divided by
// the effective signal speed in fiber (~2/3 c), doubled for the return
// path, times a route-inflation factor accounting for non-geodesic fiber
// paths.
type Geodesic struct {
	users []Location
	dcs   []Location

	// AccessOverheadMs is added to every path (last-mile, serialization).
	AccessOverheadMs float64
	// RouteInflation scales geodesic distance to fiber-route distance.
	RouteInflation float64
}

var _ LatencyModel = (*Geodesic)(nil)

// Speed of light in fiber, km per millisecond (2e5 km/s ≈ 0.2e3 km/ms × …).
const fiberKmPerMs = 200.0

// NewGeodesic builds a Geodesic model over the given user and data center
// locations with conventional defaults (5 ms access overhead, 1.4 route
// inflation).
func NewGeodesic(users, dcs []Location) (*Geodesic, error) {
	if len(users) == 0 || len(dcs) == 0 {
		return nil, fmt.Errorf("geo: geodesic model needs at least one user location and one data center")
	}
	u := make([]Location, len(users))
	copy(u, users)
	d := make([]Location, len(dcs))
	copy(d, dcs)
	return &Geodesic{
		users:            u,
		dcs:              d,
		AccessOverheadMs: 5,
		RouteInflation:   1.4,
	}, nil
}

// LatencyMs implements LatencyModel.
func (g *Geodesic) LatencyMs(u, d int) float64 {
	dist := DistanceKm(g.users[u], g.dcs[d]) * g.RouteInflation
	return g.AccessOverheadMs + 2*dist/fiberKmPerMs
}

// NumUserLocations implements LatencyModel.
func (g *Geodesic) NumUserLocations() int { return len(g.users) }

// NumDataCenters implements LatencyModel.
func (g *Geodesic) NumDataCenters() int { return len(g.dcs) }

// UserDC returns the user and data center locations of the model, for
// callers that need distances (e.g. VPN link pricing).
func (g *Geodesic) UserDC() (users, dcs []Location) { return g.users, g.dcs }
