package geo

import "fmt"

// The paper's §VI-B evaluation uses a synthetic latency structure: clients
// sit in 4 locations; data centers fall into 5 classes — one class per
// client location ("close": 5 ms to that location, 20 ms to the other
// three) plus a "central" class at 10 ms from all four. This file encodes
// that structure so the case-study experiments reproduce it exactly.

// Paper §VI-B latency constants, in milliseconds.
const (
	PaperNearLatencyMs    = 5
	PaperCentralLatencyMs = 10
	PaperFarLatencyMs     = 20
	// PaperUserLocations is the number of client locations in §VI-B.
	PaperUserLocations = 4
)

// DCClass describes which §VI-B class a data center belongs to.
// Classes 0..3 are "close to client location k"; PaperDCClassCentral is
// equidistant from all client locations.
type DCClass int

// PaperDCClassCentral marks the equidistant data center class.
const PaperDCClassCentral DCClass = PaperUserLocations

// Valid reports whether c is one of the five §VI-B classes.
func (c DCClass) Valid() bool { return c >= 0 && c <= PaperDCClassCentral }

// String implements fmt.Stringer.
func (c DCClass) String() string {
	if c == PaperDCClassCentral {
		return "central"
	}
	return fmt.Sprintf("near-loc%d", int(c))
}

// PaperClassMatrix builds the §VI-B latency matrix for data centers with
// the given classes. Data center j in class k<4 has latency 5 ms from
// client location k and 20 ms from the others; a central data center has
// latency 10 ms from every client location.
func PaperClassMatrix(classes []DCClass) (*Matrix, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("geo: need at least one data center class")
	}
	rows := make([][]float64, PaperUserLocations)
	for u := range rows {
		row := make([]float64, len(classes))
		for j, c := range classes {
			if !c.Valid() {
				return nil, fmt.Errorf("geo: invalid data center class %d at index %d", int(c), j)
			}
			switch {
			case c == PaperDCClassCentral:
				row[j] = PaperCentralLatencyMs
			case int(c) == u:
				row[j] = PaperNearLatencyMs
			default:
				row[j] = PaperFarLatencyMs
			}
		}
		rows[u] = row
	}
	return NewMatrix(rows)
}

// LinearTopologyMatrix builds the latency matrix for the §VI-D–F
// sensitivity experiments: n data center locations 0..n-1 on a line with
// latency increasing with the index distance between a user anchor and the
// data center. Users sit at anchor locations (a subset of 0..n-1); the
// latency between user anchor u and data center d is
// base + perHop*|anchor(u)-d|.
func LinearTopologyMatrix(anchors []int, numDCs int, baseMs, perHopMs float64) (*Matrix, error) {
	if numDCs <= 0 {
		return nil, fmt.Errorf("geo: numDCs must be positive, got %d", numDCs)
	}
	if baseMs < 0 || perHopMs < 0 {
		return nil, fmt.Errorf("geo: latencies must be non-negative (base %v, perHop %v)", baseMs, perHopMs)
	}
	rows := make([][]float64, len(anchors))
	for u, a := range anchors {
		if a < 0 || a >= numDCs {
			return nil, fmt.Errorf("geo: user anchor %d out of range [0,%d)", a, numDCs)
		}
		row := make([]float64, numDCs)
		for d := 0; d < numDCs; d++ {
			hops := a - d
			if hops < 0 {
				hops = -hops
			}
			row[d] = baseMs + perHopMs*float64(hops)
		}
		rows[u] = row
	}
	return NewMatrix(rows)
}
