// Package migrate turns a consolidation plan into an executable migration
// schedule: ordered waves of application-group moves from the as-is
// estate into the to-be placement, never overfilling a target data center
// mid-transformation.
//
// The paper produces the end-state plan (§III); carrying an enterprise
// there is itself constrained — a target site can only absorb groups as
// fast as capacity frees up, and groups already at their target must not
// move. The scheduler packs each wave greedily (largest movable groups
// first) subject to the target's free capacity at that point in time,
// optionally capped by a per-wave move budget.
package migrate

import (
	"fmt"
	"sort"

	"github.com/etransform/etransform/internal/model"
)

// Move is one group relocation.
type Move struct {
	GroupID string `json:"group_id"`
	// From is the current site (a current-estate DC ID, or a target DC ID
	// for later waves of multi-step plans).
	From string `json:"from"`
	// To is the destination target DC ID.
	To string `json:"to"`
	// Servers is the group's size, for capacity accounting.
	Servers int `json:"servers"`
}

// Wave is one batch of moves that can execute concurrently.
type Wave struct {
	Number int    `json:"number"`
	Moves  []Move `json:"moves"`
}

// Servers returns the total servers moved in the wave.
func (w *Wave) Servers() int {
	n := 0
	for _, m := range w.Moves {
		n += m.Servers
	}
	return n
}

// Options tune the scheduler.
type Options struct {
	// MaxMovesPerWave caps the number of group moves per wave
	// (0 = unlimited).
	MaxMovesPerWave int
	// MaxServersPerWave caps the servers moved per wave (0 = unlimited).
	MaxServersPerWave int
	// ReserveBackupCapacity holds back each target's backup pool space
	// (Plan.BackupServers) from wave one, so DR provisioning can proceed
	// in parallel with the migration.
	ReserveBackupCapacity bool
}

// Schedule computes the migration waves for a plan. Groups whose current
// site already equals their target (same DC ID across estates) are
// skipped. It returns an error if the plan is unschedulable — i.e. some
// group can never fit because the plan itself overfills a target.
func Schedule(s *model.AsIsState, plan *model.Plan, opts Options) ([]Wave, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Free capacity at each target right now: capacity minus servers of
	// groups already sitting there (same DC ID in both estates) minus any
	// reserved backup pool.
	free := make(map[string]int, len(s.Target.DCs))
	for j := range s.Target.DCs {
		free[s.Target.DCs[j].ID] = s.Target.DCs[j].CapacityServers
	}
	if opts.ReserveBackupCapacity {
		for id, n := range plan.BackupServers {
			if _, ok := free[id]; !ok {
				return nil, fmt.Errorf("migrate: plan has backup pool at unknown DC %q", id)
			}
			free[id] -= n
		}
	}

	type pending struct {
		group  *model.AppGroup
		target string
	}
	var todo []pending
	for i := range s.Groups {
		g := &s.Groups[i]
		a := plan.AssignmentFor(g.ID)
		if a == nil {
			return nil, fmt.Errorf("migrate: plan misses group %q", g.ID)
		}
		if _, ok := free[a.PrimaryDC]; !ok {
			return nil, fmt.Errorf("migrate: plan places %q at unknown DC %q", g.ID, a.PrimaryDC)
		}
		if g.CurrentDC == a.PrimaryDC {
			// Already home: it occupies its target from the start.
			free[a.PrimaryDC] -= g.Servers
			continue
		}
		todo = append(todo, pending{group: g, target: a.PrimaryDC})
	}
	for id, f := range free {
		if f < 0 {
			return nil, fmt.Errorf("migrate: target %q oversubscribed before any move (%d over)", id, -f)
		}
	}

	// Largest groups first within each wave: they are the hardest to
	// place, and early placement frees their legacy rooms soonest.
	sort.SliceStable(todo, func(a, b int) bool {
		if todo[a].group.Servers != todo[b].group.Servers {
			return todo[a].group.Servers > todo[b].group.Servers
		}
		return todo[a].group.ID < todo[b].group.ID
	})

	var waves []Wave
	for len(todo) > 0 {
		wave := Wave{Number: len(waves) + 1}
		var rest []pending
		moved := 0
		servers := 0
		for _, p := range todo {
			overMoveCap := opts.MaxMovesPerWave > 0 && moved >= opts.MaxMovesPerWave
			overSrvCap := opts.MaxServersPerWave > 0 && servers+p.group.Servers > opts.MaxServersPerWave
			if overMoveCap || overSrvCap || free[p.target] < p.group.Servers {
				rest = append(rest, p)
				continue
			}
			wave.Moves = append(wave.Moves, Move{
				GroupID: p.group.ID,
				From:    p.group.CurrentDC,
				To:      p.target,
				Servers: p.group.Servers,
			})
			free[p.target] -= p.group.Servers
			moved++
			servers += p.group.Servers
		}
		if len(wave.Moves) == 0 {
			// No move fit: with capacity-only constraints (moves free
			// legacy space, never target space) this cannot resolve later.
			return nil, fmt.Errorf("migrate: stuck with %d groups unplaced — the plan overfills its targets (first stuck group %q needs %d free at %q, have %d)",
				len(todo), todo[0].group.ID, todo[0].group.Servers, todo[0].target, free[todo[0].target])
		}
		waves = append(waves, wave)
		todo = rest
	}
	return waves, nil
}

// Render formats a schedule for humans.
func Render(waves []Wave) string {
	out := fmt.Sprintf("migration schedule: %d waves\n", len(waves))
	for _, w := range waves {
		out += fmt.Sprintf("  wave %d: %d groups, %d servers\n", w.Number, len(w.Moves), w.Servers())
		for _, m := range w.Moves {
			out += fmt.Sprintf("    %-10s %s → %s (%d servers)\n", m.GroupID, m.From, m.To, m.Servers)
		}
	}
	return out
}
