package migrate

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/stepwise"
)

func mkDC(id string, capacity int) model.DataCenter {
	return model.DataCenter{
		ID: id, Location: geo.Location{ID: "l-" + id},
		CapacityServers: capacity, SpaceCost: stepwise.Flat(50),
	}
}

func mkState(groups []model.AppGroup, currentCaps, targetCaps map[string]int) *model.AsIsState {
	s := &model.AsIsState{Name: "mig", Params: model.DefaultParams()}
	s.UserLocations = []geo.Location{{ID: "u0"}}
	for id, c := range currentCaps {
		s.Current.DCs = append(s.Current.DCs, mkDC(id, c))
	}
	for id, c := range targetCaps {
		s.Target.DCs = append(s.Target.DCs, mkDC(id, c))
	}
	// Deterministic order.
	sortDCs(s.Current.DCs)
	sortDCs(s.Target.DCs)
	s.Current.LatencyMs = [][]float64{make([]float64, len(s.Current.DCs))}
	s.Target.LatencyMs = [][]float64{make([]float64, len(s.Target.DCs))}
	for i := range s.Current.LatencyMs[0] {
		s.Current.LatencyMs[0][i] = 10
	}
	for i := range s.Target.LatencyMs[0] {
		s.Target.LatencyMs[0][i] = 10
	}
	s.Groups = groups
	return s
}

func sortDCs(dcs []model.DataCenter) {
	for i := 1; i < len(dcs); i++ {
		for j := i; j > 0 && dcs[j].ID < dcs[j-1].ID; j-- {
			dcs[j], dcs[j-1] = dcs[j-1], dcs[j]
		}
	}
}

func planFor(assignments map[string]string, backups map[string]int) *model.Plan {
	p := &model.Plan{BackupServers: backups}
	ids := make([]string, 0, len(assignments))
	for id := range assignments {
		ids = append(ids, id)
	}
	// Deterministic.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		p.Assignments = append(p.Assignments, model.Assignment{GroupID: id, PrimaryDC: assignments[id]})
	}
	return p
}

func TestScheduleSingleWave(t *testing.T) {
	groups := []model.AppGroup{
		{ID: "a", Servers: 10, UsersByLocation: []int{1}, CurrentDC: "old1"},
		{ID: "b", Servers: 5, UsersByLocation: []int{1}, CurrentDC: "old1"},
	}
	s := mkState(groups, map[string]int{"old1": 20}, map[string]int{"t1": 40})
	waves, err := Schedule(s, planFor(map[string]string{"a": "t1", "b": "t1"}, nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 1 || len(waves[0].Moves) != 2 {
		t.Fatalf("waves = %+v", waves)
	}
	if waves[0].Servers() != 15 {
		t.Errorf("wave servers = %d", waves[0].Servers())
	}
	// Largest group moves first in the listing.
	if waves[0].Moves[0].GroupID != "a" {
		t.Errorf("first move = %q, want a (largest)", waves[0].Moves[0].GroupID)
	}
}

func TestScheduleSkipsGroupsAlreadyHome(t *testing.T) {
	groups := []model.AppGroup{
		{ID: "a", Servers: 10, UsersByLocation: []int{1}, CurrentDC: "t1"},
		{ID: "b", Servers: 5, UsersByLocation: []int{1}, CurrentDC: "old1"},
	}
	s := mkState(groups, map[string]int{"old1": 10, "t1": 15}, map[string]int{"t1": 16})
	waves, err := Schedule(s, planFor(map[string]string{"a": "t1", "b": "t1"}, nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 1 || len(waves[0].Moves) != 1 || waves[0].Moves[0].GroupID != "b" {
		t.Fatalf("waves = %+v", waves)
	}
}

func TestScheduleMoveBudgetCreatesWaves(t *testing.T) {
	var groups []model.AppGroup
	assignments := map[string]string{}
	for i := 0; i < 7; i++ {
		id := fmt.Sprintf("g%d", i)
		groups = append(groups, model.AppGroup{ID: id, Servers: 2, UsersByLocation: []int{1}, CurrentDC: "old1"})
		assignments[id] = "t1"
	}
	s := mkState(groups, map[string]int{"old1": 20}, map[string]int{"t1": 100})
	waves, err := Schedule(s, planFor(assignments, nil), Options{MaxMovesPerWave: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 3 {
		t.Fatalf("waves = %d, want 3 (7 moves / 3 per wave)", len(waves))
	}
	for i, w := range waves[:2] {
		if len(w.Moves) != 3 {
			t.Errorf("wave %d has %d moves", i+1, len(w.Moves))
		}
	}
}

func TestScheduleServerBudget(t *testing.T) {
	groups := []model.AppGroup{
		{ID: "a", Servers: 8, UsersByLocation: []int{1}, CurrentDC: "old1"},
		{ID: "b", Servers: 7, UsersByLocation: []int{1}, CurrentDC: "old1"},
		{ID: "c", Servers: 2, UsersByLocation: []int{1}, CurrentDC: "old1"},
	}
	s := mkState(groups, map[string]int{"old1": 20}, map[string]int{"t1": 40})
	waves, err := Schedule(s, planFor(map[string]string{"a": "t1", "b": "t1", "c": "t1"}, nil),
		Options{MaxServersPerWave: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range waves {
		if w.Servers() > 10 {
			t.Errorf("wave %d moves %d servers, cap 10", w.Number, w.Servers())
		}
	}
	total := 0
	for _, w := range waves {
		total += len(w.Moves)
	}
	if total != 3 {
		t.Errorf("moved %d groups, want 3", total)
	}
}

func TestScheduleReservesBackupCapacity(t *testing.T) {
	groups := []model.AppGroup{
		{ID: "a", Servers: 10, UsersByLocation: []int{1}, CurrentDC: "old1"},
	}
	s := mkState(groups, map[string]int{"old1": 10}, map[string]int{"t1": 15})
	plan := planFor(map[string]string{"a": "t1"}, map[string]int{"t1": 8})
	// 15 capacity − 8 reserved = 7 < 10 → unschedulable with reservation…
	if _, err := Schedule(s, plan, Options{ReserveBackupCapacity: true}); err == nil {
		t.Fatal("expected unschedulable with reserved backup capacity")
	}
	// …but fine without.
	waves, err := Schedule(s, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 1 {
		t.Fatalf("waves = %d", len(waves))
	}
}

func TestScheduleDetectsOverfilledPlan(t *testing.T) {
	groups := []model.AppGroup{
		{ID: "a", Servers: 10, UsersByLocation: []int{1}, CurrentDC: "old1"},
		{ID: "b", Servers: 10, UsersByLocation: []int{1}, CurrentDC: "old1"},
	}
	s := mkState(groups, map[string]int{"old1": 20}, map[string]int{"t1": 15})
	if _, err := Schedule(s, planFor(map[string]string{"a": "t1", "b": "t1"}, nil), Options{}); err == nil {
		t.Fatal("expected overfill error")
	}
}

func TestScheduleErrors(t *testing.T) {
	groups := []model.AppGroup{
		{ID: "a", Servers: 5, UsersByLocation: []int{1}, CurrentDC: "old1"},
	}
	s := mkState(groups, map[string]int{"old1": 10}, map[string]int{"t1": 10})
	if _, err := Schedule(s, planFor(map[string]string{}, nil), Options{}); err == nil {
		t.Error("missing assignment accepted")
	}
	if _, err := Schedule(s, planFor(map[string]string{"a": "zzz"}, nil), Options{}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := Schedule(s, planFor(map[string]string{"a": "t1"}, map[string]int{"zzz": 1}),
		Options{ReserveBackupCapacity: true}); err == nil {
		t.Error("unknown backup DC accepted")
	}
}

// TestSchedulePropertyAllMovesValid: random plans schedule completely and
// respect capacity at every prefix of execution.
func TestSchedulePropertyAllMovesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		nGroups := 3 + rng.Intn(15)
		nTargets := 2 + rng.Intn(4)
		targets := map[string]int{}
		var tIDs []string
		for j := 0; j < nTargets; j++ {
			id := fmt.Sprintf("t%d", j)
			targets[id] = 20 + rng.Intn(60)
			tIDs = append(tIDs, id)
		}
		var groups []model.AppGroup
		assignments := map[string]string{}
		load := map[string]int{}
		ok := true
		for i := 0; i < nGroups; i++ {
			id := fmt.Sprintf("g%d", i)
			srv := 1 + rng.Intn(12)
			tgt := tIDs[rng.Intn(nTargets)]
			if load[tgt]+srv > targets[tgt] {
				// keep the plan feasible by reassigning
				placed := false
				for _, alt := range tIDs {
					if load[alt]+srv <= targets[alt] {
						tgt = alt
						placed = true
						break
					}
				}
				if !placed {
					ok = false
					break
				}
			}
			load[tgt] += srv
			groups = append(groups, model.AppGroup{
				ID: id, Servers: srv, UsersByLocation: []int{1}, CurrentDC: "old1",
			})
			assignments[id] = tgt
		}
		if !ok {
			continue
		}
		s := mkState(groups, map[string]int{"old1": 1000}, targets)
		budget := 0
		if rng.Intn(2) == 0 {
			budget = 1 + rng.Intn(5)
		}
		waves, err := Schedule(s, planFor(assignments, nil), Options{MaxMovesPerWave: budget})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Replay: capacity never exceeded, every group moved exactly once.
		free := map[string]int{}
		for id, c := range targets {
			free[id] = c
		}
		seen := map[string]bool{}
		for _, w := range waves {
			for _, m := range w.Moves {
				if seen[m.GroupID] {
					t.Fatalf("trial %d: group %q moved twice", trial, m.GroupID)
				}
				seen[m.GroupID] = true
				free[m.To] -= m.Servers
				if free[m.To] < 0 {
					t.Fatalf("trial %d: %q overfilled in wave %d", trial, m.To, w.Number)
				}
			}
		}
		if len(seen) != len(groups) {
			t.Fatalf("trial %d: moved %d of %d groups", trial, len(seen), len(groups))
		}
	}
}

func TestRender(t *testing.T) {
	waves := []Wave{{Number: 1, Moves: []Move{{GroupID: "a", From: "x", To: "y", Servers: 3}}}}
	out := Render(waves)
	for _, want := range []string{"1 waves", "wave 1", "x → y", "3 servers"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
