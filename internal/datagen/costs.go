// Package datagen synthesizes the evaluation datasets of the paper
// (§VI-A): the Enterprise1 multinational estate, the Florida state
// government estate, and the US Federal estate, all scaled per Table II;
// plus the ten-location linear topology used by the sensitivity
// experiments (§VI-D–F). Generation is deterministic given a seed.
//
// The embedded price tables are representative values from the public
// sources the paper cites: colocation space studies (Telegeography),
// IT salary surveys (Global Knowledge), state electricity prices (US
// EIA), and cloud WAN pricing (Amazon EC2). Absolute dollars differ from
// the authors' testbed; the relative spreads — which drive who wins and
// where crossovers fall — are preserved.
package datagen

import (
	"math/rand"

	"github.com/etransform/etransform/internal/stepwise"
)

// usMarket is one metro market a target data center can be built in,
// with representative 2010-era prices: colo space $/server/month at list,
// power ¢/kWh, loaded admin salary $/month, and metered WAN $/Mb.
type usMarket struct {
	name       string
	spaceBase  float64 // $/server/month before volume discounts
	powerKWh   float64 // $/kWh (EIA state averages)
	adminMonth float64 // $/month fully loaded (salary survey)
	wanPerMb   float64 // $/Mb metered (cloud egress-style)
}

// markets holds the embedded market table. Power prices follow the EIA
// state spread (≈4.9–17¢/kWh); salaries follow the coastal/inland split
// of the salary survey; space follows the colo study's tier-1 vs tier-2
// metro spread.
var markets = []usMarket{
	{"dallas-tx", 62, 0.090, 5600, 0.012},
	{"atlanta-ga", 58, 0.082, 5400, 0.013},
	{"chicago-il", 74, 0.102, 6100, 0.015},
	{"ashburn-va", 78, 0.094, 6500, 0.011},
	{"newyork-ny", 132, 0.165, 7900, 0.022},
	{"boston-ma", 118, 0.146, 7400, 0.020},
	{"sanjose-ca", 126, 0.131, 8200, 0.018},
	{"losangeles-ca", 110, 0.129, 7600, 0.019},
	{"seattle-wa", 70, 0.062, 7000, 0.014},
	{"portland-or", 64, 0.074, 6400, 0.013},
	{"denver-co", 66, 0.089, 5900, 0.014},
	{"phoenix-az", 60, 0.098, 5700, 0.013},
	{"kansascity-mo", 54, 0.077, 5300, 0.014},
	{"columbus-oh", 56, 0.085, 5400, 0.013},
	{"raleigh-nc", 57, 0.088, 5500, 0.012},
	{"saltlake-ut", 59, 0.079, 5600, 0.014},
	{"miami-fl", 88, 0.110, 6200, 0.016},
	{"minneapolis-mn", 63, 0.086, 5800, 0.014},
	{"austin-tx", 61, 0.093, 5900, 0.012},
	{"lasvegas-nv", 65, 0.099, 5700, 0.015},
}

// legacySpread describes the as-is estate's cost disadvantage: small
// legacy server rooms pay list-plus prices with no volume discounts —
// the economies eTransform exists to capture (§I: consolidation savings
// come from scale, redundancy elimination and better locations).
type legacySpread struct {
	spaceMin, spaceMax float64
	powerMin, powerMax float64
	adminMin, adminMax float64
	wanMin, wanMax     float64
}

var legacy = legacySpread{
	spaceMin: 150, spaceMax: 300,
	powerMin: 0.09, powerMax: 0.18,
	adminMin: 7200, adminMax: 9800,
	wanMin: 0.04, wanMax: 0.09,
}

// targetSpaceCurve builds the volume-discount space schedule of a target
// DC: list price for the first tier, then 10% off per tier of 100
// servers, floored at 60% of list — the "price per unit decreases as the
// quantity purchased increases" structure of §III-A.
func targetSpaceCurve(base float64) stepwise.Curve {
	c, err := stepwise.VolumeDiscount(base, 100, base*0.10, base*0.60, 5)
	if err != nil {
		// The parameters above are structurally valid for any base > 0;
		// reaching this means a programming error.
		panic(err)
	}
	return c
}

// jitter returns v scaled by a uniform factor in [1−f, 1+f].
func jitter(rng *rand.Rand, v, f float64) float64 {
	return v * (1 - f + 2*f*rng.Float64())
}
