package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/stepwise"
)

// LinearConfig builds the §VI-D–F sensitivity topology: NumDCs data
// centers on a line (location 0 … NumDCs−1) with latency and space cost
// both increasing along the line, users anchored at the two ends, and all
// other costs identical — the setting of Figures 7, 8, 9 and 10.
type LinearConfig struct {
	Name string
	Seed int64
	// NumDCs is the number of target locations (the paper uses 10).
	NumDCs int
	// Groups is the number of application groups.
	Groups int
	// Servers is the total server count; ignored when SingleServer is
	// set (then every group has exactly one server, as in the Figure
	// 9/10 packing experiments).
	Servers      int
	SingleServer bool
	// CapacityPerDC caps every location (2000 in Figure 7/8 so cost
	// drives placement; 100 in Figure 9/10 so packing forces spreading).
	CapacityPerDC int
	// SpaceBase and SpaceSlope set the per-server space cost at location
	// d to SpaceBase + SpaceSlope·d (location 0 cheapest). When
	// SpaceGrowth > 1 the schedule is geometric instead:
	// SpaceBase·SpaceGrowth^d — metro space near the user concentration
	// commands multiplicative premiums (§VI-F's deep space/WAN tradeoff).
	SpaceBase, SpaceSlope float64
	SpaceGrowth           float64
	// LatencyBaseMs and LatencyPerHopMs set latency between a user anchor
	// and location d to base + perHop·|anchor − d|.
	LatencyBaseMs, LatencyPerHopMs float64
	// PenaltyPerUser and ThresholdMs define the uniform latency penalty.
	PenaltyPerUser, ThresholdMs float64
	// UserSplit is the fraction of each group's users at location 0; the
	// remainder sit at the far end (§VI-D varies this across curves).
	UserSplit float64
	// UsersPerGroup is each group's population.
	UsersPerGroup int
	// VPN switches WAN pricing to dedicated links costing
	// VPNLinkBase + VPNPerHop·|anchor − d| per link-month (§VI-F). When
	// VPNGrowth > 1 the lease is geometric instead:
	// VPNLinkBase·VPNGrowth^hops — long-haul links cross more provider
	// segments and price multiplicatively.
	VPN                    bool
	VPNLinkBase, VPNPerHop float64
	VPNGrowth              float64
	// VPNLinkCapacityMb is γ. DataPerGroup is D_i.
	VPNLinkCapacityMb float64
	DataPerGroup      float64
}

// Fig7Config returns the Figure 7 baseline: 190 enterprise1-like groups,
// 10 roomy locations, users split between the ends.
func Fig7Config() LinearConfig {
	return LinearConfig{
		Name: "linear-fig7", Seed: 7,
		NumDCs: 10, Groups: 190, Servers: 1070,
		CapacityPerDC: 2000,
		SpaceBase:     10, SpaceSlope: 5,
		LatencyBaseMs: 2, LatencyPerHopMs: 16,
		PenaltyPerUser: 0, ThresholdMs: 10,
		UserSplit: 0.5, UsersPerGroup: 18,
	}
}

// Fig9Config returns the Figure 9/10 packing setup: single-server groups,
// tight 100-server locations, dedicated VPN links to users at the far
// end.
func Fig9Config() LinearConfig {
	return LinearConfig{
		Name: "linear-fig9", Seed: 9,
		NumDCs: 10, Groups: 190, SingleServer: true,
		CapacityPerDC: 100,
		SpaceBase:     4, SpaceGrowth: 1.9,
		LatencyBaseMs: 2, LatencyPerHopMs: 16,
		PenaltyPerUser: 0, ThresholdMs: 10,
		UserSplit: 0, UsersPerGroup: 10,
		VPN: true, VPNLinkBase: 0.5, VPNGrowth: 2.1,
		VPNLinkCapacityMb: 100, DataPerGroup: 400,
	}
}

// Generate builds the linear-topology state.
func (c LinearConfig) Generate() (*model.AsIsState, error) {
	if c.NumDCs < 2 || c.Groups <= 0 || c.CapacityPerDC <= 0 {
		return nil, fmt.Errorf("datagen: invalid linear config %+v", c)
	}
	if c.UserSplit < 0 || c.UserSplit > 1 {
		return nil, fmt.Errorf("datagen: UserSplit %v outside [0,1]", c.UserSplit)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	s := &model.AsIsState{Name: c.Name, Params: model.DefaultParams()}
	s.Params.VPNLinkCapacityMb = c.VPNLinkCapacityMb
	if !c.VPN {
		s.Params.VPNLinkCapacityMb = 1e6
	}

	far := c.NumDCs - 1
	s.UserLocations = []geo.Location{
		{ID: "users-near", Name: "users at location 0"},
		{ID: "users-far", Name: fmt.Sprintf("users at location %d", far)},
	}

	mtx, err := geo.LinearTopologyMatrix([]int{0, far}, c.NumDCs, c.LatencyBaseMs, c.LatencyPerHopMs)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	lat := make([][]float64, 2)
	for u := range lat {
		row := make([]float64, c.NumDCs)
		for d := range row {
			row[d] = mtx.LatencyMs(u, d)
		}
		lat[u] = row
	}
	s.Target.LatencyMs = lat

	spaceUnit := func(d int) float64 {
		if c.SpaceGrowth > 1 {
			return c.SpaceBase * math.Pow(c.SpaceGrowth, float64(d))
		}
		return c.SpaceBase + c.SpaceSlope*float64(d)
	}
	for d := 0; d < c.NumDCs; d++ {
		s.Target.DCs = append(s.Target.DCs, model.DataCenter{
			ID:              fmt.Sprintf("loc-%d", d),
			Name:            fmt.Sprintf("location %d", d),
			Location:        geo.Location{ID: fmt.Sprintf("linloc-%d", d), Region: geo.RegionNorthAmerica},
			CapacityServers: c.CapacityPerDC,
			SpaceCost:       stepwise.Flat(spaceUnit(d)),
			// "All other costs are the same for all data centers": zero
			// keeps Figure 7's cost axis dominated by space + penalty,
			// matching the paper's magnitudes.
			PowerCostPerKWh:   0,
			LaborCostPerAdmin: 0,
			WANCostPerMb:      0,
		})
	}
	if c.VPN {
		linkCost := func(hops int) float64 {
			if c.VPNGrowth > 1 {
				return c.VPNLinkBase * math.Pow(c.VPNGrowth, float64(hops))
			}
			return c.VPNLinkBase + c.VPNPerHop*float64(hops)
		}
		vpn := make([][]float64, c.NumDCs)
		for d := range vpn {
			vpn[d] = []float64{
				linkCost(d),       // link to users at location 0
				linkCost(far - d), // link to users at the far end
			}
		}
		s.Target.VPNLinkMonthly = vpn
	}

	// One legacy site so as-is accounting works.
	s.Current = model.Estate{
		DCs: []model.DataCenter{{
			ID: "legacy-0", Name: "legacy site",
			Location:        geo.Location{ID: "legacy-loc"},
			CapacityServers: 1 << 20,
			SpaceCost:       stepwise.Flat(legacy.spaceMax),
			PowerCostPerKWh: legacy.powerMax, LaborCostPerAdmin: legacy.adminMax,
			WANCostPerMb: legacy.wanMax,
		}},
		LatencyMs: [][]float64{{15}, {15}},
	}

	var pen stepwise.LatencyPenalty
	if c.PenaltyPerUser > 0 {
		pen, err = stepwise.SingleThreshold(c.ThresholdMs, c.PenaltyPerUser)
		if err != nil {
			return nil, fmt.Errorf("datagen: %w", err)
		}
	}
	var sizes []int
	if c.SingleServer {
		sizes = make([]int, c.Groups)
		for i := range sizes {
			sizes[i] = 1
		}
	} else {
		sizes = drawGroupSizes(rng, c.Groups, c.Servers, c.CapacityPerDC*4/5)
	}
	nearUsers := int(math.Round(float64(c.UsersPerGroup) * c.UserSplit))
	farUsers := c.UsersPerGroup - nearUsers
	for i := 0; i < c.Groups; i++ {
		g := model.AppGroup{
			ID:              fmt.Sprintf("lg-%04d", i),
			Servers:         sizes[i],
			UsersByLocation: []int{nearUsers, farUsers},
			DataMbPerMonth:  c.DataPerGroup,
			CurrentDC:       "legacy-0",
			LatencyPenalty:  pen,
		}
		s.Groups = append(s.Groups, g)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: generated linear state invalid: %w", err)
	}
	return s, nil
}
