package datagen

import (
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
)

func TestEnterprise1MatchesTableII(t *testing.T) {
	s, err := Enterprise1().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Groups) != 190 {
		t.Errorf("groups = %d, want 190", len(s.Groups))
	}
	if len(s.Current.DCs) != 67 {
		t.Errorf("current DCs = %d, want 67", len(s.Current.DCs))
	}
	if len(s.Target.DCs) != 10 {
		t.Errorf("target DCs = %d, want 10", len(s.Target.DCs))
	}
	total := 0
	for i := range s.Groups {
		total += s.Groups[i].Servers
	}
	if total != 1070 {
		t.Errorf("servers = %d, want 1070", total)
	}
	if len(s.UserLocations) != geo.PaperUserLocations {
		t.Errorf("user locations = %d, want %d", len(s.UserLocations), geo.PaperUserLocations)
	}
}

func TestFloridaAndFederalScale(t *testing.T) {
	fl, err := Florida().Generate()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range fl.Groups {
		total += fl.Groups[i].Servers
	}
	if total != 3907 || len(fl.Groups) != 190 || len(fl.Current.DCs) != 43 {
		t.Errorf("florida: %d servers, %d groups, %d current DCs", total, len(fl.Groups), len(fl.Current.DCs))
	}

	fedCfg := Federal()
	if fedCfg.Groups != 1900 || fedCfg.Servers != 42800 || fedCfg.CurrentDCs != 2094 || fedCfg.TargetDCs != 100 {
		t.Errorf("federal config %+v", fedCfg)
	}
	// Generating at 1/10 scale (a bench-sized instance) must succeed.
	fed, err := fedCfg.Scaled(0.1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Groups) != 190 || len(fed.Target.DCs) != 10 {
		t.Errorf("scaled federal: %d groups, %d targets", len(fed.Groups), len(fed.Target.DCs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Enterprise1().Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enterprise1().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != len(b.Groups) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a.Groups {
		if a.Groups[i].Servers != b.Groups[i].Servers || a.Groups[i].CurrentDC != b.Groups[i].CurrentDC {
			t.Fatalf("group %d differs across runs", i)
		}
	}
	for j := range a.Target.DCs {
		if a.Target.DCs[j].CapacityServers != b.Target.DCs[j].CapacityServers {
			t.Fatalf("target DC %d differs across runs", j)
		}
	}
}

func TestUserClasses(t *testing.T) {
	s, err := Enterprise1().Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Classes cycle i mod 5: groups 0–3 single-location, group 4 spread.
	for i := 0; i < 4; i++ {
		nonzero := 0
		for _, c := range s.Groups[i].UsersByLocation {
			if c > 0 {
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Errorf("group %d should have a single user location, has %d", i, nonzero)
		}
	}
	nonzero := 0
	for _, c := range s.Groups[4].UsersByLocation {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != geo.PaperUserLocations {
		t.Errorf("group 4 should be spread, has %d locations", nonzero)
	}
}

func TestLatencySensitiveSplit(t *testing.T) {
	s, err := Enterprise1().Generate()
	if err != nil {
		t.Fatal(err)
	}
	sensitive := 0
	for i := range s.Groups {
		if !s.Groups[i].LatencyPenalty.IsZero() {
			sensitive++
		}
	}
	frac := float64(sensitive) / float64(len(s.Groups))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("latency-sensitive fraction = %v, want ≈0.5", frac)
	}
}

func TestTargetsCheaperThanLegacy(t *testing.T) {
	s, err := Enterprise1().Generate()
	if err != nil {
		t.Fatal(err)
	}
	// The consolidation story requires target sites to undercut legacy
	// rooms on average.
	avgLegacy, avgTarget := 0.0, 0.0
	for j := range s.Current.DCs {
		avgLegacy += s.Current.DCs[j].SpaceCost.UnitCostAt(0)
	}
	avgLegacy /= float64(len(s.Current.DCs))
	for j := range s.Target.DCs {
		avgTarget += s.Target.DCs[j].SpaceCost.UnitCostAt(0)
	}
	avgTarget /= float64(len(s.Target.DCs))
	if avgTarget >= avgLegacy {
		t.Errorf("target space %v not cheaper than legacy %v", avgTarget, avgLegacy)
	}
}

func TestAsIsEvaluates(t *testing.T) {
	s, err := Enterprise1().Generate()
	if err != nil {
		t.Fatal(err)
	}
	bd, err := model.EvaluateAsIs(s)
	if err != nil {
		t.Fatal(err)
	}
	if bd.OperationalCost() <= 0 {
		t.Error("as-is cost must be positive")
	}
	if bd.DCsUsed == 0 {
		t.Error("as-is uses no DCs?")
	}
}

func TestLinearFig7Topology(t *testing.T) {
	cfg := Fig7Config()
	cfg.PenaltyPerUser = 100
	s, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Target.DCs) != 10 || len(s.UserLocations) != 2 {
		t.Fatalf("dims: %d DCs, %d user locs", len(s.Target.DCs), len(s.UserLocations))
	}
	// Space cost increases along the line.
	for d := 1; d < 10; d++ {
		a := s.Target.DCs[d-1].SpaceCost.UnitCostAt(0)
		b := s.Target.DCs[d].SpaceCost.UnitCostAt(0)
		if b <= a {
			t.Errorf("space cost not increasing at %d: %v then %v", d, a, b)
		}
	}
	// Latency from near users grows with distance; far users mirrored.
	if s.Target.LatencyMs[0][0] >= s.Target.LatencyMs[0][9] {
		t.Error("near-user latency should grow along the line")
	}
	if s.Target.LatencyMs[1][9] >= s.Target.LatencyMs[1][0] {
		t.Error("far-user latency should shrink along the line")
	}
	// 50/50 user split.
	g := s.Groups[0]
	if g.UsersByLocation[0] != 9 || g.UsersByLocation[1] != 9 {
		t.Errorf("user split = %v, want 9/9", g.UsersByLocation)
	}
}

func TestLinearFig9VPN(t *testing.T) {
	s, err := Fig9Config().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Target.VPNLinkMonthly) != 10 {
		t.Fatal("VPN matrix missing")
	}
	// Links to the far users get cheaper along the line.
	if s.Target.VPNLinkMonthly[0][1] <= s.Target.VPNLinkMonthly[9][1] {
		t.Error("VPN cost to far users should decrease along the line")
	}
	for i := range s.Groups {
		if s.Groups[i].Servers != 1 {
			t.Fatalf("fig9 groups must be single-server, group %d has %d", i, s.Groups[i].Servers)
		}
	}
}

func TestLinearConfigValidation(t *testing.T) {
	bad := Fig7Config()
	bad.NumDCs = 1
	if _, err := bad.Generate(); err == nil {
		t.Error("NumDCs=1 accepted")
	}
	bad = Fig7Config()
	bad.UserSplit = 1.5
	if _, err := bad.Generate(); err == nil {
		t.Error("UserSplit out of range accepted")
	}
}

func TestCaseStudyConfigValidation(t *testing.T) {
	bad := Enterprise1()
	bad.Groups = 0
	if _, err := bad.Generate(); err == nil {
		t.Error("zero groups accepted")
	}
}

func TestDrawGroupSizes(t *testing.T) {
	sizes := drawGroupSizes(randNew(42), 100, 1000, 200)
	total := 0
	for _, v := range sizes {
		if v < 1 || v > 200 {
			t.Fatalf("size %d out of range", v)
		}
		total += v
	}
	if total != 1000 {
		t.Errorf("total = %d, want 1000", total)
	}
}

func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestGlobalEstate(t *testing.T) {
	s, err := Global().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Groups) != 150 || len(s.Target.DCs) != 10 {
		t.Fatalf("dims: %d groups, %d targets", len(s.Groups), len(s.Target.DCs))
	}
	// Latencies are geodesic: same-city placement is fast, transoceanic slow.
	// User 0 is NYC; target 1 is Ashburn (close), some target is Singapore (far).
	var near, far float64
	for j := range s.Target.DCs {
		switch s.Target.DCs[j].ID {
		case "dc-iad":
			near = s.Target.LatencyMs[0][j]
		case "dc-sin":
			far = s.Target.LatencyMs[0][j]
		}
	}
	if near == 0 || far == 0 || near >= far {
		t.Errorf("geodesic latencies wrong: nyc→iad %v, nyc→sin %v", near, far)
	}
	if far < 100 {
		t.Errorf("transoceanic latency %v ms implausibly low", far)
	}
	// Some groups carry residency constraints, and each has an in-region
	// candidate.
	constrained := 0
	for i := range s.Groups {
		if len(s.Groups[i].AllowedRegions) > 0 {
			constrained++
		}
	}
	if constrained == 0 {
		t.Error("no residency-constrained groups generated")
	}
}

func TestGlobalValidation(t *testing.T) {
	bad := Global()
	bad.UserCities = []string{"atlantis"}
	if _, err := bad.Generate(); err == nil {
		t.Error("unknown city accepted")
	}
	bad = Global()
	bad.Groups = 0
	if _, err := bad.Generate(); err == nil {
		t.Error("zero groups accepted")
	}
}
