package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/stepwise"
)

// CaseStudyConfig describes one of the paper's three case-study datasets
// (Table II). Generate is deterministic given Seed.
type CaseStudyConfig struct {
	Name string
	Seed int64
	// Groups is the number of application groups (Table II).
	Groups int
	// Servers is the estate's total physical server count; group sizes
	// follow the Enterprise1 long-tailed distribution and sum to this.
	Servers int
	// CurrentDCs and TargetDCs are the as-is and candidate location
	// counts.
	CurrentDCs int
	TargetDCs  int
	// LatencySensitiveFraction of groups carry the §VI-B penalty
	// ($PenaltyPerUser per user beyond ThresholdMs).
	LatencySensitiveFraction float64
	PenaltyPerUser           float64
	ThresholdMs              float64
	// UsersPerServer scales group populations (Enterprise1's Figure 2
	// shows ≈18 users per server).
	UsersPerServer float64
	// DataMbPerUser scales monthly traffic.
	DataMbPerUser float64
}

// Enterprise1 returns the multinational-corporation dataset of Figures
// 2–3 and Table II: 67 current DCs, 10 targets, 1070 servers, 190 groups.
func Enterprise1() CaseStudyConfig {
	return CaseStudyConfig{
		Name: "enterprise1", Seed: 1,
		Groups: 190, Servers: 1070, CurrentDCs: 67, TargetDCs: 10,
		LatencySensitiveFraction: 0.5, PenaltyPerUser: 100, ThresholdMs: 10,
		UsersPerServer: 18, DataMbPerUser: 50,
	}
}

// Florida returns the Florida state government dataset (Table II): the
// published study gives 43 current DCs and 3907 servers; group structure
// follows the Enterprise1 distribution, as in the paper.
func Florida() CaseStudyConfig {
	return CaseStudyConfig{
		Name: "florida", Seed: 2,
		Groups: 190, Servers: 3907, CurrentDCs: 43, TargetDCs: 10,
		LatencySensitiveFraction: 0.5, PenaltyPerUser: 100, ThresholdMs: 10,
		UsersPerServer: 18, DataMbPerUser: 50,
	}
}

// Federal returns the US Federal dataset (Table II): 2094 current DCs
// consolidating into 100 targets, 42800 servers, 1900 groups — ten times
// the Enterprise1 group count with the same distribution, as the paper
// assumes.
func Federal() CaseStudyConfig {
	return CaseStudyConfig{
		Name: "federal", Seed: 3,
		Groups: 1900, Servers: 42800, CurrentDCs: 2094, TargetDCs: 100,
		LatencySensitiveFraction: 0.5, PenaltyPerUser: 100, ThresholdMs: 10,
		UsersPerServer: 18, DataMbPerUser: 50,
	}
}

// Scaled shrinks the dataset by factor f (0 < f ≤ 1), preserving its
// proportions — used by the benchmark harness to keep large case studies
// inside a laptop budget, always reported in the output.
func (c CaseStudyConfig) Scaled(f float64) CaseStudyConfig {
	scale := func(n int) int {
		v := int(math.Round(float64(n) * f))
		if v < 2 {
			v = 2
		}
		return v
	}
	c.Name = fmt.Sprintf("%s-x%.2g", c.Name, f)
	c.Groups = scale(c.Groups)
	c.Servers = scale(c.Servers)
	c.CurrentDCs = scale(c.CurrentDCs)
	c.TargetDCs = scale(c.TargetDCs)
	if c.TargetDCs < 5 {
		c.TargetDCs = 5
	}
	return c
}

// Generate builds the dataset.
func (c CaseStudyConfig) Generate() (*model.AsIsState, error) {
	if c.Groups <= 0 || c.Servers < c.Groups || c.CurrentDCs <= 0 || c.TargetDCs <= 0 {
		return nil, fmt.Errorf("datagen: invalid config %+v", c)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	s := &model.AsIsState{Name: c.Name, Params: model.DefaultParams()}

	// The §VI-B user geography: 4 client locations.
	for u := 0; u < geo.PaperUserLocations; u++ {
		s.UserLocations = append(s.UserLocations, geo.Location{
			ID: fmt.Sprintf("users-%d", u), Name: fmt.Sprintf("client region %d", u),
		})
	}

	// Current estate: many small legacy rooms at list-plus prices.
	curLat := make([][]float64, geo.PaperUserLocations)
	for u := range curLat {
		curLat[u] = make([]float64, c.CurrentDCs)
	}
	for j := 0; j < c.CurrentDCs; j++ {
		s.Current.DCs = append(s.Current.DCs, model.DataCenter{
			ID:                fmt.Sprintf("legacy-%d", j),
			Name:              fmt.Sprintf("legacy site %d", j),
			Location:          geo.Location{ID: fmt.Sprintf("lloc-%d", j), Region: geo.RegionNorthAmerica},
			CapacityServers:   0, // set after groups are assigned
			SpaceCost:         stepwise.Flat(legacy.spaceMin + rng.Float64()*(legacy.spaceMax-legacy.spaceMin)),
			PowerCostPerKWh:   legacy.powerMin + rng.Float64()*(legacy.powerMax-legacy.powerMin),
			LaborCostPerAdmin: legacy.adminMin + rng.Float64()*(legacy.adminMax-legacy.adminMin),
			WANCostPerMb:      legacy.wanMin + rng.Float64()*(legacy.wanMax-legacy.wanMin),
		})
		for u := 0; u < geo.PaperUserLocations; u++ {
			curLat[u][j] = 5 + rng.Float64()*20 // legacy sites: 5–25 ms
		}
	}
	s.Current.LatencyMs = curLat

	// Target estate: TargetDCs sites in the five §VI-B latency classes
	// (near each client location, plus central), drawing prices from the
	// market table with volume discounts.
	classes := make([]geo.DCClass, c.TargetDCs)
	for j := range classes {
		classes[j] = geo.DCClass(j % (geo.PaperUserLocations + 1))
	}
	mtx, err := geo.PaperClassMatrix(classes)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	tgtLat := make([][]float64, geo.PaperUserLocations)
	for u := range tgtLat {
		row := make([]float64, c.TargetDCs)
		for j := range row {
			row[j] = mtx.LatencyMs(u, j)
		}
		tgtLat[u] = row
	}
	s.Target.LatencyMs = tgtLat

	// Capacities 100–1000 (§VI-B), re-drawn until the estate fits with DR
	// headroom (total ≥ 2.2× servers, largest failure coverable).
	caps := drawCapacities(rng, c.TargetDCs, c.Servers)
	for j := 0; j < c.TargetDCs; j++ {
		mkt := markets[rng.Intn(len(markets))]
		s.Target.DCs = append(s.Target.DCs, model.DataCenter{
			ID:                fmt.Sprintf("target-%d", j),
			Name:              fmt.Sprintf("%s #%d (%v)", mkt.name, j, classes[j]),
			Location:          geo.Location{ID: fmt.Sprintf("tloc-%d", j), Name: mkt.name, Region: geo.RegionNorthAmerica},
			CapacityServers:   caps[j],
			SpaceCost:         targetSpaceCurve(jitter(rng, mkt.spaceBase, 0.10)),
			PowerCostPerKWh:   jitter(rng, mkt.powerKWh, 0.05),
			LaborCostPerAdmin: jitter(rng, mkt.adminMonth, 0.05),
			WANCostPerMb:      jitter(rng, mkt.wanPerMb, 0.10),
		})
	}

	// Application groups: long-tailed sizes summing to c.Servers, §VI-B
	// user-distribution classes, half latency-sensitive.
	sizes := drawGroupSizes(rng, c.Groups, c.Servers, maxInt(caps)*4/5)
	pen, err := stepwise.SingleThreshold(c.ThresholdMs, c.PenaltyPerUser)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	curLoad := make([]int, c.CurrentDCs)
	for i := 0; i < c.Groups; i++ {
		users := int(math.Max(1, math.Round(float64(sizes[i])*c.UsersPerServer*jitter(rng, 1, 0.3))))
		g := model.AppGroup{
			ID:              fmt.Sprintf("ag-%04d", i),
			Name:            fmt.Sprintf("app group %d", i),
			Servers:         sizes[i],
			UsersByLocation: userClass(i, users),
			DataMbPerMonth:  float64(users) * c.DataMbPerUser,
		}
		if float64(i%100)/100 < c.LatencySensitiveFraction {
			g.LatencyPenalty = pen
		}
		cur := rng.Intn(c.CurrentDCs)
		g.CurrentDC = s.Current.DCs[cur].ID
		curLoad[cur] += g.Servers
		s.Groups = append(s.Groups, g)
	}
	for j := range s.Current.DCs {
		s.Current.DCs[j].CapacityServers = curLoad[j] + 10
	}

	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: generated state invalid: %w", err)
	}
	return s, nil
}

// userClass implements the §VI-B population classes: group i mod 5 ∈
// {0..3} puts all users in that client location; class 4 spreads them
// equally across all four.
func userClass(i, users int) []int {
	out := make([]int, geo.PaperUserLocations)
	class := i % (geo.PaperUserLocations + 1)
	if class < geo.PaperUserLocations {
		out[class] = users
		return out
	}
	base := users / geo.PaperUserLocations
	rem := users % geo.PaperUserLocations
	for u := range out {
		out[u] = base
		if u < rem {
			out[u]++
		}
	}
	return out
}

// drawGroupSizes samples a long-tailed (log-normal) size distribution,
// clamps to [1, maxSize], and adjusts to sum exactly to total.
func drawGroupSizes(rng *rand.Rand, n, total, maxSize int) []int {
	if maxSize < 1 {
		maxSize = 1
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Exp(rng.NormFloat64() * 0.9)
		sum += w[i]
	}
	sizes := make([]int, n)
	assigned := 0
	for i := range sizes {
		v := int(math.Round(w[i] / sum * float64(total)))
		if v < 1 {
			v = 1
		}
		if v > maxSize {
			v = maxSize
		}
		sizes[i] = v
		assigned += v
	}
	// Repair rounding drift deterministically.
	for assigned != total {
		for i := range sizes {
			if assigned < total && sizes[i] < maxSize {
				sizes[i]++
				assigned++
			} else if assigned > total && sizes[i] > 1 {
				sizes[i]--
				assigned--
			}
			if assigned == total {
				break
			}
		}
	}
	return sizes
}

// drawCapacities draws target capacities uniform in [100, 1000] and
// scales the draw up if the estate would not fit with DR headroom.
func drawCapacities(rng *rand.Rand, n, servers int) []int {
	caps := make([]int, n)
	total := 0
	for i := range caps {
		caps[i] = 100 + rng.Intn(901)
		total += caps[i]
	}
	need := servers*22/10 + 1
	if total < need {
		f := float64(need) / float64(total)
		total = 0
		for i := range caps {
			caps[i] = int(math.Ceil(float64(caps[i]) * f))
			total += caps[i]
		}
	}
	return caps
}

func maxInt(v []int) int {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
