package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/stepwise"
)

// GlobalConfig builds a multinational estate on real geography (the
// embedded city gazetteer): user populations in world metros, candidate
// data centers in a chosen subset, and latencies from the geodesic model
// — the Figure 2 world-spanning enterprise, with realistic inputs
// instead of the §VI-B synthetic class matrix. Useful for exercising
// region (data-residency) constraints.
type GlobalConfig struct {
	Name string
	Seed int64
	// Groups and Servers as in CaseStudyConfig.
	Groups  int
	Servers int
	// UserCities and TargetCities are gazetteer IDs; empty selects a
	// default world-spanning set.
	UserCities   []string
	TargetCities []string
	// CurrentDCs legacy sites are spread round-robin across user cities.
	CurrentDCs int
	// LatencySensitiveFraction, PenaltyPerUser, ThresholdMs as in §VI-B;
	// the threshold applies to geodesic latencies, so continental users
	// are satisfiable and transoceanic ones are not.
	LatencySensitiveFraction float64
	PenaltyPerUser           float64
	ThresholdMs              float64
	UsersPerServer           float64
	DataMbPerUser            float64
	// ResidencyFraction of groups are pinned to their majority users'
	// region (AllowedRegions), modeling data-residency law.
	ResidencyFraction float64
}

// Global returns a default world-spanning configuration.
func Global() GlobalConfig {
	return GlobalConfig{
		Name: "global", Seed: 11,
		Groups: 150, Servers: 900, CurrentDCs: 24,
		UserCities:               []string{"nyc", "sjc", "lhr", "fra", "sin", "nrt", "gru", "syd"},
		TargetCities:             []string{"dfw", "iad", "sea", "yyz", "lhr", "ams", "mad", "sin", "icn", "gru"},
		LatencySensitiveFraction: 0.5, PenaltyPerUser: 100, ThresholdMs: 40,
		UsersPerServer: 18, DataMbPerUser: 50,
		ResidencyFraction: 0.3,
	}
}

// Generate builds the estate.
func (c GlobalConfig) Generate() (*model.AsIsState, error) {
	if c.Groups <= 0 || c.Servers < c.Groups || c.CurrentDCs <= 0 {
		return nil, fmt.Errorf("datagen: invalid global config %+v", c)
	}
	if len(c.UserCities) == 0 || len(c.TargetCities) == 0 {
		return nil, fmt.Errorf("datagen: global config needs user and target cities")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	s := &model.AsIsState{Name: c.Name, Params: model.DefaultParams()}

	users := make([]geo.Location, len(c.UserCities))
	for i, id := range c.UserCities {
		city, ok := geo.CityByID(id)
		if !ok {
			return nil, fmt.Errorf("datagen: unknown user city %q", id)
		}
		users[i] = city
	}
	s.UserLocations = users

	targets := make([]geo.Location, len(c.TargetCities))
	for i, id := range c.TargetCities {
		city, ok := geo.CityByID(id)
		if !ok {
			return nil, fmt.Errorf("datagen: unknown target city %q", id)
		}
		targets[i] = city
	}

	// Current estate: legacy rooms co-located with user metros.
	currents := make([]geo.Location, c.CurrentDCs)
	for j := range currents {
		base := users[j%len(users)]
		base.ID = fmt.Sprintf("legacy-%d-%s", j, base.ID)
		currents[j] = base
	}
	curModel, err := geo.NewGeodesic(users, currents)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	tgtModel, err := geo.NewGeodesic(users, targets)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	toMatrix := func(m geo.LatencyModel) [][]float64 {
		rows := make([][]float64, m.NumUserLocations())
		for u := range rows {
			row := make([]float64, m.NumDataCenters())
			for d := range row {
				row[d] = m.LatencyMs(u, d)
			}
			rows[u] = row
		}
		return rows
	}

	for j, loc := range currents {
		s.Current.DCs = append(s.Current.DCs, model.DataCenter{
			ID: loc.ID, Name: "legacy room near " + loc.Name, Location: loc,
			CapacityServers:   0, // set after assignment
			SpaceCost:         stepwise.Flat(legacy.spaceMin + rng.Float64()*(legacy.spaceMax-legacy.spaceMin)),
			PowerCostPerKWh:   legacy.powerMin + rng.Float64()*(legacy.powerMax-legacy.powerMin),
			LaborCostPerAdmin: legacy.adminMin + rng.Float64()*(legacy.adminMax-legacy.adminMin),
			WANCostPerMb:      legacy.wanMin + rng.Float64()*(legacy.wanMax-legacy.wanMin),
		})
		_ = j
	}
	s.Current.LatencyMs = toMatrix(curModel)

	caps := drawCapacities(rng, len(targets), c.Servers)
	for j, loc := range targets {
		mkt := markets[rng.Intn(len(markets))]
		s.Target.DCs = append(s.Target.DCs, model.DataCenter{
			ID: "dc-" + loc.ID, Name: loc.Name, Location: loc,
			CapacityServers:   caps[j],
			SpaceCost:         targetSpaceCurve(jitter(rng, mkt.spaceBase, 0.10)),
			PowerCostPerKWh:   jitter(rng, mkt.powerKWh, 0.05),
			LaborCostPerAdmin: jitter(rng, mkt.adminMonth, 0.05),
			WANCostPerMb:      jitter(rng, mkt.wanPerMb, 0.10),
		})
	}
	s.Target.LatencyMs = toMatrix(tgtModel)

	pen, err := stepwise.SingleThreshold(c.ThresholdMs, c.PenaltyPerUser)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	sizes := drawGroupSizes(rng, c.Groups, c.Servers, maxInt(caps)*4/5)
	curLoad := make([]int, c.CurrentDCs)
	for i := 0; i < c.Groups; i++ {
		nUsers := int(math.Max(1, math.Round(float64(sizes[i])*c.UsersPerServer*jitter(rng, 1, 0.3))))
		// Users concentrated around one home metro with a diaspora tail.
		home := rng.Intn(len(users))
		byLoc := make([]int, len(users))
		byLoc[home] = nUsers * 7 / 10
		rest := nUsers - byLoc[home]
		for rest > 0 {
			u := rng.Intn(len(users))
			byLoc[u]++
			rest--
		}
		g := model.AppGroup{
			ID:              fmt.Sprintf("gg-%04d", i),
			Name:            fmt.Sprintf("global group %d (home %s)", i, users[home].ID),
			Servers:         sizes[i],
			UsersByLocation: byLoc,
			DataMbPerMonth:  float64(nUsers) * c.DataMbPerUser,
		}
		if rng.Float64() < c.LatencySensitiveFraction {
			g.LatencyPenalty = pen
		}
		if rng.Float64() < c.ResidencyFraction {
			g.AllowedRegions = []geo.Region{users[home].Region}
		}
		cur := rng.Intn(c.CurrentDCs)
		g.CurrentDC = s.Current.DCs[cur].ID
		curLoad[cur] += g.Servers
		s.Groups = append(s.Groups, g)
	}
	for j := range s.Current.DCs {
		s.Current.DCs[j].CapacityServers = curLoad[j] + 10
	}

	// Region-pinned groups need in-region capacity; verify reachability.
	for i := range s.Groups {
		g := &s.Groups[i]
		if len(g.AllowedRegions) == 0 {
			continue
		}
		ok := false
		for j := range s.Target.DCs {
			if s.Target.DCs[j].Location.Region == g.AllowedRegions[0] && s.Target.DCs[j].CapacityServers >= g.Servers {
				ok = true
				break
			}
		}
		if !ok {
			// No in-region candidate: drop the residency constraint
			// rather than emit an infeasible estate.
			g.AllowedRegions = nil
		}
	}

	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: generated global state invalid: %w", err)
	}
	return s, nil
}
