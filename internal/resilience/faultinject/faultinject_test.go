package faultinject

import (
	"strings"
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Fire(SitePivot) {
		t.Error("nil injector fired")
	}
	in.MaybePanic(SitePanic) // must not panic
	if in.Hits(SitePivot) != 0 || in.Events() != nil || in.String() != "" {
		t.Error("nil injector reported state")
	}
}

func TestAfterAndCount(t *testing.T) {
	in := New(1, Fault{Kind: KindPivot, After: 3, Count: 2})
	var fired []bool
	for i := 0; i < 6; i++ {
		fired = append(fired, in.Fire(SitePivot))
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (all: %v)", i+1, fired[i], want[i], fired)
		}
	}
	ev := in.Events()
	if len(ev) != 2 || ev[0].Hit != 3 || ev[1].Hit != 4 || ev[0].Kind != KindPivot {
		t.Errorf("events = %+v", ev)
	}
	if !in.Fired(KindPivot) || in.Fired(KindStall) {
		t.Error("Fired misreports")
	}
}

func TestCountForever(t *testing.T) {
	in := New(1, Fault{Kind: KindStall, Count: -1})
	for i := 0; i < 10; i++ {
		if !in.Fire(SiteStall) {
			t.Fatalf("hit %d did not fire under Count=-1", i+1)
		}
	}
}

func TestSitesAreIndependent(t *testing.T) {
	in := New(1, Fault{Kind: KindPanic})
	if in.Fire(SitePivot) || in.Fire(SiteDeadline) {
		t.Error("unarmed site fired")
	}
	if !in.Fire(SitePanic) {
		t.Error("armed site did not fire")
	}
}

func TestProbReplaysWithSeed(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed, Fault{Kind: KindDeadline, Count: -1, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire(SiteDeadline)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-flip sequences (suspicious)")
	}
}

func TestConcurrentFire(t *testing.T) {
	in := New(1, Fault{Kind: KindPanic, After: 50, Count: 3})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.Fire(SitePanic) {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 3 {
		t.Errorf("fired %d times, want exactly 3", fired)
	}
	if in.Hits(SitePanic) != 800 {
		t.Errorf("hits = %d, want 800", in.Hits(SitePanic))
	}
}

func TestMaybePanic(t *testing.T) {
	in := New(1, Fault{Kind: KindPanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MaybePanic did not panic")
		}
		if !strings.Contains(r.(string), SitePanic) {
			t.Errorf("panic value %q does not name the site", r)
		}
	}()
	in.MaybePanic(SitePanic)
}

func TestParseSpec(t *testing.T) {
	tests := []struct {
		spec    string
		want    string // round-tripped String(); "" means nil injector
		wantErr bool
	}{
		{spec: "", want: ""},
		{spec: "  ", want: ""},
		{spec: "pivot", want: "pivot"},
		{spec: "pivot@3", want: "pivot@3"},
		{spec: "stall@3x2", want: "stall@3x2"},
		{spec: "corruptxall", want: "corruptxall"},
		{spec: "panic,deadline@10", want: "deadline@10,panic"},
		{spec: "pivot, stall", want: "pivot,stall"},
		{spec: "bogus", wantErr: true},
		{spec: "pivot@", wantErr: true},
		{spec: "pivot@0", wantErr: true},
		{spec: "pivotx0", wantErr: true},
		{spec: "pivot@2junk", wantErr: true},
	}
	for _, tt := range tests {
		in, err := ParseSpec(tt.spec, 1)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %v", tt.spec, in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tt.spec, err)
			continue
		}
		got := in.String()
		if got != tt.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", tt.spec, got, tt.want)
		}
		if (in == nil) != (tt.want == "") {
			t.Errorf("ParseSpec(%q): nil-ness mismatch", tt.spec)
		}
	}
}

func TestParseSpecRoundTripFires(t *testing.T) {
	in, err := ParseSpec("stall@2x3", 7)
	if err != nil {
		t.Fatal(err)
	}
	got := []bool{}
	for i := 0; i < 6; i++ {
		got = append(got, in.Fire(SiteStall))
	}
	want := []bool{false, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing sequence %v, want %v", got, want)
		}
	}
}
