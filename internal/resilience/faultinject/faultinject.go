// Package faultinject is a deterministic fault-injection harness for the
// solve pipeline. Instrumented code declares named injection *sites*
// (simplex pivot selection, worker loops, deadline checks, …) and asks an
// Injector whether an armed fault fires at each hit. Faults are selected
// by site and hit count, so a given (spec, seed) pair replays the exact
// same failure sequence on every run — every degradation path in the
// fallback chain has a test that actually exercises it, and a field
// failure reproduced from a spec string replays locally.
//
// The zero cost path matters: all methods are safe on a nil *Injector
// and reduce to a single pointer comparison, so production code carries
// the instrumentation permanently and pays nothing when no faults are
// armed.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/etransform/etransform/internal/obs"
)

// Kind is a class of injected fault. Each kind maps to one injection
// site in the solver stack; the instrumented layer decides what "firing"
// means there (returning an error, corrupting a value, panicking, …).
type Kind int

// Fault classes.
const (
	// KindPivot makes the simplex engine report a numerically unusable
	// pivot (an internal solve error) at a pivot-selection step.
	KindPivot Kind = iota + 1
	// KindCorrupt overwrites the simplex solution's objective and first
	// variable with NaN after an otherwise successful solve, modelling a
	// numerically sour subproblem.
	KindCorrupt
	// KindStall simulates endless degenerate cycling: the simplex
	// iteration loop gives up with an iteration-limit status.
	KindStall
	// KindPanic panics inside a branch & bound worker goroutine.
	KindPanic
	// KindDeadline makes the branch & bound coordinator's budget check
	// report expiry regardless of the actual clock.
	KindDeadline
)

// String implements fmt.Stringer; the names double as spec tokens.
func (k Kind) String() string {
	switch k {
	case KindPivot:
		return "pivot"
	case KindCorrupt:
		return "corrupt"
	case KindStall:
		return "stall"
	case KindPanic:
		return "panic"
	case KindDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injection sites. Instrumented packages pass these to Fire; the mapping
// from fault class to site is fixed so spec strings stay stable.
const (
	// SitePivot is hit once per simplex pivot selection.
	SitePivot = "simplex.pivot"
	// SiteCorrupt is hit once per completed simplex solve, just before
	// the solution is returned.
	SiteCorrupt = "simplex.solution"
	// SiteStall is hit once per simplex iteration.
	SiteStall = "simplex.stall"
	// SitePanic is hit once per branch & bound node claim, inside the
	// worker goroutine.
	SitePanic = "milp.worker"
	// SiteDeadline is hit once per coordinator budget check.
	SiteDeadline = "milp.deadline"
)

// siteOf maps a fault class to the site it arms.
func siteOf(k Kind) string {
	switch k {
	case KindPivot:
		return SitePivot
	case KindCorrupt:
		return SiteCorrupt
	case KindStall:
		return SiteStall
	case KindPanic:
		return SitePanic
	case KindDeadline:
		return SiteDeadline
	default:
		return ""
	}
}

// Fault arms one fault class. The zero After/Count values mean "fire on
// the first hit" and "fire once".
type Fault struct {
	// Kind is the fault class.
	Kind Kind
	// After is the 1-based hit index of the fault's site at which the
	// fault starts firing; 0 behaves like 1 (the first hit).
	After int
	// Count is how many consecutive hits fire once started; 0 means 1,
	// negative means every hit forever.
	Count int
	// Prob, when in (0,1), gates each would-be firing on a seeded coin
	// flip, for randomized soak tests. 0 (and ≥ 1) fire unconditionally.
	// The Injector's seed makes the flip sequence replayable.
	Prob float64
}

// Event records one fired fault, for assertions and replay logs.
type Event struct {
	// Site is the injection site that fired.
	Site string
	// Kind is the armed fault class.
	Kind Kind
	// Hit is the 1-based hit count of the site at firing time.
	Hit int
}

// Injector decides, per site hit, whether an armed fault fires. It is
// safe for concurrent use (branch & bound workers hit sites from many
// goroutines) and safe to use as a nil pointer, in which case every
// method is a no-op reporting "no fault".
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	hits    map[string]int
	armed   map[string][]*armedFault
	events  []Event
	trace   *obs.Tracer
	metrics *obs.Metrics
}

type armedFault struct {
	f     Fault
	fired int // hits that actually fired
}

// New returns an Injector arming the given faults, with seed driving the
// probability gates (irrelevant when no fault sets Prob).
func New(seed int64, faults ...Fault) *Injector {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		hits:  make(map[string]int),
		armed: make(map[string][]*armedFault),
	}
	for _, f := range faults {
		if site := siteOf(f.Kind); site != "" {
			in.armed[site] = append(in.armed[site], &armedFault{f: f})
		}
	}
	return in
}

// Fire records one hit of site and reports whether an armed fault fires
// there. Nil-receiver safe; the nil fast path is a single comparison.
func (in *Injector) Fire(site string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[site]++
	hit := in.hits[site]
	for _, af := range in.armed[site] {
		after := af.f.After
		if after <= 0 {
			after = 1
		}
		count := af.f.Count
		if count == 0 {
			count = 1
		}
		if hit < after {
			continue
		}
		if count > 0 && af.fired >= count {
			continue
		}
		if p := af.f.Prob; p > 0 && p < 1 && in.rng.Float64() >= p {
			continue
		}
		af.fired++
		in.events = append(in.events, Event{Site: site, Kind: af.f.Kind, Hit: hit})
		in.metrics.Add(obs.MetricFaultFired, 1)
		in.metrics.Add(obs.MetricFaultFiredPrefix+af.f.Kind.String(), 1)
		if in.trace != nil {
			in.trace.Emit(obs.Event{
				Kind: obs.KindFault, Name: site, Detail: af.f.Kind.String(), Attempt: hit,
			})
		}
		return true
	}
	return false
}

// Observe attaches an observability tracer and metrics registry: every
// subsequently fired fault emits an obs.KindFault event and bumps the
// fault.fired counters. Either argument may be nil; the whole call is a
// no-op on a nil Injector. milp.SolveContext wires this automatically
// when both an injector and an observer are configured.
func (in *Injector) Observe(tr *obs.Tracer, m *obs.Metrics) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.trace = tr
	in.metrics = m
	in.mu.Unlock()
}

// MaybePanic fires the site and, when a fault fires, panics with an
// identifiable message. The panic lives here so instrumented solver
// packages (which forbid panic statically) only ever call a function.
func (in *Injector) MaybePanic(site string) {
	if in.Fire(site) {
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	}
}

// Hits returns how many times site has been hit so far.
func (in *Injector) Hits(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Events returns a copy of every fired event, in firing order.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Fired reports whether any fault of the given kind has fired.
func (in *Injector) Fired(k Kind) bool {
	for _, e := range in.Events() {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// String renders the armed fault set as a parseable spec.
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var parts []string
	for _, afs := range in.armed {
		for _, af := range afs {
			parts = append(parts, formatFault(af.f))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func formatFault(f Fault) string {
	s := f.Kind.String()
	if f.After > 1 {
		s += "@" + strconv.Itoa(f.After)
	}
	if f.Count < 0 {
		s += "xall"
	} else if f.Count > 1 {
		s += "x" + strconv.Itoa(f.Count)
	}
	return s
}

// ParseSpec parses a comma-separated fault list into an Injector. Each
// element is
//
//	kind[@AFTER][xCOUNT|xall]
//
// where kind ∈ {pivot, corrupt, stall, panic, deadline}, AFTER is the
// 1-based site hit at which the fault starts firing (default 1) and
// COUNT is how many consecutive hits fire ("xall" = every hit, default
// 1). Examples:
//
//	pivot            fail the first simplex pivot selection
//	stall@3x2        stall the 3rd and 4th simplex iterations
//	panic,deadline   panic a worker, then force budget expiry
//
// An empty spec returns a nil Injector (injection fully disabled).
func ParseSpec(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var faults []Fault
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, err
		}
		faults = append(faults, f)
	}
	if len(faults) == 0 {
		return nil, nil
	}
	return New(seed, faults...), nil
}

func parseFault(s string) (Fault, error) {
	name := s
	var f Fault
	if i := strings.IndexAny(name, "@x"); i >= 0 {
		name = s[:i]
	}
	switch name {
	case "pivot":
		f.Kind = KindPivot
	case "corrupt":
		f.Kind = KindCorrupt
	case "stall":
		f.Kind = KindStall
	case "panic":
		f.Kind = KindPanic
	case "deadline":
		f.Kind = KindDeadline
	default:
		return Fault{}, fmt.Errorf("faultinject: unknown fault class %q (want pivot|corrupt|stall|panic|deadline)", name)
	}
	rest := s[len(name):]
	for rest != "" {
		switch {
		case strings.HasPrefix(rest, "@"):
			rest = rest[1:]
			n, tail, err := leadingInt(rest)
			if err != nil {
				return Fault{}, fmt.Errorf("faultinject: bad @AFTER in %q: %w", s, err)
			}
			if n < 1 {
				return Fault{}, fmt.Errorf("faultinject: @AFTER must be ≥ 1 in %q", s)
			}
			f.After, rest = n, tail
		case strings.HasPrefix(rest, "xall"):
			f.Count, rest = -1, rest[len("xall"):]
		case strings.HasPrefix(rest, "x"):
			rest = rest[1:]
			n, tail, err := leadingInt(rest)
			if err != nil {
				return Fault{}, fmt.Errorf("faultinject: bad xCOUNT in %q: %w", s, err)
			}
			if n < 1 {
				return Fault{}, fmt.Errorf("faultinject: xCOUNT must be ≥ 1 in %q", s)
			}
			f.Count, rest = n, tail
		default:
			return Fault{}, fmt.Errorf("faultinject: trailing %q in fault %q", rest, s)
		}
	}
	return f, nil
}

func leadingInt(s string) (n int, rest string, err error) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return 0, s, fmt.Errorf("want digits, have %q", s)
	}
	n, err = strconv.Atoi(s[:i])
	return n, s[i:], err
}
