// Package floatcmp implements the etlint analyzer that forbids raw
// `==`/`!=` comparisons (and switch statements) on floating-point
// operands. Raw float equality is almost always a numerical-robustness
// bug in solver code; the fix is to state intent through the helpers in
// internal/tol: tol.Eq (approximate), tol.IsZero (exact sparsity test),
// tol.Same (exact propagation test), tol.IsInt (integrality). Package
// internal/tol itself is exempt — it is where the allowed primitives
// live.
package floatcmp

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"github.com/etransform/etransform/internal/lint/analysis"
)

// Analyzer flags float equality comparisons outside internal/tol.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= and switch on float operands outside internal/tol; " +
		"use tol.Eq/tol.Same/tol.IsZero/tol.IsInt to state intent",
	Run: run,
}

// exemptSuffix marks the one package allowed to compare floats directly.
const exemptSuffix = "internal/tol"

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && (pass.Pkg.Path() == exemptSuffix || strings.HasSuffix(pass.Pkg.Path(), "/"+exemptSuffix)) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if floatOperand(pass, n.X) || floatOperand(pass, n.Y) {
					pass.Reportf(n.OpPos, fmt.Sprintf(
						"float %s comparison; use internal/tol (tol.Eq, tol.IsZero, tol.Same, …)", n.Op))
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && floatOperand(pass, n.Tag) {
					pass.Reportf(n.Switch, "switch on float value; use internal/tol comparisons in an if/else chain")
				}
			}
			return true
		})
	}
	return nil
}

func floatOperand(pass *analysis.Pass, e ast.Expr) bool {
	if pass.TypesInfo == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	return analysis.IsFloat(tv.Type)
}
