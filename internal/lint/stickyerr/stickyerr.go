// Package stickyerr implements the etlint analyzer that enforces the
// lp package's sticky-error contract: lp.Model records its first
// construction error instead of panicking, and lp.Solution carries a
// Status — so consuming either without looking at the error channel
// first silently computes on sanitized garbage.
//
// Two value families are tracked through the CFG:
//
//   - Solutions: a local variable of (pointer to) lp.Solution assigned
//     from a call is "unchecked". Reading sol.X, sol.Objective,
//     sol.DualValues, or calling sol.Value() is flagged unless at least
//     one path from the definition mentioned sol.Status, nil/len-checked
//     sol.X, mentioned an error variable returned by the same call, or
//     passed sol to a function known (via an exported StatusCheckerFact)
//     to check its solution parameter.
//
//   - Models: a variable of (pointer to) lp.Model becomes "dirty" when a
//     mutator (AddVar, AddContinuous, AddBinary, AddRow, SetCost,
//     SetBounds) is called on it. Calling a consumer (Objective,
//     RowActivity, CheckFeasible) on a dirty model is flagged unless
//     some path mentioned m.Err() after the last mutation.
//
// "At least one path" is deliberate: the contract is that the error is
// looked at somewhere before the value is consumed, not that every
// branch re-checks it. Solution-typed parameters are tracked like
// locals: a function consuming a parameter without ever looking at its
// Status pushes the contract onto its callers invisibly, so it must
// either check (which makes it a StatusChecker — exported as a fact so
// its callers get credit for passing a solution to it) or carry an
// //etlint:ignore with the reviewed caller-side argument.
package stickyerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/etransform/etransform/internal/lint/analysis"
)

// Analyzer is the stickyerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "stickyerr",
	Doc:  "flags lp.Solution/lp.Model consumption with no path checking Status/Err() first",
	Run:  run,
}

// StatusCheckerFact is exported on a function that checks the
// Status/X/error of one of its lp.Solution parameters, so call sites
// treat passing a solution to it as a check.
type StatusCheckerFact struct {
	// Params holds the zero-based indices of the checked parameters.
	Params []int
}

// AFact marks StatusCheckerFact as a serializable analysis fact.
func (*StatusCheckerFact) AFact() {}

var solutionUses = map[string]bool{"X": true, "Objective": true, "DualValues": true, "Value": true}
var modelMutators = map[string]bool{
	"AddVar": true, "AddContinuous": true, "AddBinary": true,
	"AddRow": true, "SetCost": true, "SetBounds": true,
}
var modelConsumers = map[string]bool{"Objective": true, "RowActivity": true, "CheckFeasible": true}

func run(pass *analysis.Pass) error {
	// Phase 1: export StatusCheckerFacts for every function in this
	// package before analyzing bodies, so same-package call sites see
	// them regardless of declaration order.
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				exportCheckerFact(pass, fd)
			}
		}
	}
	// Phase 2: per-function dataflow.
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// isLP reports whether t is (a pointer to) the named lp type.
func isLP(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "lp"
}

// exportCheckerFact exports a StatusCheckerFact if fd checks any of its
// lp.Solution parameters.
func exportCheckerFact(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Params == nil {
		return
	}
	var params []types.Object
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isLP(obj.Type(), "Solution") {
				params = append(params, obj)
			} else {
				params = append(params, nil)
			}
			idx++
		}
		if len(field.Names) == 0 {
			params = append(params, nil)
			idx++
		}
	}
	var checked []int
	for i, p := range params {
		if p == nil {
			continue
		}
		if mentionsCheck(pass, fd.Body, p) {
			checked = append(checked, i)
		}
	}
	if len(checked) == 0 {
		return
	}
	if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
		pass.ExportObjectFact(obj, &StatusCheckerFact{Params: checked})
	}
}

// mentionsCheck reports whether body contains a check of obj: a
// obj.Status mention, obj.X == nil, or len(obj.X).
func mentionsCheck(pass *analysis.Pass, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			if sel.Sel.Name == "Status" || sel.Sel.Name == "Err" {
				found = true
			}
		}
		return !found
	})
	// nil/len checks of obj.X count too; they are matched structurally.
	if !found {
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			if isNilOrLenCheck(pass, n, obj) {
				found = true
			}
			return !found
		})
	}
	return found
}

// isNilOrLenCheck matches `obj.X == nil`, `obj.X != nil`, and
// `len(obj.X)`.
func isNilOrLenCheck(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	matchSel := func(e ast.Expr) bool {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "X" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	switch n := n.(type) {
	case *ast.BinaryExpr:
		if n.Op != token.EQL && n.Op != token.NEQ {
			return false
		}
		isNil := func(e ast.Expr) bool { id, ok := e.(*ast.Ident); return ok && id.Name == "nil" }
		return (matchSel(n.X) && isNil(n.Y)) || (isNil(n.X) && matchSel(n.Y))
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "len" && len(n.Args) == 1 {
			return matchSel(n.Args[0])
		}
	}
	return false
}

// funcState is the per-variable tracking state threaded through the
// may-checked dataflow. Sets are keyed by types.Object.
type funcState struct {
	pass *analysis.Pass
	// tracked solutions: locals assigned from a call in this function.
	trackedSol map[types.Object]bool
	// errFor maps an error variable to the solution(s) assigned by the
	// same call: mentioning the error checks the solution.
	errFor map[types.Object][]types.Object
	// dirtyModel: models mutated in this function.
	dirtyModel map[types.Object]bool
	// reported dedups diagnostics per use position.
	reported map[token.Pos]bool
}

// checkFunc runs the may-checked forward analysis over fd's CFG.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	st := &funcState{
		pass:       pass,
		trackedSol: make(map[types.Object]bool),
		errFor:     make(map[types.Object][]types.Object),
		dirtyModel: make(map[types.Object]bool),
		reported:   make(map[token.Pos]bool),
	}
	// Solution-typed parameters are tracked too: a function that consumes
	// a parameter's X/Objective on every path without ever looking at its
	// Status pushes the whole contract onto its callers invisibly. (A
	// parameter that is checked makes the function a StatusChecker, which
	// is what gives its callers credit — see exportCheckerFact.)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil && isLP(obj.Type(), "Solution") {
					st.trackedSol[obj] = true
				}
			}
		}
	}
	// Pre-scan: find tracked solutions, error links, and dirty models.
	// Tracking membership is flow-insensitive; only "checked" is
	// flow-sensitive.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.recordAssign(n)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && modelMutators[sel.Sel.Name] {
				if obj := identObj(pass, sel.X); obj != nil && isLP(obj.Type(), "Model") {
					st.dirtyModel[obj] = true
				}
			}
		}
		return true
	})
	if len(st.trackedSol) == 0 && len(st.dirtyModel) == 0 {
		return
	}

	cfg := analysis.BuildCFG(fd.Body)
	// checked[i] is the may-checked object set at block i entry; union
	// meet, so sets only grow — iterate to fixpoint.
	checked := make([]map[types.Object]bool, len(cfg.Blocks))
	for i := range checked {
		checked[i] = make(map[types.Object]bool)
	}
	// Seed the worklist with every block (not just the entry): a block's
	// own check events must propagate even when its entry set never
	// grows from the empty bottom.
	work := make([]*analysis.Block, len(cfg.Blocks))
	for i, b := range cfg.Blocks {
		work[len(cfg.Blocks)-1-i] = b
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := cloneObjs(checked[b.Index])
		for _, n := range b.Nodes {
			st.transfer(n, out, false)
		}
		for _, s := range b.Succs {
			if addAll(checked[s.Index], out) {
				work = append(work, s)
			}
		}
	}
	// Reporting pass with converged entry sets.
	for _, b := range cfg.Blocks {
		out := cloneObjs(checked[b.Index])
		for _, n := range b.Nodes {
			st.transfer(n, out, true)
		}
	}
}

// recordAssign tracks `sol, err := f(...)`-style definitions.
func (st *funcState) recordAssign(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	if _, ok := as.Rhs[0].(*ast.CallExpr); !ok {
		return
	}
	var sols []types.Object
	var errs []types.Object
	for _, lhs := range as.Lhs {
		obj := identObj(st.pass, lhs)
		if obj == nil {
			continue
		}
		if isLP(obj.Type(), "Solution") {
			st.trackedSol[obj] = true
			sols = append(sols, obj)
		} else if isErrorType(obj.Type()) {
			errs = append(errs, obj)
		}
	}
	for _, e := range errs {
		st.errFor[e] = append(st.errFor[e], sols...)
	}
}

// transfer interprets one CFG node in source order against the checked
// set, optionally reporting unchecked uses.
func (st *funcState) transfer(n ast.Node, checked map[types.Object]bool, report bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		// Check patterns first: they must win over the use patterns that
		// structurally contain them.
		if isAnyNilOrLenCheck(st, n, checked) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures see the state at creation; their own flow is
			// approximated lexically.
			st.transfer(n.Body, checked, report)
			return false
		case *ast.CallExpr:
			st.transferCall(n, checked, report, walk)
			return false
		case *ast.SelectorExpr:
			obj := identObj(st.pass, n.X)
			if obj == nil {
				return true
			}
			switch {
			case n.Sel.Name == "Status" && isLP(obj.Type(), "Solution"):
				checked[obj] = true
				return false
			case solutionUses[n.Sel.Name] && st.trackedSol[obj] && n.Sel.Name != "Value":
				if report && !checked[obj] && !st.reported[n.Pos()] {
					st.reported[n.Pos()] = true
					st.pass.Reportf(n.Pos(), obj.Name()+"."+n.Sel.Name+
						" used with no path checking "+obj.Name()+".Status or the solve error first")
				}
				return false
			}
			return true
		case *ast.Ident:
			// Mentioning an error variable linked to a solution counts as
			// the check (if err != nil { … }, return err, errors.Join…).
			if obj := st.pass.TypesInfo.Uses[n]; obj != nil {
				for _, sol := range st.errFor[obj] {
					checked[sol] = true
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(n, walk)
}

// transferCall handles method calls (checks, mutators, consumers,
// Value) and checker-fact call sites.
func (st *funcState) transferCall(call *ast.CallExpr, checked map[types.Object]bool, report bool, walk func(ast.Node) bool) {
	// len(sol.X) was handled by the caller's check patterns.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := identObj(st.pass, sel.X); obj != nil {
			switch {
			case sel.Sel.Name == "Err" && isLP(obj.Type(), "Model"):
				checked[obj] = true
				return
			case modelMutators[sel.Sel.Name] && isLP(obj.Type(), "Model"):
				// A fresh mutation invalidates an earlier Err() check.
				delete(checked, obj)
				for _, a := range call.Args {
					ast.Inspect(a, walk)
				}
				return
			case modelConsumers[sel.Sel.Name] && st.dirtyModel[obj] && isLP(obj.Type(), "Model"):
				if report && !checked[obj] && !st.reported[call.Pos()] {
					st.reported[call.Pos()] = true
					st.pass.Reportf(call.Pos(), obj.Name()+"."+sel.Sel.Name+
						"() called on a mutated model with no path checking "+obj.Name()+".Err() first")
				}
				for _, a := range call.Args {
					ast.Inspect(a, walk)
				}
				return
			case sel.Sel.Name == "Value" && st.trackedSol[obj]:
				if report && !checked[obj] && !st.reported[call.Pos()] {
					st.reported[call.Pos()] = true
					st.pass.Reportf(call.Pos(), obj.Name()+".Value() used with no path checking "+
						obj.Name()+".Status or the solve error first")
				}
				for _, a := range call.Args {
					ast.Inspect(a, walk)
				}
				return
			}
		}
	}
	// Checker-fact call sites: passing a tracked solution to a function
	// that checks its solution parameter counts as the check.
	if fn := calleeObj(st.pass, call.Fun); fn != nil {
		var fact StatusCheckerFact
		if st.pass.ImportObjectFact(fn, &fact) {
			for _, i := range fact.Params {
				if i < len(call.Args) {
					if obj := identObj(st.pass, call.Args[i]); obj != nil {
						checked[obj] = true
					}
				}
			}
		}
	}
	ast.Inspect(call.Fun, walk)
	for _, a := range call.Args {
		ast.Inspect(a, walk)
	}
}

// isAnyNilOrLenCheck recognizes `sol.X == nil` / `len(sol.X)` for any
// tracked solution, marking it checked.
func isAnyNilOrLenCheck(st *funcState, n ast.Node, checked map[types.Object]bool) bool {
	hit := false
	for obj := range st.trackedSol {
		if isNilOrLenCheck(st.pass, n, obj) {
			checked[obj] = true
			hit = true
		}
	}
	return hit
}

func cloneObjs(m map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// addAll unions src into dst, reporting whether dst grew.
func addAll(dst, src map[types.Object]bool) bool {
	grew := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			grew = true
		}
	}
	return grew
}

// calleeObj resolves a call's static callee (function or method), or
// nil for dynamic calls.
func calleeObj(pass *analysis.Pass, fun ast.Expr) types.Object {
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// identObj resolves a (possibly parenthesized) identifier expression to
// its object.
func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return iface.NumMethods() == 1 && iface.Method(0).Name() == "Error" &&
		strings.HasPrefix(iface.Method(0).Type().String(), "func() string")
}
