package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFor parses a function body and builds its CFG.
func buildFor(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f(x int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BuildCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// reachable returns the set of blocks reachable from the entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// blockOf finds the block holding the first node matching pred.
func blockOf(c *CFG, pred func(ast.Node) bool) *Block {
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			hit := false
			ast.Inspect(n, func(m ast.Node) bool {
				if m != nil && pred(m) {
					hit = true
				}
				return !hit
			})
			if hit {
				return b
			}
		}
	}
	return nil
}

func isAssignTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) == 0 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestCFGStraightLine(t *testing.T) {
	c := buildFor(t, "a := 1\nb := a\n_ = b")
	r := reachable(c)
	if !r[c.Exit] {
		t.Error("exit unreachable in straight-line code")
	}
	if b := blockOf(c, isAssignTo("a")); b == nil || !r[b] {
		t.Error("straight-line statement not in a reachable block")
	}
}

func TestCFGNilBody(t *testing.T) {
	c := BuildCFG(nil)
	if !reachable(c)[c.Exit] {
		t.Error("nil body: exit must be reachable from entry")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	c := buildFor(t, "if x > 0 {\n a := 1\n _ = a\n}\nb := 2\n_ = b")
	r := reachable(c)
	then := blockOf(c, isAssignTo("a"))
	after := blockOf(c, isAssignTo("b"))
	if then == nil || after == nil {
		t.Fatal("blocks not found")
	}
	if !r[then] || !r[after] || !r[c.Exit] {
		t.Error("then branch, fallthrough, and exit must all be reachable")
	}
	// The missing else means the condition block must reach `after`
	// without passing through `then`.
	cond := blockOf(c, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		return ok && be.Op == token.GTR
	})
	if cond == nil {
		t.Fatal("condition block not found")
	}
	direct := false
	for _, s := range cond.Succs {
		if s == after {
			direct = true
		}
	}
	if !direct {
		t.Error("if without else: condition block lacks the skip edge")
	}
}

func TestCFGReturnTerminatesPath(t *testing.T) {
	c := buildFor(t, "return\na := 1\n_ = a")
	r := reachable(c)
	if !r[c.Exit] {
		t.Error("exit unreachable")
	}
	if b := blockOf(c, isAssignTo("a")); b == nil {
		t.Error("unreachable code lost from the graph")
	} else if r[b] {
		t.Error("code after return must be unreachable")
	}
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	c := buildFor(t, "panic(x)\na := 1\n_ = a")
	r := reachable(c)
	if b := blockOf(c, isAssignTo("a")); b == nil || r[b] {
		t.Error("code after panic must exist but be unreachable")
	}
}

func TestCFGInfiniteLoop(t *testing.T) {
	c := buildFor(t, "for {\n a := 1\n _ = a\n}")
	r := reachable(c)
	if r[c.Exit] {
		t.Error("conditionless for without break must not reach exit")
	}
	if b := blockOf(c, isAssignTo("a")); b == nil || !r[b] {
		t.Error("loop body must be reachable")
	}
}

func TestCFGLoopBreak(t *testing.T) {
	c := buildFor(t, "for {\n if x > 0 {\n  break\n }\n}\na := 1\n_ = a")
	r := reachable(c)
	if b := blockOf(c, isAssignTo("a")); b == nil || !r[b] {
		t.Error("break must make the code after the loop reachable")
	}
	if !r[c.Exit] {
		t.Error("exit unreachable after break")
	}
}

func TestCFGForBackEdge(t *testing.T) {
	c := buildFor(t, "for i := 0; i < x; i++ {\n a := i\n _ = a\n}")
	body := blockOf(c, isAssignTo("a"))
	if body == nil {
		t.Fatal("loop body not found")
	}
	// Following the body's successor chain must come back around to the
	// body: the back edge through the post block and the condition.
	if !reachableFrom(body)[body] {
		t.Error("loop body cannot reach itself: missing back edge")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	c := buildFor(t, "for i := range make([]int, x) {\n a := i\n _ = a\n}\nb := 1\n_ = b")
	r := reachable(c)
	body := blockOf(c, isAssignTo("a"))
	after := blockOf(c, isAssignTo("b"))
	if body == nil || after == nil || !r[body] || !r[after] {
		t.Fatal("range body and after-block must both be reachable (empty collection skips the body)")
	}
	if !reachableFrom(body)[body] {
		t.Error("range body cannot reach itself: missing back edge")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := buildFor(t, "switch x {\ncase 1:\n a := 1\n _ = a\n fallthrough\ncase 2:\n b := 2\n _ = b\n}")
	first := blockOf(c, isAssignTo("a"))
	second := blockOf(c, isAssignTo("b"))
	if first == nil || second == nil {
		t.Fatal("clause blocks not found")
	}
	if !reachableFrom(first)[second] {
		t.Error("fallthrough must chain the first clause into the second")
	}
}

func TestCFGContinueSkipsSwitch(t *testing.T) {
	// continue inside a switch inside a loop must target the loop, so
	// the loop body can reach itself.
	c := buildFor(t, "for i := 0; i < x; i++ {\n switch i {\n case 1:\n  continue\n }\n a := i\n _ = a\n}")
	body := blockOf(c, isAssignTo("a"))
	if body == nil {
		t.Fatal("loop tail not found")
	}
	if !reachableFrom(body)[body] {
		t.Error("continue through a switch frame broke the loop back edge")
	}
	if !reachable(c)[c.Exit] {
		t.Error("exit unreachable")
	}
}

// reachableFrom is reachable() seeded at an arbitrary block.
func reachableFrom(start *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	work := []*Block{start}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
