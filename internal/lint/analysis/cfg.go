package analysis

import (
	"go/ast"
	"go/token"
)

// This file implements the lightweight intra-procedural control-flow
// graph the dataflow analyzers (lockguard, stickyerr) run over. It is a
// deliberately small re-implementation of the shape of
// golang.org/x/tools/go/cfg on the standard library alone: one Block
// per straight-line statement run, successor edges for every structured
// control transfer, and a distinguished exit block that every return
// path reaches.
//
// Precision contract — what the CFG does and does not model:
//
//   - if/else, for, range, switch, type switch, and select produce
//     exact branch edges, including missing-else fallthrough and
//     conditionless-for back edges;
//   - break and continue resolve to the innermost enclosing loop or
//     switch (labeled break/continue resolve through the label stack);
//   - return and calls to panic end a path (edge to the exit block);
//   - goto is approximated as an edge to the exit block: the analyzers
//     built on this CFG are must-analyses, so giving up on a path is
//     conservative (it can cause a false positive, never a false
//     negative, and the repository's production code contains no goto);
//   - defer is not modeled as control flow; analyzers that care about
//     deferred calls (lockguard's deferred Unlock) inspect DeferStmt
//     nodes directly.
type CFG struct {
	// Blocks in allocation order; Blocks[0] is the entry block.
	Blocks []*Block
	// Entry is the function's entry block.
	Entry *Block
	// Exit is the distinguished empty block reached by falling off the
	// end of the function, every return statement, and every panic.
	Exit *Block
}

// Block is one straight-line run of statements: control enters at the
// first node and leaves only after the last.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes are the statements and expressions executed in order. For
	// condition blocks the node is the condition expression itself.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// addSucc appends s to b's successors if not already present.
func (b *Block) addSucc(s *Block) {
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	cfg *CFG
	// frames tracks enclosing breakable/continuable constructs, innermost
	// last. A nil continueTo marks a non-loop frame (switch/select).
	frames []cfgFrame
}

type cfgFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

// BuildCFG constructs the control-flow graph of body. A nil body (a
// declaration without a body, e.g. an external function) yields a CFG
// whose entry is also its exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	entry := b.newBlock()
	exit := b.newBlock()
	b.cfg.Entry = entry
	b.cfg.Exit = exit
	if body == nil {
		entry.addSucc(exit)
		return b.cfg
	}
	last := b.stmts(entry, body.List)
	if last != nil {
		last.addSucc(exit)
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// stmts threads the statement list through cur, returning the block
// control falls out of, or nil when every path terminated (return,
// break, …).
func (b *cfgBuilder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminating statement: give it a
			// fresh disconnected block so its nodes still exist for
			// position queries, but keep it out of the live flow.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s, "")
	}
	return cur
}

// stmt threads one statement; label is the pending label name when the
// statement came from a LabeledStmt.
func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt, label string) *Block {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenBlk := b.newBlock()
		cur.addSucc(thenBlk)
		after := b.newBlock()
		thenEnd := b.stmts(thenBlk, s.Body.List)
		if thenEnd != nil {
			thenEnd.addSucc(after)
		}
		if s.Else != nil {
			elseBlk := b.newBlock()
			cur.addSucc(elseBlk)
			elseEnd := b.stmt(elseBlk, s.Else, "")
			if elseEnd != nil {
				elseEnd.addSucc(after)
			}
		} else {
			cur.addSucc(after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		cur.addSucc(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		post.addSucc(head)
		if s.Cond != nil {
			head.addSucc(after)
		}
		bodyBlk := b.newBlock()
		head.addSucc(bodyBlk)
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: after, continueTo: post})
		bodyEnd := b.stmts(bodyBlk, s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if bodyEnd != nil {
			bodyEnd.addSucc(post)
		}
		return after

	case *ast.RangeStmt:
		cur.Nodes = append(cur.Nodes, s.X)
		head := b.newBlock()
		cur.addSucc(head)
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		after := b.newBlock()
		head.addSucc(after) // empty collection
		bodyBlk := b.newBlock()
		head.addSucc(bodyBlk)
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: after, continueTo: head})
		bodyEnd := b.stmts(bodyBlk, s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if bodyEnd != nil {
			bodyEnd.addSucc(head)
		}
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, s.Body, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(cur, s.Body, label, nil)

	case *ast.SelectStmt:
		return b.switchBody(cur, s.Body, label, func(c *ast.CommClause, blk *Block) {
			if c.Comm != nil {
				blk.Nodes = append(blk.Nodes, c.Comm)
			}
		})

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.addSucc(b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findFrame(s.Label, false); t != nil {
				cur.addSucc(t)
			} else {
				cur.addSucc(b.cfg.Exit)
			}
		case token.CONTINUE:
			if t := b.findFrame(s.Label, true); t != nil {
				cur.addSucc(t)
			} else {
				cur.addSucc(b.cfg.Exit)
			}
		case token.GOTO:
			// Approximated as path end; see the precision contract above.
			cur.addSucc(b.cfg.Exit)
		case token.FALLTHROUGH:
			// Handled structurally by switchBody; reaching here means a
			// malformed tree — treat as fallthrough to the next statement.
			return cur
		}
		return nil

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if isPanicCall(s.X) {
			cur.addSucc(b.cfg.Exit)
			return nil
		}
		return cur

	default:
		// Assignments, declarations, sends, go/defer, inc/dec, empty:
		// straight-line statements.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody wires the clause blocks of a switch/type-switch/select.
// Each clause gets its own block branching from cur; fallthrough chains
// to the next clause's block. prep, when non-nil, seeds a select
// clause's comm statement into its block.
func (b *cfgBuilder) switchBody(cur *Block, body *ast.BlockStmt, label string, prep func(*ast.CommClause, *Block)) *Block {
	after := b.newBlock()
	var clauseBlocks []*Block
	var clauseStmts [][]ast.Stmt
	hasDefault := false
	for _, cl := range body.List {
		blk := b.newBlock()
		cur.addSucc(blk)
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			if cl.List == nil {
				hasDefault = true
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseStmts = append(clauseStmts, cl.Body)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			if prep != nil {
				prep(cl, blk)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseStmts = append(clauseStmts, cl.Body)
		}
	}
	if !hasDefault {
		// No default: the whole construct may be skipped (select without
		// default blocks forever, but a conservative skip edge only widens
		// the must-analysis).
		cur.addSucc(after)
	}
	b.frames = append(b.frames, cfgFrame{label: label, breakTo: after})
	for i, blk := range clauseBlocks {
		stmts := clauseStmts[i]
		// Peel a trailing fallthrough: it transfers to the next clause.
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		end := b.stmts(blk, stmts)
		if end != nil {
			if fallsThrough && i+1 < len(clauseBlocks) {
				end.addSucc(clauseBlocks[i+1])
			} else {
				end.addSucc(after)
			}
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	return after
}

// findFrame resolves a break/continue target. continueTo selects loop
// frames only (continue skips switch frames).
func (b *cfgBuilder) findFrame(label *ast.Ident, wantContinue bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != nil && f.label != label.Name {
			continue
		}
		if wantContinue {
			if f.continueTo != nil {
				return f.continueTo
			}
			if label == nil {
				continue // continue skips non-loop frames
			}
			continue
		}
		return f.breakTo
	}
	return nil
}

// isPanicCall reports whether e is a direct call to the predeclared
// panic. Type information is not needed: a shadowed panic only makes
// the CFG end a path early, which is conservative for must-analyses.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
