package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file implements the //etlint:ignore directive, the uniform
// suppression mechanism honored by every analyzer. Syntax:
//
//	//etlint:ignore <analyzer> <reason>
//
// Placed as a trailing (or standalone) comment, the directive
// suppresses diagnostics of the named analyzer on the directive's own
// line. Placed in a function's doc comment, it suppresses the analyzer
// within the entire function body. The reason is mandatory: a directive
// without one is itself reported as malformed, and every directive —
// used or not — surfaces in the `etlint -ignores` audit so suppressions
// stay reviewable.

// Ignore is one parsed //etlint:ignore directive.
type Ignore struct {
	// Analyzer is the suppressed analyzer's name ("*" never matches; the
	// directive requires an explicit name).
	Analyzer string
	// Reason is the mandatory free-text justification.
	Reason string
	// File and Line locate the directive itself.
	File string
	Line int
	// FromLine/ToLine delimit the suppressed region. For a trailing
	// directive both equal Line; for a func-doc directive they span the
	// declaration.
	FromLine, ToLine int
	// Func is the enclosing function's name for doc-comment directives,
	// empty for line directives. Display only.
	Func string
	// Used records whether the directive suppressed at least one
	// diagnostic this run; the driver sets it.
	Used bool
	// Malformed carries a parse problem ("missing reason"); malformed
	// directives suppress nothing and are reported.
	Malformed string
}

const ignorePrefix = "//etlint:ignore"

// CollectIgnores extracts every //etlint:ignore directive from f,
// resolving doc-comment directives to their declaration's line span.
func CollectIgnores(fset *token.FileSet, f *ast.File) []*Ignore {
	// Doc comments are reachable from their decls; map each comment group
	// to the decl span it governs.
	type span struct {
		from, to int
		name     string
	}
	docSpan := make(map[*ast.CommentGroup]span)
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				docSpan[d.Doc] = span{
					from: fset.Position(d.Pos()).Line,
					to:   fset.Position(d.End()).Line,
					name: d.Name.Name,
				}
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				docSpan[d.Doc] = span{
					from: fset.Position(d.Pos()).Line,
					to:   fset.Position(d.End()).Line,
				}
			}
		}
	}

	var out []*Ignore
	for _, cg := range f.Comments {
		sp, isDoc := docSpan[cg]
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			ig := &Ignore{File: pos.Filename, Line: pos.Line, FromLine: pos.Line, ToLine: pos.Line}
			if isDoc {
				ig.FromLine, ig.ToLine, ig.Func = sp.from, sp.to, sp.name
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //etlint:ignorexyz — not our directive
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				ig.Malformed = "missing analyzer name and reason"
			case len(fields) == 1:
				ig.Analyzer = fields[0]
				ig.Malformed = "missing reason"
			default:
				ig.Analyzer = fields[0]
				ig.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, ig)
		}
	}
	return out
}

// Suppresses reports whether ig covers a diagnostic of analyzer at
// (file, line).
func (ig *Ignore) Suppresses(analyzer, file string, line int) bool {
	return ig.Malformed == "" &&
		ig.Analyzer == analyzer &&
		ig.File == file &&
		line >= ig.FromLine && line <= ig.ToLine
}
