package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// This file implements the cross-analyzer facts mechanism: an analyzer
// running on one package can attach a serializable Fact to an exported
// object (function, type, field), and analyzers running later — on the
// same package or on a package that imports it — can query that fact at
// a call site. It mirrors the shape of golang.org/x/tools/go/analysis
// facts without the dependency: facts are plain structs serialized with
// encoding/json, keyed by a stable object path, and the driver feeds
// packages through the store in dependency order so importers always
// see their dependencies' facts.

// Fact is a serializable datum attached to a types.Object. Implementing
// types must be JSON-encodable structs; the AFact marker method keeps
// arbitrary values out of the store.
type Fact interface{ AFact() }

// FactStore holds the facts exported so far in one analysis run. Facts
// are stored serialized (the JSON round-trip is taken eagerly on
// export), so a fact that cannot survive per-package serialization is
// rejected at the export site, not when a downstream package needs it.
type FactStore struct {
	facts map[factKey]json.RawMessage
}

type factKey struct {
	obj string // stable object path, see ObjectKey
	typ string // fact type name, see factType
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[factKey]json.RawMessage)}
}

// Export serializes fact and attaches it to obj, replacing any existing
// fact of the same type on the same object.
func (s *FactStore) Export(obj types.Object, fact Fact) error {
	if obj == nil {
		return fmt.Errorf("analysis: fact exported on nil object")
	}
	raw, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("analysis: fact %s on %s does not serialize: %v", factType(fact), ObjectKey(obj), err)
	}
	s.facts[factKey{obj: ObjectKey(obj), typ: factType(fact)}] = raw
	return nil
}

// Import looks up a fact of fact's dynamic type on obj, decoding into
// fact (which must be a pointer) and reporting whether one was found.
func (s *FactStore) Import(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	raw, ok := s.facts[factKey{obj: ObjectKey(obj), typ: factType(fact)}]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, fact) == nil
}

// PackageFacts serializes every fact attached to objects of the given
// package path, in sorted key order — the per-package artifact a driver
// could persist between runs. The format is one JSON object keyed by
// "objectKey\x00factType".
func (s *FactStore) PackageFacts(pkgPath string) ([]byte, error) {
	flat := make(map[string]json.RawMessage)
	for k, v := range s.facts {
		if pkgOfKey(k.obj) == pkgPath {
			flat[k.obj+"\x00"+k.typ] = v
		}
	}
	// encoding/json sorts object keys, so equal stores yield equal bytes.
	return json.Marshal(flat)
}

// AddPackageFacts merges a PackageFacts artifact back into the store.
func (s *FactStore) AddPackageFacts(data []byte) error {
	flat := make(map[string]json.RawMessage)
	if err := json.Unmarshal(data, &flat); err != nil {
		return fmt.Errorf("analysis: corrupt package facts: %v", err)
	}
	for k, v := range flat {
		obj, typ, ok := strings.Cut(k, "\x00")
		if !ok {
			return fmt.Errorf("analysis: corrupt fact key %q", k)
		}
		s.facts[factKey{obj: obj, typ: typ}] = v
	}
	return nil
}

// Keys returns every fact's "objectKey [factType]" rendering, sorted —
// used by audits and tests.
func (s *FactStore) Keys() []string {
	out := make([]string, 0, len(s.facts))
	for k := range s.facts {
		out = append(out, k.obj+" ["+k.typ+"]")
	}
	sort.Strings(out)
	return out
}

// ObjectKey renders a stable, human-readable path for an object:
// pkgpath.Name for package-level objects, pkgpath.(Recv).Method for
// methods, and pkgpath.Type.Field for struct fields. Objects without a
// package (builtins) key under "_".
func ObjectKey(obj types.Object) string {
	pkg := "_"
	if p := obj.Pkg(); p != nil {
		pkg = p.Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return pkg + ".(" + recvName(sig.Recv().Type()) + ")." + fn.Name()
		}
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// A field's parent struct is not reachable from the object alone;
		// fields are keyed by position-independent name under the package
		// with an explicit field marker so they cannot collide with
		// package-level variables of the same name.
		return pkg + ".field." + v.Name() + "@" + fmt.Sprint(v.Pos())
	}
	return pkg + "." + obj.Name()
}

// pkgOfKey recovers the package path prefix of an ObjectKey.
func pkgOfKey(key string) string {
	i := strings.LastIndex(key, "/")
	rest := key
	prefix := ""
	if i >= 0 {
		prefix, rest = key[:i+1], key[i+1:]
	}
	j := strings.Index(rest, ".")
	if j < 0 {
		return key
	}
	return prefix + rest[:j]
}

// recvName renders a receiver type compactly: "*T" or "T".
func recvName(t types.Type) string {
	switch t := t.(type) {
	case *types.Pointer:
		return "*" + recvName(t.Elem())
	case *types.Named:
		return t.Obj().Name()
	default:
		return t.String()
	}
}

// factType is the registry name of a fact's dynamic type.
func factType(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}
