// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis API surface the etlint suite needs.
// The toolchain image has no module proxy access, so the framework is
// self-hosted on the standard library's go/ast and go/types: an
// Analyzer inspects one type-checked package through a Pass and reports
// Diagnostics. Analyzers written against this package keep the upstream
// shape (Name/Doc/Run, Pass.Report) so they could be lifted onto the
// real go/analysis driver unchanged if x/tools ever becomes available.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase identifier).
	Name string
	// Doc is the analyzer's human-readable documentation.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report; the error return is for analyzer failure, not
	// findings.
	Run func(pass *Pass) error
}

// Pass connects an Analyzer to the package under inspection.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed source files (test files excluded
	// by the driver; etlint analyzes shipped code).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type information for expressions and identifiers.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
	// Facts is the run-wide fact store. The driver analyzes packages in
	// dependency order, so facts exported while analyzing an import are
	// visible here. May be nil (single-package test harnesses).
	Facts *FactStore
}

// ExportObjectFact attaches fact to obj for later passes and dependent
// packages. Serialization failures are silently dropped — a fact that
// cannot round-trip simply never becomes visible, which analyzers must
// tolerate anyway (facts are an optimization, not a soundness source).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts != nil {
		_ = p.Facts.Export(obj, fact)
	}
}

// ImportObjectFact decodes a previously exported fact of fact's dynamic
// type on obj into fact, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.Facts != nil && p.Facts.Import(obj, fact)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// IsGenerated reports whether the file carries a standard "Code
// generated … DO NOT EDIT." comment; generated files are skipped by the
// etlint analyzers.
func IsGenerated(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "// Code generated ") && strings.HasSuffix(c.Text, " DO NOT EDIT.") {
				return true
			}
		}
		// Only leading comments can carry the marker.
		if cg.End() >= f.Package {
			break
		}
	}
	return false
}

// Path renders a simple ident/selector chain ("c.inner.mu") as a dotted
// string, or "" for any expression that is not such a chain. Dataflow
// analyzers use these strings as lock and value identities; anything
// unrenderable (calls, indexing) is deliberately outside their model.
func Path(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := Path(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return Path(e.X)
	}
	return ""
}

// IsFloat reports whether t's core type is a floating-point basic type
// (float32, float64, or an untyped float constant).
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&types.IsFloat != 0
}
