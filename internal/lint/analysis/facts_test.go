package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

type markFact struct{ N int }

func (*markFact) AFact() {}

type otherFact struct{ S string }

func (*otherFact) AFact() {}

type badFact struct{ C chan int }

func (*badFact) AFact() {}

// checkPkg type-checks one import-free source file as package path p.
func checkPkg(t *testing.T, path, src string) (*types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return pkg, info
}

const factSrc = `package p

type T struct{ F int }

func (t *T) M() int { return t.F }

func G() {}
`

func TestFactRoundTrip(t *testing.T) {
	pkg, _ := checkPkg(t, "example.com/p", factSrc)
	g := pkg.Scope().Lookup("G")
	s := NewFactStore()

	var got markFact
	if s.Import(g, &got) {
		t.Error("Import on empty store must report false")
	}
	if err := s.Export(g, &markFact{N: 7}); err != nil {
		t.Fatalf("Export: %v", err)
	}
	if !s.Import(g, &got) || got.N != 7 {
		t.Errorf("round trip = %+v, want N=7", got)
	}

	// A second export of the same fact type replaces the first.
	if err := s.Export(g, &markFact{N: 9}); err != nil {
		t.Fatal(err)
	}
	if !s.Import(g, &got) || got.N != 9 {
		t.Errorf("after replace = %+v, want N=9", got)
	}

	// Facts of different types coexist on one object.
	if err := s.Export(g, &otherFact{S: "x"}); err != nil {
		t.Fatal(err)
	}
	var other otherFact
	if !s.Import(g, &other) || other.S != "x" {
		t.Errorf("second fact type = %+v, want S=x", other)
	}
	if !s.Import(g, &got) || got.N != 9 {
		t.Error("adding a second fact type clobbered the first")
	}
}

func TestFactExportRejectsUnserializable(t *testing.T) {
	pkg, _ := checkPkg(t, "example.com/p", factSrc)
	g := pkg.Scope().Lookup("G")
	s := NewFactStore()
	if err := s.Export(g, &badFact{C: make(chan int)}); err == nil {
		t.Error("exporting a non-serializable fact must fail eagerly")
	}
	if err := s.Export(nil, &markFact{}); err == nil {
		t.Error("exporting on a nil object must fail")
	}
}

func TestPackageFactsRoundTrip(t *testing.T) {
	pkg, _ := checkPkg(t, "example.com/p", factSrc)
	g := pkg.Scope().Lookup("G")
	tType := pkg.Scope().Lookup("T").Type()
	method := tType.(*types.Named).Method(0)

	s := NewFactStore()
	if err := s.Export(g, &markFact{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Export(method, &markFact{N: 2}); err != nil {
		t.Fatal(err)
	}

	data, err := s.PackageFacts("example.com/p")
	if err != nil {
		t.Fatalf("PackageFacts: %v", err)
	}
	data2, err := s.PackageFacts("example.com/p")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("PackageFacts is not byte-deterministic")
	}

	fresh := NewFactStore()
	if err := fresh.AddPackageFacts(data); err != nil {
		t.Fatalf("AddPackageFacts: %v", err)
	}
	var got markFact
	if !fresh.Import(g, &got) || got.N != 1 {
		t.Errorf("function fact lost in package round trip: %+v", got)
	}
	if !fresh.Import(method, &got) || got.N != 2 {
		t.Errorf("method fact lost in package round trip: %+v", got)
	}

	if err := fresh.AddPackageFacts([]byte("not json")); err == nil {
		t.Error("corrupt package facts must be rejected")
	}
}

func TestObjectKeyShapes(t *testing.T) {
	pkg, _ := checkPkg(t, "example.com/p", factSrc)
	g := pkg.Scope().Lookup("G")
	named := pkg.Scope().Lookup("T").Type().(*types.Named)
	method := named.Method(0)
	field := named.Underlying().(*types.Struct).Field(0)

	if k := ObjectKey(g); k != "example.com/p.G" {
		t.Errorf("func key = %q", k)
	}
	if k := ObjectKey(method); k != "example.com/p.(*T).M" {
		t.Errorf("method key = %q", k)
	}
	k := ObjectKey(field)
	if !strings.HasPrefix(k, "example.com/p.field.F@") {
		t.Errorf("field key = %q, want field marker with position suffix", k)
	}
	// All three keys resolve back to the package.
	for _, key := range []string{ObjectKey(g), ObjectKey(method), k} {
		if got := pkgOfKey(key); got != "example.com/p" {
			t.Errorf("pkgOfKey(%q) = %q", key, got)
		}
	}
}
