package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

func a() {
	x := 1 //etlint:ignore floatcmp compares sentinel values only
	_ = x
}

//etlint:ignore nopanic invariant helper documented in DESIGN.md
func b() {
	panic("b")
}

//etlint:ignore lockguard
func c() {}

//etlint:ignore
func d() {}

//etlint:ignorexyz not ours
func e() {}
`

func collectFrom(t *testing.T, src string) []*Ignore {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return CollectIgnores(fset, f)
}

func TestCollectIgnores(t *testing.T) {
	igs := collectFrom(t, directiveSrc)
	if len(igs) != 4 {
		t.Fatalf("collected %d directives, want 4 (the ignorexyz comment is not one)", len(igs))
	}

	trailing := igs[0]
	if trailing.Analyzer != "floatcmp" || trailing.Reason != "compares sentinel values only" {
		t.Errorf("trailing directive = %+v", trailing)
	}
	if trailing.FromLine != trailing.Line || trailing.ToLine != trailing.Line {
		t.Errorf("trailing directive must cover exactly its own line: %+v", trailing)
	}
	if trailing.Func != "" {
		t.Errorf("trailing directive has no enclosing-func attribution, got %q", trailing.Func)
	}

	doc := igs[1]
	if doc.Analyzer != "nopanic" || doc.Func != "b" {
		t.Errorf("doc directive = %+v", doc)
	}
	if doc.FromLine >= doc.ToLine {
		t.Errorf("doc directive must span the declaration, got [%d,%d]", doc.FromLine, doc.ToLine)
	}

	if igs[2].Malformed != "missing reason" {
		t.Errorf("reasonless directive: Malformed = %q, want %q", igs[2].Malformed, "missing reason")
	}
	if igs[3].Malformed == "" {
		t.Error("bare directive must be malformed")
	}
}

func TestSuppresses(t *testing.T) {
	igs := collectFrom(t, directiveSrc)
	trailing, doc, malformed := igs[0], igs[1], igs[2]

	if !trailing.Suppresses("floatcmp", "p.go", trailing.Line) {
		t.Error("trailing directive must suppress its analyzer on its line")
	}
	if trailing.Suppresses("floatcmp", "p.go", trailing.Line+1) {
		t.Error("trailing directive must not suppress other lines")
	}
	if trailing.Suppresses("nopanic", "p.go", trailing.Line) {
		t.Error("directive must not suppress other analyzers")
	}
	if trailing.Suppresses("floatcmp", "q.go", trailing.Line) {
		t.Error("directive must not suppress other files")
	}

	for line := doc.FromLine; line <= doc.ToLine; line++ {
		if !doc.Suppresses("nopanic", "p.go", line) {
			t.Errorf("doc directive must cover line %d of its declaration", line)
		}
	}

	if malformed.Suppresses("lockguard", "p.go", malformed.Line) {
		t.Error("a malformed directive must suppress nothing")
	}
}
