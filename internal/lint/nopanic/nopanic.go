// Package nopanic implements the etlint analyzer that forbids panic
// calls in the solver library packages (internal/simplex, internal/milp,
// internal/lp, internal/core). Library code must return errors; a panic
// in the MILP stack turns a malformed model or a numerical corner case
// into a crashed planner. The one sanctioned escape hatch is a
// documented invariant-violation helper: a function whose doc comment
// contains the phrase "invariant-violation helper" may panic, and code
// reporting programming errors calls it (see lp.invariant).
package nopanic

import (
	"go/ast"
	"strings"

	"github.com/etransform/etransform/internal/lint/analysis"
)

// Analyzer flags panic calls in solver library packages.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc: "forbid panic in internal/{simplex,milp,lp,core}; return errors, or route programming " +
		`errors through a documented "invariant-violation helper" function`,
	Run: run,
}

// Scopes lists the package-path segments whose packages must not panic.
// A package is in scope when its import path contains one of these as a
// path-segment-aligned substring.
var Scopes = []string{
	"internal/simplex",
	"internal/milp",
	"internal/lp",
	"internal/core",
}

// marker is the doc-comment phrase that sanctions a panic inside one
// documented helper function per package.
const marker = "invariant-violation helper"

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Doc != nil && strings.Contains(fn.Doc.Text(), marker) {
				continue // the documented invariant-violation helper
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && isBuiltinPanic(pass, id) {
					pass.Reportf(call.Pos(),
						"panic in solver library code; return an error, or route programming errors "+
							"through the package's documented invariant-violation helper")
				}
				return true
			})
		}
	}
	return nil
}

// Exemptions lists the functions in a package that carry the
// invariant-violation-helper marker — the complete set of sanctioned
// panic sites. cmd/etlint's -nopanic-exemptions audit prints these so
// scripts/check.sh can diff them against the reviewed allowlist: a new
// exemption (say, a panic smuggled into a branch & bound worker under a
// marker comment) fails the gate until the allowlist is deliberately
// updated. Out-of-scope packages return nil. Names are rendered as
// pkgPath.Func or pkgPath.(Recv).Method, in file order.
func Exemptions(pkgPath string, files []*ast.File) []string {
	if !inScope(pkgPath) {
		return nil
	}
	var out []string
	for _, f := range files {
		if analysis.IsGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || !strings.Contains(fn.Doc.Text(), marker) {
				continue
			}
			name := fn.Name.Name
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				name = "(" + recvTypeName(fn.Recv.List[0].Type) + ")." + name
			}
			out = append(out, pkgPath+"."+name)
		}
	}
	return out
}

// recvTypeName renders a receiver type expression compactly.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return "*" + recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	default:
		return "?"
	}
}

// inScope reports whether pkgPath contains one of the Scopes aligned on
// path-segment boundaries.
func inScope(pkgPath string) bool {
	for _, s := range Scopes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) || strings.Contains(pkgPath, "/"+s+"/") || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

// isBuiltinPanic reports that id resolves to the predeclared panic (not
// a local function or variable shadowing the name).
func isBuiltinPanic(pass *analysis.Pass, id *ast.Ident) bool {
	if pass.TypesInfo == nil {
		return true // no type info: assume builtin
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true
	}
	// The predeclared panic lives in the Universe scope.
	return obj.Parent() == nil || obj.Pkg() == nil
}
