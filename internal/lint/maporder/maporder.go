// Package maporder implements the etlint analyzer that protects the
// repository's byte-stable output contract (golden traces, golden
// plans, metrics snapshots) from Go's randomized map iteration order.
//
// It flags a `range` over a map value when the iteration order can
// reach an output sink:
//
//   - an element derived from the loop variables is appended to a slice
//     that is never sorted later in the same function (the sorted-keys
//     idiom — append inside the loop, sort.Strings after it — is
//     recognized and clean);
//   - the loop body emits directly, in iteration order, through fmt
//     printing, an Encode/Emit/Write-style method, or similar;
//   - the loop body folds a float accumulator (`sum += m[k]`): float
//     addition is not associative, so the low bits of the result depend
//     on iteration order and break byte-stable encodings.
//
// Order-insensitive loop bodies — integer counting, map-to-map copies,
// max/min scans — are deliberately not flagged.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/etransform/etransform/internal/lint/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration whose order can reach an output sink unsorted",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc scans one function body for map ranges and their sinks.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t, ok := pass.TypesInfo.Types[rs.X]; !ok || !isMap(t.Type) {
			return true
		}
		loopVars := rangeVars(pass.TypesInfo, rs)
		if len(loopVars) == 0 {
			return true // body cannot observe the iteration order
		}
		checkBody(pass, rs, body, loopVars)
		return true
	})
}

// checkBody reports each order-sensitive sink inside the map-range body
// rs. fnBody is the whole enclosing function body, searched for sorts
// that launder an appended slice after the loop.
func checkBody(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt, loopVars map[types.Object]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs {
				// Nested ranges get their own visit from checkFunc.
				if t, ok := pass.TypesInfo.Types[n.X]; ok && isMap(t.Type) {
					return false
				}
			}
		case *ast.AssignStmt:
			if target, args, ok := appendTarget(n); ok {
				if declaredWithin(pass.TypesInfo, n.Lhs[0], rs.Body) {
					// A slice created inside the loop body does not accumulate
					// across iterations, so map order cannot reach it.
					return true
				}
				if mentionsAny(pass.TypesInfo, args, loopVars) && !sortedAfter(pass, fnBody, rs.End(), target) {
					pass.Reportf(n.Pos(),
						"slice "+target+" is appended in map iteration order and never sorted in this function; sort it after the loop")
				}
				return true
			}
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
				if len(n.Lhs) == 1 && analysis.IsFloat(typeOf(pass.TypesInfo, n.Lhs[0])) &&
					mentionsAny(pass.TypesInfo, n.Rhs, loopVars) {
					pass.Reportf(n.Pos(),
						"float accumulation in map iteration order is not byte-deterministic; iterate sorted keys")
				}
			}
		case *ast.CallExpr:
			if name, ok := sinkCall(pass.TypesInfo, n); ok && mentionsAny(pass.TypesInfo, n.Args, loopVars) {
				pass.Reportf(n.Pos(),
					name+" inside range over map emits in map iteration order; iterate sorted keys instead")
				return false
			}
		}
		return true
	})
}

// rangeVars returns the objects bound by the range statement's key and
// value variables.
func rangeVars(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	return out
}

// appendTarget recognizes `x = append(x, …)` (and op-free variants),
// returning the rendered target path and the appended arguments.
func appendTarget(as *ast.AssignStmt) (target string, args []ast.Expr, ok bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", nil, false
	}
	call, okCall := as.Rhs[0].(*ast.CallExpr)
	if !okCall {
		return "", nil, false
	}
	if id, okFun := call.Fun.(*ast.Ident); !okFun || id.Name != "append" {
		return "", nil, false
	}
	target = renderPath(as.Lhs[0])
	if target == "" || len(call.Args) < 2 {
		return "", nil, false
	}
	return target, call.Args[1:], true
}

// declaredWithin reports whether e's root identifier is declared inside
// the given body.
func declaredWithin(info *types.Info, e ast.Expr, body *ast.BlockStmt) bool {
	for {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			e = sel.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

// sortedAfter reports whether a sort/slices call mentioning target
// appears in fnBody after pos.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found || (n != nil && n.End() < pos) {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, a := range call.Args {
			if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
				a = u.X
			}
			if renderPath(a) == target {
				found = true
			}
			// sort.Slice(x, func(i, j int) bool { … x[i] … }) — the
			// closure mentions the target too; the direct-arg match above
			// already covered it.
		}
		return !found
	})
	return found
}

// sinkCall recognizes calls that emit their arguments to an output in
// call order: the fmt printing family and Encode/Emit/Write-style
// methods. Returns a display name for the diagnostic.
func sinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		obj := info.Uses[id]
		_, isPkg := obj.(*types.PkgName)
		if id.Name == "fmt" && (isPkg || obj == nil) {
			switch name {
			case "Fprintf", "Fprint", "Fprintln", "Printf", "Print", "Println":
				return "fmt." + name, true
			}
			return "", false
		}
		if isPkg {
			return "", false // other package-level calls are not sinks
		}
	}
	switch name {
	case "Emit", "Encode", "Write", "WriteString", "Printf", "Print":
		return renderPath(sel.X) + "." + name, true
	}
	return "", false
}

// mentionsAny reports whether any expression references one of the
// given objects.
func mentionsAny(info *types.Info, exprs []ast.Expr, objs map[types.Object]bool) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// renderPath renders a simple ident/selector chain ("c.queue"), or ""
// for anything more complex.
func renderPath(e ast.Expr) string { return analysis.Path(e) }

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
