// Package toldef implements the etlint analyzer that forbids ad-hoc
// numeric tolerance literals outside the central internal/tol package.
// A float literal written in scientific notation with an exponent of
// −4 or smaller (1e-7, 2.5e-9, 1e-12, …) is, in this codebase, always a
// tolerance; scattering such literals is how solver layers drift apart
// numerically. The fix is to name the value in internal/tol and
// reference it.
package toldef

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"github.com/etransform/etransform/internal/lint/analysis"
)

// Analyzer flags tolerance-sized float literals outside internal/tol.
var Analyzer = &analysis.Analyzer{
	Name: "toldef",
	Doc: "forbid tolerance literals (scientific notation, exponent ≤ -4) outside internal/tol; " +
		"name the tolerance in internal/tol and reference it",
	Run: run,
}

// exemptSuffix marks the one package allowed to define tolerances.
const exemptSuffix = "internal/tol"

// sciNeg matches a float literal in scientific notation with a negative
// exponent, capturing the exponent digits.
var sciNeg = regexp.MustCompile(`(?i)^[0-9]*\.?[0-9]+e-([0-9]+)$`)

// minExponent is the smallest magnitude a negative exponent must reach
// before the literal counts as a tolerance (1e-3 is a configuration gap;
// 1e-4 and below are numerical tolerances).
const minExponent = 4

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && (pass.Pkg.Path() == exemptSuffix || strings.HasSuffix(pass.Pkg.Path(), "/"+exemptSuffix)) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.FLOAT {
				return true
			}
			m := sciNeg.FindStringSubmatch(lit.Value)
			if m == nil {
				return true
			}
			exp, err := strconv.Atoi(m[1])
			if err != nil || exp < minExponent {
				return true
			}
			pass.Reportf(lit.Pos(), fmt.Sprintf(
				"tolerance literal %s outside internal/tol; name it there (see tol.Feas, tol.Opt, …) and reference it", lit.Value))
			return true
		})
	}
	return nil
}
