// Package lockguard implements the etlint analyzer that enforces
// comment-declared lock discipline, the contract the parallel branch &
// bound coordinator and the obs metrics registry rely on for data-race
// freedom.
//
// A struct field opts in with a trailing (or doc) comment:
//
//	queue []*node // guarded by mu
//
// naming a sibling mutex field. Every read or write of an annotated
// field through a renderable selector chain (c.queue, w.co.queue) must
// then happen with the corresponding mutex path (c.mu, w.co.mu) held on
// every control-flow path from the function's entry, where "held" means
// a Lock/RLock call on that exact path with no intervening Unlock on
// the path. Two escape hatches exist:
//
//   - a function whose doc comment says `// caller holds mu` (or the
//     full path, `// caller holds c.mu`) starts with that lock assumed
//     held — the repo's *Locked helper convention;
//   - a `//etlint:ignore lockguard <reason>` directive, for
//     single-threaded construction and post-join teardown phases.
//
// The analysis is a must-hold forward dataflow over the shared CFG:
// merge points intersect the held sets, so a lock taken on only one
// branch does not count. `defer mu.Unlock()` is recognized and does not
// clear the held state (the unlock runs at return). Function literals
// inherit the held set at their creation point — a closure created
// under the lock (sort.Slice comparators, etc.) is analyzed as running
// under it. Guard facts are exported per package, so annotated fields
// accessed from a dependent package are checked there too.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"github.com/etransform/etransform/internal/lint/analysis"
)

// Analyzer is the lockguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "checks that fields annotated `// guarded by <mu>` are accessed under their mutex",
	Run:  run,
}

// GuardFact marks a struct field as guarded by the named sibling mutex
// field. It is exported on the field object so dependent packages see
// the annotation.
type GuardFact struct {
	Guard string
}

// AFact marks GuardFact as a serializable analysis fact.
func (*GuardFact) AFact() {}

// The path pattern matches dotted identifier chains without swallowing
// a sentence-ending period ("caller holds c.mu." annotates c.mu).
var (
	guardedByRe   = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)`)
	callerHoldsRe = regexp.MustCompile(`caller holds ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)`)
)

func run(pass *analysis.Pass) error {
	// Phase 1: collect `// guarded by` annotations from this package's
	// struct types and export them as facts.
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						pass.ExportObjectFact(obj, &GuardFact{Guard: guard})
					}
				}
			}
			return true
		})
	}

	// Phase 2: check every function body (imported facts cover fields
	// declared in already-analyzed dependency packages).
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			entry := entryHeld(fd)
			checkBody(pass, fd.Body, entry)
		}
	}
	return nil
}

// guardAnnotation extracts the guard name from a field's trailing or
// doc comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// entryHeld builds the lock set assumed held at function entry from
// `// caller holds <mu>` doc annotations. A bare mutex name is also
// resolved against the receiver: `caller holds mu` on a method with
// receiver c assumes c.mu.
func entryHeld(fd *ast.FuncDecl) map[string]bool {
	held := make(map[string]bool)
	if fd.Doc == nil {
		return held
	}
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv = fd.Recv.List[0].Names[0].Name
	}
	for _, m := range callerHoldsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
		path := m[1]
		held[path] = true
		if recv != "" && !strings.Contains(path, ".") {
			held[recv+"."+path] = true
		}
	}
	return held
}

// checkBody runs the must-hold dataflow over body's CFG and reports
// guarded accesses made without the lock.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, entry map[string]bool) {
	cfg := analysis.BuildCFG(body)
	in := make([]map[string]bool, len(cfg.Blocks)) // nil = unvisited (⊤)
	in[cfg.Entry.Index] = clone(entry)

	work := []*analysis.Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := clone(in[b.Index])
		for _, n := range b.Nodes {
			transfer(pass, n, out, nil)
		}
		for _, s := range b.Succs {
			var next map[string]bool
			if in[s.Index] == nil {
				next = clone(out)
			} else {
				next = intersect(in[s.Index], out)
				if len(next) == len(in[s.Index]) {
					continue // no change
				}
			}
			in[s.Index] = next
			work = append(work, s)
		}
	}

	// Reporting walk with the converged entry states. Unreachable blocks
	// (in == nil) are skipped: no execution reaches them.
	for _, b := range cfg.Blocks {
		if in[b.Index] == nil {
			continue
		}
		held := clone(in[b.Index])
		for _, n := range b.Nodes {
			transfer(pass, n, held, func(sel *ast.SelectorExpr, path, guard string) {
				pass.Reportf(sel.Pos(),
					path+" is guarded by "+guard+", which is not held on every path here")
			})
		}
	}
}

// transfer interprets one CFG node in source order, updating the held
// set at Lock/Unlock calls and invoking report for each guarded-field
// access whose mutex is not in the set. A nil report makes this a pure
// state transformer (the fixpoint phase).
func transfer(pass *analysis.Pass, n ast.Node, held map[string]bool, report func(*ast.SelectorExpr, string, string)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock runs at return: the lock stays held for the
			// rest of the function, so the call must not clear the state.
			// Guarded accesses in the deferred call's arguments still count.
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// The deferred closure runs at return; approximate its lock
				// context with the current set (a defer registered under the
				// lock is the `defer mu.Unlock()` idiom's sibling pattern).
				transfer(pass, fl.Body, clone(held), report)
			}
			return false
		case *ast.FuncLit:
			// Closures inherit the held set at creation point.
			transfer(pass, n.Body, clone(held), report)
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if base := analysis.Path(sel.X); base != "" {
					switch sel.Sel.Name {
					case "Lock", "RLock":
						// Arguments first (there are none for mutexes, but a
						// shadowing method could take some).
						for _, a := range n.Args {
							ast.Inspect(a, walk)
						}
						held[base] = true
						return false
					case "Unlock", "RUnlock":
						delete(held, base)
						return false
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			obj := fieldObj(pass, n.Sel)
			if obj == nil {
				return true
			}
			var fact GuardFact
			if !pass.ImportObjectFact(obj, &fact) {
				return true
			}
			base := analysis.Path(n.X)
			if base == "" {
				return true // unrenderable access base: outside the model
			}
			guard := base + "." + fact.Guard
			if strings.Contains(fact.Guard, ".") {
				guard = fact.Guard // annotation names a full path
			}
			if !held[guard] && report != nil {
				report(n, base+"."+n.Sel.Name, guard)
			}
			// Keep walking: the base chain may itself contain guarded fields.
			return true
		}
		return true
	}
	ast.Inspect(n, walk)
}

// fieldObj resolves an identifier to the struct-field object it uses,
// or nil.
func fieldObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
