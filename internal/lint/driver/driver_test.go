package driver

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out files under a fresh temp root and returns it.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadDirSynthesizesPath(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/b/ok.go": "package b\n\nfunc F() int { return 1 }\n",
		// Test files are excluded from analysis.
		"a/b/ok_test.go": "package b\n\nthis would not even parse\n",
	})
	pkg, err := LoadDir(root, filepath.Join(root, "a", "b"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Path != "a/b" {
		t.Errorf("Path = %q, want %q", pkg.Path, "a/b")
	}
	if len(pkg.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (test file excluded)", len(pkg.Files))
	}
	if pkg.Types == nil || pkg.TypesInfo == nil {
		t.Error("type information missing")
	}
}

func TestLoadDirEmptyDir(t *testing.T) {
	root := writeTree(t, map[string]string{
		"empty/README.txt": "no Go files here\n",
	})
	_, err := LoadDir(root, filepath.Join(root, "empty"))
	if err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("empty dir: err = %v, want a no-Go-files error", err)
	}
}

func TestLoadDirMissingDir(t *testing.T) {
	root := writeTree(t, nil)
	if _, err := LoadDir(root, filepath.Join(root, "does-not-exist")); err == nil {
		t.Error("missing dir must fail")
	}
}

func TestLoadDirUnparsableFile(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/good.go": "package p\n",
		"p/bad.go":  "package p\n\nfunc broken( {\n",
	})
	_, err := LoadDir(root, filepath.Join(root, "p"))
	if err == nil || !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("unparsable file: err = %v, want a parse error naming bad.go", err)
	}
}

func TestLoadDirConflictingPackageNames(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/one.go": "package one\n",
		"p/two.go": "package two\n",
	})
	_, err := LoadDir(root, filepath.Join(root, "p"))
	if err == nil || !strings.Contains(err.Error(), "conflicting package names") {
		t.Errorf("conflicting names: err = %v, want a conflicting-package-names error", err)
	}
	if err != nil && (!strings.Contains(err.Error(), "one") || !strings.Contains(err.Error(), "two")) {
		t.Errorf("error should name both packages: %v", err)
	}
}

func TestLoadDirForbidsImports(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/imp.go": "package p\n\nimport \"fmt\"\n\nfunc F() { fmt.Println() }\n",
	})
	// Imports are tolerated as type errors, not load failures: the
	// package still loads so syntactic analyzers can run.
	pkg, err := LoadDir(root, filepath.Join(root, "p"))
	if err != nil {
		t.Fatalf("LoadDir with import: %v", err)
	}
	if pkg.Types == nil {
		t.Error("package object missing despite tolerated import error")
	}
}
