// Package driver loads, type-checks, and analyzes Go packages for the
// etlint suite without depending on golang.org/x/tools. Two load modes
// exist:
//
//   - Load resolves `go list` patterns (./... and friends) against the
//     enclosing module. It shells out to `go list -e -export -deps -json`
//     once, collects compiled export data for every dependency from the
//     build cache, and type-checks each target package from source with
//     go/types plus a gc-importer fed from that export data. This is how
//     etlint runs over the real repository.
//
//   - LoadDir parses a single directory of Go files with no import
//     resolution, synthesizing the package path from the directory's
//     location under a virtual root. This is how the etlint tests run
//     the analyzers over testdata trees that are invisible to `go list`.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"github.com/etransform/etransform/internal/lint/analysis"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Position token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the conventional
// path:line:col: message [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// Package is one loaded, parsed, and (in Load mode) type-checked
// package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg mirrors the fields of `go list -json` output the driver needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list` in dir and returns the matched
// non-dependency packages, type-checked from source. Test files are not
// analyzed (etlint checks shipped code); dependencies contribute export
// data only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Standard,Dir,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, g := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, g), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", g, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      t.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// LoadDir parses the non-test Go files directly inside dir and
// type-checks them as one package whose import path is dir's path
// relative to root (slash-separated). Imports are not resolved — the
// type checker runs with a FakeImportC-style permissive config where
// import errors are tolerated — so testdata packages should only use
// builtin and package-local types for full type information.
func LoadDir(root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	for _, f := range files[1:] {
		if f.Name.Name != files[0].Name.Name {
			return nil, fmt.Errorf("conflicting package names in %s: %s and %s",
				dir, files[0].Name.Name, f.Name.Name)
		}
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := filepath.ToSlash(rel)

	info := newInfo()
	conf := types.Config{
		Error: func(error) {}, // tolerate unresolved imports in testdata
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return nil, fmt.Errorf("testdata packages must not import (%q)", path)
		}),
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	return &Package{
		Path:      pkgPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// Result is the outcome of one Analyze run: the diagnostics that
// survived directive filtering, those an //etlint:ignore directive
// suppressed, and every directive encountered (for the -ignores audit).
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  []Diagnostic
	Ignores     []*analysis.Ignore
}

// Run applies every analyzer to every package and returns the
// unsuppressed diagnostics sorted by position. It is the historical
// entry point; Analyze exposes the suppressed set and the directive
// audit as well.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	res, err := Analyze(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// Analyze applies every analyzer to every package in dependency order
// (so facts exported on an import are visible to its dependents),
// filters diagnostics through //etlint:ignore directives, and reports
// malformed directives as diagnostics of the synthetic "etlint"
// analyzer.
func Analyze(pkgs []*Package, analyzers []*analysis.Analyzer) (*Result, error) {
	pkgs = depOrder(pkgs)
	facts := analysis.NewFactStore()
	var diags []Diagnostic
	var ignores []*analysis.Ignore
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ignores = append(ignores, analysis.CollectIgnores(pkg.Fset, f)...)
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Analyzer: name,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		// Exercise the per-package fact serialization contract: a fact that
		// does not survive the round trip must fail here, not in a
		// dependent package.
		if blob, err := facts.PackageFacts(pkg.Path); err != nil {
			return nil, fmt.Errorf("serializing facts for %s: %w", pkg.Path, err)
		} else if err := facts.AddPackageFacts(blob); err != nil {
			return nil, fmt.Errorf("reloading facts for %s: %w", pkg.Path, err)
		}
	}

	res := &Result{Ignores: ignores}
	for _, d := range diags {
		suppressed := false
		for _, ig := range ignores {
			if ig.Suppresses(d.Analyzer, d.Position.Filename, d.Position.Line) {
				ig.Used = true
				suppressed = true
			}
		}
		if suppressed {
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	for _, ig := range ignores {
		if ig.Malformed != "" {
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Position: token.Position{Filename: ig.File, Line: ig.Line, Column: 1},
				Message:  "malformed //etlint:ignore directive: " + ig.Malformed,
				Analyzer: "etlint",
			})
		}
	}
	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	sort.Slice(res.Ignores, func(i, j int) bool {
		a, b := res.Ignores[i], res.Ignores[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return res, nil
}

// depOrder returns pkgs topologically sorted so that every package
// follows the packages it imports (among those being analyzed). The
// input order breaks ties, keeping output deterministic; cycles cannot
// occur in valid Go packages and degrade gracefully to input order.
func depOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	state := make(map[*Package]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	out := make([]*Package, 0, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				if dep, ok := byPath[imp.Path()]; ok && state[dep] == 0 {
					visit(dep)
				}
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
