// Package driver loads, type-checks, and analyzes Go packages for the
// etlint suite without depending on golang.org/x/tools. Two load modes
// exist:
//
//   - Load resolves `go list` patterns (./... and friends) against the
//     enclosing module. It shells out to `go list -e -export -deps -json`
//     once, collects compiled export data for every dependency from the
//     build cache, and type-checks each target package from source with
//     go/types plus a gc-importer fed from that export data. This is how
//     etlint runs over the real repository.
//
//   - LoadDir parses a single directory of Go files with no import
//     resolution, synthesizing the package path from the directory's
//     location under a virtual root. This is how the etlint tests run
//     the analyzers over testdata trees that are invisible to `go list`.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"github.com/etransform/etransform/internal/lint/analysis"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Position token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the conventional
// path:line:col: message [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// Package is one loaded, parsed, and (in Load mode) type-checked
// package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg mirrors the fields of `go list -json` output the driver needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list` in dir and returns the matched
// non-dependency packages, type-checked from source. Test files are not
// analyzed (etlint checks shipped code); dependencies contribute export
// data only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Standard,Dir,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, g := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, g), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", g, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      t.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// LoadDir parses the non-test Go files directly inside dir and
// type-checks them as one package whose import path is dir's path
// relative to root (slash-separated). Imports are not resolved — the
// type checker runs with a FakeImportC-style permissive config where
// import errors are tolerated — so testdata packages should only use
// builtin and package-local types for full type information.
func LoadDir(root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := filepath.ToSlash(rel)

	info := newInfo()
	conf := types.Config{
		Error: func(error) {}, // tolerate unresolved imports in testdata
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return nil, fmt.Errorf("testdata packages must not import (%q)", path)
		}),
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	return &Package{
		Path:      pkgPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// Run applies every analyzer to every package and returns the combined
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Analyzer: name,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
