// Package ctxfirst implements the etlint analyzer that enforces the
// solver stack's cancellation contract: every exported Solve… or Plan…
// function in the solver packages must either take a context.Context as
// its first parameter or have a …Context sibling (same receiver, name +
// "Context") that does. The resilient pipeline threads deadlines and
// cancellation through contexts; an entry point that cannot receive one
// silently opts its callers out of graceful degradation.
package ctxfirst

import (
	"go/ast"
	"strings"
	"unicode"
	"unicode/utf8"

	"github.com/etransform/etransform/internal/lint/analysis"
)

// Analyzer flags exported Solve*/Plan* entry points without a context.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "exported Solve…/Plan… functions in solver packages must take context.Context " +
		"as the first parameter or have a …Context sibling that does",
	Run: run,
}

// Scopes lists the package-path segments whose exported entry points are
// held to the contract (path-segment-aligned, as in nopanic).
var Scopes = []string{
	"internal/simplex",
	"internal/milp",
	"internal/lp",
	"internal/core",
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !inScope(pass.Pkg.Path()) {
		return nil
	}
	// Index every top-level function by (receiver type, name) so sibling
	// lookups work across the package's files.
	decls := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				decls[declKey(fn)] = fn
			}
		}
	}
	for _, f := range pass.Files {
		if analysis.IsGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !isEntryPoint(fn.Name.Name) || !ast.IsExported(fn.Name.Name) {
				continue
			}
			if ctxFirst(fn) {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Context") {
				pass.Reportf(fn.Pos(),
					"exported "+fn.Name.Name+" must take context.Context as its first parameter")
				continue
			}
			sibling := decls[siblingKey(fn)]
			if sibling == nil || !ctxFirst(sibling) {
				pass.Reportf(fn.Pos(),
					"exported "+fn.Name.Name+" must take context.Context as its first parameter "+
						"or have a "+fn.Name.Name+"Context sibling that does")
			}
		}
	}
	return nil
}

// isEntryPoint reports whether name is a Solve… or Plan… entry point:
// the bare verb or the verb followed by an exported-style word boundary
// (so Solver and Planner do not match).
func isEntryPoint(name string) bool {
	for _, verb := range []string{"Solve", "Plan"} {
		if name == verb {
			return true
		}
		if rest, ok := strings.CutPrefix(name, verb); ok {
			r, _ := utf8.DecodeRuneInString(rest)
			if !unicode.IsLower(r) {
				return true
			}
		}
	}
	return false
}

// ctxFirst reports whether fn's first parameter is written as
// context.Context. The check is syntactic: testdata fixtures type-check
// without import resolution, and the repository never aliases the
// context import.
func ctxFirst(fn *ast.FuncDecl) bool {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	sel, ok := params.List[0].Type.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context"
}

// declKey identifies a function by receiver base type and name.
func declKey(fn *ast.FuncDecl) string {
	return recvBase(fn) + "." + fn.Name.Name
}

// siblingKey is the key of fn's expected …Context variant.
func siblingKey(fn *ast.FuncDecl) string {
	return recvBase(fn) + "." + fn.Name.Name + "Context"
}

// recvBase returns the receiver's base type name ("" for plain
// functions), ignoring pointers and type parameters.
func recvBase(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return ""
	}
	e := fn.Recv.List[0].Type
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return "?"
		}
	}
}

// inScope reports whether pkgPath contains one of the Scopes aligned on
// path-segment boundaries.
func inScope(pkgPath string) bool {
	for _, s := range Scopes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) || strings.Contains(pkgPath, "/"+s+"/") || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}
