package core

import (
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/model"
)

func TestDedicatedBackupsSumDemand(t *testing.T) {
	s := twoDCState(t, 0)
	s.Target.DCs = append(s.Target.DCs, mkDC("third", 100, 70, 0.07, 6000, 0.02))
	s.Target.LatencyMs = [][]float64{{25, 5, 10}, {5, 25, 10}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	shared := solvePlan(t, s, Options{DR: true})
	dedicated := solvePlan(t, s, Options{DR: true, DedicatedBackups: true})

	// Dedicated pools must equal total demand routed per site: overall,
	// exactly the estate's server count (every group fully mirrored).
	total := 0
	for i := range s.Groups {
		total += s.Groups[i].Servers
	}
	if dedicated.Cost.TotalBackupServers != total {
		t.Errorf("dedicated backups = %d, want %d", dedicated.Cost.TotalBackupServers, total)
	}
	// Sharing can never be worse than dedicating.
	if shared.Cost.Total() > dedicated.Cost.Total()+1e-6 {
		t.Errorf("shared plan (%v) costlier than dedicated (%v)", shared.Cost.Total(), dedicated.Cost.Total())
	}
	if shared.Cost.TotalBackupServers > dedicated.Cost.TotalBackupServers {
		t.Errorf("shared pool (%d) larger than dedicated (%d)",
			shared.Cost.TotalBackupServers, dedicated.Cost.TotalBackupServers)
	}
}

func TestDedicatedBackupsRejectedForPaperFormulation(t *testing.T) {
	s := twoDCState(t, 0)
	if _, err := New(s, Options{DR: true, DedicatedBackups: true, Formulation: FormulationPaper}); err == nil {
		t.Error("paper formulation with dedicated backups accepted")
	}
}

func TestShadowPrices(t *testing.T) {
	s := twoDCState(t, 0)
	// Tighten the cheap DC so its capacity binds: one more slot there is
	// worth the per-server saving vs the expensive DC.
	s.Target.DCs[0].CapacityServers = 25
	plan := solvePlan(t, s, Options{ComputeShadowPrices: true})
	shadow, ok := plan.CapacityShadow["cheap"]
	if !ok || shadow <= 0 {
		t.Fatalf("binding capacity at 'cheap' has shadow %v, want > 0 (map: %v)", shadow, plan.CapacityShadow)
	}
	// The marginal value of a slot at the cheap site is approximately the
	// per-server cost difference between the sites (plus the marginal
	// group's per-server WAN difference, which is small here).
	cheapCost := s.Target.DCs[0].SpaceCost.UnitCostAt(0) + model.ServerMonthlyCost(&s.Target.DCs[0], &s.Params)
	nearCost := s.Target.DCs[1].SpaceCost.UnitCostAt(0) + model.ServerMonthlyCost(&s.Target.DCs[1], &s.Params)
	diff := nearCost - cheapCost
	if shadow < diff*0.9 || shadow > diff*1.1 {
		t.Errorf("shadow %v not within 10%% of per-server cost difference %v", shadow, diff)
	}
	// The slack DC has no (or zero) shadow price.
	if v := plan.CapacityShadow["near"]; v != 0 {
		t.Errorf("non-binding capacity has shadow %v", v)
	}
}

func TestShadowPricesAbsentByDefault(t *testing.T) {
	s := twoDCState(t, 0)
	plan := solvePlan(t, s, Options{})
	if plan.CapacityShadow != nil {
		t.Errorf("shadow prices computed without the option: %v", plan.CapacityShadow)
	}
}

// TestDedicatedVsSharedOnRandomInstances: sharing ≤ dedicated always.
func TestDedicatedVsSharedOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(8181))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		s := randomState(rng, 4, 3, 2, true)
		for j := range s.Target.DCs {
			s.Target.DCs[j].CapacityServers *= 4
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		shared := solvePlan(t, s, Options{DR: true})
		dedicated := solvePlan(t, s, Options{DR: true, DedicatedBackups: true})
		if shared.Cost.Total() > dedicated.Cost.Total()*(1+1e-6)+1e-6 {
			t.Fatalf("trial %d: shared %v > dedicated %v", trial, shared.Cost.Total(), dedicated.Cost.Total())
		}
	}
}
