package core

import (
	"math"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/simplex"
)

// TestDenseSparseEquivalenceScenarios is the end-to-end half of the
// dense-vs-sparse equivalence suite: bundled case-study scenarios are
// planned through both simplex linear-algebra backends across the
// {workers 1, 4} × {basis reuse off, on} matrix, and every combination
// must certify the same objective. The random-LP half lives in
// internal/simplex; this half is what ties the engines' agreement to the
// paper's actual models (aggregated integer counts, DR pair columns,
// shared backup pools).
func TestDenseSparseEquivalenceScenarios(t *testing.T) {
	// Scales are chosen so every combination solves to proven optimality
	// (gap 0) in well under a second per solve — the comparison is only
	// meaningful between certified optima, and the full matrix runs 32
	// planner solves under -race in CI.
	scenarios := []struct {
		name string
		cfg  datagen.CaseStudyConfig
		dr   bool
	}{
		{"enterprise1", datagen.Enterprise1().Scaled(0.25), false},
		{"enterprise1-dr", datagen.Enterprise1().Scaled(0.25), true},
		{"florida", datagen.Florida().Scaled(0.1), false},
		{"federal", datagen.Federal().Scaled(0.01), false},
	}
	for _, sc := range scenarios {
		s, err := sc.cfg.Generate()
		if err != nil {
			t.Fatalf("%s: generate: %v", sc.name, err)
		}
		var ref float64
		haveRef := false
		for _, workers := range []int{1, 4} {
			for _, reuse := range []bool{false, true} {
				for _, dense := range []bool{false, true} {
					p, err := New(s, Options{
						Aggregate: true,
						DR:        sc.dr,
						Solver: milp.Options{
							Workers:    workers,
							ReuseBasis: reuse,
							MaxNodes:   50000,
							TimeLimit:  2 * time.Minute,
							Simplex:    simplex.Options{DenseLA: dense},
						},
					})
					if err != nil {
						t.Fatalf("%s: New: %v", sc.name, err)
					}
					plan, err := p.Solve()
					if err != nil {
						t.Fatalf("%s w=%d reuse=%v dense=%v: %v", sc.name, workers, reuse, dense, err)
					}
					if plan.Stats.Certificate == "" {
						t.Fatalf("%s w=%d reuse=%v dense=%v: no certificate", sc.name, workers, reuse, dense)
					}
					total := plan.Cost.Total()
					if !haveRef {
						ref, haveRef = total, true
						continue
					}
					if d := math.Abs(total - ref); d > 1e-6*math.Max(1, math.Abs(ref)) {
						t.Errorf("%s w=%d reuse=%v dense=%v: certified %v, want %v (diff %g)",
							sc.name, workers, reuse, dense, total, ref, d)
					}
				}
			}
		}
	}
}
