package core

import (
	"testing"

	"github.com/etransform/etransform/internal/datagen"
)

// TestFederalDRWarmStartProbe diagnoses warm-start generation on the
// pruned federal-scale DR model.
func TestFederalDRWarmStartProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	s, err := datagen.Federal().Scaled(0.25).Generate()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(s, Options{DR: true, Aggregate: true, CandidateK: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.build(8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model: %s, types=%d", b.m.Stats(), len(b.types))
	warms := b.warmStarts()
	t.Logf("warm candidates: %d", len(warms))
	feasible := 0
	best := 0.0
	for _, w := range warms {
		if err := b.m.CheckFeasible(w, 1e-5); err != nil {
			t.Logf("infeasible warm: %v", err)
			continue
		}
		feasible++
		if obj := b.m.Objective(w); best == 0 || obj < best {
			best = obj
		}
	}
	t.Logf("feasible warm candidates: %d, best objective %.0f", feasible, best)
	if feasible == 0 {
		t.Error("no feasible warm candidates for federal DR")
	}
}
