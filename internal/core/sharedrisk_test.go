package core

import (
	"testing"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
)

// riskState: three identical groups sharing a risk domain, three DCs of
// which one is clearly cheapest — without the constraint all three would
// pack into it.
func riskState(t *testing.T) *model.AsIsState {
	t.Helper()
	s := &model.AsIsState{
		Name: "risk",
		Groups: []model.AppGroup{
			{ID: "pay-a", Servers: 5, UsersByLocation: []int{10}, CurrentDC: "old", SharedRiskGroup: "payments"},
			{ID: "pay-b", Servers: 5, UsersByLocation: []int{10}, CurrentDC: "old", SharedRiskGroup: "payments"},
			{ID: "pay-c", Servers: 5, UsersByLocation: []int{10}, CurrentDC: "old", SharedRiskGroup: "payments"},
			{ID: "other", Servers: 5, UsersByLocation: []int{10}, CurrentDC: "old"},
		},
		UserLocations: []geo.Location{{ID: "u0"}},
		Current: model.Estate{
			DCs:       []model.DataCenter{mkDC("old", 100, 200, 0.1, 8000, 0.05)},
			LatencyMs: [][]float64{{10}},
		},
		Target: model.Estate{
			DCs: []model.DataCenter{
				mkDC("cheap", 100, 20, 0.02, 2000, 0.01),
				mkDC("mid", 100, 60, 0.06, 5000, 0.02),
				mkDC("dear", 100, 90, 0.09, 7000, 0.03),
			},
			LatencyMs: [][]float64{{5, 5, 5}},
		},
		Params: model.DefaultParams(),
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSharedRiskSpreadsGroups(t *testing.T) {
	for _, aggregate := range []bool{false, true} {
		s := riskState(t)
		plan := solvePlan(t, s, Options{Aggregate: aggregate})
		seen := map[string]string{}
		for _, a := range plan.Assignments {
			g := findGroupByID(s, a.GroupID)
			if g.SharedRiskGroup == "" {
				// The unconstrained group takes the cheapest site.
				if a.PrimaryDC != "cheap" {
					t.Errorf("aggregate=%v: free group at %q, want cheap", aggregate, a.PrimaryDC)
				}
				continue
			}
			if prev, dup := seen[a.PrimaryDC]; dup {
				t.Errorf("aggregate=%v: risk domain co-located at %q (%s and %s)",
					aggregate, a.PrimaryDC, prev, a.GroupID)
			}
			seen[a.PrimaryDC] = a.GroupID
		}
		if len(seen) != 3 {
			t.Errorf("aggregate=%v: payments groups spread over %d DCs, want 3", aggregate, len(seen))
		}
		if plan.Cost.SharedRiskViolations != 0 {
			t.Errorf("aggregate=%v: plan reports %d risk violations", aggregate, plan.Cost.SharedRiskViolations)
		}
	}
}

func TestSharedRiskWithDR(t *testing.T) {
	s := riskState(t)
	plan := solvePlan(t, s, Options{DR: true})
	seen := map[string]bool{}
	for _, a := range plan.Assignments {
		g := findGroupByID(s, a.GroupID)
		if g.SharedRiskGroup == "" {
			continue
		}
		if seen[a.PrimaryDC] {
			t.Errorf("risk domain co-located at %q under DR", a.PrimaryDC)
		}
		seen[a.PrimaryDC] = true
		if a.SecondaryDC == a.PrimaryDC {
			t.Errorf("group %q has identical primary and secondary", a.GroupID)
		}
	}
}

func TestSharedRiskValidation(t *testing.T) {
	s := riskState(t)
	// Four members of one domain into three DCs cannot be separated.
	s.Groups[3].SharedRiskGroup = "payments"
	if err := s.Validate(); err == nil {
		t.Error("oversubscribed risk domain accepted")
	}
}

func TestSharedRiskEvaluatorCounts(t *testing.T) {
	s := riskState(t)
	// Co-locate two payments groups deliberately.
	bd, err := model.Evaluate(s, &s.Target, []int{0, 0, 1, 0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bd.SharedRiskViolations != 1 {
		t.Errorf("violations = %d, want 1", bd.SharedRiskViolations)
	}
	bd, err = model.Evaluate(s, &s.Target, []int{0, 0, 0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bd.SharedRiskViolations != 2 {
		t.Errorf("violations = %d, want 2 (three co-located members)", bd.SharedRiskViolations)
	}
}

func findGroupByID(s *model.AsIsState, id string) *model.AppGroup {
	for i := range s.Groups {
		if s.Groups[i].ID == id {
			return &s.Groups[i]
		}
	}
	return nil
}
