package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/simplex"
	"github.com/etransform/etransform/internal/stepwise"
)

// mkDC builds a flat-priced data center.
func mkDC(id string, capacity int, space, power, labor, wan float64) model.DataCenter {
	return model.DataCenter{
		ID:                id,
		Location:          geo.Location{ID: "loc-" + id, Region: geo.RegionNorthAmerica},
		CapacityServers:   capacity,
		SpaceCost:         stepwise.Flat(space),
		PowerCostPerKWh:   power,
		LaborCostPerAdmin: labor,
		WANCostPerMb:      wan,
	}
}

// twoDCState: one cheap far DC, one expensive near DC, two user locations.
func twoDCState(t *testing.T, penalty float64) *model.AsIsState {
	t.Helper()
	pen, err := stepwise.SingleThreshold(10, penalty)
	if err != nil {
		t.Fatal(err)
	}
	s := &model.AsIsState{
		Name: "two-dc",
		Groups: []model.AppGroup{
			{ID: "sensitive", Servers: 10, DataMbPerMonth: 100, UsersByLocation: []int{100, 0}, LatencyPenalty: pen, CurrentDC: "old"},
			{ID: "insensitive", Servers: 20, DataMbPerMonth: 200, UsersByLocation: []int{0, 50}, CurrentDC: "old"},
		},
		UserLocations: []geo.Location{{ID: "u0"}, {ID: "u1"}},
		Current: model.Estate{
			DCs:       []model.DataCenter{mkDC("old", 100, 200, 0.2, 9000, 0.05)},
			LatencyMs: [][]float64{{12}, {12}},
		},
		Target: model.Estate{
			DCs: []model.DataCenter{
				mkDC("cheap", 100, 50, 0.05, 5000, 0.01), // far from u0
				mkDC("near", 100, 150, 0.15, 9000, 0.03), // near u0
			},
			LatencyMs: [][]float64{{25, 5}, {5, 25}},
		},
		Params: model.DefaultParams(),
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func solvePlan(t *testing.T, s *model.AsIsState, opts Options) *model.Plan {
	t.Helper()
	p, err := New(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestPlannerPlacesByLatencyPenalty(t *testing.T) {
	// High penalty: the sensitive group must sit near its users despite
	// the higher site cost; the insensitive group goes to the cheap DC.
	s := twoDCState(t, 1000)
	plan := solvePlan(t, s, Options{})
	if got := plan.AssignmentFor("sensitive").PrimaryDC; got != "near" {
		t.Errorf("sensitive group placed at %q, want near", got)
	}
	if got := plan.AssignmentFor("insensitive").PrimaryDC; got != "cheap" {
		t.Errorf("insensitive group placed at %q, want cheap", got)
	}
	if plan.Cost.LatencyViolations != 0 {
		t.Errorf("violations = %d, want 0", plan.Cost.LatencyViolations)
	}

	// Zero penalty: everything consolidates into the cheap DC.
	s2 := twoDCState(t, 0)
	plan2 := solvePlan(t, s2, Options{})
	for _, a := range plan2.Assignments {
		if a.PrimaryDC != "cheap" {
			t.Errorf("group %q placed at %q, want cheap", a.GroupID, a.PrimaryDC)
		}
	}
}

func TestPlannerObjectiveMatchesHandComputation(t *testing.T) {
	s := twoDCState(t, 0)
	plan := solvePlan(t, s, Options{})
	p := &s.Params
	dc := &s.Target.DCs[0]
	want := 0.0
	for i := range s.Groups {
		g := &s.Groups[i]
		want += float64(g.Servers) * (dc.SpaceCost.UnitCostAt(0) + model.ServerMonthlyCost(dc, p))
		want += g.DataMbPerMonth * dc.WANCostPerMb
	}
	if math.Abs(plan.Cost.Total()-want) > 1e-6*want {
		t.Errorf("total = %v, want %v", plan.Cost.Total(), want)
	}
}

func TestPlannerRespectsCapacity(t *testing.T) {
	s := twoDCState(t, 0)
	s.Target.DCs[0].CapacityServers = 25 // cheap DC can't hold both (10+20)
	plan := solvePlan(t, s, Options{})
	// The bigger group (20 servers) should take the cheap DC; accounting
	// must show both DCs used and capacities respected (Evaluate enforces).
	if plan.Cost.DCsUsed != 2 {
		t.Errorf("DCs used = %d, want 2", plan.Cost.DCsUsed)
	}
}

func TestPlannerInfeasibleCapacity(t *testing.T) {
	s := twoDCState(t, 0)
	// The 10-server group fits only in DC0 (DC1 holds 9), the 20-server
	// group fits only in DC0 too — but 30 > 25. Validation passes (the
	// largest DC holds each group individually); packing must fail.
	s.Target.DCs[0].CapacityServers = 25
	s.Target.DCs[1].CapacityServers = 9
	p, err := New(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestPinAndForbid(t *testing.T) {
	s := twoDCState(t, 0)
	p, err := New(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Pin("insensitive", "near"); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.AssignmentFor("insensitive").PrimaryDC; got != "near" {
		t.Errorf("pinned group at %q, want near", got)
	}

	if err := p.Forbid("sensitive", "cheap"); err != nil {
		t.Fatal(err)
	}
	plan, err = p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.AssignmentFor("sensitive").PrimaryDC; got != "near" {
		t.Errorf("forbidden group at %q, want near", got)
	}

	// Error paths.
	if err := p.Pin("nope", "near"); err == nil {
		t.Error("pin of unknown group accepted")
	}
	if err := p.Pin("sensitive", "nope"); err == nil {
		t.Error("pin to unknown DC accepted")
	}
	if err := p.Forbid("sensitive", "nope"); err == nil {
		t.Error("forbid of unknown DC accepted")
	}
	if err := p.Pin("sensitive", "cheap"); err == nil {
		t.Error("pin to forbidden DC accepted")
	}
	if err := p.Forbid("insensitive", "near"); err == nil {
		t.Error("forbid of pinned DC accepted")
	}
}

func TestRegionConstraint(t *testing.T) {
	s := twoDCState(t, 0)
	s.Target.DCs[1].Location.Region = geo.RegionEurope
	s.Groups[1].AllowedRegions = []geo.Region{geo.RegionEurope}
	plan := solvePlan(t, s, Options{})
	if got := plan.AssignmentFor("insensitive").PrimaryDC; got != "near" {
		t.Errorf("region-constrained group at %q, want near (EU)", got)
	}
}

func TestVolumeDiscountDrivesConsolidation(t *testing.T) {
	s := twoDCState(t, 0)
	// Two equally-priced DCs, but tiered pricing rewards concentration.
	curve, err := stepwise.VolumeDiscount(100, 15, 40, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j := range s.Target.DCs {
		s.Target.DCs[j].SpaceCost = curve
		s.Target.DCs[j].PowerCostPerKWh = 0.1
		s.Target.DCs[j].LaborCostPerAdmin = 6000
		s.Target.DCs[j].WANCostPerMb = 0.01
	}
	s.Target.LatencyMs = [][]float64{{5, 5}, {5, 5}}
	plan := solvePlan(t, s, Options{})
	if plan.Cost.DCsUsed != 1 {
		t.Fatalf("volume discount should consolidate into 1 DC, used %d", plan.Cost.DCsUsed)
	}
	// 30 servers at one DC: 15×100 + 15×60 = 2400 space.
	if math.Abs(plan.Cost.Space-2400) > 1e-6 {
		t.Errorf("space = %v, want 2400 (tiered)", plan.Cost.Space)
	}
}

func TestConcaveCurveNotUndercharged(t *testing.T) {
	// With a concave curve and NO fill-order binaries an LP would price
	// all units at the cheapest tier. The planner's self-check
	// (LP objective vs evaluator) would fail if the encoding were wrong;
	// additionally verify the space charge matches the curve exactly.
	s := twoDCState(t, 0)
	curve, err := stepwise.VolumeDiscount(100, 5, 50, 0, 2) // 5@100 then 50
	if err != nil {
		t.Fatal(err)
	}
	s.Target.DCs[0].SpaceCost = curve
	plan := solvePlan(t, s, Options{})
	var atCheap int
	for i := range s.Groups {
		if plan.AssignmentFor(s.Groups[i].ID).PrimaryDC == "cheap" {
			atCheap += s.Groups[i].Servers
		}
	}
	wantSpace := curve.MustEval(float64(atCheap))
	gotCheapSpace := plan.Cost.PerDC["cheap"].Space
	if math.Abs(gotCheapSpace-wantSpace) > 1e-6 {
		t.Errorf("cheap DC space = %v, want %v for %d servers", gotCheapSpace, wantSpace, atCheap)
	}
}

func TestDRPlanBasics(t *testing.T) {
	s := twoDCState(t, 0)
	plan := solvePlan(t, s, Options{DR: true})
	for _, a := range plan.Assignments {
		if a.SecondaryDC == "" {
			t.Fatalf("group %q has no secondary", a.GroupID)
		}
		if a.SecondaryDC == a.PrimaryDC {
			t.Fatalf("group %q has identical primary and secondary", a.GroupID)
		}
	}
	if plan.Cost.TotalBackupServers == 0 {
		t.Error("no backup servers provisioned")
	}
	if plan.Stats.Formulation != "pair" {
		t.Errorf("formulation = %q", plan.Stats.Formulation)
	}
}

func TestDRBackupSharing(t *testing.T) {
	// Three DCs; two groups in different primaries sharing one backup
	// site need only max(S1, S2) backups, not the sum.
	s := &model.AsIsState{
		Name: "share",
		Groups: []model.AppGroup{
			{ID: "a", Servers: 10, UsersByLocation: []int{1}, CurrentDC: "old"},
			{ID: "b", Servers: 8, UsersByLocation: []int{1}, CurrentDC: "old"},
		},
		UserLocations: []geo.Location{{ID: "u0"}},
		Current: model.Estate{
			DCs:       []model.DataCenter{mkDC("old", 100, 100, 0.1, 6000, 0.02)},
			LatencyMs: [][]float64{{5}},
		},
		Target: model.Estate{
			DCs: []model.DataCenter{
				mkDC("d0", 10, 10, 0.01, 1000, 0.001),
				mkDC("d1", 10, 12, 0.01, 1000, 0.001),
				mkDC("d2", 20, 11, 0.01, 1000, 0.001),
			},
			LatencyMs: [][]float64{{5, 5, 5}},
		},
		Params: model.DefaultParams(),
	}
	s.Params.DRServerCost = 100000 // make backup capital dominate
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	plan := solvePlan(t, s, Options{DR: true})
	// Optimal under expensive DR servers: primaries in two DCs (capacity
	// forces a 10 and an 8 apart anyway), both secondaries at the third →
	// shared pool of max(10,8) = 10, not 18.
	if plan.Cost.TotalBackupServers != 10 {
		t.Errorf("backup servers = %d, want 10 (shared single-failure pool)", plan.Cost.TotalBackupServers)
	}
}

func TestOmegaSpreadsGroups(t *testing.T) {
	s := twoDCState(t, 0)
	// Without ω both groups pack into "cheap"; ω=0.5 allows at most 1 of
	// 2 groups per DC.
	plan := solvePlan(t, s, Options{DR: false, Omega: 0.5})
	if plan.Cost.DCsUsed != 2 {
		t.Fatalf("omega=0.5 should spread across 2 DCs, used %d", plan.Cost.DCsUsed)
	}
}

func TestVPNWANMode(t *testing.T) {
	s := twoDCState(t, 0)
	// Dedicated links: cheap DC is far (expensive links), near DC close.
	s.Target.VPNLinkMonthly = [][]float64{
		{5000, 5000}, // links from "cheap"
		{100, 100},   // links from "near"
	}
	s.Params.VPNLinkCapacityMb = 10
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	plan := solvePlan(t, s, Options{})
	// Link counts: sensitive 100Mb/10 = 10 links; insensitive 200/10=20.
	// From cheap: (10+20)×5000 ≫ site savings → both go near.
	for _, a := range plan.Assignments {
		if a.PrimaryDC != "near" {
			t.Errorf("group %q at %q, want near under VPN pricing", a.GroupID, a.PrimaryDC)
		}
	}
}

func TestWriteLPAndExternalSolveAgree(t *testing.T) {
	s := twoDCState(t, 500)
	p, err := New(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := lp.ParseLP(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse exported LP: %v", err)
	}
	extSol, err := milp.Solve(parsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(extSol.Objective-plan.Cost.Total()) > 1e-4*math.Max(1, plan.Cost.Total()) {
		t.Errorf("external solve of exported LP: %v, planner: %v", extSol.Objective, plan.Cost.Total())
	}
}

func TestNewValidation(t *testing.T) {
	s := twoDCState(t, 0)
	if _, err := New(s, Options{DR: true, Formulation: FormulationPaper, Aggregate: true}); err == nil {
		t.Error("paper formulation + aggregation accepted")
	}
	s.Target.DCs = s.Target.DCs[:1]
	s.Target.LatencyMs = [][]float64{{25}, {5}}
	if _, err := New(s, Options{DR: true}); err == nil {
		t.Error("DR with one DC accepted")
	}
	bad := &model.AsIsState{}
	if _, err := New(bad, Options{}); err == nil {
		t.Error("invalid state accepted")
	}
}

// randomState builds a random small estate for property tests.
func randomState(rng *rand.Rand, groups, dcs, users int, dr bool) *model.AsIsState {
	s := &model.AsIsState{
		Name:   "prop",
		Params: model.DefaultParams(),
	}
	s.Params.DRServerCost = float64(rng.Intn(5000))
	for u := 0; u < users; u++ {
		s.UserLocations = append(s.UserLocations, geo.Location{ID: fmt.Sprintf("u%d", u)})
	}
	capTotal := 0
	for j := 0; j < dcs; j++ {
		c := 30 + rng.Intn(60)
		capTotal += c
		s.Target.DCs = append(s.Target.DCs, mkDC(fmt.Sprintf("d%d", j), c,
			float64(20+rng.Intn(200)), 0.03+rng.Float64()*0.2,
			float64(3000+rng.Intn(7000)), 0.005+rng.Float64()*0.05))
	}
	s.Target.LatencyMs = make([][]float64, users)
	for u := range s.Target.LatencyMs {
		row := make([]float64, dcs)
		for j := range row {
			row[j] = float64(2 + rng.Intn(30))
		}
		s.Target.LatencyMs[u] = row
	}
	s.Current = model.Estate{
		DCs:       []model.DataCenter{mkDC("old", 10000, 300, 0.2, 9000, 0.08)},
		LatencyMs: make([][]float64, users),
	}
	for u := range s.Current.LatencyMs {
		s.Current.LatencyMs[u] = []float64{15}
	}
	for i := 0; i < groups; i++ {
		g := model.AppGroup{
			ID:              fmt.Sprintf("g%d", i),
			Servers:         1 + rng.Intn(10),
			DataMbPerMonth:  float64(rng.Intn(2000)),
			UsersByLocation: make([]int, users),
			CurrentDC:       "old",
		}
		for u := range g.UsersByLocation {
			g.UsersByLocation[u] = rng.Intn(40)
		}
		if rng.Intn(2) == 0 {
			pen, err := stepwise.SingleThreshold(float64(5+rng.Intn(15)), float64(rng.Intn(200)))
			if err != nil {
				panic(err)
			}
			g.LatencyPenalty = pen
		}
		s.Groups = append(s.Groups, g)
	}
	return s
}

// TestPairVsPaperFormulationEquivalent proves on random instances that
// the scalable pair formulation and the paper's literal J-linearization
// find plans of equal cost.
func TestPairVsPaperFormulationEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		s := randomState(rng, 3+rng.Intn(3), 3, 2, true)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pairPlan := solvePlan(t, s, Options{DR: true, Formulation: FormulationPair})
		paperPlan := solvePlan(t, s, Options{DR: true, Formulation: FormulationPaper})
		a, b := pairPlan.Cost.Total(), paperPlan.Cost.Total()
		if math.Abs(a-b) > 1e-4*math.Max(1, math.Max(a, b)) {
			t.Fatalf("trial %d: pair %v vs paper %v", trial, a, b)
		}
	}
}

// TestAggregationExact proves that aggregating identical groups is an
// exact reformulation: equal optimal cost with and without it.
func TestAggregationExact(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		base := randomState(rng, 3, 3, 2, false)
		// Duplicate each group to create aggregation fodder. Symmetric
		// duplicates are the worst case for plain branch & bound (that is
		// the point of aggregation), so keep the copy count small here.
		var groups []model.AppGroup
		for i := range base.Groups {
			copies := 2
			for c := 0; c < copies; c++ {
				g := base.Groups[i]
				g.ID = fmt.Sprintf("%s_c%d", g.ID, c)
				g.UsersByLocation = append([]int(nil), g.UsersByLocation...)
				groups = append(groups, g)
			}
		}
		base.Groups = groups
		// Ensure capacity suffices.
		for j := range base.Target.DCs {
			base.Target.DCs[j].CapacityServers += 100
		}
		if err := base.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dr := rng.Intn(2) == 0
		plain := solvePlan(t, base, Options{DR: dr})
		agg := solvePlan(t, base, Options{DR: dr, Aggregate: true})
		a, b := plain.Cost.Total(), agg.Cost.Total()
		if math.Abs(a-b) > 1e-4*math.Max(1, math.Max(a, b)) {
			t.Fatalf("trial %d (dr=%v): plain %v vs aggregated %v", trial, dr, a, b)
		}
		if !agg.Stats.Aggregated || agg.Stats.Cols >= plain.Stats.Cols {
			t.Errorf("trial %d: aggregation did not shrink the model (%d vs %d cols)",
				trial, agg.Stats.Cols, plain.Stats.Cols)
		}
	}
}

// TestCandidatePruning checks that pruning keeps solutions close to
// optimal and that an infeasible pruned model is retried unpruned.
func TestCandidatePruning(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	s := randomState(rng, 8, 5, 2, false)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	full := solvePlan(t, s, Options{})
	pruned := solvePlan(t, s, Options{CandidateK: 2})
	if pruned.Cost.Total() < full.Cost.Total()-1e-6 {
		t.Errorf("pruned (%v) beat full (%v): impossible", pruned.Cost.Total(), full.Cost.Total())
	}
	if pruned.Stats.CandidatesK != 2 {
		t.Errorf("stats K = %d", pruned.Stats.CandidatesK)
	}

	// Force pruning infeasibility: every group's cheapest DC is the same
	// tiny one; K=1 packs them all there and fails, triggering a retry.
	s2 := twoDCState(t, 0)
	s2.Target.DCs[0].CapacityServers = 21 // fits either group alone, not both
	plan := solvePlan(t, s2, Options{CandidateK: 1})
	if plan.Cost.DCsUsed != 2 {
		t.Errorf("pruning retry should spread to 2 DCs, used %d", plan.Cost.DCsUsed)
	}
	if plan.Stats.CandidatesK != 0 {
		t.Errorf("retry stats should record K=0 (unpruned), got %d", plan.Stats.CandidatesK)
	}
}

// TestSelfCheckObjective: the decode self-check compares LP objective to
// the evaluator on every solve; run a batch of random instances through
// all option combinations to exercise it.
func TestSelfCheckAcrossOptionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		s := randomState(rng, 4, 3, 2, true)
		// Mix in a tiered curve.
		curve, err := stepwise.VolumeDiscount(float64(100+rng.Intn(100)), 20, 20, 10, 3)
		if err != nil {
			t.Fatal(err)
		}
		s.Target.DCs[0].SpaceCost = curve
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, opt := range []Options{
			{},
			{DR: true},
			{DR: true, Omega: 0.75},
			{DR: true, Formulation: FormulationPaper},
			{Aggregate: true},
		} {
			plan := solvePlan(t, s, opt)
			if plan.Cost.Total() <= 0 {
				t.Errorf("trial %d opts %+v: nonpositive cost", trial, opt)
			}
		}
	}
}

func TestBuildModelStats(t *testing.T) {
	s := twoDCState(t, 100)
	p, err := New(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	// 2 groups × 2 DCs = 4 binaries; 2 assignment + 2 capacity rows.
	if m.NumVars() != 4 || m.NumRows() != 4 {
		t.Errorf("model dims %d×%d, want 4 vars × 4 rows: %s", m.NumVars(), m.NumRows(), m.Stats())
	}
}

// TestMILPSolverOptionsPassThrough ensures solver limits propagate.
func TestMILPSolverOptionsPassThrough(t *testing.T) {
	s := twoDCState(t, 0)
	p, err := New(s, Options{Solver: milp.Options{Simplex: simplex.Options{MaxIters: 100000}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(); err != nil {
		t.Fatal(err)
	}
}
