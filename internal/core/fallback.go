package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/etransform/etransform/internal/baseline"
	"github.com/etransform/etransform/internal/certify"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/simplex"
	"github.com/etransform/etransform/internal/tol"
)

// This file implements the resilient solve pipeline: a chain of solver
// stages that degrade gracefully when the exact MILP fails or runs out
// of budget.
//
//	stage 1  exact branch & bound, with one retry on a perturbed
//	         branching order under Bland's pivoting rule;
//	stage 2  LP-relaxation rounding with greedy repair;
//	stage 3  the greedy baseline (internal/baseline), falling back to the
//	         builder's constraint-aware greedy when pins or forbidden
//	         sites defeat the plain baseline.
//
// Every stage's product — including the exact solver's — passes through
// internal/certify before it is decoded, so no stage can ship an
// infeasible plan. Genuine model outcomes (infeasible, unbounded) and
// context cancellation stop the chain immediately: they are answers, not
// failures to route around. A plan produced by anything other than a
// clean first-attempt exact solve carries a DegradationReport in
// Plan.Stats.Degradation naming the producing stage, the budget
// dimension that tripped (if any), and the full attempt log.

// retrySeed deterministically re-seeds the branching order for the exact
// stage's second attempt, so failure injections tied to pivot or node
// counts land elsewhere on the retry trajectory.
const retrySeed = 7919

// unknownGap is the JSON-safe sentinel recorded when a fallback stage
// delivers a plan without any dual bound (an honest +Inf gap would not
// survive encoding/json).
const unknownGap = -1

// solvePipeline runs the chain for one candidate-pruning level.
func (p *Planner) solvePipeline(ctx context.Context, candidateK int) (*model.Plan, error) {
	b, err := p.build(candidateK)
	if err != nil {
		return nil, err
	}
	report := &lp.DegradationReport{Gap: unknownGap}
	warm := b.warmStarts()
	if x, ok := b.seedPoint(); ok {
		// A registered previous plan outranks the heuristic candidates:
		// it goes first so re-planning starts from yesterday's answer.
		warm = append([][]float64{x}, warm...)
	}

	// Per-attempt observability spans: stage_start/stage_end trace
	// events bracketing every try, and per-stage wall-clock counters
	// whose sum stays within the pipeline total. All hooks are nil-safe
	// no-ops when observability is off.
	tr := p.opts.Solver.Trace
	met := p.opts.Solver.Metrics
	pipeStart := time.Now()
	defer func() {
		met.Add(obs.MetricPipelineMicros, time.Since(pipeStart).Microseconds())
	}()
	span := func(stage string, attempt int, t0 time.Time) func(outcome, detail string) {
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindStageStart, Name: stage, Attempt: attempt})
		}
		return func(outcome, detail string) {
			met.Add(obs.MetricStageAttempts, 1)
			met.Add(obs.MetricStageMicrosPrefix+stage, time.Since(t0).Microseconds())
			if tr != nil {
				tr.Emit(obs.Event{
					Kind: obs.KindStageEnd, Name: stage, Attempt: attempt,
					Status: outcome, Detail: detail,
				})
			}
		}
	}

	var firstErr error
	fail := func(stage string, attempt int, t0 time.Time, err error) {
		report.Attempts = append(report.Attempts, lp.StageAttempt{
			Stage: stage, Attempt: attempt, Outcome: "failed",
			Error: err.Error(), Millis: time.Since(t0).Milliseconds(),
		})
		if firstErr == nil {
			firstErr = err
		}
	}

	// Stage 1: exact MILP.
	for attempt := 1; attempt <= 2; attempt++ {
		solver := p.opts.Solver
		solver.WarmStarts = warm
		if attempt > 1 {
			solver.PerturbSeed = retrySeed
			solver.Simplex.Bland = true
		}
		t0 := time.Now()
		end := span(lp.StageExact, attempt, t0)
		sol, err := milp.SolveContext(ctx, b.m, &solver)
		if err != nil {
			end("error", err.Error())
			if ctx.Err() != nil {
				// Cancellation is the caller's decision, not a solver
				// failure; the chain has no budget left to spend.
				return nil, fmt.Errorf("core: solving %s: %w", b.m.Name, err)
			}
			fail(lp.StageExact, attempt, t0, err)
			continue
		}
		end(sol.Status.String(), "")
		switch sol.Status {
		case lp.StatusInfeasible:
			// A genuine answer, not a failure: no stage can place groups
			// the constraints exclude.
			err := fmt.Errorf("core: no feasible plan: the application groups cannot be packed into the target data centers under the given constraints")
			if candidateK > 0 {
				return nil, &prunedInfeasibleError{inner: err}
			}
			return nil, err
		case lp.StatusUnbounded:
			return nil, fmt.Errorf("core: internal: consolidation MILP unbounded")
		}
		if sol.X == nil {
			// The budget expired before any incumbent existed. Retrying the
			// same budget would starve the same way; escalate directly.
			err := fmt.Errorf("core: solver stopped (%v) before finding any feasible plan", sol.Status)
			fail(lp.StageExact, attempt, t0, err)
			report.Limit = sol.Limit
			break
		}
		plan, err := b.finishSolution(sol)
		if err != nil {
			// Certification or decode failure: the solver's point cannot be
			// trusted — exactly what the perturbed retry exists for.
			fail(lp.StageExact, attempt, t0, err)
			continue
		}
		rec := lp.StageAttempt{
			Stage: lp.StageExact, Attempt: attempt, Outcome: "ok",
			Status: sol.Status.String(), Millis: time.Since(t0).Milliseconds(),
		}
		if sol.Status == lp.StatusOptimal {
			if attempt == 1 && len(report.Attempts) == 0 {
				// Clean first-attempt exact solve: no report at all, so the
				// fault-free path stays bit-identical to a plain solve.
				return plan, nil
			}
			report.Attempts = append(report.Attempts, rec)
			report.Stage = lp.StageExact
			report.StageIndex = 1
			report.Gap = sol.Gap
			plan.Stats.Degradation = report
			return plan, nil
		}
		// Feasible but not proven optimal: a budget dimension ended the
		// search early. Surrender the certified incumbent with its gap.
		rec.Outcome = "degraded"
		report.Attempts = append(report.Attempts, rec)
		report.Degraded = true
		report.Stage = lp.StageExact
		report.StageIndex = 1
		report.Limit = sol.Limit
		report.Gap = sol.Gap
		if math.IsInf(sol.Gap, 1) {
			report.Gap = unknownGap
		}
		report.Reason = degradeReason(sol)
		plan.Stats.Degradation = report
		return plan, nil
	}

	// The fallback stages need a model whose points encodePoint supports;
	// for the paper formulation that is the (exact) pair reformulation.
	fb := b
	if p.opts.DR && p.opts.Formulation == FormulationPaper {
		pair := &Planner{state: p.state, opts: p.opts}
		pair.opts.Formulation = FormulationPair
		fb, err = pair.build(candidateK)
		if err != nil {
			return nil, fmt.Errorf("core: all solve stages failed (pair reformulation for fallback: %v); first failure: %w", err, firstErr)
		}
	}

	// Stage 2: LP-relaxation rounding with greedy repair.
	t0 := time.Now()
	end := span(lp.StageRounding, 1, t0)
	plan, err := fb.lpRoundingPlan(ctx, p.stageDeadline())
	if err == nil {
		end("ok", "")
		report.Attempts = append(report.Attempts, lp.StageAttempt{
			Stage: lp.StageRounding, Attempt: 1, Outcome: "ok",
			Millis: time.Since(t0).Milliseconds(),
		})
		return p.degradedPlan(plan, report, lp.StageRounding, 2, firstErr), nil
	}
	end("failed", err.Error())
	fail(lp.StageRounding, 1, t0, err)
	if ctx.Err() != nil {
		return nil, fmt.Errorf("core: solving %s: %w", b.m.Name, ctx.Err())
	}

	// Stage 3: greedy baseline.
	t0 = time.Now()
	end = span(lp.StageGreedy, 1, t0)
	plan, err = fb.greedyPlan()
	if err == nil {
		end("ok", "")
		report.Attempts = append(report.Attempts, lp.StageAttempt{
			Stage: lp.StageGreedy, Attempt: 1, Outcome: "ok",
			Millis: time.Since(t0).Milliseconds(),
		})
		return p.degradedPlan(plan, report, lp.StageGreedy, 3, firstErr), nil
	}
	end("failed", err.Error())
	fail(lp.StageGreedy, 1, t0, err)

	return nil, fmt.Errorf("core: all solve stages failed (exact, lp-rounding, greedy); first failure: %w", firstErr)
}

// jsonSafeGap maps an infinite gap (a surrendered incumbent with no
// proven bound) to the unknown sentinel, so plans always survive
// encoding/json.
func jsonSafeGap(gap float64) float64 {
	if math.IsInf(gap, 0) || math.IsNaN(gap) {
		return unknownGap
	}
	return gap
}

// degradedPlan attaches the degradation report to a fallback-produced
// plan.
func (p *Planner) degradedPlan(plan *model.Plan, report *lp.DegradationReport, stage string, index int, cause error) *model.Plan {
	report.Degraded = true
	report.Stage = stage
	report.StageIndex = index
	report.Gap = unknownGap
	report.Reason = fmt.Sprintf("exact MILP stage failed (%v); plan produced by the %s fallback", cause, stage)
	plan.Stats.Degradation = report
	return plan
}

// degradeReason renders the one-line cause for an exact solve that
// stopped at a budget limit with a certified incumbent.
func degradeReason(sol *lp.Solution) string {
	limit := sol.Limit
	if limit == "" {
		limit = sol.Status.String()
	}
	if math.IsInf(sol.Gap, 1) {
		return fmt.Sprintf("exact search stopped at the %s limit before proving any bound", limit)
	}
	return fmt.Sprintf("exact search stopped at the %s limit with a certified gap of %.4g", limit, sol.Gap)
}

// stageDeadline computes the per-stage wall budget for fallback stages:
// each stage gets a fresh allowance equal to the configured solve wall
// limit (the zero time means unbounded).
func (p *Planner) stageDeadline() time.Time {
	wall := p.opts.Solver.TimeLimit
	if b := p.opts.Solver.Budget.Wall; b > 0 && (wall <= 0 || b < wall) {
		wall = b
	}
	if wall <= 0 {
		return time.Time{}
	}
	return time.Now().Add(wall)
}

// finishSolution certifies sol against the full MILP and decodes it into
// a plan. Every plan the planner returns — exact or fallback — passes
// through here, so a solver bug cannot silently ship an infeasible plan.
// The tolerance matches the incumbent-acceptance tolerance used inside
// branch & bound.
func (b *builder) finishSolution(sol *lp.Solution) (*model.Plan, error) {
	cert, err := certify.CheckSolution(b.m, sol, &certify.Options{FeasTol: tol.Accept, IntTol: tol.Accept})
	if err != nil {
		return nil, fmt.Errorf("core: certifying %s: %w", b.m.Name, err)
	}
	if cert != nil {
		if err := cert.Err(); err != nil {
			return nil, fmt.Errorf("core: plan for %s failed certification: %w", b.m.Name, err)
		}
	}
	plan, err := b.decode(sol)
	if err != nil {
		return nil, err
	}
	if cert != nil {
		plan.Stats.Certificate = cert.Summary()
	}
	return plan, nil
}

// planFromPoint encodes a concrete (placement, secondary) assignment as
// a full MILP point, certifies it, and decodes the plan. The synthetic
// solution carries no dual bound, so Gap uses the unknown sentinel.
func (b *builder) planFromPoint(placement, secondary []int) (*model.Plan, error) {
	x, ok := b.encodePoint(placement, secondary)
	if !ok {
		return nil, fmt.Errorf("core: fallback assignment needs a column pruned out of the model")
	}
	sol := &lp.Solution{Status: lp.StatusFeasible, X: x, Objective: b.m.Objective(x), Gap: unknownGap}
	return b.finishSolution(sol)
}

// lpRoundingPlan is stage 2: solve the continuous relaxation, round each
// group onto the site carrying the largest fractional mass (repairing
// capacity greedily, largest groups first), polish with local search,
// and certify.
func (b *builder) lpRoundingPlan(ctx context.Context, deadline time.Time) (*model.Plan, error) {
	opts := b.p.opts.Solver.Simplex
	if !deadline.IsZero() {
		opts.Deadline = deadline
	}
	// The relaxation bypasses milp.SolveContext (which normally hands the
	// observer down), so wire the stage-2 LP into the same tracer/registry
	// here: its pivots and phase events count toward the solve totals.
	opts.Trace = b.p.opts.Solver.Trace
	opts.Metrics = b.p.opts.Solver.Metrics
	rel, err := simplex.SolveContext(ctx, b.m.Relax(), &opts)
	if err != nil {
		return nil, fmt.Errorf("core: lp-rounding relaxation: %w", err)
	}
	if rel.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("core: lp-rounding relaxation ended %v", rel.Status)
	}
	for _, v := range rel.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: lp-rounding relaxation returned non-finite values")
		}
	}
	placement, secondary, ok := b.roundedPlacement(rel.X)
	if !ok {
		return nil, fmt.Errorf("core: lp-rounding could not repair the fractional point into a feasible packing")
	}
	if b.improvable() {
		b.localImprove(placement, secondary, 2)
	}
	return b.planFromPoint(placement, secondary)
}

// roundedPlacement turns a fractional relaxation point into a concrete
// assignment: groups (largest first) go to the feasible site whose
// columns carry the most LP mass, ties broken by cost; secondaries
// likewise against the chosen primary's columns, then pool capacity is
// repaired.
func (b *builder) roundedPlacement(x []float64) (placement, secondary []int, ok bool) {
	s := b.s
	n := len(s.Target.DCs)
	dr := b.p.opts.DR

	massAt := func(i, j int) float64 {
		t := b.memberType[i]
		if !dr {
			if v, has := b.varOf[[3]int{t, j, -1}]; has {
				return x[v]
			}
			return 0
		}
		m := 0.0
		for sec := 0; sec < n; sec++ {
			if v, has := b.varOf[[3]int{t, j, sec}]; has {
				m += x[v]
			}
		}
		return m
	}

	load := make([]int, n)
	placement = make([]int, len(s.Groups))
	order := sortedIndices(len(s.Groups), func(i int) float64 { return -float64(s.Groups[i].Servers) })
	for _, i := range order {
		g := &s.Groups[i]
		best := -1
		bestMass := math.Inf(-1)
		bestCost := math.Inf(1)
		for j := 0; j < n; j++ {
			if !b.primaryAvailable(i, j) || load[j]+g.Servers > s.Target.DCs[j].CapacityServers {
				continue
			}
			m := massAt(i, j)
			c := b.primaryCost(g, j)
			if m > bestMass+tol.Tie || (tol.Same(m, bestMass) && c < bestCost) {
				best, bestMass, bestCost = j, m, c
			}
		}
		if best < 0 {
			return nil, nil, false
		}
		placement[i] = best
		load[best] += g.Servers
	}
	if !dr {
		return placement, nil, true
	}

	secondary = make([]int, len(s.Groups))
	for i := range s.Groups {
		g := &s.Groups[i]
		t := b.memberType[i]
		best := -1
		bestMass := math.Inf(-1)
		bestCost := math.Inf(1)
		for j := 0; j < n; j++ {
			if j == placement[i] || !b.feasibleSecondary(g, j) || !b.hasColumn(i, placement[i], j) {
				continue
			}
			m := 0.0
			if v, has := b.varOf[[3]int{t, placement[i], j}]; has {
				m = x[v]
			}
			c := b.secondaryCost(g, j)
			if m > bestMass+tol.Tie || (tol.Same(m, bestMass) && c < bestCost) {
				best, bestMass, bestCost = j, m, c
			}
		}
		if best < 0 {
			return nil, nil, false
		}
		secondary[i] = best
	}
	if !b.repairPools(placement, secondary) {
		return nil, nil, false
	}
	return placement, secondary, true
}

// greedyPlan is stage 3: the paper's greedy baseline first (certified
// like everything else), then the builder's constraint-aware greedy when
// pins, forbidden sites or pruned columns defeat the plain baseline.
func (b *builder) greedyPlan() (*model.Plan, error) {
	if placement, secondary, ok := b.baselineGreedyPoint(); ok {
		if plan, err := b.planFromPoint(placement, secondary); err == nil {
			return plan, nil
		}
	}
	placement, ok := b.greedyPlacement()
	if !ok {
		return nil, fmt.Errorf("core: greedy packing found no feasible site for some group")
	}
	var secondary []int
	if b.p.opts.DR {
		sec, ok := b.latencyFirstSecondaries(placement, b.poolRank())
		if !ok {
			return nil, fmt.Errorf("core: greedy packing found no feasible secondary assignment")
		}
		secondary = sec
	}
	if b.improvable() {
		b.localImprove(placement, secondary, 2)
	}
	return b.planFromPoint(placement, secondary)
}

// baselineGreedyPoint runs the plain greedy baseline (§VI-B) and maps
// its plan onto model indices. The baseline knows nothing of pins,
// forbidden sites or pruned columns, so the point is pre-screened
// against the builder's feasibility predicates before certification.
func (b *builder) baselineGreedyPoint() ([]int, []int, bool) {
	s := b.s
	plan, err := baseline.Greedy(s, baseline.GreedyOptions{DR: b.p.opts.DR})
	if err != nil {
		return nil, nil, false
	}
	placement := make([]int, len(s.Groups))
	var secondary []int
	if b.p.opts.DR {
		secondary = make([]int, len(s.Groups))
	}
	for i := range s.Groups {
		a := plan.AssignmentFor(s.Groups[i].ID)
		if a == nil {
			return nil, nil, false
		}
		j := s.Target.DCIndex(a.PrimaryDC)
		if j < 0 || !b.primaryAvailable(i, j) {
			return nil, nil, false
		}
		placement[i] = j
		if secondary != nil {
			sj := s.Target.DCIndex(a.SecondaryDC)
			if sj < 0 || sj == j || !b.feasibleSecondary(&s.Groups[i], sj) || !b.hasColumn(i, j, sj) {
				return nil, nil, false
			}
			secondary[i] = sj
		}
	}
	if secondary != nil && !b.repairPools(placement, secondary) {
		return nil, nil, false
	}
	return placement, secondary, true
}

// poolRank orders target data centers by the cost of hosting one shared
// backup server (purchase capital plus marginal space and run cost).
func (b *builder) poolRank() []int {
	s := b.s
	return sortedIndices(len(s.Target.DCs), func(j int) float64 {
		return s.Params.DRServerCost + s.Target.DCs[j].SpaceCost.UnitCostAt(0) + model.ServerMonthlyCost(&s.Target.DCs[j], &s.Params)
	})
}
