package core

import (
	"math"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/milp/cuts"
)

// TestCutsKernelEquivalenceScenarios is the end-to-end safety suite for
// the root cutting planes and the kernel-search heuristic: on the same
// bundled scenario matrix as the dense/sparse equivalence test, every
// combination of {cuts off/on} × {kernel off/on} × {workers 1, 4} must
// certify the identical objective. Cuts may only tighten the dual
// bound and the kernel may only feed incumbents — any drift in the
// certified optimum means a cut deleted a feasible point or the
// heuristic leaked an unverified solution.
func TestCutsKernelEquivalenceScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  datagen.CaseStudyConfig
		dr   bool
	}{
		{"enterprise1", datagen.Enterprise1().Scaled(0.25), false},
		{"enterprise1-dr", datagen.Enterprise1().Scaled(0.25), true},
		{"florida", datagen.Florida().Scaled(0.1), false},
		{"federal", datagen.Federal().Scaled(0.01), false},
	}
	for _, sc := range scenarios {
		s, err := sc.cfg.Generate()
		if err != nil {
			t.Fatalf("%s: generate: %v", sc.name, err)
		}
		var ref float64
		haveRef := false
		for _, enableCuts := range []bool{false, true} {
			for _, enableKernel := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					p, err := New(s, Options{
						Aggregate: true,
						DR:        sc.dr,
						Solver: milp.Options{
							Workers:   workers,
							MaxNodes:  50000,
							TimeLimit: 2 * time.Minute,
							Cuts:      cuts.Options{Enable: enableCuts},
							Kernel:    milp.KernelOptions{Enable: enableKernel},
						},
					})
					if err != nil {
						t.Fatalf("%s: New: %v", sc.name, err)
					}
					plan, err := p.Solve()
					if err != nil {
						t.Fatalf("%s cuts=%v kernel=%v w=%d: %v", sc.name, enableCuts, enableKernel, workers, err)
					}
					if plan.Stats.Certificate == "" {
						t.Fatalf("%s cuts=%v kernel=%v w=%d: no certificate", sc.name, enableCuts, enableKernel, workers)
					}
					if plan.Stats.Gap > 1e-9 {
						t.Fatalf("%s cuts=%v kernel=%v w=%d: not proven optimal (gap %v)",
							sc.name, enableCuts, enableKernel, workers, plan.Stats.Gap)
					}
					total := plan.Cost.Total()
					if !haveRef {
						ref, haveRef = total, true
						continue
					}
					if d := math.Abs(total - ref); d > 1e-6*math.Max(1, math.Abs(ref)) {
						t.Errorf("%s cuts=%v kernel=%v w=%d: certified %v, want %v (diff %g)",
							sc.name, enableCuts, enableKernel, workers, total, ref, d)
					}
				}
			}
		}
	}
}
