package core

import (
	"strings"
	"testing"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/model"
)

// TestSeedPlanWarmResolveMatchesCold is the warm re-planning contract:
// seeding a planner with a previous optimal plan must not change the
// answer — the seeded solve proves the same certified cost (and here the
// identical assignment) the cold solve found, just starting from a
// better incumbent.
func TestSeedPlanWarmResolveMatchesCold(t *testing.T) {
	s, err := datagen.Enterprise1().Scaled(0.12).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cold := solvePlan(t, s, Options{Aggregate: true})

	p, err := New(s, Options{Aggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedPlan(cold); err != nil {
		t.Fatal(err)
	}
	warm, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cost.Total() != cold.Cost.Total() {
		t.Fatalf("warm total %v != cold total %v", warm.Cost.Total(), cold.Cost.Total())
	}
	if len(warm.Assignments) != len(cold.Assignments) {
		t.Fatalf("%d warm assignments, %d cold", len(warm.Assignments), len(cold.Assignments))
	}
	if warm.Stats.Degradation != nil {
		t.Fatalf("seeded solve degraded: %+v", warm.Stats.Degradation)
	}
}

// TestSeedPlanDRResolve covers the pair-formulation DR path, where the
// seed must encode a (primary, secondary, pool) point.
func TestSeedPlanDRResolve(t *testing.T) {
	s := twoDCState(t, 0)
	cold := solvePlan(t, s, Options{DR: true})

	p, err := New(s, Options{DR: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedPlan(cold); err != nil {
		t.Fatal(err)
	}
	warm, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cost.Total() != cold.Cost.Total() {
		t.Fatalf("warm DR total %v != cold %v", warm.Cost.Total(), cold.Cost.Total())
	}
}

// TestSeedPlanVocabularyErrors pins where bad seeds surface: at
// registration, naming the offending group or data center — not
// mid-solve.
func TestSeedPlanVocabularyErrors(t *testing.T) {
	s := twoDCState(t, 0)
	plan := solvePlan(t, s, Options{})

	p, err := New(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	missing := &model.Plan{Assignments: plan.Assignments[:1]}
	if err := p.SeedPlan(missing); err == nil || !strings.Contains(err.Error(), "misses group") {
		t.Fatalf("missing-group seed error = %v", err)
	}
	bad := &model.Plan{Assignments: append([]model.Assignment(nil), plan.Assignments...)}
	bad.Assignments[0].PrimaryDC = "nowhere"
	if err := p.SeedPlan(bad); err == nil || !strings.Contains(err.Error(), "unknown DC") {
		t.Fatalf("unknown-DC seed error = %v", err)
	}

	// A failed registration leaves no stale seed behind; clearing works.
	if err := p.SeedPlan(plan); err != nil {
		t.Fatal(err)
	}
	if err := p.SeedPlan(nil); err != nil {
		t.Fatal(err)
	}
	if p.seedPlacement != nil || p.seedSecondary != nil {
		t.Fatal("SeedPlan(nil) did not clear the seed")
	}
	if _, err := p.Solve(); err != nil {
		t.Fatal(err)
	}
}
