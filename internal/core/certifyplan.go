package core

import (
	"fmt"

	"github.com/etransform/etransform/internal/certify"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/tol"
)

// CertifyPlan independently certifies an externally produced plan —
// e.g. a per-sample optimum the robustness harness wants to promote to
// the ranked-plan list — against this planner's exact MILP: the concrete
// assignment is encoded as a full variable point (placements, backup
// pools, space-segment fills) and checked by internal/certify with the
// same tolerances every solver-produced plan passes through. It returns
// the certificate summary; an error means the plan is not feasible for
// this planner's state and options.
//
// The model is built without candidate pruning so no legal placement is
// missing a column, and the paper DR formulation is certified through
// its exact pair reformulation (the same route the fallback stages use,
// since encodePoint speaks the pair encoding).
func (p *Planner) CertifyPlan(plan *model.Plan) (string, error) {
	if plan == nil {
		return "", fmt.Errorf("core: nil plan")
	}
	cp := p
	if p.opts.DR && p.opts.Formulation == FormulationPaper {
		pair := &Planner{state: p.state, opts: p.opts}
		pair.opts.Formulation = FormulationPair
		cp = pair
	}
	b, err := cp.build(0)
	if err != nil {
		return "", err
	}
	placement, secondary, err := p.assignmentIndices(plan)
	if err != nil {
		return "", err
	}
	x, ok := b.encodePoint(placement, secondary)
	if !ok {
		return "", fmt.Errorf("core: plan for %s cannot be encoded as a model point", b.m.Name)
	}
	sol := &lp.Solution{Status: lp.StatusFeasible, X: x, Objective: b.m.Objective(x), Gap: unknownGap}
	cert, err := certify.CheckSolution(b.m, sol, &certify.Options{FeasTol: tol.Accept, IntTol: tol.Accept})
	if err != nil {
		return "", fmt.Errorf("core: certifying plan for %s: %w", b.m.Name, err)
	}
	if cert == nil {
		return "", fmt.Errorf("core: certifier produced no certificate for %s", b.m.Name)
	}
	if err := cert.Err(); err != nil {
		return "", fmt.Errorf("core: plan for %s failed certification: %w", b.m.Name, err)
	}
	return cert.Summary(), nil
}

// assignmentIndices maps a plan's named assignments onto this state's
// indices: placement[i] is the target-DC index of group i's primary, and
// (under DR) secondary[i] of its backup site. It is the shared first half
// of both plan certification and plan-seeded re-solves; an error means
// the plan does not speak this state's group or data-center vocabulary.
func (p *Planner) assignmentIndices(plan *model.Plan) (placement, secondary []int, err error) {
	s := p.state
	placement = make([]int, len(s.Groups))
	if p.opts.DR {
		secondary = make([]int, len(s.Groups))
	}
	for i := range s.Groups {
		a := plan.AssignmentFor(s.Groups[i].ID)
		if a == nil {
			return nil, nil, fmt.Errorf("core: plan misses group %q", s.Groups[i].ID)
		}
		j := s.Target.DCIndex(a.PrimaryDC)
		if j < 0 {
			return nil, nil, fmt.Errorf("core: plan places group %q at unknown DC %q", a.GroupID, a.PrimaryDC)
		}
		placement[i] = j
		if secondary != nil {
			sj := s.Target.DCIndex(a.SecondaryDC)
			if sj < 0 {
				return nil, nil, fmt.Errorf("core: plan gives group %q unknown secondary DC %q", a.GroupID, a.SecondaryDC)
			}
			secondary[i] = sj
		}
	}
	return placement, secondary, nil
}
