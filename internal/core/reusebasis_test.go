package core

import (
	"math"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/obs"
)

// TestReuseBasisEnterprise1 is the end-to-end warm-start acceptance
// check on the seeded Enterprise1 scenario: with basis reuse on, the
// planner must reach the same certified objective as the cold path at
// the default (effectively exact) gap, record warm_hits > 0 in
// Plan.Stats.Metrics, and spend fewer simplex iterations doing it.
func TestReuseBasisEnterprise1(t *testing.T) {
	// 0.25 scale matches the checked-in bench artifact and genuinely
	// branches (~100 nodes); smaller fractions solve at the root, which
	// would leave the warm path nothing to do.
	s, err := datagen.Enterprise1().Scaled(0.25).Generate()
	if err != nil {
		t.Fatal(err)
	}
	solve := func(reuse bool) (total float64, stats map[string]int64, iters int) {
		t.Helper()
		met := obs.NewMetrics()
		p, err := New(s, Options{Aggregate: true, Solver: milp.Options{
			Workers: 1, ReuseBasis: reuse, Metrics: met,
			MaxNodes: 50000, TimeLimit: 2 * time.Minute,
		}})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if plan.Stats.Certificate == "" {
			t.Fatalf("reuse=%v: plan shipped without a certificate", reuse)
		}
		if plan.Stats.Metrics == nil {
			t.Fatalf("reuse=%v: metrics snapshot missing from Plan.Stats", reuse)
		}
		return plan.Cost.Total(), plan.Stats.Metrics.Counters, plan.Stats.Iterations
	}
	coldObj, coldCounters, coldIters := solve(false)
	warmObj, warmCounters, warmIters := solve(true)

	if diff := math.Abs(warmObj - coldObj); diff > 1e-6*math.Max(1, math.Abs(coldObj)) {
		t.Errorf("warm objective %v != cold objective %v (diff %g)", warmObj, coldObj, diff)
	}
	if hits := warmCounters[obs.MetricSimplexWarmHits]; hits == 0 {
		t.Error("warm solve recorded no warm_hits in Plan.Stats.Metrics")
	}
	if coldCounters[obs.MetricSimplexWarmHits] != 0 {
		t.Errorf("cold solve recorded %d warm_hits, want 0", coldCounters[obs.MetricSimplexWarmHits])
	}
	if warmIters >= coldIters {
		// The whole point: warm restoration replaces full two-phase
		// re-solves. Equality would mean the warm path never saved work.
		t.Errorf("warm solve took %d simplex iterations, cold took %d; expected a reduction", warmIters, coldIters)
	}
	t.Logf("enterprise1(0.25): cold %d iters, warm %d iters, warm_hits=%d warm_misses=%d",
		coldIters, warmIters,
		warmCounters[obs.MetricSimplexWarmHits], warmCounters[obs.MetricSimplexWarmMisses])
}
