// Package core implements the eTransform transformation and consolidation
// planner — the paper's primary contribution (§III–§IV). It converts an
// as-is enterprise state into a mixed-integer linear program whose
// solution is the "to-be" plan:
//
//	minimize  Σ_ij X_ij ( S_i(Q_j + αE_j + T_j/β) + D_i W_j + L_ij )
//	s.t.      Σ_j X_ij = 1          (every group placed)
//	          Σ_i S_i X_ij ≤ O_j    (capacity)
//	          X_ij ∈ {0,1}
//
// with extensions for volume-discount space pricing (Schoomer-style step
// functions, §III-B), dedicated-VPN WAN pricing, and integrated disaster
// recovery (§IV-B: secondary sites, a shared single-failure backup pool
// G_b = max_a Σ_c J_abc S_c, and the business-impact cap ω).
//
// Two DR formulations are provided: the paper's literal (X, Y, J, G)
// linearization, and an equivalent pair-assignment formulation
// (Z_{i,(a,b)} with M + N + N² + N rows) that scales far better; a
// property test proves they agree. Identical application groups can be
// aggregated into integer-count variables — an exact reformulation that
// collapses the paper's largest (Federal) dataset to a tractable size.
//
// # Invariants
//
//   - Every plan returned by Solve/SolveContext has been independently
//     certified by internal/certify against the full MILP (row
//     activities, bounds, integrality); a solver bug cannot silently
//     ship an infeasible plan. Plan.Stats.Certificate records the
//     verdict.
//   - The LP objective and the shared cost evaluator in internal/model
//     are cross-checked on every decode, so the MILP provably encodes
//     the same economics the reports print.
//   - Candidate pruning (Options.CandidateK) is transparent: a pruned
//     model that turns out infeasible is automatically retried unpruned.
//
// # Goroutine safety
//
// A Planner is NOT safe for concurrent use: Pin and Forbid mutate the
// underlying state, and Solve reads it. Distinct Planner values over
// distinct AsIsState values are fully independent, so concurrent solves
// of different scenarios (as in internal/experiments' sweeps) are safe.
// The underlying milp solve is itself parallel — tune it through
// Options.Solver.Workers rather than racing multiple Planners over one
// state.
package core
