package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/stepwise"
)

// Metamorphic tests: transformations of the input with a known effect on
// the certified optimum. Every plan here passes through internal/certify
// (the planner certifies unconditionally), so an objective match is a
// statement about the true optimum, not about two runs sharing a bug.
//
//   - scaling every cost input by k scales the optimum by exactly k;
//   - permuting DC and group indices leaves the optimum (and each
//     group's placement) unchanged;
//   - adding a strictly dominated (costlier, no closer) data center
//     changes nothing.
//
// Each property is checked at Workers 1 and 4: the parallel search must
// land on the same certified objective.

// metamorphicState is the seeded base scenario: enterprise1 shrunk to a
// size where 2×4 exact solves stay fast.
func metamorphicState(t *testing.T) *model.AsIsState {
	t.Helper()
	s, err := datagen.Enterprise1().Scaled(0.08).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// copyState deep-copies a state through its JSON codec — the same bytes
// a user's -state file would carry.
func copyState(t *testing.T, s *model.AsIsState) *model.AsIsState {
	t.Helper()
	var buf bytes.Buffer
	if err := model.WriteState(&buf, s); err != nil {
		t.Fatal(err)
	}
	out, err := model.ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// scaleCurve multiplies every tier price of a space-cost curve by k.
func scaleCurve(t *testing.T, c stepwise.Curve, k float64) stepwise.Curve {
	t.Helper()
	segs := c.Segments()
	if len(segs) == 0 {
		return c
	}
	for i := range segs {
		segs[i].UnitCost *= k
	}
	out, err := stepwise.NewCurve(segs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// scalePenalty multiplies every penalty step of a latency penalty by k.
func scalePenalty(t *testing.T, p stepwise.LatencyPenalty, k float64) stepwise.LatencyPenalty {
	t.Helper()
	steps := p.Steps()
	if len(steps) == 0 {
		return p
	}
	for i := range steps {
		steps[i].PenaltyPerUser *= k
	}
	out, err := stepwise.NewLatencyPenalty(steps)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// scaleEstate multiplies every cost input of an estate by k.
func scaleEstate(t *testing.T, e *model.Estate, k float64) {
	t.Helper()
	for j := range e.DCs {
		dc := &e.DCs[j]
		dc.SpaceCost = scaleCurve(t, dc.SpaceCost, k)
		dc.PowerCostPerKWh *= k
		dc.LaborCostPerAdmin *= k
		dc.WANCostPerMb *= k
	}
	for j := range e.VPNLinkMonthly {
		for r := range e.VPNLinkMonthly[j] {
			e.VPNLinkMonthly[j][r] *= k
		}
	}
}

// scaleCosts multiplies every cost input of the whole state by k,
// leaving all physical quantities (capacities, latencies, demand) alone.
func scaleCosts(t *testing.T, s *model.AsIsState, k float64) {
	t.Helper()
	scaleEstate(t, &s.Current, k)
	scaleEstate(t, &s.Target, k)
	for i := range s.Groups {
		s.Groups[i].LatencyPenalty = scalePenalty(t, s.Groups[i].LatencyPenalty, k)
	}
	s.Params.DRServerCost *= k
}

func solveWithWorkers(t *testing.T, s *model.AsIsState, workers int) *model.Plan {
	t.Helper()
	p, err := New(s, Options{Solver: milp.Options{Workers: workers, GapTol: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.Degradation != nil {
		t.Fatalf("metamorphic solve degraded: %+v", plan.Stats.Degradation)
	}
	return plan
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMetamorphicCostScaling(t *testing.T) {
	const k = 3.5
	base := metamorphicState(t)
	for _, workers := range []int{1, 4} {
		ref := solveWithWorkers(t, copyState(t, base), workers)
		scaled := copyState(t, base)
		scaleCosts(t, scaled, k)
		got := solveWithWorkers(t, scaled, workers)
		if d := relDiff(got.Cost.Total(), k*ref.Cost.Total()); d > 1e-6 {
			t.Errorf("workers=%d: scaled optimum %v, want %v × %v = %v (rel diff %g)",
				workers, got.Cost.Total(), k, ref.Cost.Total(), k*ref.Cost.Total(), d)
		}
	}
}

// permuteState returns a copy with target DCs and groups in a seeded
// random order (latency columns and VPN rows permuted consistently).
func permuteState(t *testing.T, s *model.AsIsState, seed int64) *model.AsIsState {
	t.Helper()
	out := copyState(t, s)
	rng := rand.New(rand.NewSource(seed))

	n := len(out.Target.DCs)
	perm := rng.Perm(n) // new index i holds old DC perm[i]
	dcs := make([]model.DataCenter, n)
	for i, old := range perm {
		dcs[i] = out.Target.DCs[old]
	}
	out.Target.DCs = dcs
	for r := range out.Target.LatencyMs {
		row := make([]float64, n)
		for i, old := range perm {
			row[i] = out.Target.LatencyMs[r][old]
		}
		out.Target.LatencyMs[r] = row
	}
	if len(out.Target.VPNLinkMonthly) > 0 {
		vpn := make([][]float64, n)
		for i, old := range perm {
			vpn[i] = out.Target.VPNLinkMonthly[old]
		}
		out.Target.VPNLinkMonthly = vpn
	}

	rng.Shuffle(len(out.Groups), func(i, j int) {
		out.Groups[i], out.Groups[j] = out.Groups[j], out.Groups[i]
	})
	if err := out.Validate(); err != nil {
		t.Fatalf("permuted state invalid: %v", err)
	}
	return out
}

func TestMetamorphicIndexPermutation(t *testing.T) {
	base := metamorphicState(t)
	for _, workers := range []int{1, 4} {
		ref := solveWithWorkers(t, copyState(t, base), workers)
		for seed := int64(1); seed <= 3; seed++ {
			got := solveWithWorkers(t, permuteState(t, base, seed), workers)
			if d := relDiff(got.Cost.Total(), ref.Cost.Total()); d > 1e-6 {
				t.Errorf("workers=%d seed=%d: permuted optimum %v, want %v (rel diff %g)",
					workers, seed, got.Cost.Total(), ref.Cost.Total(), d)
			}
			// Placements are identified by DC ID, so they must survive
			// the index shuffle group by group.
			for _, a := range ref.Assignments {
				pa := got.AssignmentFor(a.GroupID)
				if pa == nil || pa.PrimaryDC != a.PrimaryDC {
					t.Errorf("workers=%d seed=%d: group %q moved from %q to %v",
						workers, seed, a.GroupID, a.PrimaryDC, pa)
				}
			}
		}
	}
}

// dominatedState appends a clone of the first target DC whose every cost
// is ×1000 at identical latency: no group can prefer it, so the optimum
// must not move.
func dominatedState(t *testing.T, s *model.AsIsState) *model.AsIsState {
	t.Helper()
	out := copyState(t, s)
	dc := out.Target.DCs[0]
	dc.ID = "dominated"
	dc.Location.ID = "loc-dominated"
	dc.SpaceCost = scaleCurve(t, dc.SpaceCost, 1000)
	dc.PowerCostPerKWh *= 1000
	dc.LaborCostPerAdmin *= 1000
	dc.WANCostPerMb *= 1000
	out.Target.DCs = append(out.Target.DCs, dc)
	for r := range out.Target.LatencyMs {
		out.Target.LatencyMs[r] = append(out.Target.LatencyMs[r], out.Target.LatencyMs[r][0])
	}
	if len(out.Target.VPNLinkMonthly) > 0 {
		row := append([]float64(nil), out.Target.VPNLinkMonthly[0]...)
		for i := range row {
			row[i] *= 1000
		}
		out.Target.VPNLinkMonthly = append(out.Target.VPNLinkMonthly, row)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("dominated state invalid: %v", err)
	}
	return out
}

func TestMetamorphicDominatedDC(t *testing.T) {
	base := metamorphicState(t)
	for _, workers := range []int{1, 4} {
		ref := solveWithWorkers(t, copyState(t, base), workers)
		got := solveWithWorkers(t, dominatedState(t, base), workers)
		if d := relDiff(got.Cost.Total(), ref.Cost.Total()); d > 1e-6 {
			t.Errorf("workers=%d: optimum moved from %v to %v after adding a dominated DC (rel diff %g)",
				workers, ref.Cost.Total(), got.Cost.Total(), d)
		}
		for _, a := range got.Assignments {
			if a.PrimaryDC == "dominated" || a.SecondaryDC == "dominated" {
				t.Errorf("workers=%d: group %q assigned to the dominated DC", workers, a.GroupID)
			}
		}
	}
}
