package core_test

import (
	"context"
	"fmt"
	"time"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/stepwise"
)

func exampleDC(id string, capacity int, space, power, labor, wan float64) model.DataCenter {
	return model.DataCenter{
		ID:                id,
		Location:          geo.Location{ID: "loc-" + id, Region: geo.RegionNorthAmerica},
		CapacityServers:   capacity,
		SpaceCost:         stepwise.Flat(space),
		PowerCostPerKWh:   power,
		LaborCostPerAdmin: labor,
		WANCostPerMb:      wan,
	}
}

// ExamplePlanner_SolveContext consolidates a two-group estate under a
// wall-clock budget enforced through the context. On timeout or cancel
// no plan is returned and the error wraps the context's error; within
// budget the certified plan comes back as usual.
func ExamplePlanner_SolveContext() {
	penalty, err := stepwise.SingleThreshold(10, 1000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	state := &model.AsIsState{
		Name: "example",
		Groups: []model.AppGroup{
			{ID: "sensitive", Servers: 10, DataMbPerMonth: 100, UsersByLocation: []int{100, 0}, LatencyPenalty: penalty, CurrentDC: "old"},
			{ID: "insensitive", Servers: 20, DataMbPerMonth: 200, UsersByLocation: []int{0, 50}, CurrentDC: "old"},
		},
		UserLocations: []geo.Location{{ID: "u0"}, {ID: "u1"}},
		Current: model.Estate{
			DCs:       []model.DataCenter{exampleDC("old", 100, 200, 0.2, 9000, 0.05)},
			LatencyMs: [][]float64{{12}, {12}},
		},
		Target: model.Estate{
			DCs: []model.DataCenter{
				exampleDC("cheap", 100, 50, 0.05, 5000, 0.01), // far from u0
				exampleDC("near", 100, 150, 0.15, 9000, 0.03), // near u0
			},
			LatencyMs: [][]float64{{25, 5}, {5, 25}},
		},
		Params: model.DefaultParams(),
	}

	planner, err := core.New(state, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	plan, err := planner.SolveContext(ctx)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, a := range plan.Assignments {
		fmt.Printf("%s -> %s\n", a.GroupID, a.PrimaryDC)
	}
	// Output:
	// sensitive -> near
	// insensitive -> cheap
}
