package core

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/resilience/faultinject"
)

// TestCleanSolveCarriesNoDegradation: the fault-free path must be
// indistinguishable from a plain exact solve — no report, identical
// output across runs.
func TestCleanSolveCarriesNoDegradation(t *testing.T) {
	var blobs [][]byte
	for run := 0; run < 2; run++ {
		plan := solvePlan(t, twoDCState(t, 1000), Options{})
		if plan.Stats.Degradation != nil {
			t.Fatalf("clean solve attached a degradation report: %+v", plan.Stats.Degradation)
		}
		b, err := json.Marshal(plan)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Error("clean solves are not bit-identical across runs")
	}
}

// TestRetryWithPerturbationRecovers: a fault that fires exactly once
// kills the first exact attempt; the perturbed retry must deliver the
// optimal plan, with the failure on record and Degraded still false.
func TestRetryWithPerturbationRecovers(t *testing.T) {
	s := twoDCState(t, 1000)
	clean := solvePlan(t, s, Options{})
	opts := Options{}
	opts.Solver.Inject = faultinject.New(1, faultinject.Fault{Kind: faultinject.KindPivot})
	plan := solvePlan(t, twoDCState(t, 1000), opts)
	d := plan.Stats.Degradation
	if d == nil {
		t.Fatal("retry-recovered solve lost its attempt log")
	}
	if d.Degraded {
		t.Errorf("retry reached the exact optimum; Degraded should be false: %+v", d)
	}
	if d.Stage != lp.StageExact || d.StageIndex != 1 {
		t.Errorf("stage = %q/%d, want exact-milp/1", d.Stage, d.StageIndex)
	}
	if len(d.Attempts) != 2 || d.Attempts[0].Outcome != "failed" || d.Attempts[1].Outcome != "ok" {
		t.Fatalf("attempt log = %+v, want [failed, ok]", d.Attempts)
	}
	if !strings.Contains(d.Attempts[0].Error, "injected pivot failure") {
		t.Errorf("first attempt error = %q, want the injected pivot failure", d.Attempts[0].Error)
	}
	if plan.Cost.Total() != clean.Cost.Total() {
		t.Errorf("retry plan costs %v, clean plan %v", plan.Cost.Total(), clean.Cost.Total())
	}
}

// TestFallbackToRoundingOnPersistentExactFailure: a fault that fires
// forever defeats both exact attempts; the LP-rounding stage must
// deliver a certified feasible plan naming the stage and the cause.
func TestFallbackToRoundingOnPersistentExactFailure(t *testing.T) {
	opts := Options{}
	opts.Solver.Inject = faultinject.New(1, faultinject.Fault{Kind: faultinject.KindPivot, Count: -1})
	plan := solvePlan(t, twoDCState(t, 1000), opts)
	d := plan.Stats.Degradation
	if d == nil || !d.Degraded {
		t.Fatalf("fallback plan must be marked degraded: %+v", d)
	}
	if d.Stage != lp.StageRounding || d.StageIndex != 2 {
		t.Fatalf("stage = %q/%d, want lp-rounding/2", d.Stage, d.StageIndex)
	}
	if !strings.Contains(d.Reason, "injected pivot failure") {
		t.Errorf("reason %q does not name the exact-stage failure", d.Reason)
	}
	if len(d.Attempts) != 3 {
		t.Fatalf("attempt log = %+v, want 2 exact failures + 1 rounding ok", d.Attempts)
	}
	if plan.Stats.Certificate == "" {
		t.Error("fallback plan was not certified")
	}
	if _, err := model.EvaluatePlan(twoDCState(t, 1000), plan); err != nil {
		t.Errorf("fallback plan fails evaluation: %v", err)
	}
	if _, err := json.Marshal(plan); err != nil {
		t.Errorf("degraded plan does not survive JSON: %v", err)
	}
}

// TestFallbackCascadesToGreedy: corrupting every simplex result kills
// the exact stage and the rounding stage's relaxation; the LP-free
// greedy stage must still deliver a certified plan.
func TestFallbackCascadesToGreedy(t *testing.T) {
	opts := Options{}
	opts.Solver.Simplex.Inject = faultinject.New(1, faultinject.Fault{Kind: faultinject.KindCorrupt, Count: -1})
	plan := solvePlan(t, twoDCState(t, 1000), opts)
	d := plan.Stats.Degradation
	if d == nil || !d.Degraded {
		t.Fatalf("greedy fallback plan must be marked degraded: %+v", d)
	}
	if d.Stage != lp.StageGreedy || d.StageIndex != 3 {
		t.Fatalf("stage = %q/%d, want greedy/3", d.Stage, d.StageIndex)
	}
	var stages []string
	for _, a := range d.Attempts {
		stages = append(stages, a.Stage+":"+a.Outcome)
	}
	got := strings.Join(stages, ",")
	want := "exact-milp:failed,exact-milp:failed,lp-rounding:failed,greedy:ok"
	if got != want {
		t.Errorf("attempt log %q, want %q", got, want)
	}
	if plan.Stats.Certificate == "" {
		t.Error("greedy fallback plan was not certified")
	}
}

// TestDegradedBudgetSurrendersIncumbent: an expired wall budget makes
// the exact stage surrender its warm-start incumbent as a certified
// degraded plan, with the limit named and the gap JSON-safe.
func TestDegradedBudgetSurrendersIncumbent(t *testing.T) {
	opts := Options{}
	opts.Solver.TimeLimit = time.Nanosecond
	plan := solvePlan(t, twoDCState(t, 1000), opts)
	d := plan.Stats.Degradation
	if d == nil || !d.Degraded {
		t.Fatalf("budget-limited plan must be marked degraded: %+v", d)
	}
	if d.Stage != lp.StageExact {
		t.Fatalf("stage = %q, want exact-milp (surrendered incumbent)", d.Stage)
	}
	if d.Limit != lp.LimitWallClock {
		t.Errorf("Limit = %q, want %q", d.Limit, lp.LimitWallClock)
	}
	if plan.Stats.Gap > 0 || plan.Stats.Gap < -1 {
		t.Errorf("Stats.Gap = %v, want a finite value in [-1, 0]", plan.Stats.Gap)
	}
	if _, err := json.Marshal(plan); err != nil {
		t.Errorf("degraded plan does not survive JSON: %v", err)
	}
	if plan.Stats.Certificate == "" {
		t.Error("surrendered incumbent was not certified")
	}
}

// TestFallbackPaperFormulationUsesPairModel: when the paper formulation
// fails, the fallback stages run on the exact pair reformulation and
// must still produce a DR plan with secondaries and pools.
func TestFallbackPaperFormulationUsesPairModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomState(rng, 8, 3, 2, true)
	opts := Options{DR: true, Formulation: FormulationPaper}
	opts.Solver.Inject = faultinject.New(1, faultinject.Fault{Kind: faultinject.KindPivot, Count: -1})
	plan := solvePlan(t, s, opts)
	d := plan.Stats.Degradation
	if d == nil || !d.Degraded || d.Stage != lp.StageRounding {
		t.Fatalf("degradation = %+v, want lp-rounding fallback", d)
	}
	if plan.Stats.Formulation != "pair" {
		t.Errorf("fallback formulation = %q, want the pair reformulation", plan.Stats.Formulation)
	}
	for _, a := range plan.Assignments {
		if a.SecondaryDC == "" || a.SecondaryDC == a.PrimaryDC {
			t.Fatalf("assignment %+v lacks a distinct secondary", a)
		}
	}
	if len(plan.BackupServers) == 0 {
		t.Error("DR fallback plan has no backup pools")
	}
}
