package core

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
)

// Formulation selects how disaster recovery is linearized.
type Formulation int

// DR formulations.
const (
	// FormulationPair assigns each group one (primary, secondary) pair
	// variable: M·N·(N−1) columns but only M + N + N² + N rows.
	FormulationPair Formulation = iota + 1
	// FormulationPaper is the paper's §IV-B encoding with X, Y binaries
	// and continuous J_abc linking variables: M·N² linking rows.
	FormulationPaper
)

// String implements fmt.Stringer.
func (f Formulation) String() string {
	switch f {
	case FormulationPair:
		return "pair"
	case FormulationPaper:
		return "paper"
	default:
		return fmt.Sprintf("Formulation(%d)", int(f))
	}
}

// Options configure the planner.
type Options struct {
	// DR plans primary and secondary sites plus a shared single-failure
	// backup pool (§IV).
	DR bool
	// Omega is the business-impact parameter ω: the maximum fraction of
	// all application groups any single data center may host. Values ≤ 0
	// or ≥ 1 disable the cap.
	Omega float64
	// Formulation selects the DR linearization; default FormulationPair.
	Formulation Formulation
	// DedicatedBackups sizes DR pools for multiple concurrent failures:
	// every group gets its own backup servers (G_b = sum of demand routed
	// to b) instead of the shared single-failure pool (§IV-A).
	DedicatedBackups bool
	// CandidateK, when positive, restricts each group to its K cheapest
	// feasible data centers (for both primary and secondary roles). This
	// prunes columns on very large estates; the solve statistics record
	// it, and an infeasible pruned model is automatically retried
	// unpruned.
	CandidateK int
	// Aggregate merges identical application groups into integer-count
	// variables — an exact reformulation that shrinks synthetic datasets
	// with repeated group templates (e.g. the Federal case study).
	Aggregate bool
	// ComputeShadowPrices re-solves the LP with the plan's integer
	// decisions fixed and records each capacity row's dual value in
	// Plan.CapacityShadow — the marginal worth of one more server slot
	// per data center.
	ComputeShadowPrices bool
	// Solver passes through branch & bound options.
	Solver milp.Options
}

func (o Options) withDefaults() Options {
	if o.Formulation == 0 {
		o.Formulation = FormulationPair
	}
	return o
}

// Planner plans the transformation of one as-is state.
type Planner struct {
	state *model.AsIsState
	opts  Options
	// seedPlacement/seedSecondary hold a previous plan's assignment,
	// mapped to this state's indices by SeedPlan, to be encoded as the
	// first warm-start point of the next solve.
	seedPlacement []int
	seedSecondary []int
}

// New validates the state and returns a Planner.
func New(state *model.AsIsState, opts Options) (*Planner, error) {
	if err := state.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if o.Formulation != FormulationPair && o.Formulation != FormulationPaper {
		return nil, fmt.Errorf("core: unknown formulation %d", int(o.Formulation))
	}
	if o.Formulation == FormulationPaper && o.Aggregate {
		return nil, fmt.Errorf("core: the paper formulation does not support aggregation; use FormulationPair")
	}
	if o.Formulation == FormulationPaper && o.DedicatedBackups {
		return nil, fmt.Errorf("core: the paper formulation implements only shared single-failure pools; use FormulationPair for dedicated backups")
	}
	if o.DR && len(state.Target.DCs) < 2 {
		return nil, fmt.Errorf("core: DR planning needs at least 2 target data centers, have %d", len(state.Target.DCs))
	}
	return &Planner{state: state, opts: o}, nil
}

// Pin forces the group's primary placement (the admin iterative-
// modification interface of Figure 5): call, then Solve again.
func (p *Planner) Pin(groupID, dcID string) error {
	g := p.findGroup(groupID)
	if g == nil {
		return fmt.Errorf("core: unknown group %q", groupID)
	}
	if p.state.Target.DCIndex(dcID) < 0 {
		return fmt.Errorf("core: unknown target data center %q", dcID)
	}
	for _, f := range g.ForbiddenDCs {
		if f == dcID {
			return fmt.Errorf("core: group %q forbids data center %q", groupID, dcID)
		}
	}
	g.PinnedDC = dcID
	return nil
}

// Forbid excludes a target data center from a group's placements
// (primary and secondary).
func (p *Planner) Forbid(groupID, dcID string) error {
	g := p.findGroup(groupID)
	if g == nil {
		return fmt.Errorf("core: unknown group %q", groupID)
	}
	if p.state.Target.DCIndex(dcID) < 0 {
		return fmt.Errorf("core: unknown target data center %q", dcID)
	}
	if g.PinnedDC == dcID {
		return fmt.Errorf("core: group %q is pinned to data center %q", groupID, dcID)
	}
	for _, f := range g.ForbiddenDCs {
		if f == dcID {
			return nil
		}
	}
	g.ForbiddenDCs = append(g.ForbiddenDCs, dcID)
	return nil
}

func (p *Planner) findGroup(id string) *model.AppGroup {
	for i := range p.state.Groups {
		if p.state.Groups[i].ID == id {
			return &p.state.Groups[i]
		}
	}
	return nil
}

// SeedPlan registers a previously computed plan as the starting point of
// the next solve: its assignment is encoded as a feasible incumbent and
// handed to branch & bound ahead of the heuristic warm starts, so a
// re-plan after a small state or option change prunes against yesterday's
// answer from node zero instead of rediscovering it. The seed only
// accelerates — the solver still proves optimality (or its gap) against
// the current model, and a seed the new model rejects is simply unused.
// Passing nil clears the seed.
//
// The plan must speak this state's vocabulary: every group covered, every
// named data center present in the target estate (secondary sites too,
// when the planner runs with DR). Vocabulary errors are reported here, at
// registration, rather than surfacing mid-solve.
func (p *Planner) SeedPlan(prev *model.Plan) error {
	if prev == nil {
		p.seedPlacement, p.seedSecondary = nil, nil
		return nil
	}
	placement, secondary, err := p.assignmentIndices(prev)
	if err != nil {
		return fmt.Errorf("core: seed plan: %w", err)
	}
	p.seedPlacement, p.seedSecondary = placement, secondary
	return nil
}

// BuildModel constructs the MILP without solving it, for inspection or
// export through WriteLP.
func (p *Planner) BuildModel() (*lp.Model, error) {
	b, err := p.build(p.opts.CandidateK)
	if err != nil {
		return nil, err
	}
	return b.m, nil
}

// WriteLP exports the MILP in CPLEX LP format — the same interchange the
// paper's transformation module hands to its optimization engine.
func (p *Planner) WriteLP(w io.Writer) error {
	m, err := p.BuildModel()
	if err != nil {
		return err
	}
	return m.WriteLP(w)
}

// Solve builds the MILP, solves it, and decodes the to-be plan. The
// plan's cost breakdown comes from the shared evaluator in package model;
// a self-check verifies the LP objective agrees with it.
func (p *Planner) Solve() (*model.Plan, error) {
	return p.SolveContext(context.Background())
}

// SolveContext is Solve with cancellation. The context is threaded into
// the branch & bound search; on cancellation no plan is returned (plans
// must certify end to end) and the error wraps ctx.Err(), so
// errors.Is(err, context.Canceled) works. Options.Solver.TimeLimit
// remains the graceful way to bound a solve and still get a plan.
//
// Solves run through the resilient pipeline (see fallback.go): when the
// exact MILP stage fails — a solver error, a corrupted result that fails
// certification — it is retried once on a perturbed trajectory and then
// replaced by the LP-rounding and greedy fallback stages. Plans produced
// by anything other than a clean first-attempt exact solve carry a
// machine-readable report in Plan.Stats.Degradation.
func (p *Planner) SolveContext(ctx context.Context) (*model.Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan, err := p.solvePipeline(ctx, p.opts.CandidateK)
	if err != nil && p.opts.CandidateK > 0 {
		if _, pruned := err.(*prunedInfeasibleError); pruned {
			// Candidate pruning can cut off every feasible packing; retry
			// with full candidate sets before declaring defeat.
			plan, err = p.solvePipeline(ctx, 0)
		}
	}
	if plan != nil && err == nil {
		// Fold the solve's counters into the plan so -metrics and the
		// property tests see the registry state as of this plan. nil when
		// collection is off, keeping default output byte-identical.
		plan.Stats.Metrics = p.opts.Solver.Metrics.Snapshot()
	}
	return plan, err
}

// prunedInfeasibleError marks an infeasibility that may be an artifact of
// candidate pruning.
type prunedInfeasibleError struct{ inner error }

func (e *prunedInfeasibleError) Error() string { return e.inner.Error() }
func (e *prunedInfeasibleError) Unwrap() error { return e.inner }

// sortedIndices returns 0..n-1 ordered by the given cost function
// (ascending), tie-broken by index for determinism.
func sortedIndices(n int, cost func(int) float64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return cost(idx[a]) < cost(idx[b]) })
	return idx
}
