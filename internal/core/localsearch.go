package core

import (
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/tol"
)

// localImprove hill-climbs a feasible (placement, secondary) assignment
// under the shared evaluator: for each group it tries every alternative
// primary and secondary site, accepting the first cost-reducing feasible
// move, for up to maxPasses sweeps. The DR MILP's LP bound is weak (see
// warm.go), so polishing the warm candidates this way is what actually
// closes most of the primal gap on latency-classed estates; branch &
// bound then only sharpens the bound.
//
// placement and secondary are modified in place; secondary may be nil
// (non-DR). Returns the final evaluated total cost.
func (b *builder) localImprove(placement, secondary []int, maxPasses int) float64 {
	s := b.s
	n := len(s.Target.DCs)
	cur := b.evalTotal(placement, secondary)
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := range s.Groups {
			g := &s.Groups[i]
			// Try moving the primary (only to sites whose placement
			// columns exist — candidate pruning may have dropped some).
			oldA := placement[i]
			for a := 0; a < n; a++ {
				if a == oldA || !b.feasiblePrimary(g, a) {
					continue
				}
				if secondary != nil && secondary[i] == a {
					continue
				}
				sec := -1
				if secondary != nil {
					sec = secondary[i]
				}
				if !b.hasColumn(i, a, sec) {
					continue
				}
				placement[i] = a
				if c := b.evalTotal(placement, secondary); c < cur-tol.Tighten {
					cur = c
					oldA = a
					improved = true
				} else {
					placement[i] = oldA
				}
			}
			if secondary == nil {
				continue
			}
			// Try moving the secondary.
			oldB := secondary[i]
			for sb := 0; sb < n; sb++ {
				if sb == oldB || sb == placement[i] || !b.feasibleSecondary(g, sb) {
					continue
				}
				if !b.hasColumn(i, placement[i], sb) {
					continue
				}
				secondary[i] = sb
				if c := b.evalTotal(placement, secondary); c < cur-tol.Tighten {
					cur = c
					oldB = sb
					improved = true
				} else {
					secondary[i] = oldB
				}
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// evalTotal scores an assignment with the shared evaluator, returning
// +Inf for infeasible (capacity-violating) assignments.
func (b *builder) evalTotal(placement, secondary []int) float64 {
	var backups []int
	if secondary != nil {
		backups = b.requiredBackups(placement, secondary)
	}
	bd, err := model.Evaluate(b.s, &b.s.Target, placement, secondary, backups)
	if err != nil || bd.SharedRiskViolations > 0 {
		// The MILP forbids shared-risk co-location, so warm candidates
		// must too.
		return inf()
	}
	return bd.Total()
}

func inf() float64 { return 1e308 }
