package core

import (
	"math"

	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/tol"
)

// This file implements the planner's warm-start heuristic for DR solves.
// The DR MILP's LP relaxation understates the shared-pool cost (a
// fractional solution spreads each group's secondary across many sites,
// deflating every G_b ≥ Σ demand row), so branch & bound needs a strong
// incumbent to prune against. The heuristic constructs the structures the
// optimum actually takes — primaries spread over the k cheapest sites
// with all secondaries routed to a common pool site — for every k, and
// feeds each encoding to the solver as a candidate incumbent.

// warmStarts returns candidate feasible points: a greedy packing for
// plain consolidation models, and structured pool/latency variants for
// pair-formulation DR models.
func (b *builder) warmStarts() [][]float64 {
	if b.p.opts.DR && b.p.opts.Formulation == FormulationPaper {
		return nil
	}
	if !b.p.opts.DR {
		placement, ok := b.greedyPlacement()
		if !ok {
			return nil
		}
		if b.improvable() {
			b.localImprove(placement, nil, 2)
		}
		if x, ok := b.encodePoint(placement, nil); ok {
			return [][]float64{x}
		}
		return nil
	}
	s := b.s
	n := len(s.Target.DCs)
	perServer := func(j int) float64 {
		return s.Target.DCs[j].SpaceCost.UnitCostAt(0) + model.ServerMonthlyCost(&s.Target.DCs[j], &s.Params)
	}
	rank := sortedIndices(n, perServer)

	poolCost := func(j int) float64 {
		dc := &s.Target.DCs[j]
		return s.Params.DRServerCost + dc.SpaceCost.UnitCostAt(0) + model.ServerMonthlyCost(&s.Target.DCs[j], &s.Params)
	}
	poolRank := sortedIndices(n, poolCost)

	maxK := n
	if maxK > 12 {
		maxK = 12
	}
	type cand struct {
		placement, secondary []int
		cost                 float64
	}
	var cands []cand
	add := func(placement, secondary []int) {
		cands = append(cands, cand{placement, secondary, b.evalTotal(placement, secondary)})
	}
	for k := 1; k <= maxK; k++ {
		// Variant A: primaries on the k cheapest sites; pool wherever
		// cheapest (good when DR servers are cheap and consolidation
		// dominates).
		// Variant B: reserve the cheapest pool site exclusively for
		// backups so a single shared pool of max-single-failure size
		// covers everyone (good when DR servers are expensive).
		variants := [][]int{rank[:k:k]}
		if n > k {
			var exclusive []int
			for _, j := range rank {
				if j != poolRank[0] {
					exclusive = append(exclusive, j)
				}
				if len(exclusive) == k {
					break
				}
			}
			variants = append(variants, exclusive)
		}
		for _, prims := range variants {
			for _, latencyFirst := range []bool{false, true} {
				placement, secondary, ok := b.heuristicDRPlacement(prims, poolRank, latencyFirst)
				if !ok {
					continue
				}
				add(placement, secondary)
			}
		}
	}
	// One more variant: cost-greedy primaries (which respect latency
	// penalties) with latency-first secondaries.
	if placement, ok := b.greedyPlacement(); ok {
		if secondary, ok := b.latencyFirstSecondaries(placement, poolRank); ok {
			add(placement, secondary)
		}
	}

	// Polish the most promising candidates with local search before
	// encoding: the LP bound is too weak for branch & bound to do this
	// refinement itself in reasonable time.
	sortCands := sortedIndices(len(cands), func(i int) float64 { return cands[i].cost })
	polish := 3
	if !b.improvable() {
		polish = 0
	}
	var out [][]float64
	for rank2, ci := range sortCands {
		c := cands[ci]
		if rank2 < polish {
			b.localImprove(c.placement, c.secondary, 3)
		}
		if x, ok := b.encodePoint(c.placement, c.secondary); ok {
			out = append(out, x)
		}
	}
	return out
}

// seedPoint encodes the planner's registered seed plan (SeedPlan) as a
// full variable point for this build, or ok=false when no seed is set,
// the formulation cannot encode concrete points (paper DR), or the seed
// names a column this model pruned away. A seed that fails to encode is
// silently unused — it is an accelerator, never a requirement.
func (b *builder) seedPoint() ([]float64, bool) {
	if b.p.seedPlacement == nil {
		return nil, false
	}
	if b.p.opts.DR && b.p.opts.Formulation == FormulationPaper {
		return nil, false
	}
	return b.encodePoint(b.p.seedPlacement, b.p.seedSecondary)
}

// improvable bounds the local-search effort: on very large estates a
// single sweep costs too much, so polishing is skipped (the structural
// warm starts still apply).
func (b *builder) improvable() bool {
	return len(b.s.Groups)*len(b.s.Target.DCs) <= 50000
}

// hasColumn reports whether the model has a placement column for group
// i at primary a (secondary sec, −1 when non-DR) — false when candidate
// pruning dropped it, in which case warm starts must avoid it too.
func (b *builder) hasColumn(i, a, sec int) bool {
	_, ok := b.varOf[[3]int{b.memberType[i], a, sec}]
	return ok
}

// primaryAvailable reports whether group i may be warm-placed at a: the
// site must be feasible and, under candidate pruning, still have columns.
func (b *builder) primaryAvailable(i, a int) bool {
	g := &b.s.Groups[i]
	if !b.feasiblePrimary(g, a) {
		return false
	}
	if !b.p.opts.DR {
		return b.hasColumn(i, a, -1)
	}
	for sb := range b.s.Target.DCs {
		if sb != a && b.hasColumn(i, a, sb) {
			return true
		}
	}
	return false
}

// greedyPlacement packs groups (largest first) into the cheapest feasible
// site by marginal cost, as a fast primal bound for the solver.
func (b *builder) greedyPlacement() ([]int, bool) {
	s := b.s
	load := make([]int, len(s.Target.DCs))
	placement := make([]int, len(s.Groups))
	order := sortedIndices(len(s.Groups), func(i int) float64 { return -float64(s.Groups[i].Servers) })
	for _, i := range order {
		g := &s.Groups[i]
		best := -1
		bestCost := math.Inf(1)
		for j := range s.Target.DCs {
			if !b.primaryAvailable(i, j) {
				continue
			}
			dc := &s.Target.DCs[j]
			if load[j]+g.Servers > dc.CapacityServers {
				continue
			}
			c := b.primaryCost(g, j)
			if !b.flatSpace[j] {
				c += dc.SpaceCost.MustEval(float64(load[j]+g.Servers)) - dc.SpaceCost.MustEval(float64(load[j]))
			}
			if c < bestCost {
				best, bestCost = j, c
			}
		}
		if best < 0 {
			return nil, false
		}
		placement[i] = best
		load[best] += g.Servers
	}
	return placement, true
}

// latencyFirstSecondaries picks each group's cheapest-latency feasible
// secondary (ties broken by pool cost), then validates pool capacity.
func (b *builder) latencyFirstSecondaries(placement []int, poolRank []int) ([]int, bool) {
	s := b.s
	n := len(s.Target.DCs)
	poolPos := make([]int, n)
	for pos, j := range poolRank {
		poolPos[j] = pos
	}
	secondary := make([]int, len(s.Groups))
	for i := range s.Groups {
		g := &s.Groups[i]
		sec := -1
		bestCost := math.Inf(1)
		bestPos := n
		for j := 0; j < n; j++ {
			if j == placement[i] || !b.feasibleSecondary(g, j) || !b.hasColumn(i, placement[i], j) {
				continue
			}
			c := b.secondaryCost(g, j)
			if c < bestCost || (tol.Same(c, bestCost) && poolPos[j] < bestPos) {
				sec, bestCost, bestPos = j, c, poolPos[j]
			}
		}
		if sec < 0 {
			return nil, false
		}
		secondary[i] = sec
	}
	if !b.repairPools(placement, secondary) {
		return nil, false
	}
	return secondary, true
}

// heuristicDRPlacement spreads primaries across the given sites
// (load-balanced) and routes secondaries either to a common cheap pool
// site or, when latencyFirst is set, to each group's cheapest-latency
// site.
func (b *builder) heuristicDRPlacement(prims, poolRank []int, latencyFirst bool) (placement, secondary []int, ok bool) {
	s := b.s
	n := len(s.Target.DCs)

	load := make([]int, n)
	placement = make([]int, len(s.Groups))
	order := sortedIndices(len(s.Groups), func(i int) float64 { return -float64(s.Groups[i].Servers) })
	for _, i := range order {
		g := &s.Groups[i]
		best := -1
		bestRatio := math.Inf(1)
		for _, j := range prims {
			if !b.primaryAvailable(i, j) {
				continue
			}
			dc := &s.Target.DCs[j]
			if load[j]+g.Servers > dc.CapacityServers {
				continue
			}
			ratio := float64(load[j]+g.Servers) / float64(dc.CapacityServers)
			if ratio < bestRatio {
				best, bestRatio = j, ratio
			}
		}
		if best < 0 {
			// Latency-sensitive or pinned groups may have no candidate
			// column inside the chosen prefix (candidate pruning keeps
			// only their own cheapest sites); fall back to the group's
			// cheapest available site with room.
			bestCost := math.Inf(1)
			for j := 0; j < n; j++ {
				if !b.primaryAvailable(i, j) || load[j]+g.Servers > s.Target.DCs[j].CapacityServers {
					continue
				}
				if c := b.primaryCost(g, j); c < bestCost {
					best, bestCost = j, c
				}
			}
			if best < 0 {
				return nil, nil, false
			}
		}
		placement[i] = best
		load[best] += g.Servers
	}

	// Pool sites: prefer sites not hosting primaries, then by pool cost.
	inPrims := make(map[int]bool, len(prims))
	for _, j := range prims {
		inPrims[j] = true
	}
	b1, b2 := -1, -1
	for _, j := range poolRank {
		if !inPrims[j] && b1 < 0 {
			b1 = j
		}
	}
	if b1 < 0 {
		b1 = poolRank[0]
	}
	for _, j := range poolRank {
		if j != b1 {
			b2 = j
			break
		}
	}
	if b2 < 0 {
		b2 = b1
	}

	secondary = make([]int, len(s.Groups))
	for i := range s.Groups {
		g := &s.Groups[i]
		sec := -1
		if latencyFirst && !g.LatencyPenalty.IsZero() {
			// Latency-sensitive groups fail over to the cheapest-latency
			// site; zero-penalty sites still pool well per user class.
			bestCost := math.Inf(1)
			for j := 0; j < n; j++ {
				if j == placement[i] || !b.feasibleSecondary(g, j) || !b.hasColumn(i, placement[i], j) {
					continue
				}
				if c := b.secondaryCost(g, j); c < bestCost {
					sec, bestCost = j, c
				}
			}
		}
		for _, cand := range []int{b1, b2} {
			if sec >= 0 {
				break
			}
			if cand != placement[i] && b.feasibleSecondary(g, cand) && b.hasColumn(i, placement[i], cand) {
				sec = cand
			}
		}
		if sec < 0 {
			// Fall back to the first feasible distinct site in pool-cost
			// order.
			for _, j := range poolRank {
				if j != placement[i] && b.feasibleSecondary(g, j) && b.hasColumn(i, placement[i], j) {
					sec = j
					break
				}
			}
			if sec < 0 {
				return nil, nil, false
			}
		}
		secondary[i] = sec
	}

	// Capacity must hold with the implied pools; reroute overflowing
	// secondaries if not.
	if !b.repairPools(placement, secondary) {
		return nil, nil, false
	}
	return placement, secondary, true
}

// repairPools reroutes secondaries away from data centers whose primary
// load plus backup pool would exceed capacity, largest groups first,
// until every site fits (true) or no move helps (false).
func (b *builder) repairPools(placement, secondary []int) bool {
	s := b.s
	n := len(s.Target.DCs)
	idx := sortedIndices(len(s.Groups), func(i int) float64 { return -float64(s.Groups[i].Servers) })
	for pass := 0; pass < 8*n; pass++ {
		load := make([]int, n)
		for i := range s.Groups {
			load[placement[i]] += s.Groups[i].Servers
		}
		backups := b.requiredBackups(placement, secondary)
		over := -1
		for j := 0; j < n; j++ {
			if load[j]+backups[j] > s.Target.DCs[j].CapacityServers {
				over = j
				break
			}
		}
		if over < 0 {
			return true
		}
		moved := false
		for _, i := range idx {
			if secondary[i] != over {
				continue
			}
			g := &s.Groups[i]
			best := -1
			bestCost := math.Inf(1)
			for j := 0; j < n; j++ {
				if j == over || j == placement[i] || !b.feasibleSecondary(g, j) || !b.hasColumn(i, placement[i], j) {
					continue
				}
				// Conservative slack check: the pool at j can grow by at
				// most this group's size.
				if load[j]+backups[j]+g.Servers > s.Target.DCs[j].CapacityServers {
					continue
				}
				if c := b.secondaryCost(g, j); c < bestCost {
					best, bestCost = j, c
				}
			}
			if best >= 0 {
				secondary[i] = best
				moved = true
				break
			}
		}
		if !moved {
			return false
		}
	}
	return false
}

// encodePoint converts a concrete (placement, secondary) into a full
// variable vector for the pair-formulation model: placement counts, pool
// sizes, and space-segment fills. Returns ok=false when a needed column
// was pruned out of the model.
func (b *builder) encodePoint(placement, secondary []int) ([]float64, bool) {
	s := b.s
	x := make([]float64, b.m.NumVars())
	occ := make([]int, len(s.Target.DCs))
	for i := range s.Groups {
		sec := -1
		if secondary != nil {
			sec = secondary[i]
		}
		v, ok := b.varOf[[3]int{b.memberType[i], placement[i], sec}]
		if !ok {
			return nil, false
		}
		x[v]++
		occ[placement[i]] += s.Groups[i].Servers
	}
	if secondary != nil {
		backups := b.requiredBackups(placement, secondary)
		for j, gj := range backups {
			x[b.gVars[j]] = float64(gj)
			occ[j] += gj
		}
	}
	// Fill space segments in order; open the fill-order binaries for
	// every segment actually used.
	for j := range s.Target.DCs {
		if len(b.segVars[j]) == 0 {
			continue
		}
		rem := float64(occ[j])
		for k, u := range b.segVars[j] {
			take := math.Min(rem, b.segWidths[j][k])
			x[u] = take
			rem -= take
			if k >= 1 && take > 0 && len(b.ordVars[j]) >= k {
				x[b.ordVars[j][k-1]] = 1
			}
		}
		if tol.Pos(rem, tol.Tighten) {
			return nil, false
		}
	}
	return x, true
}
