package core

import (
	"testing"
	"time"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
)

// TestWarmStartProbe is a diagnostic for enterprise1-DR solve quality.
func TestWarmStartProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	s, err := datagen.Enterprise1().Generate()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(s, Options{DR: true, Aggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.build(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model: %s, types=%d", b.m.Stats(), len(b.types))
	warms := b.warmStarts()
	t.Logf("warm candidates: %d", len(warms))
	best := 0.0
	for i, w := range warms {
		obj := b.m.Objective(w)
		if err := b.m.CheckFeasible(w, 1e-5); err != nil {
			t.Logf("warm %d: INFEASIBLE: %v", i, err)
			continue
		}
		if best == 0 || obj < best {
			best = obj
		}
	}
	t.Logf("best warm objective: %.0f", best)
	asis, err := model.EvaluateAsIs(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("as-is op cost: %.0f", asis.OperationalCost())

	p2, err := New(s, Options{DR: true, Aggregate: true,
		Solver: milp.Options{GapTol: 2e-3, MaxNodes: 500, TimeLimit: 20 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("solve: cost=%.0f gap=%.3f nodes=%d violations=%d backups=%d",
		plan.Cost.Total(), plan.Stats.Gap, plan.Stats.Nodes, plan.Cost.LatencyViolations, plan.Cost.TotalBackupServers)
	// The integrated DR plan must stay in the neighbourhood the paper
	// describes: near-zero latency violations and a shared pool far below
	// the estate's 1070 servers.
	if plan.Cost.LatencyViolations > 20 {
		t.Errorf("DR plan has %d latency violations", plan.Cost.LatencyViolations)
	}
	if plan.Cost.TotalBackupServers == 0 || plan.Cost.TotalBackupServers >= 1070 {
		t.Errorf("shared pool = %d servers, want 0 < pool < 1070", plan.Cost.TotalBackupServers)
	}
}
