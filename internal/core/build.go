package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/simplex"
	"github.com/etransform/etransform/internal/tol"
)

// groupType is a set of interchangeable application groups: identical in
// every attribute the objective and constraints can see. Aggregating them
// into one integer-count variable per placement is an exact
// reformulation.
type groupType struct {
	rep     *model.AppGroup
	members []int // indices into state.Groups
}

func (t *groupType) count() int { return len(t.members) }

// placeVar is one placement column: count groups of type t at primary a
// (and secondary b when b ≥ 0).
type placeVar struct {
	v    lp.VarID
	t    int
	a, b int
}

// builder assembles the planner's MILP and retains the decode maps.
type builder struct {
	p *Planner
	s *model.AsIsState
	m *lp.Model

	types []groupType
	// memberType[i] is the type index of state.Groups[i].
	memberType []int
	placeVars  []placeVar
	// varOf maps (type, primary, secondary) — secondary −1 when non-DR —
	// to its placement column, for warm-start encoding.
	varOf map[[3]int]lp.VarID
	// secVars holds the paper formulation's Y_ij columns (empty for the
	// pair formulation).
	secVars []placeVar
	// gVars[j] is the backup pool variable at DC j (DR only).
	gVars []lp.VarID
	// occTerms[j] accumulates the occupancy expression at DC j: S_t per
	// placement unit with primary j, plus 1·G_j.
	occTerms [][]lp.Term
	// cntTerms[j] accumulates the group-count expression at DC j (for ω).
	cntTerms [][]lp.Term
	// flatSpace[j] records that DC j's space cost is folded into column
	// costs (flat curve) rather than segment variables.
	flatSpace []bool
	// segVars/segWidths/ordVars record DC j's space-segment encoding for
	// warm-start construction (empty for flat-priced DCs).
	segVars   [][]lp.VarID
	segWidths [][]float64
	ordVars   [][]lp.VarID
	// capRows[j] is DC j's capacity row (−1 when the DC has no columns),
	// used for shadow-price extraction.
	capRows []lp.RowID

	candidateK int
}

func (p *Planner) build(candidateK int) (*builder, error) {
	s := p.state
	b := &builder{
		p:          p,
		s:          s,
		m:          lp.NewModel(planName(s, &p.opts)),
		candidateK: candidateK,
		occTerms:   make([][]lp.Term, len(s.Target.DCs)),
		cntTerms:   make([][]lp.Term, len(s.Target.DCs)),
		flatSpace:  make([]bool, len(s.Target.DCs)),
		segVars:    make([][]lp.VarID, len(s.Target.DCs)),
		segWidths:  make([][]float64, len(s.Target.DCs)),
		ordVars:    make([][]lp.VarID, len(s.Target.DCs)),
		varOf:      make(map[[3]int]lp.VarID),
	}
	b.buildTypes()

	for j := range s.Target.DCs {
		b.flatSpace[j] = s.Target.DCs[j].SpaceCost.IsFlat()
	}
	if p.opts.DR {
		b.addBackupPools()
	}

	var err error
	if p.opts.DR && p.opts.Formulation == FormulationPaper {
		err = b.addPaperPlacements()
	} else {
		err = b.addPairPlacements()
	}
	if err != nil {
		return nil, err
	}

	b.addCapacityRows()
	b.addOmegaRows()
	b.addSharedRiskRows()
	b.addSpaceSegments()
	return b, nil
}

func planName(s *model.AsIsState, o *Options) string {
	name := s.Name
	if name == "" {
		name = "etransform"
	}
	if o.DR {
		return name + "-dr-" + o.Formulation.String()
	}
	return name + "-consolidation"
}

// buildTypes groups identical application groups (or makes singleton
// types when aggregation is off).
func (b *builder) buildTypes() {
	b.memberType = make([]int, len(b.s.Groups))
	if !b.p.opts.Aggregate {
		b.types = make([]groupType, len(b.s.Groups))
		for i := range b.s.Groups {
			b.types[i] = groupType{rep: &b.s.Groups[i], members: []int{i}}
			b.memberType[i] = i
		}
		return
	}
	index := make(map[string]int)
	for i := range b.s.Groups {
		g := &b.s.Groups[i]
		key := typeKey(g)
		if ti, ok := index[key]; ok {
			b.types[ti].members = append(b.types[ti].members, i)
			b.memberType[i] = ti
			continue
		}
		index[key] = len(b.types)
		b.memberType[i] = len(b.types)
		b.types = append(b.types, groupType{rep: g, members: []int{i}})
	}
}

// typeKey serializes every attribute of a group that the MILP can
// distinguish. Groups with equal keys are interchangeable.
func typeKey(g *model.AppGroup) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "s=%d|d=%g|u=%v|pin=%s", g.Servers, g.DataMbPerMonth, g.UsersByLocation, g.PinnedDC)
	regions := make([]string, len(g.AllowedRegions))
	for i, r := range g.AllowedRegions {
		regions[i] = string(r)
	}
	sort.Strings(regions)
	forb := append([]string(nil), g.ForbiddenDCs...)
	sort.Strings(forb)
	fmt.Fprintf(&sb, "|reg=%v|forb=%v|risk=%s|pen=%v", regions, forb, g.SharedRiskGroup, g.LatencyPenalty.Steps())
	return sb.String()
}

// feasiblePrimary reports whether group g may run at target DC j.
func (b *builder) feasiblePrimary(g *model.AppGroup, j int) bool {
	dc := &b.s.Target.DCs[j]
	if g.Servers > dc.CapacityServers {
		return false
	}
	if g.PinnedDC != "" && g.PinnedDC != dc.ID {
		return false
	}
	return b.allowedDC(g, j)
}

// feasibleSecondary reports whether DC j may host g's DR failover.
func (b *builder) feasibleSecondary(g *model.AppGroup, j int) bool {
	dc := &b.s.Target.DCs[j]
	if g.Servers > dc.CapacityServers {
		return false
	}
	return b.allowedDC(g, j)
}

func (b *builder) allowedDC(g *model.AppGroup, j int) bool {
	dc := &b.s.Target.DCs[j]
	for _, f := range g.ForbiddenDCs {
		if f == dc.ID {
			return false
		}
	}
	if len(g.AllowedRegions) > 0 {
		ok := false
		for _, r := range g.AllowedRegions {
			if dc.Location.Region == r {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// primaryCost is the per-group monthly cost of running g at DC j,
// excluding tiered space (handled by segment variables): servers × (power
// + labor [+ flat space]), WAN, and the latency penalty L_ij.
func (b *builder) primaryCost(g *model.AppGroup, j int) float64 {
	dc := &b.s.Target.DCs[j]
	c := float64(g.Servers) * model.ServerMonthlyCost(dc, &b.s.Params)
	if b.flatSpace[j] {
		c += float64(g.Servers) * dc.SpaceCost.UnitCostAt(0)
	}
	c += model.WANCostAt(g, &b.s.Target, &b.s.Params, j)
	c += model.LatencyPenaltyAt(g, &b.s.Target, &b.s.Params, j)
	return c
}

// secondaryCost is the cost attributed to choosing DC j as g's DR site:
// the weighted post-failover latency penalty. Backup server space, power,
// labor and capital are carried by the shared pool variables G_j.
func (b *builder) secondaryCost(g *model.AppGroup, j int) float64 {
	w := b.s.Params.SecondaryLatencyWeight
	if tol.IsZero(w) {
		return 0
	}
	return w * model.LatencyPenaltyAt(g, &b.s.Target, &b.s.Params, j)
}

// candidates returns the feasible DC indices for the group under the
// given role, pruned to the K cheapest when pruning is on.
func (b *builder) candidates(g *model.AppGroup, feasible func(*model.AppGroup, int) bool, cost func(*model.AppGroup, int) float64) []int {
	var out []int
	for j := range b.s.Target.DCs {
		if feasible(g, j) {
			out = append(out, j)
		}
	}
	if b.candidateK > 0 && len(out) > b.candidateK {
		sort.SliceStable(out, func(x, y int) bool { return cost(g, out[x]) < cost(g, out[y]) })
		out = out[:b.candidateK]
		sort.Ints(out)
	}
	return out
}

// addBackupPools creates the G_j variables: a shared pool of backup
// servers at DC j, costing ζ capital plus the site's per-server power and
// labor (and flat space where applicable).
func (b *builder) addBackupPools() {
	s := b.s
	b.gVars = make([]lp.VarID, len(s.Target.DCs))
	for j := range s.Target.DCs {
		dc := &s.Target.DCs[j]
		cost := s.Params.DRServerCost + model.ServerMonthlyCost(dc, &s.Params)
		if b.flatSpace[j] {
			cost += dc.SpaceCost.UnitCostAt(0)
		}
		v := b.m.AddVar(lp.Variable{
			Name:  fmt.Sprintf("G_%d", j),
			Lower: 0, Upper: float64(dc.CapacityServers),
			Cost: cost, Type: lp.Continuous,
		})
		b.gVars[j] = v
		b.occTerms[j] = append(b.occTerms[j], lp.Term{Var: v, Coef: 1})
	}
}

// addPairPlacements creates the placement columns for the pair
// formulation (and the plain X_ij columns when DR is off), the
// per-type assignment rows, and the DR pool-sizing rows.
func (b *builder) addPairPlacements() error {
	s := b.s
	dr := b.p.opts.DR
	n := len(s.Target.DCs)
	// poolTerms[a*n+b] accumulates Σ S_t Z_{t,(a,b)} for the pool rows.
	var poolTerms [][]lp.Term
	if dr {
		poolTerms = make([][]lp.Term, n*n)
	}

	for ti := range b.types {
		tp := &b.types[ti]
		g := tp.rep
		prims := b.candidates(g, b.feasiblePrimary, b.primaryCost)
		if len(prims) == 0 {
			return fmt.Errorf("core: group %q has no feasible target data center", g.ID)
		}
		var asg []lp.Term
		if !dr {
			for _, a := range prims {
				v := b.addPlaceVar(ti, a, -1, b.primaryCost(g, a))
				asg = append(asg, lp.Term{Var: v, Coef: 1})
			}
		} else {
			secs := b.candidates(g, b.feasibleSecondary, b.secondaryCost)
			for _, a := range prims {
				for _, sb := range secs {
					if sb == a {
						continue
					}
					v := b.addPlaceVar(ti, a, sb, b.primaryCost(g, a)+b.secondaryCost(g, sb))
					asg = append(asg, lp.Term{Var: v, Coef: 1})
					poolTerms[a*n+sb] = append(poolTerms[a*n+sb],
						lp.Term{Var: v, Coef: float64(g.Servers)})
				}
			}
			if len(asg) == 0 {
				return fmt.Errorf("core: group %q has no feasible (primary, secondary) pair; DR needs two distinct feasible data centers", g.ID)
			}
		}
		b.m.AddRow(fmt.Sprintf("assign_%d", ti), asg, lp.EQ, float64(tp.count()))
	}

	if dr {
		if b.p.opts.DedicatedBackups {
			// Multi-failure planning: pools are additive over all primary
			// sites, G_b ≥ Σ_a Σ_t S_t Z_{t,(a,b)}.
			for sb := 0; sb < n; sb++ {
				var terms []lp.Term
				for a := 0; a < n; a++ {
					terms = append(terms, poolTerms[a*n+sb]...)
				}
				if len(terms) == 0 {
					continue
				}
				terms = append(terms, lp.Term{Var: b.gVars[sb], Coef: -1})
				b.m.AddRow(fmt.Sprintf("pool_%d", sb), terms, lp.LE, 0)
			}
		} else {
			for a := 0; a < n; a++ {
				for sb := 0; sb < n; sb++ {
					terms := poolTerms[a*n+sb]
					if len(terms) == 0 {
						continue
					}
					// G_b ≥ Σ S_t Z_{t,(a,b)}: the pool at b covers the
					// worst single-failure demand routed from a.
					terms = append(terms, lp.Term{Var: b.gVars[sb], Coef: -1})
					b.m.AddRow(fmt.Sprintf("pool_%d_%d", a, sb), terms, lp.LE, 0)
				}
			}
		}
	}
	return nil
}

// requiredBackups sizes the pools for a concrete assignment under the
// planner's sharing mode.
func (b *builder) requiredBackups(placement, secondary []int) []int {
	if b.p.opts.DedicatedBackups {
		return model.RequiredBackupsDedicated(b.s, len(b.s.Target.DCs), placement, secondary)
	}
	return model.RequiredBackups(b.s, len(b.s.Target.DCs), placement, secondary)
}

// addPlaceVar creates one placement column and registers its occupancy
// and group-count contributions at the primary DC.
func (b *builder) addPlaceVar(ti, a, sec int, cost float64) lp.VarID {
	tp := &b.types[ti]
	var v lp.VarID
	name := fmt.Sprintf("x_%d_%d", ti, a)
	if sec >= 0 {
		name = fmt.Sprintf("z_%d_%d_%d", ti, a, sec)
	}
	if tp.count() == 1 {
		v = b.m.AddBinary(name, cost)
	} else {
		v = b.m.AddVar(lp.Variable{
			Name: name, Lower: 0, Upper: float64(tp.count()),
			Cost: cost, Type: lp.Integer,
		})
	}
	b.placeVars = append(b.placeVars, placeVar{v: v, t: ti, a: a, b: sec})
	b.varOf[[3]int{ti, a, sec}] = v
	b.occTerms[a] = append(b.occTerms[a], lp.Term{Var: v, Coef: float64(tp.rep.Servers)})
	b.cntTerms[a] = append(b.cntTerms[a], lp.Term{Var: v, Coef: 1})
	return v
}

// addPaperPlacements creates the paper's §IV-B DR encoding: X_ij and Y_ij
// binaries, continuous J linking variables, and the G_b ≥ Σ_c J_abc S_c
// pool rows.
func (b *builder) addPaperPlacements() error {
	s := b.s
	n := len(s.Target.DCs)
	type xy struct{ x, y []lp.VarID } // per group: index by DC, -1 absent
	cols := make([]xy, len(b.types))

	for ti := range b.types {
		g := b.types[ti].rep
		prims := b.candidates(g, b.feasiblePrimary, b.primaryCost)
		secs := b.candidates(g, b.feasibleSecondary, b.secondaryCost)
		if len(prims) == 0 {
			return fmt.Errorf("core: group %q has no feasible target data center", g.ID)
		}
		xs := make([]lp.VarID, n)
		ys := make([]lp.VarID, n)
		for j := range xs {
			xs[j], ys[j] = -1, -1
		}
		var xasg, yasg []lp.Term
		for _, a := range prims {
			v := b.addPlaceVar(ti, a, -1, b.primaryCost(g, a))
			xs[a] = v
			xasg = append(xasg, lp.Term{Var: v, Coef: 1})
		}
		for _, j := range secs {
			v := b.m.AddBinary(fmt.Sprintf("y_%d_%d", ti, j), b.secondaryCost(g, j))
			ys[j] = v
			yasg = append(yasg, lp.Term{Var: v, Coef: 1})
			b.secVars = append(b.secVars, placeVar{v: v, t: ti, a: -1, b: j})
		}
		if len(yasg) == 0 {
			return fmt.Errorf("core: group %q has no feasible secondary data center", g.ID)
		}
		b.m.AddRow(fmt.Sprintf("assign_%d", ti), xasg, lp.EQ, 1)
		b.m.AddRow(fmt.Sprintf("assign_sec_%d", ti), yasg, lp.EQ, 1)
		// X_ij + Y_ij ≤ 1: primary and secondary must differ (the paper's
		// X_ij + Y_ij < 2 over binaries).
		for j := 0; j < n; j++ {
			if xs[j] >= 0 && ys[j] >= 0 {
				b.m.AddRow(fmt.Sprintf("disjoint_%d_%d", ti, j),
					[]lp.Term{{Var: xs[j], Coef: 1}, {Var: ys[j], Coef: 1}}, lp.LE, 1)
			}
		}
		cols[ti] = xy{x: xs, y: ys}
	}

	// J_cab ≥ X_ca + Y_cb − 1, continuous in [0,1]: exact at binary X, Y
	// because the pool rows only press J upward.
	poolTerms := make([][]lp.Term, n*n)
	for ti := range b.types {
		g := b.types[ti].rep
		for a := 0; a < n; a++ {
			if cols[ti].x[a] < 0 {
				continue
			}
			for sb := 0; sb < n; sb++ {
				if sb == a || cols[ti].y[sb] < 0 {
					continue
				}
				j := b.m.AddContinuous(fmt.Sprintf("j_%d_%d_%d", ti, a, sb), 0, 1, 0)
				b.m.AddRow(fmt.Sprintf("link_%d_%d_%d", ti, a, sb),
					[]lp.Term{{Var: cols[ti].x[a], Coef: 1}, {Var: cols[ti].y[sb], Coef: 1}, {Var: j, Coef: -1}},
					lp.LE, 1)
				poolTerms[a*n+sb] = append(poolTerms[a*n+sb], lp.Term{Var: j, Coef: float64(g.Servers)})
			}
		}
	}
	for a := 0; a < n; a++ {
		for sb := 0; sb < n; sb++ {
			terms := poolTerms[a*n+sb]
			if len(terms) == 0 {
				continue
			}
			terms = append(terms, lp.Term{Var: b.gVars[sb], Coef: -1})
			b.m.AddRow(fmt.Sprintf("pool_%d_%d", a, sb), terms, lp.LE, 0)
		}
	}
	return nil
}

// addCapacityRows enforces Σ_i S_i X_ij + G_j ≤ O_j at every target DC.
func (b *builder) addCapacityRows() {
	b.capRows = make([]lp.RowID, len(b.s.Target.DCs))
	for j := range b.s.Target.DCs {
		b.capRows[j] = -1
		if len(b.occTerms[j]) == 0 {
			continue
		}
		b.capRows[j] = b.m.AddRow(fmt.Sprintf("cap_%d", j), b.occTerms[j], lp.LE,
			float64(b.s.Target.DCs[j].CapacityServers))
	}
}

// addSharedRiskRows enforces the shared-risk constraint (§I): groups in
// the same risk domain must have pairwise different primary sites, so no
// single failure takes out more than one of them.
func (b *builder) addSharedRiskRows() {
	n := len(b.s.Target.DCs)
	terms := make(map[string][][]lp.Term)
	for _, pv := range b.placeVars {
		label := b.types[pv.t].rep.SharedRiskGroup
		if label == "" {
			continue
		}
		rows, ok := terms[label]
		if !ok {
			rows = make([][]lp.Term, n)
			terms[label] = rows
		}
		rows[pv.a] = append(rows[pv.a], lp.Term{Var: pv.v, Coef: 1})
	}
	labels := make([]string, 0, len(terms))
	for label := range terms {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		for j, row := range terms[label] {
			if len(row) == 0 {
				continue
			}
			b.m.AddRow(fmt.Sprintf("risk_%s_%d", label, j), row, lp.LE, 1)
		}
	}
}

// addOmegaRows enforces the business-impact cap: no DC hosts more than
// ω·M application groups (§IV-B).
func (b *builder) addOmegaRows() {
	omega := b.p.opts.Omega
	if omega <= 0 || omega >= 1 {
		return
	}
	limit := omega * float64(len(b.s.Groups))
	for j := range b.s.Target.DCs {
		if len(b.cntTerms[j]) == 0 {
			continue
		}
		b.m.AddRow(fmt.Sprintf("omega_%d", j), b.cntTerms[j], lp.LE, limit)
	}
}

// addSpaceSegments encodes tiered space pricing at every DC with a
// non-flat curve: occupancy = Σ_k u_jk with per-segment unit costs, plus
// fill-order binaries for non-convex (economies-of-scale) curves,
// following Schoomer's step-function incorporation (§III-B).
func (b *builder) addSpaceSegments() {
	for j := range b.s.Target.DCs {
		if b.flatSpace[j] || len(b.occTerms[j]) == 0 {
			continue
		}
		dc := &b.s.Target.DCs[j]
		segs := dc.SpaceCost.SegmentsUpTo(float64(dc.CapacityServers))
		if len(segs) == 0 {
			continue
		}
		needOrder := !dc.SpaceCost.IsConvex()
		us := make([]lp.VarID, len(segs))
		widths := make([]float64, len(segs))
		for k, seg := range segs {
			us[k] = b.m.AddContinuous(fmt.Sprintf("u_%d_%d", j, k), 0, seg.Width, seg.UnitCost)
			widths[k] = seg.Width
		}
		b.segVars[j] = us
		b.segWidths[j] = widths
		// occupancy − Σ u = 0.
		terms := append([]lp.Term(nil), b.occTerms[j]...)
		for _, u := range us {
			terms = append(terms, lp.Term{Var: u, Coef: -1})
		}
		b.m.AddRow(fmt.Sprintf("space_%d", j), terms, lp.EQ, 0)
		if !needOrder {
			continue
		}
		for k := 1; k < len(segs); k++ {
			ord := b.m.AddBinary(fmt.Sprintf("ord_%d_%d", j, k), 0)
			b.ordVars[j] = append(b.ordVars[j], ord)
			// Segment k usable only when ord=1…
			b.m.AddRow(fmt.Sprintf("ordu_%d_%d", j, k),
				[]lp.Term{{Var: us[k], Coef: 1}, {Var: ord, Coef: -segs[k].Width}}, lp.LE, 0)
			// …and ord=1 forces segment k−1 full.
			b.m.AddRow(fmt.Sprintf("ordf_%d_%d", j, k),
				[]lp.Term{{Var: us[k-1], Coef: 1}, {Var: ord, Coef: -segs[k-1].Width}}, lp.GE, 0)
		}
	}
}

// decode converts a MILP solution into a Plan scored by the shared
// evaluator, with a self-check that the LP objective matches.
func (b *builder) decode(sol *lp.Solution) (*model.Plan, error) {
	if !sol.Status.HasSolution() {
		return nil, fmt.Errorf("core: internal: decode called on %v solution", sol.Status)
	}
	s := b.s
	dr := b.p.opts.DR
	placement := make([]int, len(s.Groups))
	for i := range placement {
		placement[i] = -1
	}
	var secondary []int
	if dr {
		secondary = make([]int, len(s.Groups))
		for i := range secondary {
			secondary[i] = -1
		}
	}

	if !dr || b.p.opts.Formulation == FormulationPair {
		// Distribute each type's placement counts over its members.
		next := make([]int, len(b.types))
		for _, pv := range b.placeVars {
			cnt := int(math.Round(sol.Value(pv.v)))
			for c := 0; c < cnt; c++ {
				tp := &b.types[pv.t]
				if next[pv.t] >= len(tp.members) {
					return nil, fmt.Errorf("core: internal: type %d over-assigned", pv.t)
				}
				gi := tp.members[next[pv.t]]
				next[pv.t]++
				placement[gi] = pv.a
				if dr {
					secondary[gi] = pv.b
				}
			}
		}
	} else {
		// Paper formulation: singleton types; read X and Y.
		for _, pv := range b.placeVars {
			if int(math.Round(sol.Value(pv.v))) == 1 {
				placement[b.types[pv.t].members[0]] = pv.a
			}
		}
		for _, sv := range b.secVars {
			if int(math.Round(sol.Value(sv.v))) == 1 {
				secondary[b.types[sv.t].members[0]] = sv.b
			}
		}
	}
	for i, j := range placement {
		if j < 0 {
			return nil, fmt.Errorf("core: internal: group %q left unplaced in decode", s.Groups[i].ID)
		}
	}
	var backups []int
	if dr {
		for i, j := range secondary {
			if j < 0 {
				return nil, fmt.Errorf("core: internal: group %q has no secondary in decode", s.Groups[i].ID)
			}
		}
		backups = b.requiredBackups(placement, secondary)
	}

	bd, err := model.Evaluate(s, &s.Target, placement, secondary, backups)
	if err != nil {
		return nil, fmt.Errorf("core: internal: decoded plan fails evaluation: %w", err)
	}
	if err := model.CheckObjectiveMatches(sol.Objective, bd.Total(), tol.Objective); err != nil {
		return nil, fmt.Errorf("core: internal: %w", err)
	}

	var shadow map[string]float64
	if b.p.opts.ComputeShadowPrices {
		var err error
		shadow, err = b.shadowPrices()
		if err != nil {
			return nil, fmt.Errorf("core: shadow prices: %w", err)
		}
	}

	plan := &model.Plan{
		Assignments:    make([]model.Assignment, len(s.Groups)),
		Cost:           bd,
		CapacityShadow: shadow,
		Stats: model.SolveStats{
			Rows:        b.m.NumRows(),
			Cols:        b.m.NumVars(),
			Integral:    b.m.NumIntegral(),
			Nonzeros:    b.m.NumNonzeros(),
			Iterations:  sol.Iterations,
			Nodes:       sol.Nodes,
			Gap:         jsonSafeGap(sol.Gap),
			CandidatesK: b.candidateK,
			Aggregated:  b.p.opts.Aggregate,

			Workers:        sol.Workers,
			PeakQueueDepth: sol.PeakQueueDepth,
			WallMillis:     sol.WallTime.Milliseconds(),
			WorkMillis:     sol.WorkTime.Milliseconds(),
		},
	}
	if dr {
		plan.Stats.Formulation = b.p.opts.Formulation.String()
		plan.BackupServers = make(map[string]int)
		for j, n := range backups {
			if n > 0 {
				plan.BackupServers[s.Target.DCs[j].ID] = n
			}
		}
	}
	for i := range s.Groups {
		a := model.Assignment{GroupID: s.Groups[i].ID, PrimaryDC: s.Target.DCs[placement[i]].ID}
		if dr {
			a.SecondaryDC = s.Target.DCs[secondary[i]].ID
		}
		plan.Assignments[i] = a
	}
	return plan, nil
}

// shadowPrices solves the model's LP relaxation and reads the capacity
// rows' dual values: the marginal monthly value of one more server slot
// at each site. Fixing the integer decisions instead would make every
// capacity row's activity constant and its dual degenerate, so the
// standard MILP practice of quoting relaxation duals applies — they are
// directional guidance ("expand here first"), not exact marginal costs
// of the integral plan. LE capacity rows have non-positive duals; the
// returned map negates them so a positive value means expansion value.
func (b *builder) shadowPrices() (map[string]float64, error) {
	lpSol, err := simplex.Solve(b.m.Relax(), nil)
	if err != nil {
		return nil, err
	}
	if lpSol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("relaxation not optimal: %v", lpSol.Status)
	}
	out := make(map[string]float64, len(b.capRows))
	for j, row := range b.capRows {
		if row < 0 {
			continue
		}
		if v := -lpSol.DualValues[row]; tol.Pos(v, tol.Shadow) {
			out[b.s.Target.DCs[j].ID] = v
		}
	}
	return out, nil
}
