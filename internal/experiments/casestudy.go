// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI): the Figure 4 / Table 4(d,e) non-DR case studies, the
// Figure 6 / Table 6(d,e) DR case studies, the Figure 7 latency-penalty
// sweep, the Figure 8 DR-server-cost sweep, and the Figure 9/10
// space-vs-WAN packing studies. Each experiment is a plain function
// returning a typed result that the benchmark harness, the etbench CLI
// and EXPERIMENTS.md all share.
//
// Sweep experiments (Figure 7, 8 and 10) solve their independent points
// concurrently across a bounded worker pool (Scale.SweepWorkers);
// results are assembled by point index, so rendered output is identical
// for any worker count. Per-solve branch & bound parallelism is
// controlled separately through Scale.SolverWorkers and defaults to 1
// inside a concurrent sweep to avoid oversubscription.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/etransform/etransform/internal/baseline"
	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/milp/cuts"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/report"
	"github.com/etransform/etransform/internal/tol"
)

// Scale bounds an experiment's size and solve effort. Benchmarks shrink
// the biggest case studies; the shrink factor is carried into every
// result so it is never silent.
type Scale struct {
	// Fraction scales case-study dataset sizes (1 = paper scale).
	Fraction float64
	// GapTol is the MILP relative optimality gap.
	GapTol float64
	// MaxNodes and TimeLimit bound branch & bound per solve.
	MaxNodes  int
	TimeLimit time.Duration
	// CandidateKLarge prunes candidates per group on estates with more
	// than 20 target DCs (0 = never prune).
	CandidateKLarge int
	// SweepWorkers bounds how many independent sweep points (Figure 7/8/10
	// settings, etbench datasets) solve concurrently; 0 selects
	// runtime.NumCPU(). Results are assembled by point index, so output is
	// identical for any value.
	SweepWorkers int
	// SolverWorkers sets the branch & bound worker count per solve. 0
	// picks a non-oversubscribing default: 1 inside a concurrent sweep
	// (the sweep already saturates the cores), runtime.NumCPU() otherwise.
	SolverWorkers int
	// ReuseBasis warm-starts each node LP from its parent's optimal
	// basis (milp.Options.ReuseBasis). Same certified answers, fewer
	// simplex pivots; off by default to keep default trajectories
	// byte-stable.
	ReuseBasis bool
	// Cuts separates Gomory and cover cuts at the root node
	// (milp.Options.Cuts). Same certified answers, tighter dual bound;
	// off by default like ReuseBasis.
	Cuts bool
	// Kernel runs the kernel-search primal heuristic at the root
	// (milp.Options.Kernel). Same certified answers, earlier incumbents.
	Kernel bool
	// CollectMetrics arms an observability registry on each solve so the
	// result's SolveStats.Metrics snapshot carries the solver counters
	// (pivots, warm hits, phase-1 skips, …). Off by default: metrics
	// collection costs atomics on hot paths.
	CollectMetrics bool
}

// FullScale solves the case studies at paper size.
func FullScale() Scale {
	return Scale{Fraction: 1, GapTol: 1e-3, MaxNodes: 50000, TimeLimit: 10 * time.Minute, CandidateKLarge: 12}
}

// BenchScale keeps the Federal-size case study inside a laptop budget
// (the scaling is reported in the result name).
func BenchScale() Scale {
	return Scale{Fraction: 0.25, GapTol: 5e-3, MaxNodes: 4000, TimeLimit: time.Minute, CandidateKLarge: 8}
}

func (sc Scale) solver() milp.Options {
	workers := sc.SolverWorkers
	if workers <= 0 && sc.sweepWorkers() > 1 {
		// The sweep fan-out already keeps every core busy; nested
		// parallel solves would only oversubscribe.
		workers = 1
	}
	o := milp.Options{
		GapTol: sc.GapTol, MaxNodes: sc.MaxNodes, TimeLimit: sc.TimeLimit,
		Workers: workers, ReuseBasis: sc.ReuseBasis,
		Cuts:   cuts.Options{Enable: sc.Cuts},
		Kernel: milp.KernelOptions{Enable: sc.Kernel},
	}
	if sc.CollectMetrics {
		o.Metrics = obs.NewMetrics()
	}
	return o
}

func (sc Scale) sweepWorkers() int {
	if sc.SweepWorkers > 0 {
		return sc.SweepWorkers
	}
	return runtime.NumCPU()
}

func (sc Scale) apply(cfg datagen.CaseStudyConfig) datagen.CaseStudyConfig {
	if sc.Fraction > 0 && sc.Fraction < 1 {
		return cfg.Scaled(sc.Fraction)
	}
	return cfg
}

func (sc Scale) candidateK(targetDCs int) int {
	if sc.CandidateKLarge > 0 && targetDCs > 20 {
		return sc.CandidateKLarge
	}
	return 0
}

// AlgorithmNames is the fixed comparison order of Figures 4 and 6.
var AlgorithmNames = []string{"AS-IS", "MANUAL", "GREEDY", "ETRANSFORM"}

// CaseStudyResult is one dataset's Figure 4 (or Figure 6, when DR) bar
// group plus its Table (d)/(e) rows.
type CaseStudyResult struct {
	Dataset string
	DR      bool
	// Breakdowns maps algorithm name → full cost accounting. "AS-IS"
	// includes the single-backup-DC addition when DR.
	Breakdowns map[string]model.CostBreakdown
	// Stats is the LP planner's solve record.
	Stats model.SolveStats
}

// Cost is the bar height used in the paper's charts: operational cost
// plus backup capital (no latency penalties — those are drawn stacked).
func (r *CaseStudyResult) Cost(algo string) float64 {
	b := r.Breakdowns[algo]
	return b.OperationalCost() + b.BackupCapital
}

// Reduction returns an algorithm's cost change relative to as-is
// (negative = cheaper), as in Tables 4(d) and 6(d).
func (r *CaseStudyResult) Reduction(algo string) float64 {
	base := r.Cost("AS-IS")
	if tol.IsZero(base) {
		return 0
	}
	return (r.Cost(algo) - base) / base
}

// Violations returns an algorithm's latency violation count, as in
// Tables 4(e) and 6(e).
func (r *CaseStudyResult) Violations(algo string) int {
	return r.Breakdowns[algo].LatencyViolations
}

// Render draws the bar chart and tables.
func (r *CaseStudyResult) Render() string {
	labels := make([]string, 0, len(AlgorithmNames))
	bds := make([]model.CostBreakdown, 0, len(AlgorithmNames))
	for _, n := range AlgorithmNames {
		if b, ok := r.Breakdowns[n]; ok {
			labels = append(labels, n)
			bds = append(bds, b)
		}
	}
	title := fmt.Sprintf("Cost for various solutions — %s", r.Dataset)
	if r.DR {
		title += " (with DR)"
	}
	out := report.BarChart(title, report.CostBars(labels, bds), 50)
	rows := make([][]string, 0, len(labels))
	for _, n := range labels {
		rows = append(rows, []string{
			n, report.Money(r.Cost(n)), report.Percent(r.Reduction(n)),
			fmt.Sprintf("%d", r.Violations(n)), report.Money(r.Breakdowns[n].Latency),
		})
	}
	out += report.Table([]string{"algorithm", "cost", "vs as-is", "latency violations", "penalty paid"}, rows)
	return out
}

// CaseStudy runs one dataset through all four algorithms. dr selects the
// §VI-B (false) or §VI-C (true) variant.
func CaseStudy(cfg datagen.CaseStudyConfig, sc Scale, dr bool) (*CaseStudyResult, error) {
	cfg = sc.apply(cfg)
	s, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	res := &CaseStudyResult{Dataset: cfg.Name, DR: dr, Breakdowns: make(map[string]model.CostBreakdown)}

	if dr {
		asis, err := baseline.AsIsPlusDR(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: as-is+DR: %w", err)
		}
		res.Breakdowns["AS-IS"] = asis
	} else {
		asis, err := model.EvaluateAsIs(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: as-is: %w", err)
		}
		res.Breakdowns["AS-IS"] = asis
	}

	if mp, err := baseline.Manual(s, baseline.ManualOptions{DR: dr}); err == nil {
		res.Breakdowns["MANUAL"] = mp.Cost
	}
	// else: the manual heuristic legitimately fails on some estates (its
	// fixed DC set may not fit); leave it absent and render "n/a".
	gp, err := baseline.Greedy(s, baseline.GreedyOptions{DR: dr})
	if err != nil {
		return nil, fmt.Errorf("experiments: greedy: %w", err)
	}
	res.Breakdowns["GREEDY"] = gp.Cost

	planner, err := core.New(s, core.Options{
		DR:         dr,
		Aggregate:  true,
		CandidateK: sc.candidateK(len(s.Target.DCs)),
		Solver:     sc.solver(),
	})
	if err != nil {
		return nil, err
	}
	plan, err := planner.Solve()
	if err != nil {
		return nil, fmt.Errorf("experiments: eTransform: %w", err)
	}
	res.Breakdowns["ETRANSFORM"] = plan.Cost
	res.Stats = plan.Stats
	return res, nil
}

// Figure4 reproduces Figure 4(a–c) and Tables 4(d,e): the non-DR
// comparison on one dataset.
func Figure4(cfg datagen.CaseStudyConfig, sc Scale) (*CaseStudyResult, error) {
	return CaseStudy(cfg, sc, false)
}

// Figure6 reproduces Figure 6(a–c) and Tables 6(d,e): the DR comparison.
func Figure6(cfg datagen.CaseStudyConfig, sc Scale) (*CaseStudyResult, error) {
	return CaseStudy(cfg, sc, true)
}

// DatasetSummary is one Table II row.
type DatasetSummary struct {
	Name       string
	CurrentDCs int
	TargetDCs  int
	Servers    int
	AppGroups  int
}

// TableII returns the dataset-size table for the three case studies at
// the given scale.
func TableII(sc Scale) []DatasetSummary {
	cfgs := []datagen.CaseStudyConfig{datagen.Enterprise1(), datagen.Florida(), datagen.Federal()}
	out := make([]DatasetSummary, len(cfgs))
	for i, c := range cfgs {
		c = sc.apply(c)
		out[i] = DatasetSummary{
			Name: c.Name, CurrentDCs: c.CurrentDCs, TargetDCs: c.TargetDCs,
			Servers: c.Servers, AppGroups: c.Groups,
		}
	}
	return out
}

// RenderTableII formats the Table II summaries.
func RenderTableII(rows []DatasetSummary) string {
	trows := make([][]string, len(rows))
	for i, r := range rows {
		trows[i] = []string{
			r.Name,
			fmt.Sprintf("%d", r.CurrentDCs), fmt.Sprintf("%d", r.TargetDCs),
			fmt.Sprintf("%d", r.Servers), fmt.Sprintf("%d", r.AppGroups),
		}
	}
	return report.Table([]string{"dataset", "as-is DCs", "target DCs", "servers", "app groups"}, trows)
}

// meanUserLatency is the user-weighted average latency of a plan's
// primary placements.
func meanUserLatency(s *model.AsIsState, plan *model.Plan) float64 {
	totalUsers := 0
	weighted := 0.0
	for i := range s.Groups {
		g := &s.Groups[i]
		j := s.Target.DCIndex(plan.AssignmentFor(g.ID).PrimaryDC)
		u := g.TotalUsers()
		totalUsers += u
		weighted += float64(u) * model.AvgLatencyMs(g, &s.Target, j)
	}
	if totalUsers == 0 {
		return 0
	}
	return weighted / float64(totalUsers)
}

// sortedKeys returns a map's keys in sorted order (for deterministic
// rendering).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
