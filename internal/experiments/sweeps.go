package experiments

import (
	"context"
	"fmt"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/report"
	"github.com/etransform/etransform/internal/tol"
)

// Fig7Penalties is the latency-penalty axis of Figure 7 ($0–$120/user).
var Fig7Penalties = []float64{0, 20, 40, 60, 80, 100, 120}

// Fig7Splits are Figure 7's five user distributions: the fraction of each
// group's users at location 0 (the cheap end); the rest sit at location 9.
var Fig7Splits = []float64{0, 0.25, 0.5, 0.75, 1}

// Fig7SplitName names a split the way the paper's legend does.
func Fig7SplitName(split float64) string {
	switch {
	case tol.Same(split, 0):
		return "all users in location 9"
	case tol.Same(split, 1):
		return "all users in location 0"
	default:
		return fmt.Sprintf("%.0f%% users in location 0", split*100)
	}
}

// Figure7Result holds the three panels of Figure 7: total cost, space
// cost and mean latency, one curve per user distribution over the
// penalty axis.
type Figure7Result struct {
	Penalties []float64
	// TotalCost[split][k] is the plan cost at Fig7Penalties[k].
	TotalCost map[float64][]float64
	SpaceCost map[float64][]float64
	MeanLatMs map[float64][]float64
}

// Figure7 reproduces §VI-D: ten linear locations with rising space cost
// and latency; as the per-user penalty grows, the planner abandons the
// cheap far location and moves groups toward their users. Cancelling ctx
// abandons the sweep after in-flight points finish.
func Figure7(ctx context.Context, sc Scale) (*Figure7Result, error) {
	res := &Figure7Result{
		Penalties: Fig7Penalties,
		TotalCost: make(map[float64][]float64),
		SpaceCost: make(map[float64][]float64),
		MeanLatMs: make(map[float64][]float64),
	}
	// Flatten the (split, penalty) grid into an indexed job list and fan
	// it out; each point is an independent dataset and solve.
	type point struct{ total, space, lat float64 }
	nPen := len(Fig7Penalties)
	points := make([]point, len(Fig7Splits)*nPen)
	err := ForEachContext(ctx, len(points), sc.sweepWorkers(), func(i int) error {
		split, pen := Fig7Splits[i/nPen], Fig7Penalties[i%nPen]
		cfg := datagen.Fig7Config()
		cfg.UserSplit = split
		cfg.PenaltyPerUser = pen
		s, err := cfg.Generate()
		if err != nil {
			return err
		}
		planner, err := core.New(s, core.Options{Aggregate: true, Solver: sc.solver()})
		if err != nil {
			return err
		}
		plan, err := planner.Solve()
		if err != nil {
			return fmt.Errorf("experiments: figure 7 (split %v, penalty %v): %w", split, pen, err)
		}
		points[i] = point{total: plan.Cost.Total(), space: plan.Cost.Space, lat: meanUserLatency(s, plan)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		split := Fig7Splits[i/nPen]
		res.TotalCost[split] = append(res.TotalCost[split], p.total)
		res.SpaceCost[split] = append(res.SpaceCost[split], p.space)
		res.MeanLatMs[split] = append(res.MeanLatMs[split], p.lat)
	}
	return res, nil
}

// Render draws the three panels as sweep tables.
func (r *Figure7Result) Render() string {
	panel := func(title string, data map[float64][]float64) string {
		series := make([]report.Series, 0, len(Fig7Splits))
		for _, split := range Fig7Splits {
			series = append(series, report.Series{Name: Fig7SplitName(split), Points: data[split]})
		}
		return title + "\n" + report.SweepTable("penalty($)", r.Penalties, series) + "\n"
	}
	return panel("(a) Total Cost", r.TotalCost) +
		panel("(b) Space Cost", r.SpaceCost) +
		panel("(c) Average Latency (ms)", r.MeanLatMs)
}

// Fig8Costs is Figure 8's DR-server-cost axis ($10⁰–$10⁴, log).
var Fig8Costs = []float64{1, 10, 100, 1000, 10000}

// Figure8Result holds Figure 8: data centers used and DR servers bought
// as the backup-server price rises.
type Figure8Result struct {
	DRServerCost []float64
	DCsUsed      []int
	DRServers    []int
}

// Figure8 reproduces §VI-E: cheap DR servers favour full consolidation
// (2 sites, a full-estate pool); expensive DR servers favour spreading
// primaries so a small shared pool covers any single failure.
// Cancelling ctx abandons the sweep after in-flight points finish.
func Figure8(ctx context.Context, sc Scale) (*Figure8Result, error) {
	res := &Figure8Result{
		DRServerCost: Fig8Costs,
		DCsUsed:      make([]int, len(Fig8Costs)),
		DRServers:    make([]int, len(Fig8Costs)),
	}
	err := ForEachContext(ctx, len(Fig8Costs), sc.sweepWorkers(), func(i int) error {
		zeta := Fig8Costs[i]
		cfg := datagen.Fig7Config() // same topology, §VI-E: penalty 0
		cfg.PenaltyPerUser = 0
		s, err := cfg.Generate()
		if err != nil {
			return err
		}
		s.Params.DRServerCost = zeta
		s.Params.SecondaryLatencyWeight = 0
		// Secondary sites are cost-symmetric here (§VI-E zeroes every
		// per-placement cost), which makes the LP pool bound loose; a 1%
		// gap resolves the plateau without hours of symmetric branching.
		solver := sc.solver()
		if solver.GapTol < 0.01 {
			solver.GapTol = 0.01
		}
		if solver.MaxNodes > 1500 {
			solver.MaxNodes = 1500
		}
		planner, err := core.New(s, core.Options{DR: true, Aggregate: true, Solver: solver})
		if err != nil {
			return err
		}
		plan, err := planner.Solve()
		if err != nil {
			return fmt.Errorf("experiments: figure 8 (ζ=%v): %w", zeta, err)
		}
		res.DCsUsed[i] = plan.Cost.DCsUsed
		res.DRServers[i] = plan.Cost.TotalBackupServers
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render draws Figure 8 as a sweep table.
func (r *Figure8Result) Render() string {
	dcs := make([]float64, len(r.DCsUsed))
	srv := make([]float64, len(r.DRServers))
	for i := range r.DCsUsed {
		dcs[i] = float64(r.DCsUsed[i])
		srv[i] = float64(r.DRServers[i])
	}
	return "Influence of DR Server Cost\n" + report.SweepTable("dr-server-cost($)", r.DRServerCost, []report.Series{
		{Name: "data centers used", Points: dcs},
		{Name: "DR servers", Points: srv},
	})
}
