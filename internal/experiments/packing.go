package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/report"
)

// Figure9Result holds §VI-F's space-vs-WAN tradeoff: the per-location
// cost of hosting one full data center's worth of application groups,
// split into space and (dedicated-VPN) WAN.
type Figure9Result struct {
	// Location d's costs for hosting CapacityPerDC single-server groups.
	SpaceCost []float64
	WANCost   []float64
	TotalCost []float64
	// CheapestLocation is the argmin of TotalCost (the paper finds an
	// interior optimum, location 4 of 10).
	CheapestLocation int
	// Spread is max(TotalCost)/min(TotalCost) — the paper reports the
	// best location is 7× cheaper than the worst.
	Spread float64
}

// Figure9 computes the per-location cost curves: space grows along the
// line while VPN links to the far-end users shrink, so the total is
// U-shaped with an interior minimum.
func Figure9() (*Figure9Result, error) {
	cfg := datagen.Fig9Config()
	s, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	res := &Figure9Result{}
	n := len(s.Target.DCs)
	res.SpaceCost = make([]float64, n)
	res.WANCost = make([]float64, n)
	res.TotalCost = make([]float64, n)
	// Cost of filling location d to capacity with representative groups.
	g := &s.Groups[0]
	perDC := float64(cfg.CapacityPerDC)
	for d := 0; d < n; d++ {
		res.SpaceCost[d] = s.Target.DCs[d].SpaceCost.MustEval(perDC)
		res.WANCost[d] = model.WANCostAt(g, &s.Target, &s.Params, d) * perDC
		res.TotalCost[d] = res.SpaceCost[d] + res.WANCost[d]
	}
	best, worst := 0, 0
	for d := 1; d < n; d++ {
		if res.TotalCost[d] < res.TotalCost[best] {
			best = d
		}
		if res.TotalCost[d] > res.TotalCost[worst] {
			worst = d
		}
	}
	res.CheapestLocation = best
	if res.TotalCost[best] > 0 {
		res.Spread = res.TotalCost[worst] / res.TotalCost[best]
	}
	return res, nil
}

// Render draws the Figure 9 curves.
func (r *Figure9Result) Render() string {
	xs := make([]float64, len(r.TotalCost))
	for d := range xs {
		xs[d] = float64(d)
	}
	out := "Tradeoff between Space Cost and WAN Cost\n" +
		report.SweepTable("location", xs, []report.Series{
			{Name: "space cost", Points: r.SpaceCost},
			{Name: "WAN cost", Points: r.WANCost},
			{Name: "total cost", Points: r.TotalCost},
		})
	out += fmt.Sprintf("cheapest location: %d (%.1fx cheaper than the most expensive)\n",
		r.CheapestLocation, r.Spread)
	return out
}

// Fig10GroupCounts is Figure 10's x-axis.
var Fig10GroupCounts = []int{100, 200, 300, 400, 500, 600, 700}

// Figure10Result records, for each group count, how many data centers
// eTransform uses and in which order locations fill.
type Figure10Result struct {
	GroupCounts []int
	DCsUsed     []int
	// FillOrder[k] lists the locations used at GroupCounts[k], in
	// increasing location index.
	FillOrder [][]int
	// CostRank is the per-location total-cost ranking from Figure 9 —
	// the order the paper observes eTransform filling locations in.
	CostRank []int
}

// Figure10 reproduces §VI-F's packing study: tight 100-server locations
// force the planner to open more sites as the estate grows, and it opens
// them in increasing order of Figure 9's total cost. Cancelling ctx
// abandons the sweep after in-flight points finish.
func Figure10(ctx context.Context, sc Scale) (*Figure10Result, error) {
	fig9, err := Figure9()
	if err != nil {
		return nil, err
	}
	res := &Figure10Result{
		GroupCounts: Fig10GroupCounts,
		DCsUsed:     make([]int, len(Fig10GroupCounts)),
		FillOrder:   make([][]int, len(Fig10GroupCounts)),
	}
	res.CostRank = rankByCost(fig9.TotalCost)
	err = ForEachContext(ctx, len(Fig10GroupCounts), sc.sweepWorkers(), func(i int) error {
		n := Fig10GroupCounts[i]
		cfg := datagen.Fig9Config()
		cfg.Groups = n
		s, err := cfg.Generate()
		if err != nil {
			return err
		}
		planner, err := core.New(s, core.Options{Aggregate: true, Solver: sc.solver()})
		if err != nil {
			return err
		}
		plan, err := planner.Solve()
		if err != nil {
			return fmt.Errorf("experiments: figure 10 (%d groups): %w", n, err)
		}
		res.DCsUsed[i] = plan.Cost.DCsUsed
		used := make(map[string]bool)
		for _, a := range plan.Assignments {
			used[a.PrimaryDC] = true
		}
		var order []int
		for d := range s.Target.DCs {
			if used[s.Target.DCs[d].ID] {
				order = append(order, d)
			}
		}
		res.FillOrder[i] = order
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// rankByCost returns location indices sorted by ascending cost.
func rankByCost(costs []float64) []int {
	idx := make([]int, len(costs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && costs[idx[j]] < costs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// Render draws the Figure 10 growth table.
func (r *Figure10Result) Render() string {
	xs := make([]float64, len(r.GroupCounts))
	used := make([]float64, len(r.DCsUsed))
	for i := range r.GroupCounts {
		xs[i] = float64(r.GroupCounts[i])
		used[i] = float64(r.DCsUsed[i])
	}
	out := "Placement by eTransform\n" + report.SweepTable("app groups", xs, []report.Series{
		{Name: "data centers used", Points: used},
	})
	out += fmt.Sprintf("fill order by total cost: %v\n", r.CostRank)
	for i, order := range r.FillOrder {
		out += fmt.Sprintf("  %d groups → locations %v\n", r.GroupCounts[i], order)
	}
	return out
}

// minDCsNeeded is the packing lower bound used by tests: ceil(groups /
// capacity).
func minDCsNeeded(groups, capacityPerDC int) int {
	return int(math.Ceil(float64(groups) / float64(capacityPerDC)))
}
