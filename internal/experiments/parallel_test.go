package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachContextCancelMidBatch cancels a batch while every worker is
// blocked inside a job: the feeder must stop handing out work, so only
// the in-flight jobs (one per worker) ever start, and the batch reports
// the context's error.
func TestForEachContextCancelMidBatch(t *testing.T) {
	const n, workers = 100, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var started atomic.Int64
	occupied := make(chan struct{}, n) // one token per job that began
	hold := make(chan struct{})        // released after cancellation
	go func() {
		// Wait until every worker holds a job, then cut the batch short
		// and let the stragglers finish.
		for i := 0; i < workers; i++ {
			<-occupied
		}
		cancel()
		close(hold)
	}()

	err := ForEachContext(ctx, n, workers, func(i int) error {
		started.Add(1)
		occupied <- struct{}{}
		<-hold
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got != workers {
		t.Fatalf("%d jobs started, want exactly the %d in flight at cancellation", got, workers)
	}
}

// TestForEachContextJobErrorBeatsCancel pins the index-deterministic
// error selection: when the job at index 0 fails and then triggers the
// cancellation itself, its own error — not context.Canceled — is what
// the batch returns, because index 0 ran-and-failed before the first
// never-started index.
func TestForEachContextJobErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachContext(ctx, 8, 1, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the job's own error", err)
	}
}

// TestForEachContextCancelBeforeAnyFailure: index 0 succeeds but cancels
// the batch, so the first interesting index is 1 — never started — and
// the context's error is the answer.
func TestForEachContextCancelBeforeAnyFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := ForEachContext(ctx, 8, 1, func(i int) error {
		ran.Add(1)
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d jobs ran, want 1", got)
	}
}

// TestForEachContextLateCancelAfterCompletion: a context that expires
// after the final job was fed does not poison an otherwise clean batch.
func TestForEachContextLateCancelAfterCompletion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachContext(ctx, 3, 1, func(i int) error {
		if i == 2 {
			cancel() // fires after the last index has already started
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want nil for a fully completed batch", err)
	}
}

// TestForEachBackgroundUnchanged: the ctx-less wrapper still runs every
// job and still reports the smallest-index error.
func TestForEachBackgroundUnchanged(t *testing.T) {
	first, second := errors.New("first"), errors.New("second")
	var ran atomic.Int64
	err := ForEach(10, 4, func(i int) error {
		ran.Add(1)
		switch i {
		case 3:
			return first
		case 7:
			return second
		}
		return nil
	})
	if !errors.Is(err, first) {
		t.Fatalf("err = %v, want the smallest-index error", err)
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("%d jobs ran, want all 10 despite failures", got)
	}
}
