package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/datagen"
)

func testScale() Scale {
	return Scale{Fraction: 1, GapTol: 2e-3, MaxNodes: 3000, TimeLimit: 45 * time.Second}
}

func TestTableII(t *testing.T) {
	rows := TableII(FullScale())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "enterprise1" || rows[0].Servers != 1070 || rows[0].CurrentDCs != 67 {
		t.Errorf("enterprise1 row: %+v", rows[0])
	}
	if rows[2].AppGroups != 1900 || rows[2].TargetDCs != 100 {
		t.Errorf("federal row: %+v", rows[2])
	}
	out := RenderTableII(rows)
	for _, want := range []string{"enterprise1", "florida", "federal", "42800"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Enterprise1(t *testing.T) {
	res, err := Figure4(datagen.Enterprise1(), testScale())
	if err != nil {
		t.Fatal(err)
	}
	// Headline claim (§VI-B): eTransform cuts as-is operational cost by
	// a large margin (paper: −43% on Enterprise1) and beats both
	// baselines while satisfying (nearly) all latency constraints.
	et := res.Reduction("ETRANSFORM")
	if et > -0.30 {
		t.Errorf("eTransform reduction = %v, want ≤ −30%%", et)
	}
	if res.Cost("ETRANSFORM") > res.Cost("GREEDY")+1e-6 {
		t.Errorf("eTransform (%v) costlier than greedy (%v)", res.Cost("ETRANSFORM"), res.Cost("GREEDY"))
	}
	if v := res.Violations("ETRANSFORM"); v > 2 {
		t.Errorf("eTransform latency violations = %d, want ≤ 2", v)
	}
	// The manual baseline ignores latency: it must pay more penalty than
	// eTransform (paper Table 4e: 74 vs 0).
	if res.Breakdowns["MANUAL"].Latency <= res.Breakdowns["ETRANSFORM"].Latency {
		t.Errorf("manual penalty (%v) not worse than eTransform (%v)",
			res.Breakdowns["MANUAL"].Latency, res.Breakdowns["ETRANSFORM"].Latency)
	}
	out := res.Render()
	for _, want := range []string{"ETRANSFORM", "AS-IS", "vs as-is"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure6Enterprise1DR(t *testing.T) {
	res, err := Figure6(datagen.Enterprise1(), testScale())
	if err != nil {
		t.Fatal(err)
	}
	// §VI-C headline: an integrated DR + consolidation plan still beats
	// bolting DR onto the as-is estate (paper: −36% on Enterprise1).
	if et := res.Reduction("ETRANSFORM"); et > -0.15 {
		t.Errorf("eTransform DR reduction = %v, want ≤ −15%%", et)
	}
	// Shared pools: eTransform must buy far fewer backup servers than
	// greedy's dedicated copies (which equal the whole estate).
	etB := res.Breakdowns["ETRANSFORM"].TotalBackupServers
	grB := res.Breakdowns["GREEDY"].TotalBackupServers
	if etB == 0 || etB >= grB {
		t.Errorf("backup servers: eTransform %d vs greedy %d, want shared < dedicated", etB, grB)
	}
	if v := res.Violations("ETRANSFORM"); v > 8 {
		t.Errorf("eTransform DR latency violations = %d", v)
	}
}

func TestFigure7Shape(t *testing.T) {
	res, err := Figure7(context.Background(), testScale())
	if err != nil {
		t.Fatal(err)
	}
	// (1) All users at location 0 (split=1): the cheapest location also
	// satisfies latency, so cost must be flat across penalties.
	flat := res.TotalCost[1]
	for i := 1; i < len(flat); i++ {
		if flat[i] != flat[0] {
			t.Errorf("split=1 cost not flat: %v", flat)
			break
		}
	}
	// (2) All users at location 9 (split=0): rising penalties push the
	// placement toward expensive location 9 — space cost rises and mean
	// latency falls; at the top penalty latency must be low.
	space := res.SpaceCost[0]
	if space[len(space)-1] <= space[0] {
		t.Errorf("split=0 space cost did not rise: %v", space)
	}
	lat := res.MeanLatMs[0]
	if lat[len(lat)-1] >= lat[0] {
		t.Errorf("split=0 latency did not fall: %v", lat)
	}
	if lat[len(lat)-1] > 10 {
		t.Errorf("split=0 final latency = %v ms, want ≤ threshold 10", lat[len(lat)-1])
	}
	// (3) Mixed population (25% near): rising penalties pull the
	// placement toward the far majority — space cost rises and mean
	// latency falls, the paper's Figure 7(b)/(c) signature for mixed
	// splits.
	mixSpace := res.SpaceCost[0.25]
	if mixSpace[len(mixSpace)-1] <= mixSpace[0] {
		t.Errorf("split=0.25 space cost did not rise: %v", mixSpace)
	}
	mixLat := res.MeanLatMs[0.25]
	if mixLat[len(mixLat)-1] >= mixLat[0] {
		t.Errorf("split=0.25 latency did not fall: %v", mixLat)
	}
	// (4) Total cost is non-decreasing in the penalty for every split
	// (a higher penalty can never make the optimum cheaper).
	for split, series := range res.TotalCost {
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1]-1e-6 {
				t.Errorf("split=%v total cost decreased: %v", split, series)
				break
			}
		}
	}
	if !strings.Contains(res.Render(), "Average Latency") {
		t.Error("render missing panel")
	}
}

func TestFigure8Shape(t *testing.T) {
	res, err := Figure8(context.Background(), testScale())
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.DRServerCost)
	// Cheap DR servers: consolidate (2 sites, full-estate pool).
	if res.DCsUsed[0] > 3 {
		t.Errorf("ζ=$1 uses %d DCs, want ≤ 3", res.DCsUsed[0])
	}
	// Expensive DR servers: spread primaries, shrink the shared pool.
	if res.DCsUsed[n-1] <= res.DCsUsed[0] {
		t.Errorf("DCs used did not grow with ζ: %v", res.DCsUsed)
	}
	if res.DRServers[n-1] >= res.DRServers[0] {
		t.Errorf("DR servers did not shrink with ζ: %v", res.DRServers)
	}
	// Monotone trends (allowing plateaus).
	for i := 1; i < n; i++ {
		if res.DCsUsed[i] < res.DCsUsed[i-1] {
			t.Errorf("DCs used not monotone: %v", res.DCsUsed)
		}
		if res.DRServers[i] > res.DRServers[i-1] {
			t.Errorf("DR servers not monotone: %v", res.DRServers)
		}
	}
	if !strings.Contains(res.Render(), "DR servers") {
		t.Error("render missing series")
	}
}

func TestFigure9UShape(t *testing.T) {
	res, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.TotalCost)
	for d := 1; d < n; d++ {
		if res.SpaceCost[d] <= res.SpaceCost[d-1] {
			t.Errorf("space cost not rising at %d", d)
		}
		if res.WANCost[d] >= res.WANCost[d-1] {
			t.Errorf("WAN cost not falling at %d", d)
		}
	}
	// Interior optimum (§VI-F: the paper finds location 4 of 10).
	if res.CheapestLocation == 0 || res.CheapestLocation == n-1 {
		t.Errorf("cheapest location %d is not interior", res.CheapestLocation)
	}
	// The paper reports a 7× spread between best and worst locations.
	if res.Spread < 2 {
		t.Errorf("cost spread = %v, want substantial (paper: 7x)", res.Spread)
	}
	if !strings.Contains(res.Render(), "cheapest location") {
		t.Error("render missing argmin line")
	}
}

func TestFigure10Growth(t *testing.T) {
	res, err := Figure10(context.Background(), testScale())
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.GroupCounts {
		lower := minDCsNeeded(n, 100)
		if res.DCsUsed[i] < lower {
			t.Errorf("%d groups in %d DCs beats the packing bound %d", n, res.DCsUsed[i], lower)
		}
		if res.DCsUsed[i] > lower+1 {
			t.Errorf("%d groups used %d DCs, want ≈ %d (cost-ordered fill)", n, res.DCsUsed[i], lower)
		}
	}
	for i := 1; i < len(res.DCsUsed); i++ {
		if res.DCsUsed[i] < res.DCsUsed[i-1] {
			t.Errorf("DCs used shrank as groups grew: %v", res.DCsUsed)
		}
	}
	// Fill order: the used locations must be (a prefix of) the total-cost
	// ranking from Figure 9.
	for i, order := range res.FillOrder {
		rank := res.CostRank[:len(order)]
		inRank := make(map[int]bool, len(rank))
		for _, d := range rank {
			inRank[d] = true
		}
		for _, d := range order {
			if !inRank[d] {
				t.Errorf("%d groups: location %d used but not among the %d cheapest %v",
					res.GroupCounts[i], d, len(order), rank)
			}
		}
	}
	if !strings.Contains(res.Render(), "fill order") {
		t.Error("render missing fill order")
	}
}

func TestScaledFederalCaseStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("federal case study is slow")
	}
	sc := testScale()
	sc.Fraction = 0.1
	sc.CandidateKLarge = 8
	res, err := Figure4(datagen.Federal(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduction("ETRANSFORM") > -0.25 {
		t.Errorf("scaled federal reduction = %v", res.Reduction("ETRANSFORM"))
	}
}
