package experiments

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/baseline"
	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/stepwise"
)

// randomEstate builds a random small estate with tiered pricing and
// mixed latency sensitivity.
func randomEstate(rng *rand.Rand) *model.AsIsState {
	users := 2 + rng.Intn(2)
	s := &model.AsIsState{Name: "ord", Params: model.DefaultParams()}
	for u := 0; u < users; u++ {
		s.UserLocations = append(s.UserLocations, geo.Location{ID: fmt.Sprintf("u%d", u)})
	}
	mk := func(id string, capacity int, space stepwise.Curve, power, labor, wan float64) model.DataCenter {
		return model.DataCenter{
			ID: id, Location: geo.Location{ID: "l" + id},
			CapacityServers: capacity, SpaceCost: space,
			PowerCostPerKWh: power, LaborCostPerAdmin: labor, WANCostPerMb: wan,
		}
	}
	s.Current.DCs = []model.DataCenter{mk("old", 10000, stepwise.Flat(250), 0.15, 9000, 0.06)}
	s.Current.LatencyMs = make([][]float64, users)
	for u := range s.Current.LatencyMs {
		s.Current.LatencyMs[u] = []float64{12}
	}
	dcs := 3 + rng.Intn(3)
	for j := 0; j < dcs; j++ {
		var curve stepwise.Curve
		base := float64(40 + rng.Intn(120))
		if rng.Intn(2) == 0 {
			c, err := stepwise.VolumeDiscount(base, float64(10+rng.Intn(30)), base*0.15, base*0.5, 3)
			if err != nil {
				panic(err)
			}
			curve = c
		} else {
			curve = stepwise.Flat(base)
		}
		s.Target.DCs = append(s.Target.DCs, mk(fmt.Sprintf("t%d", j), 60+rng.Intn(120), curve,
			0.04+rng.Float64()*0.1, float64(4000+rng.Intn(4000)), 0.01+rng.Float64()*0.03))
	}
	s.Target.LatencyMs = make([][]float64, users)
	for u := range s.Target.LatencyMs {
		row := make([]float64, dcs)
		for j := range row {
			row[j] = float64(3 + rng.Intn(25))
		}
		s.Target.LatencyMs[u] = row
	}
	groups := 5 + rng.Intn(8)
	for i := 0; i < groups; i++ {
		g := model.AppGroup{
			ID:              fmt.Sprintf("g%d", i),
			Servers:         1 + rng.Intn(15),
			DataMbPerMonth:  float64(rng.Intn(2000)),
			UsersByLocation: make([]int, users),
			CurrentDC:       "old",
		}
		for u := range g.UsersByLocation {
			g.UsersByLocation[u] = rng.Intn(50)
		}
		if rng.Intn(2) == 0 {
			pen, err := stepwise.SingleThreshold(10, float64(20+rng.Intn(180)))
			if err != nil {
				panic(err)
			}
			g.LatencyPenalty = pen
		}
		s.Groups = append(s.Groups, g)
	}
	return s
}

// TestETransformNeverLosesToBaselines is the central ordering invariant
// of the paper's comparison: on any instance where the baselines find a
// plan at all, the exact LP planner's total (cost + penalties) is no
// worse. A violation means either the MILP encoding or the evaluator is
// broken.
func TestETransformNeverLosesToBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		s := randomEstate(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		planner, err := core.New(s, core.Options{
			Solver: milp.Options{GapTol: 1e-6, MaxNodes: 5000, TimeLimit: 15 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := planner.Solve()
		if err != nil {
			// Random instances can be genuinely infeasible (capacity);
			// then the baselines must fail too.
			if _, gerr := baseline.Greedy(s, baseline.GreedyOptions{}); gerr == nil {
				t.Fatalf("trial %d: planner failed (%v) but greedy found a plan", trial, err)
			}
			continue
		}
		if plan.Stats.Gap > 1e-6 {
			continue // not proven optimal within limits; ordering not guaranteed
		}
		et := plan.Cost.Total()
		if gp, err := baseline.Greedy(s, baseline.GreedyOptions{}); err == nil {
			if et > gp.Cost.Total()*(1+1e-6)+1e-6 {
				t.Fatalf("trial %d: eTransform %v worse than greedy %v", trial, et, gp.Cost.Total())
			}
		}
		if mp, err := baseline.Manual(s, baseline.ManualOptions{}); err == nil {
			if et > mp.Cost.Total()*(1+1e-6)+1e-6 {
				t.Fatalf("trial %d: eTransform %v worse than manual %v", trial, et, mp.Cost.Total())
			}
		}
	}
}

// TestETransformDRNeverLosesToGreedyDR checks the DR ordering with exact
// solves on small instances.
func TestETransformDRNeverLosesToGreedyDR(t *testing.T) {
	rng := rand.New(rand.NewSource(4048))
	trials := 15
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		s := randomEstate(rng)
		// DR needs headroom: widen capacities.
		for j := range s.Target.DCs {
			s.Target.DCs[j].CapacityServers *= 3
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		planner, err := core.New(s, core.Options{
			DR:     true,
			Solver: milp.Options{GapTol: 1e-6, MaxNodes: 3000, TimeLimit: 15 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := planner.Solve()
		if err != nil {
			continue
		}
		if plan.Stats.Gap > 1e-6 {
			continue
		}
		if gp, err := baseline.Greedy(s, baseline.GreedyOptions{DR: true}); err == nil {
			if plan.Cost.Total() > gp.Cost.Total()*(1+1e-6)+1e-6 {
				t.Fatalf("trial %d: eTransform DR %v worse than greedy DR %v",
					trial, plan.Cost.Total(), gp.Cost.Total())
			}
		}
	}
}
