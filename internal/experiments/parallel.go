package experiments

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(0) … fn(n-1) across at most workers goroutines (0
// selects runtime.NumCPU()). Callers write results into index i of a
// preallocated slice inside fn, so assembly order — and therefore every
// rendered table — is deterministic regardless of scheduling. All jobs
// run even after a failure; the error for the smallest index wins, so
// repeated runs report the same failure.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachContext(context.Background(), n, workers, fn)
}

// ForEachContext is ForEach with cancellation: once ctx is done, no new
// job starts (jobs already running finish normally), so an abandoned
// batch stops burning CPU instead of draining to the end. Error
// selection stays index-deterministic given which jobs ran: scanning
// indices in order, a job's own error wins at the first index that
// failed, and ctx.Err() is returned at the first index that never
// started. A fully completed batch returns its ForEach answer even if
// ctx expired after the last job was fed.
func ForEachContext(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	ran := make([]bool, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			ran[i] = true
			errs[i] = fn(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					errs[i] = fn(i)
				}
			}()
		}
	feed:
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
				ran[i] = true
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}
	for i := 0; i < n; i++ {
		if !ran[i] {
			// The batch was cut short; the context's error is the cause.
			if err := ctx.Err(); err != nil {
				return err
			}
			return nil
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}
