package experiments

import (
	"runtime"
	"sync"
)

// ForEach runs fn(0) … fn(n-1) across at most workers goroutines (0
// selects runtime.NumCPU()). Callers write results into index i of a
// preallocated slice inside fn, so assembly order — and therefore every
// rendered table — is deterministic regardless of scheduling. All jobs
// run even after a failure; the error for the smallest index wins, so
// repeated runs report the same failure.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
