package milp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp/cuts"
	"github.com/etransform/etransform/internal/obs"
)

// TestCutsCloseKnapsackGapAtRoot: on min −x0−x1 s.t. 2x0+2x1 ≤ 3 the
// root LP bound is −1.5; with cuts enabled the root must separate at
// least one cut (the cover x0+x1 ≤ 1 closes the gap entirely) and the
// solve must still land exactly on the MILP optimum −1.
func TestCutsCloseKnapsackGapAtRoot(t *testing.T) {
	m := lp.NewModel("gap")
	a := m.AddBinary("a", -1)
	b := m.AddBinary("b", -1)
	m.AddRow("cap", []lp.Term{{Var: a, Coef: 2}, {Var: b, Coef: 2}}, lp.LE, 3)

	met := obs.NewMetrics()
	sol := solveOrFatal(t, m, &Options{
		Cuts:    cuts.Options{Enable: true},
		Metrics: met,
	})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective - -1) > 1e-9 {
		t.Fatalf("status %v objective %v, want optimal -1", sol.Status, sol.Objective)
	}
	if got := met.Counter(obs.MetricMILPCutsSeparated); got < 1 {
		t.Fatalf("cuts_separated = %d, want ≥ 1", got)
	}
	if sep, act := met.Counter(obs.MetricMILPCutsSeparated), met.Counter(obs.MetricMILPCutsActive); act < 0 || act > sep {
		t.Fatalf("cuts_active = %d outside [0, cuts_separated=%d]", act, sep)
	}
}

// TestCutsMetricsAbsentWhenDisabled: the default configuration must not
// grow new metric keys — golden metric snapshots depend on the exact
// key set.
func TestCutsMetricsAbsentWhenDisabled(t *testing.T) {
	m := lp.NewModel("nometrics")
	a := m.AddBinary("a", -1)
	b := m.AddBinary("b", -1)
	m.AddRow("cap", []lp.Term{{Var: a, Coef: 2}, {Var: b, Coef: 2}}, lp.LE, 3)
	met := obs.NewMetrics()
	solveOrFatal(t, m, &Options{Metrics: met})
	snap := met.Snapshot()
	for _, k := range []string{obs.MetricMILPCutsSeparated, obs.MetricMILPCutsActive, obs.MetricMILPKernelIncumbents} {
		if _, ok := snap.Counters[k]; ok {
			t.Errorf("metric %s present in a cuts-off kernel-off solve", k)
		}
	}
}

// equivalentSolve runs one seeded model under base and variant options
// and asserts both reach the same status and certified objective.
func equivalentSolve(t *testing.T, seed int64, workers int, name string, variant func(*Options)) {
	t.Helper()
	m := randomObsModel(rand.New(rand.NewSource(seed)))
	base := &Options{Workers: workers}
	sol1, err := Solve(m, base)
	if err != nil {
		t.Fatalf("%s seed=%d workers=%d: base solve: %v", name, seed, workers, err)
	}
	vopts := &Options{Workers: workers}
	variant(vopts)
	sol2, err := Solve(m, vopts)
	if err != nil {
		t.Fatalf("%s seed=%d workers=%d: variant solve: %v", name, seed, workers, err)
	}
	if sol1.Status != sol2.Status {
		t.Fatalf("%s seed=%d workers=%d: status %v vs %v", name, seed, workers, sol1.Status, sol2.Status)
	}
	if !sol1.Status.HasSolution() {
		return
	}
	rel := 1e-6 * math.Max(1, math.Abs(sol1.Objective))
	if d := math.Abs(sol1.Objective - sol2.Objective); d > rel {
		t.Fatalf("%s seed=%d workers=%d: objective %v vs %v (Δ %.3g)",
			name, seed, workers, sol1.Objective, sol2.Objective, d)
	}
}

// TestCutsEquivalence: enabling root cuts must never change the
// certified optimum — only how fast the tree collapses. 40 seeds at
// workers 1 and 4 (run under -race by scripts/check.sh).
func TestCutsEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for seed := int64(1); seed <= 40; seed++ {
			equivalentSolve(t, seed, workers, "cuts", func(o *Options) {
				o.Cuts = cuts.Options{Enable: true}
			})
		}
	}
}

// TestKernelEquivalence: the kernel-search heuristic feeds incumbents
// only; the certified optimum must be identical with it on or off.
func TestKernelEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for seed := int64(1); seed <= 40; seed++ {
			equivalentSolve(t, seed, workers, "kernel", func(o *Options) {
				o.Kernel = KernelOptions{Enable: true}
			})
		}
	}
}

// TestCutsAndKernelEquivalence: both features together.
func TestCutsAndKernelEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for seed := int64(1); seed <= 25; seed++ {
			equivalentSolve(t, seed, workers, "cuts+kernel", func(o *Options) {
				o.Cuts = cuts.Options{Enable: true}
				o.Kernel = KernelOptions{Enable: true}
			})
		}
	}
}

// TestKernelDeterministicAcrossWorkers: cuts and kernel run in the
// sequential root phase, so their whole trajectory — separated/active
// cut counts and kernel incumbents — must not depend on the worker
// count.
func TestKernelDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		counts := make(map[int][3]int64)
		for _, workers := range []int{1, 4} {
			m := randomObsModel(rand.New(rand.NewSource(seed)))
			met := obs.NewMetrics()
			sol, err := Solve(m, &Options{
				Workers: workers,
				Cuts:    cuts.Options{Enable: true},
				Kernel:  KernelOptions{Enable: true},
				Metrics: met,
			})
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			if !sol.Status.HasSolution() {
				continue
			}
			counts[workers] = [3]int64{
				met.Counter(obs.MetricMILPCutsSeparated),
				met.Counter(obs.MetricMILPCutsActive),
				met.Counter(obs.MetricMILPKernelIncumbents),
			}
		}
		if counts[1] != counts[4] {
			t.Fatalf("seed=%d: root-phase counters differ across workers: w1=%v w4=%v",
				seed, counts[1], counts[4])
		}
	}
}

// TestCutsPureLPPassthrough: a model with no integer variables must be
// untouched by the cut/kernel machinery.
func TestCutsPureLPPassthrough(t *testing.T) {
	m := lp.NewModel("pure")
	x := m.AddVar(lp.Variable{Name: "x", Upper: 10, Cost: -1})
	m.AddRow("r", []lp.Term{{Var: x, Coef: 2}}, lp.LE, 7)
	sol := solveOrFatal(t, m, &Options{
		Cuts:   cuts.Options{Enable: true},
		Kernel: KernelOptions{Enable: true},
	})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective - -3.5) > 1e-9 {
		t.Fatalf("status %v objective %v, want optimal -3.5", sol.Status, sol.Objective)
	}
}
