package milp_test

import (
	"fmt"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp"
)

// ExampleSolve solves a small knapsack with an explicit worker count.
// Workers: 1 selects the deterministic sequential search; any other
// count returns the same certified objective (see the package docs).
func ExampleSolve() {
	m := lp.NewModel("knapsack")
	a := m.AddBinary("a", -10)
	b := m.AddBinary("b", -13)
	c := m.AddBinary("c", -7)
	m.AddRow("weight", []lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}}, lp.LE, 6)

	sol, err := milp.Solve(m, &milp.Options{Workers: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("status=%v objective=%v workers=%d\n", sol.Status, sol.Objective, sol.Workers)
	fmt.Printf("take a=%v b=%v c=%v\n", sol.Value(a), sol.Value(b), sol.Value(c))
	// Output:
	// status=optimal objective=-20 workers=1
	// take a=0 b=1 c=1
}
