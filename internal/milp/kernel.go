package milp

import (
	"math"
	"sort"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/tol"
)

// KernelOptions configure the kernel-search primal heuristic: solve
// small restricted MILPs over the root LP's support plus buckets of
// the best-reduced-cost remaining variables, feeding any improvement
// to the shared incumbent so best-bound pruning bites early. The zero
// value disables the heuristic; Enable with everything else zero
// applies defaults.
type KernelOptions struct {
	// Enable turns the heuristic on. Off by default (byte-stable default
	// trajectories).
	Enable bool
	// MaxBuckets caps how many reduced-cost buckets are tried. Default 6.
	MaxBuckets int
	// BucketSize is the number of out-of-kernel integer variables
	// unlocked per bucket. 0 derives max(16, nInt/8) from the model's
	// integer-variable count.
	BucketSize int
	// NodeBudget caps each restricted solve's branch & bound nodes; the
	// primary stopping lever, chosen over time so the heuristic's
	// trajectory is deterministic when no deadline is set. Default 400.
	NodeBudget int
	// TimeShare is the fraction of the remaining wall budget the whole
	// kernel phase may spend when the solve has a deadline. Default 0.25.
	TimeShare float64
}

func (o *KernelOptions) withDefaults(nInt int) KernelOptions {
	out := KernelOptions{}
	if o != nil {
		out = *o
	}
	if out.MaxBuckets <= 0 {
		out.MaxBuckets = 6
	}
	if out.BucketSize <= 0 {
		out.BucketSize = nInt / 8
		if out.BucketSize < 16 {
			out.BucketSize = 16
		}
	}
	if out.NodeBudget <= 0 {
		out.NodeBudget = 400
	}
	if out.TimeShare <= 0 || out.TimeShare > 1 {
		out.TimeShare = 0.25
	}
	return out
}

// kernelMaxMisses stops the bucket loop after this many consecutive
// non-improving buckets: later buckets carry ever-worse reduced costs,
// so two dry buckets in a row is strong evidence the rest are barren.
const kernelMaxMisses = 2

// kernelSearch runs the kernel-search heuristic in the sequential root
// phase. The kernel starts as the root LP's integer support (variables
// the relaxation already uses); the remaining integer variables are
// sorted by reduced cost — the dual-feasible measure of how expensive
// forcing them into the solution would be — and chunked into buckets.
// Each pass unlocks one more bucket, fixes every integer variable
// outside kernel∪bucket at its lower bound, and solves the restricted
// MILP under a node budget with Workers=1 and cuts/kernel off (no
// recursion). An improving solution goes through tryAccept (verified
// against the cut-free model like every incumbent) and grows the
// kernel by the bucket variables it actually used.
//
// Failures are swallowed: the heuristic may stop early (deadline,
// sub-solve error, consecutive dry buckets) but never fails the solve.
//
//etlint:ignore lockguard runs in the sequential root phase before worker fan-out; incumbent reads/installs go through snapshotIncumbent/tryAccept which lock
func (c *coordinator) kernelSearch(w0 *worker, root *lp.Solution) {
	ko := c.opts.Kernel.withDefaults(len(c.intVars))
	base := c.model
	if c.cutModel != nil {
		base = c.cutModel
	}
	if len(root.X) != base.NumVars() || len(root.DualValues) != w0.work.NumRows() {
		return
	}
	// Reduced costs d_j = c_j − yᵀA_j against the root LP's duals (the
	// cut-strengthened relaxation when cuts ran: w0.work is the model
	// those duals price).
	n := base.NumVars()
	d := make([]float64, n)
	for j := 0; j < n; j++ {
		d[j] = w0.work.Var(lp.VarID(j)).Cost
	}
	for r := 0; r < w0.work.NumRows(); r++ {
		y := root.DualValues[r]
		if tol.IsZero(y) {
			continue
		}
		for _, t := range w0.work.Row(lp.RowID(r)).Terms {
			d[t.Var] -= y * t.Coef
		}
	}

	// Kernel = integer support of the root LP; everything else is
	// bucketed by ascending reduced cost (cheapest to activate first).
	// Variables that cannot be fixed (infinite lower bound) stay in the
	// kernel. Sorting makes the order independent of any PerturbSeed
	// shuffle of intVars.
	var outside []lp.VarID
	for _, v := range c.intVars {
		if root.X[v] > lp.IntTol || math.IsInf(base.Var(v).Lower, -1) {
			continue // in the kernel: never fixed below
		}
		outside = append(outside, v)
	}
	if len(outside) == 0 {
		return
	}
	sort.SliceStable(outside, func(i, j int) bool {
		if !tol.Same(d[outside[i]], d[outside[j]]) {
			return d[outside[i]] < d[outside[j]]
		}
		return outside[i] < outside[j]
	})

	// Kernel-phase wall budget: a share of what remains until the solve
	// deadline. Without a deadline the node budget is the only stop, so
	// the trajectory is deterministic.
	var kernelDeadline time.Time
	if !c.deadline.IsZero() {
		kernelDeadline = time.Now().Add(
			time.Duration(ko.TimeShare * float64(time.Until(c.deadline))))
	}

	rm := base.Clone()
	fix := func(v lp.VarID) {
		lo := base.Var(v).Lower
		rm.SetBounds(v, lo, lo)
	}
	unfix := func(v lp.VarID) {
		bv := base.Var(v)
		rm.SetBounds(v, bv.Lower, bv.Upper)
	}
	for _, v := range outside {
		fix(v)
	}
	if rm.Err() != nil {
		return
	}

	misses := 0
	for b := 0; b < ko.MaxBuckets && len(outside) > 0 && misses < kernelMaxMisses; b++ {
		if c.expired() || c.ctx.Err() != nil {
			return
		}
		if !kernelDeadline.IsZero() && time.Now().After(kernelDeadline) {
			return
		}
		take := ko.BucketSize
		if take > len(outside) {
			take = len(outside)
		}
		bucket := outside[:take]
		outside = outside[take:]
		for _, v := range bucket {
			unfix(v)
		}
		so := Options{
			GapTol:   c.opts.GapTol,
			MaxNodes: ko.NodeBudget,
			Workers:  1,
			Simplex:  c.opts.Simplex,
		}
		// Sub-solves are anonymous helpers: no tracing/metrics/fault
		// injection of their own (their only observable output is the
		// incumbent, counted by milp.kernel_incumbents).
		so.Simplex.Trace = nil
		so.Simplex.Metrics = nil
		so.Simplex.Inject = nil
		if !kernelDeadline.IsZero() {
			so.TimeLimit = time.Until(kernelDeadline)
			if so.TimeLimit <= 0 {
				return
			}
		}
		before, haveBefore := c.snapshotIncumbent()
		if inc := c.incumbentSnapshot(); inc != nil {
			p := make([]float64, len(inc))
			copy(p, inc)
			so.WarmStarts = [][]float64{p}
		}
		sub, err := SolveContext(c.goCtx, rm, &so)
		if err != nil || sub == nil {
			return
		}
		w0.iterations += sub.Iterations
		improved := false
		if sub.Status.HasSolution() && sub.X != nil && finiteSolution(sub) {
			c.tryAccept(sub.X, sub.Objective, 0)
			after, haveAfter := c.snapshotIncumbent()
			improved = haveAfter && (!haveBefore || after < before-tol.Tie)
		}
		if improved {
			c.kernelIncumbents++
			// Grow the kernel by the bucket variables the solution used;
			// re-fix the ones it ignored.
			for _, v := range bucket {
				if sub.X != nil && sub.X[v] > base.Var(v).Lower+lp.IntTol {
					continue // joins the kernel: stays unlocked
				}
				fix(v)
			}
			misses = 0
			continue
		}
		for _, v := range bucket {
			fix(v)
		}
		misses++
	}
}

// incumbentSnapshot returns the current incumbent point (nil when none).
func (c *coordinator) incumbentSnapshot() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.incumbent
}
