package milp

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/certify"
	"github.com/etransform/etransform/internal/lp"
)

// stressModels builds a family of all-integer-data models so that every
// optimal objective is float-exact and worker counts can be compared
// with ==.
func stressModels() map[string]func() *lp.Model {
	return map[string]func() *lp.Model{
		"knapsack30": func() *lp.Model {
			rng := rand.New(rand.NewSource(41))
			m := lp.NewModel("knap30")
			var terms []lp.Term
			for j := 0; j < 30; j++ {
				v := m.AddBinary("", -float64(1+rng.Intn(60)))
				terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(8))})
			}
			m.AddRow("w", terms, lp.LE, 45)
			return m
		},
		"assignment": func() *lp.Model {
			rng := rand.New(rand.NewSource(17))
			const groups, dcs = 10, 3
			m := lp.NewModel("assign")
			vars := make([][]lp.VarID, groups)
			sizes := make([]float64, groups)
			total := 0.0
			for i := range vars {
				sizes[i] = float64(1 + rng.Intn(9))
				total += sizes[i]
				vars[i] = make([]lp.VarID, dcs)
				terms := make([]lp.Term, dcs)
				for j := 0; j < dcs; j++ {
					vars[i][j] = m.AddBinary("", float64(1+rng.Intn(50))*sizes[i])
					terms[j] = lp.Term{Var: vars[i][j], Coef: 1}
				}
				m.AddRow("", terms, lp.EQ, 1)
			}
			for j := 0; j < dcs; j++ {
				terms := make([]lp.Term, groups)
				for i := 0; i < groups; i++ {
					terms[i] = lp.Term{Var: vars[i][j], Coef: sizes[i]}
				}
				m.AddRow("", terms, lp.LE, 0.5*total)
			}
			return m
		},
		"covering": func() *lp.Model {
			rng := rand.New(rand.NewSource(5))
			m := lp.NewModel("cover")
			const n = 18
			for j := 0; j < n; j++ {
				m.AddBinary("", float64(1+rng.Intn(9)))
			}
			for r := 0; r < 12; r++ {
				var terms []lp.Term
				for j := 0; j < n; j++ {
					if rng.Intn(3) == 0 {
						terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: 1})
					}
				}
				if len(terms) == 0 {
					terms = append(terms, lp.Term{Var: lp.VarID(r % n), Coef: 1})
				}
				m.AddRow("", terms, lp.GE, 1)
			}
			return m
		},
	}
}

// TestWorkersIdenticalCertifiedResults is the race stress test: the same
// model solved with 1, 2 and 8 workers must yield the same status, the
// same objective (exactly — the data is all-integer) and the same
// certify verdict. Run under -race this also exercises the
// coordinator's locking on a single shared queue.
func TestWorkersIdenticalCertifiedResults(t *testing.T) {
	for name, build := range stressModels() {
		t.Run(name, func(t *testing.T) {
			type outcome struct {
				status   lp.Status
				obj      float64
				feasible bool
			}
			var base *outcome
			for _, workers := range []int{1, 2, 8} {
				m := build()
				sol, err := Solve(m, &Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				cert, err := certify.CheckSolution(m, sol, nil)
				if err != nil {
					t.Fatalf("workers=%d: certify: %v", workers, err)
				}
				got := &outcome{status: sol.Status, obj: sol.Objective, feasible: cert != nil && cert.Feasible}
				if !got.feasible {
					t.Fatalf("workers=%d: solution failed certification: %+v", workers, cert)
				}
				if sol.Workers != workers {
					t.Errorf("workers=%d: sol.Workers = %d", workers, sol.Workers)
				}
				if base == nil {
					base = got
					continue
				}
				if *got != *base {
					t.Errorf("workers=%d: outcome %+v differs from workers=1 %+v", workers, got, base)
				}
			}
		})
	}
}

// TestWorkersRepeatedRaces re-solves one model many times at high worker
// counts so -race gets real interleavings, asserting the objective never
// moves.
func TestWorkersRepeatedRaces(t *testing.T) {
	build := stressModels()["knapsack30"]
	ref, err := Solve(build(), &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for i := 0; i < rounds; i++ {
		sol, err := Solve(build(), &Options{Workers: 8})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if sol.Status != ref.Status || sol.Objective != ref.Objective {
			t.Fatalf("round %d: (%v, %v), want (%v, %v)", i, sol.Status, sol.Objective, ref.Status, ref.Objective)
		}
	}
}

// TestCancellationReturnsPartialIncumbent: a canceled context must
// surface context.Canceled, and the partial solution must carry the best
// incumbent found before the cancel — feasible, certified, but not
// claiming HasSolution. A warm start (all-zero is feasible for a
// knapsack) guarantees an incumbent exists at cancel time.
func TestCancellationReturnsPartialIncumbent(t *testing.T) {
	m := stressModels()["knapsack30"]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the tree search starts
	warm := make([]float64, m.NumVars())
	sol, err := SolveContext(ctx, m, &Options{GapTol: 1e-12, Workers: 4, WarmStarts: [][]float64{warm}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol == nil {
		t.Fatal("nil solution on cancellation")
	}
	if sol.Status != lp.StatusCanceled {
		t.Fatalf("status = %v, want canceled", sol.Status)
	}
	if sol.Status.HasSolution() {
		t.Error("StatusCanceled must not report HasSolution")
	}
	// Warm starts are accepted before the context is consulted, so an
	// incumbent worth salvaging must exist.
	if sol.X == nil {
		t.Fatal("expected a partial incumbent from the warm start")
	}
	if err := m.CheckFeasible(sol.X, 1e-6); err != nil {
		t.Errorf("partial incumbent infeasible: %v", err)
	}
	cert, err := certify.Check(m, sol.X, nil)
	if err != nil {
		t.Fatalf("certify: %v", err)
	}
	if !cert.Feasible {
		t.Errorf("partial incumbent failed certification: %s", cert.Summary())
	}
	if sol.Gap < 0 {
		t.Errorf("negative gap %v", sol.Gap)
	}
}

// TestCancellationMidSearch cancels while workers are in flight; the
// solve must stop with either a canceled partial result or a finished
// solution (if it won the race), never hang or corrupt state.
func TestCancellationMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := lp.NewModel("hard")
	var terms []lp.Term
	for j := 0; j < 40; j++ {
		v := m.AddBinary("", -float64(1+rng.Intn(100)))
		terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(10))})
	}
	m.AddRow("w", terms, lp.LE, 55)
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	sol, err := SolveContext(ctx, m, &Options{GapTol: 1e-12, Workers: 4, DisableDiving: true})
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if sol == nil || sol.Status != lp.StatusCanceled {
			t.Fatalf("canceled solve returned %+v", sol)
		}
		if sol.X != nil {
			if ferr := m.CheckFeasible(sol.X, 1e-6); ferr != nil {
				t.Errorf("partial incumbent infeasible: %v", ferr)
			}
		}
		return
	}
	// The solve won the race against cancel; the result must be a
	// normal certified outcome.
	if sol.Status != lp.StatusOptimal && sol.Status != lp.StatusNodeLimit {
		t.Fatalf("status = %v", sol.Status)
	}
}

// TestConcurrencyStats sanity-checks the bookkeeping the README's
// Performance section reports.
func TestConcurrencyStats(t *testing.T) {
	m := stressModels()["assignment"]()
	sol, err := Solve(m, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Workers != 2 {
		t.Errorf("Workers = %d, want 2", sol.Workers)
	}
	if sol.WallTime <= 0 {
		t.Errorf("WallTime = %v, want > 0", sol.WallTime)
	}
	if sol.WorkTime <= 0 {
		t.Errorf("WorkTime = %v, want > 0", sol.WorkTime)
	}
	if sol.Nodes > 0 {
		sum := 0
		for _, n := range sol.NodesPerWorker {
			sum += n
		}
		if sum != sol.Nodes {
			t.Errorf("NodesPerWorker sums to %d, Nodes = %d", sum, sol.Nodes)
		}
		if sol.PeakQueueDepth <= 0 {
			t.Errorf("PeakQueueDepth = %d with %d nodes", sol.PeakQueueDepth, sol.Nodes)
		}
	}
}
