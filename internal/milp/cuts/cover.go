package cuts

import (
	"fmt"
	"math"
	"sort"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/tol"
)

// coverItem is one binary variable of a knapsack row with its weight
// and its LP value at the separating point.
type coverItem struct {
	v lp.VarID
	a float64
	x float64
}

// knapsackItems extracts the 0/1 knapsack structure of a row, or nil
// when the row is not a knapsack: sense LE, every coefficient strictly
// positive, every variable an integral 0/1 variable (lower ≥ 0,
// upper ≤ 1 — the group→DC assignment vars in the consolidation model
// are exactly this shape; aggregate-mode count variables with upper
// bounds above 1 disqualify their rows here).
func knapsackItems(row lp.Row, isInt []bool, x []float64) []coverItem {
	if row.Sense != lp.LE || len(row.Terms) == 0 {
		return nil
	}
	items := make([]coverItem, 0, len(row.Terms))
	for _, t := range row.Terms {
		if int(t.Var) >= len(isInt) || !isInt[t.Var] {
			return nil
		}
		if !(t.Coef > gmiCoefZero) || math.IsInf(t.Coef, 0) {
			return nil
		}
		items = append(items, coverItem{v: t.Var, a: t.Coef, x: x[t.Var]})
	}
	return items
}

// binary01 reports whether every item's variable is bounded in [0,1].
func binary01(m *lp.Model, items []coverItem) bool {
	for _, it := range items {
		v := m.Var(it.v)
		if v.Lower < -tol.Int || v.Upper > 1+tol.Int {
			return false
		}
	}
	return true
}

// separateCoverRow derives one extended cover cut from a knapsack row
// Σ a_j·x_j ≤ rhs at the fractional point x, or ok=false.
//
// Degenerate rows are rejected up front rather than looped over
// (regression: zero-capacity DCs yield rhs = 0 knapsacks whose "cover"
// is the empty set — the greedy loop below would terminate immediately
// and emit the vacuous cut Σ∅ ≤ −1, which is violated by every point
// including feasible ones):
//
//   - rhs ≤ 0: every variable is already forced to 0 by the row itself;
//     there is no cover to separate (presolve/bound territory, not cuts);
//   - Σ a_j ≤ rhs: the row can never be violated by 0/1 points, no
//     cover exists.
//
// Otherwise a greedy cover C is built in order of increasing
// (1 − x*_j)/a_j (cheapest violation first), minimalized, and extended
// to E(C) = C ∪ {j : a_j ≥ max_{i∈C} a_i}. The cut Σ_{E(C)} x_j ≤
// |C|−1 is valid: any |C|-subset S of E(C) has Σ_S a ≥ Σ_C a > rhs
// (each element of E(C)\C weighs at least the heaviest element of C),
// so no feasible 0/1 point sets |C| or more of them to 1.
func separateCoverRow(items []coverItem, rhs float64) (cover, extra []coverItem, ok bool) {
	if !(rhs > gmiCoefZero) {
		return nil, nil, false
	}
	total := 0.0
	for _, it := range items {
		total += it.a
	}
	if total <= rhs+gmiCoefZero {
		return nil, nil, false
	}

	// Greedy cover: take items by ascending (1−x)/a until the weight
	// exceeds rhs. Ties break on variable id for determinism.
	byRatio := append([]coverItem(nil), items...)
	sort.SliceStable(byRatio, func(i, j int) bool {
		ri := (1 - byRatio[i].x) / byRatio[i].a
		rj := (1 - byRatio[j].x) / byRatio[j].a
		if !tol.Same(ri, rj) {
			return ri < rj
		}
		return byRatio[i].v < byRatio[j].v
	})
	weight := 0.0
	cover = cover[:0]
	for _, it := range byRatio {
		cover = append(cover, it)
		weight += it.a
		if weight > rhs+gmiCoefZero {
			break
		}
	}
	if !(weight > rhs+gmiCoefZero) {
		return nil, nil, false // numerical dust defeated the Σa > rhs pre-check
	}

	// Minimalize: drop items whose removal keeps the cover property,
	// least useful (largest 1−x, i.e. smallest x*) first, so the
	// violated part of the cover survives.
	order := make([]int, len(cover))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if !tol.Same(cover[order[i]].x, cover[order[j]].x) {
			return cover[order[i]].x < cover[order[j]].x
		}
		return cover[order[i]].v < cover[order[j]].v
	})
	dropped := make([]bool, len(cover))
	for _, i := range order {
		if weight-cover[i].a > rhs+gmiCoefZero {
			weight -= cover[i].a
			dropped[i] = true
		}
	}
	kept := cover[:0]
	for i, it := range cover {
		if !dropped[i] {
			kept = append(kept, it)
		}
	}
	cover = kept
	if len(cover) == 0 {
		return nil, nil, false
	}

	// Extend: every item at least as heavy as the heaviest cover
	// member joins the left-hand side for free.
	aMax := 0.0
	inCover := make(map[lp.VarID]bool, len(cover))
	for _, it := range cover {
		if it.a > aMax {
			aMax = it.a
		}
		inCover[it.v] = true
	}
	for _, it := range items {
		if !inCover[it.v] && it.a >= aMax-gmiCoefZero {
			extra = append(extra, it)
		}
	}
	return cover, extra, true
}

// SeparateCovers derives extended knapsack-cover cuts from the model's
// 0/1 knapsack rows (LE, positive coefficients, integral [0,1]
// variables) at the point x. isInt marks integral structural
// variables (the model is typically a relaxation). One cut per
// violated row; normalization and the violation/density filters come
// from Options.
func SeparateCovers(m *lp.Model, isInt []bool, x []float64, o *Options) []Cut {
	if m == nil || len(x) != m.NumVars() || len(isInt) != m.NumVars() {
		return nil
	}
	var out []Cut
	for r := 0; r < m.NumRows(); r++ {
		row := m.Row(lp.RowID(r))
		items := knapsackItems(row, isInt, x)
		if items == nil || !binary01(m, items) {
			continue
		}
		cover, extra, ok := separateCoverRow(items, row.RHS)
		if !ok {
			continue
		}
		terms := make([]lp.Term, 0, len(cover)+len(extra))
		for _, it := range cover {
			terms = append(terms, lp.Term{Var: it.v, Coef: 1})
		}
		for _, it := range extra {
			terms = append(terms, lp.Term{Var: it.v, Coef: 1})
		}
		c := Cut{
			Name:  fmt.Sprintf("cover_r%d", r),
			Terms: terms,
			Sense: lp.LE,
			RHS:   float64(len(cover) - 1),
			Kind:  "cover",
		}
		if c.finish(x, o) {
			out = append(out, c)
		}
	}
	return out
}
