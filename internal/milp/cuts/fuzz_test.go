package cuts

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/simplex"
)

// fuzzReader decodes primitive values from a fuzz byte stream, cycling
// from the start when exhausted (so short inputs still build complete
// structures deterministically).
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if len(r.data) == 0 {
		return 0
	}
	b := r.data[r.pos%len(r.data)]
	r.pos++
	return b
}

func (r *fuzzReader) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.byte()) % n
}

// float64 decodes raw IEEE bits: NaN, ±Inf and subnormals all reachable.
func (r *fuzzReader) float64() float64 {
	var b [8]byte
	for i := range b {
		b[i] = r.byte()
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// smallFloat decodes a bounded "plausible tableau" value in roughly
// [−8, 8] with quarter steps, occasionally nudged near an integer so
// the near-integral branches of the derivation get exercised.
func (r *fuzzReader) smallFloat() float64 {
	v := float64(int(r.byte())%65-32) / 4
	if r.byte()%8 == 0 {
		v = math.Round(v) + float64(int(r.byte())%3-1)*1e-10
	}
	return v
}

// FuzzGomoryRow drives gomoryFromRow with arbitrary tableau rows —
// malformed coefficients (NaN, ±Inf), near-integral bases, inverted
// and infinite bounds — and asserts it never panics and that any cut
// surviving finish() has finite coefficients, a finite RHS and a
// strictly positive normalized violation.
func FuzzGomoryRow(f *testing.F) {
	f.Add([]byte{3, 1, 7, 128, 64, 33, 5, 250, 17, 90, 2, 0, 255, 8, 8, 8})
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{5, 3, 200, 100, 50, 25, 12, 6, 3, 1, 0, 255, 127, 63, 31, 15, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		n := 1 + r.intn(5)
		nr := 1 + r.intn(3)
		nTot := n + nr
		in := &gmiRow{
			n:        n,
			alpha:    make([]float64, nTot),
			status:   make([]simplex.ColStatus, nTot),
			lower:    make([]float64, nTot),
			upper:    make([]float64, nTot),
			integer:  make([]bool, nTot),
			rowTerms: make([][]lp.Term, nr),
			rowRHS:   make([]float64, nr),
		}
		in.basic = r.intn(nTot)
		in.beta = r.smallFloat()
		if r.byte()%4 == 0 {
			in.beta = r.float64() // raw bits: NaN/Inf beta
		}
		for j := 0; j < nTot; j++ {
			if r.byte()%5 == 0 {
				in.alpha[j] = r.float64()
			} else {
				in.alpha[j] = r.smallFloat()
			}
			in.status[j] = simplex.ColStatus(1 + r.intn(4))
			switch r.byte() % 6 {
			case 0:
				in.lower[j], in.upper[j] = math.Inf(-1), math.Inf(1)
			case 1:
				in.lower[j], in.upper[j] = r.smallFloat(), math.Inf(1)
			case 2: // inverted bounds
				in.lower[j], in.upper[j] = 1, 0
			default:
				in.lower[j] = r.smallFloat()
				in.upper[j] = in.lower[j] + float64(r.intn(4))
			}
			in.integer[j] = r.byte()%2 == 0
		}
		in.status[in.basic] = simplex.ColBasic
		in.alpha[in.basic] = 1
		for rr := 0; rr < nr; rr++ {
			nt := r.intn(n + 1)
			terms := make([]lp.Term, 0, nt)
			for k := 0; k < nt; k++ {
				terms = append(terms, lp.Term{Var: lp.VarID(r.intn(n)), Coef: r.smallFloat()})
			}
			in.rowTerms[rr] = terms
			in.rowRHS[rr] = r.smallFloat()
		}

		o := (&Options{Enable: true}).WithDefaults(n)
		c, ok := gomoryFromRow(in, &o)
		if !ok {
			return
		}
		x := make([]float64, n)
		for j := range x {
			x[j] = r.smallFloat()
		}
		if !c.finish(x, &o) {
			return
		}
		for _, tm := range c.Terms {
			if math.IsNaN(tm.Coef) || math.IsInf(tm.Coef, 0) {
				t.Fatalf("non-finite coefficient %v survived finish: %+v", tm.Coef, c)
			}
			if int(tm.Var) >= n {
				t.Fatalf("slack variable %d leaked into a finished cut", tm.Var)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			t.Fatalf("non-finite RHS survived finish: %+v", c)
		}
		if !(c.Violation >= o.MinViolation) {
			t.Fatalf("finished cut below the violation floor: %+v", c)
		}
	})
}

// FuzzCoverSeparation builds small binary models from fuzz bytes —
// including zero/negative capacities, non-knapsack senses and ±Inf
// coefficients — and asserts the separator never panics, and that on
// well-formed models every returned cut preserves the full enumerated
// set of integer-feasible points (the validity property, fuzzed).
func FuzzCoverSeparation(f *testing.F) {
	f.Add([]byte{2, 1, 10, 10, 15, 200, 200})
	f.Add([]byte{4, 2, 3, 9, 4, 1, 0, 0, 128, 255, 60, 61, 62, 63})
	f.Add([]byte{3, 1, 0, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		n := 1 + r.intn(6)
		m := lp.NewModel("fuzz")
		for j := 0; j < n; j++ {
			m.AddVar(lp.Variable{Name: fmt.Sprintf("x%d", j), Upper: 1, Cost: -1, Type: lp.Binary})
		}
		nr := 1 + r.intn(3)
		for rr := 0; rr < nr; rr++ {
			var terms []lp.Term
			for j := 0; j < n; j++ {
				if r.byte()%4 == 0 {
					continue
				}
				c := float64(r.intn(9)) - 2 // includes 0 and negatives
				if r.byte()%16 == 0 {
					c = math.Inf(1)
				}
				terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: c})
			}
			if len(terms) == 0 {
				continue
			}
			sense := lp.LE
			switch r.byte() % 4 {
			case 1:
				sense = lp.GE
			case 2:
				sense = lp.EQ
			}
			rhs := float64(r.intn(12)) - 2 // zero and negative capacities
			m.AddRow(fmt.Sprintf("r%d", rr), terms, sense, rhs)
		}

		x := make([]float64, n)
		for j := range x {
			x[j] = float64(r.intn(101)) / 100
		}
		isInt := make([]bool, n)
		for j := range isInt {
			isInt[j] = true
		}
		o := (&Options{Enable: true}).WithDefaults(n)
		cuts := SeparateCovers(m.Relax(), isInt, x, &o)
		for i := range cuts {
			c := &cuts[i]
			if c.RHS < -0.5 {
				t.Fatalf("vacuous cover cut (empty cover): %+v", c)
			}
			if !(c.Violation >= o.MinViolation) {
				t.Fatalf("cover cut below the violation floor: %+v", c)
			}
		}
		if m.Err() != nil {
			return // malformed rows rejected by the model: nothing to enumerate
		}
		pts := enumerateFeasible(m)
		for i := range cuts {
			assertCutPreserves(t, 0, &cuts[i], pts)
		}
	})
}
