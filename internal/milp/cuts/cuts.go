// Package cuts implements root-node cutting-plane separation for the
// branch & bound solver: Gomory mixed-integer (GMI) cuts read back from
// the optimal simplex tableau, and knapsack-cover cuts separated
// combinatorially from the model's 0/1 capacity rows.
//
// A cut is a linear inequality satisfied by every integer-feasible
// point of the model but violated by the current LP-relaxation optimum;
// appending it to the relaxation tightens the dual bound without
// excluding any solution. Cut separation is the most bug-prone code a
// MILP solver grows — a single sign error silently deletes the optimum
// — so this package is paired with defenses at three layers:
//
//   - the validity property suite (validity_test.go) enumerates every
//     integer-feasible point of hundreds of seeded random MILPs and
//     asserts no separated cut eliminates any, with the GMI derivation
//     re-run in exact rational arithmetic (math/big) and compared to
//     the float path;
//   - the fuzz targets (FuzzGomoryRow, FuzzCoverSeparation) drive the
//     separators with malformed rows, near-integral bases and ±Inf
//     bounds;
//   - at run time, package milp re-verifies every accepted cut against
//     a stash of known integer-feasible points through internal/certify
//     — a cut that eliminates one is a hard solver error, never a
//     warning.
//
// The package itself is purely functional: separators take a model and
// a tableau view or point and return candidate cuts; the cut pool ages
// and retires them; the caller (package milp) owns the loop, the LP
// re-solves and the safety checks.
package cuts

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/tol"
)

// Options control separation and the cut pool. The zero value disables
// cutting entirely; Enable with everything else zero applies defaults.
type Options struct {
	// Enable turns root-node cut separation on. Off by default: default
	// solve trajectories (and their golden traces) must stay byte-stable.
	Enable bool
	// MaxRounds caps separation rounds at the root. Default 8.
	MaxRounds int
	// MaxPerRound caps cuts accepted per round (the most violated win).
	// Default 32.
	MaxPerRound int
	// MinViolation is the minimum normalized violation (violation over
	// the cut's coefficient 2-norm) a candidate must achieve at the
	// separating LP point. Default 1e-4.
	MinViolation float64
	// MinFrac is the minimum distance from integrality the fractional
	// basic variable (and the GMI row fraction f0) must have; rows closer
	// to integral than this produce numerically fragile cuts. Default 5e-3.
	MinFrac float64
	// MaxDynamism is the largest allowed ratio max|coef|/min|coef| over a
	// cut's nonzero coefficients; beyond it the cut is numerically
	// untrustworthy and is discarded. Default 1e7.
	MaxDynamism float64
	// MaxDensity caps a cut's nonzero count. 0 derives max(100, n/2)
	// from the model's variable count n.
	MaxDensity int
	// MaxAge is how many consecutive rounds a pooled cut may stay
	// slack (non-binding at the re-solved LP optimum) before the pool
	// retires it; retired cuts are dropped from the model handed to the
	// tree search. Default 3.
	MaxAge int
}

// WithDefaults returns o with defaults applied for a model of n
// variables.
func (o *Options) WithDefaults(n int) Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxRounds <= 0 {
		out.MaxRounds = 8
	}
	if out.MaxPerRound <= 0 {
		out.MaxPerRound = 32
	}
	if out.MinViolation <= 0 {
		out.MinViolation = tol.CutViolation
	}
	if out.MinFrac <= 0 {
		out.MinFrac = 5e-3
	}
	if out.MaxDynamism <= 0 {
		out.MaxDynamism = 1e7
	}
	if out.MaxDensity <= 0 {
		out.MaxDensity = n / 2
		if out.MaxDensity < 100 {
			out.MaxDensity = 100
		}
	}
	if out.MaxAge <= 0 {
		out.MaxAge = 3
	}
	return out
}

// Cut is one separated inequality over the model's structural
// variables: Terms (Sense) RHS. Kind records the separator that
// produced it, Violation its normalized violation at the LP point it
// was separated from (used for ranking).
type Cut struct {
	Name      string
	Terms     []lp.Term
	Sense     lp.Sense
	RHS       float64
	Kind      string
	Violation float64
}

// Row converts the cut to an lp.Row for feasibility checking.
func (c *Cut) Row() lp.Row {
	return lp.Row{Name: c.Name, Terms: c.Terms, Sense: c.Sense, RHS: c.RHS}
}

// Activity evaluates the cut's left-hand side at x.
func (c *Cut) Activity(x []float64) float64 {
	a := 0.0
	for _, t := range c.Terms {
		a += t.Coef * x[t.Var]
	}
	return a
}

// violationAt returns by how much x violates the cut (0 when satisfied).
func (c *Cut) violationAt(x []float64) float64 {
	a := c.Activity(x)
	switch c.Sense {
	case lp.GE:
		if v := c.RHS - a; v > 0 {
			return v
		}
	case lp.LE:
		if v := a - c.RHS; v > 0 {
			return v
		}
	}
	return 0
}

// norm2 is the 2-norm of the cut's coefficients.
func (c *Cut) norm2() float64 {
	s := 0.0
	for _, t := range c.Terms {
		s += t.Coef * t.Coef
	}
	return math.Sqrt(s)
}

// signature is a dedup key: the cut's sense, RHS and coefficient
// pattern quantized to 9 significant digits, over terms sorted by
// variable. Two separations of the same inequality (e.g. the same
// cover rediscovered next round) collide here.
func (c *Cut) signature() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%.9g", int(c.Sense), c.RHS)
	for _, t := range c.Terms {
		fmt.Fprintf(&sb, "|%d:%.9g", int(t.Var), t.Coef)
	}
	return sb.String()
}

// finish normalizes and screens a candidate cut: terms are sorted by
// variable, the cut is scaled so its largest |coefficient| is 1 (a
// positive scaling preserves validity and sense), and the density,
// dynamism and minimum-violation filters are applied against the
// separating point x. ok=false means the cut was filtered out.
func (c *Cut) finish(x []float64, o *Options) bool {
	if len(c.Terms) == 0 || len(c.Terms) > o.MaxDensity {
		return false
	}
	sort.Slice(c.Terms, func(i, j int) bool { return c.Terms[i].Var < c.Terms[j].Var })
	maxC, minC := 0.0, math.Inf(1)
	for _, t := range c.Terms {
		a := math.Abs(t.Coef)
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return false
		}
		if a > maxC {
			maxC = a
		}
		if a < minC {
			minC = a
		}
	}
	if !tol.Pos(maxC, 0) || math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
		return false
	}
	if maxC/minC > o.MaxDynamism {
		return false
	}
	scale := 1 / maxC
	for i := range c.Terms {
		c.Terms[i].Coef *= scale
	}
	c.RHS *= scale
	if math.IsInf(c.RHS, 0) || math.IsNaN(c.RHS) {
		return false
	}
	n := c.norm2()
	if !tol.Pos(n, 0) {
		return false
	}
	c.Violation = c.violationAt(x) / n
	return c.Violation >= o.MinViolation
}

// SelectBest ranks candidates by normalized violation (descending,
// name tie-break for determinism) and returns at most k.
func SelectBest(cands []Cut, k int) []Cut {
	sort.SliceStable(cands, func(i, j int) bool {
		if !tol.Same(cands[i].Violation, cands[j].Violation) {
			return cands[i].Violation > cands[j].Violation
		}
		return cands[i].Name < cands[j].Name
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// pooled is one pool entry with its aging state.
type pooled struct {
	cut     Cut
	age     int
	retired bool
}

// Pool holds accepted cuts across separation rounds, deduplicates
// re-separated inequalities, and retires cuts that stay slack: a cut
// that is not binding at the re-solved LP optimum for MaxAge
// consecutive rounds has stopped pulling the relaxation anywhere and
// only taxes every node LP that carries it.
type Pool struct {
	cuts []pooled
	seen map[string]bool
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{seen: make(map[string]bool)}
}

// Add accepts c unless an equivalent cut (same signature) was already
// pooled; it reports whether the cut was added.
func (p *Pool) Add(c Cut) bool {
	sig := c.signature()
	if p.seen[sig] {
		return false
	}
	p.seen[sig] = true
	p.cuts = append(p.cuts, pooled{cut: c})
	return true
}

// DropLast removes the k most recently added cuts and their dedup
// signatures. The caller uses it to roll back a batch whose LP
// re-solve failed: those cuts never made it into a solved model, so
// they must not count as applied (and may be re-separated later).
func (p *Pool) DropLast(k int) {
	for k > 0 && len(p.cuts) > 0 {
		e := &p.cuts[len(p.cuts)-1]
		delete(p.seen, e.cut.signature())
		p.cuts = p.cuts[:len(p.cuts)-1]
		k--
	}
}

// Observe updates the aging state of every live cut against the LP
// optimum x of the current round: a binding (or violated) cut resets
// its age, a slack one ages by one round and retires past maxAge.
func (p *Pool) Observe(x []float64, maxAge int) {
	for i := range p.cuts {
		e := &p.cuts[i]
		if e.retired {
			continue
		}
		act := e.cut.Activity(x)
		eps := tol.Feas * math.Max(1, math.Abs(e.cut.RHS))
		binding := false
		switch e.cut.Sense {
		case lp.GE:
			binding = act <= e.cut.RHS+eps
		case lp.LE:
			binding = act >= e.cut.RHS-eps
		}
		if binding {
			e.age = 0
			continue
		}
		e.age++
		if e.age > maxAge {
			e.retired = true
		}
	}
}

// Active returns the live (non-retired) cuts in pool order.
func (p *Pool) Active() []Cut {
	out := make([]Cut, 0, len(p.cuts))
	for i := range p.cuts {
		if !p.cuts[i].retired {
			out = append(out, p.cuts[i].cut)
		}
	}
	return out
}

// Len returns the total number of cuts ever pooled.
func (p *Pool) Len() int { return len(p.cuts) }

// Retired counts retired cuts.
func (p *Pool) Retired() int {
	n := 0
	for i := range p.cuts {
		if p.cuts[i].retired {
			n++
		}
	}
	return n
}
