package cuts

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/simplex"
	"github.com/etransform/etransform/internal/tol"
)

// validitySeeds is the size of the full property suite; the check.sh
// smoke runs the first smokeSeeds of the same sequence.
const (
	validitySeeds = 300
	smokeSeeds    = 16
)

// randomMILP builds a small seeded pure-integer model that is feasible
// by construction: a random integer anchor point x0 is drawn first and
// every row's RHS is placed so x0 satisfies it. Every third seed
// produces a binary knapsack shape (positive coefficients, LE rows)
// so the cover separator fires; the rest mix signs, fractional
// coefficients (continuous slacks for the GMI continuous arm) and
// senses.
func randomMILP(seed int64) *lp.Model {
	rng := rand.New(rand.NewSource(seed))
	m := lp.NewModel(fmt.Sprintf("val%d", seed))
	binary := seed%3 == 0
	n := 3 + rng.Intn(4)
	for j := 0; j < n; j++ {
		ub := float64(1 + rng.Intn(3))
		typ := lp.Integer
		if binary {
			ub = 1
			typ = lp.Binary
		}
		m.AddVar(lp.Variable{
			Name:  fmt.Sprintf("x%d", j),
			Upper: ub,
			Cost:  math.Round(rng.NormFloat64()*20) / 2,
			Type:  typ,
		})
	}
	x0 := make([]float64, n)
	for j := range x0 {
		x0[j] = float64(rng.Intn(int(m.Var(lp.VarID(j)).Upper) + 1))
	}
	rows := 2 + rng.Intn(4)
	for r := 0; r < rows; r++ {
		var terms []lp.Term
		act := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.35 {
				continue
			}
			c := float64(1 + rng.Intn(5))
			if !binary {
				if rng.Float64() < 0.25 {
					c = -c
				}
				if rng.Float64() < 0.3 {
					c += 0.5
				}
			}
			terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: c})
			act += c * x0[j]
		}
		if len(terms) == 0 {
			continue
		}
		name := fmt.Sprintf("r%d", r)
		switch k := rng.Float64(); {
		case binary || k < 0.6:
			m.AddRow(name, terms, lp.LE, act+float64(rng.Intn(4)))
		case k < 0.9:
			m.AddRow(name, terms, lp.GE, act-float64(rng.Intn(4)))
		default:
			m.AddRow(name, terms, lp.EQ, act)
		}
	}
	return m
}

// enumerateFeasible lists every integer-feasible point of a small
// pure-integer model by walking the bound box.
func enumerateFeasible(m *lp.Model) [][]float64 {
	n := m.NumVars()
	var pts [][]float64
	x := make([]float64, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if m.CheckFeasible(x, tol.Feas) == nil {
				p := make([]float64, n)
				copy(p, x)
				pts = append(pts, p)
			}
			return
		}
		v := m.Var(lp.VarID(j))
		for val := v.Lower; val <= v.Upper+0.5; val++ {
			x[j] = val
			rec(j + 1)
		}
	}
	rec(0)
	return pts
}

// assertCutPreserves fails the test if the cut eliminates any of the
// known integer-feasible points — the defining property of a valid cut.
func assertCutPreserves(t *testing.T, seed int64, c *Cut, pts [][]float64) {
	t.Helper()
	eps := tol.Feas * math.Max(1, math.Abs(c.RHS))
	for i, p := range pts {
		a := c.Activity(p)
		var viol float64
		switch c.Sense {
		case lp.GE:
			viol = c.RHS - a
		case lp.LE:
			viol = a - c.RHS
		}
		if viol > eps {
			t.Errorf("seed %d: cut %s (%s) eliminates feasible point %d %v: activity %v vs rhs %v (violation %.3g)",
				seed, c.Name, c.Kind, i, p, a, c.RHS, viol)
		}
	}
}

// runValiditySeed solves one seeded model's relaxation, separates both
// cut families, and checks every cut against the enumerated feasible
// set plus the rational-arithmetic GMI cross-check. It returns the
// number of cuts separated so callers can assert the suite is not
// vacuous.
func runValiditySeed(t *testing.T, seed int64) (nGomory, nCover int) {
	t.Helper()
	m := randomMILP(seed)
	if err := m.Err(); err != nil {
		t.Fatalf("seed %d: model build: %v", seed, err)
	}
	relaxed := m.Relax()
	sx := simplex.NewSolver(&simplex.Options{})
	sol, err := sx.Solve(relaxed)
	if err != nil {
		t.Fatalf("seed %d: relaxation solve: %v", seed, err)
	}
	if sol.Status != lp.StatusOptimal {
		return 0, 0 // infeasible relaxation (GE/EQ rows can conflict): nothing to separate
	}
	isInt := make([]bool, m.NumVars())
	for j := range isInt {
		isInt[j] = m.Var(lp.VarID(j)).Type != lp.Continuous
	}
	pts := enumerateFeasible(m)
	o := (&Options{Enable: true, MinViolation: 1e-6, MinFrac: 1e-3}).WithDefaults(m.NumVars())

	view := sx.TableauView()
	var gcuts []Cut
	if view != nil {
		gcuts = SeparateGomory(relaxed, isInt, view, &o)
	}
	ccuts := SeparateCovers(relaxed, isInt, sol.X, &o)
	for i := range gcuts {
		c := &gcuts[i]
		if c.violationAt(sol.X) <= 0 {
			t.Errorf("seed %d: %s not violated at the separating point", seed, c.Name)
		}
		assertCutPreserves(t, seed, c, pts)
	}
	for i := range ccuts {
		c := &ccuts[i]
		if c.violationAt(sol.X) <= 0 {
			t.Errorf("seed %d: %s not violated at the separating point", seed, c.Name)
		}
		assertCutPreserves(t, seed, c, pts)
	}
	if view != nil {
		crossCheckRational(t, seed, relaxed, isInt, view, &o)
	}
	return len(gcuts), len(ccuts)
}

func TestCutValidity300(t *testing.T) {
	totalG, totalC, totalPts := 0, 0, 0
	for seed := int64(1); seed <= validitySeeds; seed++ {
		g, c := runValiditySeed(t, seed)
		totalG += g
		totalC += c
		totalPts++
	}
	// The property is vacuous if separation never fires; both families
	// must produce a healthy number of cuts across the suite.
	if totalG < 50 {
		t.Errorf("only %d Gomory cuts separated across %d seeds — suite is near-vacuous", totalG, validitySeeds)
	}
	if totalC < 20 {
		t.Errorf("only %d cover cuts separated across %d seeds — suite is near-vacuous", totalC, validitySeeds)
	}
}

// TestCutValiditySmoke16 is the check.sh subset: the first 16 seeds of
// the same sequence.
func TestCutValiditySmoke16(t *testing.T) {
	for seed := int64(1); seed <= smokeSeeds; seed++ {
		runValiditySeed(t, seed)
	}
}

// ---- exact rational re-derivation of the GMI rows ----

var (
	ratOne      = big.NewRat(1, 1)
	ratCoefZero = new(big.Rat).SetFloat64(gmiCoefZero)
)

// ratFloor returns ⌊r⌋ as a rational. big.Int.Div is floored division
// for the positive denominators big.Rat maintains.
func ratFloor(r *big.Rat) *big.Rat {
	z := new(big.Int).Div(r.Num(), r.Denom())
	return new(big.Rat).SetInt(z)
}

// ratGomoryFromRow mirrors gomoryFromRow step for step in exact
// rational arithmetic over the same float64 inputs (float→rational
// conversion is exact), skipping only the float path's tiny-coefficient
// drop. Branch decisions that gomoryFromRow takes on raw input values
// (status, bounds, |alpha| screens) are reproduced identically, so any
// disagreement beyond accumulated rounding is a derivation bug.
func ratGomoryFromRow(in *gmiRow, o *Options) (map[int]*big.Rat, *big.Rat, bool) {
	nTot := len(in.alpha)
	if f0 := in.beta - math.Floor(in.beta); f0 < o.MinFrac || f0 > 1-o.MinFrac {
		return nil, nil, false
	}
	if math.Abs(in.alpha[in.basic]-1) > 1e-6 {
		return nil, nil, false
	}
	beta := new(big.Rat).SetFloat64(in.beta)
	f0 := new(big.Rat).Sub(beta, ratFloor(beta))
	oneMinusF0 := new(big.Rat).Sub(ratOne, f0)
	gamma := map[int]*big.Rat{}
	addGamma := func(j int, v *big.Rat) {
		if g, ok := gamma[j]; ok {
			g.Add(g, v)
		} else {
			gamma[j] = new(big.Rat).Set(v)
		}
	}
	delta := new(big.Rat).Set(ratOne)
	for j := 0; j < nTot; j++ {
		if j == in.basic || in.status[j] == simplex.ColBasic {
			continue
		}
		a := in.alpha[j]
		lo, hi := in.lower[j], in.upper[j]
		if tol.Same(lo, hi) {
			continue
		}
		if in.status[j] == simplex.ColFree {
			if math.Abs(a) > gmiCoefZero {
				return nil, nil, false
			}
			continue
		}
		if math.Abs(a) <= gmiCoefZero {
			continue
		}
		atUpper := in.status[j] == simplex.ColAtUpper
		d := new(big.Rat).SetFloat64(a)
		bound := lo
		if atUpper {
			d.Neg(d)
			bound = hi
		}
		g := new(big.Rat)
		if in.integer[j] && tol.IsInt(bound, gmiIntEps) {
			f := new(big.Rat).Sub(d, ratFloor(d))
			g.Quo(f, f0)
			alt := new(big.Rat).Sub(ratOne, f)
			alt.Quo(alt, oneMinusF0)
			if alt.Cmp(g) < 0 {
				g.Set(alt)
			}
		} else if d.Sign() > 0 {
			g.Quo(d, f0)
		} else {
			g.Neg(d)
			g.Quo(g, oneMinusF0)
		}
		if g.Cmp(ratCoefZero) <= 0 {
			continue
		}
		b := new(big.Rat).SetFloat64(bound)
		gb := new(big.Rat).Mul(g, b)
		if atUpper {
			addGamma(j, new(big.Rat).Neg(g))
			delta.Sub(delta, gb)
		} else {
			addGamma(j, g)
			delta.Add(delta, gb)
		}
	}
	for j := in.n; j < nTot; j++ {
		gs, ok := gamma[j]
		if !ok {
			continue
		}
		delete(gamma, j)
		if gs.Sign() == 0 {
			continue
		}
		r := j - in.n
		for _, tm := range in.rowTerms[r] {
			c := new(big.Rat).SetFloat64(tm.Coef)
			c.Mul(c, gs)
			addGamma(int(tm.Var), c.Neg(c))
		}
		rb := new(big.Rat).SetFloat64(in.rowRHS[r])
		rb.Mul(rb, gs)
		delta.Sub(delta, rb)
	}
	return gamma, delta, true
}

// crossCheckRational re-derives every separable GMI row exactly and
// compares coefficients and RHS against the float derivation within
// tolerance.
func crossCheckRational(t *testing.T, seed int64, m *lp.Model, isInt []bool, view *simplex.TableauView, o *Options) {
	t.Helper()
	n, nr := view.NumStruct(), view.NumRows()
	in := buildGMIInput(m, isInt, view)
	var alpha []float64
	for r := 0; r < nr; r++ {
		jb := view.BasicCol(r)
		if jb >= n || !isInt[jb] {
			continue
		}
		beta := view.BasicValue(r)
		if f := beta - math.Floor(beta); f < o.MinFrac || f > 1-o.MinFrac {
			continue
		}
		alpha = view.Row(r, alpha)
		in.alpha, in.beta, in.basic = alpha, beta, jb
		fc, okF := gomoryFromRow(in, o)
		gamma, delta, okR := ratGomoryFromRow(in, o)
		if okF && !okR {
			t.Errorf("seed %d row %d: float derivation succeeded, rational rejected", seed, r)
			continue
		}
		if !okF {
			// The float path is strictly more conservative (it alone can
			// reject on an undroppable dust coefficient); nothing to compare.
			continue
		}
		scale := math.Max(1, math.Abs(fc.RHS))
		coef := make(map[int]float64, len(fc.Terms))
		for _, tm := range fc.Terms {
			coef[int(tm.Var)] = tm.Coef
			if a := math.Abs(tm.Coef); a > scale {
				scale = a
			}
		}
		for j := 0; j < n; j++ {
			rcRat, ok := gamma[j]
			rc := 0.0
			if ok {
				rc, _ = rcRat.Float64()
			}
			if d := math.Abs(coef[j] - rc); d > 1e-6*scale {
				t.Errorf("seed %d row %d var %d: float coef %v vs rational %v (Δ %.3g)", seed, r, j, coef[j], rc, d)
			}
		}
		rd, _ := delta.Float64()
		if d := math.Abs(fc.RHS - rd); d > 1e-6*scale {
			t.Errorf("seed %d row %d: float rhs %v vs rational %v (Δ %.3g)", seed, r, fc.RHS, rd, d)
		}
	}
}
