package cuts

import (
	"fmt"
	"math"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/simplex"
	"github.com/etransform/etransform/internal/tol"
)

// Derivation epsilons, aliased locally for brevity: gmiCoefZero treats
// tableau read-back noise as zero, gmiIntEps recognizes integral
// coefficients/bounds/RHS for integer-slack rounding, gmiDropRel drops
// post-substitution dust relative to the largest coefficient (with the
// mandatory RHS weakening — see dropTiny). The values and their
// rationale live in internal/tol.
const (
	gmiCoefZero = tol.CutCoefZero
	gmiIntEps   = tol.CutIntEps
	gmiDropRel  = tol.CutDropRel
)

// gmiRow bundles everything the GMI derivation needs about one tableau
// row, decoupled from the simplex engine so the validity suite can
// feed synthetic rows and re-run the identical derivation in exact
// rational arithmetic.
//
// Columns 0..n-1 are structural, n+r is the slack of row r (appearing
// with coefficient +1, so slack_r = rhs_r − Σ a_rk·x_k; slack bounds
// encode the row sense). alpha is the dense tableau row B⁻¹[A I],
// beta the basic variable's value, basic its column.
type gmiRow struct {
	n        int
	alpha    []float64
	beta     float64
	basic    int
	status   []simplex.ColStatus
	lower    []float64
	upper    []float64
	integer  []bool      // per column: takes integral values (incl. integer slacks)
	rowTerms [][]lp.Term // original constraint rows, for slack elimination
	rowRHS   []float64
}

// gomoryFromRow derives one Gomory mixed-integer cut from a tableau
// row with a fractional basic integer variable, in three steps:
//
//  1. Shift every nonbasic column to a nonnegative local variable
//     t_j = x_j − l_j (at lower, d_j = ā_rj) or t_j = u_j − x_j (at
//     upper, d_j = −ā_rj), so the row reads x_B(r) + Σ d_j·t_j = β
//     with all t_j ≥ 0 and t_j = 0 at the current vertex. Columns
//     fixed by equal bounds contribute t ≡ 0 and are skipped; a free
//     nonbasic with a real coefficient cannot be shifted and rejects
//     the row.
//  2. Apply the GMI formula with f0 = frac(β): integer-valued t_j
//     (integral column shifted by an integral bound) get
//     min(f_j/f0, (1−f_j)/(1−f0)) with f_j = frac(d_j); continuous
//     t_j get d_j/f0 when d_j > 0 and −d_j/(1−f0) when d_j < 0. The
//     cut is Σ g_j·t_j ≥ 1, violated by exactly 1 at the vertex.
//  3. Substitute the shifts back to x-space, then eliminate slack
//     columns via s_r' = rhs_r' − Σ a_r'k·x_k so the final cut ranges
//     over structural variables only: Terms ≥ RHS.
//
// ok=false means the row was rejected (f0 out of range, unshiftable
// free column, numerical sanity failure, or an undroppable dust
// coefficient). The returned cut still needs finish().
func gomoryFromRow(in *gmiRow, o *Options) (Cut, bool) {
	nTot := len(in.alpha)
	f0 := in.beta - math.Floor(in.beta)
	if f0 < o.MinFrac || f0 > 1-o.MinFrac {
		return Cut{}, false
	}
	// Sanity: the basic column of its own row must carry coefficient 1.
	if math.Abs(in.alpha[in.basic]-1) > tol.Feas {
		return Cut{}, false
	}

	// Steps 1+2: per-column GMI coefficient in shifted space, folded
	// immediately into x-space coefficients gamma and RHS delta
	// (Σ g·t ≥ 1 with t = ±(x − bound)).
	gamma := make([]float64, nTot)
	delta := 1.0
	for j := 0; j < nTot; j++ {
		if j == in.basic || in.status[j] == simplex.ColBasic {
			continue
		}
		a := in.alpha[j]
		lo, hi := in.lower[j], in.upper[j]
		if tol.Same(lo, hi) {
			continue // fixed: t ≡ 0 contributes nothing
		}
		if in.status[j] == simplex.ColFree {
			if math.Abs(a) > gmiCoefZero {
				return Cut{}, false // cannot shift a free nonbasic
			}
			continue
		}
		if math.Abs(a) <= gmiCoefZero {
			continue
		}
		atUpper := in.status[j] == simplex.ColAtUpper
		d := a
		bound := lo
		if atUpper {
			d = -a
			bound = hi
		}
		// The shifted variable stays integer-valued only when both the
		// column and the shifting bound are integral.
		var g float64
		if in.integer[j] && tol.IsInt(bound, gmiIntEps) {
			f := d - math.Floor(d)
			g = f / f0
			if alt := (1 - f) / (1 - f0); alt < g {
				g = alt
			}
		} else if d > 0 {
			g = d / f0
		} else {
			g = -d / (1 - f0)
		}
		if g <= gmiCoefZero {
			continue
		}
		// Back to x-space: g·t = g·(x−lo) at lower, g·(hi−x) at upper.
		if atUpper {
			gamma[j] -= g
			delta -= g * hi
		} else {
			gamma[j] += g
			delta += g * lo
		}
	}

	// Step 3: eliminate slack columns through their defining rows.
	for j := in.n; j < nTot; j++ {
		gs := gamma[j]
		if tol.IsZero(gs) {
			continue
		}
		r := j - in.n
		for _, t := range in.rowTerms[r] {
			gamma[t.Var] -= gs * t.Coef
		}
		delta -= gs * in.rowRHS[r]
		gamma[j] = 0
	}

	// Assemble over structurals, dropping dust with the mandatory RHS
	// weakening.
	maxC := 0.0
	for j := 0; j < in.n; j++ {
		if a := math.Abs(gamma[j]); a > maxC {
			maxC = a
		}
	}
	if !tol.Pos(maxC, 0) {
		return Cut{}, false
	}
	terms := make([]lp.Term, 0, in.n/8+4)
	for j := 0; j < in.n; j++ {
		g := gamma[j]
		if tol.IsZero(g) {
			continue
		}
		if math.Abs(g) < gmiDropRel*maxC {
			nd, ok := dropTiny(delta, g, in.lower[j], in.upper[j])
			if !ok {
				return Cut{}, false
			}
			delta = nd
			continue
		}
		terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: g})
	}
	return Cut{Terms: terms, Sense: lp.GE, RHS: delta, Kind: "gomory"}, true
}

// dropTiny removes a coefficient g on a variable bounded in [lo, hi]
// from a ≥-cut by weakening the RHS by the largest value g·x can take:
// Σ_rest ≥ δ − g·x ≥ δ − max(g·lo, g·hi) holds for every feasible
// point, so the weakened cut stays valid. ok=false when the needed
// bound is infinite and the coefficient must be kept.
func dropTiny(delta, g, lo, hi float64) (float64, bool) {
	worst := math.Max(g*lo, g*hi)
	if math.IsInf(worst, 0) || math.IsNaN(worst) {
		return delta, false
	}
	return delta - worst, true
}

// integerSlack reports whether the slack of row is integer-valued at
// every integer-feasible point: all coefficients integral, RHS
// integral, and every variable in the row integral. Rounding such a
// slack into the integer part of the GMI formula strengthens the cut.
func integerSlack(terms []lp.Term, rhs float64, isInt []bool) bool {
	if !tol.IsInt(rhs, gmiIntEps) {
		return false
	}
	for _, t := range terms {
		if !isInt[t.Var] || !tol.IsInt(t.Coef, gmiIntEps) {
			return false
		}
	}
	return true
}

// buildGMIInput assembles the row-independent parts of a gmiRow from
// the model and tableau view: column statuses, bounds, per-column
// integrality (including integer-slack recognition) and the original
// rows for slack elimination. The caller fills alpha/beta/basic per
// row. Factored out so the validity suite can re-derive the exact
// same inputs for its rational-arithmetic cross-check.
func buildGMIInput(m *lp.Model, isInt []bool, view *simplex.TableauView) *gmiRow {
	n, nr := view.NumStruct(), view.NumRows()
	nTot := n + nr
	in := &gmiRow{
		n:        n,
		status:   make([]simplex.ColStatus, nTot),
		lower:    make([]float64, nTot),
		upper:    make([]float64, nTot),
		integer:  make([]bool, nTot),
		rowTerms: make([][]lp.Term, nr),
		rowRHS:   make([]float64, nr),
	}
	copy(in.integer, isInt)
	for j := 0; j < nTot; j++ {
		in.status[j] = view.Status(j)
		in.lower[j], in.upper[j] = view.Bounds(j)
	}
	for r := 0; r < nr; r++ {
		row := m.Row(lp.RowID(r))
		in.rowTerms[r] = row.Terms
		in.rowRHS[r] = row.RHS
		in.integer[n+r] = integerSlack(row.Terms, row.RHS, isInt)
	}
	return in
}

// SeparateGomory derives GMI cuts from the optimal tableau of the
// model's LP relaxation. m must be the model the tableau was solved on
// (rows are read for slack elimination; it is typically a relaxation,
// so integrality is supplied separately via isInt, indexed by
// structural variable). Cuts are separated from every row whose basic
// variable is an integer structural with fractional value, then
// normalized and screened by the Options filters. The returned cuts
// are valid for every integer-feasible point of the model — a
// property enforced by this package's validity suite and re-checked
// at run time by the caller.
func SeparateGomory(m *lp.Model, isInt []bool, view *simplex.TableauView, o *Options) []Cut {
	if view == nil || m == nil {
		return nil
	}
	n, nr := view.NumStruct(), view.NumRows()
	if m.NumVars() != n || m.NumRows() != nr || len(isInt) != n {
		return nil
	}
	in := buildGMIInput(m, isInt, view)
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = view.Value(j)
	}

	var out []Cut
	var alpha []float64
	for r := 0; r < nr; r++ {
		jb := view.BasicCol(r)
		if jb >= n || !isInt[jb] {
			continue
		}
		beta := view.BasicValue(r)
		if f := beta - math.Floor(beta); f < o.MinFrac || f > 1-o.MinFrac {
			continue
		}
		alpha = view.Row(r, alpha)
		in.alpha, in.beta, in.basic = alpha, beta, jb
		c, ok := gomoryFromRow(in, o)
		if !ok {
			continue
		}
		c.Name = fmt.Sprintf("gmi_r%d", r)
		if c.finish(x, o) {
			out = append(out, c)
		}
	}
	return out
}
