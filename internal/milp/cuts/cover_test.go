package cuts

import (
	"fmt"
	"math"
	"testing"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/simplex"
)

// binModel builds a model of n binary variables with the given rows.
func binModel(t *testing.T, n int, rows []lp.Row) *lp.Model {
	t.Helper()
	m := lp.NewModel("cover")
	for j := 0; j < n; j++ {
		m.AddVar(lp.Variable{Name: fmt.Sprintf("x%d", j), Upper: 1, Cost: -1, Type: lp.Binary})
	}
	for _, r := range rows {
		m.AddRow(r.Name, r.Terms, r.Sense, r.RHS)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("model build: %v", err)
	}
	return m
}

// TestCoverDegenerateRows is the regression table for the degenerate
// knapsack shapes the separator must reject rather than loop over —
// most importantly the rhs = 0 rows a zero-capacity DC produces, whose
// "cover" would be the empty set and whose cut (Σ∅ ≤ −1) eliminates
// every point.
func TestCoverDegenerateRows(t *testing.T) {
	terms2 := []lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 2}}
	cases := []struct {
		name     string
		rows     []lp.Row
		x        []float64
		wantCuts int
	}{
		{
			name:     "zero capacity",
			rows:     []lp.Row{{Name: "cap", Terms: terms2, Sense: lp.LE, RHS: 0}},
			x:        []float64{0.5, 0.5},
			wantCuts: 0,
		},
		{
			name:     "negative capacity",
			rows:     []lp.Row{{Name: "cap", Terms: terms2, Sense: lp.LE, RHS: -1}},
			x:        []float64{0.5, 0.5},
			wantCuts: 0,
		},
		{
			name:     "no cover exists",
			rows:     []lp.Row{{Name: "cap", Terms: terms2, Sense: lp.LE, RHS: 5}},
			x:        []float64{1, 1},
			wantCuts: 0,
		},
		{
			name:     "ge row is not a knapsack",
			rows:     []lp.Row{{Name: "cap", Terms: terms2, Sense: lp.GE, RHS: 1}},
			x:        []float64{0.9, 0.9},
			wantCuts: 0,
		},
		{
			name: "negative coefficient row is not a knapsack",
			rows: []lp.Row{{Name: "cap",
				Terms: []lp.Term{{Var: 0, Coef: -1}, {Var: 1, Coef: 2}},
				Sense: lp.LE, RHS: 1}},
			x:        []float64{0.9, 0.9},
			wantCuts: 0,
		},
		{
			name: "violated knapsack separates",
			rows: []lp.Row{{Name: "cap",
				Terms: []lp.Term{{Var: 0, Coef: 2}, {Var: 1, Coef: 2}},
				Sense: lp.LE, RHS: 3}},
			x:        []float64{0.75, 0.75},
			wantCuts: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := binModel(t, 2, tc.rows)
			isInt := []bool{true, true}
			o := (&Options{Enable: true}).WithDefaults(m.NumVars())
			cuts := SeparateCovers(m.Relax(), isInt, tc.x, &o)
			if len(cuts) != tc.wantCuts {
				t.Fatalf("got %d cuts, want %d: %+v", len(cuts), tc.wantCuts, cuts)
			}
			pts := enumerateFeasible(m)
			for i := range cuts {
				assertCutPreserves(t, 0, &cuts[i], pts)
			}
		})
	}
}

// TestCoverNonBinaryVarsRejected: a row over an integer variable with
// upper bound above 1 (aggregate-mode count shape) must not be treated
// as a 0/1 knapsack.
func TestCoverNonBinaryVarsRejected(t *testing.T) {
	m := lp.NewModel("cover")
	m.AddVar(lp.Variable{Name: "n0", Upper: 3, Cost: -1, Type: lp.Integer})
	m.AddVar(lp.Variable{Name: "x1", Upper: 1, Cost: -1, Type: lp.Binary})
	m.AddRow("cap", []lp.Term{{Var: 0, Coef: 2}, {Var: 1, Coef: 2}}, lp.LE, 3)
	if err := m.Err(); err != nil {
		t.Fatalf("model build: %v", err)
	}
	o := (&Options{Enable: true}).WithDefaults(m.NumVars())
	cuts := SeparateCovers(m.Relax(), []bool{true, true}, []float64{0.75, 0.75}, &o)
	if len(cuts) != 0 {
		t.Fatalf("got %d cuts from a non-binary row, want 0: %+v", len(cuts), cuts)
	}
}

// TestSeparateCoverRowExtension: the extension E(C) picks up items at
// least as heavy as the heaviest cover member.
func TestSeparateCoverRowExtension(t *testing.T) {
	items := []coverItem{
		{v: 0, a: 3, x: 0.9},
		{v: 1, a: 3, x: 0.9},
		{v: 2, a: 5, x: 0.0}, // heavier than any cover member: must extend
	}
	cover, extra, ok := separateCoverRow(items, 4)
	if !ok {
		t.Fatal("expected a cover")
	}
	if len(cover) != 2 || cover[0].v != 0 || cover[1].v != 1 {
		t.Fatalf("cover = %+v, want vars 0,1", cover)
	}
	if len(extra) != 1 || extra[0].v != 2 {
		t.Fatalf("extension = %+v, want var 2", extra)
	}
}

// TestGomoryAndCoverCloseKnapsackGap: on min −x0−x1 s.t. 2x0+2x1 ≤ 3
// (binaries) the LP optimum is x = (0.75, 0.75) with bound −1.5 while
// the MILP optimum is −1. Separation must produce cuts whose addition
// moves the LP bound to −1 (the cover x0+x1 ≤ 1 alone achieves it).
func TestGomoryAndCoverCloseKnapsackGap(t *testing.T) {
	m := binModel(t, 2, []lp.Row{{
		Name:  "cap",
		Terms: []lp.Term{{Var: 0, Coef: 2}, {Var: 1, Coef: 2}},
		Sense: lp.LE, RHS: 3,
	}})
	relaxed := m.Relax()
	sx := simplex.NewSolver(&simplex.Options{})
	sol, err := sx.Solve(relaxed)
	if err != nil || sol.Status != lp.StatusOptimal {
		t.Fatalf("relaxation: %v status %v", err, sol.Status)
	}
	if math.Abs(sol.Objective - -1.5) > 1e-9 {
		t.Fatalf("unexpected LP bound %v, want -1.5", sol.Objective)
	}

	isInt := []bool{true, true}
	o := (&Options{Enable: true}).WithDefaults(m.NumVars())
	var all []Cut
	if view := sx.TableauView(); view != nil {
		all = append(all, SeparateGomory(relaxed, isInt, view, &o)...)
	}
	all = append(all, SeparateCovers(relaxed, isInt, sol.X, &o)...)
	if len(all) == 0 {
		t.Fatal("no cuts separated at a fractional vertex")
	}
	pts := enumerateFeasible(m)
	for i := range all {
		assertCutPreserves(t, 0, &all[i], pts)
	}

	strengthened := relaxed.Clone()
	for _, c := range all {
		strengthened.AddRow(c.Name, c.Terms, c.Sense, c.RHS)
	}
	if err := strengthened.Err(); err != nil {
		t.Fatalf("adding cuts: %v", err)
	}
	sol2, err := simplex.NewSolver(&simplex.Options{}).Solve(strengthened)
	if err != nil || sol2.Status != lp.StatusOptimal {
		t.Fatalf("strengthened LP: %v status %v", err, sol2.Status)
	}
	if sol2.Objective < -1-1e-6 {
		t.Fatalf("cut bound %v did not reach the MILP optimum -1", sol2.Objective)
	}
	if sol2.Objective > -1+1e-6 {
		t.Fatalf("cut bound %v overshot the MILP optimum -1 (cuts too strong?)", sol2.Objective)
	}
}
