package milp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/resilience/faultinject"
)

// TestBudgetNodesStopsGracefully: hitting the node budget surrenders the
// search with StatusNodeLimit and Limit naming the dimension.
func TestBudgetNodesStopsGracefully(t *testing.T) {
	m := stressModels()["knapsack30"]()
	sol, err := Solve(m, &Options{Workers: 1, DisableDiving: true, Budget: Budget{Nodes: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusNodeLimit {
		t.Fatalf("status = %v, want node-limit", sol.Status)
	}
	if sol.Limit != lp.LimitNodes {
		t.Errorf("Limit = %q, want %q", sol.Limit, lp.LimitNodes)
	}
}

// TestBudgetMemoryStopsGracefully: an absurdly small open-node memory
// budget trips on the first claim after the root branches.
func TestBudgetMemoryStopsGracefully(t *testing.T) {
	m := stressModels()["knapsack30"]()
	sol, err := Solve(m, &Options{Workers: 1, DisableDiving: true, Budget: Budget{MemoryBytes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusNodeLimit {
		t.Fatalf("status = %v, want node-limit", sol.Status)
	}
	if sol.Limit != lp.LimitMemory {
		t.Errorf("Limit = %q, want %q", sol.Limit, lp.LimitMemory)
	}
}

// TestOptionLimitBeatsLaterCtxDeadline: when the option wall limit is at
// or before the context deadline, expiry is always the graceful
// StatusNodeLimit with no error — never StatusCanceled — regardless of
// how late the poll happens.
func TestOptionLimitBeatsLaterCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	m := stressModels()["knapsack30"]()
	sol, err := SolveContext(ctx, m, &Options{Workers: 1, DisableDiving: true, TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusNodeLimit {
		t.Fatalf("status = %v, want node-limit from option time limit", sol.Status)
	}
	if sol.Limit != lp.LimitWallClock {
		t.Errorf("Limit = %q, want %q", sol.Limit, lp.LimitWallClock)
	}
}

// TestEarlierCtxDeadlineWinsAsCanceled: a context deadline strictly
// earlier than the option limit always yields StatusCanceled with
// context.DeadlineExceeded — even when, as here, the coordinator's clock
// poll is what notices the expiry.
func TestEarlierCtxDeadlineWinsAsCanceled(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	m := stressModels()["knapsack30"]()
	sol, err := SolveContext(ctx, m, &Options{Workers: 1, DisableDiving: true, TimeLimit: time.Hour})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if sol == nil || sol.Status != lp.StatusCanceled {
		t.Fatalf("sol = %+v, want canceled partial result", sol)
	}
}

// TestInjectedDeadlineWithInFlightNodes is the regression test for the
// deadline firing while workers hold in-flight nodes: the injected expiry
// trips one worker's claim while its peers are mid-LP, and the solve must
// still assemble a graceful node-limit result with the wall-clock label.
func TestInjectedDeadlineWithInFlightNodes(t *testing.T) {
	for _, workers := range []int{2, 8} {
		inj := faultinject.New(1, faultinject.Fault{Kind: faultinject.KindDeadline, After: 10, Count: -1})
		m := stressModels()["knapsack30"]()
		sol, err := Solve(m, &Options{Workers: workers, Inject: inj})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sol.Status != lp.StatusNodeLimit && sol.Status != lp.StatusOptimal {
			t.Fatalf("workers=%d: status = %v, want graceful stop", workers, sol.Status)
		}
		if sol.Status == lp.StatusNodeLimit && sol.Limit != lp.LimitWallClock {
			t.Errorf("workers=%d: Limit = %q, want %q", workers, sol.Limit, lp.LimitWallClock)
		}
		if !inj.Fired(faultinject.KindDeadline) {
			t.Errorf("workers=%d: deadline fault never fired", workers)
		}
	}
}

// TestInjectedWorkerPanic is the race stress test for a worker dying
// mid-search with a claimed node in flight: the solve must return an
// error naming the panic — never deadlock the remaining workers.
func TestInjectedWorkerPanic(t *testing.T) {
	for _, workers := range []int{2, 8} {
		inj := faultinject.New(1, faultinject.Fault{Kind: faultinject.KindPanic, After: 3})
		m := stressModels()["knapsack30"]()
		done := make(chan error, 1)
		go func() {
			_, err := Solve(m, &Options{Workers: workers, Inject: inj})
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("workers=%d: err = %v, want worker panic error", workers, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: solve deadlocked after injected worker panic", workers)
		}
		if !inj.Fired(faultinject.KindPanic) {
			t.Errorf("workers=%d: panic fault never fired", workers)
		}
	}
}

// TestInjectedCorruptionSurfacesAsError: NaN poisoning from a corrupted
// LP must become a solver error (which the planner's fallback chain
// handles), not a silent bogus "infeasible".
func TestInjectedCorruptionSurfacesAsError(t *testing.T) {
	inj := faultinject.New(1, faultinject.Fault{Kind: faultinject.KindCorrupt})
	m := stressModels()["knapsack30"]()
	_, err := Solve(m, &Options{Workers: 1, Inject: inj})
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("err = %v, want non-finite LP error", err)
	}
}

// TestInjectedStallMapsToIterationLimit: a stalled LP anywhere in the
// tree surrenders with the iterations label rather than erroring out.
func TestInjectedStallMapsToIterationLimit(t *testing.T) {
	clean, err := Solve(stressModels()["knapsack30"](), &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1, faultinject.Fault{Kind: faultinject.KindStall, After: clean.Iterations / 2})
	sol, err := Solve(stressModels()["knapsack30"](), &Options{Workers: 1, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusIterLimit && sol.Status != lp.StatusNodeLimit {
		t.Fatalf("status = %v, want a limit status", sol.Status)
	}
	if sol.Limit != lp.LimitIterations {
		t.Errorf("Limit = %q, want %q", sol.Limit, lp.LimitIterations)
	}
}

// TestPerturbSeedIsDeterministic: the same seed must reproduce the exact
// same trajectory, and any seed must reach the same certified optimum.
func TestPerturbSeedIsDeterministic(t *testing.T) {
	build := stressModels()["knapsack30"]
	base, err := Solve(build(), &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var prev *lp.Solution
	for run := 0; run < 2; run++ {
		sol, err := Solve(build(), &Options{Workers: 1, PerturbSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.StatusOptimal || sol.Objective != base.Objective {
			t.Fatalf("perturbed solve: status %v obj %v, want optimal %v", sol.Status, sol.Objective, base.Objective)
		}
		if prev != nil && (sol.Nodes != prev.Nodes || sol.Iterations != prev.Iterations) {
			t.Errorf("same seed diverged: (%d nodes, %d iters) vs (%d, %d)",
				sol.Nodes, sol.Iterations, prev.Nodes, prev.Iterations)
		}
		prev = sol
	}
}
