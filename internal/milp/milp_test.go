package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/lp"
)

func solveOrFatal(t *testing.T, m *lp.Model, opts *Options) *lp.Solution {
	t.Helper()
	sol, err := Solve(m, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6, binary.
	// → min with negated costs. Best: a+c = 17 (weight 5); b+c = 20 (weight 6). Optimal 20.
	m := lp.NewModel("knap")
	a := m.AddBinary("a", -10)
	b := m.AddBinary("b", -13)
	c := m.AddBinary("c", -7)
	m.AddRow("w", []lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}}, lp.LE, 6)
	sol := solveOrFatal(t, m, nil)
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-20)) > 1e-6 {
		t.Errorf("objective = %v, want -20", sol.Objective)
	}
	if sol.Value(b) != 1 || sol.Value(c) != 1 || sol.Value(a) != 0 {
		t.Errorf("point = (%v,%v,%v), want (0,1,1)", sol.Value(a), sol.Value(b), sol.Value(c))
	}
}

func TestIntegerVariable(t *testing.T) {
	// min -x  s.t. 2x <= 7, x integer in [0, 10] → x = 3.
	m := lp.NewModel("int")
	x := m.AddVar(lp.Variable{Name: "x", Lower: 0, Upper: 10, Cost: -1, Type: lp.Integer})
	m.AddRow("r", []lp.Term{{Var: x, Coef: 2}}, lp.LE, 7)
	sol := solveOrFatal(t, m, nil)
	if sol.Status != lp.StatusOptimal || sol.Value(x) != 3 {
		t.Fatalf("status %v x=%v, want optimal x=3", sol.Status, sol.Value(x))
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -y - 0.5x  s.t. y <= 2.5 + 0 (y integer), x <= 3.7 (continuous),
	// x + y <= 5. Optimal: y=2, x=3 → -3.5.
	m := lp.NewModel("mixed")
	x := m.AddContinuous("x", 0, 3.7, -0.5)
	y := m.AddVar(lp.Variable{Name: "y", Lower: 0, Upper: 2.5, Cost: -1, Type: lp.Integer})
	m.AddRow("sum", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 5)
	sol := solveOrFatal(t, m, nil)
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Value(y) != 2 || math.Abs(sol.Value(x)-3) > 1e-6 {
		t.Errorf("point = (%v, %v), want (3, 2)", sol.Value(x), sol.Value(y))
	}
}

func TestInfeasibleMILP(t *testing.T) {
	m := lp.NewModel("infeas")
	a := m.AddBinary("a", 1)
	b := m.AddBinary("b", 1)
	m.AddRow("r", []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, lp.GE, 3)
	sol := solveOrFatal(t, m, nil)
	if sol.Status != lp.StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

// TestIntegralityGapInstance: LP relaxation is fractional; MILP must branch.
func TestIntegralityGapInstance(t *testing.T) {
	// min -(5a + 4b + 3c)  s.t. 2a + 3b + c <= 5, 4a + b + 2c <= 11,
	// 3a + 4b + 2c <= 8, binaries. LP relaxation is fractional.
	m := lp.NewModel("gap")
	a := m.AddBinary("a", -5)
	b := m.AddBinary("b", -4)
	c := m.AddBinary("c", -3)
	m.AddRow("r1", []lp.Term{{Var: a, Coef: 2}, {Var: b, Coef: 3}, {Var: c, Coef: 1}}, lp.LE, 5)
	m.AddRow("r2", []lp.Term{{Var: a, Coef: 4}, {Var: b, Coef: 1}, {Var: c, Coef: 2}}, lp.LE, 11)
	m.AddRow("r3", []lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}}, lp.LE, 8)
	sol := solveOrFatal(t, m, nil)
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// All binaries: a+c feasible (3,6,5): obj -8; a+b: (5,5,7) obj -9; a+b+c: (6,7,9) > r1. So -9.
	if math.Abs(sol.Objective-(-9)) > 1e-6 {
		t.Errorf("objective = %v, want -9", sol.Objective)
	}
}

// bruteForceMILP enumerates all integer assignments (integer vars must be
// boundedly boxed) and optimizes continuous remainder by... this oracle
// only supports pure-integer models for simplicity.
func bruteForceMILP(m *lp.Model) (float64, bool) {
	n := m.NumVars()
	lo := make([]int, n)
	hi := make([]int, n)
	for j := 0; j < n; j++ {
		v := m.Var(lp.VarID(j))
		lo[j] = int(math.Ceil(v.Lower))
		hi[j] = int(math.Floor(v.Upper))
	}
	x := make([]float64, n)
	best := math.Inf(1)
	found := false
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if m.CheckFeasible(x, 1e-9) == nil {
				if obj := m.Objective(x); obj < best {
					best = obj
					found = true
				}
			}
			return
		}
		for v := lo[j]; v <= hi[j]; v++ {
			x[j] = float64(v)
			rec(j + 1)
		}
	}
	rec(0)
	return best, found
}

// TestAgainstBruteForce cross-checks B&B against exhaustive enumeration
// on random pure-integer programs.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials := 300
	if testing.Short() {
		trials = 50
	}
	for trial := 0; trial < trials; trial++ {
		m := lp.NewModel("rnd")
		n := 2 + rng.Intn(4)
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				m.AddBinary("", float64(rng.Intn(21)-10))
			} else {
				m.AddVar(lp.Variable{
					Lower: 0, Upper: float64(1 + rng.Intn(4)),
					Cost: float64(rng.Intn(21) - 10), Type: lp.Integer,
				})
			}
		}
		rows := 1 + rng.Intn(3)
		for r := 0; r < rows; r++ {
			var terms []lp.Term
			for j := 0; j < n; j++ {
				c := float64(rng.Intn(9) - 4)
				if c != 0 {
					terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: c})
				}
			}
			sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
			m.AddRow("", terms, sense, float64(rng.Intn(13)-4))
		}
		sol, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, feasible := bruteForceMILP(m)
		if !feasible {
			if sol.Status != lp.StatusInfeasible {
				t.Fatalf("trial %d: oracle infeasible, solver %v obj %v", trial, sol.Status, sol.Objective)
			}
			continue
		}
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: oracle optimum %v, solver status %v", trial, want, sol.Status)
		}
		if math.Abs(sol.Objective-want) > 1e-5*math.Max(1, math.Abs(want)) {
			t.Fatalf("trial %d: solver %v, oracle %v", trial, sol.Objective, want)
		}
		if err := m.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Fatalf("trial %d: returned point infeasible: %v", trial, err)
		}
	}
}

// TestAssignmentMILP solves a consolidation-shaped assignment with tight
// capacities where the LP relaxation splits groups across DCs.
func TestAssignmentMILP(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const groups, dcs = 12, 3
	m := lp.NewModel("assign")
	sizes := make([]float64, groups)
	vars := make([][]lp.VarID, groups)
	for i := range vars {
		sizes[i] = float64(1 + rng.Intn(9))
		vars[i] = make([]lp.VarID, dcs)
		for j := 0; j < dcs; j++ {
			vars[i][j] = m.AddBinary("", float64(1+rng.Intn(50))*sizes[i])
		}
		terms := make([]lp.Term, dcs)
		for j := 0; j < dcs; j++ {
			terms[j] = lp.Term{Var: vars[i][j], Coef: 1}
		}
		m.AddRow("", terms, lp.EQ, 1)
	}
	total := 0.0
	for _, s := range sizes {
		total += s
	}
	for j := 0; j < dcs; j++ {
		terms := make([]lp.Term, groups)
		for i := 0; i < groups; i++ {
			terms[i] = lp.Term{Var: vars[i][j], Coef: sizes[i]}
		}
		// Tight capacity: about 40% of total per DC.
		m.AddRow("", terms, lp.LE, math.Ceil(total*0.4))
	}
	sol := solveOrFatal(t, m, nil)
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v (gap %v, nodes %d)", sol.Status, sol.Gap, sol.Nodes)
	}
	// Every group placed exactly once.
	for i := range vars {
		placed := 0.0
		for j := range vars[i] {
			placed += sol.Value(vars[i][j])
		}
		if placed != 1 {
			t.Errorf("group %d placement sum = %v", i, placed)
		}
	}
}

func TestNodeLimitReturnsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := lp.NewModel("lim")
	var terms []lp.Term
	for j := 0; j < 30; j++ {
		v := m.AddBinary("", -float64(1+rng.Intn(100)))
		terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(10))})
	}
	m.AddRow("w", terms, lp.LE, 40)
	sol, err := Solve(m, &Options{MaxNodes: 2, GapTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == lp.StatusOptimal {
		// With diving it may legitimately prove optimality within 2 nodes;
		// accept but require zero gap.
		if sol.Gap > 1e-9 {
			t.Fatalf("optimal claimed with gap %v", sol.Gap)
		}
		return
	}
	if sol.Status != lp.StatusNodeLimit {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.X != nil {
		if err := m.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Errorf("incumbent infeasible: %v", err)
		}
		if sol.Gap < 0 {
			t.Errorf("negative gap %v", sol.Gap)
		}
	}
}

func TestTimeLimit(t *testing.T) {
	// A time limit in the past forces immediate halt after the root.
	m := lp.NewModel("tl")
	rng := rand.New(rand.NewSource(11))
	var terms []lp.Term
	for j := 0; j < 25; j++ {
		v := m.AddBinary("", -float64(1+rng.Intn(100)))
		terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(7))})
	}
	m.AddRow("w", terms, lp.LE, 31)
	sol, err := Solve(m, &Options{TimeLimit: time.Nanosecond, GapTol: 1e-12, DisableDiving: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == lp.StatusOptimal && sol.Gap > 1e-12 {
		t.Fatalf("optimal claimed with gap %v under expired time limit", sol.Gap)
	}
}

func TestPureLPPassesThrough(t *testing.T) {
	m := lp.NewModel("lp")
	x := m.AddContinuous("x", 0, 4, -1)
	m.AddRow("r", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 2.5)
	sol := solveOrFatal(t, m, nil)
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-(-2.5)) > 1e-9 {
		t.Fatalf("pure LP: %v %v", sol.Status, sol.Objective)
	}
	if sol.Nodes != 1 {
		t.Errorf("nodes = %d, want 1", sol.Nodes)
	}
}

func TestDeterministic(t *testing.T) {
	build := func() *lp.Model {
		rng := rand.New(rand.NewSource(77))
		m := lp.NewModel("det")
		var terms []lp.Term
		for j := 0; j < 20; j++ {
			v := m.AddBinary("", -float64(1+rng.Intn(40)))
			terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(6))})
		}
		m.AddRow("w", terms, lp.LE, 23)
		return m
	}
	// Workers=1 is the deterministic mode: node and iteration counts are
	// only reproducible for a sequential search.
	a, err := Solve(build(), &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(build(), &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Nodes != b.Nodes || a.Iterations != b.Iterations {
		t.Errorf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)",
			a.Objective, a.Nodes, a.Iterations, b.Objective, b.Nodes, b.Iterations)
	}
	for j := range a.X {
		if a.X[j] != b.X[j] {
			t.Errorf("var %d differs: %v vs %v", j, a.X[j], b.X[j])
		}
	}
}
