// Package milp implements a branch & bound mixed-integer linear-program
// solver over the bounded-variable simplex in package simplex. Together
// they form the repository's optimization engine — the substitute for the
// CPLEX solver the paper invokes (§V).
//
// The search is best-first on the LP relaxation bound with most-fractional
// branching and a diving primal heuristic that usually produces a strong
// incumbent at the root. Termination is exact: when the node queue
// empties, the incumbent is optimal; otherwise the reported Gap bounds the
// distance to the optimum.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/simplex"
	"github.com/etransform/etransform/internal/tol"
)

// Options control a branch & bound solve. The zero value applies
// defaults suitable for the planner's models.
type Options struct {
	// GapTol is the relative optimality gap at which the search stops.
	// Default tol.Gap (effectively exact).
	GapTol float64
	// MaxNodes caps explored nodes. Default 200000.
	MaxNodes int
	// TimeLimit caps wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// DisableDiving turns off the diving primal heuristic.
	DisableDiving bool
	// WarmStarts are candidate feasible points (len = model variables)
	// supplied by the caller; each feasible one seeds the incumbent
	// before search begins. Infeasible candidates are ignored.
	WarmStarts [][]float64
	// MaxDiveDepth bounds the diving heuristic's fixing passes.
	// Default 200.
	MaxDiveDepth int
	// DisablePresolve turns off the bound-tightening presolve pass.
	DisablePresolve bool
	// Simplex carries options for the LP subproblems.
	Simplex simplex.Options
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.GapTol <= 0 {
		out.GapTol = tol.Gap
	}
	if out.MaxNodes <= 0 {
		out.MaxNodes = 200000
	}
	if out.MaxDiveDepth <= 0 {
		out.MaxDiveDepth = 200
	}
	return out
}

// boundChange is one tightened bound along a branch.
type boundChange struct {
	v      lp.VarID
	lo, hi float64
}

// node is one open branch & bound node.
type node struct {
	bound   float64 // parent LP objective: lower bound for the subtree
	changes []boundChange
	depth   int
	seq     int // FIFO tie-break for determinism
}

type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if !tol.Same(q[i].bound, q[j].bound) {
		return q[i].bound < q[j].bound
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)   { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Solve runs branch & bound on the model. Variables marked Binary or
// Integer are enforced integral; continuous variables are free to take
// fractional values. The returned solution's Gap field reports the final
// relative optimality gap (0 when proven optimal).
func Solve(model *lp.Model, opts *Options) (*lp.Solution, error) {
	if err := model.Err(); err != nil {
		return nil, fmt.Errorf("milp: invalid model: %w", err)
	}
	o := opts.withDefaults()
	s := &solver{opts: o, model: model.Clone()}
	for j := 0; j < model.NumVars(); j++ {
		if model.Var(lp.VarID(j)).Type != lp.Continuous {
			s.intVars = append(s.intVars, lp.VarID(j))
		}
	}
	// The working model is continuous; integrality is enforced by
	// branching. Presolve tightens its bounds (and the original's, so
	// incumbent verification agrees) before the search begins.
	if !o.DisablePresolve {
		if _, infeasible := presolve(s.model, 10); infeasible {
			return &lp.Solution{Status: lp.StatusInfeasible}, nil
		}
	}
	s.work = s.model.Relax()
	if o.TimeLimit > 0 {
		s.deadline = time.Now().Add(o.TimeLimit)
	}
	return s.run()
}

type solver struct {
	opts     Options
	model    *lp.Model // original (with integrality markers)
	work     *lp.Model // relaxed working copy whose bounds we mutate
	intVars  []lp.VarID
	deadline time.Time

	incumbent    []float64
	incumbentObj float64
	haveInc      bool
	iterations   int
	nodes        int
}

func (s *solver) expired() bool {
	return !s.deadline.IsZero() && time.Now().After(s.deadline)
}

// solveWith applies the node's bound changes, solves the LP relaxation,
// and restores the working model.
func (s *solver) solveWith(changes []boundChange) (*lp.Solution, error) {
	saved := make([]boundChange, len(changes))
	for i, c := range changes {
		v := s.work.Var(c.v)
		saved[i] = boundChange{v: c.v, lo: v.Lower, hi: v.Upper}
		if c.lo > v.Upper || c.hi < v.Lower || c.lo > c.hi {
			// The combined bounds are empty: infeasible without solving.
			for k := i - 1; k >= 0; k-- {
				s.work.SetBounds(saved[k].v, saved[k].lo, saved[k].hi)
			}
			return &lp.Solution{Status: lp.StatusInfeasible}, nil
		}
		s.work.SetBounds(c.v, math.Max(c.lo, v.Lower), math.Min(c.hi, v.Upper))
	}
	sol, err := simplex.Solve(s.work, &s.opts.Simplex)
	for k := len(saved) - 1; k >= 0; k-- {
		s.work.SetBounds(saved[k].v, saved[k].lo, saved[k].hi)
	}
	if err != nil {
		return nil, err
	}
	s.iterations += sol.Iterations
	return sol, nil
}

// mostFractional returns the integer variable whose LP value is farthest
// from integral, or -1 if the point is integral on all integer variables.
func (s *solver) mostFractional(x []float64) (lp.VarID, float64) {
	best := lp.VarID(-1)
	bestDist := lp.IntTol
	bestVal := 0.0
	for _, v := range s.intVars {
		val := x[v]
		dist := math.Abs(val - math.Round(val))
		// Most fractional: maximize distance from nearest integer.
		if dist > bestDist+tol.Tie {
			best, bestDist, bestVal = v, dist, val
		}
	}
	return best, bestVal
}

// accept records a new incumbent if it beats the current one.
func (s *solver) accept(x []float64, obj float64) {
	if s.haveInc && obj >= s.incumbentObj-tol.Tie {
		return
	}
	// Snap integer variables exactly and verify against the original
	// model before trusting the point.
	snapped := make([]float64, len(x))
	copy(snapped, x)
	for _, v := range s.intVars {
		snapped[v] = math.Round(snapped[v])
	}
	if err := s.model.CheckFeasible(snapped, tol.Accept); err != nil {
		return
	}
	s.incumbent = snapped
	s.incumbentObj = s.model.Objective(snapped)
	s.haveInc = true
}

// dive is the primal heuristic: repeatedly fix every near-integral
// integer variable and round the single most fractional one, re-solving
// until the LP is integral or infeasible.
func (s *solver) dive(base []boundChange, sol *lp.Solution) error {
	changes := make([]boundChange, len(base))
	copy(changes, base)
	cur := sol
	for depth := 0; depth < s.opts.MaxDiveDepth; depth++ {
		if cur.Status != lp.StatusOptimal || s.expired() {
			return nil
		}
		v, _ := s.mostFractional(cur.X)
		if v < 0 {
			s.accept(cur.X, cur.Objective)
			return nil
		}
		// Fix integer vars that are (nearly) settled at a nonzero value —
		// within tolerance of a positive integer, or within 0.3 of one
		// (strong fractional lean) — plus the most fractional variable at
		// its nearest integer. Near-zero vars stay free: locking them out
		// on the first pass cripples symmetric assignment models where
		// the LP leaves most columns at 0. Fixing the strong leans too
		// makes the dive converge in a few passes on thousand-variable
		// assignment models instead of one variable per pass.
		next := changes[:len(changes):len(changes)]
		for _, iv := range s.intVars {
			value := cur.X[iv]
			r := math.Round(value)
			settled := math.Abs(value-r) <= lp.IntTol && r > 0
			lean := r >= 1 && math.Abs(value-r) <= 0.3
			if iv == v || settled || lean {
				next = append(next, boundChange{v: iv, lo: r, hi: r})
			}
		}
		var err error
		cur, err = s.solveWith(next)
		if err != nil {
			return err
		}
		changes = next
	}
	return nil
}

func (s *solver) run() (*lp.Solution, error) {
	for _, w := range s.opts.WarmStarts {
		if len(w) == s.model.NumVars() {
			s.accept(w, s.model.Objective(w))
		}
	}
	root, err := s.solveWith(nil)
	if err != nil {
		return nil, err
	}
	switch root.Status {
	case lp.StatusInfeasible:
		return &lp.Solution{Status: lp.StatusInfeasible, Iterations: s.iterations}, nil
	case lp.StatusUnbounded:
		return &lp.Solution{Status: lp.StatusUnbounded, Iterations: s.iterations}, nil
	case lp.StatusIterLimit:
		return &lp.Solution{Status: lp.StatusIterLimit, Iterations: s.iterations}, nil
	}

	if len(s.intVars) == 0 {
		root.Nodes = 1
		return root, nil
	}

	if v, _ := s.mostFractional(root.X); v < 0 {
		s.accept(root.X, root.Objective)
		return s.finish(root.Objective, lp.StatusOptimal)
	}
	if !s.opts.DisableDiving {
		if err := s.dive(nil, root); err != nil {
			return nil, err
		}
	}

	queue := &nodeQueue{}
	heap.Init(queue)
	seq := 0
	push := func(bound float64, depth int, changes []boundChange) {
		seq++
		heap.Push(queue, &node{bound: bound, depth: depth, seq: seq, changes: changes})
	}
	branch := func(nd *node, sol *lp.Solution) {
		v, val := s.mostFractional(sol.X)
		if v < 0 {
			return
		}
		floor := math.Floor(val)
		varInfo := s.work.Var(v)
		down := append(nd.changes[:len(nd.changes):len(nd.changes)],
			boundChange{v: v, lo: varInfo.Lower, hi: floor})
		up := append(nd.changes[:len(nd.changes):len(nd.changes)],
			boundChange{v: v, lo: floor + 1, hi: varInfo.Upper})
		push(sol.Objective, nd.depth+1, down)
		push(sol.Objective, nd.depth+1, up)
	}
	branch(&node{}, root)

	bestBound := root.Objective
	for queue.Len() > 0 {
		if s.nodes >= s.opts.MaxNodes || s.expired() {
			return s.finish(bestBound, lp.StatusNodeLimit)
		}
		nd := heap.Pop(queue).(*node)
		bestBound = nd.bound
		if s.haveInc && nd.bound >= s.incumbentObj-s.pruneEps() {
			// Best-first order: every remaining node is at least as bad.
			return s.finish(nd.bound, lp.StatusOptimal)
		}
		s.nodes++
		sol, err := s.solveWith(nd.changes)
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.StatusInfeasible:
			continue
		case lp.StatusIterLimit:
			return s.finish(bestBound, lp.StatusNodeLimit)
		case lp.StatusUnbounded:
			return nil, fmt.Errorf("milp: child LP unbounded though root was bounded")
		}
		if s.haveInc && sol.Objective >= s.incumbentObj-s.pruneEps() {
			continue
		}
		if v, _ := s.mostFractional(sol.X); v < 0 {
			s.accept(sol.X, sol.Objective)
			continue
		}
		// Occasional re-dive deeper in the tree keeps the incumbent fresh.
		if !s.opts.DisableDiving && s.nodes%64 == 0 {
			if err := s.dive(nd.changes, sol); err != nil {
				return nil, err
			}
		}
		if s.haveInc {
			gap := (s.incumbentObj - nd.bound) / math.Max(1, math.Abs(s.incumbentObj))
			if gap <= s.opts.GapTol {
				return s.finish(nd.bound, lp.StatusOptimal)
			}
		}
		branch(nd, sol)
	}
	if !s.haveInc {
		return &lp.Solution{Status: lp.StatusInfeasible, Iterations: s.iterations, Nodes: s.nodes}, nil
	}
	return s.finish(s.incumbentObj, lp.StatusOptimal)
}

// pruneEps is the absolute slack used when comparing bounds against the
// incumbent, derived from the relative gap tolerance.
func (s *solver) pruneEps() float64 {
	if !s.haveInc {
		return 0
	}
	return s.opts.GapTol * math.Max(1, math.Abs(s.incumbentObj))
}

func (s *solver) finish(bound float64, status lp.Status) (*lp.Solution, error) {
	sol := &lp.Solution{Iterations: s.iterations, Nodes: s.nodes}
	if !s.haveInc {
		if status == lp.StatusOptimal {
			return nil, fmt.Errorf("milp: internal: optimal finish without incumbent")
		}
		sol.Status = status
		sol.Gap = math.Inf(1)
		return sol, nil
	}
	sol.X = s.incumbent
	sol.Objective = s.incumbentObj
	gap := (s.incumbentObj - bound) / math.Max(1, math.Abs(s.incumbentObj))
	if gap < 0 {
		gap = 0
	}
	sol.Gap = gap
	if status == lp.StatusOptimal || gap <= s.opts.GapTol {
		sol.Status = lp.StatusOptimal
		if gap <= s.opts.GapTol {
			sol.Gap = gap
		}
	} else {
		sol.Status = lp.StatusFeasible
		if status == lp.StatusNodeLimit {
			sol.Status = lp.StatusNodeLimit
		}
	}
	return sol, nil
}
