package milp

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp/cuts"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/resilience/faultinject"
	"github.com/etransform/etransform/internal/simplex"
	"github.com/etransform/etransform/internal/tol"
)

// Budget bounds a whole solve across several dimensions at once. Hitting
// any dimension is a graceful stop: the best incumbent is surrendered
// with its certified gap, Status lp.StatusNodeLimit, and Solution.Limit
// naming the dimension that tripped. The zero value imposes no extra
// bounds beyond Options.MaxNodes/TimeLimit.
type Budget struct {
	// Wall caps wall-clock time; it composes with Options.TimeLimit (the
	// earlier of the two wins). 0 means no wall budget.
	Wall time.Duration
	// Nodes caps explored branch & bound nodes; it composes with
	// Options.MaxNodes (the smaller wins). 0 means no extra node budget.
	Nodes int
	// MemoryBytes caps the estimated memory held by *open* nodes (the
	// frontier queue — the only part of the search whose footprint grows
	// without bound). 0 means no memory budget. The estimate counts node
	// structs and their bound-change lists, not the fixed per-worker
	// model clones.
	MemoryBytes int64
}

// Options control a branch & bound solve. The zero value applies
// defaults suitable for the planner's models.
type Options struct {
	// GapTol is the relative optimality gap at which the search stops.
	// Default tol.Gap (effectively exact).
	GapTol float64
	// MaxNodes caps explored nodes. Default 200000.
	MaxNodes int
	// TimeLimit caps wall-clock time; 0 means no limit. Hitting it is a
	// graceful stop: the best incumbent is returned with Status
	// lp.StatusNodeLimit and no error (contrast with context
	// cancellation, which returns an error). When the context passed to
	// SolveContext also carries a deadline, the earlier of the two wins,
	// and the terminal status is deterministic: a context deadline that
	// is strictly earlier than the option limit always yields
	// lp.StatusCanceled with context.DeadlineExceeded, while an option
	// limit at or before the context deadline always yields the graceful
	// lp.StatusNodeLimit — regardless of scheduling jitter at expiry.
	TimeLimit time.Duration
	// Budget bounds the solve across wall clock, nodes and open-node
	// memory at once; see Budget. Each dimension composes with the
	// corresponding single-dimension option (earlier/smaller wins).
	Budget Budget
	// PerturbSeed, when nonzero, deterministically permutes the order
	// integer variables are scanned for branching (and therefore the
	// whole tree shape). The fallback pipeline uses it to retry a failed
	// solve on a different — but replayable — search trajectory. 0 keeps
	// the natural model order.
	PerturbSeed int64
	// Inject, when non-nil, arms the deterministic fault-injection
	// harness (worker panics, forced deadline expiry) and is handed down
	// to the per-worker simplex engines for their own sites. Production
	// callers leave it nil.
	Inject *faultinject.Injector
	// DisableDiving turns off the diving primal heuristic.
	DisableDiving bool
	// WarmStarts are candidate feasible points (len = model variables)
	// supplied by the caller; each feasible one seeds the incumbent
	// before search begins. Infeasible candidates are ignored.
	WarmStarts [][]float64
	// ReuseBasis warm-starts each node LP from its parent's optimal
	// basis (simplex.Solver.SolveFrom): the child differs from the
	// parent by one variable bound, so a few dual-simplex pivots replace
	// a full two-phase solve. Off by default — on a degenerate node LP
	// the warm path can stop at a different vertex of the same optimal
	// face than the cold path, steering branching onto a different
	// (equally valid) trajectory, and the default must stay byte-stable
	// for golden traces. Either way the certified objective agrees
	// within GapTol, and at Workers=1 each setting is individually
	// deterministic. Correctness never depends on the warm path: any
	// stale or singular basis falls back to the cold two-phase solve
	// inside the simplex layer.
	ReuseBasis bool
	// MaxDiveDepth bounds the diving heuristic's fixing passes.
	// Default 200.
	MaxDiveDepth int
	// DisablePresolve turns off the bound-tightening presolve pass.
	DisablePresolve bool
	// Trace, when non-nil, receives structured solve events: solve
	// start/end, incumbent installs, global-bound improvements, plus the
	// per-LP phase events from the simplex layer (the tracer is handed
	// down to the node-LP engines). Events are totally ordered by the
	// tracer; at Workers=1 the stream is deterministic.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives the solve's counters and gauges
	// (nodes, per-worker node counts, incumbents, bound improvements,
	// wall/work time) and is handed down to the simplex engines for
	// their pivot counters. Production callers leave both nil: every
	// instrumentation site is then a single pointer comparison.
	Metrics *obs.Metrics
	// Cuts configures root-node cutting planes (Gomory mixed-integer +
	// knapsack covers; see internal/milp/cuts). Off by default: the
	// default search trajectory must stay byte-stable for golden traces.
	// Cut separation runs sequentially at the root before workers fan
	// out, so the cut set is identical at any worker count; every
	// accepted cut is re-verified against the stash of known
	// integer-feasible points (warm starts, incumbent) and a violation
	// is a hard solver error. The incumbent path never depends on cuts:
	// tryAccept verifies candidate points against the cut-free model, so
	// a wrong cut could only weaken the bound side, never certify an
	// infeasible plan.
	Cuts cuts.Options
	// Kernel configures the kernel-search primal heuristic (see
	// kernel.go): after the root LP (and cut rounds), restricted MILPs
	// over the LP support plus best-reduced-cost buckets are solved
	// under a node budget to seed the shared incumbent early. Off by
	// default for the same byte-stability reason.
	Kernel KernelOptions
	// Workers is the number of branch & bound worker goroutines that
	// pull nodes from the shared best-bound queue. 0 selects
	// runtime.NumCPU(). Workers=1 runs the fully sequential search and
	// is bit-for-bit deterministic (identical node and iteration counts
	// across runs). Any worker count yields the same certified objective
	// within GapTol; see the package documentation's determinism
	// argument.
	Workers int
	// Simplex carries options for the LP subproblems.
	Simplex simplex.Options
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.GapTol <= 0 {
		out.GapTol = tol.Gap
	}
	if out.MaxNodes <= 0 {
		out.MaxNodes = 200000
	}
	if out.MaxDiveDepth <= 0 {
		out.MaxDiveDepth = 200
	}
	if out.Workers <= 0 {
		out.Workers = runtime.NumCPU()
	}
	return out
}

// boundChange is one tightened bound along a branch.
type boundChange struct {
	v      lp.VarID
	lo, hi float64
}

// node is one open branch & bound node.
type node struct {
	bound   float64 // parent LP objective: lower bound for the subtree
	changes []boundChange
	depth   int
	seq     int // FIFO tie-break so the claim order is total
	// basis is the parent LP's optimal basis (shared by both siblings;
	// a Basis is immutable), set only under Options.ReuseBasis. nil
	// means the node LP starts cold.
	basis *simplex.Basis
}

type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if !tol.Same(q[i].bound, q[j].bound) {
		return q[i].bound < q[j].bound
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)   { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Solve runs branch & bound on the model. Variables marked Binary or
// Integer are enforced integral; continuous variables are free to take
// fractional values. The returned solution's Gap field reports the final
// relative optimality gap (0 when proven optimal).
func Solve(model *lp.Model, opts *Options) (*lp.Solution, error) {
	return SolveContext(context.Background(), model, opts)
}

// SolveContext is Solve with cancellation. The context is observed
// between nodes; on cancellation the returned solution carries the best
// incumbent found so far (Status lp.StatusCanceled, X nil when no
// incumbent exists) alongside ctx.Err(), so callers can salvage a
// partial result. A nil ctx is treated as context.Background().
func SolveContext(ctx context.Context, model *lp.Model, opts *Options) (*lp.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := model.Err(); err != nil {
		return nil, fmt.Errorf("milp: invalid model: %w", err)
	}
	o := opts.withDefaults()
	if o.Budget.Nodes > 0 && o.Budget.Nodes < o.MaxNodes {
		o.MaxNodes = o.Budget.Nodes
	}
	c := newCoordinator(ctx, o, model.Clone())
	// The kernel heuristic launches recursive restricted solves and needs
	// the full context, not just the Err-polling subset.
	c.goCtx = ctx
	for j := 0; j < model.NumVars(); j++ {
		if model.Var(lp.VarID(j)).Type != lp.Continuous {
			c.intVars = append(c.intVars, lp.VarID(j))
		}
	}
	if o.PerturbSeed != 0 {
		// Deterministically re-seed the branching order: ties in the
		// most-fractional rule resolve to different variables, steering
		// the search onto a different — but replayable — trajectory.
		rng := rand.New(rand.NewSource(o.PerturbSeed))
		rng.Shuffle(len(c.intVars), func(i, j int) {
			c.intVars[i], c.intVars[j] = c.intVars[j], c.intVars[i]
		})
	}
	// The working models are continuous; integrality is enforced by
	// branching. Presolve tightens the shared model's bounds (used for
	// incumbent verification) before the workers clone it.
	if !o.DisablePresolve {
		if _, infeasible := presolve(c.model, 10); infeasible {
			return &lp.Solution{Status: lp.StatusInfeasible}, nil
		}
	}
	// Unify the option wall limits with the context deadline: the
	// earliest wins, and *which* configured source is earliest decides
	// the terminal status up front (StatusNodeLimit for option limits,
	// StatusCanceled for a strictly earlier context deadline), so expiry
	// races cannot flip the outcome between runs.
	wall := o.TimeLimit
	if o.Budget.Wall > 0 && (wall <= 0 || o.Budget.Wall < wall) {
		wall = o.Budget.Wall
	}
	if wall > 0 {
		c.deadline = c.start.Add(wall)
	}
	if ctxDeadline, ok := ctx.Deadline(); ok {
		if c.deadline.IsZero() || ctxDeadline.Before(c.deadline) {
			c.deadline = ctxDeadline
			c.deadlineIsCtx = true
		}
	}
	c.memLimit = o.Budget.MemoryBytes
	if !c.deadline.IsZero() {
		// Per-worker simplex engines observe the same wall deadline, so a
		// single long node LP cannot overrun the solve-wide budget.
		c.opts.Simplex.Deadline = c.deadline
	}
	if o.Inject != nil {
		// Hand the harness down so the simplex sites (pivot, corrupt,
		// stall) fire inside node LPs too, and let it report firings to
		// the observability layer when one is armed.
		c.opts.Simplex.Inject = o.Inject
		if o.Trace != nil || o.Metrics != nil {
			o.Inject.Observe(o.Trace, o.Metrics)
		}
	}
	// Hand observability down the same way: node LPs fold their pivot
	// counters and phase events into the solve-wide tracer/registry.
	c.opts.Simplex.Trace = o.Trace
	c.opts.Simplex.Metrics = o.Metrics
	if o.Trace != nil {
		o.Trace.Emit(obs.Event{
			Kind: obs.KindSolveStart, Name: model.Name,
			Detail: fmt.Sprintf("rows=%d cols=%d int=%d workers=%d",
				model.NumRows(), model.NumVars(), len(c.intVars), o.Workers),
		})
	}
	sol, err := c.solve()
	c.emitSolveEnd(sol, err)
	c.foldMetrics(sol)
	return sol, err
}
