package milp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/certify"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/resilience/faultinject"
)

// TestWarmColdEquivalence is the warm-vs-cold equivalence property: 50
// seeded models solved with ReuseBasis on and off must produce the same
// certified objective, status, and limit label, at Workers 1 and 4. The
// generator uses integer costs, so alternative optima still share an
// exactly representable objective and the comparison can be exact.
func TestWarmColdEquivalence(t *testing.T) {
	const seeds = 50
	for _, workers := range []int{1, 4} {
		for seed := int64(1); seed <= seeds; seed++ {
			m := randomObsModel(rand.New(rand.NewSource(seed)))
			var sols [2]*lp.Solution
			for i, reuse := range []bool{false, true} {
				sol, err := Solve(m.Clone(), &Options{Workers: workers, ReuseBasis: reuse})
				if err != nil {
					t.Fatalf("workers=%d seed=%d reuse=%v: %v", workers, seed, reuse, err)
				}
				if sol.Status.HasSolution() {
					if _, err := certify.CheckSolution(m, sol, nil); err != nil {
						t.Fatalf("workers=%d seed=%d reuse=%v: certify: %v", workers, seed, reuse, err)
					}
				}
				sols[i] = sol
			}
			cold, warm := sols[0], sols[1]
			if cold.Status != warm.Status {
				t.Fatalf("workers=%d seed=%d: cold status %v, warm status %v",
					workers, seed, cold.Status, warm.Status)
			}
			if cold.Limit != warm.Limit {
				t.Fatalf("workers=%d seed=%d: cold limit %q, warm limit %q",
					workers, seed, cold.Limit, warm.Limit)
			}
			if cold.Status.HasSolution() && cold.Objective != warm.Objective {
				t.Fatalf("workers=%d seed=%d: cold objective %v, warm objective %v",
					workers, seed, cold.Objective, warm.Objective)
			}
		}
	}
}

// TestWarmHitsRecorded: on a model that genuinely branches, warm starts
// must actually engage — warm_hits > 0 in the folded metrics — and
// reach the cold run's objective.
func TestWarmHitsRecorded(t *testing.T) {
	m := randomObsModel(rand.New(rand.NewSource(11)))
	cold, err := Solve(m.Clone(), &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != lp.StatusOptimal || cold.Nodes < 3 {
		t.Fatalf("seed 11 no longer branches (status %v, %d nodes); pick another seed",
			cold.Status, cold.Nodes)
	}
	met := obs.NewMetrics()
	warm, err := Solve(m.Clone(), &Options{Workers: 1, ReuseBasis: true, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != lp.StatusOptimal || warm.Objective != cold.Objective {
		t.Fatalf("warm (%v, %v) != cold (%v, %v)", warm.Status, warm.Objective, cold.Status, cold.Objective)
	}
	if hits := met.Counter(obs.MetricSimplexWarmHits); hits == 0 {
		t.Fatal("ReuseBasis solve recorded no warm hits")
	}
	if met.Counter(obs.MetricSimplexPhase1Skipped) == 0 {
		t.Fatal("warm hits without phase1_skipped")
	}
	if met.Counter(obs.MetricSimplexPivots) != int64(warm.Iterations) {
		t.Fatalf("folded pivots %d != solution iterations %d",
			met.Counter(obs.MetricSimplexPivots), warm.Iterations)
	}
}

// TestWarmDeterministicAtWorkersOne: ReuseBasis must preserve the
// Workers=1 determinism guarantee — two runs are bit-identical in
// nodes, iterations, and objective.
func TestWarmDeterministicAtWorkersOne(t *testing.T) {
	m := randomObsModel(rand.New(rand.NewSource(23)))
	var prev *lp.Solution
	for run := 0; run < 2; run++ {
		sol, err := Solve(m.Clone(), &Options{Workers: 1, ReuseBasis: true})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if sol.Nodes != prev.Nodes || sol.Iterations != prev.Iterations || sol.Objective != prev.Objective {
				t.Fatalf("run %d diverged: (%d nodes, %d iters, obj %v) vs (%d nodes, %d iters, obj %v)",
					run, sol.Nodes, sol.Iterations, sol.Objective,
					prev.Nodes, prev.Iterations, prev.Objective)
			}
		}
		prev = sol
	}
}

// TestGapZeroOptimum is the regression for the relative-gap computation
// when the incumbent objective is exactly 0: minimize −(x+y)+c with
// binary x,y, c fixed to 1 with cost 1, under x+y ≤ 1.5. The LP bound
// is −0.5, forcing a branch; the integer optimum is exactly 0. The old
// gap formula divided by |incumbent| = 0 and returned ±Inf/NaN, so the
// search could never observe gap ≤ GapTol; tol.RelGap's max(1,|inc|)
// denominator makes the proved gap an exact 0.
func TestGapZeroOptimum(t *testing.T) {
	for _, reuse := range []bool{false, true} {
		m := lp.NewModel("gap-zero")
		x := m.AddBinary("x", -1)
		y := m.AddBinary("y", -1)
		c := m.AddContinuous("c", 1, 1, 1)
		m.AddRow("cap", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 1.5)
		// Presolve would round the ≤1.5 row down to ≤1 and solve at the
		// root; disable it so the zero-incumbent gap test actually
		// exercises the branching loop's gap computation.
		sol, err := Solve(m, &Options{Workers: 1, ReuseBasis: reuse, DisablePresolve: true})
		if err != nil {
			t.Fatalf("reuse=%v: %v", reuse, err)
		}
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("reuse=%v: status = %v, want optimal", reuse, sol.Status)
		}
		if sol.Objective != 0 {
			t.Fatalf("reuse=%v: objective = %v, want exactly 0", reuse, sol.Objective)
		}
		if sol.Gap != 0 {
			t.Fatalf("reuse=%v: gap = %v, want exactly 0 at proved optimum", reuse, sol.Gap)
		}
		if sol.Nodes < 2 {
			t.Fatalf("reuse=%v: solved in %d nodes; model no longer forces a branch", reuse, sol.Nodes)
		}
		_ = c
		if math.IsNaN(sol.Gap) || math.IsInf(sol.Gap, 0) {
			t.Fatalf("reuse=%v: non-finite gap %v with zero incumbent", reuse, sol.Gap)
		}
	}
}

// TestWarmStartDeadlineKeepsReportedGap pins the reported-gap invariant
// behind the fig6/federal warm-start regression: when the budget expires
// right after the root LP, a run with basis reuse enabled must report
// exactly the same finite certified gap as the cold-start run. Before
// the warm-or-abandon dive fix, a stale basis in the dive paid a warm
// attempt plus a full cold fallback, so the two configurations burned
// different budgets and the slower one could lose its root bound
// entirely, degrading the reported gap to the unknown sentinel.
func TestWarmStartDeadlineKeepsReportedGap(t *testing.T) {
	build := stressModels()["knapsack30"]
	var sols [2]*lp.Solution
	for i, reuse := range []bool{false, true} {
		m := build()
		// All-zeros is integral and satisfies the single <= row, so it
		// seeds the incumbent (objective 0) before any LP runs; the
		// injected deadline then fires at every coordinator budget
		// check, leaving the root LP's objective as the only bound.
		zeros := make([]float64, m.NumVars())
		inj := faultinject.New(1, faultinject.Fault{Kind: faultinject.KindDeadline, Count: -1})
		sol, err := Solve(m, &Options{
			Workers:    1,
			ReuseBasis: reuse,
			WarmStarts: [][]float64{zeros},
			Inject:     inj,
		})
		if err != nil {
			t.Fatalf("reuse=%v: %v", reuse, err)
		}
		if !inj.Fired(faultinject.KindDeadline) {
			t.Fatalf("reuse=%v: injected deadline never fired", reuse)
		}
		if sol.Status != lp.StatusNodeLimit || sol.Limit != lp.LimitWallClock {
			t.Fatalf("reuse=%v: status %v limit %q, want node limit at wall clock",
				reuse, sol.Status, sol.Limit)
		}
		if math.IsInf(sol.Gap, 0) || math.IsNaN(sol.Gap) {
			t.Fatalf("reuse=%v: gap %v degraded to the unknown sentinel", reuse, sol.Gap)
		}
		if sol.Gap <= 0 {
			t.Fatalf("reuse=%v: gap %v; the zero incumbent must leave a positive gap", reuse, sol.Gap)
		}
		sols[i] = sol
	}
	cold, warm := sols[0], sols[1]
	if warm.Gap != cold.Gap || warm.Objective != cold.Objective {
		t.Fatalf("warm (gap %v, obj %v) != cold (gap %v, obj %v): basis reuse changed the reported bound",
			warm.Gap, warm.Objective, cold.Gap, cold.Objective)
	}
}
