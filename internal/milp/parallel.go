package milp

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/resilience/faultinject"
	"github.com/etransform/etransform/internal/simplex"
	"github.com/etransform/etransform/internal/tol"
)

// coordinator owns the shared branch & bound state. Everything below mu
// is guarded by it; workers claim nodes and commit results under the
// lock and do all LP work outside it.
type coordinator struct {
	opts     Options
	ctx      contextLike
	model    *lp.Model // original (with integrality markers), presolved
	intVars  []lp.VarID
	deadline time.Time
	// deadlineIsCtx records, at configuration time, that the effective
	// deadline came from the context rather than an option limit; expiry
	// then maps to StatusCanceled instead of the graceful StatusNodeLimit.
	deadlineIsCtx bool
	memLimit      int64 // open-node memory budget; 0 = unlimited
	start         time.Time
	goCtx         context.Context // full context for kernel sub-solves

	// Root-phase state, written only by the sequential root phase before
	// worker fan-out (no lock needed; see solve's phase argument).
	// cutModel is the integral model plus the root cuts that survived
	// activity aging; workers relax it for their node LPs. nil when
	// cutting is off or separated nothing. The incumbent path
	// deliberately never sees it: tryAccept verifies points against the
	// cut-free c.model.
	cutModel         *lp.Model
	stash            [][]float64 // known integer-feasible points guarding cut validity
	cutsSeparated    int64
	cutsActive       int64
	kernelIncumbents int64

	mu   sync.Mutex
	cond *sync.Cond

	queue      nodeQueue // guarded by mu
	queueBytes int64     // estimated heap footprint of queued nodes; guarded by mu
	seq        int       // guarded by mu
	inFlight   int       // nodes claimed but not yet committed; guarded by mu
	flight     []float64 // per-worker bound of the claimed node, +Inf when idle; guarded by mu

	incumbent    []float64 // guarded by mu
	incumbentObj float64   // guarded by mu
	haveInc      bool      // guarded by mu

	lastBound  float64 // monotone global lower bound; guarded by mu
	nodes      int     // guarded by mu
	iterations int     // guarded by mu
	nodesBy    []int   // guarded by mu
	peakQueue  int     // guarded by mu

	done        bool      // guarded by mu
	finalStatus lp.Status // zero when the queue drained naturally; guarded by mu
	finalBound  float64   // guarded by mu
	limit       string    // budget dimension behind a limit stop (lp.Limit*); guarded by mu
	err         error     // guarded by mu
	ctxErr      error     // guarded by mu

	workTime time.Duration // summed per-worker busy time, set after join
}

// contextLike is the subset of context.Context the coordinator needs;
// keeping it narrow makes the between-node polling cost explicit.
type contextLike interface {
	Err() error
}

// newCoordinator builds the shared state before any worker exists.
//
//etlint:ignore lockguard construction happens-before publication: no goroutine can hold a reference yet
func newCoordinator(ctx contextLike, opts Options, model *lp.Model) *coordinator {
	c := &coordinator{
		opts:      opts,
		ctx:       ctx,
		model:     model,
		start:     time.Now(),
		lastBound: math.Inf(-1),
		nodesBy:   make([]int, opts.Workers),
		flight:    make([]float64, opts.Workers),
	}
	for i := range c.flight {
		c.flight[i] = math.Inf(1)
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// worker is one search goroutine: a private relaxed model clone whose
// bounds it mutates, plus a reusable simplex engine.
type worker struct {
	id         int
	c          *coordinator
	work       *lp.Model
	sx         *simplex.Solver
	iterations int // folded into the coordinator at each commit
	busy       time.Duration
}

func (c *coordinator) newWorker(id int) *worker {
	base := c.model
	if c.cutModel != nil {
		// Tree workers search over the cut-strengthened relaxation; the
		// extra rows are valid for every integer point, so subtree bounds
		// only tighten.
		base = c.cutModel
	}
	return &worker{id: id, c: c, work: base.Relax(), sx: simplex.NewSolver(&c.opts.Simplex)}
}

func (c *coordinator) expired() bool {
	if c.opts.Inject.Fire(faultinject.SiteDeadline) {
		return true
	}
	return !c.deadline.IsZero() && time.Now().After(c.deadline)
}

func (c *coordinator) stopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// pruneEps is the absolute slack used when comparing bounds against the
// incumbent objective incObj, derived from the relative gap tolerance.
func (c *coordinator) pruneEps(incObj float64) float64 {
	return c.opts.GapTol * math.Max(1, math.Abs(incObj))
}

// globalBoundLocked is the proven lower bound on the optimum: the
// smallest LP bound over queued and in-flight nodes. With no open nodes
// the incumbent itself is the bound. Monotone via lastBound.
// caller holds c.mu.
func (c *coordinator) globalBoundLocked() float64 {
	b := math.Inf(1)
	if len(c.queue) > 0 {
		b = c.queue[0].bound
	}
	for _, f := range c.flight {
		if f < b {
			b = f
		}
	}
	if math.IsInf(b, 1) {
		if c.haveInc {
			b = c.incumbentObj
		} else {
			b = c.lastBound
		}
	}
	c.advanceBoundLocked(b)
	return c.lastBound
}

// advanceBoundLocked raises the monotone global bound and records the
// improvement in the observability layer. caller holds c.mu.
func (c *coordinator) advanceBoundLocked(b float64) {
	if b <= c.lastBound {
		return
	}
	c.lastBound = b
	c.opts.Metrics.Add(obs.MetricMILPBoundImprove, 1)
	if c.opts.Trace != nil && !math.IsInf(b, 0) {
		c.opts.Trace.Emit(obs.Event{Kind: obs.KindBound, Value: obs.Float64(b), Nodes: obs.Int(c.nodes)})
	}
}

// pushLocked enqueues one open node and maintains the queue accounting.
// caller holds c.mu.
func (c *coordinator) pushLocked(bound float64, depth int, changes []boundChange, basis *simplex.Basis) {
	c.seq++
	nd := &node{bound: bound, depth: depth, seq: c.seq, changes: changes, basis: basis}
	heap.Push(&c.queue, nd)
	c.queueBytes += nodeBytes(nd)
	if len(c.queue) > c.peakQueue {
		c.peakQueue = len(c.queue)
	}
}

// nodeBytes estimates the heap footprint of one open node: the node
// struct, its bound-change list, and (under ReuseBasis) its parent
// basis snapshot. The frontier queue is the only part of the search
// whose memory grows without bound, so this is what Budget.MemoryBytes
// meters. Siblings share one basis but each is charged in full — a
// deliberate overestimate, since a budget meter must never undercount.
func nodeBytes(nd *node) int64 {
	return 64 + 24*int64(cap(nd.changes)) + nd.basis.MemBytes()
}

// stopLocked ends the search with the given terminal status and bound.
// limit names the budget dimension behind a limit stop ("" for natural
// termination). The first stop wins; later calls are no-ops.
// caller holds c.mu.
func (c *coordinator) stopLocked(status lp.Status, bound float64, limit string) {
	if c.done {
		return
	}
	c.done = true
	c.finalStatus = status
	c.limit = limit
	if bound > c.lastBound {
		c.lastBound = bound
	}
	c.finalBound = c.lastBound
	c.cond.Broadcast()
}

// failLocked records the first worker error and ends the search.
// caller holds c.mu.
func (c *coordinator) failLocked(err error) {
	if c.err == nil {
		c.err = err
	}
	c.done = true
	c.cond.Broadcast()
}

// snapshotIncumbent returns the incumbent objective for pruning. A stale
// snapshot only makes pruning less aggressive, never incorrect.
func (c *coordinator) snapshotIncumbent() (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.incumbentObj, c.haveInc
}

// mostFractional returns the integer variable whose LP value is farthest
// from integral, or -1 if the point is integral on all integer variables.
// Read-only on coordinator state; safe without the lock.
func (c *coordinator) mostFractional(x []float64) (lp.VarID, float64) {
	best := lp.VarID(-1)
	bestDist := lp.IntTol
	bestVal := 0.0
	for _, v := range c.intVars {
		val := x[v]
		dist := math.Abs(val - math.Round(val))
		// Most fractional: maximize distance from nearest integer.
		if dist > bestDist+tol.Tie {
			best, bestDist, bestVal = v, dist, val
		}
	}
	return best, bestVal
}

// tryAccept installs x as the incumbent if it verifies against the
// original model and still beats the incumbent at install time. The
// expensive feasibility check runs outside the lock; the install is
// double-checked under it, so the incumbent objective only decreases.
// worker is the 1-based publisher for incumbent attribution (0 for
// warm starts, which precede the search).
func (c *coordinator) tryAccept(x []float64, gateObj float64, worker int) {
	c.mu.Lock()
	if c.haveInc && gateObj >= c.incumbentObj-tol.Tie {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// Snap integer variables exactly and verify against the original
	// model before trusting the point.
	snapped := make([]float64, len(x))
	copy(snapped, x)
	for _, v := range c.intVars {
		snapped[v] = math.Round(snapped[v])
	}
	if err := c.model.CheckFeasible(snapped, tol.Accept); err != nil {
		return
	}
	obj := c.model.Objective(snapped)
	c.mu.Lock()
	if !c.haveInc || obj < c.incumbentObj-tol.Tie {
		c.incumbent = snapped
		c.incumbentObj = obj
		c.haveInc = true
		c.opts.Metrics.Add(obs.MetricMILPIncumbents, 1)
		if c.opts.Trace != nil {
			c.opts.Trace.Emit(obs.Event{
				Kind: obs.KindIncumbent, Value: obs.Float64(obj), Worker: worker, Nodes: obs.Int(c.nodes),
			})
		}
	}
	c.mu.Unlock()
}

// solveWith applies the node's bound changes, solves the LP relaxation
// on the worker's private model, and restores the bounds. A non-nil
// basis (the parent node's optimal basis, present only under
// ReuseBasis) warm-starts the solve; the simplex layer falls back to
// its cold path on its own whenever the basis is stale.
func (w *worker) solveWith(changes []boundChange, basis *simplex.Basis) (*lp.Solution, error) {
	saved := make([]boundChange, len(changes))
	for i, ch := range changes {
		v := w.work.Var(ch.v)
		saved[i] = boundChange{v: ch.v, lo: v.Lower, hi: v.Upper}
		if ch.lo > v.Upper || ch.hi < v.Lower || ch.lo > ch.hi {
			// The combined bounds are empty: infeasible without solving.
			for k := i - 1; k >= 0; k-- {
				w.work.SetBounds(saved[k].v, saved[k].lo, saved[k].hi)
			}
			return &lp.Solution{Status: lp.StatusInfeasible}, nil
		}
		w.work.SetBounds(ch.v, math.Max(ch.lo, v.Lower), math.Min(ch.hi, v.Upper))
	}
	sol, err := w.sx.SolveFrom(w.work, basis)
	for k := len(saved) - 1; k >= 0; k-- {
		w.work.SetBounds(saved[k].v, saved[k].lo, saved[k].hi)
	}
	if err != nil {
		return nil, err
	}
	w.iterations += sol.Iterations
	return sol, nil
}

// tryWarmWith is solveWith restricted to the warm path: it applies the
// bound changes and attempts the LP only from the given basis,
// reporting ok=false — with no cold fallback charged — when the basis
// is stale. The dive uses it so a failed warm start abandons the
// (purely heuristic) subproblem instead of paying for a cold two-phase
// solve the warm run's budget never accounted for.
func (w *worker) tryWarmWith(changes []boundChange, basis *simplex.Basis) (*lp.Solution, bool, error) {
	saved := make([]boundChange, len(changes))
	for i, ch := range changes {
		v := w.work.Var(ch.v)
		saved[i] = boundChange{v: ch.v, lo: v.Lower, hi: v.Upper}
		if ch.lo > v.Upper || ch.hi < v.Lower || ch.lo > ch.hi {
			for k := i - 1; k >= 0; k-- {
				w.work.SetBounds(saved[k].v, saved[k].lo, saved[k].hi)
			}
			return &lp.Solution{Status: lp.StatusInfeasible}, true, nil
		}
		w.work.SetBounds(ch.v, math.Max(ch.lo, v.Lower), math.Min(ch.hi, v.Upper))
	}
	sol, ok, err := w.sx.TryWarm(w.work, basis)
	for k := len(saved) - 1; k >= 0; k-- {
		w.work.SetBounds(saved[k].v, saved[k].lo, saved[k].hi)
	}
	if err != nil || !ok {
		return nil, ok, err
	}
	w.iterations += sol.Iterations
	return sol, true, nil
}

// lastBasis snapshots the worker's solver basis for reuse by child
// nodes; nil unless ReuseBasis is on and the last LP ended optimal.
func (w *worker) lastBasis() *simplex.Basis {
	if !w.c.opts.ReuseBasis {
		return nil
	}
	return w.sx.Basis()
}

func (w *worker) takeIterations() int {
	n := w.iterations
	w.iterations = 0
	return n
}

// branchChanges builds the down/up child bound-change lists for the most
// fractional variable of sol. The three-index slice of nd.changes forces
// append to copy, so siblings never share a backing array.
//
//etlint:ignore stickyerr dive branches only after cur.Status == StatusOptimal; sol is the just-checked relaxation
func (w *worker) branchChanges(nd *node, sol *lp.Solution) (down, up []boundChange) {
	v, val := w.c.mostFractional(sol.X)
	if v < 0 {
		return nil, nil
	}
	floor := math.Floor(val)
	varInfo := w.work.Var(v)
	down = append(nd.changes[:len(nd.changes):len(nd.changes)],
		boundChange{v: v, lo: varInfo.Lower, hi: floor})
	up = append(nd.changes[:len(nd.changes):len(nd.changes)],
		boundChange{v: v, lo: floor + 1, hi: varInfo.Upper})
	return down, up
}

// dive is the primal heuristic: repeatedly fix every near-integral
// integer variable and round the single most fractional one, re-solving
// until the LP is integral or infeasible.
func (w *worker) dive(base []boundChange, sol *lp.Solution) error {
	changes := make([]boundChange, len(base))
	copy(changes, base)
	cur := sol
	for depth := 0; depth < w.c.opts.MaxDiveDepth; depth++ {
		if cur.Status != lp.StatusOptimal || w.c.expired() || w.c.stopped() {
			return nil
		}
		v, _ := w.c.mostFractional(cur.X)
		if v < 0 {
			w.c.tryAccept(cur.X, cur.Objective, w.id+1)
			return nil
		}
		// Fix integer vars that are (nearly) settled at a nonzero value —
		// within tolerance of a positive integer, or within 0.3 of one
		// (strong fractional lean) — plus the most fractional variable at
		// its nearest integer. Near-zero vars stay free: locking them out
		// on the first pass cripples symmetric assignment models where
		// the LP leaves most columns at 0. Fixing the strong leans too
		// makes the dive converge in a few passes on thousand-variable
		// assignment models instead of one variable per pass.
		next := changes[:len(changes):len(changes)]
		for _, iv := range w.c.intVars {
			value := cur.X[iv]
			r := math.Round(value)
			settled := math.Abs(value-r) <= lp.IntTol && r > 0
			lean := r >= 1 && math.Abs(value-r) <= 0.3
			if iv == v || settled || lean {
				next = append(next, boundChange{v: iv, lo: r, hi: r})
			}
		}
		// The dive re-solves the worker's own last LP with extra fixings,
		// so its basis is the natural warm start for the next pass. Under
		// ReuseBasis the pass is warm-or-abandon: a stale basis abandons
		// the dive (it is only a heuristic) rather than paying for the
		// cold solve a cold-start run would spend on the tree instead —
		// this is the fig6/federal+warm regression fix, where a failed
		// warm start burned search budget without advancing any bound.
		var err error
		if basis := w.lastBasis(); basis != nil {
			var ok bool
			cur, ok, err = w.tryWarmWith(next, basis)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		} else {
			cur, err = w.solveWith(next, nil)
			if err != nil {
				return err
			}
		}
		changes = next
	}
	return nil
}

// claim blocks until a node is available, the search ends, or a limit
// trips. It returns the claimed node and its 1-based claim index (the
// sequential node counter, used to pace re-dives), or ok=false when the
// worker should exit.
func (c *coordinator) claim(w *worker) (nd *node, nodeIdx int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for !c.done && len(c.queue) == 0 && c.inFlight > 0 {
			c.cond.Wait()
		}
		if c.done {
			return nil, 0, false
		}
		if len(c.queue) == 0 {
			// Queue drained with nothing in flight: the tree is exhausted
			// and the incumbent (if any) is optimal.
			c.done = true
			c.cond.Broadcast()
			return nil, 0, false
		}
		if c.nodes >= c.opts.MaxNodes {
			c.stopLocked(lp.StatusNodeLimit, c.globalBoundLocked(), lp.LimitNodes)
			return nil, 0, false
		}
		if c.memLimit > 0 && c.queueBytes > c.memLimit {
			c.stopLocked(lp.StatusNodeLimit, c.globalBoundLocked(), lp.LimitMemory)
			return nil, 0, false
		}
		if c.expired() {
			// The effective deadline passed. Which status that means was
			// decided at configuration time (deadlineIsCtx), not by racing
			// time.Now against the context's own timer: an option limit at
			// or before the context deadline is always the graceful stop.
			if c.deadlineIsCtx {
				c.ctxErr = context.DeadlineExceeded
				c.stopLocked(lp.StatusCanceled, c.globalBoundLocked(), "")
			} else {
				c.stopLocked(lp.StatusNodeLimit, c.globalBoundLocked(), lp.LimitWallClock)
			}
			return nil, 0, false
		}
		if e := c.ctx.Err(); e != nil {
			c.ctxErr = e
			c.stopLocked(lp.StatusCanceled, c.globalBoundLocked(), "")
			return nil, 0, false
		}
		nd = heap.Pop(&c.queue).(*node)
		c.queueBytes -= nodeBytes(nd)
		if c.haveInc && nd.bound >= c.incumbentObj-c.pruneEps(c.incumbentObj) {
			if c.inFlight == 0 {
				// Best-first with nothing in flight: every remaining node
				// is at least as bad, so the search is over.
				c.stopLocked(lp.StatusOptimal, nd.bound, "")
				return nil, 0, false
			}
			// In-flight nodes may still push improving children; just
			// discard this one and wait for the next.
			continue
		}
		c.nodes++
		c.nodesBy[w.id]++
		c.inFlight++
		c.flight[w.id] = nd.bound
		return nd, c.nodes, true
	}
}

// commit folds a processed node back into the shared state: worker
// iteration counts, child nodes, and the optimality-gap termination
// test. Returns false when the worker should exit.
func (c *coordinator) commit(w *worker, sol *lp.Solution, err error, closed bool, down, up []boundChange, depth int, childBound float64, childBasis *simplex.Basis) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.cond.Broadcast()
	c.iterations += w.takeIterations()
	c.flight[w.id] = math.Inf(1)
	c.inFlight--
	if c.done {
		// A terminal state was reached while we were solving; our result
		// can no longer change it (stats are already folded above).
		return false
	}
	if err != nil {
		c.failLocked(err)
		return false
	}
	switch sol.Status {
	case lp.StatusInfeasible:
		return true
	case lp.StatusIterLimit:
		// The node LP ran out of its own budget (iterations, or the
		// propagated wall deadline); surrender the incumbent gracefully.
		lim := sol.Limit
		if lim == "" {
			lim = lp.LimitIterations
		}
		c.stopLocked(lp.StatusNodeLimit, c.globalBoundLocked(), lim)
		return false
	case lp.StatusUnbounded:
		c.failLocked(fmt.Errorf("milp: child LP unbounded though root was bounded"))
		return false
	}
	if !closed {
		c.pushLocked(childBound, depth, down, childBasis)
		c.pushLocked(childBound, depth, up, childBasis)
	}
	if c.haveInc {
		bound := c.globalBoundLocked()
		if tol.RelGap(c.incumbentObj, bound) <= c.opts.GapTol {
			c.stopLocked(lp.StatusOptimal, bound, "")
			return false
		}
	}
	return true
}

// step runs one claim → LP solve → commit cycle. All LP work happens
// between the two lock acquisitions.
func (c *coordinator) step(w *worker) bool {
	nd, nodeIdx, ok := c.claim(w)
	if !ok {
		return false
	}
	// Fault-injection site: a worker dying mid-search with a claimed node
	// in flight. runWorker's recover converts it into a solver error.
	c.opts.Inject.MaybePanic(faultinject.SitePanic)
	t0 := time.Now()
	sol, err := w.solveWith(nd.changes, nd.basis)
	if err == nil && sol.Status == lp.StatusOptimal && !finiteSolution(sol) {
		// A NaN/Inf LP result would silently poison branching (every
		// comparison against NaN is false, so the node just closes and the
		// tree drains into a bogus "infeasible"). Surface it as a solver
		// error instead so the planner's retry/fallback chain engages.
		err = fmt.Errorf("milp: node LP returned non-finite values (objective %v)", sol.Objective)
	}
	closed := true
	var down, up []boundChange
	var childBound float64
	var childBasis *simplex.Basis
	if err == nil && sol.Status == lp.StatusOptimal {
		incObj, haveInc := c.snapshotIncumbent()
		switch {
		case haveInc && sol.Objective >= incObj-c.pruneEps(incObj):
			// Pruned against the incumbent snapshot.
		case func() bool { v, _ := c.mostFractional(sol.X); return v < 0 }():
			c.tryAccept(sol.X, sol.Objective, w.id+1)
		default:
			// Snapshot this node's optimal basis before the dive re-solves
			// other LPs on the same solver; both children inherit it.
			childBasis = w.lastBasis()
			// Occasional re-dive deeper in the tree keeps the incumbent
			// fresh. nodeIdx comes from the shared counter, so the pacing
			// matches the sequential solver when Workers=1.
			if !c.opts.DisableDiving && nodeIdx%64 == 0 {
				err = w.dive(nd.changes, sol)
			}
			if err == nil {
				down, up = w.branchChanges(nd, sol)
				childBound = sol.Objective
				closed = down == nil && up == nil
			}
		}
	}
	w.busy += time.Since(t0)
	return c.commit(w, sol, err, closed, down, up, nd.depth+1, childBound, childBasis)
}

// runWorker is a worker goroutine's main loop. A panic anywhere in the
// search is converted into a coordinator error so it never crosses the
// Solve API boundary.
func (c *coordinator) runWorker(w *worker, wg *sync.WaitGroup) {
	defer wg.Done()
	defer func() {
		if r := recover(); r != nil {
			c.mu.Lock()
			c.failLocked(fmt.Errorf("milp: worker %d panicked: %v", w.id, r))
			c.mu.Unlock()
		}
	}()
	for c.step(w) {
	}
}

// solve processes the root sequentially (warm starts, root LP, root
// dive, first branch), then fans the open tree out over the worker pool
// and assembles the final solution.
//
//etlint:ignore lockguard root phase runs before worker fan-out and final reads run after wg.Wait joins every worker
func (c *coordinator) solve() (*lp.Solution, error) {
	w0 := c.newWorker(0)
	for _, ws := range c.opts.WarmStarts {
		if len(ws) == c.model.NumVars() {
			c.tryAccept(ws, c.model.Objective(ws), 0)
		}
	}
	t0 := time.Now()
	root, err := w0.solveWith(nil, nil)
	c.iterations += w0.takeIterations()
	if err != nil {
		return nil, err
	}
	switch root.Status {
	case lp.StatusInfeasible, lp.StatusUnbounded:
		return &lp.Solution{Status: root.Status, Iterations: c.iterations}, nil
	case lp.StatusIterLimit:
		w0.busy = time.Since(t0)
		if root.Limit == lp.LimitWallClock {
			// The solve-wide deadline expired inside the root LP itself.
			// Map it to the same terminal state the between-node checks
			// produce, so callers see one consistent deadline contract.
			if c.deadlineIsCtx {
				c.ctxErr = context.DeadlineExceeded
				return c.canceledSolution([]*worker{w0}), c.ctxErr
			}
			c.limit = lp.LimitWallClock
			return c.assembleFinish(c.lastBound, lp.StatusNodeLimit, []*worker{w0})
		}
		return &lp.Solution{Status: root.Status, Iterations: c.iterations, Limit: root.Limit}, nil
	}
	if !finiteSolution(root) {
		return nil, fmt.Errorf("milp: root LP returned non-finite values (objective %v)", root.Objective)
	}

	if len(c.intVars) == 0 {
		root.Nodes = 1
		c.workTime = time.Since(t0)
		c.fillStats(root, 1)
		return root, nil
	}

	if v, _ := c.mostFractional(root.X); v < 0 {
		c.tryAccept(root.X, root.Objective, 1)
		w0.busy = time.Since(t0)
		return c.assembleFinish(root.Objective, lp.StatusOptimal, []*worker{w0})
	}
	// Root cut rounds tighten the relaxation before the tree search, and
	// the kernel heuristic then mines the (possibly cut-strengthened)
	// root LP for an early incumbent. Both run here in the sequential
	// root phase, so the cut set and kernel trajectory are identical at
	// any worker count.
	if c.opts.Cuts.Enable {
		var cerr error
		root, cerr = c.rootCuts(w0, root)
		c.iterations += w0.takeIterations()
		if cerr != nil {
			return nil, cerr
		}
		if v, _ := c.mostFractional(root.X); v < 0 {
			// The cut LP optimum went integral: it is optimal for the MILP.
			c.tryAccept(root.X, root.Objective, 1)
			w0.busy = time.Since(t0)
			return c.assembleFinish(root.Objective, lp.StatusOptimal, []*worker{w0})
		}
	}
	if c.opts.Kernel.Enable {
		c.kernelSearch(w0, root)
		c.iterations += w0.takeIterations()
	}
	// The root's optimal basis seeds both first children; snapshot it
	// before the dive re-solves other LPs on the same solver.
	rootBasis := w0.lastBasis()
	if !c.opts.DisableDiving {
		if err := w0.dive(nil, root); err != nil {
			return nil, err
		}
		c.iterations += w0.takeIterations()
	}
	down, up := w0.branchChanges(&node{}, root)
	w0.busy = time.Since(t0)
	c.mu.Lock()
	c.advanceBoundLocked(root.Objective)
	c.pushLocked(root.Objective, 1, down, rootBasis)
	c.pushLocked(root.Objective, 1, up, rootBasis)
	c.mu.Unlock()

	workers := make([]*worker, c.opts.Workers)
	workers[0] = w0
	for i := 1; i < len(workers); i++ {
		workers[i] = c.newWorker(i)
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go c.runWorker(w, &wg)
	}
	wg.Wait()

	if c.err != nil {
		return nil, c.err
	}
	if c.ctxErr != nil {
		return c.canceledSolution(workers), c.ctxErr
	}
	if c.finalStatus != 0 {
		return c.assembleFinish(c.finalBound, c.finalStatus, workers)
	}
	// Queue exhausted naturally.
	if !c.haveInc {
		sol := &lp.Solution{Status: lp.StatusInfeasible, Iterations: c.iterations, Nodes: c.nodes}
		c.foldBusy(workers)
		c.fillStats(sol, c.opts.Workers)
		return sol, nil
	}
	return c.assembleFinish(c.incumbentObj, lp.StatusOptimal, workers)
}

func (c *coordinator) foldBusy(workers []*worker) {
	for _, w := range workers {
		c.workTime += w.busy
	}
}

// assembleFinish maps a terminal (bound, status) pair to the returned
// solution, mirroring the sequential solver's gap bookkeeping.
//
//etlint:ignore lockguard called only after wg.Wait joins every worker; the coordinator is single-threaded again
func (c *coordinator) assembleFinish(bound float64, status lp.Status, workers []*worker) (*lp.Solution, error) {
	c.foldBusy(workers)
	sol := &lp.Solution{Iterations: c.iterations, Nodes: c.nodes}
	c.fillStats(sol, c.opts.Workers)
	if !c.haveInc {
		if status == lp.StatusOptimal {
			return nil, fmt.Errorf("milp: internal: optimal finish without incumbent")
		}
		sol.Status = status
		if status == lp.StatusNodeLimit {
			sol.Limit = c.limit
		}
		sol.Gap = math.Inf(1)
		return sol, nil
	}
	sol.X = c.incumbent
	sol.Objective = c.incumbentObj
	// tol.RelGap guards the near-zero-incumbent case (max(1,·)
	// denominator) and maps a bound of −Inf — no bound ever proven —
	// to an honest +Inf instead of NaN.
	gap := tol.RelGap(c.incumbentObj, bound)
	sol.Gap = gap
	if status == lp.StatusOptimal || gap <= c.opts.GapTol {
		sol.Status = lp.StatusOptimal
	} else {
		sol.Status = lp.StatusFeasible
		if status == lp.StatusNodeLimit {
			sol.Status = lp.StatusNodeLimit
			sol.Limit = c.limit
		}
	}
	return sol, nil
}

// canceledSolution packages the partial result surrendered on context
// cancellation: the incumbent if one exists, the proven bound, and the
// search statistics so far.
//
//etlint:ignore lockguard called only after wg.Wait joins every worker; the coordinator is single-threaded again
func (c *coordinator) canceledSolution(workers []*worker) *lp.Solution {
	c.foldBusy(workers)
	sol := &lp.Solution{Status: lp.StatusCanceled, Iterations: c.iterations, Nodes: c.nodes}
	c.fillStats(sol, c.opts.Workers)
	if !c.haveInc {
		sol.Gap = math.Inf(1)
		return sol
	}
	sol.X = c.incumbent
	sol.Objective = c.incumbentObj
	sol.Gap = tol.RelGap(c.incumbentObj, c.finalBound)
	return sol
}

// finiteSolution reports whether an LP result is numerically sane: a
// finite objective and finite primal values. It is itself a validity
// probe of the raw payload — callers consult it before trusting sol.
//
//etlint:ignore stickyerr this function is the check; it inspects the raw payload to classify it
func finiteSolution(sol *lp.Solution) bool {
	if math.IsNaN(sol.Objective) || math.IsInf(sol.Objective, 0) {
		return false
	}
	for _, v := range sol.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// fillStats populates the solution's concurrency statistics.
//
//etlint:ignore lockguard called only from the post-join assembly path; no worker is live
func (c *coordinator) fillStats(sol *lp.Solution, workers int) {
	sol.Workers = workers
	if c.nodes > 0 {
		sol.NodesPerWorker = c.nodesBy
	}
	sol.PeakQueueDepth = c.peakQueue
	sol.WallTime = time.Since(c.start)
	sol.WorkTime = c.workTime
}

// emitSolveEnd closes the trace stream for this solve with the terminal
// status, objective and search counters. Called once from SolveContext,
// after every terminal path, so each solve_start has exactly one
// matching solve_end.
func (c *coordinator) emitSolveEnd(sol *lp.Solution, err error) {
	tr := c.opts.Trace
	if tr == nil {
		return
	}
	e := obs.Event{Kind: obs.KindSolveEnd}
	if err != nil {
		e.Status = "error"
		e.Detail = err.Error()
	}
	if sol != nil {
		if sol.Status != 0 {
			e.Status = sol.Status.String()
		}
		e.Limit = sol.Limit
		e.Nodes = obs.Int(sol.Nodes)
		e.Iterations = sol.Iterations
		if sol.X != nil && !math.IsNaN(sol.Objective) && !math.IsInf(sol.Objective, 0) {
			e.Value = obs.Float64(sol.Objective)
		}
		e.Gap = obs.Float64(jsonSafeEventGap(sol.Gap))
	}
	tr.Emit(e)
}

// jsonSafeEventGap maps an unknown (infinite) gap to -1 so trace events
// always survive encoding/json, mirroring the planner's plan encoding.
func jsonSafeEventGap(gap float64) float64 {
	if math.IsInf(gap, 0) || math.IsNaN(gap) {
		return -1
	}
	return gap
}

// foldMetrics records the solve's totals into the metrics registry: one
// call per solve, after the terminal state is known. Per-worker node
// counters sum to MetricMILPNodes whenever the tree search ran (they
// are simply absent for pure-LP pass-through solves, whose single root
// "node" no worker claimed).
//
//etlint:ignore lockguard called once from SolveContext after the search has fully terminated
func (c *coordinator) foldMetrics(sol *lp.Solution) {
	m := c.opts.Metrics
	if m == nil {
		return
	}
	m.Add(obs.MetricMILPSolves, 1)
	m.SetGauge(obs.MetricMILPWorkers, float64(c.opts.Workers))
	m.MaxGauge(obs.MetricMILPPeakQueue, float64(c.peakQueue))
	if sol == nil {
		return
	}
	m.Add(obs.MetricMILPNodes, int64(sol.Nodes))
	if c.nodes > 0 {
		for i, n := range c.nodesBy {
			if n > 0 {
				m.Add(obs.MetricMILPNodesWorkerPrefix+strconv.Itoa(i+1), int64(n))
			}
		}
	}
	m.Add(obs.MetricMILPWallMicros, sol.WallTime.Microseconds())
	m.Add(obs.MetricMILPWorkMicros, sol.WorkTime.Microseconds())
	// Cut/kernel counters fold only when the features ran and produced
	// something, so default-configuration metric snapshots keep their
	// exact key set (golden reconciliation tests depend on it).
	if c.cutsSeparated > 0 {
		m.Add(obs.MetricMILPCutsSeparated, c.cutsSeparated)
	}
	if c.cutsActive > 0 {
		m.Add(obs.MetricMILPCutsActive, c.cutsActive)
	}
	if c.kernelIncumbents > 0 {
		m.Add(obs.MetricMILPKernelIncumbents, c.kernelIncumbents)
	}
}
