package milp

import (
	"math"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/tol"
)

// presolve tightens variable bounds by constraint propagation before the
// search starts: for every row, each variable's bound is improved using
// the extreme activity of the other terms; integer bounds are then
// rounded inward. Rows can also prove immediate infeasibility. The model
// keeps its shape (no rows or columns are removed), so solutions map
// back one-to-one.
//
// Propagation repeats until a fixed point or maxPasses; each pass is
// O(nonzeros).
func presolve(m *lp.Model, maxPasses int) (tightened int, infeasible bool) {
	n := m.NumVars()
	lo := make([]float64, n)
	hi := make([]float64, n)
	isInt := make([]bool, n)
	for j := 0; j < n; j++ {
		v := m.Var(lp.VarID(j))
		lo[j], hi[j] = v.Lower, v.Upper
		isInt[j] = v.Type != lp.Continuous
	}

	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for r := 0; r < m.NumRows(); r++ {
			row := m.Row(lp.RowID(r))
			// Row activity bounds from current variable bounds, tracking
			// infinite contributions separately — and SIGNED, not just
			// counted — so removing one term's contribution stays
			// well-defined. A contribution of −Inf in the min slot and one
			// of +Inf (a variable degenerately fixed at an infinite bound)
			// must never cancel or be confused: lumping both signs into one
			// counter would let a +Inf contribution masquerade as the −Inf
			// that justifies skipping a tightening, deriving bounds from a
			// minimum that is really +Inf.
			var minFin, maxFin float64
			var minNegInf, minPosInf int // signed infinite contributions in the min slot
			var maxNegInf, maxPosInf int // … and in the max slot
			for _, t := range row.Terms {
				if tol.IsZero(t.Coef) {
					continue // contributes exactly 0; 0·±Inf is NaN, not 0
				}
				l, h := lo[t.Var], hi[t.Var]
				if t.Coef < 0 {
					l, h = h, l
				}
				// Contribution range is [coef·l, coef·h] after the swap.
				switch cl := t.Coef * l; {
				case math.IsInf(cl, -1):
					minNegInf++
				case math.IsInf(cl, 1):
					minPosInf++
				default:
					minFin += cl
				}
				switch ch := t.Coef * h; {
				case math.IsInf(ch, 1):
					maxPosInf++
				case math.IsInf(ch, -1):
					maxNegInf++
				default:
					maxFin += ch
				}
			}
			// A row is infeasible when its minimum activity already exceeds
			// a ≤/= RHS (or the maximum falls short of a ≥/= RHS). With the
			// signs separated, a +Inf minimum contribution is itself proof
			// for the ≤ direction — unless a −Inf one could offset it, in
			// which case the bounds are degenerate and nothing is provable.
			leInfeas := minNegInf == 0 && (minPosInf > 0 || minFin > row.RHS+feasEps(row.RHS))
			geInfeas := maxPosInf == 0 && (maxNegInf > 0 || maxFin < row.RHS-feasEps(row.RHS))
			switch row.Sense {
			case lp.LE:
				if leInfeas {
					return tightened, true
				}
			case lp.GE:
				if geInfeas {
					return tightened, true
				}
			case lp.EQ:
				if leInfeas || geInfeas {
					return tightened, true
				}
			}
			// Tighten each variable against the row. For a ≤ row:
			// coef>0: x ≤ (rhs − minActWithout)/coef;
			// coef<0: x ≥ (rhs − minActWithout)/coef.
			// GE rows symmetric via maxAct; EQ rows give both.
			for _, t := range row.Terms {
				if tol.IsZero(t.Coef) {
					continue
				}
				j := t.Var
				// Activity of the other terms at their extremes: finite
				// only when j carries the row's sole infinite contribution.
				// The remainder counts are per sign — a −Inf contribution
				// from another term forbids a finite minOther (it would
				// tighten x_j's upper bound in the wrong direction, since
				// the others can compensate without limit), and a +Inf one
				// forbids it just as hard (the true minimum of the others
				// is +Inf, not minFin).
				l, h := lo[j], hi[j]
				if t.Coef < 0 {
					l, h = h, l
				}
				cl, ch := t.Coef*l, t.Coef*h
				minOther, maxOther := math.Inf(-1), math.Inf(1)
				minNegRem, minPosRem := minNegInf, minPosInf
				switch {
				case math.IsInf(cl, -1):
					minNegRem--
				case math.IsInf(cl, 1):
					minPosRem--
				}
				if minNegRem == 0 && minPosRem == 0 {
					if math.IsInf(cl, 0) {
						minOther = minFin
					} else {
						minOther = minFin - cl
					}
				}
				maxPosRem, maxNegRem := maxPosInf, maxNegInf
				switch {
				case math.IsInf(ch, 1):
					maxPosRem--
				case math.IsInf(ch, -1):
					maxNegRem--
				}
				if maxPosRem == 0 && maxNegRem == 0 {
					if math.IsInf(ch, 0) {
						maxOther = maxFin
					} else {
						maxOther = maxFin - ch
					}
				}
				upper := math.Inf(1)
				lower := math.Inf(-1)
				if row.Sense == lp.LE || row.Sense == lp.EQ {
					if !math.IsInf(minOther, 0) {
						bound := (row.RHS - minOther) / t.Coef
						if t.Coef > 0 {
							upper = bound
						} else {
							lower = bound
						}
					}
				}
				if row.Sense == lp.GE || row.Sense == lp.EQ {
					if !math.IsInf(maxOther, 0) {
						bound := (row.RHS - maxOther) / t.Coef
						if t.Coef > 0 {
							lower = bound
						} else {
							upper = bound
						}
					}
				}
				if isInt[j] {
					if !math.IsInf(upper, 1) {
						upper = math.Floor(upper + tol.Tighten)
					}
					if !math.IsInf(lower, -1) {
						lower = math.Ceil(lower - tol.Tighten)
					}
				}
				if upper < hi[j]-tol.Tighten {
					hi[j] = upper
					changed = true
					tightened++
				}
				if lower > lo[j]+tol.Tighten {
					lo[j] = lower
					changed = true
					tightened++
				}
				if lo[j] > hi[j]+tol.Tighten {
					return tightened, true
				}
				if lo[j] > hi[j] {
					// Within tolerance: snap.
					hi[j] = lo[j]
				}
			}
		}
		if !changed {
			break
		}
	}
	for j := 0; j < n; j++ {
		v := m.Var(lp.VarID(j))
		if !tol.Same(lo[j], v.Lower) || !tol.Same(hi[j], v.Upper) {
			m.SetBounds(lp.VarID(j), lo[j], hi[j])
		}
	}
	return tightened, false
}

// feasEps scales the infeasibility tolerance by the row magnitude.
func feasEps(rhs float64) float64 {
	return tol.RowFeas * math.Max(1, math.Abs(rhs))
}
