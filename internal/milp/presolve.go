package milp

import (
	"math"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/tol"
)

// presolve tightens variable bounds by constraint propagation before the
// search starts: for every row, each variable's bound is improved using
// the extreme activity of the other terms; integer bounds are then
// rounded inward. Rows can also prove immediate infeasibility. The model
// keeps its shape (no rows or columns are removed), so solutions map
// back one-to-one.
//
// Propagation repeats until a fixed point or maxPasses; each pass is
// O(nonzeros).
func presolve(m *lp.Model, maxPasses int) (tightened int, infeasible bool) {
	n := m.NumVars()
	lo := make([]float64, n)
	hi := make([]float64, n)
	isInt := make([]bool, n)
	for j := 0; j < n; j++ {
		v := m.Var(lp.VarID(j))
		lo[j], hi[j] = v.Lower, v.Upper
		isInt[j] = v.Type != lp.Continuous
	}

	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for r := 0; r < m.NumRows(); r++ {
			row := m.Row(lp.RowID(r))
			// Row activity bounds from current variable bounds, tracking
			// infinite contributions separately so removing one term's
			// contribution stays well-defined.
			var minFin, maxFin float64
			minInf, maxInf := 0, 0 // counts of −inf (min) / +inf (max) contributions
			for _, t := range row.Terms {
				l, h := lo[t.Var], hi[t.Var]
				if t.Coef < 0 {
					l, h = h, l
				}
				// Contribution range is [coef·l, coef·h] after the swap.
				if math.IsInf(l, 0) {
					minInf++
				} else {
					minFin += t.Coef * l
				}
				if math.IsInf(h, 0) {
					maxInf++
				} else {
					maxFin += t.Coef * h
				}
			}
			switch row.Sense {
			case lp.LE:
				if minInf == 0 && minFin > row.RHS+feasEps(row.RHS) {
					return tightened, true
				}
			case lp.GE:
				if maxInf == 0 && maxFin < row.RHS-feasEps(row.RHS) {
					return tightened, true
				}
			case lp.EQ:
				if (minInf == 0 && minFin > row.RHS+feasEps(row.RHS)) ||
					(maxInf == 0 && maxFin < row.RHS-feasEps(row.RHS)) {
					return tightened, true
				}
			}
			// Tighten each variable against the row. For a ≤ row:
			// coef>0: x ≤ (rhs − minActWithout)/coef;
			// coef<0: x ≥ (rhs − minActWithout)/coef.
			// GE rows symmetric via maxAct; EQ rows give both.
			for _, t := range row.Terms {
				if tol.IsZero(t.Coef) {
					continue
				}
				j := t.Var
				// Activity of the other terms at their extremes: finite
				// only when j carries the sole infinite contribution.
				l, h := lo[j], hi[j]
				if t.Coef < 0 {
					l, h = h, l
				}
				minOther, maxOther := math.Inf(-1), math.Inf(1)
				if math.IsInf(l, 0) {
					if minInf == 1 {
						minOther = minFin
					}
				} else if minInf == 0 {
					minOther = minFin - t.Coef*l
				}
				if math.IsInf(h, 0) {
					if maxInf == 1 {
						maxOther = maxFin
					}
				} else if maxInf == 0 {
					maxOther = maxFin - t.Coef*h
				}
				upper := math.Inf(1)
				lower := math.Inf(-1)
				if row.Sense == lp.LE || row.Sense == lp.EQ {
					if !math.IsInf(minOther, 0) {
						bound := (row.RHS - minOther) / t.Coef
						if t.Coef > 0 {
							upper = bound
						} else {
							lower = bound
						}
					}
				}
				if row.Sense == lp.GE || row.Sense == lp.EQ {
					if !math.IsInf(maxOther, 0) {
						bound := (row.RHS - maxOther) / t.Coef
						if t.Coef > 0 {
							lower = bound
						} else {
							upper = bound
						}
					}
				}
				if isInt[j] {
					if !math.IsInf(upper, 1) {
						upper = math.Floor(upper + tol.Tighten)
					}
					if !math.IsInf(lower, -1) {
						lower = math.Ceil(lower - tol.Tighten)
					}
				}
				if upper < hi[j]-tol.Tighten {
					hi[j] = upper
					changed = true
					tightened++
				}
				if lower > lo[j]+tol.Tighten {
					lo[j] = lower
					changed = true
					tightened++
				}
				if lo[j] > hi[j]+tol.Tighten {
					return tightened, true
				}
				if lo[j] > hi[j] {
					// Within tolerance: snap.
					hi[j] = lo[j]
				}
			}
		}
		if !changed {
			break
		}
	}
	for j := 0; j < n; j++ {
		v := m.Var(lp.VarID(j))
		if !tol.Same(lo[j], v.Lower) || !tol.Same(hi[j], v.Upper) {
			m.SetBounds(lp.VarID(j), lo[j], hi[j])
		}
	}
	return tightened, false
}

// feasEps scales the infeasibility tolerance by the row magnitude.
func feasEps(rhs float64) float64 {
	return tol.RowFeas * math.Max(1, math.Abs(rhs))
}
