package milp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/lp"
)

func TestPresolveTightensBounds(t *testing.T) {
	// x + y <= 4 with x,y in [0,10]: both uppers tighten to 4.
	m := lp.NewModel("ps")
	x := m.AddContinuous("x", 0, 10, 1)
	y := m.AddContinuous("y", 0, 10, 1)
	m.AddRow("r", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)
	n, infeasible := presolve(m, 10)
	if infeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if n == 0 {
		t.Fatal("no tightening happened")
	}
	if m.Var(x).Upper != 4 || m.Var(y).Upper != 4 {
		t.Errorf("uppers = %v, %v, want 4", m.Var(x).Upper, m.Var(y).Upper)
	}
}

func TestPresolveIntegerRounding(t *testing.T) {
	// 2g <= 7 with g integer in [0,10] → g ≤ 3 (floor of 3.5).
	m := lp.NewModel("pi")
	g := m.AddVar(lp.Variable{Name: "g", Lower: 0, Upper: 10, Type: lp.Integer})
	m.AddRow("r", []lp.Term{{Var: g, Coef: 2}}, lp.LE, 7)
	presolve(m, 10)
	if m.Var(g).Upper != 3 {
		t.Errorf("g upper = %v, want 3", m.Var(g).Upper)
	}
}

func TestPresolveDetectsInfeasible(t *testing.T) {
	m := lp.NewModel("inf")
	x := m.AddContinuous("x", 0, 1, 0)
	m.AddRow("r", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 5)
	if _, infeasible := presolve(m, 10); !infeasible {
		t.Error("infeasible model not detected")
	}
}

func TestPresolveGEAndEQ(t *testing.T) {
	// x - y >= 3 with x ≤ 5 → y ≤ 2; plus a = 4 equality fixing.
	m := lp.NewModel("geq")
	x := m.AddContinuous("x", 0, 5, 0)
	y := m.AddContinuous("y", 0, 100, 0)
	a := m.AddContinuous("a", 0, 10, 0)
	m.AddRow("r1", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: -1}}, lp.GE, 3)
	m.AddRow("r2", []lp.Term{{Var: a, Coef: 1}}, lp.EQ, 4)
	presolve(m, 10)
	if m.Var(y).Upper != 2 {
		t.Errorf("y upper = %v, want 2", m.Var(y).Upper)
	}
	if m.Var(a).Lower != 4 || m.Var(a).Upper != 4 {
		t.Errorf("a bounds = [%v,%v], want fixed at 4", m.Var(a).Lower, m.Var(a).Upper)
	}
	// x must now be ≥ 3 (x ≥ 3 + y_lo).
	if m.Var(x).Lower != 3 {
		t.Errorf("x lower = %v, want 3", m.Var(x).Lower)
	}
}

func TestPresolveFreeVarsUntouched(t *testing.T) {
	// A row with a free variable has unbounded other-activity; the bounded
	// variable cannot be tightened through it.
	m := lp.NewModel("free")
	x := m.AddContinuous("x", math.Inf(-1), math.Inf(1), 0)
	y := m.AddContinuous("y", 0, 10, 0)
	m.AddRow("r", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)
	presolve(m, 10)
	if m.Var(y).Upper != 10 {
		t.Errorf("y upper changed to %v through a free variable", m.Var(y).Upper)
	}
	// But the free variable itself gains an upper bound (x ≤ 4 − y_lo).
	if m.Var(x).Upper != 4 {
		t.Errorf("x upper = %v, want 4", m.Var(x).Upper)
	}
}

// TestPresolveEdgeCases is the table-driven sweep of the degenerate
// inputs propagation has to survive: empty rows, already-fixed
// variables, and bound tightening that proves infeasibility (including
// integer rounding collapsing an interval past itself).
func TestPresolveEdgeCases(t *testing.T) {
	cases := []struct {
		name           string
		build          func() *lp.Model
		wantInfeasible bool
		check          func(t *testing.T, m *lp.Model)
	}{
		{
			name: "empty-row-feasible",
			build: func() *lp.Model {
				m := lp.NewModel("er")
				m.AddContinuous("x", 0, 10, 1)
				m.AddRow("empty", nil, lp.LE, 5) // 0 ≤ 5: vacuous
				return m
			},
			check: func(t *testing.T, m *lp.Model) {
				if m.Var(0).Upper != 10 {
					t.Errorf("empty row changed bounds: upper = %v", m.Var(0).Upper)
				}
			},
		},
		{
			name: "empty-row-infeasible",
			build: func() *lp.Model {
				m := lp.NewModel("eri")
				m.AddContinuous("x", 0, 10, 1)
				m.AddRow("empty", nil, lp.LE, -1) // 0 ≤ −1: impossible
				return m
			},
			wantInfeasible: true,
		},
		{
			name: "empty-eq-row-infeasible",
			build: func() *lp.Model {
				m := lp.NewModel("eqi")
				m.AddContinuous("x", 0, 10, 1)
				m.AddRow("empty", nil, lp.EQ, 2) // 0 = 2: impossible
				return m
			},
			wantInfeasible: true,
		},
		{
			name: "fixed-variable-propagates",
			build: func() *lp.Model {
				m := lp.NewModel("fx")
				x := m.AddContinuous("x", 3, 3, 0) // fixed at 3
				y := m.AddContinuous("y", 0, 10, 0)
				m.AddRow("r", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 5)
				return m
			},
			check: func(t *testing.T, m *lp.Model) {
				if m.Var(0).Lower != 3 || m.Var(0).Upper != 3 {
					t.Errorf("fixed variable moved: [%v,%v]", m.Var(0).Lower, m.Var(0).Upper)
				}
				if m.Var(1).Upper != 2 {
					t.Errorf("y upper = %v, want 2 (5 − fixed 3)", m.Var(1).Upper)
				}
			},
		},
		{
			name: "fixed-variable-conflict",
			build: func() *lp.Model {
				m := lp.NewModel("fc")
				x := m.AddContinuous("x", 3, 3, 0)
				m.AddRow("r", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 2) // 3 ≤ 2
				return m
			},
			wantInfeasible: true,
		},
		{
			name: "integer-rounding-collapses-interval",
			build: func() *lp.Model {
				// 0.4 ≤ x ≤ 0.6 for integer x: ceil(0.4)=1 > floor(0.6)=0.
				m := lp.NewModel("ir")
				x := m.AddVar(lp.Variable{Name: "x", Lower: 0, Upper: 1, Type: lp.Integer})
				m.AddRow("lo", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 0.4)
				m.AddRow("hi", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 0.6)
				return m
			},
			wantInfeasible: true,
		},
		{
			name: "crossing-bounds-two-rows",
			build: func() *lp.Model {
				// x ≥ 6 and x ≤ 4 tighten [0,10] to an empty interval.
				m := lp.NewModel("cb")
				x := m.AddContinuous("x", 0, 10, 0)
				m.AddRow("ge", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 6)
				m.AddRow("le", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 4)
				return m
			},
			wantInfeasible: true,
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.build()
			if err := m.Err(); err != nil {
				t.Fatalf("building model: %v", err)
			}
			_, infeasible := presolve(m, 10)
			if infeasible != tt.wantInfeasible {
				t.Fatalf("infeasible = %v, want %v", infeasible, tt.wantInfeasible)
			}
			if tt.check != nil {
				tt.check(t, m)
			}
		})
	}
}

// TestPresolvePreservesOptimum: solving with and without presolve gives
// the same objective on random MILPs.
func TestPresolvePreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		m := lp.NewModel("pp")
		nv := 2 + rng.Intn(4)
		for j := 0; j < nv; j++ {
			if rng.Intn(2) == 0 {
				m.AddBinary("", float64(rng.Intn(21)-10))
			} else {
				m.AddVar(lp.Variable{Lower: 0, Upper: float64(1 + rng.Intn(6)),
					Cost: float64(rng.Intn(21) - 10), Type: lp.Integer})
			}
		}
		rows := 1 + rng.Intn(3)
		for r := 0; r < rows; r++ {
			var terms []lp.Term
			for j := 0; j < nv; j++ {
				if c := float64(rng.Intn(9) - 4); c != 0 {
					terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: c})
				}
			}
			m.AddRow("", terms, []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)], float64(rng.Intn(13)-4))
		}
		with, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		without, err := Solve(m, &Options{DisablePresolve: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if with.Status != without.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, with.Status, without.Status)
		}
		if with.Status == lp.StatusOptimal {
			if math.Abs(with.Objective-without.Objective) > 1e-6*math.Max(1, math.Abs(without.Objective)) {
				t.Fatalf("trial %d: presolve changed optimum %v vs %v", trial, with.Objective, without.Objective)
			}
		}
	}
}

// TestPresolveMixedInfinityRows locks the signed-infinity bookkeeping in
// bound tightening: rows mixing finite and ±Inf bounds must only ever
// tighten bounds in the correct direction (a −Inf lower bound on one
// variable means the others can be compensated without limit, so their
// bounds must not move), and a degenerate infinite fixing must be caught
// as infeasibility, never silently folded into a finite activity sum.
func TestPresolveMixedInfinityRows(t *testing.T) {
	inf := math.Inf(1)
	type bounds struct{ lo, hi float64 }
	cases := []struct {
		name       string
		vars       []bounds
		coefs      []float64
		sense      lp.Sense
		rhs        float64
		wantInfeas bool
		want       []bounds // expected bounds after presolve
	}{
		{
			// x free below and above: x picks up an upper bound from y's
			// minimum, y must stay untouched (x compensates without limit).
			name:  "free-var-gets-upper-others-untouched",
			vars:  []bounds{{-inf, inf}, {0, 1}},
			coefs: []float64{1, 1},
			sense: lp.LE, rhs: 10,
			want: []bounds{{-inf, 10}, {0, 1}},
		},
		{
			// GE row: the free-below variable picks up a lower bound from
			// y's maximum; y's lower bound must not move above its 0.
			name:  "free-below-gets-lower-from-ge",
			vars:  []bounds{{-inf, 5}, {0, 2}},
			coefs: []float64{1, 1},
			sense: lp.GE, rhs: 3,
			want: []bounds{{1, 5}, {0, 2}},
		},
		{
			// Negative coefficient flips which bound is the extreme: −x+y≤4
			// with x free below bounds x from below, not above.
			name:  "negative-coef-flips-direction",
			vars:  []bounds{{-inf, 0}, {0, 10}},
			coefs: []float64{-1, 1},
			sense: lp.LE, rhs: 4,
			want: []bounds{{-4, 0}, {0, 4}},
		},
		{
			// Two free variables: nothing is provable, nothing may move.
			name:  "two-free-vars-no-tightening",
			vars:  []bounds{{-inf, inf}, {-inf, inf}},
			coefs: []float64{1, 1},
			sense: lp.LE, rhs: 5,
			want: []bounds{{-inf, inf}, {-inf, inf}},
		},
		{
			// Equality pins the free variable from both sides via the
			// other's range; the bounded variable stays untouched.
			name:  "equality-pins-free-var-both-sides",
			vars:  []bounds{{-inf, inf}, {0, 3}},
			coefs: []float64{1, 1},
			sense: lp.EQ, rhs: 7,
			want: []bounds{{4, 7}, {0, 3}},
		},
		{
			// A variable degenerately fixed at +Inf forces infinite
			// activity through a ≤ row: provably infeasible, and the +Inf
			// contribution must not be lumped with −Inf ones.
			name:  "fixed-at-plus-inf-is-infeasible",
			vars:  []bounds{{inf, inf}, {0, 1}},
			coefs: []float64{1, 1},
			sense: lp.LE, rhs: 10,
			wantInfeas: true,
		},
		{
			// Same degenerate fixing with a free-below partner: the signs
			// conflict, so nothing is provable — no infeasibility, no
			// tightening in either direction.
			name:  "conflicting-infinite-signs-prove-nothing",
			vars:  []bounds{{inf, inf}, {-inf, 0}},
			coefs: []float64{1, 1},
			sense: lp.LE, rhs: 10,
			want: []bounds{{inf, inf}, {-inf, 0}},
		},
		{
			// One −Inf lower bound among finite rows: the finite variables'
			// bounds must hold still even though minFin alone (ignoring the
			// −Inf term) would justify "tightening" them.
			name:  "minus-inf-lower-blocks-others",
			vars:  []bounds{{-inf, 2}, {0, 5}, {1, 4}},
			coefs: []float64{1, 1, 1},
			sense: lp.LE, rhs: 6,
			want: []bounds{{-inf, 2}, {0, 5}, {1, 4}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := lp.NewModel(tc.name)
			for _, b := range tc.vars {
				m.AddContinuous("", b.lo, b.hi, 1)
			}
			var terms []lp.Term
			for i, c := range tc.coefs {
				terms = append(terms, lp.Term{Var: lp.VarID(i), Coef: c})
			}
			m.AddRow("row", terms, tc.sense, tc.rhs)
			if err := m.Err(); err != nil {
				t.Fatalf("model build: %v", err)
			}
			_, infeas := presolve(m, 10)
			if infeas != tc.wantInfeas {
				t.Fatalf("infeasible = %v, want %v", infeas, tc.wantInfeas)
			}
			if tc.wantInfeas {
				return
			}
			for i, want := range tc.want {
				got := m.Var(lp.VarID(i))
				if got.Lower != want.lo || got.Upper != want.hi {
					t.Errorf("var %d bounds = [%v, %v], want [%v, %v]",
						i, got.Lower, got.Upper, want.lo, want.hi)
				}
			}
		})
	}
}
