package milp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/lp"
)

func TestPresolveTightensBounds(t *testing.T) {
	// x + y <= 4 with x,y in [0,10]: both uppers tighten to 4.
	m := lp.NewModel("ps")
	x := m.AddContinuous("x", 0, 10, 1)
	y := m.AddContinuous("y", 0, 10, 1)
	m.AddRow("r", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)
	n, infeasible := presolve(m, 10)
	if infeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if n == 0 {
		t.Fatal("no tightening happened")
	}
	if m.Var(x).Upper != 4 || m.Var(y).Upper != 4 {
		t.Errorf("uppers = %v, %v, want 4", m.Var(x).Upper, m.Var(y).Upper)
	}
}

func TestPresolveIntegerRounding(t *testing.T) {
	// 2g <= 7 with g integer in [0,10] → g ≤ 3 (floor of 3.5).
	m := lp.NewModel("pi")
	g := m.AddVar(lp.Variable{Name: "g", Lower: 0, Upper: 10, Type: lp.Integer})
	m.AddRow("r", []lp.Term{{Var: g, Coef: 2}}, lp.LE, 7)
	presolve(m, 10)
	if m.Var(g).Upper != 3 {
		t.Errorf("g upper = %v, want 3", m.Var(g).Upper)
	}
}

func TestPresolveDetectsInfeasible(t *testing.T) {
	m := lp.NewModel("inf")
	x := m.AddContinuous("x", 0, 1, 0)
	m.AddRow("r", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 5)
	if _, infeasible := presolve(m, 10); !infeasible {
		t.Error("infeasible model not detected")
	}
}

func TestPresolveGEAndEQ(t *testing.T) {
	// x - y >= 3 with x ≤ 5 → y ≤ 2; plus a = 4 equality fixing.
	m := lp.NewModel("geq")
	x := m.AddContinuous("x", 0, 5, 0)
	y := m.AddContinuous("y", 0, 100, 0)
	a := m.AddContinuous("a", 0, 10, 0)
	m.AddRow("r1", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: -1}}, lp.GE, 3)
	m.AddRow("r2", []lp.Term{{Var: a, Coef: 1}}, lp.EQ, 4)
	presolve(m, 10)
	if m.Var(y).Upper != 2 {
		t.Errorf("y upper = %v, want 2", m.Var(y).Upper)
	}
	if m.Var(a).Lower != 4 || m.Var(a).Upper != 4 {
		t.Errorf("a bounds = [%v,%v], want fixed at 4", m.Var(a).Lower, m.Var(a).Upper)
	}
	// x must now be ≥ 3 (x ≥ 3 + y_lo).
	if m.Var(x).Lower != 3 {
		t.Errorf("x lower = %v, want 3", m.Var(x).Lower)
	}
}

func TestPresolveFreeVarsUntouched(t *testing.T) {
	// A row with a free variable has unbounded other-activity; the bounded
	// variable cannot be tightened through it.
	m := lp.NewModel("free")
	x := m.AddContinuous("x", math.Inf(-1), math.Inf(1), 0)
	y := m.AddContinuous("y", 0, 10, 0)
	m.AddRow("r", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)
	presolve(m, 10)
	if m.Var(y).Upper != 10 {
		t.Errorf("y upper changed to %v through a free variable", m.Var(y).Upper)
	}
	// But the free variable itself gains an upper bound (x ≤ 4 − y_lo).
	if m.Var(x).Upper != 4 {
		t.Errorf("x upper = %v, want 4", m.Var(x).Upper)
	}
}

// TestPresolvePreservesOptimum: solving with and without presolve gives
// the same objective on random MILPs.
func TestPresolvePreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		m := lp.NewModel("pp")
		nv := 2 + rng.Intn(4)
		for j := 0; j < nv; j++ {
			if rng.Intn(2) == 0 {
				m.AddBinary("", float64(rng.Intn(21)-10))
			} else {
				m.AddVar(lp.Variable{Lower: 0, Upper: float64(1 + rng.Intn(6)),
					Cost: float64(rng.Intn(21) - 10), Type: lp.Integer})
			}
		}
		rows := 1 + rng.Intn(3)
		for r := 0; r < rows; r++ {
			var terms []lp.Term
			for j := 0; j < nv; j++ {
				if c := float64(rng.Intn(9) - 4); c != 0 {
					terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: c})
				}
			}
			m.AddRow("", terms, []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)], float64(rng.Intn(13)-4))
		}
		with, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		without, err := Solve(m, &Options{DisablePresolve: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if with.Status != without.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, with.Status, without.Status)
		}
		if with.Status == lp.StatusOptimal {
			if math.Abs(with.Objective-without.Objective) > 1e-6*math.Max(1, math.Abs(without.Objective)) {
				t.Fatalf("trial %d: presolve changed optimum %v vs %v", trial, with.Objective, without.Objective)
			}
		}
	}
}
