package milp

import (
	"math/rand"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/resilience/faultinject"
	"github.com/etransform/etransform/internal/simplex"
)

// This file exercises every reachable (Status, Limit) pair end to end —
// the contract lp.ValidLimit encodes. Each case drives a real solver
// into the terminal state rather than constructing the pair by hand, so
// a drift between the solvers and the documented pair set fails here.

// limitKnapsack returns a 30-binary knapsack whose LP relaxation is
// fractional, forcing branch & bound to open child nodes.
func limitKnapsack() *lp.Model {
	rng := rand.New(rand.NewSource(3))
	m := lp.NewModel("pairs")
	var terms []lp.Term
	for j := 0; j < 30; j++ {
		v := m.AddBinary("", -float64(1+rng.Intn(100)))
		terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(10))})
	}
	m.AddRow("w", terms, lp.LE, 40)
	return m
}

func assertPair(t *testing.T, sol *lp.Solution, status lp.Status, limit string) {
	t.Helper()
	if sol.Status != status || sol.Limit != limit {
		t.Fatalf("got (%v, %q), want (%v, %q)", sol.Status, sol.Limit, status, limit)
	}
	if !lp.ValidLimit(sol.Status, sol.Limit) {
		t.Fatalf("solver produced (%v, %q), which lp.ValidLimit rejects", sol.Status, sol.Limit)
	}
}

func TestLimitPairSimplexIterations(t *testing.T) {
	sol, err := simplex.Solve(limitKnapsack().Relax(), &simplex.Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertPair(t, sol, lp.StatusIterLimit, lp.LimitIterations)
}

func TestLimitPairSimplexWallClock(t *testing.T) {
	sol, err := simplex.Solve(limitKnapsack().Relax(), &simplex.Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	assertPair(t, sol, lp.StatusIterLimit, lp.LimitWallClock)
}

func TestLimitPairMILPNodes(t *testing.T) {
	sol := solveOrFatal(t, limitKnapsack(), &Options{
		MaxNodes: 1, GapTol: 1e-12, DisableDiving: true, Workers: 1,
	})
	assertPair(t, sol, lp.StatusNodeLimit, lp.LimitNodes)
}

func TestLimitPairMILPMemory(t *testing.T) {
	sol := solveOrFatal(t, limitKnapsack(), &Options{
		Budget: Budget{MemoryBytes: 1}, GapTol: 1e-12, DisableDiving: true, Workers: 1,
	})
	assertPair(t, sol, lp.StatusNodeLimit, lp.LimitMemory)
}

func TestLimitPairMILPWallClock(t *testing.T) {
	sol := solveOrFatal(t, limitKnapsack(), &Options{
		TimeLimit: time.Nanosecond, GapTol: 1e-12, DisableDiving: true, Workers: 1,
	})
	assertPair(t, sol, lp.StatusNodeLimit, lp.LimitWallClock)
}

// TestLimitPairMILPIterLimitPassthrough stalls the root LP itself: the
// coordinator passes the simplex pair through unchanged.
func TestLimitPairMILPIterLimitPassthrough(t *testing.T) {
	sol, err := Solve(limitKnapsack(), &Options{
		GapTol: 1e-12, DisableDiving: true, Workers: 1,
		Inject: faultinject.New(1, faultinject.Fault{Kind: faultinject.KindStall}),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertPair(t, sol, lp.StatusIterLimit, lp.LimitIterations)
}

// TestLimitPairMILPIterations stalls a *child* node LP (not the root):
// branch & bound surrenders the search solve-wide with StatusNodeLimit
// and the child's LimitIterations. The stall site is hit once per
// simplex iteration across all LPs in the solve, so the fault is armed
// just past the root's measured pivot count; the exact pass where the
// root's final optimality check lands can shift the boundary by one or
// two hits, hence the short scan.
func TestLimitPairMILPIterations(t *testing.T) {
	m := limitKnapsack()
	sink := &obs.MemorySink{}
	base := Options{GapTol: 1e-12, DisableDiving: true, Workers: 1}
	probe := base
	probe.Trace = obs.NewDeterministic(sink)
	solveOrFatal(t, m, &probe)
	rootIters := -1
	for _, e := range sink.Events() {
		if e.Kind == obs.KindPhaseEnd && e.Phase == 2 {
			rootIters = e.Iterations
			break
		}
	}
	if rootIters < 0 {
		t.Fatal("no phase_end event for the root LP")
	}
	for after := rootIters + 1; after <= rootIters+8; after++ {
		opts := base
		opts.Inject = faultinject.New(1, faultinject.Fault{
			Kind: faultinject.KindStall, After: after, Count: -1,
		})
		sol, err := Solve(m, &opts)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status == lp.StatusIterLimit {
			continue // fired inside the root after all; move past it
		}
		assertPair(t, sol, lp.StatusNodeLimit, lp.LimitIterations)
		return
	}
	t.Fatalf("no stall offset in [%d, %d] reached a child LP", rootIters+1, rootIters+8)
}

// TestLimitEmptyOnCleanOutcomes pins Limit == "" for conclusive solves.
func TestLimitEmptyOnCleanOutcomes(t *testing.T) {
	sol := solveOrFatal(t, limitKnapsack(), &Options{Workers: 1})
	assertPair(t, sol, lp.StatusOptimal, "")

	infeas := lp.NewModel("infeas")
	a := infeas.AddBinary("a", 1)
	infeas.AddRow("r", []lp.Term{{Var: a, Coef: 1}}, lp.GE, 2)
	sol = solveOrFatal(t, infeas, nil)
	assertPair(t, sol, lp.StatusInfeasible, "")
}
