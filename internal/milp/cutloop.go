package milp

import (
	"fmt"
	"math"

	"github.com/etransform/etransform/internal/certify"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp/cuts"
	"github.com/etransform/etransform/internal/tol"
)

// buildStash collects the known integer-feasible points every accepted
// cut must preserve: each feasible caller-supplied warm start (the
// planner passes the greedy baseline plan this way) and the current
// incumbent, with integer variables snapped exactly.
func (c *coordinator) buildStash() {
	add := func(x []float64) {
		if len(x) != c.model.NumVars() {
			return
		}
		snapped := make([]float64, len(x))
		copy(snapped, x)
		for _, v := range c.intVars {
			snapped[v] = math.Round(snapped[v])
		}
		if c.model.CheckFeasible(snapped, tol.Accept) != nil {
			return
		}
		c.stash = append(c.stash, snapped)
	}
	for _, ws := range c.opts.WarmStarts {
		add(ws)
	}
	c.mu.Lock()
	inc := c.incumbent
	c.mu.Unlock()
	if inc != nil {
		add(inc)
	}
}

// rootCuts runs cutting-plane rounds at the root: separate Gomory
// mixed-integer cuts from the optimal tableau and cover cuts from the
// knapsack rows, screen them, verify every survivor against the stash
// of known integer-feasible points, append the batch to w0's working
// model, and re-solve through the warm-start path — the previous basis
// extended by one slack per new row stays dual feasible ([B 0; C I] is
// block lower triangular with zero-cost slacks), so each re-solve is a
// handful of dual pivots, not a fresh two-phase solve.
//
// After the rounds, cuts the pool retired (slack for MaxAge consecutive
// re-solves) are dropped and the survivors become c.cutModel, the model
// every tree worker relaxes. Dropping a retired cut preserves the final
// LP optimum (it was not binding there), so the returned strengthened
// root solution remains valid for the slimmer model.
//
// A mid-round failure (deadline expiry inside a re-solve, or a
// numerically sick cut LP) rolls the offending batch back and stops
// cutting; the search proceeds from the last good round. A cut that
// eliminates a stashed feasible point is different — that is a
// separation bug, returned as a hard error so the planner's fallback
// pipeline takes over rather than silently searching a mutilated tree.
func (c *coordinator) rootCuts(w0 *worker, root *lp.Solution) (*lp.Solution, error) {
	o := c.opts.Cuts.WithDefaults(c.model.NumVars())
	isInt := make([]bool, c.model.NumVars())
	for _, v := range c.intVars {
		isInt[v] = true
	}
	c.buildStash()
	pool := cuts.NewPool()
	cur := root
	for round := 0; round < o.MaxRounds; round++ {
		if c.expired() || c.ctx.Err() != nil {
			break
		}
		if v, _ := c.mostFractional(cur.X); v < 0 {
			break // the cut LP optimum is already integral
		}
		var cand []cuts.Cut
		if view := w0.sx.TableauView(); view != nil {
			cand = cuts.SeparateGomory(w0.work, isInt, view, &o)
		}
		cand = append(cand, cuts.SeparateCovers(w0.work, isInt, cur.X, &o)...)
		cand = cuts.SelectBest(cand, o.MaxPerRound)

		prev := w0.work
		next := prev.Clone()
		added := 0
		for _, ct := range cand {
			if !pool.Add(ct) {
				continue // an equivalent cut is already applied
			}
			if err := certify.CheckCut(ct.Row(), c.stash, nil); err != nil {
				return nil, fmt.Errorf("milp: root cut round %d: %w", round+1, err)
			}
			next.AddRow(ct.Name, ct.Terms, ct.Sense, ct.RHS)
			added++
		}
		if added == 0 {
			break
		}
		if err := next.Err(); err != nil {
			return nil, fmt.Errorf("milp: appending root cuts: %w", err)
		}
		basis := w0.sx.Basis().ExtendRows(added)
		sol, err := w0.sx.SolveFrom(next, basis)
		if err != nil {
			return nil, err
		}
		w0.iterations += sol.Iterations
		if sol.Status != lp.StatusOptimal || !finiteSolution(sol) {
			// Deadline mid-round or a numerically sick cut LP (a valid-cut
			// LP can only be infeasible if the MILP itself is, but we do
			// not act on that inference from freshly generated rows): roll
			// the batch back and keep the last good round's model/solution.
			pool.DropLast(added)
			w0.work = prev
			break
		}
		c.cutsSeparated += int64(added)
		w0.work = next
		cur = sol
		pool.Observe(cur.X, o.MaxAge)
	}

	active := pool.Active()
	c.cutsActive = int64(len(active))
	if len(active) > 0 {
		cm := c.model.Clone()
		for _, ct := range active {
			cm.AddRow(ct.Name, ct.Terms, ct.Sense, ct.RHS)
		}
		if err := cm.Err(); err != nil {
			return nil, fmt.Errorf("milp: building cut model: %w", err)
		}
		c.cutModel = cm
		if pool.Retired() > 0 {
			// Align w0's working model with what the tree workers will see.
			// The solver's basis no longer matches the row count, so w0's
			// next LP starts cold — a root-only cost paid only when aging
			// actually retired something.
			w0.work = cm.Relax()
		}
	}
	return cur, nil
}
