package milp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/obs"
)

// randomObsModel builds a random knapsack-flavored MILP big enough that
// many seeds genuinely branch (nodes > 0), so the per-worker counters
// have something to reconcile.
func randomObsModel(rng *rand.Rand) *lp.Model {
	m := lp.NewModel("obs-prop")
	n := 8 + rng.Intn(8)
	var terms []lp.Term
	for j := 0; j < n; j++ {
		v := m.AddBinary("", -float64(1+rng.Intn(50)))
		terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(9))})
	}
	m.AddRow("w", terms, lp.LE, float64(n+rng.Intn(2*n)))
	if rng.Intn(2) == 0 {
		var t2 []lp.Term
		for j := 0; j < n; j++ {
			if c := rng.Intn(5) - 1; c != 0 {
				t2 = append(t2, lp.Term{Var: lp.VarID(j), Coef: float64(c)})
			}
		}
		if len(t2) > 0 {
			m.AddRow("w2", t2, lp.LE, float64(n))
		}
	}
	return m
}

// TestObsReconciliation is the metrics/trace/solution reconciliation
// property: across 50 seeded solves at Workers 1 and 4, every quantity
// the observability layer reports must agree with the lp.Solution the
// solver returned — same totals, same per-worker split, same incumbent
// count, monotone incumbents, and a (Status, Limit) pair ValidLimit
// accepts.
func TestObsReconciliation(t *testing.T) {
	const seeds = 50
	for _, workers := range []int{1, 4} {
		for seed := int64(1); seed <= seeds; seed++ {
			m := randomObsModel(rand.New(rand.NewSource(seed)))
			met := obs.NewMetrics()
			sink := &obs.MemorySink{}
			sol, err := Solve(m, &Options{
				Workers: workers,
				Trace:   obs.NewDeterministic(sink),
				Metrics: met,
			})
			if err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			events := sink.Events()
			// Keep the seed in every failure so a property violation
			// replays with one -run invocation.
			fatalf := func(format string, args ...any) {
				t.Helper()
				t.Fatalf("workers=%d seed=%d: %s", workers, seed, fmt.Sprintf(format, args...))
			}

			if !lp.ValidLimit(sol.Status, sol.Limit) {
				fatalf("invalid pair (%v, %q)", sol.Status, sol.Limit)
			}

			// Counters mirror the solution's totals exactly.
			if got := met.Counter(obs.MetricMILPSolves); got != 1 {
				fatalf("milp.solves = %d", got)
			}
			if got := met.Counter(obs.MetricMILPNodes); got != int64(sol.Nodes) {
				fatalf("milp.nodes = %d, sol.Nodes = %d", got, sol.Nodes)
			}
			if got := met.Counter(obs.MetricSimplexPivots); got != int64(sol.Iterations) {
				fatalf("simplex.pivots = %d, sol.Iterations = %d", got, sol.Iterations)
			}
			if got := met.Counter(obs.MetricMILPWallMicros); got != sol.WallTime.Microseconds() {
				fatalf("milp.wall_us = %d, sol.WallTime = %v", got, sol.WallTime)
			}
			if got := met.Counter(obs.MetricMILPWorkMicros); got != sol.WorkTime.Microseconds() {
				fatalf("milp.work_us = %d, sol.WorkTime = %v", got, sol.WorkTime)
			}

			// Per-worker node counters reproduce NodesPerWorker, whose
			// entries sum to exactly Nodes (pure-LP passthroughs report
			// Nodes=1 with a nil split and no per-worker counters).
			sum := 0
			for i, n := range sol.NodesPerWorker {
				sum += n
				name := obs.MetricMILPNodesWorkerPrefix + strconv.Itoa(i+1)
				if got := met.Counter(name); got != int64(n) {
					fatalf("%s = %d, NodesPerWorker[%d] = %d", name, got, i, n)
				}
			}
			if sol.NodesPerWorker != nil && sum != sol.Nodes {
				fatalf("NodesPerWorker sums to %d, Nodes = %d", sum, sol.Nodes)
			}

			// Gauges.
			if g, ok := met.Gauge(obs.MetricMILPWorkers); !ok || int(g) != sol.Workers {
				fatalf("milp.workers gauge = %v (%v), sol.Workers = %d", g, ok, sol.Workers)
			}
			if g, ok := met.Gauge(obs.MetricMILPPeakQueue); !ok || int(g) != sol.PeakQueueDepth {
				fatalf("milp.peak_queue_depth gauge = %v (%v), sol = %d", g, ok, sol.PeakQueueDepth)
			}

			// The pivots histogram reconciles with the pivot counter.
			snap := met.Snapshot()
			h, ok := snap.Histograms[obs.MetricHistPivotsPerSolve]
			if !ok {
				fatalf("missing %s histogram", obs.MetricHistPivotsPerSolve)
			}
			if h.Count != met.Counter(obs.MetricSimplexSolves) {
				fatalf("histogram count %d, simplex.solves %d", h.Count, met.Counter(obs.MetricSimplexSolves))
			}
			if int64(h.Sum) != met.Counter(obs.MetricSimplexPivots) {
				fatalf("histogram sum %v, simplex.pivots %d", h.Sum, met.Counter(obs.MetricSimplexPivots))
			}

			// Trace event counts match counters; incumbents are strictly
			// improving; exactly one solve_start/solve_end bracket.
			var starts, ends, incumbents, bounds int
			for _, e := range events {
				switch e.Kind {
				case obs.KindSolveStart:
					starts++
				case obs.KindSolveEnd:
					ends++
					if e.Status != sol.Status.String() {
						fatalf("solve_end status %q, sol %v", e.Status, sol.Status)
					}
				case obs.KindIncumbent:
					incumbents++
				case obs.KindBound:
					bounds++
				}
			}
			if starts != 1 || ends != 1 {
				fatalf("%d solve_start, %d solve_end events", starts, ends)
			}
			if int64(incumbents) != met.Counter(obs.MetricMILPIncumbents) {
				fatalf("%d incumbent events, counter %d", incumbents, met.Counter(obs.MetricMILPIncumbents))
			}
			if int64(bounds) != met.Counter(obs.MetricMILPBoundImprove) {
				fatalf("%d bound events, counter %d", bounds, met.Counter(obs.MetricMILPBoundImprove))
			}
			inc := obs.Incumbents(events)
			for i := 1; i < len(inc); i++ {
				if inc[i] >= inc[i-1] {
					fatalf("incumbents not strictly improving: %v", inc)
				}
			}

			// Work is bounded by workers × wall (with scheduler slack).
			if sol.WorkTime > sol.WallTime*time.Duration(sol.Workers)+10*time.Millisecond {
				fatalf("WorkTime %v exceeds %d × WallTime %v", sol.WorkTime, sol.Workers, sol.WallTime)
			}
		}
	}
}

// TestObsDeterministicReplay solves the same model twice at Workers=1
// with deterministic tracers and requires byte-equal event streams — the
// replay contract behind the CLIs' -trace flag.
func TestObsDeterministicReplay(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		var streams [2][]obs.Event
		for run := 0; run < 2; run++ {
			m := randomObsModel(rand.New(rand.NewSource(seed)))
			sink := &obs.MemorySink{}
			if _, err := Solve(m, &Options{Workers: 1, Trace: obs.NewDeterministic(sink)}); err != nil {
				t.Fatalf("seed=%d run=%d: %v", seed, run, err)
			}
			streams[run] = sink.Events()
		}
		if len(streams[0]) != len(streams[1]) {
			t.Fatalf("seed=%d: %d vs %d events", seed, len(streams[0]), len(streams[1]))
		}
		for i := range streams[0] {
			a, err := json.Marshal(streams[0][i])
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(streams[1][i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("seed=%d: event %d differs: %s vs %s", seed, i, a, b)
			}
		}
	}
}

// TestTraceRootClosedZeroGap pins the zero-value trace bugfix end to
// end: a solve whose LP relaxation is already integral closes at the
// root with objective 0, 0 nodes and an exactly-zero certified gap —
// and every one of those zeros must appear explicitly in the JSONL
// stream. Before the fix, omitempty dropped all three, making a
// root-closed optimal solve indistinguishable from a gap-unknown one.
func TestTraceRootClosedZeroGap(t *testing.T) {
	m := lp.NewModel("root-closed")
	// min x + y over binaries with a slack cover row: the relaxation's
	// optimum (0,0) is integral, so branch & bound never opens a node.
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddRow("cap", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 2)

	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	sol, err := Solve(m, &Options{Workers: 1, Trace: obs.NewDeterministic(sink)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || sol.Objective != 0 {
		t.Fatalf("status %v objective %v, want optimal 0", sol.Status, sol.Objective)
	}
	if sol.Nodes != 0 || sol.Gap != 0 {
		t.Fatalf("nodes=%d gap=%v, want a root-closed zero-gap solve", sol.Nodes, sol.Gap)
	}
	var end string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.Contains(line, `"kind":"solve_end"`) {
			end = line
		}
	}
	if end == "" {
		t.Fatalf("no solve_end in trace:\n%s", buf.String())
	}
	for _, want := range []string{`"value":0`, `"nodes":0`, `"gap":0`, `"status":"optimal"`} {
		if !strings.Contains(end, want) {
			t.Errorf("solve_end %s misses %s", end, want)
		}
	}

	// The parsed view agrees: presence-aware fields carry the zeros.
	evs, err := obs.Replay(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	last := evs[len(evs)-1]
	if last.Kind != obs.KindSolveEnd {
		t.Fatalf("last event %+v, want solve_end", last)
	}
	if last.Value == nil || *last.Value != 0 || last.Gap == nil || *last.Gap != 0 || last.Nodes == nil || *last.Nodes != 0 {
		t.Fatalf("solve_end zeros lost: %+v", last)
	}
}
