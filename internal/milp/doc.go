// Package milp implements a parallel branch & bound mixed-integer
// linear-program solver over the bounded-variable simplex in package
// simplex. Together they form the repository's optimization engine — the
// substitute for the CPLEX solver the paper invokes (§V), including
// CPLEX's ability to spread the tree search over every available core.
//
// The search is best-first on the LP relaxation bound with
// most-fractional branching and a diving primal heuristic that usually
// produces a strong incumbent at the root. Termination is exact: when
// the node queue empties, the incumbent is optimal; otherwise the
// reported Gap bounds the distance to the optimum.
//
// # Concurrency architecture
//
// A solve is a coordinator plus Options.Workers worker goroutines
// (default runtime.NumCPU()):
//
//	   ┌───────────────  coordinator  ───────────────┐
//	   │ best-bound node queue · incumbent · bounds  │
//	   │ (one mutex; workers claim and commit nodes) │
//	   └──┬───────────────┬────────────────┬─────────┘
//	 claim/commit    claim/commit     claim/commit
//	   ┌──┴───┐        ┌──┴───┐         ┌──┴───┐
//	   │ w[0] │        │ w[1] │   ...   │ w[n] │
//	   └──────┘        └──────┘         └──────┘
//	each worker owns: a private relaxed model clone whose
//	bounds it mutates, and a reusable simplex.Solver
//
// The coordinator state (open-node priority queue, incumbent, global
// lower bound, node/iteration counters) lives behind one mutex. Workers
// loop: claim the best open node (priority: smallest LP bound, ties
// broken by node creation index so the order is total), LP-solve it
// against their private model clone outside the lock, then commit the
// result — publish an improved incumbent, push children, or close the
// node — under the lock again. All LP work, diving and feasibility
// checking happens outside the lock; lock hold times are O(log queue)
// heap operations.
//
// Incumbent publication: a candidate point is snapped to integrality and
// re-verified against the original model *outside* the lock, then
// installed only if it still strictly beats the current incumbent at
// install time (double-checked under the lock). The incumbent objective
// is therefore monotonically non-increasing, and the global lower bound
// — the minimum LP bound over queued and in-flight nodes — is
// monotonically non-decreasing, which keeps the reported gap meaningful
// at every instant.
//
// Pruning uses a snapshot of the incumbent objective taken when the
// worker starts processing a node. A stale snapshot can only make
// pruning *less* aggressive (the incumbent only improves), so no node
// that could contain a better solution is ever discarded; at worst a few
// redundant nodes are solved and then pruned at commit time.
//
// # Determinism
//
// With Workers=1 the search is fully deterministic: one worker drains
// the queue in the total (bound, creation-index) order, so two runs of
// the same model produce identical node counts, iteration counts and
// solutions. With Workers>1 the *exploration order* depends on
// scheduling, so node counts vary run to run — but the certified result
// does not: the solver only terminates optimal when the global lower
// bound is within GapTol of the incumbent, every incumbent is verified
// against the original model before installation, and pruning against
// the snapshot bound never discards an improving subtree. Any worker
// count therefore yields the same certified objective (within GapTol,
// which defaults to effectively exact). The race stress tests assert
// this for Workers ∈ {1, 2, 8} and internal/certify re-checks every
// planner solution independently.
//
// # Goroutine safety and panics
//
// Solve and SolveContext are safe for concurrent use; each call builds
// its own coordinator and workers. The model passed in is cloned before
// presolve, so the caller's model is never mutated. A panic inside a
// worker goroutine does not cross the API boundary: the worker recovers
// it, converts it into an error on the coordinator, and the solve
// returns that error (enforced by the nopanic etlint analyzer plus the
// recover guard in runWorker).
//
// # Cancellation
//
// SolveContext observes ctx between nodes. On cancellation it returns
// the best incumbent found so far (Status lp.StatusCanceled, X set when
// an incumbent exists) together with ctx.Err(), so callers can
// distinguish "canceled with a usable partial result" from "canceled
// empty-handed". Options.TimeLimit, by contrast, is a graceful budget:
// hitting it returns a normal solution with Status lp.StatusNodeLimit
// and no error.
package milp
