package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/model"
)

// optionsFingerprint is the part of the planning configuration that can
// change the answer, flattened to hashable values. Observability hooks
// (trace, metrics, fault injection) are deliberately absent: they never
// alter the plan, so two solves differing only in instrumentation share
// a cache entry.
type optionsFingerprint struct {
	DR               bool             `json:"dr"`
	DedicatedBackups bool             `json:"dedicated"`
	ShadowPrices     bool             `json:"shadow"`
	Omega            float64          `json:"omega"`
	Formulation      core.Formulation `json:"formulation"`
	Aggregate        bool             `json:"aggregate"`
	CandidateK       int              `json:"candidates"`
	GapTol           float64          `json:"gap"`
	MaxNodes         int              `json:"nodes"`
	TimeLimit        time.Duration    `json:"timelimit"`
	Workers          int              `json:"workers"`
	ReuseBasis       bool             `json:"warmlp"`
	Cuts             bool             `json:"cuts"`
	Kernel           bool             `json:"kernel"`
	MemoryBytes      int64            `json:"membudget"`
}

// cacheKey derives the content-hash key for one (state, options) pair:
// the state's canonical hash (field-order and whitespace independent, see
// model.CanonicalBytes) combined with the option fingerprint, FNV-64a
// over both. Any semantic change to either input moves the key.
func cacheKey(state *model.AsIsState, opts core.Options) (string, error) {
	stateBytes, err := model.CanonicalBytes(state)
	if err != nil {
		return "", err
	}
	fp := optionsFingerprint{
		DR:               opts.DR,
		DedicatedBackups: opts.DedicatedBackups,
		ShadowPrices:     opts.ComputeShadowPrices,
		Omega:            opts.Omega,
		Formulation:      opts.Formulation,
		Aggregate:        opts.Aggregate,
		CandidateK:       opts.CandidateK,
		GapTol:           opts.Solver.GapTol,
		MaxNodes:         opts.Solver.MaxNodes,
		TimeLimit:        opts.Solver.TimeLimit,
		Workers:          opts.Solver.Workers,
		ReuseBasis:       opts.Solver.ReuseBasis,
		Cuts:             opts.Solver.Cuts.Enable,
		Kernel:           opts.Solver.Kernel.Enable,
		MemoryBytes:      opts.Solver.Budget.MemoryBytes,
	}
	fpBytes, err := json.Marshal(fp)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(stateBytes)
	h.Write([]byte{0}) // domain separator between state and options
	h.Write(fpBytes)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// planCache maps cache keys to finished certified plans. Only clean
// plans — no degradation report at all — are stored: a degraded or even
// merely recovered solve depends on budget timing and retry trajectory,
// so replaying its bytes to a later identical submission would present
// one run's luck as the model's answer.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	plan      *model.Plan
	planBytes []byte // exact bytes WritePlan produced for the solving job
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[string]*cacheEntry)}
}

// get returns the entry for key, or nil.
func (c *planCache) get(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}

// put stores a finished plan under key. First writer wins: concurrent
// identical submissions race benignly, and the bytes any later reader
// sees are one specific solve's output.
func (c *planCache) put(key string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; !dup {
		c.entries[key] = e
	}
}

// len reports the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
