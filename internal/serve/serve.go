// Package serve implements planning as a service: a long-running HTTP
// daemon that accepts as-is states, queues them onto a bounded solver
// pool, and returns certified transformation plans — the same pipeline,
// certificates and degradation reports the etransform CLI produces, but
// resident, so repeated and incremental planning is cheap.
//
// Three properties define the service:
//
//   - Plan fidelity: a plan fetched from GET /v1/plans/{id}/plan is
//     byte-identical to what `etransform -plan` writes for the same
//     state and options (the per-job solver runs without a metrics
//     registry precisely so no extra stats leak into the bytes).
//   - Content-hash caching: submissions are keyed by the canonical hash
//     of the state (field order and formatting independent) plus an
//     option fingerprint; a clean solved plan is replayed to identical
//     later submissions without solving, with hit/miss counters in the
//     serve.* metrics.
//   - Warm re-planning: POST /v1/plans?prev=<id> seeds the new solve
//     with the previous job's assignment (core.Planner.SeedPlan) and
//     turns on basis reuse, so small edits re-prove optimality quickly
//     instead of starting from nothing.
//
// Endpoints:
//
//	POST   /v1/plans[?prev=<id>]   submit a state, get a job id (202;
//	                               200 when answered from cache, 429
//	                               when the queue is full)
//	GET    /v1/plans/{id}          job status + degradation report
//	                               (203 for a degraded terminal plan,
//	                               500 for a failed one)
//	GET    /v1/plans/{id}/plan     the plan JSON, CLI-byte-identical
//	GET    /v1/plans/{id}/events   JSONL trace stream; ?from=N resumes,
//	                               ?follow=0 returns without waiting
//	DELETE /v1/plans/{id}          forget a job
//	GET    /v1/metrics             serve.* metrics snapshot
//	GET    /v1/healthz             liveness + queue/cache occupancy
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
)

// Config configures a Server.
type Config struct {
	// Core is the planning configuration applied to every job (the
	// daemon-level analog of the CLI flags). Per-job trace and metrics
	// hooks inside Core.Solver are overridden by the server.
	Core core.Options
	// Queue bounds the number of jobs waiting to solve (default 64).
	// Submissions beyond it are rejected with 429, never blocked.
	Queue int
	// Solvers is the number of concurrent solves (default 1). Total
	// solver parallelism is Solvers × Core.Solver.Workers.
	Solvers int
	// Metrics receives the serve.* counters and gauges. When nil a
	// fresh registry is created; Metrics() returns it either way.
	Metrics *obs.Metrics
}

// Server is the planning daemon. Create with New, expose via Handler,
// stop with Close.
type Server struct {
	cfg   Config
	met   *obs.Metrics
	cache *planCache

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *job
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	closed bool
}

// New starts a Server's solver pool and returns it.
func New(cfg Config) *Server {
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.Solvers <= 0 {
		cfg.Solvers = 1
	}
	met := cfg.Metrics
	if met == nil {
		met = obs.NewMetrics()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		met:    met,
		cache:  newPlanCache(),
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *job, cfg.Queue),
		jobs:   make(map[string]*job),
	}
	for i := 0; i < cfg.Solvers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.met.SetGauge(obs.MetricServeQueueDepth, float64(len(s.queue)))
				s.solve(ctx, j)
			}
		}()
	}
	return s
}

// Close stops accepting jobs, cancels in-flight solves and waits for
// the solver pool to drain. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	close(s.queue)
	s.wg.Wait()
}

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *obs.Metrics { return s.met }

// Warm solves a state synchronously on the caller's goroutine, outside
// the queue, populating the plan cache exactly as a clean submitted job
// would. It backs the daemon's -preload flag. The solve counts in the
// serve.* job counters (as a submitted-and-finished job) but is never
// registered under a job id. A degraded plan warms nothing but is not
// an error; a failed solve is.
func (s *Server) Warm(ctx context.Context, state *model.AsIsState) error {
	key, err := cacheKey(state, s.cfg.Core)
	if err != nil {
		return err
	}
	if s.cache.get(key) != nil {
		return nil
	}
	j := &job{
		id:       "warm",
		state:    state,
		cacheKey: key,
		tail:     obs.NewTailSink(),
		status:   StateQueued,
	}
	s.met.Add(obs.MetricServeJobsSubmitted, 1)
	s.met.Add(obs.MetricServeCacheMisses, 1)
	s.solve(ctx, j)
	if st := j.snapshot(); st.State == StateFailed {
		return fmt.Errorf("serve: warm solve of %s failed: %s", state.Name, st.Error)
	}
	return nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plans", s.handleSubmit)
	mux.HandleFunc("GET /v1/plans/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/plans/{id}/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/plans/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/plans/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// jsonError writes a {"error": ...} body with the given status.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleSubmit accepts an as-is state and returns a job. The body goes
// through the same decode + validation as the CLI's -state file; ?prev=
// names an earlier job whose plan seeds this solve.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	state, err := model.ReadState(r.Body)
	if err != nil {
		s.met.Add(obs.MetricServeJobsRejected, 1)
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := cacheKey(state, s.cfg.Core)
	if err != nil {
		s.met.Add(obs.MetricServeJobsRejected, 1)
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var seed *model.Plan
	if prev := r.URL.Query().Get("prev"); prev != "" {
		prevJob := s.lookup(prev)
		if prevJob == nil {
			s.met.Add(obs.MetricServeJobsRejected, 1)
			jsonError(w, http.StatusBadRequest, "unknown previous job %q", prev)
			return
		}
		prevJob.mu.Lock()
		seed = prevJob.plan
		prevJob.mu.Unlock()
		if seed == nil {
			s.met.Add(obs.MetricServeJobsRejected, 1)
			jsonError(w, http.StatusConflict, "previous job %q has no plan to seed from (state %s)", prev, prevJob.snapshot().State)
			return
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		jsonError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.nextID++
	j := &job{
		id:       fmt.Sprintf("p%d", s.nextID),
		state:    state,
		cacheKey: key,
		seed:     seed,
		tail:     obs.NewTailSink(),
		status:   StateQueued,
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.met.Add(obs.MetricServeJobsSubmitted, 1)

	// Cold submissions consult the cache; a hit answers immediately
	// with the stored solve's bytes and an already-terminal job.
	if seed == nil {
		if e := s.cache.get(key); e != nil {
			s.met.Add(obs.MetricServeCacheHits, 1)
			j.mu.Lock()
			j.status = StateDone
			j.plan = e.plan
			j.planBytes = e.planBytes
			j.cached = true
			j.mu.Unlock()
			j.tail.Close()
			writeJSON(w, http.StatusOK, j.snapshot())
			return
		}
		s.met.Add(obs.MetricServeCacheMisses, 1)
	}

	select {
	case s.queue <- j:
		s.met.SetGauge(obs.MetricServeQueueDepth, float64(len(s.queue)))
		writeJSON(w, http.StatusAccepted, j.snapshot())
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.met.Add(obs.MetricServeJobsRejected, 1)
		jsonError(w, http.StatusTooManyRequests, "queue full (%d jobs waiting)", s.cfg.Queue)
	}
}

// lookup returns the job with the given id, or nil.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		jsonError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st := j.snapshot()
	code := http.StatusOK
	switch st.State {
	case StateDegraded:
		// The HTTP analog of the CLI's exit code 3: you got a plan, it
		// certifies, but it is not a clean proven optimum.
		code = http.StatusNonAuthoritativeInfo
	case StateFailed:
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, st)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		jsonError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	planBytes := j.planBytes
	status := j.status
	j.mu.Unlock()
	if planBytes == nil {
		if status == StateFailed {
			jsonError(w, http.StatusInternalServerError, "job %s failed: %s", j.id, j.snapshot().Error)
			return
		}
		jsonError(w, http.StatusConflict, "job %s is %s; no plan yet", j.id, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(planBytes)
}

// handleEvents streams the job's trace as JSON Lines. ?from=N skips the
// first N events; by default the stream follows live until the job
// reaches a terminal state, ?follow=0 returns whatever exists now.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		jsonError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			jsonError(w, http.StatusBadRequest, "bad from=%q", q)
			return
		}
		from = n
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for {
		evs, done, changed := j.tail.Since(from)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		from += len(evs)
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done || !follow {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.jobs[id]
	delete(s.jobs, id)
	s.mu.Unlock()
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.met.Snapshot().WriteJSON(w); err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"jobs":   jobs,
		"queued": len(s.queue),
		"cached": s.cache.len(),
	})
}
