package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
)

// testOptions are the per-job planning options every test daemon runs
// with: deterministic single-worker solves so plan bytes are comparable
// across runs.
func testOptions() core.Options {
	return core.Options{
		Aggregate: true,
		Solver:    milp.Options{GapTol: 1e-3, MaxNodes: 20000, TimeLimit: time.Minute, Workers: 1},
	}
}

// startServer boots a daemon over httptest and tears both down with the
// test.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// stateBytes renders a generated state the way a client would POST it.
func stateBytes(t *testing.T, scale float64) []byte {
	t.Helper()
	st, err := datagen.Enterprise1().Scaled(scale).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// submit POSTs a state and decodes the job status, asserting the HTTP
// code.
func submit(t *testing.T, hs *httptest.Server, body []byte, query string, wantCode int) jobStatus {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/plans"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST /v1/plans%s = %d, want %d: %s", query, resp.StatusCode, wantCode, raw)
	}
	var st jobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("bad job status %s: %v", raw, err)
	}
	return st
}

// waitTerminal polls a job until it leaves the queue/solve states,
// returning the final status and its HTTP code.
func waitTerminal(t *testing.T, hs *httptest.Server, id string) (jobStatus, int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(hs.URL + "/v1/plans/" + id)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st jobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("bad status %s: %v", raw, err)
		}
		if st.State != StateQueued && st.State != StateSolving {
			return st, resp.StatusCode
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchPlan GETs a finished job's plan bytes.
func fetchPlan(t *testing.T, hs *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(hs.URL + "/v1/plans/" + id + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET plan = %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// normalize zeroes the machine-dependent wall-clock fields of a plan
// document (the same convention as the CLI golden tests) and re-encodes.
func normalize(t *testing.T, planJSON []byte) []byte {
	t.Helper()
	plan, err := model.ReadPlan(bytes.NewReader(planJSON))
	if err != nil {
		t.Fatal(err)
	}
	plan.Stats.WallMillis = 0
	plan.Stats.WorkMillis = 0
	if d := plan.Stats.Degradation; d != nil {
		for i := range d.Attempts {
			d.Attempts[i].Millis = 0
		}
	}
	var buf bytes.Buffer
	if err := model.WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSubmitPollFetch is the end-to-end happy path: POST enterprise1,
// poll to done, fetch the plan, and require it to match — up to timing
// fields — what the core planner produces directly for the same state
// and options (the CLI-parity contract).
func TestSubmitPollFetch(t *testing.T) {
	srv, hs := startServer(t, Config{Core: testOptions()})
	body := stateBytes(t, 0.1)

	st := submit(t, hs, body, "", http.StatusAccepted)
	if st.State != StateQueued || !strings.HasPrefix(st.ID, "p") {
		t.Fatalf("fresh job = %+v", st)
	}
	final, code := waitTerminal(t, hs, st.ID)
	if final.State != StateDone || code != http.StatusOK {
		t.Fatalf("terminal = %+v (HTTP %d)", final, code)
	}
	if final.Degradation != nil {
		t.Fatalf("clean solve carries degradation: %+v", final.Degradation)
	}
	served := fetchPlan(t, hs, st.ID)

	// Reference: the same solve straight through the planner.
	refState, err := model.ReadState(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	planner, err := core.New(refState, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	refPlan, err := planner.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	if err := model.WritePlan(&ref, refPlan); err != nil {
		t.Fatal(err)
	}
	if got, want := normalize(t, served), normalize(t, ref.Bytes()); !bytes.Equal(got, want) {
		t.Fatalf("served plan differs from direct solve:\nserved: %.300s\ndirect: %.300s", got, want)
	}

	// The trace stream is complete and replayable: seq 1..n with a
	// solve_end, exactly as a -trace file would be.
	resp, err := http.Get(hs.URL + "/v1/plans/" + st.ID + "/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs, err := obs.Replay(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || final.Events != len(evs) {
		t.Fatalf("%d streamed events, status reported %d", len(evs), final.Events)
	}
	sawEnd := false
	for _, e := range evs {
		if e.Kind == obs.KindSolveEnd {
			sawEnd = true
		}
	}
	if !sawEnd {
		t.Fatal("no solve_end in streamed trace")
	}
	if srv.Metrics().Counter(obs.MetricServeJobsDone) != 1 {
		t.Fatalf("serve.jobs_done = %d", srv.Metrics().Counter(obs.MetricServeJobsDone))
	}
}

// TestCacheHitOnResubmit pins the content-hash cache: resubmitting the
// same model — even reformatted — answers 200 immediately with the
// cached job bytes and increments serve.cache_hits exactly once.
func TestCacheHitOnResubmit(t *testing.T) {
	srv, hs := startServer(t, Config{Core: testOptions()})
	body := stateBytes(t, 0.1)

	first := submit(t, hs, body, "", http.StatusAccepted)
	waitTerminal(t, hs, first.ID)
	firstPlan := fetchPlan(t, hs, first.ID)
	if hits := srv.Metrics().Counter(obs.MetricServeCacheHits); hits != 0 {
		t.Fatalf("cache_hits = %d before any resubmit", hits)
	}

	// Reformat the same document: decode + re-encode compact. Same
	// model, different bytes on the wire.
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	compact, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(compact, body) {
		t.Fatal("reformatting produced identical bytes; test is vacuous")
	}
	second := submit(t, hs, compact, "", http.StatusOK)
	if !second.Cached || second.State != StateDone {
		t.Fatalf("resubmit = %+v, want cached done", second)
	}
	if second.CacheKey != first.CacheKey {
		t.Fatalf("cache keys differ: %s vs %s", second.CacheKey, first.CacheKey)
	}
	if got := fetchPlan(t, hs, second.ID); !bytes.Equal(got, firstPlan) {
		t.Fatal("cached plan bytes differ from the original solve")
	}
	if hits := srv.Metrics().Counter(obs.MetricServeCacheHits); hits != 1 {
		t.Fatalf("cache_hits = %d after one resubmit", hits)
	}
	if misses := srv.Metrics().Counter(obs.MetricServeCacheMisses); misses != 1 {
		t.Fatalf("cache_misses = %d", misses)
	}

	// A semantically different state must miss.
	changed, err := model.ReadState(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	changed.Groups[0].Servers++
	var cb bytes.Buffer
	if err := model.WriteState(&cb, changed); err != nil {
		t.Fatal(err)
	}
	third := submit(t, hs, cb.Bytes(), "", http.StatusAccepted)
	if third.Cached {
		t.Fatal("mutated state hit the cache")
	}
	waitTerminal(t, hs, third.ID)
}

// TestDegradedJob drives a solve into a budget surrender (node limit 1
// on a model that needs branching) and checks the HTTP mapping: 203 on
// the status, the degradation report passed through verbatim, and no
// cache pollution — resubmitting still misses.
func TestDegradedJob(t *testing.T) {
	opts := testOptions()
	opts.DR = true // the DR pool model branches well past the root
	opts.Solver.MaxNodes = 1
	srv, hs := startServer(t, Config{Core: opts})
	body := stateBytes(t, 0.06)

	st := submit(t, hs, body, "", http.StatusAccepted)
	final, code := waitTerminal(t, hs, st.ID)
	if final.State != StateDegraded || code != http.StatusNonAuthoritativeInfo {
		t.Fatalf("terminal = %+v (HTTP %d), want degraded/203", final, code)
	}
	d := final.Degradation
	if d == nil || !d.Degraded || d.Stage == "" {
		t.Fatalf("degradation report = %+v", d)
	}
	if plan := fetchPlan(t, hs, st.ID); len(plan) == 0 {
		t.Fatal("degraded job served no plan")
	}
	if got := srv.Metrics().Counter(obs.MetricServeJobsDegraded); got != 1 {
		t.Fatalf("serve.jobs_degraded = %d", got)
	}

	// Degraded results must not be cached.
	again := submit(t, hs, body, "", http.StatusAccepted)
	if again.Cached {
		t.Fatal("degraded plan was served from cache")
	}
	waitTerminal(t, hs, again.ID)
	if hits := srv.Metrics().Counter(obs.MetricServeCacheHits); hits != 0 {
		t.Fatalf("cache_hits = %d for degraded-only traffic", hits)
	}
}

// TestWarmReplanMatchesCold is the incremental re-planning contract:
// ?prev= seeds the solve with the previous job's plan, the job reports
// seeded=true, and the warm answer certifies the same cost the cold
// solve proved.
func TestWarmReplanMatchesCold(t *testing.T) {
	srv, hs := startServer(t, Config{Core: testOptions()})
	body := stateBytes(t, 0.1)

	cold := submit(t, hs, body, "", http.StatusAccepted)
	waitTerminal(t, hs, cold.ID)
	coldPlan, err := model.ReadPlan(bytes.NewReader(fetchPlan(t, hs, cold.ID)))
	if err != nil {
		t.Fatal(err)
	}

	warm := submit(t, hs, body, "?prev="+cold.ID, http.StatusAccepted)
	if !warm.Seeded {
		t.Fatalf("warm job not seeded: %+v", warm)
	}
	if warm.Cached {
		t.Fatal("warm job served from cache; the seeded solve never ran")
	}
	finalWarm, _ := waitTerminal(t, hs, warm.ID)
	if finalWarm.State != StateDone {
		t.Fatalf("warm terminal = %+v", finalWarm)
	}
	warmPlan, err := model.ReadPlan(bytes.NewReader(fetchPlan(t, hs, warm.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if warmPlan.Cost.Total() != coldPlan.Cost.Total() {
		t.Fatalf("warm cost %v != cold cost %v", warmPlan.Cost.Total(), coldPlan.Cost.Total())
	}
	if got := srv.Metrics().Counter(obs.MetricServeWarmSeeded); got != 1 {
		t.Fatalf("serve.warm_seeded = %d", got)
	}

	// Seeding from a job that has no plan is a client error.
	resp, err := http.Post(hs.URL+"/v1/plans?prev=nosuch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("prev=nosuch = %d, want 400", resp.StatusCode)
	}
}

// TestAPIErrors sweeps the failure edges: invalid body, unknown ids,
// premature plan fetch, delete semantics, health and metrics endpoints.
func TestAPIErrors(t *testing.T) {
	srv, hs := startServer(t, Config{Core: testOptions()})

	resp, err := http.Post(hs.URL+"/v1/plans", "application/json", strings.NewReader(`{"not":"a state"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad state = %d, want 400", resp.StatusCode)
	}
	if got := srv.Metrics().Counter(obs.MetricServeJobsRejected); got != 1 {
		t.Fatalf("serve.jobs_rejected = %d", got)
	}

	for _, path := range []string{"/v1/plans/zzz", "/v1/plans/zzz/plan", "/v1/plans/zzz/events"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	// A queued-or-solving job has no plan yet: 409, not an empty 200.
	st := submit(t, hs, stateBytes(t, 0.1), "", http.StatusAccepted)
	resp, err = http.Get(hs.URL + "/v1/plans/" + st.ID + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Fatalf("premature plan fetch = %d, want 409 (or 200 if already done)", resp.StatusCode)
	}
	waitTerminal(t, hs, st.ID)

	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/plans/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/v1/plans/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %+v", health)
	}
	resp, err = http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte("serve.jobs_submitted")) {
		t.Fatalf("metrics = %d: %.200s", resp.StatusCode, raw)
	}
}

// TestWarmPreload covers Server.Warm: it fills the cache so the first
// real submission of that state is a hit.
func TestWarmPreload(t *testing.T) {
	srv, hs := startServer(t, Config{Core: testOptions()})
	body := stateBytes(t, 0.1)
	state, err := model.ReadState(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(t.Context(), state); err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(t.Context(), state); err != nil { // idempotent
		t.Fatal(err)
	}
	st := submit(t, hs, body, "", http.StatusOK)
	if !st.Cached {
		t.Fatalf("post-preload submit = %+v, want cache hit", st)
	}
	if hits := srv.Metrics().Counter(obs.MetricServeCacheHits); hits != 1 {
		t.Fatalf("cache_hits = %d", hits)
	}
}
