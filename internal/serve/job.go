package serve

import (
	"bytes"
	"context"
	"sync"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
)

// Job lifecycle states, in order. A job is terminal in StateDone,
// StateDegraded or StateFailed; its event stream closes at the same
// moment, so a tailer that reads done=true has the whole trace.
const (
	StateQueued   = "queued"
	StateSolving  = "solving"
	StateDone     = "done"
	StateDegraded = "degraded"
	StateFailed   = "failed"
)

// job is one submitted planning request moving through the queue.
type job struct {
	id       string
	state    *model.AsIsState
	cacheKey string
	seed     *model.Plan // previous plan for warm re-planning, nil for cold
	tail     *obs.TailSink

	mu        sync.Mutex
	status    string
	plan      *model.Plan
	planBytes []byte
	report    *lp.DegradationReport // verbatim from Plan.Stats.Degradation
	errMsg    string
	cached    bool // answered from the solve cache, no solve ran
}

// snapshot returns the job's externally visible status under its lock.
func (j *job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:          j.id,
		State:       j.status,
		CacheKey:    j.cacheKey,
		Cached:      j.cached,
		Seeded:      j.seed != nil,
		Events:      j.tail.Len(),
		Error:       j.errMsg,
		Degradation: j.report,
	}
}

// jobStatus is the JSON shape of GET /v1/plans/{id}.
type jobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheKey string `json:"cache_key"`
	// Cached marks a job answered from the solve cache without solving.
	Cached bool `json:"cached,omitempty"`
	// Seeded marks a warm re-plan (?prev=) whose solve started from the
	// previous plan's assignment.
	Seeded bool `json:"seeded,omitempty"`
	// Events is the number of trace events emitted so far (the /events
	// stream's current length).
	Events int    `json:"events"`
	Error  string `json:"error,omitempty"`
	// Degradation is the resilient pipeline's report, passed through
	// verbatim when the solve did not come from a clean first-attempt
	// exact run.
	Degradation *lp.DegradationReport `json:"degradation,omitempty"`
}

// solve runs one job to its terminal state. It is called on a solver
// goroutine; ctx is the server's lifetime.
func (s *Server) solve(ctx context.Context, j *job) {
	j.mu.Lock()
	j.status = StateSolving
	j.mu.Unlock()

	plan, err := s.solvePlan(ctx, j)
	j.mu.Lock()
	defer func() {
		j.mu.Unlock()
		j.tail.Close()
	}()
	if err != nil {
		j.status = StateFailed
		j.errMsg = err.Error()
		s.met.Add(obs.MetricServeJobsFailed, 1)
		return
	}
	var buf bytes.Buffer
	if err := model.WritePlan(&buf, plan); err != nil {
		j.status = StateFailed
		j.errMsg = err.Error()
		s.met.Add(obs.MetricServeJobsFailed, 1)
		return
	}
	j.plan = plan
	j.planBytes = buf.Bytes()
	j.report = plan.Stats.Degradation
	if j.report != nil && j.report.Degraded {
		j.status = StateDegraded
		s.met.Add(obs.MetricServeJobsDegraded, 1)
	} else {
		j.status = StateDone
		s.met.Add(obs.MetricServeJobsDone, 1)
	}
	// Only clean cold solves populate the cache (see planCache); warm
	// re-plans skip it so a seeded trajectory's tie-breaks never stand
	// in for the cold answer.
	if j.report == nil && j.seed == nil {
		s.cache.put(j.cacheKey, &cacheEntry{plan: plan, planBytes: j.planBytes})
	}
}

// solvePlan builds the per-job planner and runs the pipeline. The job's
// trace streams into its TailSink; the solver's metrics registry stays
// nil so the plan's stats — and therefore its bytes — match what the
// plain CLI produces for the same state and options.
func (s *Server) solvePlan(ctx context.Context, j *job) (*model.Plan, error) {
	opts := s.cfg.Core
	opts.Solver.Metrics = nil
	if opts.Solver.Workers == 1 {
		opts.Solver.Trace = obs.NewDeterministic(j.tail)
	} else {
		opts.Solver.Trace = obs.New(j.tail)
	}
	if j.seed != nil {
		// Warm re-plan: start from the previous plan's assignment and
		// reuse parent simplex bases down the tree.
		opts.Solver.ReuseBasis = true
	}
	planner, err := core.New(j.state, opts)
	if err != nil {
		return nil, err
	}
	if j.seed != nil {
		if err := planner.SeedPlan(j.seed); err != nil {
			return nil, err
		}
		s.met.Add(obs.MetricServeWarmSeeded, 1)
	}
	return planner.SolveContext(ctx)
}
