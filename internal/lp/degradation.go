package lp

// Limit names, recorded in Solution.Limit when a budget dimension ends a
// search before optimality is proven. This is the single authoritative
// set: Solution.Limit, DegradationReport.Limit and milp.Budget all speak
// these strings and no others.
const (
	// LimitWallClock means a wall-clock budget expired: the solve-wide
	// deadline in branch & bound, or Options.Deadline inside a simplex
	// solve.
	LimitWallClock = "wall-clock"
	// LimitNodes means the branch & bound node budget was exhausted.
	LimitNodes = "nodes"
	// LimitMemory means the open-node memory estimate exceeded its budget.
	LimitMemory = "memory"
	// LimitIterations means a simplex solve hit its iteration limit
	// (directly, or inside a branch & bound node LP).
	LimitIterations = "iterations"
)

// Limits returns every Limit* constant, in a fixed order — handy for
// tests sweeping the full budget-dimension set.
func Limits() []string {
	return []string{LimitWallClock, LimitNodes, LimitMemory, LimitIterations}
}

// ValidLimit reports whether the (status, limit) pair is one a solver in
// this repository can actually produce:
//
//   - StatusIterLimit pairs with LimitIterations or LimitWallClock (a
//     simplex solve stopped by its own iteration budget or deadline,
//     possibly passed through by branch & bound from the root LP);
//   - StatusNodeLimit pairs with exactly one of the four dimensions
//     (branch & bound's graceful budget stop always names what tripped,
//     including a node LP's iteration limit surrendered solve-wide);
//   - every other status carries an empty Limit.
func ValidLimit(status Status, limit string) bool {
	switch status {
	case StatusIterLimit:
		return limit == LimitIterations || limit == LimitWallClock
	case StatusNodeLimit:
		return limit == LimitWallClock || limit == LimitNodes ||
			limit == LimitMemory || limit == LimitIterations
	default:
		return limit == ""
	}
}

// StageAttempt records one attempt of one stage of the fallback solver
// chain: which stage ran, how it ended, and how long it took. The solve
// pipeline appends an attempt per try (including perturbed retries), so
// a degraded plan carries the full causal chain of what failed first.
type StageAttempt struct {
	// Stage is the chain stage name ("exact-milp", "lp-rounding",
	// "greedy").
	Stage string `json:"stage"`
	// Attempt is the 1-based attempt number within the stage (attempt 2
	// is the retry with perturbed branching and Bland's rule).
	Attempt int `json:"attempt"`
	// Outcome is "ok", "degraded" (feasible but not proven optimal) or
	// "failed".
	Outcome string `json:"outcome"`
	// Error is the failure reason when Outcome is "failed".
	Error string `json:"error,omitempty"`
	// Status is the solver status string when a solve finished.
	Status string `json:"status,omitempty"`
	// Millis is the attempt's elapsed wall-clock time.
	Millis int64 `json:"millis"`
}

// DegradationReport is the machine-readable account of how a plan was
// produced by the resilient solve pipeline: which fallback stage
// delivered it, why earlier stages failed, and which budget dimension
// (if any) tripped. A nil report (the common case) means the exact MILP
// stage succeeded on its first attempt with no budget pressure.
type DegradationReport struct {
	// Degraded reports that the plan did NOT come from a clean
	// first-attempt exact solve: either a fallback stage produced it, or
	// a budget limit ended the exact search early.
	Degraded bool `json:"degraded"`
	// Stage names the chain stage that produced the final plan.
	Stage string `json:"stage"`
	// StageIndex is the 1-based position of Stage in the chain
	// (1 exact-milp, 2 lp-rounding, 3 greedy).
	StageIndex int `json:"stage_index"`
	// Reason is a one-line human-readable cause of the degradation
	// (empty when Degraded is false).
	Reason string `json:"reason,omitempty"`
	// Limit names the budget dimension that ended the exact search
	// (LimitWallClock, LimitNodes, LimitMemory, LimitIterations), empty
	// when no limit tripped.
	Limit string `json:"limit,omitempty"`
	// Gap is the certified relative optimality gap of the delivered
	// plan, +Inf encoded as -1 when no bound is known (fallback stages
	// prove no bound).
	Gap float64 `json:"gap"`
	// Attempts is the full attempt log across all stages, in order.
	Attempts []StageAttempt `json:"attempts,omitempty"`
}

// Chain stage names.
const (
	StageExact    = "exact-milp"
	StageRounding = "lp-rounding"
	StageGreedy   = "greedy"
)
