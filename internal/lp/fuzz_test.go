package lp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzParseLP checks the parser never panics and that anything it
// accepts survives a write/re-parse round-trip structurally.
func FuzzParseLP(f *testing.F) {
	seeds := []string{
		"Minimize\n obj: 3 x + 2 y\nSubject To\n c1: x + y <= 10\nEnd",
		"Maximize\n x\nSubject To\n c: x <= 3\nBounds\n x free\nEnd",
		"min\n2x\nst\nr: x >= -1e3\nbounds\n-2 <= x <= 7\nend",
		"Minimize\n a + b\nSubject To\n k: a - b = 0\nBinary\n a b\nEnd",
		"Minimize\n g\nSubject To\n c: 2 g >= 4\nGeneral\n g\nEnd",
		"Minimize\n\nSubject To\n",
		"\\ comment only",
		"Minimize obj: 1.5e-3 x Subject To c: x <= 1 End",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseLP(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.WriteLP(&buf); err != nil {
			// Duplicate sanitized names are the one legitimate write
			// failure for a parsed model.
			if strings.Contains(err.Error(), "share LP name") {
				return
			}
			t.Fatalf("write after parse: %v", err)
		}
		back, err := ParseLP(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%s", err, buf.String())
		}
		if back.NumRows() != m.NumRows() {
			t.Fatalf("rows changed across round-trip: %d vs %d", m.NumRows(), back.NumRows())
		}
	})
}

// FuzzParseMPS checks the MPS reader never panics, never hands back an
// invalid model (Err() must be nil on success — hostile numeric input
// like NaN/Inf coefficients must be rejected, not absorbed), and that
// anything it accepts survives a write/re-parse round-trip structurally.
// Seeds combine the writer's own output for the round-trip test models
// with handcrafted section fragments.
func FuzzParseMPS(f *testing.F) {
	// Writer-generated seeds: the same generator the MPS round-trip test
	// uses, so the fuzzer starts from well-formed files with integer
	// markers, BV/MI/PL bounds, and E/L/G rows.
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 8; i++ {
		m := randomModel(rng)
		var buf bytes.Buffer
		if err := m.WriteMPS(&buf); err != nil {
			f.Fatalf("seed %d: write: %v", i, err)
		}
		f.Add(buf.String())
	}
	// Handcrafted seeds: minimal files, section edge cases, and the
	// reader's documented error shapes.
	for _, s := range []string{
		"NAME t\nROWS\n N OBJ\n L c\nCOLUMNS\n x OBJ 1 c 1\nRHS\n r c 10\nENDATA\n",
		"ROWS\n N OBJ\nCOLUMNS\n* comment\n x OBJ 2.5\nBOUNDS\n MI BND x\n PL BND x\nENDATA\n",
		"ROWS\n N OBJ\n G g\nCOLUMNS\n MARKER 'INTORG'\n y OBJ 1 y g 1\n MARKER 'INTEND'\nRHS\n r g 2\nBOUNDS\n BV BND y\nENDATA\n",
		"ROWS\n N OBJ\n E e\nCOLUMNS\n x e 1\nRHS\n r e nan\n",
		"ROWS\n N OBJ\nBOUNDS\n UP BND x inf\n",
		"ROWS\n Z r1\n",
		"NAME\nENDATA\n",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseMPS(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := m.Err(); err != nil {
			t.Fatalf("ParseMPS returned an invalid model: %v\n%s", err, src)
		}
		var buf bytes.Buffer
		if err := m.WriteMPS(&buf); err != nil {
			// Duplicate sanitized names are the one legitimate write
			// failure for a parsed model.
			if strings.Contains(err.Error(), "share LP name") {
				return
			}
			t.Fatalf("write after parse: %v", err)
		}
		back, err := ParseMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%s", err, buf.String())
		}
		if back.NumRows() != m.NumRows() || back.NumVars() != m.NumVars() {
			t.Fatalf("shape changed across round-trip: %dx%d vs %dx%d",
				m.NumRows(), m.NumVars(), back.NumRows(), back.NumVars())
		}
	})
}
