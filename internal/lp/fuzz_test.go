package lp

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseLP checks the parser never panics and that anything it
// accepts survives a write/re-parse round-trip structurally.
func FuzzParseLP(f *testing.F) {
	seeds := []string{
		"Minimize\n obj: 3 x + 2 y\nSubject To\n c1: x + y <= 10\nEnd",
		"Maximize\n x\nSubject To\n c: x <= 3\nBounds\n x free\nEnd",
		"min\n2x\nst\nr: x >= -1e3\nbounds\n-2 <= x <= 7\nend",
		"Minimize\n a + b\nSubject To\n k: a - b = 0\nBinary\n a b\nEnd",
		"Minimize\n g\nSubject To\n c: 2 g >= 4\nGeneral\n g\nEnd",
		"Minimize\n\nSubject To\n",
		"\\ comment only",
		"Minimize obj: 1.5e-3 x Subject To c: x <= 1 End",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseLP(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.WriteLP(&buf); err != nil {
			// Duplicate sanitized names are the one legitimate write
			// failure for a parsed model.
			if strings.Contains(err.Error(), "share LP name") {
				return
			}
			t.Fatalf("write after parse: %v", err)
		}
		back, err := ParseLP(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%s", err, buf.String())
		}
		if back.NumRows() != m.NumRows() {
			t.Fatalf("rows changed across round-trip: %d vs %d", m.NumRows(), back.NumRows())
		}
	})
}
