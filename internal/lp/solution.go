package lp

import (
	"fmt"
	"time"
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means an optimal solution was found (for MILP, within
	// the configured gap tolerance).
	StatusOptimal Status = iota + 1
	// StatusInfeasible means the model has no feasible point.
	StatusInfeasible
	// StatusUnbounded means the objective can decrease without bound.
	StatusUnbounded
	// StatusIterLimit means the solver hit its iteration limit before
	// proving optimality.
	StatusIterLimit
	// StatusNodeLimit means branch & bound hit its node limit; the
	// incumbent (if any) is the best known solution.
	StatusNodeLimit
	// StatusFeasible means a feasible but not provably optimal solution
	// was returned (e.g. heuristic incumbent at a limit).
	StatusFeasible
	// StatusCanceled means the solve was interrupted by its
	// context.Context before reaching any other terminal state. The
	// solution may still carry the best incumbent found so far in X
	// (callers must check X for nil — cancellation can strike before any
	// feasible point exists), but HasSolution reports false so that no
	// downstream consumer treats the partial result as a finished one
	// without opting in.
	StatusCanceled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	case StatusNodeLimit:
		return "node-limit"
	case StatusFeasible:
		return "feasible"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// HasSolution reports whether the status carries a usable primal point.
func (s Status) HasSolution() bool {
	return s == StatusOptimal || s == StatusFeasible || s == StatusNodeLimit || s == StatusIterLimit
}

// Solution is the result of solving a model.
type Solution struct {
	Status    Status
	Objective float64
	// X holds one value per model variable; nil when no solution exists.
	X []float64
	// Iterations counts simplex pivots (summed over B&B nodes for MILP).
	Iterations int
	// Nodes counts branch & bound nodes explored (0 for pure LP).
	Nodes int
	// Gap is the relative MILP optimality gap at termination
	// ((incumbent − bound)/max(1,|incumbent|)); 0 for pure LP.
	Gap float64
	// DualValues holds one simplex multiplier per row for pure-LP solves;
	// nil for MILP.
	DualValues []float64
	// Limit names the budget dimension that ended the search when Status
	// is a limit status, and is empty for every other status. The value
	// is always one of the Limit* constants in degradation.go, and the
	// reachable (Status, Limit) combinations are exactly the ones
	// ValidLimit accepts: simplex solves stop with StatusIterLimit and
	// LimitIterations or LimitWallClock; branch & bound stops with
	// StatusNodeLimit and any of the four dimensions, or passes a root
	// LP's StatusIterLimit through unchanged.
	Limit string

	// Concurrency statistics, populated by branch & bound solves
	// (package milp). All zero for pure simplex solves.

	// Workers is the number of branch & bound worker goroutines the
	// solve ran with (1 for a sequential solve).
	Workers int
	// NodesPerWorker counts the branch & bound nodes each worker
	// LP-solved; its entries sum to exactly Nodes (the root is counted
	// by the worker that solved it). nil when the solve never entered
	// the tree search — e.g. a pure-LP passthrough, which reports
	// Nodes=1 with no per-worker attribution.
	NodesPerWorker []int
	// PeakQueueDepth is the largest number of simultaneously open
	// branch & bound nodes observed.
	PeakQueueDepth int
	// WallTime is the elapsed wall-clock duration of the solve.
	WallTime time.Duration
	// WorkTime is the summed busy time of all workers (LP solves,
	// diving, branching). WorkTime/WallTime approximates the effective
	// parallelism achieved; for Workers=1 it is at most WallTime.
	WorkTime time.Duration
}

// Value returns the solution value of v, or 0 if no solution is present.
func (s *Solution) Value(v VarID) float64 {
	if s.X == nil || int(v) >= len(s.X) {
		return 0
	}
	return s.X[v]
}
