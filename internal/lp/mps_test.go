package lp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteMPSBasic(t *testing.T) {
	m, _, _, _ := buildSmallModel(t)
	var buf bytes.Buffer
	if err := m.WriteMPS(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"NAME small", "ROWS", " N OBJ", " L cap", " G link", " E fix",
		"COLUMNS", "'INTORG'", "'INTEND'", "RHS", "BOUNDS", " BV BND b", "ENDATA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("MPS output missing %q:\n%s", want, out)
		}
	}
}

func TestMPSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		m := randomModel(rng)
		var buf bytes.Buffer
		if err := m.WriteMPS(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ParseMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, buf.String())
		}
		if err := modelsEquivalentMPS(m, got); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
	}
}

// modelsEquivalentMPS is modelsEquivalent but tolerant of the one lossy
// MPS encoding: a Binary variable round-trips as Integer[0,1] unless it
// took the BV shortcut; WriteMPS always uses BV for [0,1] binaries, so
// only non-clamped binaries could differ — our builder clamps, so types
// must match exactly. Row names may gain uniqueness suffixes.
func modelsEquivalentMPS(a, b *Model) error {
	if a.NumRows() != b.NumRows() {
		return errf("rows %d vs %d", a.NumRows(), b.NumRows())
	}
	av, bv := varsByName(a), varsByName(b)
	for name, v := range av {
		w, ok := bv[name]
		if !ok {
			return errf("variable %q missing", name)
		}
		if v.Cost != w.Cost || v.Lower != w.Lower || v.Upper != w.Upper {
			return errf("%q attrs differ: %+v vs %+v", name, v, w)
		}
		integralA := v.Type != Continuous
		integralB := w.Type != Continuous
		if integralA != integralB {
			return errf("%q integrality differs", name)
		}
	}
	for r := 0; r < a.NumRows(); r++ {
		ra, rb := a.Row(RowID(r)), b.Row(RowID(r))
		if ra.Sense != rb.Sense || ra.RHS != rb.RHS {
			return errf("row %d meta differs", r)
		}
		ta, tb := termsByName(a, ra), termsByName(b, rb)
		if len(ta) != len(tb) {
			return errf("row %d terms %d vs %d", r, len(ta), len(tb))
		}
		for n, c := range ta {
			if tb[n] != c {
				return errf("row %d term %q %v vs %v", r, n, c, tb[n])
			}
		}
	}
	return nil
}

func TestMPSSolveAgreesWithLP(t *testing.T) {
	// The exported MPS of a real planner model must parse back and solve
	// to the same optimum as the original (checked in core tests for LP
	// format; here a small handmade MILP suffices).
	m := NewModel("agree")
	a := m.AddBinary("a", -10)
	b := m.AddBinary("b", -13)
	c := m.AddBinary("c", -7)
	m.AddRow("w", []Term{{a, 3}, {b, 4}, {c, 2}}, LE, 6)
	var buf bytes.Buffer
	if err := m.WriteMPS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseMPS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars() != 3 || back.NumRows() != 1 || back.NumIntegral() != 3 {
		t.Fatalf("parsed dims wrong: %s", back.Stats())
	}
}

func TestParseMPSErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"data-before-section", "x OBJ 1\n"},
		{"bad-row-sense", "ROWS\n Z r1\n"},
		{"unknown-row", "ROWS\n N OBJ\nCOLUMNS\n x bogus 1\n"},
		{"bad-coef", "ROWS\n N OBJ\n L r\nCOLUMNS\n x r foo\n"},
		{"ranges", "ROWS\n N OBJ\nRANGES\n R r 1\n"},
		{"bad-bound-kind", "ROWS\n N OBJ\nBOUNDS\n XX BND x 1\n"},
		{"objsense-max", "OBJSENSE\n MAX\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseMPS(strings.NewReader(tt.src)); err == nil {
				t.Error("parse succeeded, want error")
			}
		})
	}
}
