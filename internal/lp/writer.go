package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/etransform/etransform/internal/tol"
)

// WriteLP writes the model in CPLEX LP file format. The output can be
// loaded by CPLEX, Gurobi, GLPK, or this package's ParseLP, so a model
// built by the planner can be inspected or solved externally — the same
// interchange point the paper's architecture uses between its
// transformation module and optimization engine.
func (m *Model) WriteLP(w io.Writer) error {
	if err := m.Err(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	names, err := m.lpNames()
	if err != nil {
		return err
	}

	if m.Name != "" {
		fmt.Fprintf(bw, "\\ Problem: %s\n", m.Name)
	}
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	col := 5
	wroteAny := false
	for i, v := range m.vars {
		if tol.IsZero(v.Cost) {
			continue
		}
		col = writeTerm(bw, col, v.Cost, names[i], !wroteAny)
		wroteAny = true
	}
	if !wroteAny {
		// An empty objective row is invalid in some readers; emit 0 times
		// the first variable if one exists.
		if len(m.vars) > 0 {
			fmt.Fprintf(bw, " 0 %s", names[0])
		}
	}
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	for r, row := range m.rows {
		rn := fmt.Sprintf("c%d", r)
		if row.Name != "" {
			rn = sanitizeLPName(row.Name)
		}
		fmt.Fprintf(bw, " %s:", rn)
		col = len(rn) + 2
		if len(row.Terms) == 0 {
			// Constant row: emit "0 firstVar" so the line stays parseable.
			if len(m.vars) > 0 {
				fmt.Fprintf(bw, " 0 %s", names[0])
			}
		}
		for k, t := range row.Terms {
			col = writeTerm(bw, col, t.Coef, names[t.Var], k == 0)
		}
		fmt.Fprintf(bw, " %s %s\n", row.Sense, fmtLPNum(row.RHS))
	}

	fmt.Fprintln(bw, "Bounds")
	for i, v := range m.vars {
		if v.Type == Binary {
			continue // implied [0,1] via the Binary section
		}
		lo, hi := v.Lower, v.Upper
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			fmt.Fprintf(bw, " %s free\n", names[i])
		case math.IsInf(hi, 1):
			fmt.Fprintf(bw, " %s >= %s\n", names[i], fmtLPNum(lo))
		case math.IsInf(lo, -1):
			fmt.Fprintf(bw, " %s <= %s\n", names[i], fmtLPNum(hi))
		default:
			fmt.Fprintf(bw, " %s <= %s <= %s\n", fmtLPNum(lo), names[i], fmtLPNum(hi))
		}
	}

	var bins, gens []string
	for i, v := range m.vars {
		switch v.Type {
		case Binary:
			bins = append(bins, names[i])
		case Integer:
			gens = append(gens, names[i])
		}
	}
	writeNameSection(bw, "Binary", bins)
	writeNameSection(bw, "General", gens)

	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

func writeNameSection(w io.Writer, header string, names []string) {
	if len(names) == 0 {
		return
	}
	fmt.Fprintln(w, header)
	const perLine = 8
	for i := 0; i < len(names); i += perLine {
		end := i + perLine
		if end > len(names) {
			end = len(names)
		}
		fmt.Fprintf(w, " %s\n", strings.Join(names[i:end], " "))
	}
}

// writeTerm appends "± coef name" to the current line, wrapping at ~70
// columns, and returns the new column position.
func writeTerm(w io.Writer, col int, coef float64, name string, first bool) int {
	var sb strings.Builder
	if coef < 0 {
		sb.WriteString(" - ")
	} else if first {
		sb.WriteString(" ")
	} else {
		sb.WriteString(" + ")
	}
	if a := math.Abs(coef); !tol.Same(a, 1) {
		sb.WriteString(fmtLPNum(a))
		sb.WriteString(" ")
	}
	sb.WriteString(name)
	s := sb.String()
	if col+len(s) > 70 {
		fmt.Fprint(w, "\n   ")
		col = 3
	}
	fmt.Fprint(w, s)
	return col + len(s)
}

// fmtLPNum renders a float compactly without losing precision.
func fmtLPNum(v float64) string {
	if tol.Same(v, math.Trunc(v)) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// lpNames produces sanitized, unique LP-format names for every variable.
func (m *Model) lpNames() ([]string, error) {
	names := make([]string, len(m.vars))
	seen := make(map[string]int, len(m.vars))
	for i, v := range m.vars {
		n := v.Name
		if n == "" {
			n = fmt.Sprintf("x%d", i)
		}
		n = sanitizeLPName(n)
		if prev, dup := seen[n]; dup {
			return nil, fmt.Errorf("lp: variables %d and %d share LP name %q", prev, i, n)
		}
		seen[n] = i
		names[i] = n
	}
	return names, nil
}

// sanitizeLPName maps an arbitrary identifier to a legal LP-format name:
// allowed characters are letters, digits and !"#$%&()/,.;?@_'`{}|~ — we
// restrict further to [A-Za-z0-9_.()] and a safe first character.
func sanitizeLPName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '(', r == ')':
			sb.WriteRune(r)
		default:
			sb.WriteRune('_')
		}
	}
	out := sb.String()
	if out == "" {
		return "_"
	}
	c := out[0]
	if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
		// LP names may not start with a digit or period; a leading e/E
		// followed by digits can be misread as a number by some parsers.
		out = "_" + out
	}
	return out
}
