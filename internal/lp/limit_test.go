package lp

import "testing"

// TestValidLimitTable enumerates every (Status, Limit) combination and
// checks ValidLimit against the documented contract: StatusIterLimit
// pairs with the two simplex-reachable dimensions, StatusNodeLimit with
// exactly one of the four, and every other status with the empty string.
func TestValidLimitTable(t *testing.T) {
	statuses := []Status{
		StatusOptimal, StatusInfeasible, StatusUnbounded,
		StatusIterLimit, StatusNodeLimit, StatusFeasible, StatusCanceled,
	}
	valid := map[Status]map[string]bool{
		StatusIterLimit: {LimitIterations: true, LimitWallClock: true},
		StatusNodeLimit: {
			LimitWallClock: true, LimitNodes: true,
			LimitMemory: true, LimitIterations: true,
		},
	}
	limits := append([]string{""}, Limits()...)
	for _, st := range statuses {
		for _, lim := range limits {
			want := valid[st][lim]
			if _, hasRow := valid[st]; !hasRow {
				want = lim == ""
			}
			if got := ValidLimit(st, lim); got != want {
				t.Errorf("ValidLimit(%v, %q) = %v, want %v", st, lim, got, want)
			}
		}
	}
	// Unknown strings never validate, whatever the status.
	for _, st := range statuses {
		if ValidLimit(st, "gremlins") {
			t.Errorf("ValidLimit(%v, gremlins) accepted an unknown limit", st)
		}
	}
}

// TestLimitsStable pins the authoritative limit-name set: these strings
// appear in plan JSON and trace events, so changing one is a format
// break, not a refactor.
func TestLimitsStable(t *testing.T) {
	want := []string{"wall-clock", "nodes", "memory", "iterations"}
	got := Limits()
	if len(got) != len(want) {
		t.Fatalf("Limits() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Limits()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
