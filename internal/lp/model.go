// Package lp provides the mixed-integer linear-programming modeling
// substrate for eTransform: a sparse model builder, solution types shared
// by the solvers, and a CPLEX LP-file writer/parser so models can be
// inspected or handed to an external solver, mirroring the paper's
// architecture (Figure 5: the planner emits an LP file and invokes an
// optimization engine).
package lp

import (
	"fmt"
	"math"

	"github.com/etransform/etransform/internal/tol"
)

// VarType is the domain of a decision variable.
type VarType int

// Variable domains.
const (
	// Continuous variables range over their bounds.
	Continuous VarType = iota + 1
	// Binary variables take value 0 or 1.
	Binary
	// Integer variables take integral values within their bounds.
	Integer
)

// String implements fmt.Stringer.
func (t VarType) String() string {
	switch t {
	case Continuous:
		return "continuous"
	case Binary:
		return "binary"
	case Integer:
		return "integer"
	default:
		return fmt.Sprintf("VarType(%d)", int(t))
	}
}

// Sense is the relational sense of a constraint row.
type Sense int

// Constraint senses.
const (
	// LE is "≤ rhs".
	LE Sense = iota + 1
	// GE is "≥ rhs".
	GE
	// EQ is "= rhs".
	EQ
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// VarID identifies a variable within its Model.
type VarID int

// RowID identifies a constraint row within its Model.
type RowID int

// Term is one entry of a sparse constraint row: Coef × the variable Var.
type Term struct {
	Var  VarID
	Coef float64
}

// Variable holds the attributes of one decision variable.
type Variable struct {
	Name  string
	Lower float64
	Upper float64
	// Cost is the objective coefficient.
	Cost float64
	Type VarType
}

// Row holds one constraint: Terms (sense) RHS.
type Row struct {
	Name  string
	Terms []Term
	Sense Sense
	RHS   float64
}

// Model is a mixed-integer linear program being built. The objective is
// always minimization; negate costs to maximize. The zero value is an
// empty minimization model ready for use.
type Model struct {
	// Name labels the model in LP output.
	Name string

	vars     []Variable
	rows     []Row
	nonzeros int
	// err is the first construction error (NaN data, inverted bounds,
	// unknown variable IDs, …). Builder methods record it and keep the
	// model structurally consistent; solvers and writers refuse a model
	// whose Err is non-nil.
	err error
}

// NewModel returns an empty minimization model with the given name.
func NewModel(name string) *Model { return &Model{Name: name} }

// Err returns the first error recorded while building the model, or nil.
// Invalid data handed to AddVar, AddRow, SetCost or SetBounds does not
// panic; it marks the model broken, and every solver and writer entry
// point reports that error instead of operating on corrupt data.
func (m *Model) Err() error { return m.err }

// fail records the model's first construction error.
func (m *Model) fail(format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf(format, args...)
	}
}

// AddVar adds a variable and returns its ID. Invalid attributes (NaN
// data, inverted bounds) record a model error (see Err); the variable is
// still appended with sanitized bounds so IDs remain dense and stable.
func (m *Model) AddVar(v Variable) VarID {
	if math.IsNaN(v.Lower) || math.IsNaN(v.Upper) || math.IsNaN(v.Cost) {
		m.fail("lp: NaN attribute in variable %q", v.Name)
		v.Lower, v.Upper, v.Cost = 0, 0, 0
	}
	if v.Lower > v.Upper {
		m.fail("lp: inverted bounds [%v, %v] on variable %q", v.Lower, v.Upper, v.Name)
		v.Upper = v.Lower
	}
	if v.Type == 0 {
		v.Type = Continuous
	}
	if v.Type == Binary {
		if v.Lower < 0 {
			v.Lower = 0
		}
		if v.Upper > 1 {
			v.Upper = 1
		}
	}
	m.vars = append(m.vars, v)
	return VarID(len(m.vars) - 1)
}

// AddContinuous adds a continuous variable with the given bounds and
// objective cost.
func (m *Model) AddContinuous(name string, lower, upper, cost float64) VarID {
	return m.AddVar(Variable{Name: name, Lower: lower, Upper: upper, Cost: cost, Type: Continuous})
}

// AddBinary adds a 0/1 variable with the given objective cost.
func (m *Model) AddBinary(name string, cost float64) VarID {
	return m.AddVar(Variable{Name: name, Lower: 0, Upper: 1, Cost: cost, Type: Binary})
}

// AddRow adds a constraint and returns its ID. Duplicate variables within
// a row are merged by summing coefficients; zero coefficients are dropped.
// Out-of-range variable IDs, non-finite data, and invalid senses record a
// model error (see Err); the offending terms are skipped so the row list
// stays structurally consistent.
func (m *Model) AddRow(name string, terms []Term, sense Sense, rhs float64) RowID {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		m.fail("lp: invalid RHS %v in row %q", rhs, name)
		rhs = 0
	}
	if sense != LE && sense != GE && sense != EQ {
		m.fail("lp: invalid sense %d in row %q", int(sense), name)
		sense = LE
	}
	merged := make(map[VarID]float64, len(terms))
	order := make([]VarID, 0, len(terms))
	for _, t := range terms {
		if t.Var < 0 || int(t.Var) >= len(m.vars) {
			m.fail("lp: unknown variable id %d in row %q", int(t.Var), name)
			continue
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			m.fail("lp: invalid coefficient %v in row %q", t.Coef, name)
			continue
		}
		if _, seen := merged[t.Var]; !seen {
			order = append(order, t.Var)
		}
		merged[t.Var] += t.Coef
	}
	clean := make([]Term, 0, len(order))
	for _, v := range order {
		if c := merged[v]; !tol.IsZero(c) {
			clean = append(clean, Term{Var: v, Coef: c})
		}
	}
	m.rows = append(m.rows, Row{Name: name, Terms: clean, Sense: sense, RHS: rhs})
	m.nonzeros += len(clean)
	return RowID(len(m.rows) - 1)
}

// SetCost overwrites the objective coefficient of v. An invalid cost or
// variable ID records a model error (see Err) and leaves the model
// unchanged.
func (m *Model) SetCost(v VarID, cost float64) {
	if v < 0 || int(v) >= len(m.vars) {
		m.fail("lp: SetCost: unknown variable id %d", int(v))
		return
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		m.fail("lp: invalid cost %v for variable %q", cost, m.vars[v].Name)
		return
	}
	m.vars[v].Cost = cost
}

// SetBounds overwrites the bounds of v. Invalid bounds or an invalid
// variable ID record a model error (see Err) and leave the model
// unchanged.
func (m *Model) SetBounds(v VarID, lower, upper float64) {
	if v < 0 || int(v) >= len(m.vars) {
		m.fail("lp: SetBounds: unknown variable id %d", int(v))
		return
	}
	if math.IsNaN(lower) || math.IsNaN(upper) || lower > upper {
		m.fail("lp: invalid bounds [%v, %v] for variable %q", lower, upper, m.vars[v].Name)
		return
	}
	m.vars[v].Lower = lower
	m.vars[v].Upper = upper
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.vars) }

// NumRows returns the number of constraint rows.
func (m *Model) NumRows() int { return len(m.rows) }

// NumNonzeros returns the number of nonzero constraint coefficients.
func (m *Model) NumNonzeros() int { return m.nonzeros }

// NumIntegral returns the number of binary and general-integer variables.
func (m *Model) NumIntegral() int {
	n := 0
	for _, v := range m.vars {
		if v.Type != Continuous {
			n++
		}
	}
	return n
}

// Var returns a copy of the variable's attributes.
func (m *Model) Var(id VarID) Variable { return m.vars[id] }

// Row returns the constraint row. The returned Row shares its Terms slice
// with the model; callers must not mutate it.
func (m *Model) Row(id RowID) Row { return m.rows[id] }

// invariant is the package's documented invariant-violation helper: it
// panics to report a programming error that cannot be expressed as a
// returned error without corrupting caller state. It is the only
// function in this package allowed to panic (enforced by the etlint
// nopanic analyzer).
func invariant(format string, args ...any) {
	panic("lp: invariant violation: " + fmt.Sprintf(format, args...))
}

// Objective evaluates the objective at the given point (len must equal
// NumVars — a mismatch is a programming error and panics via the
// invariant helper).
func (m *Model) Objective(x []float64) float64 {
	if len(x) != len(m.vars) {
		invariant("point has %d entries, model has %d variables", len(x), len(m.vars))
	}
	obj := 0.0
	for i, v := range m.vars {
		obj += v.Cost * x[i]
	}
	return obj
}

// RowActivity evaluates row r's left-hand side at point x.
func (m *Model) RowActivity(r RowID, x []float64) float64 {
	a := 0.0
	for _, t := range m.rows[r].Terms {
		a += t.Coef * x[t.Var]
	}
	return a
}

// FeasTol is the default feasibility tolerance used across the solvers.
// It aliases tol.Feas; package tol is the home of all tolerance values.
const FeasTol = tol.Feas

// IntTol is the default integrality tolerance used across the solvers.
// It aliases tol.Int; package tol is the home of all tolerance values.
const IntTol = tol.Int

// CheckFeasible verifies x against all rows, bounds and integrality
// within eps (absolute, scaled by max(1,|rhs|) for rows). It returns nil
// if feasible, or an error naming the first violated requirement.
func (m *Model) CheckFeasible(x []float64, eps float64) error {
	if len(x) != len(m.vars) {
		return fmt.Errorf("lp: point has %d entries, model has %d variables", len(x), len(m.vars))
	}
	for i, v := range m.vars {
		if !tol.Geq(x[i], v.Lower, eps) || !tol.Leq(x[i], v.Upper, eps) {
			return fmt.Errorf("lp: variable %q = %v outside bounds [%v, %v]", v.Name, x[i], v.Lower, v.Upper)
		}
		if v.Type != Continuous && !tol.IsInt(x[i], eps) {
			return fmt.Errorf("lp: variable %q = %v not integral", v.Name, x[i])
		}
	}
	for r, row := range m.rows {
		a := m.RowActivity(RowID(r), x)
		scaled := eps * math.Max(1, math.Abs(row.RHS))
		switch row.Sense {
		case LE:
			if !tol.Leq(a, row.RHS, scaled) {
				return fmt.Errorf("lp: row %q violated: %v > %v", row.Name, a, row.RHS)
			}
		case GE:
			if !tol.Geq(a, row.RHS, scaled) {
				return fmt.Errorf("lp: row %q violated: %v < %v", row.Name, a, row.RHS)
			}
		case EQ:
			if !tol.Eq(a, row.RHS, scaled) {
				return fmt.Errorf("lp: row %q violated: %v != %v", row.Name, a, row.RHS)
			}
		}
	}
	return nil
}

// Relax returns a copy of the model with every integral variable relaxed
// to continuous. The copy shares no mutable state with m.
func (m *Model) Relax() *Model {
	c := m.Clone()
	for i := range c.vars {
		c.vars[i].Type = Continuous
	}
	return c
}

// Clone returns a deep copy of the model (including any recorded
// construction error).
func (m *Model) Clone() *Model {
	c := &Model{Name: m.Name, nonzeros: m.nonzeros, err: m.err}
	c.vars = make([]Variable, len(m.vars))
	copy(c.vars, m.vars)
	c.rows = make([]Row, len(m.rows))
	for i, r := range m.rows {
		terms := make([]Term, len(r.Terms))
		copy(terms, r.Terms)
		c.rows[i] = Row{Name: r.Name, Terms: terms, Sense: r.Sense, RHS: r.RHS}
	}
	return c
}

// Stats returns a one-line summary suitable for logs.
func (m *Model) Stats() string {
	return fmt.Sprintf("%s: %d rows, %d cols (%d integral), %d nonzeros",
		m.Name, len(m.rows), len(m.vars), m.NumIntegral(), m.nonzeros)
}
