package lp

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteLPSmall(t *testing.T) {
	m, _, _, _ := buildSmallModel(t)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Minimize", "Subject To", "Bounds", "Binary", "End",
		"3 x", "- 2 y", "100 b",
		"cap: x + 2 y <= 8",
		"link: y - 4 b >= -1",
		"fix: x = 2",
		"0 <= x <= 10",
		"y >= -5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPFreeAndUpperOnly(t *testing.T) {
	m := NewModel("bounds")
	m.AddContinuous("f", math.Inf(-1), math.Inf(1), 1)
	m.AddContinuous("u", math.Inf(-1), 9, 1)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "f free") {
		t.Errorf("missing free bound:\n%s", out)
	}
	if !strings.Contains(out, "u <= 9") {
		t.Errorf("missing upper-only bound:\n%s", out)
	}
}

func TestWriteLPDuplicateNames(t *testing.T) {
	m := NewModel("dup")
	m.AddContinuous("same", 0, 1, 1)
	m.AddContinuous("same", 0, 1, 1)
	if err := m.WriteLP(&bytes.Buffer{}); err == nil {
		t.Error("duplicate names accepted, want error")
	}
}

func TestSanitizeLPName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"x[1,2]", "x_1_2_"},
		{"9lives", "_9lives"},
		{"e123", "_e123"},
		{"ok_name.0", "ok_name.0"},
		{"", "_"},
		{"a b", "a_b"},
	}
	for _, tt := range tests {
		if got := sanitizeLPName(tt.in); got != tt.want {
			t.Errorf("sanitizeLPName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestParseLPBasic(t *testing.T) {
	src := `\ Problem: demo
Minimize
 obj: 3 x + 2 y - z
Subject To
 c1: x + y <= 10
 c2: 2 x - 3 y + z >= -4
 c3: x = 1
Bounds
 0 <= x <= 5
 y free
 z <= 7
Binary
End`
	m, err := ParseLP(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVars() != 3 || m.NumRows() != 3 {
		t.Fatalf("parsed dims = %d vars, %d rows", m.NumVars(), m.NumRows())
	}
	byName := map[string]Variable{}
	for i := 0; i < m.NumVars(); i++ {
		v := m.Var(VarID(i))
		byName[v.Name] = v
	}
	if byName["x"].Cost != 3 || byName["y"].Cost != 2 || byName["z"].Cost != -1 {
		t.Errorf("costs = %v/%v/%v", byName["x"].Cost, byName["y"].Cost, byName["z"].Cost)
	}
	if byName["x"].Lower != 0 || byName["x"].Upper != 5 {
		t.Errorf("x bounds = [%v,%v]", byName["x"].Lower, byName["x"].Upper)
	}
	if !math.IsInf(byName["y"].Lower, -1) || !math.IsInf(byName["y"].Upper, 1) {
		t.Errorf("y bounds = [%v,%v], want free", byName["y"].Lower, byName["y"].Upper)
	}
	if byName["z"].Upper != 7 || byName["z"].Lower != 0 {
		t.Errorf("z bounds = [%v,%v]", byName["z"].Lower, byName["z"].Upper)
	}
	r := m.Row(1)
	if r.Sense != GE || r.RHS != -4 || len(r.Terms) != 3 {
		t.Errorf("c2 = %+v", r)
	}
}

func TestParseLPMaximizeNegatesCosts(t *testing.T) {
	src := `Maximize
 obj: 5 x
Subject To
 c: x <= 3
End`
	m, err := ParseLP(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Var(0).Cost; got != -5 {
		t.Errorf("cost after maximize conversion = %v, want -5", got)
	}
}

func TestParseLPBinaryAndGeneral(t *testing.T) {
	src := `Minimize
 obj: x + b + g
Subject To
 c: x + b + g >= 1
Bounds
 0 <= g <= 10
Binary
 b
General
 g
End`
	m, err := ParseLP(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var bin, gen Variable
	for i := 0; i < m.NumVars(); i++ {
		v := m.Var(VarID(i))
		switch v.Name {
		case "b":
			bin = v
		case "g":
			gen = v
		}
	}
	if bin.Type != Binary || bin.Lower != 0 || bin.Upper != 1 {
		t.Errorf("b = %+v", bin)
	}
	if gen.Type != Integer || gen.Upper != 10 {
		t.Errorf("g = %+v", gen)
	}
}

func TestParseLPErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no-sense", "hello\n"},
		{"missing-subject", "Minimize\n obj: x\nBounds\n"},
		{"bad-rhs", "Minimize\n x\nSubject To\n c: x <= foo\nEnd"},
		{"bad-bound", "Minimize\n x\nSubject To\n c: x <= 1\nBounds\n <= x\nEnd"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseLP(strings.NewReader(tt.src)); err == nil {
				t.Error("parse succeeded, want error")
			}
		})
	}
}

// randomModel builds a random bounded model for round-trip testing.
func randomModel(rng *rand.Rand) *Model {
	m := NewModel("rand")
	nv := 1 + rng.Intn(8)
	for i := 0; i < nv; i++ {
		lo := float64(rng.Intn(5))
		hi := lo + float64(1+rng.Intn(10))
		cost := math.Round(rng.NormFloat64()*10*4) / 4 // quarter-integer costs
		switch rng.Intn(3) {
		case 0:
			m.AddBinary(varName(i), cost)
		case 1:
			m.AddVar(Variable{Name: varName(i), Lower: lo, Upper: hi, Cost: cost, Type: Integer})
		default:
			m.AddContinuous(varName(i), lo, hi, cost)
		}
	}
	nr := 1 + rng.Intn(6)
	for r := 0; r < nr; r++ {
		var terms []Term
		for i := 0; i < nv; i++ {
			if rng.Intn(2) == 0 {
				c := math.Round(rng.NormFloat64()*8*4) / 4
				if c != 0 {
					terms = append(terms, Term{Var: VarID(i), Coef: c})
				}
			}
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		rhs := math.Round(rng.NormFloat64()*20*4) / 4
		m.AddRow(rowName(r), terms, sense, rhs)
	}
	return m
}

func varName(i int) string { return "v" + string(rune('a'+i)) }
func rowName(i int) string { return "r" + string(rune('a'+i)) }

// TestLPRoundTrip writes random models and parses them back, checking
// that objective coefficients, bounds, types, and rows survive.
func TestLPRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := randomModel(rng)
		var buf bytes.Buffer
		if err := m.WriteLP(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ParseLP(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, buf.String())
		}
		if err := modelsEquivalent(m, got); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
	}
}

// modelsEquivalent compares two models by variable name, tolerating
// different variable ordering.
func modelsEquivalent(a, b *Model) error {
	if a.NumRows() != b.NumRows() {
		return errf("rows %d vs %d", a.NumRows(), b.NumRows())
	}
	av := varsByName(a)
	bv := varsByName(b)
	for name, v := range av {
		w, ok := bv[name]
		if !ok {
			// Variables that appear nowhere (no cost, no rows, default
			// bounds) may legitimately be absent — but our writer emits
			// bounds for all non-binary vars, so only binaries with no
			// appearances could drop. Treat as error to be strict.
			return errf("variable %q missing after round-trip", name)
		}
		if v.Cost != w.Cost {
			return errf("%q cost %v vs %v", name, v.Cost, w.Cost)
		}
		if v.Type != w.Type {
			return errf("%q type %v vs %v", name, v.Type, w.Type)
		}
		if v.Lower != w.Lower || v.Upper != w.Upper {
			return errf("%q bounds [%v,%v] vs [%v,%v]", name, v.Lower, v.Upper, w.Lower, w.Upper)
		}
	}
	for r := 0; r < a.NumRows(); r++ {
		ra, rb := a.Row(RowID(r)), b.Row(RowID(r))
		if ra.Sense != rb.Sense || ra.RHS != rb.RHS {
			return errf("row %d meta %v %v vs %v %v", r, ra.Sense, ra.RHS, rb.Sense, rb.RHS)
		}
		ta := termsByName(a, ra)
		tb := termsByName(b, rb)
		if len(ta) != len(tb) {
			return errf("row %d terms %d vs %d", r, len(ta), len(tb))
		}
		for n, c := range ta {
			if tb[n] != c {
				return errf("row %d term %q %v vs %v", r, n, c, tb[n])
			}
		}
	}
	return nil
}

func varsByName(m *Model) map[string]Variable {
	out := make(map[string]Variable, m.NumVars())
	for i := 0; i < m.NumVars(); i++ {
		v := m.Var(VarID(i))
		out[v.Name] = v
	}
	return out
}

func termsByName(m *Model, r Row) map[string]float64 {
	out := make(map[string]float64, len(r.Terms))
	for _, t := range r.Terms {
		out[m.Var(t.Var).Name] = t.Coef
	}
	return out
}

func errf(format string, args ...any) error {
	return fmt.Errorf("round-trip mismatch: "+format, args...)
}
