package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/etransform/etransform/internal/tol"
)

// ParseLP reads a model in CPLEX LP file format. It accepts the grammar
// produced by WriteLP plus the common variants (Maximize objectives,
// "st"/"s.t." headers, multi-line expressions, comments). Maximization
// objectives are converted to minimization by negating costs, so a parsed
// model always minimizes.
func ParseLP(r io.Reader) (*Model, error) {
	toks, err := lexLP(r)
	if err != nil {
		return nil, err
	}
	p := &lpParser{toks: toks, m: NewModel(""), varIDs: make(map[string]VarID)}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if err := p.m.Err(); err != nil {
		return nil, fmt.Errorf("lp: input built an invalid model: %w", err)
	}
	return p.m, nil
}

type lpTok struct {
	kind lpTokKind
	text string
	num  float64
	line int
}

type lpTokKind int

const (
	tokName lpTokKind = iota + 1
	tokNum
	tokPlus
	tokMinus
	tokColon
	tokSense // <=, >=, =, <, >
)

func lexLP(r io.Reader) ([]lpTok, error) {
	var toks []lpTok
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '\\'); i >= 0 {
			text = text[:i]
		}
		i := 0
		for i < len(text) {
			c := text[i]
			switch {
			case c == ' ' || c == '\t' || c == '\r':
				i++
			case c == '+':
				toks = append(toks, lpTok{kind: tokPlus, line: line})
				i++
			case c == '-':
				toks = append(toks, lpTok{kind: tokMinus, line: line})
				i++
			case c == ':':
				toks = append(toks, lpTok{kind: tokColon, line: line})
				i++
			case c == '<' || c == '>' || c == '=':
				j := i + 1
				if j < len(text) && text[j] == '=' {
					j++
				}
				s := text[i:j]
				if s == "<" || s == "<=" || s == "=<" {
					s = "<="
				} else if s == ">" || s == ">=" || s == "=>" {
					s = ">="
				} else {
					s = "="
				}
				toks = append(toks, lpTok{kind: tokSense, text: s, line: line})
				i = j
			case c >= '0' && c <= '9' || c == '.':
				j := i
				for j < len(text) && (text[j] >= '0' && text[j] <= '9' || text[j] == '.') {
					j++
				}
				// Exponent suffix.
				if j < len(text) && (text[j] == 'e' || text[j] == 'E') {
					k := j + 1
					if k < len(text) && (text[k] == '+' || text[k] == '-') {
						k++
					}
					start := k
					for k < len(text) && text[k] >= '0' && text[k] <= '9' {
						k++
					}
					if k > start {
						j = k
					}
				}
				v, err := strconv.ParseFloat(text[i:j], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: line %d: bad number %q: %v", line, text[i:j], err)
				}
				toks = append(toks, lpTok{kind: tokNum, num: v, line: line})
				i = j
			default:
				j := i
				for j < len(text) && !strings.ContainsRune(" \t\r+-:<>=", rune(text[j])) {
					j++
				}
				if j == i {
					return nil, fmt.Errorf("lp: line %d: unexpected character %q", line, c)
				}
				toks = append(toks, lpTok{kind: tokName, text: text[i:j], line: line})
				i = j
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lp: reading input: %w", err)
	}
	return toks, nil
}

type lpParser struct {
	toks   []lpTok
	pos    int
	m      *Model
	varIDs map[string]VarID
	// boundSet tracks variables whose bounds came from the Bounds
	// section, so later binary/general markers don't clobber them.
	boundSet map[string]bool
}

func (p *lpParser) peek() (lpTok, bool) {
	if p.pos >= len(p.toks) {
		return lpTok{}, false
	}
	return p.toks[p.pos], true
}

func (p *lpParser) next() (lpTok, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

// keywordAt reports whether the upcoming tokens spell the given keyword
// (case-insensitive; multi-word keywords like "subject to" span tokens)
// and consumes them if so.
func (p *lpParser) keyword(words ...string) bool {
	save := p.pos
	for _, w := range words {
		t, ok := p.next()
		if !ok || t.kind != tokName || !strings.EqualFold(t.text, w) {
			p.pos = save
			return false
		}
	}
	return true
}

func (p *lpParser) getVar(name string) VarID {
	if id, ok := p.varIDs[name]; ok {
		return id
	}
	id := p.m.AddContinuous(name, 0, math.Inf(1), 0)
	p.varIDs[name] = id
	return id
}

func (p *lpParser) parse() error {
	p.boundSet = make(map[string]bool)
	maximize := false
	switch {
	case p.keyword("minimize"), p.keyword("min"), p.keyword("minimum"):
	case p.keyword("maximize"), p.keyword("max"), p.keyword("maximum"):
		maximize = true
	default:
		return fmt.Errorf("lp: expected objective sense at start of file")
	}

	costs, _, err := p.parseExpr(true)
	if err != nil {
		return fmt.Errorf("lp: objective: %w", err)
	}
	for id, c := range costs {
		if maximize {
			c = -c
		}
		p.m.SetCost(id, p.m.Var(id).Cost+c)
	}

	if !p.keyword("subject", "to") && !p.keyword("st") && !p.keyword("s.t.") && !p.keyword("such", "that") {
		return fmt.Errorf("lp: expected 'Subject To' after objective")
	}

	for {
		if p.atSectionBoundary() {
			break
		}
		if err := p.parseConstraint(); err != nil {
			return err
		}
	}

	for {
		switch {
		case p.keyword("bounds"), p.keyword("bound"):
			if err := p.parseBounds(); err != nil {
				return err
			}
		case p.keyword("binary"), p.keyword("binaries"), p.keyword("bin"):
			p.parseVarList(Binary)
		case p.keyword("general"), p.keyword("generals"), p.keyword("gen"), p.keyword("integer"), p.keyword("integers"):
			p.parseVarList(Integer)
		case p.keyword("end"):
			return nil
		default:
			if _, ok := p.peek(); !ok {
				return nil // tolerate missing End
			}
			t, _ := p.peek()
			return fmt.Errorf("lp: line %d: unexpected token %q", t.line, t.text)
		}
	}
}

// sectionKeywords are names that terminate an expression/constraint block.
var sectionKeywords = map[string]bool{
	"subject": true, "st": true, "s.t.": true, "such": true,
	"bounds": true, "bound": true,
	"binary": true, "binaries": true, "bin": true,
	"general": true, "generals": true, "gen": true, "integer": true, "integers": true,
	"end": true,
}

func (p *lpParser) atSectionBoundary() bool {
	t, ok := p.peek()
	if !ok {
		return true
	}
	return t.kind == tokName && sectionKeywords[strings.ToLower(t.text)]
}

// parseExpr parses a linear expression, optionally preceded by "label:".
// It stops at a sense token, a section keyword, or EOF. Returned map
// accumulates coefficients per variable; constant returns any bare
// numeric constant encountered (added, with sign).
func (p *lpParser) parseExpr(allowLabel bool) (map[VarID]float64, float64, error) {
	coefs := make(map[VarID]float64)
	constant := 0.0

	if allowLabel {
		// "name :" prefix.
		if t, ok := p.peek(); ok && t.kind == tokName && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokColon {
			if !sectionKeywords[strings.ToLower(t.text)] {
				p.pos += 2
			}
		}
	}

	sign := 1.0
	havePending := false
	pendingCoef := 1.0
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		if t.kind == tokSense {
			break
		}
		if t.kind == tokName && sectionKeywords[strings.ToLower(t.text)] {
			break
		}
		// A "name :" ahead means a new constraint label; stop.
		if t.kind == tokName && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokColon {
			break
		}
		p.pos++
		switch t.kind {
		case tokPlus:
			if havePending {
				constant += sign * pendingCoef
				havePending = false
			}
			sign, pendingCoef = 1, 1
		case tokMinus:
			if havePending {
				constant += sign * pendingCoef
				havePending = false
			}
			sign, pendingCoef = -1, 1
		case tokNum:
			if havePending {
				// Two numbers in a row: treat prior as constant.
				constant += sign * pendingCoef
			}
			pendingCoef = t.num
			havePending = true
		case tokName:
			id := p.getVar(t.text)
			coefs[id] += sign * pendingCoef
			sign, pendingCoef, havePending = 1, 1, false
		default:
			return nil, 0, fmt.Errorf("line %d: unexpected token in expression", t.line)
		}
	}
	if havePending {
		constant += sign * pendingCoef
	}
	return coefs, constant, nil
}

func (p *lpParser) parseConstraint() error {
	var name string
	if t, ok := p.peek(); ok && t.kind == tokName && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokColon {
		name = t.text
		p.pos += 2
	}
	coefs, lhsConst, err := p.parseExpr(false)
	if err != nil {
		return fmt.Errorf("lp: constraint %q: %w", name, err)
	}
	st, ok := p.next()
	if !ok || st.kind != tokSense {
		return fmt.Errorf("lp: constraint %q: expected sense", name)
	}
	// RHS: signed number.
	rsign := 1.0
	t, ok := p.next()
	for ok && (t.kind == tokPlus || t.kind == tokMinus) {
		if t.kind == tokMinus {
			rsign = -rsign
		}
		t, ok = p.next()
	}
	if !ok || t.kind != tokNum {
		return fmt.Errorf("lp: constraint %q: expected numeric RHS", name)
	}
	rhs := rsign*t.num - lhsConst

	var sense Sense
	switch st.text {
	case "<=":
		sense = LE
	case ">=":
		sense = GE
	default:
		sense = EQ
	}
	terms := make([]Term, 0, len(coefs))
	// Deterministic order: by variable ID.
	for id := VarID(0); int(id) < p.m.NumVars(); id++ {
		if c, ok := coefs[id]; ok && !tol.IsZero(c) {
			terms = append(terms, Term{Var: id, Coef: c})
		}
	}
	p.m.AddRow(name, terms, sense, rhs)
	return nil
}

func (p *lpParser) parseBounds() error {
	for {
		if p.atSectionBoundary() {
			return nil
		}
		// Forms:
		//   lo <= x <= hi | x <= hi | x >= lo | x = v | x free
		//   -inf <= x <= hi etc. (inf spelled inf/infinity, signed)
		lo := math.Inf(-1)
		hasLo := false
		if v, ok := p.tryBoundNum(); ok {
			lo = v
			hasLo = true
			if t, ok2 := p.next(); !ok2 || t.kind != tokSense || t.text != "<=" {
				return fmt.Errorf("lp: bounds: expected <= after lower bound")
			}
		}
		t, ok := p.next()
		if !ok || t.kind != tokName {
			return fmt.Errorf("lp: bounds: expected variable name")
		}
		id := p.getVar(t.text)
		v := p.m.Var(id)
		newLo, newHi := v.Lower, v.Upper
		if hasLo {
			newLo = lo
		}

		if nt, ok2 := p.peek(); ok2 && nt.kind == tokName && strings.EqualFold(nt.text, "free") {
			p.pos++
			newLo, newHi = math.Inf(-1), math.Inf(1)
		} else if nt, ok2 := p.peek(); ok2 && nt.kind == tokSense {
			p.pos++
			val, ok3 := p.tryBoundNum()
			if !ok3 {
				return fmt.Errorf("lp: bounds: expected number after %s", nt.text)
			}
			switch nt.text {
			case "<=":
				newHi = val
			case ">=":
				newLo = val
			default:
				newLo, newHi = val, val
			}
		} else if !hasLo {
			return fmt.Errorf("lp: bounds: malformed bound for %q", t.text)
		}
		if !hasLo && tol.IsZero(newLo) && math.IsInf(newHi, -1) {
			return fmt.Errorf("lp: bounds: malformed bound for %q", t.text)
		}
		p.m.SetBounds(id, newLo, newHi)
		p.boundSet[t.text] = true
	}
}

// tryBoundNum consumes an optionally-signed number or infinity token if
// present.
func (p *lpParser) tryBoundNum() (float64, bool) {
	save := p.pos
	sign := 1.0
	t, ok := p.next()
	for ok && (t.kind == tokPlus || t.kind == tokMinus) {
		if t.kind == tokMinus {
			sign = -sign
		}
		t, ok = p.next()
	}
	if !ok {
		p.pos = save
		return 0, false
	}
	if t.kind == tokNum {
		return sign * t.num, true
	}
	if t.kind == tokName && (strings.EqualFold(t.text, "inf") || strings.EqualFold(t.text, "infinity")) {
		return sign * math.Inf(1), true
	}
	p.pos = save
	return 0, false
}

func (p *lpParser) parseVarList(vt VarType) {
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokName || sectionKeywords[strings.ToLower(t.text)] {
			return
		}
		p.pos++
		id := p.getVar(t.text)
		v := p.m.Var(id)
		lo, hi := v.Lower, v.Upper
		if vt == Binary && !p.boundSet[t.text] {
			lo, hi = 0, 1
		}
		p.m.vars[id].Type = vt
		p.m.SetBounds(id, lo, hi)
	}
}
