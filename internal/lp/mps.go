package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/etransform/etransform/internal/tol"
)

// WriteMPS writes the model in free-format MPS, the other interchange
// format major solvers accept. The objective row is named OBJ; integer
// variables are bracketed by INTORG/INTEND markers; binaries get BV
// bounds.
func (m *Model) WriteMPS(w io.Writer) error {
	if err := m.Err(); err != nil {
		return err
	}
	names, err := m.lpNames()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	name := m.Name
	if name == "" {
		name = "MODEL"
	}
	fmt.Fprintf(bw, "NAME %s\n", sanitizeLPName(name))

	// ROWS: objective plus constraints.
	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintln(bw, " N OBJ")
	rowNames := make([]string, m.NumRows())
	seen := map[string]bool{"OBJ": true}
	for r := 0; r < m.NumRows(); r++ {
		row := m.Row(RowID(r))
		rn := fmt.Sprintf("c%d", r)
		if row.Name != "" {
			rn = sanitizeLPName(row.Name)
		}
		if seen[rn] {
			rn = fmt.Sprintf("%s_r%d", rn, r)
		}
		seen[rn] = true
		rowNames[r] = rn
		sense := "L"
		switch row.Sense {
		case GE:
			sense = "G"
		case EQ:
			sense = "E"
		}
		fmt.Fprintf(bw, " %s %s\n", sense, rn)
	}

	// COLUMNS, column-major: build per-variable entries.
	type entry struct {
		row  string
		coef float64
	}
	cols := make([][]entry, m.NumVars())
	for j := 0; j < m.NumVars(); j++ {
		if c := m.Var(VarID(j)).Cost; !tol.IsZero(c) {
			cols[j] = append(cols[j], entry{"OBJ", c})
		}
	}
	for r := 0; r < m.NumRows(); r++ {
		for _, t := range m.Row(RowID(r)).Terms {
			cols[t.Var] = append(cols[t.Var], entry{rowNames[r], t.Coef})
		}
	}
	fmt.Fprintln(bw, "COLUMNS")
	inInt := false
	markers := 0
	for j := 0; j < m.NumVars(); j++ {
		isInt := m.Var(VarID(j)).Type != Continuous
		if isInt && !inInt {
			fmt.Fprintf(bw, " MARKER%d 'MARKER' 'INTORG'\n", markers)
			markers++
			inInt = true
		} else if !isInt && inInt {
			fmt.Fprintf(bw, " MARKER%d 'MARKER' 'INTEND'\n", markers)
			markers++
			inInt = false
		}
		for _, e := range cols[j] {
			fmt.Fprintf(bw, " %s %s %s\n", names[j], e.row, fmtLPNum(e.coef))
		}
		if len(cols[j]) == 0 {
			// Variables absent from COLUMNS would vanish for most
			// readers; anchor with an explicit zero objective entry.
			fmt.Fprintf(bw, " %s OBJ 0\n", names[j])
		}
	}
	if inInt {
		fmt.Fprintf(bw, " MARKER%d 'MARKER' 'INTEND'\n", markers)
	}

	fmt.Fprintln(bw, "RHS")
	for r := 0; r < m.NumRows(); r++ {
		if rhs := m.Row(RowID(r)).RHS; !tol.IsZero(rhs) {
			fmt.Fprintf(bw, " RHS %s %s\n", rowNames[r], fmtLPNum(rhs))
		}
	}

	fmt.Fprintln(bw, "BOUNDS")
	for j := 0; j < m.NumVars(); j++ {
		v := m.Var(VarID(j))
		lo, hi := v.Lower, v.Upper
		n := names[j]
		switch {
		case v.Type == Binary && tol.IsZero(lo) && tol.Same(hi, 1):
			fmt.Fprintf(bw, " BV BND %s\n", n)
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			fmt.Fprintf(bw, " FR BND %s\n", n)
		case math.IsInf(hi, 1):
			fmt.Fprintf(bw, " LO BND %s %s\n", n, fmtLPNum(lo))
		case math.IsInf(lo, -1):
			fmt.Fprintf(bw, " MI BND %s\n", n)
			fmt.Fprintf(bw, " UP BND %s %s\n", n, fmtLPNum(hi))
		case tol.Same(lo, hi):
			fmt.Fprintf(bw, " FX BND %s %s\n", n, fmtLPNum(lo))
		default:
			fmt.Fprintf(bw, " LO BND %s %s\n", n, fmtLPNum(lo))
			fmt.Fprintf(bw, " UP BND %s %s\n", n, fmtLPNum(hi))
		}
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

// ParseMPS reads a model in (free-format) MPS as produced by WriteMPS and
// common solvers: NAME/ROWS/COLUMNS/RHS/RANGES-free/BOUNDS/ENDATA with
// INTORG/INTEND markers and N/L/G/E rows. Exactly one N row becomes the
// objective.
func ParseMPS(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	m := NewModel("")
	section := ""
	rowSense := map[string]Sense{}
	rowTerms := map[string][]Term{}
	rowRHS := map[string]float64{}
	var rowOrder []string
	objRow := ""
	varID := map[string]VarID{}
	inInt := false
	line := 0

	getVar := func(name string, integer bool) VarID {
		if id, ok := varID[name]; ok {
			return id
		}
		vt := Continuous
		if integer {
			vt = Integer
		}
		id := m.AddVar(Variable{Name: name, Lower: 0, Upper: math.Inf(1), Type: vt})
		varID[name] = id
		return id
	}

	for sc.Scan() {
		line++
		raw := sc.Text()
		if i := strings.IndexByte(raw, '*'); i == 0 {
			continue // comment line
		}
		fields := strings.Fields(raw)
		if len(fields) == 0 {
			continue
		}
		// Section headers start in column 0; data lines are indented.
		// (The RHS vector is conventionally itself named "RHS", so
		// indentation is the only reliable discriminator.)
		if raw[0] != ' ' && raw[0] != '\t' {
			upper := strings.ToUpper(fields[0])
			switch upper {
			case "NAME":
				if len(fields) > 1 {
					m.Name = fields[1]
				}
				continue
			case "ROWS", "COLUMNS", "RHS", "RANGES", "BOUNDS", "ENDATA", "OBJSENSE":
				section = upper
				if section == "ENDATA" {
					goto done
				}
				continue
			default:
				return nil, fmt.Errorf("lp: MPS line %d: unknown section %q", line, fields[0])
			}
		}
		switch section {
		case "OBJSENSE":
			if strings.EqualFold(fields[0], "MAX") || strings.EqualFold(fields[0], "MAXIMIZE") {
				return nil, fmt.Errorf("lp: MPS line %d: maximization not supported; negate the objective", line)
			}
		case "ROWS":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lp: MPS line %d: malformed row", line)
			}
			sense := strings.ToUpper(fields[0])
			name := fields[1]
			switch sense {
			case "N":
				if objRow == "" {
					objRow = name
				}
			case "L":
				rowSense[name] = LE
				rowOrder = append(rowOrder, name)
			case "G":
				rowSense[name] = GE
				rowOrder = append(rowOrder, name)
			case "E":
				rowSense[name] = EQ
				rowOrder = append(rowOrder, name)
			default:
				return nil, fmt.Errorf("lp: MPS line %d: unknown row sense %q", line, sense)
			}
		case "COLUMNS":
			if len(fields) >= 3 && strings.Contains(raw, "'MARKER'") {
				if strings.Contains(raw, "'INTORG'") {
					inInt = true
				} else if strings.Contains(raw, "'INTEND'") {
					inInt = false
				}
				continue
			}
			// col row val [row val]
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, fmt.Errorf("lp: MPS line %d: malformed column entry", line)
			}
			id := getVar(fields[0], inInt)
			for k := 1; k+1 < len(fields); k += 2 {
				rn := fields[k]
				val, err := parseMPSNum(fields[k+1])
				if err != nil {
					return nil, fmt.Errorf("lp: MPS line %d: bad coefficient %q", line, fields[k+1])
				}
				if rn == objRow {
					m.SetCost(id, m.Var(id).Cost+val)
					continue
				}
				if _, ok := rowSense[rn]; !ok {
					return nil, fmt.Errorf("lp: MPS line %d: unknown row %q", line, rn)
				}
				rowTerms[rn] = append(rowTerms[rn], Term{Var: id, Coef: val})
			}
		case "RHS":
			// rhsname row val [row val]
			if len(fields) < 3 {
				return nil, fmt.Errorf("lp: MPS line %d: malformed RHS", line)
			}
			for k := 1; k+1 < len(fields); k += 2 {
				rn := fields[k]
				val, err := parseMPSNum(fields[k+1])
				if err != nil {
					return nil, fmt.Errorf("lp: MPS line %d: bad RHS %q", line, fields[k+1])
				}
				rowRHS[rn] = val
			}
		case "RANGES":
			return nil, fmt.Errorf("lp: MPS line %d: RANGES not supported", line)
		case "BOUNDS":
			if len(fields) < 3 {
				return nil, fmt.Errorf("lp: MPS line %d: malformed bound", line)
			}
			kind := strings.ToUpper(fields[0])
			vn := fields[2]
			id, ok := varID[vn]
			if !ok {
				id = getVar(vn, false)
			}
			v := m.Var(id)
			lo, hi := v.Lower, v.Upper
			var val float64
			if len(fields) >= 4 {
				parsed, err := parseMPSNum(fields[3])
				if err != nil {
					return nil, fmt.Errorf("lp: MPS line %d: bad bound %q", line, fields[3])
				}
				val = parsed
			}
			switch kind {
			case "LO":
				lo = val
			case "UP":
				hi = val
			case "FX":
				lo, hi = val, val
			case "FR":
				lo, hi = math.Inf(-1), math.Inf(1)
			case "MI":
				lo = math.Inf(-1)
			case "PL":
				hi = math.Inf(1)
			case "BV":
				lo, hi = 0, 1
				m.vars[id].Type = Binary
			default:
				return nil, fmt.Errorf("lp: MPS line %d: unsupported bound kind %q", line, kind)
			}
			if lo > hi {
				return nil, fmt.Errorf("lp: MPS line %d: inverted bounds for %q", line, vn)
			}
			m.SetBounds(id, lo, hi)
		case "":
			return nil, fmt.Errorf("lp: MPS line %d: data before any section header", line)
		}
	}
done:
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lp: reading MPS: %w", err)
	}
	for _, rn := range rowOrder {
		m.AddRow(rn, rowTerms[rn], rowSense[rn], rowRHS[rn])
	}
	if err := m.Err(); err != nil {
		return nil, fmt.Errorf("lp: MPS input built an invalid model: %w", err)
	}
	return m, nil
}

// parseMPSNum parses a finite MPS numeric field; NaN and infinities are
// rejected so hostile input cannot corrupt the model.
func parseMPSNum(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}
