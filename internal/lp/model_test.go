package lp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func buildSmallModel(t *testing.T) (*Model, VarID, VarID, VarID) {
	t.Helper()
	m := NewModel("small")
	x := m.AddContinuous("x", 0, 10, 3)
	y := m.AddContinuous("y", -5, math.Inf(1), -2)
	b := m.AddBinary("b", 100)
	m.AddRow("cap", []Term{{x, 1}, {y, 2}}, LE, 8)
	m.AddRow("link", []Term{{y, 1}, {b, -4}}, GE, -1)
	m.AddRow("fix", []Term{{x, 1}}, EQ, 2)
	return m, x, y, b
}

func TestModelBasics(t *testing.T) {
	m, x, y, b := buildSmallModel(t)
	if m.NumVars() != 3 || m.NumRows() != 3 {
		t.Fatalf("dims = %d vars, %d rows", m.NumVars(), m.NumRows())
	}
	if m.NumNonzeros() != 5 {
		t.Errorf("nonzeros = %d, want 5", m.NumNonzeros())
	}
	if m.NumIntegral() != 1 {
		t.Errorf("integral = %d, want 1", m.NumIntegral())
	}
	if got := m.Var(x).Cost; got != 3 {
		t.Errorf("x cost = %v", got)
	}
	if got := m.Var(b).Type; got != Binary {
		t.Errorf("b type = %v", got)
	}
	pt := []float64{2, 3, 1}
	if got, want := m.Objective(pt), 3*2.0-2*3.0+100*1.0; got != want {
		t.Errorf("Objective = %v, want %v", got, want)
	}
	if got := m.RowActivity(0, pt); got != 8 {
		t.Errorf("RowActivity(cap) = %v, want 8", got)
	}
	_ = y
}

func TestModelMergesDuplicateTerms(t *testing.T) {
	m := NewModel("dup")
	x := m.AddContinuous("x", 0, 1, 0)
	r := m.AddRow("r", []Term{{x, 2}, {x, 3}, {x, -5}}, LE, 1)
	if got := len(m.Row(r).Terms); got != 0 {
		t.Errorf("terms after merge = %d, want 0 (coefficients cancel)", got)
	}
	r2 := m.AddRow("r2", []Term{{x, 2}, {x, 3}}, LE, 1)
	row := m.Row(r2)
	if len(row.Terms) != 1 || row.Terms[0].Coef != 5 {
		t.Errorf("merged terms = %+v, want single coef 5", row.Terms)
	}
}

func TestModelRejectsInvalidInput(t *testing.T) {
	cases := []struct {
		name string
		f    func(m *Model, x VarID)
	}{
		{"inverted-bounds", func(m *Model, x VarID) { m.AddContinuous("bad", 5, 1, 0) }},
		{"nan-cost", func(m *Model, x VarID) { m.AddVar(Variable{Name: "n", Lower: 0, Upper: 1, Cost: math.NaN()}) }},
		{"unknown-var", func(m *Model, x VarID) { m.AddRow("r", []Term{{VarID(99), 1}}, LE, 1) }},
		{"inf-coef", func(m *Model, x VarID) { m.AddRow("r", []Term{{x, math.Inf(1)}}, LE, 1) }},
		{"bad-sense", func(m *Model, x VarID) { m.AddRow("r", []Term{{x, 1}}, Sense(0), 1) }},
		{"nan-rhs", func(m *Model, x VarID) { m.AddRow("r", []Term{{x, 1}}, LE, math.NaN()) }},
		{"bad-setbounds", func(m *Model, x VarID) { m.SetBounds(x, 3, 1) }},
		{"inf-setcost", func(m *Model, x VarID) { m.SetCost(x, math.Inf(1)) }},
		{"setcost-unknown-var", func(m *Model, x VarID) { m.SetCost(VarID(42), 1) }},
		{"setbounds-unknown-var", func(m *Model, x VarID) { m.SetBounds(VarID(-1), 0, 1) }},
	}
	for _, c := range cases {
		m := NewModel("p")
		x := m.AddContinuous("x", 0, 1, 0)
		if err := m.Err(); err != nil {
			t.Fatalf("%s: clean model has error %v", c.name, err)
		}
		c.f(m, x)
		if m.Err() == nil {
			t.Errorf("%s: expected model error, got nil", c.name)
			continue
		}
		// A broken model must be refused downstream and its clone must
		// carry the error too.
		var buf bytes.Buffer
		if err := m.WriteLP(&buf); err == nil {
			t.Errorf("%s: WriteLP accepted a broken model", c.name)
		}
		if err := m.WriteMPS(&buf); err == nil {
			t.Errorf("%s: WriteMPS accepted a broken model", c.name)
		}
		if m.Clone().Err() == nil {
			t.Errorf("%s: Clone dropped the model error", c.name)
		}
	}
}

func TestModelErrKeepsIDsStable(t *testing.T) {
	m := NewModel("p")
	x := m.AddContinuous("x", 0, 1, 0)
	bad := m.AddContinuous("bad", 5, 1, 0) // inverted: records error
	y := m.AddContinuous("y", 0, 2, 0)
	if x != 0 || bad != 1 || y != 2 {
		t.Fatalf("variable IDs not dense/stable: %d %d %d", x, bad, y)
	}
	if m.NumVars() != 3 {
		t.Fatalf("NumVars = %d, want 3", m.NumVars())
	}
	if v := m.Var(bad); v.Lower > v.Upper {
		t.Errorf("sanitized variable still has inverted bounds [%v, %v]", v.Lower, v.Upper)
	}
	if m.Err() == nil {
		t.Error("expected recorded model error")
	}
}

func TestBinaryBoundsClamped(t *testing.T) {
	m := NewModel("clamp")
	b := m.AddVar(Variable{Name: "b", Lower: -3, Upper: 7, Type: Binary})
	v := m.Var(b)
	if v.Lower != 0 || v.Upper != 1 {
		t.Errorf("binary bounds = [%v,%v], want [0,1]", v.Lower, v.Upper)
	}
}

func TestCheckFeasible(t *testing.T) {
	m, _, _, _ := buildSmallModel(t)
	// x=2 (fix), y=3 → cap: 2+6=8 ≤ 8 ok; link: 3-4b ≥ -1 → b=1 ok.
	good := []float64{2, 3, 1}
	if err := m.CheckFeasible(good, FeasTol); err != nil {
		t.Errorf("feasible point rejected: %v", err)
	}
	cases := []struct {
		name string
		pt   []float64
	}{
		{"wrong-len", []float64{1, 2}},
		{"bound-violation", []float64{11, 3, 1}},
		{"row-violation", []float64{2, 4, 1}},
		{"eq-violation", []float64{3, 2, 1}},
		{"fractional-binary", []float64{2, 3, 0.5}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := m.CheckFeasible(tt.pt, FeasTol); err == nil {
				t.Error("infeasible point accepted")
			}
		})
	}
}

func TestRelaxAndClone(t *testing.T) {
	m, _, _, b := buildSmallModel(t)
	r := m.Relax()
	if r.NumIntegral() != 0 {
		t.Errorf("relaxed model has %d integral vars", r.NumIntegral())
	}
	if m.Var(b).Type != Binary {
		t.Error("Relax mutated the original")
	}
	c := m.Clone()
	c.SetCost(b, 1)
	c.AddRow("extra", []Term{{b, 1}}, LE, 1)
	if m.Var(b).Cost != 100 || m.NumRows() != 3 {
		t.Error("Clone shares state with original")
	}
}

// TestCloneIntegralityAndStickyError pins down the Clone/Relax contract
// the branch & bound warm-start path leans on: integrality marks and the
// sticky construction error survive Clone (and Relax's internal Clone),
// and bound mutations on a clone — the exact mutation branching applies
// before a warm re-solve — never leak back into the original.
func TestCloneIntegralityAndStickyError(t *testing.T) {
	m := NewModel("marks")
	x := m.AddBinary("x", -1)
	y := m.AddVar(Variable{Name: "y", Lower: 0, Upper: 7, Cost: -2, Type: Integer})
	z := m.AddContinuous("z", 0, 3, 1)
	m.AddRow("cap", []Term{{x, 1}, {y, 1}, {z, 1}}, LE, 5)

	c := m.Clone()
	if c.Var(x).Type != Binary || c.Var(y).Type != Integer || c.Var(z).Type != Continuous {
		t.Errorf("Clone lost integrality marks: %v/%v/%v",
			c.Var(x).Type, c.Var(y).Type, c.Var(z).Type)
	}
	// Branch-style bound mutations on the clone must not alias the
	// original's variable storage.
	c.SetBounds(y, 0, 2)
	c.SetBounds(x, 1, 1)
	if m.Var(y).Upper != 7 || m.Var(x).Lower != 0 {
		t.Errorf("SetBounds on clone mutated original: y=[%v,%v] x=[%v,%v]",
			m.Var(y).Lower, m.Var(y).Upper, m.Var(x).Lower, m.Var(x).Upper)
	}
	// And the reverse: tightening the original leaves the clone alone.
	m.SetBounds(z, 1, 2)
	if c.Var(z).Lower != 0 || c.Var(z).Upper != 3 {
		t.Errorf("SetBounds on original mutated clone: z=[%v,%v]",
			c.Var(z).Lower, c.Var(z).Upper)
	}

	// Sticky error: a broken model stays broken through Clone and Relax,
	// so a solver can never be handed a laundered copy.
	bad := NewModel("bad")
	bad.AddContinuous("w", 5, 1, 0) // inverted bounds record an error
	if bad.Err() == nil {
		t.Fatal("inverted bounds did not record a model error")
	}
	if bc := bad.Clone(); bc.Err() == nil {
		t.Error("Clone dropped the sticky model error")
	}
	if br := bad.Relax(); br.Err() == nil {
		t.Error("Relax dropped the sticky model error")
	}
	// Relax must keep everything but the marks: same bounds, costs, rows.
	r := m.Relax()
	if r.NumIntegral() != 0 {
		t.Errorf("Relax left %d integral vars", r.NumIntegral())
	}
	if r.Var(y).Upper != 7 || r.Var(y).Cost != -2 || r.NumRows() != m.NumRows() {
		t.Error("Relax changed more than the integrality marks")
	}
}

func TestStatsAndStrings(t *testing.T) {
	m, _, _, _ := buildSmallModel(t)
	s := m.Stats()
	for _, want := range []string{"small", "3 rows", "3 cols", "1 integral", "5 nonzeros"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats %q missing %q", s, want)
		}
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Sense strings wrong")
	}
	if Continuous.String() != "continuous" || Binary.String() != "binary" || Integer.String() != "integer" {
		t.Error("VarType strings wrong")
	}
}

func TestSolutionValue(t *testing.T) {
	s := &Solution{Status: StatusOptimal, X: []float64{1.5, 2.5}}
	if s.Value(1) != 2.5 {
		t.Errorf("Value(1) = %v", s.Value(1))
	}
	if s.Value(9) != 0 {
		t.Errorf("Value(out-of-range) = %v, want 0", s.Value(9))
	}
	empty := &Solution{Status: StatusInfeasible}
	if empty.Value(0) != 0 {
		t.Error("Value on nil X should be 0")
	}
	if !StatusOptimal.HasSolution() || StatusInfeasible.HasSolution() || StatusUnbounded.HasSolution() {
		t.Error("HasSolution misclassifies")
	}
	for _, st := range []Status{StatusOptimal, StatusInfeasible, StatusUnbounded, StatusIterLimit, StatusNodeLimit, StatusFeasible} {
		if strings.HasPrefix(st.String(), "Status(") {
			t.Errorf("missing String for %d", int(st))
		}
	}
}
