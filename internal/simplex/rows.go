package simplex

import "github.com/etransform/etransform/internal/tol"

// This file exports a read-only view of the optimal simplex tableau for
// cut separation (internal/milp/cuts). Gomory mixed-integer cuts are
// derived from rows of B⁻¹·[A I], which only the simplex engine can
// produce: the sparse engine never materializes the inverse, so each
// requested row is read back through the LU factorization with one
// BTRAN (binvRow) and expanded against the CSR row mirror.

// ColStatus is the exported status of a tableau column in an optimal
// basis. Columns are indexed 0..NumStruct()-1 for structural variables
// and NumStruct()+r for the slack of row r; artificial columns are
// never exposed (a snapshot exists only when none is basic).
type ColStatus int8

// Column statuses.
const (
	// ColAtLower: nonbasic at its lower bound.
	ColAtLower ColStatus = iota + 1
	// ColAtUpper: nonbasic at its upper bound.
	ColAtUpper
	// ColBasic: basic (its value lives in the row it occupies).
	ColBasic
	// ColFree: nonbasic free variable resting at zero.
	ColFree
)

// TableauView is a read-only window onto the Solver's internal tableau,
// valid only while the tableau still describes the most recent solve:
// any subsequent Solve/SolveFrom/TryWarm call on the same Solver
// invalidates it. It deliberately exposes no mutation — cut separation
// reads rows, statuses and bounds, and everything it derives is
// re-verified against the model before use.
type TableauView struct {
	t *tableau
}

// TableauView returns a view of the optimal tableau left behind by the
// Solver's most recent solve, or nil when there is nothing to read: the
// last solve did not end StatusOptimal, or an artificial column is
// still basic (possible only in degenerate cases — the same condition
// under which Basis returns nil).
func (s *Solver) TableauView() *TableauView {
	t := &s.t
	if !t.lastOptimal {
		return nil
	}
	n, m := t.nStruct, t.m
	for r := 0; r < m; r++ {
		if int(t.basicIn[r]) >= n+m {
			return nil
		}
	}
	return &TableauView{t: t}
}

// NumRows returns the row count m. Slack j of row r is column
// NumStruct()+r.
func (v *TableauView) NumRows() int { return v.t.m }

// NumStruct returns the structural-variable count n.
func (v *TableauView) NumStruct() int { return v.t.nStruct }

// Status returns the status of column j (0 ≤ j < NumStruct()+NumRows()).
func (v *TableauView) Status(j int) ColStatus {
	switch v.t.status[j] {
	case atLower:
		return ColAtLower
	case atUpper:
		return ColAtUpper
	case basic:
		return ColBasic
	default:
		return ColFree
	}
}

// Value returns the current value of column j.
func (v *TableauView) Value(j int) float64 { return v.t.value[j] }

// Bounds returns the bounds of column j as the tableau solved them
// (slack bounds encode the row sense: LE [0,∞), GE (−∞,0], EQ [0,0]).
func (v *TableauView) Bounds(j int) (lo, hi float64) {
	return v.t.lower[j], v.t.upper[j]
}

// BasicCol returns the column basic in row r.
func (v *TableauView) BasicCol(r int) int { return int(v.t.basicIn[r]) }

// BasicValue returns the value of the column basic in row r.
func (v *TableauView) BasicValue(r int) float64 { return v.t.xB[r] }

// Row computes tableau row r — row r of B⁻¹·[A I] — densely over the
// NumStruct()+NumRows() structural and slack columns, into buf (grown
// as needed) which it returns. One BTRAN produces ρ = B⁻ᵀe_r; the
// structural part is ρᵀA expanded against the CSR row mirror (only rows
// where ρ is nonzero are visited), and the slack part is ρ itself
// (slack columns are unit columns with coefficient +1).
func (v *TableauView) Row(r int, buf []float64) []float64 {
	t := v.t
	n, m := t.nStruct, t.m
	buf = reuseF64(buf, n+m)
	rho := t.binvRow(r)
	for ri := 0; ri < m; ri++ {
		p := rho[ri]
		if tol.IsZero(p) {
			continue
		}
		for k := t.rowStart[ri]; k < t.rowStart[ri+1]; k++ {
			buf[t.rowVar[k]] += p * t.rowCoef[k]
		}
		buf[n+ri] = p
	}
	return buf
}
