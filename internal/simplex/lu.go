package simplex

import (
	"fmt"
	"math"
	"sort"

	"github.com/etransform/etransform/internal/tol"
)

// This file is the sparse linear-algebra backend of the revised simplex:
// a sparse LU factorization of the basis matrix with Markowitz-style
// threshold pivoting, plus a product-form eta file recording the basis
// changes since the last factorization. Together they answer the three
// questions the pivot loop asks —
//
//	FTRAN:  w = B⁻¹·a      (entering column through the basis)
//	BTRAN:  y = B⁻ᵀ·c      (duals, and ρ = B⁻ᵀ·e_r for the pivot row)
//	UPDATE: B ← B with column r replaced
//
// — in time proportional to the factors' nonzeros instead of the dense
// engine's O(m²) per operation. See DESIGN.md ("Sparse linear algebra")
// for the math and the refactorization policy.

// luFactor is a sparse LU factorization of the m×m basis matrix B,
// B·Q = L·U under a row permutation: column q[k] of B (a basis
// position, i.e. a tableau row index) is eliminated at step k with
// pivot row p[k].
//
//   - L is unit lower triangular "under the permutation": column k holds
//     the multipliers at original row indices, with an implicit 1 at row
//     p[k].
//   - U's column k holds its off-diagonal entries at elimination
//     positions j < k, with the pivot value in udiag[k].
//
// The factorization is left-looking Gilbert–Peierls: each column is
// sparse-triangular-solved against the L built so far (pattern by DFS
// reachability, numerics in reverse postorder), then a pivot is chosen
// by the Markowitz-style rule below.
//
// Pivot rule: among the eliminable rows of the current column, rows
// within tol.Markowitz of the largest magnitude are stability-
// acceptable; of those, the row with the fewest nonzeros in B (the
// Markowitz sparsity count) is picked, ties to the lowest row index so
// factorization is deterministic. A column whose best candidate is
// below tol.Singular declares the basis singular.
type luFactor struct {
	m int

	lcolp []int32 // len m+1: L column pointers
	lrows []int32 // original row indices
	lvals []float64

	ucolp []int32 // len m+1: U column pointers
	urows []int32 // elimination positions < k
	uvals []float64
	udiag []float64 // len m: pivot values

	p    []int32 // p[k] = original row pivoted at step k
	pinv []int32 // pinv[row] = elimination step, -1 until pivoted
	q    []int32 // q[k] = basis position (tableau row) eliminated at step k

	// Scratch reused across factorize/solve calls.
	x      []float64 // dense accumulator, original-row space
	pos    []float64 // dense accumulator, elimination-position space
	found  []int32   // DFS postorder pattern of the current column
	stack  []int32   // DFS node stack
	cstack []int32   // DFS per-node next-child cursor
	mark   []int32   // DFS visited stamps
	stamp  int32
	rowCnt []int32 // nonzeros per row of B (Markowitz counts)
	nnz    []int32 // nonzeros per basis column (ordering key)
}

// factorize builds the LU factors of the basis described by basicIn:
// column i of B is cols[basicIn[i]]. It reuses all scratch from prior
// calls and reports a singular basis as an error naming the offending
// elimination step.
func (f *luFactor) factorize(m int, cols []sparseCol, basicIn []int32) error {
	f.m = m
	f.lcolp = reuseI32(f.lcolp, m+1)
	f.ucolp = reuseI32(f.ucolp, m+1)
	f.udiag = reuseF64(f.udiag, m)
	f.p = reuseI32(f.p, m)
	f.pinv = reuseI32(f.pinv, m)
	f.q = reuseI32(f.q, m)
	f.x = reuseF64(f.x, m)
	f.pos = reuseF64(f.pos, m)
	f.mark = reuseI32(f.mark, m)
	f.rowCnt = reuseI32(f.rowCnt, m)
	f.nnz = reuseI32(f.nnz, m)
	f.lrows, f.lvals = f.lrows[:0], f.lvals[:0]
	f.urows, f.uvals = f.urows[:0], f.uvals[:0]
	f.stamp = 0

	for i := 0; i < m; i++ {
		f.pinv[i] = -1
		f.q[i] = int32(i)
		c := &cols[basicIn[i]]
		f.nnz[i] = int32(len(c.rows))
		for _, r := range c.rows {
			f.rowCnt[r]++
		}
	}
	// Columns are eliminated sparsest-first: with the slack-heavy bases
	// this solver sees, that keeps L and U near the original pattern
	// (little fill), which is the whole point of a sparse factorization.
	order := f.q
	sort.Slice(order, func(a, b int) bool {
		if f.nnz[order[a]] != f.nnz[order[b]] {
			return f.nnz[order[a]] < f.nnz[order[b]]
		}
		return order[a] < order[b]
	})

	for k := 0; k < m; k++ {
		c := &cols[basicIn[f.q[k]]]
		// Pattern of L⁻¹·c by DFS reachability over the columns of L
		// built so far; f.found ends in postorder.
		f.found = f.found[:0]
		f.stamp++
		for _, r := range c.rows {
			f.reach(r)
		}
		// Numeric sparse triangular solve in reverse postorder.
		for i, r := range c.rows {
			f.x[r] = c.coefs[i]
		}
		for idx := len(f.found) - 1; idx >= 0; idx-- {
			r := f.found[idx]
			t := f.pinv[r]
			if t < 0 {
				continue
			}
			xr := f.x[r]
			if tol.IsZero(xr) {
				continue
			}
			for e := f.lcolp[t]; e < f.lcolp[t+1]; e++ {
				f.x[f.lrows[e]] -= f.lvals[e] * xr
			}
		}
		// Split the pattern: pivoted rows feed U, unpivoted rows are the
		// pivot candidates for this column.
		maxAbs := 0.0
		for _, r := range f.found {
			if f.pinv[r] >= 0 {
				continue
			}
			if a := math.Abs(f.x[r]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs < tol.Singular {
			f.clearFound()
			return fmt.Errorf("simplex: singular basis during LU factorization (elimination step %d, basis column %d)", k, f.q[k])
		}
		pivRow, pivCnt := int32(-1), int32(math.MaxInt32)
		threshold := tol.Markowitz * maxAbs
		for _, r := range f.found {
			if f.pinv[r] >= 0 {
				continue
			}
			if math.Abs(f.x[r]) < threshold {
				continue
			}
			if cnt := f.rowCnt[r]; cnt < pivCnt || (cnt == pivCnt && r < pivRow) {
				pivRow, pivCnt = r, cnt
			}
		}
		diag := f.x[pivRow]
		f.udiag[k] = diag
		for _, r := range f.found {
			xr := f.x[r]
			if tol.IsZero(xr) {
				continue
			}
			if t := f.pinv[r]; t >= 0 {
				f.urows = append(f.urows, t)
				f.uvals = append(f.uvals, xr)
			} else if r != pivRow {
				f.lrows = append(f.lrows, r)
				f.lvals = append(f.lvals, xr/diag)
			}
		}
		f.p[k] = pivRow
		f.pinv[pivRow] = int32(k)
		f.lcolp[k+1] = int32(len(f.lrows))
		f.ucolp[k+1] = int32(len(f.urows))
		f.clearFound()
	}
	return nil
}

func (f *luFactor) clearFound() {
	for _, r := range f.found {
		f.x[r] = 0
	}
}

// reach runs an iterative DFS from row root over the graph of L's
// columns (an edge r→i for every L entry (i, pinv[r])), appending the
// visited rows to f.found in postorder.
func (f *luFactor) reach(root int32) {
	if f.mark[root] == f.stamp {
		return
	}
	f.stack = append(f.stack[:0], root)
	f.cstack = append(f.cstack[:0], 0)
	f.mark[root] = f.stamp
	for len(f.stack) > 0 {
		top := len(f.stack) - 1
		r := f.stack[top]
		t := f.pinv[r]
		advanced := false
		if t >= 0 {
			for e := f.lcolp[t] + f.cstack[top]; e < f.lcolp[t+1]; e++ {
				child := f.lrows[e]
				if f.mark[child] != f.stamp {
					f.cstack[top] = e - f.lcolp[t] + 1
					f.stack = append(f.stack, child)
					f.cstack = append(f.cstack, 0)
					f.mark[child] = f.stamp
					advanced = true
					break
				}
			}
		}
		if !advanced {
			f.found = append(f.found, r)
			f.stack = f.stack[:top]
			f.cstack = f.cstack[:top]
		}
	}
}

// solveB overwrites v (dense, original-row space) with B⁻¹·v, indexed
// by basis position: v[i] becomes the multiplier of basis column i.
func (f *luFactor) solveB(v []float64) {
	m := f.m
	// Forward solve L·g = v; g[k] accumulates at row p[k].
	for k := 0; k < m; k++ {
		gk := v[f.p[k]]
		if tol.IsZero(gk) {
			continue
		}
		for e := f.lcolp[k]; e < f.lcolp[k+1]; e++ {
			v[f.lrows[e]] -= f.lvals[e] * gk
		}
	}
	for k := 0; k < m; k++ {
		f.pos[k] = v[f.p[k]]
	}
	// Backward solve U·z = g in elimination-position space.
	for k := m - 1; k >= 0; k-- {
		zk := f.pos[k] / f.udiag[k]
		f.pos[k] = zk
		if tol.IsZero(zk) {
			continue
		}
		for e := f.ucolp[k]; e < f.ucolp[k+1]; e++ {
			f.pos[f.urows[e]] -= f.uvals[e] * zk
		}
	}
	// Scatter to basis positions: z[k] multiplies basis column q[k].
	for k := 0; k < m; k++ {
		v[f.q[k]] = f.pos[k]
	}
}

// solveBT overwrites v (dense, indexed by basis position: v[i] is the
// right-hand side for basis column i) with the solution y of yᵀ·B = vᵀ,
// indexed by original row.
func (f *luFactor) solveBT(v []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		f.pos[k] = v[f.q[k]]
	}
	// Forward solve Uᵀ·h = c in elimination-position space.
	for k := 0; k < m; k++ {
		s := f.pos[k]
		for e := f.ucolp[k]; e < f.ucolp[k+1]; e++ {
			s -= f.uvals[e] * f.pos[f.urows[e]]
		}
		f.pos[k] = s / f.udiag[k]
	}
	// Backward solve Lᵀ·y = h back in original-row space.
	for i := 0; i < m; i++ {
		v[i] = 0
	}
	for k := 0; k < m; k++ {
		v[f.p[k]] = f.pos[k]
	}
	for k := m - 1; k >= 0; k-- {
		s := v[f.p[k]]
		for e := f.lcolp[k]; e < f.lcolp[k+1]; e++ {
			s -= f.lvals[e] * v[f.lrows[e]]
		}
		v[f.p[k]] = s
	}
}

// etaFile is the product-form update chain: eta e records that basis
// column pivRow[e] was replaced by a column whose FTRAN image (through
// the basis as of that pivot) was w, stored as the pivot value w[r] and
// the sparse off-pivot entries. B⁻¹ after k etas is Eₖ⁻¹·…·E₁⁻¹·B₀⁻¹
// with B₀ the last factorized basis.
type etaFile struct {
	pivRow []int32
	pivVal []float64
	start  []int32 // len count+1: offsets into rows/vals
	rows   []int32
	vals   []float64
}

func (e *etaFile) reset() {
	e.pivRow = e.pivRow[:0]
	e.pivVal = e.pivVal[:0]
	e.rows = e.rows[:0]
	e.vals = e.vals[:0]
	if len(e.start) == 0 {
		e.start = append(e.start, 0)
	}
	e.start = e.start[:1]
}

func (e *etaFile) count() int { return len(e.pivRow) }

// push appends the eta for a pivot in row r with FTRAN column w.
// w[r] must be nonzero (the pivot loop guarantees |w[r]| ≥ tol.Pivot).
func (e *etaFile) push(r int, w []float64) {
	e.pivRow = append(e.pivRow, int32(r))
	e.pivVal = append(e.pivVal, w[r])
	for i, wi := range w {
		if i == r || tol.IsZero(wi) {
			continue
		}
		e.rows = append(e.rows, int32(i))
		e.vals = append(e.vals, wi)
	}
	e.start = append(e.start, int32(len(e.rows)))
}

// ftran applies the eta inverses in order: v ← Eₖ⁻¹·…·E₁⁻¹·v.
func (e *etaFile) ftran(v []float64) {
	for k := 0; k < len(e.pivRow); k++ {
		r := e.pivRow[k]
		vr := v[r] / e.pivVal[k]
		v[r] = vr
		if tol.IsZero(vr) {
			continue
		}
		for idx := e.start[k]; idx < e.start[k+1]; idx++ {
			v[e.rows[idx]] -= e.vals[idx] * vr
		}
	}
}

// btran applies the transposed eta inverses in reverse order:
// v ← E₁⁻ᵀ·…·Eₖ⁻ᵀ·v.
func (e *etaFile) btran(v []float64) {
	for k := len(e.pivRow) - 1; k >= 0; k-- {
		r := e.pivRow[k]
		s := v[r]
		for idx := e.start[k]; idx < e.start[k+1]; idx++ {
			s -= e.vals[idx] * v[e.rows[idx]]
		}
		v[r] = s / e.pivVal[k]
	}
}

// sparseLA bundles the factorization and its eta file into the basis
// operator the pivot loop uses. refactor() collapses the eta chain back
// into a fresh LU of the current basis.
type sparseLA struct {
	lu   luFactor
	etas etaFile
}

func (s *sparseLA) refactor(m int, cols []sparseCol, basicIn []int32) error {
	if err := s.lu.factorize(m, cols, basicIn); err != nil {
		return err
	}
	s.etas.reset()
	return nil
}

// ftran overwrites v (original-row space) with B⁻¹·v (basis positions).
func (s *sparseLA) ftran(v []float64) {
	s.lu.solveB(v)
	s.etas.ftran(v)
}

// btran overwrites v (basis positions) with B⁻ᵀ·v (original rows).
func (s *sparseLA) btran(v []float64) {
	s.etas.btran(v)
	s.lu.solveBT(v)
}
