package simplex

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/resilience/faultinject"
	"github.com/etransform/etransform/internal/tol"
)

// Options control a solve. The zero value is usable: sensible defaults
// are applied for every unset field.
type Options struct {
	// MaxIters caps total simplex pivots across both phases.
	// Default 50000 + 100×rows.
	MaxIters int
	// FeasTol is the primal feasibility tolerance. Default lp.FeasTol.
	FeasTol float64
	// OptTol is the dual (reduced-cost) tolerance. Default tol.Opt.
	OptTol float64
	// Bland forces Bland's rule from the first pivot (slower, cycle-proof).
	Bland bool
	// StallLimit is the number of consecutive degenerate pivots tolerated
	// before switching to Bland's rule. Default 60.
	StallLimit int
	// Deadline, when set, bounds the solve's wall clock: the iteration
	// loop polls it every 128 pivots and surrenders with
	// lp.StatusIterLimit (Solution.Limit = lp.LimitWallClock) once
	// passed. This is what keeps one enormous subproblem LP from eating
	// an entire solve-wide budget.
	Deadline time.Time
	// Inject, when non-nil, arms the deterministic fault-injection
	// harness (pivot failures, stall, solution corruption). Production
	// callers leave it nil, which costs one pointer comparison per site.
	Inject *faultinject.Injector
	// Trace, when non-nil, receives phase start/end events (obs.Kind
	// Phase*). The pivot loop itself never emits: events bracket whole
	// phases, so a solve costs at most four emissions.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives per-solve counters (pivots,
	// degenerate pivots, Bland switches, refactorizations) folded once
	// after each solve — the hot loop only increments local integers,
	// keeping the armed overhead far under the 2% pivot-loop budget.
	Metrics *obs.Metrics
	// DenseLA selects the legacy dense basis-inverse engine (explicit
	// m×m inverse, product-form updates, Dantzig pricing with exact
	// duals every pivot) instead of the default sparse engine (LU +
	// eta-file basis, devex pricing). The dense engine is retained as an
	// independently implemented reference: the dense-vs-sparse
	// equivalence suite solves every LP through both and demands
	// identical certified objectives. Production callers leave it false.
	DenseLA bool
	// RefactorEvery caps the eta-file length of the sparse engine:
	// after this many basis updates since the last factorization the
	// basis is refactorized, collapsing accumulated floating-point
	// error and keeping FTRAN/BTRAN cost bounded. Default 64. The
	// drift guard (tol.Drift) can force an earlier refactorization.
	// Ignored by the dense engine.
	RefactorEvery int
}

func (o *Options) withDefaults(rows int) Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxIters <= 0 {
		out.MaxIters = 50000 + 100*rows
	}
	if out.FeasTol <= 0 {
		out.FeasTol = lp.FeasTol
	}
	if out.OptTol <= 0 {
		out.OptTol = tol.Opt
	}
	if out.StallLimit <= 0 {
		out.StallLimit = 60
	}
	if out.RefactorEvery <= 0 {
		out.RefactorEvery = 64
	}
	return out
}

// Solve solves the continuous relaxation of m and returns the solution
// with primal values for the model's variables and one dual multiplier
// per row. The returned error is non-nil only for malformed input or an
// internal numerical failure; infeasible/unbounded outcomes are reported
// through Solution.Status.
//
// Solve builds fresh working state per call and is safe for concurrent
// use; callers that solve many models in a loop should hold a Solver
// instead, which reuses its scratch state across calls.
func Solve(model *lp.Model, opts *Options) (*lp.Solution, error) {
	return NewSolver(opts).Solve(model)
}

// SolveContext is Solve with cancellation: the iteration loop polls the
// context every 128 pivots and returns ctx.Err() (no solution — a half-
// pivoted tableau carries no usable point) once it is done. A nil ctx is
// treated as context.Background(). Options.Deadline remains the graceful
// way to bound a solve and still get an iteration-limit status back.
func SolveContext(ctx context.Context, model *lp.Model, opts *Options) (*lp.Solution, error) {
	return NewSolver(opts).SolveContext(ctx, model)
}

// Variable status within the tableau.
type varStatus int8

const (
	atLower varStatus = iota + 1
	atUpper
	basic
	freeAtZero
)

type sparseCol struct {
	rows  []int32
	coefs []float64
}

// tableau is the working state of one solve.
type tableau struct {
	opts Options

	m       int // rows
	nStruct int // structural variables
	nTotal  int // structural + slacks + artificials

	cols  []sparseCol
	lower []float64
	upper []float64
	cost  []float64 // phase-2 (true) costs
	b     []float64

	status  []varStatus
	value   []float64 // current value of every column (basics mirrored from xB)
	basicIn []int32   // column basic in row i
	inRow   []int32   // row a basic column occupies; -1 if nonbasic

	binv []float64 // dense m×m row-major basis inverse (dense engine)
	la   *sparseLA // sparse LU + eta-file basis operator (sparse engine)
	xB   []float64 // values of basic variables by row

	// CSR mirror of the structural columns (row-major), used to form the
	// pivot row α = ρᵀ·A sparsely: only rows where ρ is nonzero are
	// visited. Slack and artificial columns are unit columns and are
	// handled implicitly.
	rowStart []int32
	rowVar   []int32
	rowCoef  []float64

	// Devex pricing state (sparse engine). dj holds the maintained
	// reduced costs of the active phase; djExact marks them as freshly
	// recomputed from the basis (a terminal optimal/unbounded verdict is
	// only ever issued off exact values); djValid marks them usable at
	// all (Bland-mode pivots skip maintenance and invalidate them).
	// gamma holds the devex reference weights; cand the retained
	// candidate buffer of partial pricing; scanFrom the rotating scan
	// cursor.
	dj       []float64
	gamma    []float64
	djExact  bool
	djValid  bool
	cand     []int32
	scanFrom int

	// Pivot-row scratch: alpha/alphaNZ hold the nonzero entries of
	// ρᵀ·A for the current pivot row, touch/touchStamp the visited
	// marks, rho the BTRAN(e_r) result, rhsBuf the shared right-hand
	// side accumulator of recomputeXB and the drift check.
	alpha      []float64
	alphaNZ    []int32
	touch      []int32
	touchStamp int32
	rho        []float64
	rhsBuf     []float64

	phase     int
	iters     int
	degenRun  int
	blandMode bool
	refactors int
	// Per-solve observability counters, folded into opts.Metrics once
	// after the solve (see foldMetrics). Local ints keep the pivot loop
	// free of registry calls even when metrics are armed.
	p1Iters    int
	degenTotal int
	blandFlips int
	// Warm-start counters (see warm.go). warmHits/p1Skipped mark a solve
	// that completed on the warm path; warmMisses marks a solve that was
	// offered a basis but ran the cold two-phase path; dualPivots counts
	// dual-simplex restoration pivots (also included in iters, so pivot
	// totals keep reconciling with Solution.Iterations).
	warmHits   int
	warmMisses int
	p1Skipped  int
	dualPivots int
	// Sparse-engine counters: basis factorizations (initial, periodic
	// and recovery), eta updates appended between them, columns examined
	// by pricing, and the worst relative primal drift observed at a
	// periodic check.
	factorizations   int
	etaUpdates       int
	pricedCandidates int64
	driftMax         float64
	// lastOptimal records that the most recent solve ended StatusOptimal
	// in phase 2, i.e. status/basicIn describe an optimal basis that
	// Solver.Basis can snapshot.
	lastOptimal bool
	ctx         context.Context // nil when the solve is not cancellable
	limit       string          // lp.Limit* cause when iterate stops early
	workCol     []float64       // FTRAN result w = Binv·A_j
	workRow     []float64       // BTRAN result y
	pricedCost  []float64       // cost vector of the active phase
	resid       []float64       // scratch: initial residuals
	p1Cost      []float64       // scratch: phase-1 cost vector
}

// reset (re)initializes the tableau for a solve of model, reusing every
// scratch slice whose capacity suffices. After reset the tableau holds
// no reference to model and is byte-for-byte equivalent to a freshly
// allocated one, so reuse cannot change results.
func (t *tableau) reset(model *lp.Model, opts *Options) error {
	m := model.NumRows()
	n := model.NumVars()
	t.opts = opts.withDefaults(m)
	t.m = m
	t.nStruct = n
	t.nTotal = n + 2*m
	t.phase = 0
	t.iters = 0
	t.degenRun = 0
	t.blandMode = false
	t.refactors = 0
	t.p1Iters = 0
	t.degenTotal = 0
	t.blandFlips = 0
	t.warmHits = 0
	t.warmMisses = 0
	t.p1Skipped = 0
	t.dualPivots = 0
	t.lastOptimal = false
	t.limit = ""
	t.pricedCost = nil
	t.factorizations = 0
	t.etaUpdates = 0
	t.pricedCandidates = 0
	t.driftMax = 0
	t.djExact = false
	t.djValid = false
	t.scanFrom = 0
	t.touchStamp = 0

	if cap(t.cols) < t.nTotal {
		t.cols = make([]sparseCol, t.nTotal)
	} else {
		t.cols = t.cols[:t.nTotal]
		for i := range t.cols {
			t.cols[i].rows = t.cols[i].rows[:0]
			t.cols[i].coefs = t.cols[i].coefs[:0]
		}
	}
	t.lower = reuseF64(t.lower, t.nTotal)
	t.upper = reuseF64(t.upper, t.nTotal)
	t.cost = reuseF64(t.cost, t.nTotal)
	t.b = reuseF64(t.b, m)
	t.status = reuseStatus(t.status, t.nTotal)
	t.value = reuseF64(t.value, t.nTotal)
	t.basicIn = reuseI32(t.basicIn, m)
	t.inRow = reuseI32(t.inRow, t.nTotal)
	t.workCol = reuseF64(t.workCol, m)
	t.workRow = reuseF64(t.workRow, m)
	t.xB = reuseF64(t.xB, m)
	if t.opts.DenseLA {
		t.binv = reuseF64(t.binv, m*m)
		t.la = nil
	} else {
		// The sparse engine never materializes the m×m inverse; its
		// factors and eta file live in t.la and are rebuilt per solve.
		t.binv = nil
		if t.la == nil {
			t.la = &sparseLA{}
		}
		t.dj = reuseF64(t.dj, t.nTotal)
		t.gamma = reuseF64(t.gamma, t.nTotal)
	}
	t.alpha = reuseF64(t.alpha, t.nTotal)
	t.touch = reuseI32(t.touch, t.nTotal)
	t.alphaNZ = t.alphaNZ[:0]
	t.cand = t.cand[:0]

	// Structural columns.
	for j := 0; j < n; j++ {
		v := model.Var(lp.VarID(j))
		if math.IsInf(v.Cost, 0) {
			return fmt.Errorf("simplex: variable %q has infinite cost", v.Name)
		}
		t.lower[j] = v.Lower
		t.upper[j] = v.Upper
		t.cost[j] = v.Cost
	}
	t.rowStart = reuseI32(t.rowStart, m+1)
	t.rowVar = t.rowVar[:0]
	t.rowCoef = t.rowCoef[:0]
	for r := 0; r < m; r++ {
		row := model.Row(lp.RowID(r))
		for _, term := range row.Terms {
			c := &t.cols[term.Var]
			c.rows = append(c.rows, int32(r))
			c.coefs = append(c.coefs, term.Coef)
			t.rowVar = append(t.rowVar, int32(term.Var))
			t.rowCoef = append(t.rowCoef, term.Coef)
		}
		t.rowStart[r+1] = int32(len(t.rowVar))
		t.b[r] = row.RHS
		// Slack column j = n + r.
		s := n + r
		sc := &t.cols[s]
		sc.rows = append(sc.rows, int32(r))
		sc.coefs = append(sc.coefs, 1)
		switch row.Sense {
		case lp.LE:
			t.lower[s], t.upper[s] = 0, math.Inf(1)
		case lp.GE:
			t.lower[s], t.upper[s] = math.Inf(-1), 0
		case lp.EQ:
			t.lower[s], t.upper[s] = 0, 0
		}
		// Artificial column j = n + m + r (coefficient set after residuals
		// are known).
		a := n + m + r
		ac := &t.cols[a]
		ac.rows = append(ac.rows, int32(r))
		ac.coefs = append(ac.coefs, 1)
		t.lower[a], t.upper[a] = 0, math.Inf(1)
	}
	return nil
}

// initialValue picks the starting value for a nonbasic column.
func initialValueFor(lo, hi float64) (float64, varStatus) {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0, freeAtZero
	case math.IsInf(lo, -1):
		return hi, atUpper
	case math.IsInf(hi, 1):
		return lo, atLower
	case math.Abs(lo) <= math.Abs(hi):
		return lo, atLower
	default:
		return hi, atUpper
	}
}

func (t *tableau) solve() (*lp.Solution, error) {
	n, m := t.nStruct, t.m

	// Nonbasic start for structurals and slacks.
	for j := 0; j < n+m; j++ {
		v, st := initialValueFor(t.lower[j], t.upper[j])
		t.value[j] = v
		t.status[j] = st
		t.inRow[j] = -1
	}
	// Residuals determine artificial orientation and value.
	t.resid = reuseF64(t.resid, m)
	resid := t.resid
	copy(resid, t.b)
	for j := 0; j < n+m; j++ {
		if tol.IsZero(t.value[j]) {
			continue
		}
		c := t.cols[j]
		for k, r := range c.rows {
			resid[r] -= c.coefs[k] * t.value[j]
		}
	}
	needPhase1 := false
	for r := 0; r < m; r++ {
		a := n + m + r
		if resid[r] < 0 {
			t.cols[a].coefs[0] = -1
		}
		av := math.Abs(resid[r])
		t.xB[r] = av
		t.value[a] = av
		t.status[a] = basic
		t.basicIn[r] = int32(a)
		t.inRow[a] = int32(r)
		if t.la == nil {
			// Binv = inverse of diag(±1) = diag(±1).
			t.binv[r*m+r] = t.cols[a].coefs[0]
		}
		if av > t.opts.FeasTol {
			needPhase1 = true
		}
	}
	if t.la != nil {
		// Factorize the (trivially triangular) artificial basis so the
		// first FTRAN/BTRAN have factors to solve against.
		if err := t.factorizeBasis(); err != nil {
			return nil, err
		}
	}

	if needPhase1 {
		t.phase = 1
		t.p1Cost = reuseF64(t.p1Cost, t.nTotal)
		for r := 0; r < m; r++ {
			t.p1Cost[n+m+r] = 1
		}
		t.pricedCost = t.p1Cost
		t.tracePhase(obs.KindPhaseStart, 1)
		st, err := t.iterate()
		if err != nil {
			return nil, err
		}
		t.p1Iters = t.iters
		t.tracePhase(obs.KindPhaseEnd, 1)
		if st == lp.StatusIterLimit {
			return &lp.Solution{Status: lp.StatusIterLimit, Iterations: t.iters, Limit: t.limit}, nil
		}
		t.recomputeXB()
		if t.phaseObjective() > t.opts.FeasTol*math.Max(1, t.bScale()) {
			return &lp.Solution{Status: lp.StatusInfeasible, Iterations: t.iters}, nil
		}
	}
	// Freeze artificials at zero for phase 2.
	for r := 0; r < m; r++ {
		a := n + m + r
		t.lower[a], t.upper[a] = 0, 0
		if t.inRow[a] < 0 {
			t.value[a] = 0
			t.status[a] = atLower
		}
	}

	return t.finishPhase2()
}

// finishPhase2 runs phase 2 from the current (primal-feasible) basis and
// extracts the solution. It is the shared tail of the cold path (after
// phase 1) and the warm path (after dual-simplex restoration); the
// artificials must already be frozen at [0,0].
func (t *tableau) finishPhase2() (*lp.Solution, error) {
	n, m := t.nStruct, t.m
	t.phase = 2
	t.pricedCost = t.cost
	t.blandMode = t.opts.Bland
	t.degenRun = 0
	t.tracePhase(obs.KindPhaseStart, 2)
	st, err := t.iterate()
	if err != nil {
		return nil, err
	}
	t.tracePhase(obs.KindPhaseEnd, 2)

	sol := &lp.Solution{Iterations: t.iters}
	switch st {
	case lp.StatusOptimal:
		sol.Status = lp.StatusOptimal
		t.lastOptimal = true
	case lp.StatusUnbounded:
		sol.Status = lp.StatusUnbounded
		return sol, nil
	case lp.StatusIterLimit:
		sol.Status = lp.StatusIterLimit
		sol.Limit = t.limit
	default:
		return nil, fmt.Errorf("simplex: unexpected terminal status %v", st)
	}

	// Extract primal point and duals.
	t.recomputeXB()
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = t.value[j]
	}
	sol.X = x
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += t.cost[j] * x[j]
	}
	sol.Objective = obj

	t.computeDuals(t.workRow)
	duals := make([]float64, m)
	copy(duals, t.workRow)
	sol.DualValues = duals
	if t.opts.Inject.Fire(faultinject.SiteCorrupt) {
		// Injected numerical corruption: a NaN objective and primal entry,
		// as a sour factorization would produce. Downstream layers must
		// detect this and treat the subproblem as failed.
		sol.Objective = math.NaN()
		if len(sol.X) > 0 {
			sol.X[0] = math.NaN()
		}
	}
	return sol, nil
}

func (t *tableau) bScale() float64 {
	s := 1.0
	for _, v := range t.b {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

func (t *tableau) phaseObjective() float64 {
	obj := 0.0
	for j, c := range t.pricedCost {
		if !tol.IsZero(c) {
			obj += c * t.value[j]
		}
	}
	return obj
}

// computeDuals fills y (len m) with cB' · B⁻¹ for the active cost
// vector: one BTRAN on the sparse engine, a row-combination of the
// explicit inverse on the dense one.
func (t *tableau) computeDuals(y []float64) {
	m := t.m
	if t.la != nil {
		for r := 0; r < m; r++ {
			y[r] = t.pricedCost[t.basicIn[r]]
		}
		t.la.btran(y)
		return
	}
	for i := range y {
		y[i] = 0
	}
	for r := 0; r < m; r++ {
		cb := t.pricedCost[t.basicIn[r]]
		if tol.IsZero(cb) {
			continue
		}
		row := t.binv[r*m : (r+1)*m]
		for i, v := range row {
			if !tol.IsZero(v) {
				y[i] += cb * v
			}
		}
	}
}

// reducedCost returns c_j − y'A_j.
func (t *tableau) reducedCost(j int, y []float64) float64 {
	d := t.pricedCost[j]
	c := t.cols[j]
	for k, r := range c.rows {
		d -= y[r] * c.coefs[k]
	}
	return d
}

// ftran computes w = B⁻¹ · A_j into t.workCol.
func (t *tableau) ftran(j int) {
	m := t.m
	w := t.workCol
	for i := range w {
		w[i] = 0
	}
	c := t.cols[j]
	if t.la != nil {
		for k, r := range c.rows {
			w[r] = c.coefs[k]
		}
		t.la.ftran(w)
		return
	}
	for k, r := range c.rows {
		coef := c.coefs[k]
		if tol.IsZero(coef) {
			continue
		}
		ri := int(r)
		for i := 0; i < m; i++ {
			w[i] += coef * t.binv[i*m+ri]
		}
	}
}

// iterate runs primal simplex pivots until optimal/unbounded/limit for
// the current phase, dispatching to the engine the tableau was reset
// for. It returns StatusOptimal when no improving column remains (which
// in phase 1 means phase-1-optimal, not necessarily feasible).
func (t *tableau) iterate() (lp.Status, error) {
	if t.la != nil {
		return t.iterateSparse()
	}
	return t.iterateDense()
}

// iterateDense is the reference engine's pivot loop: exact duals from
// the explicit inverse every iteration, full Dantzig pricing.
func (t *tableau) iterateDense() (lp.Status, error) {
	const pivTol = tol.Pivot
	y := t.workRow
	for {
		if t.iters >= t.opts.MaxIters {
			t.limit = lp.LimitIterations
			return lp.StatusIterLimit, nil
		}
		// Cancellation and deadline are polled coarsely: the checks cost a
		// clock read (deadline) or an atomic load (ctx), and 128 pivots is
		// far below any caller-visible latency budget.
		if t.iters&127 == 0 {
			if t.ctx != nil {
				if err := t.ctx.Err(); err != nil {
					return 0, fmt.Errorf("simplex: canceled after %d iterations: %w", t.iters, err)
				}
			}
			if !t.opts.Deadline.IsZero() && time.Now().After(t.opts.Deadline) {
				t.limit = lp.LimitWallClock
				return lp.StatusIterLimit, nil
			}
		}
		if t.opts.Inject.Fire(faultinject.SiteStall) {
			// Injected cycling: behave exactly like a stall that exhausted
			// the iteration budget.
			t.limit = lp.LimitIterations
			return lp.StatusIterLimit, nil
		}
		t.computeDuals(y)

		// Pricing: pick entering column.
		enter := -1
		var enterDir float64
		best := t.opts.OptTol
		limit := t.nTotal
		if t.phase == 2 {
			limit = t.nStruct + t.m // artificials frozen; skip pricing them
		}
		for j := 0; j < limit; j++ {
			st := t.status[j]
			if st == basic {
				continue
			}
			if tol.Same(t.lower[j], t.upper[j]) && st != freeAtZero {
				continue // fixed
			}
			d := t.reducedCost(j, y)
			var viol float64
			var dir float64
			switch st {
			case atLower:
				viol, dir = -d, 1
			case atUpper:
				viol, dir = d, -1
			case freeAtZero:
				if d < 0 {
					viol, dir = -d, 1
				} else {
					viol, dir = d, -1
				}
			}
			if viol > best {
				if t.blandMode {
					// Bland: first eligible index.
					enter, enterDir = j, dir
					break
				}
				best = viol
				enter, enterDir = j, dir
			}
		}
		if enter < 0 {
			return lp.StatusOptimal, nil
		}
		if t.opts.Inject.Fire(faultinject.SitePivot) {
			return 0, fmt.Errorf("simplex: injected pivot failure at iteration %d (fault injection)", t.iters)
		}

		t.ftran(enter)
		w := t.workCol

		tMax, leaveRow, leaveToUpper := t.ratioTest(enter, enterDir, w)
		if math.IsInf(tMax, 1) {
			if t.phase == 1 {
				return 0, fmt.Errorf("simplex: phase-1 unbounded (numerical failure)")
			}
			return lp.StatusUnbounded, nil
		}

		t.recordStep(enterDir, tMax, w)

		if leaveRow < 0 {
			t.boundFlip(enter, enterDir)
			continue
		}

		// Pivot: entering becomes basic in leaveRow.
		if math.Abs(w[leaveRow]) < pivTol {
			// Numerically unusable pivot: refactorize and retry, or fail.
			if t.refactors < 5 {
				if err := t.refactorize(); err != nil {
					return 0, err
				}
				continue
			}
			return 0, fmt.Errorf("simplex: pivot element %g too small after %d refactorizations", w[leaveRow], t.refactors)
		}

		t.pivotBasis(enter, leaveRow, enterDir, tMax, leaveToUpper, w)
	}
}

// ratioTest finds the row limiting the entering column's move in
// direction enterDir given its FTRAN column w. It returns the largest
// step tMax (+Inf when nothing limits it — unbounded), the leaving row
// (-1 when the entering variable's opposite bound limits first — a bound
// flip), and whether the leaving variable exits at its upper bound.
func (t *tableau) ratioTest(enter int, enterDir float64, w []float64) (tMax float64, leaveRow int, leaveToUpper bool) {
	const pivTol = tol.Pivot
	tMax = math.Inf(1)
	if !math.IsInf(t.lower[enter], -1) && !math.IsInf(t.upper[enter], 1) {
		tMax = t.upper[enter] - t.lower[enter]
	}
	leaveRow = -1
	consider := func(i int, ratio float64, toUpper bool) {
		if ratio < 0 {
			ratio = 0
		}
		switch {
		case ratio < tMax-pivTol:
			// Strictly tighter limit.
		case ratio < tMax+pivTol && better(leaveRow, i, w, t):
			// Tie: prefer the stabler (or Bland-lower) row.
		default:
			return
		}
		tMax = math.Min(tMax, ratio)
		leaveRow = i
		leaveToUpper = toUpper
	}
	for i := 0; i < t.m; i++ {
		wi := enterDir * w[i]
		bj := t.basicIn[i]
		if wi > pivTol {
			// Basic i decreases toward its lower bound.
			if lo := t.lower[bj]; !math.IsInf(lo, -1) {
				consider(i, (t.xB[i]-lo)/wi, false)
			}
		} else if wi < -pivTol {
			// Basic i increases toward its upper bound.
			if hi := t.upper[bj]; !math.IsInf(hi, 1) {
				consider(i, (hi-t.xB[i])/(-wi), true)
			}
		}
	}
	return tMax, leaveRow, leaveToUpper
}

// recordStep counts the pivot, runs the degenerate-run/Bland-switch
// bookkeeping, and applies the step of length tMax to the basic values.
func (t *tableau) recordStep(enterDir, tMax float64, w []float64) {
	t.iters++
	if tMax <= t.opts.FeasTol {
		t.degenRun++
		t.degenTotal++
		if t.degenRun > t.opts.StallLimit {
			if !t.blandMode {
				t.blandFlips++
			}
			t.blandMode = true
		}
	} else {
		t.degenRun = 0
		if !t.opts.Bland {
			t.blandMode = false
		}
	}
	if tMax > 0 {
		for i := 0; i < t.m; i++ {
			if !tol.IsZero(w[i]) {
				t.xB[i] -= enterDir * tMax * w[i]
				t.value[t.basicIn[i]] = t.xB[i]
			}
		}
	}
}

// boundFlip moves the entering variable across its range; the basis is
// unchanged.
func (t *tableau) boundFlip(enter int, enterDir float64) {
	if enterDir > 0 {
		t.value[enter] = t.upper[enter]
		t.status[enter] = atUpper
	} else {
		t.value[enter] = t.lower[enter]
		t.status[enter] = atLower
	}
}

// pivotBasis makes enter basic in leaveRow and moves the leaving
// variable to the bound the ratio test hit. The basis operator is
// updated last, so everything computed against the pre-pivot basis
// (pivot-row alphas, the FTRAN column itself) stays consistent.
func (t *tableau) pivotBasis(enter, leaveRow int, enterDir, tMax float64, leaveToUpper bool, w []float64) {
	leaving := t.basicIn[leaveRow]
	if leaveToUpper {
		t.value[leaving] = t.upper[leaving]
		t.status[leaving] = atUpper
	} else {
		t.value[leaving] = t.lower[leaving]
		t.status[leaving] = atLower
	}
	t.inRow[leaving] = -1

	enterVal := t.value[enter] + enterDir*tMax
	t.basicIn[leaveRow] = int32(enter)
	t.inRow[enter] = int32(leaveRow)
	t.status[enter] = basic
	t.value[enter] = enterVal
	t.xB[leaveRow] = enterVal

	t.updateBasisLA(leaveRow, w)
}

// better is the tie-break in the ratio test: prefer the row with the
// larger |pivot| for stability; under Bland, prefer the lower column
// index for the anti-cycling guarantee.
func better(cur, cand int, w []float64, t *tableau) bool {
	if cur < 0 {
		return true
	}
	if t.blandMode {
		return t.basicIn[cand] < t.basicIn[cur]
	}
	return math.Abs(w[cand]) > math.Abs(w[cur])
}

// updateBasisLA records the basis change of a pivot in row r with FTRAN
// column w against the active linear-algebra backend: an eta appended to
// the sparse engine's eta file, a product-form update of the dense
// engine's explicit inverse.
func (t *tableau) updateBasisLA(r int, w []float64) {
	if t.la != nil {
		t.la.etas.push(r, w)
		t.etaUpdates++
		return
	}
	t.updateBinv(r, w)
}

// binvRow returns row r of B⁻¹: a direct slice of the explicit inverse
// on the dense engine, BTRAN(e_r) into the t.rho scratch on the sparse
// one. The returned slice is only valid until the next binvRow call or
// basis change.
func (t *tableau) binvRow(r int) []float64 {
	if t.la == nil {
		return t.binv[r*t.m : (r+1)*t.m]
	}
	t.rho = reuseF64(t.rho, t.m)
	rho := t.rho
	for i := range rho {
		rho[i] = 0
	}
	rho[r] = 1
	t.la.btran(rho)
	return rho
}

// updateBinv applies the product-form update for a pivot in row r with
// FTRAN column w: Binv ← E·Binv where E is the identity except column r.
func (t *tableau) updateBinv(r int, w []float64) {
	m := t.m
	piv := w[r]
	pivRow := t.binv[r*m : (r+1)*m]
	inv := 1 / piv
	for k := range pivRow {
		pivRow[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := w[i]
		if tol.IsZero(f) {
			continue
		}
		row := t.binv[i*m : (i+1)*m]
		for k := range row {
			row[k] -= f * pivRow[k]
		}
	}
}

// recomputeXB recomputes basic values exactly from nonbasic values:
// xB = B⁻¹·(b − N·xN). One FTRAN on the sparse engine, an explicit
// inverse-times-vector on the dense one.
func (t *tableau) recomputeXB() {
	m := t.m
	t.rhsBuf = reuseF64(t.rhsBuf, m)
	rhs := t.rhsBuf
	copy(rhs, t.b)
	for j := 0; j < t.nTotal; j++ {
		if t.status[j] == basic || tol.IsZero(t.value[j]) {
			continue
		}
		c := t.cols[j]
		for k, r := range c.rows {
			rhs[r] -= c.coefs[k] * t.value[j]
		}
	}
	if t.la != nil {
		t.la.ftran(rhs)
		for i := 0; i < m; i++ {
			t.xB[i] = rhs[i]
			t.value[t.basicIn[i]] = rhs[i]
		}
		return
	}
	for i := 0; i < m; i++ {
		row := t.binv[i*m : (i+1)*m]
		s := 0.0
		for k, v := range row {
			if !tol.IsZero(v) {
				s += v * rhs[k]
			}
		}
		t.xB[i] = s
		t.value[t.basicIn[i]] = s
	}
}

// refactorize rebuilds the basis operator from the current basis columns
// and recomputes basic values. It is the recovery entry point (tiny
// pivots, drift, eta-file cap); the refactors counter feeds the existing
// simplex.refactors metric while factorizeBasis counts every
// factorization including the initial one.
func (t *tableau) refactorize() error {
	t.refactors++
	if err := t.factorizeBasis(); err != nil {
		return err
	}
	t.recomputeXB()
	return nil
}

// factorizeBasis rebuilds the basis operator alone: a sparse LU (and an
// emptied eta file) on the sparse engine, Gauss-Jordan elimination with
// partial pivoting on the dense one. Basic values are not touched.
func (t *tableau) factorizeBasis() error {
	t.factorizations++
	if t.la != nil {
		if err := t.la.refactor(t.m, t.cols, t.basicIn); err != nil {
			return err
		}
		// Maintained reduced costs survive a refactorization (the basis is
		// unchanged) but are no longer verified against fresh factors.
		t.djExact = false
		return nil
	}
	m := t.m
	// Build dense B.
	bm := make([]float64, m*m)
	for r := 0; r < m; r++ {
		c := t.cols[t.basicIn[r]]
		for k, ri := range c.rows {
			bm[int(ri)*m+r] = c.coefs[k]
		}
	}
	inv := make([]float64, m*m)
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(bm[col*m+col])
		for r := col + 1; r < m; r++ {
			if a := math.Abs(bm[r*m+col]); a > best {
				best, p = a, r
			}
		}
		if best < tol.Singular {
			return fmt.Errorf("simplex: singular basis during refactorization (column %d)", col)
		}
		if p != col {
			swapRows(bm, m, p, col)
			swapRows(inv, m, p, col)
		}
		piv := bm[col*m+col]
		invPiv := 1 / piv
		for k := 0; k < m; k++ {
			bm[col*m+k] *= invPiv
			inv[col*m+k] *= invPiv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := bm[r*m+col]
			if tol.IsZero(f) {
				continue
			}
			for k := 0; k < m; k++ {
				bm[r*m+k] -= f * bm[col*m+k]
				inv[r*m+k] -= f * inv[col*m+k]
			}
		}
	}
	t.binv = inv
	return nil
}

// tracePhase emits one simplex phase bracket event. The guard keeps the
// disabled cost at a pointer comparison; phase events are the only ones
// the simplex layer emits, so even an armed tracer sees at most four
// emissions per solve.
func (t *tableau) tracePhase(kind obs.Kind, phase int) {
	if t.opts.Trace == nil {
		return
	}
	t.opts.Trace.Emit(obs.Event{
		Kind: kind, Name: fmt.Sprintf("phase%d", phase), Phase: phase,
		Iterations: t.iters,
	})
}

// foldMetrics flushes the solve's local counters into the registry —
// once per solve, after the tableau has stopped, so the pivot loop
// itself never touches a mutex.
func (t *tableau) foldMetrics() {
	m := t.opts.Metrics
	if m == nil {
		return
	}
	m.Add(obs.MetricSimplexSolves, 1)
	m.Add(obs.MetricSimplexPivots, int64(t.iters))
	m.Add(obs.MetricSimplexPhase1, int64(t.p1Iters))
	m.Add(obs.MetricSimplexDegenerate, int64(t.degenTotal))
	m.Add(obs.MetricSimplexBland, int64(t.blandFlips))
	m.Add(obs.MetricSimplexRefactors, int64(t.refactors))
	m.Observe(obs.MetricHistPivotsPerSolve, float64(t.iters))
	// Warm counters are folded only when nonzero: Add creates the key
	// even for a zero delta, and cold-only runs must not grow their
	// metric snapshots (golden traces pin those snapshots byte-stable).
	if t.warmHits > 0 {
		m.Add(obs.MetricSimplexWarmHits, int64(t.warmHits))
	}
	if t.warmMisses > 0 {
		m.Add(obs.MetricSimplexWarmMisses, int64(t.warmMisses))
	}
	if t.p1Skipped > 0 {
		m.Add(obs.MetricSimplexPhase1Skipped, int64(t.p1Skipped))
	}
	if t.dualPivots > 0 {
		m.Add(obs.MetricSimplexDualPivots, int64(t.dualPivots))
	}
	// Sparse-engine counters, likewise folded only when nonzero so the
	// dense reference engine's metric snapshots do not grow new keys.
	if t.factorizations > 0 {
		m.Add(obs.MetricSimplexFactorizations, int64(t.factorizations))
	}
	if t.etaUpdates > 0 {
		m.Add(obs.MetricSimplexEtaUpdates, int64(t.etaUpdates))
	}
	if t.pricedCandidates > 0 {
		m.Add(obs.MetricSimplexPricedCandidates, t.pricedCandidates)
	}
	if t.driftMax > 0 {
		m.MaxGauge(obs.MetricSimplexRefactorDriftMax, t.driftMax)
	}
}

func swapRows(a []float64, m, i, j int) {
	ri := a[i*m : (i+1)*m]
	rj := a[j*m : (j+1)*m]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
