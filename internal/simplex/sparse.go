package simplex

import (
	"fmt"
	"math"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/resilience/faultinject"
	"github.com/etransform/etransform/internal/tol"
)

// This file is the sparse engine's pivot loop: devex pricing over
// maintained reduced costs with partial candidate scans, FTRAN/BTRAN
// against the LU + eta-file operator in lu.go, and the refactorization
// policy (eta-count cap, periodic drift check). The dense loop in
// simplex.go remains as an independently implemented reference engine;
// both share the ratio test, step/pivot bookkeeping and fault-injection
// sites, so they differ only in pricing and linear algebra.

const (
	// devexResetLimit bounds the devex reference weights: when the
	// entering column's weight exceeds it, the current reference
	// framework has drifted too far from the bases it was priced against
	// and every weight is reset to 1 (a fresh framework at the current
	// basis). 1e7 is Forrest & Goldfarb's classic trigger region.
	devexResetLimit = 1e7
	// priceSections is the number of slices partial pricing divides the
	// column range into; one pivot typically prices one or two sections
	// instead of the whole range.
	priceSections = 8
	// priceSectionMin keeps sections from degenerating on small models,
	// where sectioning would only add bookkeeping.
	priceSectionMin = 512
	// priceBufferCap caps the retained candidate buffer.
	priceBufferCap = 64
	// priceBufferMin is the buffer occupancy under which a scan round is
	// run even though the buffer already yielded an entering candidate —
	// a nearly-drained buffer stops representing the attractive set.
	priceBufferMin = 8
)

// iterateSparse runs the revised-simplex pivot loop for the current
// phase. Pricing works off maintained (incrementally updated) reduced
// costs, so a terminal verdict is only ever issued after recomputing
// them exactly from the current factors: approximations steer the route,
// never the answer.
func (t *tableau) iterateSparse() (lp.Status, error) {
	const pivTol = tol.Pivot
	// Each phase prices its own cost vector: start from exact reduced
	// costs and a fresh devex framework.
	t.djValid = false
	for {
		if t.iters >= t.opts.MaxIters {
			t.limit = lp.LimitIterations
			return lp.StatusIterLimit, nil
		}
		// Cancellation, deadline and drift are polled coarsely — the
		// checks cost a clock read, an atomic load and one residual pass,
		// and 128 pivots is far below any caller-visible latency budget.
		if t.iters&127 == 0 {
			if t.ctx != nil {
				if err := t.ctx.Err(); err != nil {
					return 0, fmt.Errorf("simplex: canceled after %d iterations: %w", t.iters, err)
				}
			}
			if !t.opts.Deadline.IsZero() && time.Now().After(t.opts.Deadline) {
				t.limit = lp.LimitWallClock
				return lp.StatusIterLimit, nil
			}
			if err := t.checkDrift(); err != nil {
				return 0, err
			}
		}
		if t.opts.Inject.Fire(faultinject.SiteStall) {
			// Injected cycling: behave exactly like a stall that exhausted
			// the iteration budget.
			t.limit = lp.LimitIterations
			return lp.StatusIterLimit, nil
		}
		// Eta-file cap: collapse the update chain into a fresh LU before
		// FTRAN/BTRAN cost and accumulated error outgrow the factors.
		if t.la.etas.count() >= t.opts.RefactorEvery {
			if err := t.refactorize(); err != nil {
				return 0, err
			}
		}

		var enter int
		var enterDir float64
		if t.blandMode {
			// Bland's rule needs exact reduced costs in index order; the
			// maintained values are bypassed (and invalidated by the
			// pivots) until the stall clears.
			enter, enterDir = t.priceBland()
			if enter < 0 {
				return lp.StatusOptimal, nil
			}
		} else {
			if !t.djValid {
				t.recomputeDj()
				t.resetDevex()
			}
			enter, enterDir = t.priceDevex()
			if enter < 0 && !t.djExact {
				// Maintained values claim optimality; only exact ones may.
				t.recomputeDj()
				enter, enterDir = t.priceDevex()
			}
			if enter < 0 {
				return lp.StatusOptimal, nil
			}
		}
		if t.opts.Inject.Fire(faultinject.SitePivot) {
			return 0, fmt.Errorf("simplex: injected pivot failure at iteration %d (fault injection)", t.iters)
		}

		t.ftran(enter)
		w := t.workCol

		tMax, leaveRow, leaveToUpper := t.ratioTest(enter, enterDir, w)
		if math.IsInf(tMax, 1) {
			if !t.blandMode && !t.djExact && !t.verifyEntering(enter, enterDir) {
				// A drifted maintained reduced cost selected a column that
				// does not actually improve; an unbounded ray from it proves
				// nothing. Recompute and re-price.
				t.recomputeDj()
				continue
			}
			if t.phase == 1 {
				return 0, fmt.Errorf("simplex: phase-1 unbounded (numerical failure)")
			}
			return lp.StatusUnbounded, nil
		}

		t.recordStep(enterDir, tMax, w)

		if leaveRow < 0 {
			// Bound flip: the basis (and hence every reduced cost) is
			// unchanged; only the entering variable's status moved.
			t.boundFlip(enter, enterDir)
			continue
		}

		if math.Abs(w[leaveRow]) < pivTol {
			// Numerically unusable pivot: refactorize and retry, or fail.
			if t.refactors < 5 {
				if err := t.refactorize(); err != nil {
					return 0, err
				}
				continue
			}
			return 0, fmt.Errorf("simplex: pivot element %g too small after %d refactorizations", w[leaveRow], t.refactors)
		}

		if t.blandMode || !t.djValid {
			// No maintained state to update (Bland pivots run off exact
			// duals); just pivot and leave dj marked stale.
			t.pivotBasis(enter, leaveRow, enterDir, tMax, leaveToUpper, w)
			t.djValid = false
			continue
		}

		// Devex maintenance needs the pivot row α = ρᵀ·A against the
		// pre-pivot basis: compute it before the basis operator changes,
		// apply the update after the pivot so status[] is current.
		dq := t.dj[enter]
		alphaQ := w[leaveRow]
		gq := t.gamma[enter]
		t.pivotRowAlphas(t.binvRow(leaveRow))
		t.pivotBasis(enter, leaveRow, enterDir, tMax, leaveToUpper, w)
		t.applyDjUpdate(enter, dq, alphaQ, gq)
	}
}

// priceLimit is the exclusive upper bound of the priced column range:
// phase 2 skips the artificials entirely (they are frozen at [0,0]).
func (t *tableau) priceLimit() int {
	if t.phase == 2 {
		return t.nStruct + t.m
	}
	return t.nTotal
}

// priceSkip reports that column j can never enter: it is basic, or fixed
// by identical bounds.
func (t *tableau) priceSkip(j int) bool {
	st := t.status[j]
	return st == basic || (tol.Same(t.lower[j], t.upper[j]) && st != freeAtZero)
}

// violation returns the dual infeasibility of nonbasic column j under
// the maintained reduced cost dj[j], and the improving direction.
func (t *tableau) violation(j int) (viol, dir float64) {
	d := t.dj[j]
	switch t.status[j] {
	case atLower:
		return -d, 1
	case atUpper:
		return d, -1
	case freeAtZero:
		if d < 0 {
			return -d, 1
		}
		return d, -1
	}
	return 0, 0
}

// recomputeDj recomputes every priceable reduced cost exactly from the
// current factors (one BTRAN plus one pass over the column nonzeros) and
// marks the maintained state exact. The candidate buffer is dropped: its
// scores came from the values being replaced.
func (t *tableau) recomputeDj() {
	y := t.workRow
	t.computeDuals(y)
	limit := t.priceLimit()
	for j := 0; j < limit; j++ {
		if t.status[j] == basic {
			t.dj[j] = 0
			continue
		}
		t.dj[j] = t.reducedCost(j, y)
	}
	t.djExact = true
	t.djValid = true
	t.cand = t.cand[:0]
}

// resetDevex starts a fresh reference framework at the current basis:
// every weight back to 1.
func (t *tableau) resetDevex() {
	for j := range t.gamma {
		t.gamma[j] = 1
	}
	t.cand = t.cand[:0]
}

// priceDevex picks the entering column maximizing the devex score
// viol²/γ. It prices the retained candidate buffer first; only when the
// buffer is drained (or too thin to trust) does it scan sections of the
// full range from a rotating cursor, refilling the buffer as it goes. A
// -1 return means no eligible column was found in the *entire* range —
// an optimality claim at the maintained values' accuracy.
func (t *tableau) priceDevex() (int, float64) {
	limit := t.priceLimit()
	optTol := t.opts.OptTol
	enter := -1
	var enterDir float64
	bestScore := 0.0
	priced := 0

	keep := t.cand[:0]
	for _, jc := range t.cand {
		j := int(jc)
		if j >= limit || t.priceSkip(j) {
			continue
		}
		priced++
		viol, dir := t.violation(j)
		if viol <= optTol {
			continue
		}
		keep = append(keep, jc)
		if s := viol * viol / t.gamma[j]; s > bestScore {
			bestScore, enter, enterDir = s, j, dir
		}
	}
	t.cand = keep

	if enter >= 0 && len(t.cand) >= priceBufferMin {
		t.pricedCandidates += int64(priced)
		return enter, enterDir
	}

	// Sectioned scan: price sections in turn from the rotating cursor.
	// Once a section yields an eligible candidate, one more section is
	// priced for quality and the scan stops; with none eligible the scan
	// covers the full range, which is what makes a -1 an optimality
	// claim.
	section := (limit + priceSections - 1) / priceSections
	if section < priceSectionMin {
		section = priceSectionMin
	}
	scanned := 0
	firstHit := -1
	for scanned < limit {
		start := t.scanFrom
		if start >= limit {
			start = 0
		}
		end := start + section
		if end > limit {
			end = limit
		}
		for j := start; j < end; j++ {
			if t.priceSkip(j) {
				continue
			}
			priced++
			viol, dir := t.violation(j)
			if viol <= optTol {
				continue
			}
			if len(t.cand) < priceBufferCap {
				t.cand = append(t.cand, int32(j))
			}
			if s := viol * viol / t.gamma[j]; s > bestScore {
				bestScore, enter, enterDir = s, j, dir
			}
		}
		scanned += end - start
		t.scanFrom = end
		if t.scanFrom >= limit {
			t.scanFrom = 0
		}
		if enter >= 0 {
			if firstHit < 0 {
				firstHit = scanned
			} else if scanned >= firstHit+section {
				break
			}
		}
	}
	t.pricedCandidates += int64(priced)
	return enter, enterDir
}

// priceBland computes exact duals and returns the first eligible column
// in index order — Bland's anti-cycling rule, identical to the dense
// engine's stalled-mode pricing.
func (t *tableau) priceBland() (int, float64) {
	y := t.workRow
	t.computeDuals(y)
	limit := t.priceLimit()
	optTol := t.opts.OptTol
	for j := 0; j < limit; j++ {
		if t.priceSkip(j) {
			continue
		}
		t.pricedCandidates++
		d := t.reducedCost(j, y)
		switch t.status[j] {
		case atLower:
			if tol.Neg(d, optTol) {
				return j, 1
			}
		case atUpper:
			if tol.Pos(d, optTol) {
				return j, -1
			}
		case freeAtZero:
			if tol.Neg(d, optTol) {
				return j, 1
			}
			if tol.Pos(d, optTol) {
				return j, -1
			}
		}
	}
	return -1, 0
}

// verifyEntering recomputes the entering column's reduced cost exactly
// and reports whether it still improves in direction enterDir. Used
// before accepting an unbounded verdict reached through maintained
// values.
func (t *tableau) verifyEntering(enter int, enterDir float64) bool {
	y := t.workRow
	t.computeDuals(y)
	d := t.reducedCost(enter, y)
	if enterDir > 0 {
		return tol.Neg(d, t.opts.OptTol)
	}
	return tol.Pos(d, t.opts.OptTol)
}

// pivotRowAlphas computes the pivot row α = ρᵀ·A sparsely into
// t.alpha/t.alphaNZ: only the rows where ρ is nonzero are visited, via
// the CSR mirror for structural columns and implicitly for the unit
// slack and ±unit artificial columns.
func (t *tableau) pivotRowAlphas(rho []float64) {
	t.touchStamp++
	stamp := t.touchStamp
	t.alphaNZ = t.alphaNZ[:0]
	n, m := t.nStruct, t.m
	add := func(j int32, v float64) {
		if tol.IsZero(v) {
			return
		}
		if t.touch[j] != stamp {
			t.touch[j] = stamp
			t.alpha[j] = 0
			t.alphaNZ = append(t.alphaNZ, j)
		}
		t.alpha[j] += v
	}
	for r := 0; r < m; r++ {
		rr := rho[r]
		if tol.IsZero(rr) {
			continue
		}
		for k := t.rowStart[r]; k < t.rowStart[r+1]; k++ {
			add(t.rowVar[k], rr*t.rowCoef[k])
		}
		// Slack column n+r is the unit column e_r; artificial n+m+r is
		// ±e_r with the sign chosen by the initial residual.
		add(int32(n+r), rr)
		a := n + m + r
		add(int32(a), rr*t.cols[a].coefs[0])
	}
}

// applyDjUpdate applies the standard reduced-cost and devex-weight
// update for a pivot with entering reduced cost dq, pivot element
// alphaQ and entering weight gq, over the pivot row recorded by
// pivotRowAlphas. Called after pivotBasis, so basic columns (whose
// maintained dj must stay 0) are identified by their updated status —
// in particular the leaving variable, now nonbasic with α = 1, picks up
// its correct new reduced cost −dq/αq.
func (t *tableau) applyDjUpdate(enter int, dq, alphaQ, gq float64) {
	ratio := dq / alphaQ
	gRef := gq / (alphaQ * alphaQ)
	for _, jc := range t.alphaNZ {
		j := int(jc)
		if j == enter || t.status[j] == basic {
			continue
		}
		aj := t.alpha[j]
		t.dj[j] -= ratio * aj
		if g := aj * aj * gRef; g > t.gamma[j] {
			t.gamma[j] = g
		}
	}
	t.dj[enter] = 0
	t.gamma[enter] = 1
	t.djExact = false
	if gq > devexResetLimit {
		t.resetDevex()
	}
}

// checkDrift measures the relative primal residual
// ‖b − A·x‖∞ / max(1, ‖b‖∞) of the full current point and refactorizes
// when it exceeds tol.Drift — the eta chain has then accumulated enough
// floating-point error to threaten the feasibility tolerance. The worst
// value seen is kept for the refactor_drift_max metric.
func (t *tableau) checkDrift() error {
	m := t.m
	t.rhsBuf = reuseF64(t.rhsBuf, m)
	res := t.rhsBuf
	copy(res, t.b)
	for j := 0; j < t.nTotal; j++ {
		v := t.value[j]
		if tol.IsZero(v) {
			continue
		}
		c := t.cols[j]
		for k, r := range c.rows {
			res[r] -= c.coefs[k] * v
		}
	}
	worst := 0.0
	for _, v := range res {
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	rel := worst / t.bScale()
	if rel > t.driftMax {
		t.driftMax = rel
	}
	if rel > tol.Drift && t.la.etas.count() > 0 {
		return t.refactorize()
	}
	return nil
}
