package simplex

import (
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/lp"
)

// The dense-vs-sparse equivalence suite: the dense tableau engine is
// retained purely as an independently implemented reference, and these
// tests are the reason — every LP is solved through both linear-algebra
// backends and the certified outcomes must agree. Pivot sequences and
// degenerate vertices may differ (pricing differs by design), so the
// contract is status + objective, not iteration counts or points.

// sameOutcome asserts the two solutions agree on status and, when both
// are optimal, on objective to a scaled 1e-6.
func sameOutcome(t *testing.T, label string, sparse, dense *lp.Solution) {
	t.Helper()
	if sparse.Status != dense.Status {
		t.Fatalf("%s: status sparse=%v dense=%v", label, sparse.Status, dense.Status)
	}
	if sparse.Status != lp.StatusOptimal {
		return
	}
	if d := math.Abs(sparse.Objective - dense.Objective); d > 1e-6*math.Max(1, math.Abs(dense.Objective)) {
		t.Fatalf("%s: objective sparse=%v dense=%v (diff %g)",
			label, sparse.Objective, dense.Objective, d)
	}
}

// TestDenseSparseEquivalenceRandomLPs cross-solves well over 300 random
// LPs — the general mix plus the box-bounded family that exercises bound
// flips and free variables — through both engines.
func TestDenseSparseEquivalenceRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	trials := 400
	if testing.Short() {
		trials = 80
	}
	for trial := 0; trial < trials; trial++ {
		var m *lp.Model
		if trial%2 == 0 {
			m = randomLP(rng, 1+rng.Intn(14), 1+rng.Intn(10))
		} else {
			m = randomBoxLP(rng)
		}
		sparse, errS := Solve(m, nil)
		dense, errD := Solve(m, &Options{DenseLA: true})
		if (errS == nil) != (errD == nil) {
			t.Fatalf("trial %d: error mismatch: sparse %v, dense %v", trial, errS, errD)
		}
		if errS != nil {
			continue
		}
		sameOutcome(t, "trial", sparse, dense)
	}
}

// TestDenseSparseEquivalenceWarm repeats the cross-check over the warm
// path: a parent LP is solved on each engine, child bounds are tightened
// branch & bound style, and SolveFrom(child, parentBasis) must agree
// with the opposite engine's cold solve of the same child.
func TestDenseSparseEquivalenceWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		parent := randomLP(rng, 2+rng.Intn(10), 1+rng.Intn(6))
		sSparse := NewSolver(nil)
		sDense := NewSolver(&Options{DenseLA: true})
		pS, errS := sSparse.Solve(parent)
		pD, errD := sDense.Solve(parent)
		if (errS == nil) != (errD == nil) {
			t.Fatalf("trial %d parent: error mismatch: %v vs %v", trial, errS, errD)
		}
		if errS != nil || pS.Status != lp.StatusOptimal || pD.Status != lp.StatusOptimal {
			continue
		}
		basisS, basisD := sSparse.Basis(), sDense.Basis()

		branchLike(parent, pS, rng)
		warmS, errS := sSparse.SolveFrom(parent, basisS)
		warmD, errD := sDense.SolveFrom(parent, basisD)
		if (errS == nil) != (errD == nil) {
			t.Fatalf("trial %d child: error mismatch: %v vs %v", trial, errS, errD)
		}
		if errS != nil {
			continue
		}
		sameOutcome(t, "warm/warm", warmS, warmD)

		coldS, err := Solve(parent, nil)
		if err != nil {
			t.Fatalf("trial %d cold sparse: %v", trial, err)
		}
		coldD, err := Solve(parent, &Options{DenseLA: true})
		if err != nil {
			t.Fatalf("trial %d cold dense: %v", trial, err)
		}
		sameOutcome(t, "sparse warm vs dense cold", warmS, coldD)
		sameOutcome(t, "sparse cold vs dense warm", coldS, warmD)
	}
}

// TestDenseSparseEquivalenceBland pins the engines to each other under
// forced Bland pricing, the anti-cycling mode both must implement
// identically (first eligible index over exact reduced costs).
func TestDenseSparseEquivalenceBland(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		m := randomLP(rng, 1+rng.Intn(10), 1+rng.Intn(6))
		sparse, errS := Solve(m, &Options{Bland: true})
		dense, errD := Solve(m, &Options{Bland: true, DenseLA: true})
		if (errS == nil) != (errD == nil) {
			t.Fatalf("trial %d: error mismatch: sparse %v, dense %v", trial, errS, errD)
		}
		if errS != nil {
			continue
		}
		sameOutcome(t, "bland", sparse, dense)
	}
}
