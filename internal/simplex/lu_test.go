package simplex

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/etransform/etransform/internal/lp"
)

// denseFromCols materializes the m×m basis matrix B (row-major) whose
// column i is cols[basicIn[i]] — the independent oracle every LU test
// checks residuals against.
func denseFromCols(m int, cols []sparseCol, basicIn []int32) []float64 {
	B := make([]float64, m*m)
	for i := 0; i < m; i++ {
		c := cols[basicIn[i]]
		for k, r := range c.rows {
			B[int(r)*m+i] = c.coefs[k]
		}
	}
	return B
}

func matVec(B []float64, m int, x []float64) []float64 {
	y := make([]float64, m)
	for r := 0; r < m; r++ {
		s := 0.0
		for c := 0; c < m; c++ {
			s += B[r*m+c] * x[c]
		}
		y[r] = s
	}
	return y
}

func matTVec(B []float64, m int, x []float64) []float64 {
	y := make([]float64, m)
	for c := 0; c < m; c++ {
		s := 0.0
		for r := 0; r < m; r++ {
			s += B[r*m+c] * x[r]
		}
		y[c] = s
	}
	return y
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// randomBasis builds m random sparse columns that are almost surely
// nonsingular: a permuted unit diagonal plus a few random off-diagonal
// entries per column.
func randomBasis(rng *rand.Rand, m int) ([]sparseCol, []int32) {
	cols := make([]sparseCol, m)
	basicIn := make([]int32, m)
	perm := rng.Perm(m)
	for i := 0; i < m; i++ {
		basicIn[i] = int32(i)
		c := &cols[i]
		diag := int32(perm[i])
		c.rows = append(c.rows, diag)
		c.coefs = append(c.coefs, 1+rng.Float64())
		for k := 0; k < rng.Intn(3); k++ {
			r := int32(rng.Intn(m))
			dup := false
			for _, have := range c.rows {
				if have == r {
					dup = true
				}
			}
			if !dup {
				c.rows = append(c.rows, r)
				c.coefs = append(c.coefs, rng.Float64()*2-1)
			}
		}
	}
	return cols, basicIn
}

// TestLUSolveResiduals factorizes random sparse bases and checks both
// solve directions against the dense matrix: B·(FTRAN b) = b and
// Bᵀ·(BTRAN c) = c to tight absolute residuals.
func TestLUSolveResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(12)
		cols, basicIn := randomBasis(rng, m)
		var f luFactor
		if err := f.factorize(m, cols, basicIn); err != nil {
			t.Fatalf("trial %d: unexpected singular: %v", trial, err)
		}
		B := denseFromCols(m, cols, basicIn)

		b := make([]float64, m)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x := append([]float64(nil), b...)
		f.solveB(x)
		if d := maxAbsDiff(matVec(B, m, x), b); d > 1e-9 {
			t.Fatalf("trial %d (m=%d): FTRAN residual %g", trial, m, d)
		}

		c := make([]float64, m)
		for i := range c {
			c[i] = rng.Float64()*10 - 5
		}
		y := append([]float64(nil), c...)
		f.solveBT(y)
		if d := maxAbsDiff(matTVec(B, m, y), c); d > 1e-9 {
			t.Fatalf("trial %d (m=%d): BTRAN residual %g", trial, m, d)
		}
	}
}

// TestLUSingularBasisDetection feeds structurally and numerically
// singular bases and demands the named error instead of garbage factors.
func TestLUSingularBasisDetection(t *testing.T) {
	cases := []struct {
		name    string
		cols    []sparseCol
		basicIn []int32
	}{
		{
			name: "duplicate column",
			cols: []sparseCol{
				{rows: []int32{0, 1}, coefs: []float64{1, 2}},
				{rows: []int32{0, 1}, coefs: []float64{1, 2}},
			},
			basicIn: []int32{0, 1},
		},
		{
			name: "empty column",
			cols: []sparseCol{
				{rows: []int32{0}, coefs: []float64{1}},
				{},
			},
			basicIn: []int32{0, 1},
		},
		{
			name: "linearly dependent",
			cols: []sparseCol{
				{rows: []int32{0, 1}, coefs: []float64{1, 1}},
				{rows: []int32{0, 1}, coefs: []float64{2, 2}},
			},
			basicIn: []int32{0, 1},
		},
		{
			name: "below singular tolerance",
			cols: []sparseCol{
				{rows: []int32{0}, coefs: []float64{1e-13}},
				{rows: []int32{1}, coefs: []float64{1}},
			},
			basicIn: []int32{0, 1},
		},
	}
	for _, tc := range cases {
		var f luFactor
		err := f.factorize(len(tc.basicIn), tc.cols, tc.basicIn)
		if err == nil {
			t.Errorf("%s: factorize accepted a singular basis", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "singular") {
			t.Errorf("%s: error %q does not name singularity", tc.name, err)
		}
	}
}

// TestLUMarkowitzRejectsTinyPivot builds a column where the sparsest row
// holds a tiny (but above tol.Singular) value while a denser row holds a
// well-scaled one: threshold pivoting must spend the fill and take the
// stable pivot, keeping the solve accurate. With the tiny entry at 1e-8
// a pivot on it would amplify rounding by ~1e8 — far beyond the 1e-9
// residual demanded here.
func TestLUMarkowitzRejectsTinyPivot(t *testing.T) {
	// B = | 1e-8  1  0 |
	//     | 1     0  1 |
	//     | 1     1  1 |   (columns are the basis columns)
	cols := []sparseCol{
		{rows: []int32{0, 1, 2}, coefs: []float64{1e-8, 1, 1}},
		{rows: []int32{0, 2}, coefs: []float64{1, 1}},
		{rows: []int32{1, 2}, coefs: []float64{1, 1}},
	}
	basicIn := []int32{0, 1, 2}
	var f luFactor
	if err := f.factorize(3, cols, basicIn); err != nil {
		t.Fatalf("factorize: %v", err)
	}
	B := denseFromCols(3, cols, basicIn)
	b := []float64{1, 2, 3}
	x := append([]float64(nil), b...)
	f.solveB(x)
	if d := maxAbsDiff(matVec(B, 3, x), b); d > 1e-9 {
		t.Fatalf("solve through tiny-pivot basis lost accuracy: residual %g", d)
	}
}

// TestRefactorAfterKEtasEquivalence solves the same random LPs with eta
// caps 1 (refactorize every pivot), the default, and effectively-never:
// the refactorization policy must be invisible in the results.
func TestRefactorAfterKEtasEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	caps := []int{1, 8, 64, 1 << 20}
	for trial := 0; trial < 120; trial++ {
		m := randomLP(rng, 1+rng.Intn(12), 1+rng.Intn(8))
		var ref *lp.Solution
		for _, every := range caps {
			sol, err := Solve(m, &Options{RefactorEvery: every})
			if err != nil {
				t.Fatalf("trial %d cap %d: %v", trial, every, err)
			}
			if ref == nil {
				ref = sol
				continue
			}
			if sol.Status != ref.Status {
				t.Fatalf("trial %d cap %d: status %v, want %v", trial, every, sol.Status, ref.Status)
			}
			if sol.Status != lp.StatusOptimal {
				continue
			}
			if d := math.Abs(sol.Objective - ref.Objective); d > 1e-7*math.Max(1, math.Abs(ref.Objective)) {
				t.Fatalf("trial %d cap %d: objective %v, want %v (diff %g)",
					trial, every, sol.Objective, ref.Objective, d)
			}
		}
	}
}

// FuzzFTUpdate drives random product-form update chains against a
// factorized basis and asserts the operator still solves its matrix:
// after every accepted update the dense mirror B has the pivot column
// replaced too, and B·FTRAN(b) = b must hold to a tolerance that only
// grows with honest conditioning, not with bugs in the eta algebra.
func FuzzFTUpdate(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(6))
	f.Add(int64(99), uint8(9), uint8(20))
	f.Add(int64(-7), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, mRaw, chainRaw uint8) {
		m := 1 + int(mRaw%10)
		chain := int(chainRaw % 24)
		rng := rand.New(rand.NewSource(seed))
		cols, basicIn := randomBasis(rng, m)
		la := &sparseLA{}
		if err := la.refactor(m, cols, basicIn); err != nil {
			t.Skip("randomly singular start")
		}
		B := denseFromCols(m, cols, basicIn)

		applied := 0
		for k := 0; k < chain; k++ {
			// A random replacement column, dense in original-row space.
			a := make([]float64, m)
			nz := 1 + rng.Intn(3)
			for i := 0; i < nz; i++ {
				a[rng.Intn(m)] = rng.Float64()*4 - 2
			}
			r := rng.Intn(m)
			w := append([]float64(nil), a...)
			la.ftran(w)
			if math.Abs(w[r]) < 1e-2 {
				// The pivot loop would never accept so small a pivot; the
				// fuzz target checks the update algebra, not conditioning.
				continue
			}
			la.etas.push(r, w)
			for i := 0; i < m; i++ {
				B[i*m+r] = a[i]
			}
			applied++
		}

		b := make([]float64, m)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x := append([]float64(nil), b...)
		la.ftran(x)
		scale := 1.0
		for _, v := range x {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if d := maxAbsDiff(matVec(B, m, x), b); d > 1e-7*scale {
			t.Fatalf("m=%d chain=%d applied=%d: B·x−b residual %g (scale %g)",
				m, chain, applied, d, scale)
		}

		c := make([]float64, m)
		for i := range c {
			c[i] = rng.Float64()*10 - 5
		}
		y := append([]float64(nil), c...)
		la.btran(y)
		scale = 1.0
		for _, v := range y {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if d := maxAbsDiff(matTVec(B, m, y), c); d > 1e-7*scale {
			t.Fatalf("m=%d chain=%d applied=%d: Bᵀ·y−c residual %g (scale %g)",
				m, chain, applied, d, scale)
		}
	})
}
