package simplex_test

import (
	"fmt"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/simplex"
)

// ExampleSolver_SolveFrom shows the warm-start path a branch & bound
// worker uses: solve a parent LP, snapshot its optimal basis, tighten a
// variable bound the way branching does, and re-solve the child from the
// parent basis. The warm solve restores feasibility with dual simplex
// pivots instead of rerunning phase 1, and certifies the same optimum a
// cold solve of the child would.
func ExampleSolver_SolveFrom() {
	m := lp.NewModel("branch-demo")
	x := m.AddContinuous("x", 0, 3, -1)
	y := m.AddContinuous("y", 0, 3, -2)
	m.AddRow("cap", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)

	s := simplex.NewSolver(nil)
	parent, err := s.Solve(m)
	if err != nil {
		panic(err)
	}
	basis := s.Basis()
	fmt.Printf("parent: %s, objective %g\n", parent.Status, parent.Objective)

	// Branch like the MILP layer: force x down to 0 in the child node.
	m.SetBounds(x, 0, 0)
	child, err := s.SolveFrom(m, basis)
	if err != nil {
		panic(err)
	}
	fmt.Printf("child (x ≤ 0): %s, objective %g\n", child.Status, child.Objective)

	// Output:
	// parent: optimal, objective -7
	// child (x ≤ 0): optimal, objective -6
}
