package simplex

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/resilience/faultinject"
)

// resilienceModel is a small LP that needs a handful of pivots.
func resilienceModel() *lp.Model {
	m := lp.NewModel("resilience")
	x := m.AddContinuous("x", 0, 10, -1)
	y := m.AddContinuous("y", 0, 10, -2)
	z := m.AddContinuous("z", 0, 10, -3)
	m.AddRow("r1", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}, {Var: z, Coef: 1}}, lp.LE, 14)
	m.AddRow("r2", []lp.Term{{Var: y, Coef: 1}, {Var: z, Coef: 3}}, lp.LE, 12)
	m.AddRow("r3", []lp.Term{{Var: x, Coef: 1}, {Var: z, Coef: 1}}, lp.LE, 8)
	return m
}

func TestInjectedPivotFailure(t *testing.T) {
	inj := faultinject.New(1, faultinject.Fault{Kind: faultinject.KindPivot})
	_, err := Solve(resilienceModel(), &Options{Inject: inj})
	if err == nil || !strings.Contains(err.Error(), "injected pivot failure") {
		t.Fatalf("err = %v, want injected pivot failure", err)
	}
	if !inj.Fired(faultinject.KindPivot) {
		t.Error("injector does not record the pivot fault as fired")
	}
}

func TestInjectedStall(t *testing.T) {
	inj := faultinject.New(1, faultinject.Fault{Kind: faultinject.KindStall})
	sol, err := Solve(resilienceModel(), &Options{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusIterLimit {
		t.Fatalf("status = %v, want iteration-limit from injected stall", sol.Status)
	}
	if sol.Limit != lp.LimitIterations {
		t.Errorf("Limit = %q, want %q", sol.Limit, lp.LimitIterations)
	}
}

func TestInjectedCorruption(t *testing.T) {
	inj := faultinject.New(1, faultinject.Fault{Kind: faultinject.KindCorrupt})
	sol, err := Solve(resilienceModel(), &Options{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !math.IsNaN(sol.Objective) || !math.IsNaN(sol.X[0]) {
		t.Errorf("corruption not applied: obj %v, x0 %v", sol.Objective, sol.X[0])
	}
}

func TestLateFaultLeavesEarlierSolvesClean(t *testing.T) {
	// A solver whose injector arms the fault on the 2nd solve's pivots
	// must leave the 1st solve untouched — and the two clean solves must
	// agree exactly.
	clean, err := Solve(resilienceModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pivots := clean.Iterations
	inj := faultinject.New(1, faultinject.Fault{Kind: faultinject.KindPivot, After: pivots + 1})
	s := NewSolver(&Options{Inject: inj})
	first, err := s.Solve(resilienceModel())
	if err != nil {
		t.Fatalf("first solve failed despite fault armed beyond its pivots: %v", err)
	}
	if first.Objective != clean.Objective {
		t.Errorf("objective drifted under armed-but-silent injector: %v vs %v", first.Objective, clean.Objective)
	}
	if _, err := s.Solve(resilienceModel()); err == nil {
		t.Error("second solve should hit the armed pivot fault")
	}
}

func TestDeadlineSurrendersWithWallClockLimit(t *testing.T) {
	sol, err := Solve(resilienceModel(), &Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusIterLimit {
		t.Fatalf("status = %v, want iteration-limit from expired deadline", sol.Status)
	}
	if sol.Limit != lp.LimitWallClock {
		t.Errorf("Limit = %q, want %q", sol.Limit, lp.LimitWallClock)
	}
}

func TestSolveContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveContext(ctx, resilienceModel(), nil)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
}

func TestSolveContextBackgroundMatchesSolve(t *testing.T) {
	a, err := Solve(resilienceModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveContext(context.Background(), resilienceModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Iterations != b.Iterations {
		t.Errorf("SolveContext diverges from Solve: (%v, %d) vs (%v, %d)",
			b.Objective, b.Iterations, a.Objective, a.Iterations)
	}
}
