package simplex

import (
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/lp"
)

// TestTableauViewIdentity: on random solved LPs, the tableau row of r
// evaluated at the basic column of any row r' must be the Kronecker
// delta δ_rr' (B⁻¹B = I), and the row's value at the full solution
// point (structurals + slacks) must reproduce the basic value.
func TestTableauViewIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		m := randomBoxLP(rng)
		s := NewSolver(nil)
		sol, err := s.Solve(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != lp.StatusOptimal {
			continue
		}
		v := s.TableauView()
		if v == nil {
			continue // documented: a basic artificial forbids the snapshot
		}
		n, nr := v.NumStruct(), v.NumRows()
		if n != m.NumVars() || nr != m.NumRows() {
			t.Fatalf("trial %d: view dims %dx%d vs model %dx%d", trial, nr, n, m.NumRows(), m.NumVars())
		}
		var alpha []float64
		for r := 0; r < nr; r++ {
			alpha = v.Row(r, alpha)
			if len(alpha) != n+nr {
				t.Fatalf("trial %d: row length %d, want %d", trial, len(alpha), n+nr)
			}
			for r2 := 0; r2 < nr; r2++ {
				want := 0.0
				if r2 == r {
					want = 1
				}
				if got := alpha[v.BasicCol(r2)]; math.Abs(got-want) > 1e-7 {
					t.Fatalf("trial %d: alpha[basic(%d)] = %v in row %d, want %v", trial, r2, got, r, want)
				}
			}
			if diff := math.Abs(v.Value(v.BasicCol(r)) - v.BasicValue(r)); diff > 1e-9 {
				t.Fatalf("trial %d row %d: Value(basic) %v vs BasicValue %v", trial, r, v.Value(v.BasicCol(r)), v.BasicValue(r))
			}
			// Row identity: α is row r of B⁻¹[A I], and the full point
			// z = (x, s) satisfies [A I]z = rhs, so α·z = (B⁻¹rhs)_r.
			// The slack part of α is exactly ρ = B⁻ᵀe_r, so the right-hand
			// side is Σ_r' α_{n+r'}·rhs_r'.
			act, want := 0.0, 0.0
			for j := 0; j < n+nr; j++ {
				act += alpha[j] * v.Value(j)
			}
			for r2 := 0; r2 < nr; r2++ {
				want += alpha[n+r2] * m.Row(lp.RowID(r2)).RHS
			}
			if diff := math.Abs(act - want); diff > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("trial %d row %d: tableau row activity %v vs B⁻¹rhs %v", trial, r, act, want)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d tableau rows checked — generator too degenerate", checked)
	}
}

// TestExtendRowsWarmResolve: appending a violated valid inequality to a
// solved model and warm-starting from the extended basis must succeed,
// stay optimal, and never improve (this is minimization: the objective
// can only move up when the feasible region shrinks).
func TestExtendRowsWarmResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	resolved, tightened := 0, 0
	for trial := 0; trial < 200; trial++ {
		m := randomBoxLP(rng)
		s := NewSolver(nil)
		sol, err := s.Solve(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != lp.StatusOptimal {
			continue
		}
		basis := s.Basis()
		if basis == nil {
			continue
		}

		// A cutting-plane-shaped row: bound a random subset of variables
		// away from the current vertex by a margin, Σ x_j ≤ Σ x*_j − δ.
		// (Not a valid MILP cut — this test is about the warm path, so
		// validity against integer points is irrelevant.)
		var terms []lp.Term
		act := 0.0
		for j := 0; j < m.NumVars(); j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: 1})
			act += sol.X[j]
		}
		if len(terms) == 0 {
			continue
		}
		child := m.Clone()
		child.AddRow("cut", terms, lp.LE, act-0.25)
		if child.Err() != nil {
			t.Fatalf("trial %d: add row: %v", trial, child.Err())
		}

		ws := NewSolver(nil)
		got, err := ws.SolveFrom(child, basis.ExtendRows(1))
		if err != nil {
			t.Fatalf("trial %d: warm re-solve: %v", trial, err)
		}
		if got.Status == lp.StatusInfeasible {
			continue // the margin cut off the whole box: legitimate
		}
		if got.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: warm re-solve status %v", trial, got.Status)
		}
		resolved++
		if got.Objective < sol.Objective-1e-7*math.Max(1, math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: cut improved the minimum %v → %v", trial, sol.Objective, got.Objective)
		}
		if got.Objective > sol.Objective+1e-9 {
			tightened++
		}

		// Cross-check against a cold solve of the same child.
		cold, err := NewSolver(nil).Solve(child)
		if err != nil {
			t.Fatalf("trial %d: cold re-solve: %v", trial, err)
		}
		if cold.Status != got.Status {
			t.Fatalf("trial %d: warm status %v vs cold %v", trial, got.Status, cold.Status)
		}
		if diff := math.Abs(cold.Objective - got.Objective); diff > 1e-6*math.Max(1, math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: warm objective %v vs cold %v", trial, got.Objective, cold.Objective)
		}
	}
	if resolved < 50 || tightened < 20 {
		t.Fatalf("only %d warm re-solves (%d tightened) — generator too degenerate", resolved, tightened)
	}
}

// TestExtendRowsMultiple: extending by several rows at once keeps the
// basis consistent with the grown model.
func TestExtendRowsMultiple(t *testing.T) {
	m := lp.NewModel("multi")
	a := m.AddVar(lp.Variable{Name: "a", Upper: 4, Cost: -1})
	b := m.AddVar(lp.Variable{Name: "b", Upper: 4, Cost: -1})
	m.AddRow("r0", []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, lp.LE, 6)
	s := NewSolver(nil)
	sol, err := s.Solve(m)
	if err != nil || sol.Status != lp.StatusOptimal {
		t.Fatalf("base solve: %v status %v", err, sol.Status)
	}
	child := m.Clone()
	child.AddRow("c1", []lp.Term{{Var: a, Coef: 1}}, lp.LE, 3)
	child.AddRow("c2", []lp.Term{{Var: b, Coef: 1}}, lp.LE, 2)
	got, err := NewSolver(nil).SolveFrom(child, s.Basis().ExtendRows(2))
	if err != nil || got.Status != lp.StatusOptimal {
		t.Fatalf("extended solve: %v status %v", err, got.Status)
	}
	if math.Abs(got.Objective - -5) > 1e-9 {
		t.Fatalf("objective %v, want -5", got.Objective)
	}
}
