package simplex

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/tol"
)

// Basis is an immutable snapshot of an optimal simplex basis: the
// status of every structural and slack column plus the basic column of
// every row. It deliberately excludes two things the tableau also
// carries:
//
//   - the basis inverse — at m² floats it would dominate the branch &
//     bound queue's memory budget, and SolveFrom rebuilds it with one
//     refactorization anyway, and
//   - the artificial columns — their orientation depends on the initial
//     residuals of the solve that produced them, so a snapshot that
//     included one would not be reinstallable; Solver.Basis returns nil
//     in the (degenerate) case where an artificial is still basic.
//
// A Basis holds no reference to the tableau or model it came from: it
// can outlive both, be shared by any number of concurrent SolveFrom
// calls, and be applied to any model with the same shape (variable and
// row counts, senses, coefficients) under different bounds — which is
// exactly the parent→child relationship in branch & bound.
type Basis struct {
	n, m    int
	status  []varStatus
	basicIn []int32
}

// MemBytes returns the approximate heap footprint of the snapshot, for
// callers that meter queue memory (the branch & bound node queue charges
// each node's basis against Budget.MemoryBytes).
func (b *Basis) MemBytes() int64 {
	if b == nil {
		return 0
	}
	return int64(48 + cap(b.status) + 4*cap(b.basicIn))
}

// Basis returns a snapshot of the optimal basis left behind by the
// Solver's most recent solve, or nil when no warm-startable basis is
// available: the last solve did not end StatusOptimal, or an artificial
// column is still basic (possible only in degenerate cases). The
// snapshot is independent of the Solver and remains valid across its
// subsequent solves.
func (s *Solver) Basis() *Basis {
	t := &s.t
	if !t.lastOptimal {
		return nil
	}
	n, m := t.nStruct, t.m
	for r := 0; r < m; r++ {
		if int(t.basicIn[r]) >= n+m {
			return nil
		}
	}
	b := &Basis{
		n:       n,
		m:       m,
		status:  make([]varStatus, n+m),
		basicIn: make([]int32, m),
	}
	copy(b.status, t.status[:n+m])
	copy(b.basicIn, t.basicIn)
	return b
}

// ExtendRows returns a copy of the snapshot extended for a model with k
// extra rows appended after the ones it was taken from — the cut-round
// case, where each round appends freshly separated cut rows to the root
// LP. The new rows' slacks enter the basis in their own rows, so the
// extended basis matrix is block lower triangular
//
//	[ B  0 ]
//	[ C  I ]
//
// (B the old basis, C the cut-row coefficients of the old basic
// columns) and therefore nonsingular whenever B was. Because the new
// slacks carry zero cost, the old duals and reduced costs are
// unchanged: the extension is dual feasible by construction, and
// SolveFrom's dual-simplex restoration drives the (cut-violating) new
// slacks back inside their bounds — the textbook cut re-solve. Slack
// column indices survive the extension unchanged (structurals come
// first in the column layout), so old statuses copy over verbatim.
// A nil receiver or k ≤ 0 returns the receiver.
func (b *Basis) ExtendRows(k int) *Basis {
	if b == nil || k <= 0 {
		return b
	}
	nb := &Basis{
		n:       b.n,
		m:       b.m + k,
		status:  make([]varStatus, b.n+b.m+k),
		basicIn: make([]int32, b.m+k),
	}
	copy(nb.status[:b.n+b.m], b.status)
	copy(nb.basicIn[:b.m], b.basicIn)
	for i := 0; i < k; i++ {
		nb.status[b.n+b.m+i] = basic
		nb.basicIn[b.m+i] = int32(b.n + b.m + i)
	}
	return nb
}

// SolveFrom solves the continuous relaxation of model starting from an
// inherited basis instead of a cold two-phase start. The intended use
// is branch & bound: basis came from the parent node's optimal LP and
// model differs from the parent only in variable bounds, so the basis
// stays dual feasible (costs and coefficients are unchanged) and a few
// dual-simplex pivots restore primal feasibility — phase 1 is skipped
// entirely.
//
// The warm path is an optimization, never an oracle: whenever the basis
// is stale (wrong shape, invalid statuses under the child bounds,
// singular after refactorization) or dual restoration fails to reach
// primal feasibility, SolveFrom discards it and re-runs the cold
// two-phase path, so the result is exactly what Solve would have
// produced. A nil basis degrades to Solve.
func (s *Solver) SolveFrom(model *lp.Model, basis *Basis) (*lp.Solution, error) {
	return s.solve(nil, model, basis)
}

// SolveFromContext is SolveFrom with cancellation (see SolveContext).
// A nil ctx is treated as context.Background().
func (s *Solver) SolveFromContext(ctx context.Context, model *lp.Model, basis *Basis) (*lp.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.solve(ctx, model, basis)
}

// TryWarm attempts the warm path from basis WITHOUT the cold fallback
// SolveFrom would run on a stale basis: ok=false means the basis could
// not be restored here (wrong shape, invalid statuses under the current
// bounds, singular, or dual restoration stalled) and only the staleness
// detection was paid — no two-phase solve ran, and the abandoned pivots
// are excluded from any returned iteration counts exactly as on
// SolveFrom's miss path.
//
// The intended caller is a heuristic (the branch & bound dive) that
// would rather abandon the subproblem than pay a full cold solve its
// budget never accounted for: a failed warm start must cost its
// detection, not a duplicated solve. A nil basis reports ok=false
// immediately.
func (s *Solver) TryWarm(model *lp.Model, basis *Basis) (sol *lp.Solution, ok bool, err error) {
	if basis == nil {
		return nil, false, nil
	}
	if err := model.Err(); err != nil {
		return nil, false, fmt.Errorf("simplex: invalid model: %w", err)
	}
	if model.NumVars() == 0 {
		return nil, false, nil
	}
	if err := s.t.reset(model, &s.opts); err != nil {
		return nil, false, err
	}
	s.t.ctx = nil
	sol, done, err := s.t.solveWarm(basis)
	if !done {
		s.t.warmMisses = 1
	}
	s.t.foldMetrics()
	if err != nil || !done {
		return nil, false, err
	}
	return sol, true, nil
}

// solveWarm attempts the warm path from basis b on the freshly reset
// tableau. done reports that the attempt produced a final outcome
// (solution or error) and the caller must not run the cold path; done
// false means the basis was stale and the caller should restart cold.
func (t *tableau) solveWarm(b *Basis) (sol *lp.Solution, done bool, err error) {
	if !t.installBasis(b) {
		return nil, false, nil
	}
	out, err := t.dualRestore()
	if err != nil {
		return nil, true, err
	}
	switch out {
	case restoreStale:
		return nil, false, nil
	case restoreLimit:
		return &lp.Solution{Status: lp.StatusIterLimit, Iterations: t.iters, Limit: t.limit}, true, nil
	}
	t.warmHits = 1
	t.p1Skipped = 1
	sol, err = t.finishPhase2()
	return sol, true, err
}

// installBasis loads snapshot b into the tableau under the *current*
// model's bounds: nonbasic columns snap to the child's (possibly
// tightened) bounds, artificials are frozen nonbasic at zero, and the
// basis inverse is rebuilt by one refactorization. It reports false —
// leaving the tableau for the caller to reset — whenever the snapshot
// cannot be a valid basis here: shape mismatch, a bound status pointing
// at an infinite bound, an inconsistent basic set, or a singular basis
// matrix.
func (t *tableau) installBasis(b *Basis) bool {
	n, m := t.nStruct, t.m
	if b == nil || b.n != n || b.m != m || len(b.status) != n+m || len(b.basicIn) != m {
		return false
	}
	for r := 0; r < m; r++ {
		a := n + m + r
		t.lower[a], t.upper[a] = 0, 0
		t.status[a] = atLower
		t.value[a] = 0
		t.inRow[a] = -1
	}
	for j := 0; j < n+m; j++ {
		st := b.status[j]
		switch st {
		case basic:
			// Membership in basicIn is validated below.
		case atLower:
			if math.IsInf(t.lower[j], -1) {
				return false
			}
			t.value[j] = t.lower[j]
		case atUpper:
			if math.IsInf(t.upper[j], 1) {
				return false
			}
			t.value[j] = t.upper[j]
		case freeAtZero:
			if !math.IsInf(t.lower[j], -1) || !math.IsInf(t.upper[j], 1) {
				return false
			}
			t.value[j] = 0
		default:
			return false
		}
		t.status[j] = st
		t.inRow[j] = -1
	}
	for r := 0; r < m; r++ {
		j := b.basicIn[r]
		if j < 0 || int(j) >= n+m || t.status[j] != basic {
			return false
		}
		if t.inRow[j] >= 0 {
			return false // duplicate basic column
		}
		t.basicIn[r] = j
		t.inRow[j] = int32(r)
	}
	for j := 0; j < n+m; j++ {
		if t.status[j] == basic && t.inRow[j] < 0 {
			return false
		}
	}
	// Rebuild Binv and the basic values from the installed basis. A
	// singular basis under the child's data means the snapshot is stale.
	if err := t.refactorize(); err != nil {
		return false
	}
	return true
}

// dualOutcome is the verdict of dualRestore.
type dualOutcome int

const (
	// restoreOK: the basis is primal feasible; phase 2 may run.
	restoreOK dualOutcome = iota
	// restoreStale: restoration failed (no eligible column, pivot cap);
	// the caller falls back to the cold path for the authoritative
	// verdict — the child LP may genuinely be infeasible.
	restoreStale
	// restoreLimit: a solve-wide limit (iterations, deadline) fired;
	// t.limit names the cause and the caller surrenders as the cold
	// path would.
	restoreLimit
)

// dualRestore runs bounded-variable dual simplex pivots until every
// basic variable is back inside its bounds. The inherited basis is dual
// feasible for the child (the cost vector and constraint matrix match
// the parent's solve exactly; only bounds moved), so the dual ratio
// test keeps reduced costs sign-correct while each pivot drives the
// most-violated basic variable to its bound. Dual feasibility is an
// efficiency argument here, not a correctness dependency: whatever
// basis restoration ends on, finishPhase2 runs primal simplex to
// proven optimality, and any failure to terminate is caught by the
// pivot cap and surrendered to the cold path.
func (t *tableau) dualRestore() (dualOutcome, error) {
	const pivTol = tol.Pivot
	m := t.m
	t.phase = 2
	t.pricedCost = t.cost
	y := t.workRow
	// A child differs from its parent by one bound, so restoration
	// should take a handful of pivots; the cap bounds the cost of a
	// degenerate or cycling case before surrendering to the cold path.
	maxPivots := 100 + 2*m
	for p := 0; p < maxPivots; p++ {
		// Leaving row: the most-violated basic bound.
		r, toLower, worst := -1, false, t.opts.FeasTol
		for i := 0; i < m; i++ {
			bi := t.basicIn[i]
			if v := t.lower[bi] - t.xB[i]; v > worst {
				r, toLower, worst = i, true, v
			}
			if v := t.xB[i] - t.upper[bi]; v > worst {
				r, toLower, worst = i, false, v
			}
		}
		if r < 0 {
			return restoreOK, nil
		}
		if t.iters >= t.opts.MaxIters {
			t.limit = lp.LimitIterations
			return restoreLimit, nil
		}
		if t.ctx != nil {
			if err := t.ctx.Err(); err != nil {
				return 0, fmt.Errorf("simplex: canceled after %d iterations: %w", t.iters, err)
			}
		}
		if !t.opts.Deadline.IsZero() && time.Now().After(t.opts.Deadline) {
			t.limit = lp.LimitWallClock
			return restoreLimit, nil
		}
		// Restoration can run past the sparse engine's eta-file cap;
		// collapse the file on the same trigger the pivot loop uses. A
		// singular basis mid-restore means the snapshot went stale.
		if t.la != nil && t.la.etas.count() >= t.opts.RefactorEvery {
			if err := t.refactorize(); err != nil {
				return restoreStale, nil
			}
		}

		bi := t.basicIn[r]
		target, leaveStatus := t.lower[bi], atLower
		if !toLower {
			target, leaveStatus = t.upper[bi], atUpper
		}
		rho := t.binvRow(r)
		t.computeDuals(y)

		// Dual ratio test: among nonbasic columns able to move xB[r]
		// toward its violated bound, pick the one whose reduced cost
		// reaches zero first (min |d|/|α|), tie-broken on the larger
		// pivot magnitude for stability.
		enter := -1
		var enterDir, enterAlpha float64
		bestRatio := math.Inf(1)
		for j := 0; j < t.nStruct+m; j++ { // artificials frozen: skip
			st := t.status[j]
			if st == basic {
				continue
			}
			if tol.Same(t.lower[j], t.upper[j]) && st != freeAtZero {
				continue // fixed
			}
			c := t.cols[j]
			alpha := 0.0
			for k, ri := range c.rows {
				alpha += rho[ri] * c.coefs[k]
			}
			if math.Abs(alpha) <= pivTol {
				continue
			}
			// Moving j by a positive step in direction dir changes xB[r]
			// by −dir·step·α; choose dir so the violated bound is
			// approached, and require j's status to permit it.
			var dir float64
			if toLower == (alpha < 0) {
				dir = 1
			} else {
				dir = -1
			}
			if (dir > 0 && st == atUpper) || (dir < 0 && st == atLower) {
				continue
			}
			d := t.reducedCost(j, y)
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio-tol.Tie ||
				(ratio < bestRatio+tol.Tie && (enter < 0 || math.Abs(alpha) > math.Abs(enterAlpha))) {
				bestRatio = ratio
				enter, enterDir, enterAlpha = j, dir, alpha
			}
		}
		if enter < 0 {
			// No column can repair the violation: the child LP is primal
			// infeasible, or the basis is numerically useless. The cold
			// path delivers the authoritative verdict either way.
			return restoreStale, nil
		}

		t.ftran(enter)
		w := t.workCol // w[r] equals enterAlpha: both are Binv row r · A_j

		step := (t.xB[r] - target) / (enterDir * w[r])
		if step < 0 {
			step = 0
		}
		// If the entering variable would cross its opposite bound before
		// the violated row reaches its bound, bound-flip it (basis
		// unchanged) and re-examine the row.
		if rng := t.upper[enter] - t.lower[enter]; !math.IsInf(rng, 1) && rng < step {
			t.iters++
			t.dualPivots++
			for i := 0; i < m; i++ {
				if !tol.IsZero(w[i]) {
					t.xB[i] -= enterDir * rng * w[i]
					t.value[t.basicIn[i]] = t.xB[i]
				}
			}
			if enterDir > 0 {
				t.value[enter] = t.upper[enter]
				t.status[enter] = atUpper
			} else {
				t.value[enter] = t.lower[enter]
				t.status[enter] = atLower
			}
			continue
		}

		t.iters++
		t.dualPivots++
		for i := 0; i < m; i++ {
			if !tol.IsZero(w[i]) {
				t.xB[i] -= enterDir * step * w[i]
				t.value[t.basicIn[i]] = t.xB[i]
			}
		}
		// The leaving variable exits exactly at its violated bound.
		enterVal := t.value[enter] + enterDir*step
		t.value[bi] = target
		t.status[bi] = leaveStatus
		t.inRow[bi] = -1
		t.basicIn[r] = int32(enter)
		t.inRow[enter] = int32(r)
		t.status[enter] = basic
		t.value[enter] = enterVal
		t.xB[r] = enterVal
		t.updateBasisLA(r, w)
	}
	return restoreStale, nil
}
